/**
 * @file
 * Table 4 reproduction: flight controllers, compute boards, and
 * external sensors with their weight and power specifications.
 */

#include <cstdio>

#include "components/compute_board.hh"
#include "components/sensor.hh"
#include "util/table.hh"

using namespace dronedse;

int
main()
{
    std::printf("=== Table 4: flight controllers & computation ===\n\n");

    Table boards({"name", "class", "weight (g)", "power (W)"});
    for (const auto &rec : computeBoardTable()) {
        boards.addRow({rec.name,
                       rec.boardClass == BoardClass::Basic ? "basic"
                                                           : "improved",
                       fmt(rec.weightG, 1), fmt(rec.powerW, 2)});
    }
    boards.print();

    std::printf("\n=== Table 4: external sensors ===\n\n");
    Table sensors({"name", "kind", "weight (g)", "power (W)",
                   "self-powered"});
    for (const auto &rec : sensorTable()) {
        sensors.addRow({rec.name,
                        rec.kind == SensorKind::FpvCamera ? "FPV camera"
                                                          : "LiDAR",
                        fmt(rec.weightG, 1), fmt(rec.powerW, 2),
                        rec.selfPowered ? "yes" : "no"});
    }
    sensors.print();

    std::printf("\nPaper observations: all flight controllers embed an "
                "STM32F Cortex-M inner-loop MCU;\ncompute boards span "
                "0.5-20 W, abstracted as 3 W (basic) and 20 W "
                "(advanced) chips in Section 3.\n");
    return 0;
}
