/**
 * @file
 * Roofline calibration and co-design search benchmark.
 *
 * Emits `BENCH_roofline.json` — calibration wall time plus search
 * throughput (compute configurations closed per second) at 1/2/4/8
 * engine threads over the paper mission catalog — and two
 * figure-family CSVs:
 *
 *   roofline_boards.csv  per-board roofline plot data (peak,
 *                        bandwidth, ridge, and the five phase
 *                        points with attainable/measured/gap)
 *   codesign_table5.csv  recommended-board-vs-mission table (the
 *                        derived Table 5)
 *
 * Usage: roofline_codesign [--output PATH] [--csv-dir DIR]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "codesign/codesign.hh"
#include "engine/engine.hh"
#include "slam/pipeline.hh"
#include "util/csv.hh"
#include "util/logging.hh"

using namespace dronedse;
using namespace dronedse::codesign;

namespace {

double
now_seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return std::string(buf);
}

void
writeRooflineCsv(const RooflineModel &model, const std::string &path)
{
    CsvWriter csv({"platform", "peak_ops_per_sec",
                   "bandwidth_bytes_per_sec", "ridge_ops_per_byte",
                   "phase", "intensity_ops_per_byte",
                   "attainable_ops_per_sec", "measured_ops_per_sec",
                   "memory_bound", "gap"});
    for (std::size_t p = 0;
         p < static_cast<std::size_t>(PlatformKind::NumPlatforms);
         ++p) {
        const auto kind = static_cast<PlatformKind>(p);
        const RooflineSpec &roof = model.roofline(kind);
        for (const PhaseRooflineReport &row : model.report(kind)) {
            csv.addRow({platformSpec(kind).name,
                        num(roof.peakOpsPerSec),
                        num(roof.bandwidthBytesPerSec),
                        num(roof.ridgeOpsPerByte()),
                        slamPhaseName(row.phase),
                        num(row.intensityOpsPerByte),
                        num(row.attainableOpsPerSec),
                        num(row.measuredOpsPerSec),
                        row.memoryBound ? "1" : "0",
                        num(row.gap)});
        }
    }
    csv.write(path);
}

void
writeTable5Csv(const std::vector<CodesignOutcome> &outcomes,
               const std::string &path)
{
    CsvWriter csv({"mission", "target_rate_hz", "recommended_board",
                   "platform", "split", "flight_time_min",
                   "total_weight_g", "avg_power_w", "wheelbase_mm",
                   "cells", "capacity_mah"});
    for (const CodesignOutcome &outcome : outcomes) {
        const CodesignChoice &rec = outcome.recommended;
        if (!rec.feasible) {
            csv.addRow({outcome.mission.name,
                        num(outcome.mission.targetRateHz),
                        "infeasible", "", "", "", "", "", "", "",
                        ""});
            continue;
        }
        csv.addRow(
            {outcome.mission.name,
             num(outcome.mission.targetRateHz),
             rec.config.boardName,
             platformSpec(rec.config.platform).name,
             offloadSplitName(rec.config.split),
             num(rec.design.flightTimeMin.value()),
             num(rec.design.totalWeightG.value()),
             num(rec.design.avgPowerW.value()),
             num(rec.design.inputs.wheelbaseMm.value()),
             std::to_string(rec.design.inputs.cells),
             num(rec.design.inputs.capacityMah.value())});
    }
    csv.write(path);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_roofline.json";
    std::string csv_dir = ".";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--output") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--csv-dir") == 0 &&
                   i + 1 < argc) {
            csv_dir = argv[++i];
        } else {
            fatal(std::string("roofline_codesign: unknown argument "
                              "'") +
                  argv[i] + "' (usage: roofline_codesign "
                            "[--output PATH] [--csv-dir DIR])");
        }
    }

    std::printf("=== Roofline calibration + co-design search ===\n"
                "\n");

    // Calibration cost: a fresh model runs seven trace-driven
    // characterization kernels (1e6 events each).
    const auto cal_start = std::chrono::steady_clock::now();
    const RooflineModel model;
    const double cal_seconds = now_seconds_since(cal_start);
    std::printf("calibration      %8.3f s  (7 kernels x 1e6 "
                "events)\n",
                cal_seconds);

    const std::vector<MissionSpec> catalog = paperMissionCatalog();

    std::string json = "{\"bench\": \"roofline_codesign\"";
    json += ", \"calibration_seconds\": " + num(cal_seconds);
    json += ", \"missions\": " + std::to_string(catalog.size());
    json += ", \"search\": [";

    std::vector<CodesignOutcome> outcomes;
    bool first = true;
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        engine::SweepEngine engine{
            engine::EngineOptions{.threads = threads}};
        const CodesignDriver driver{engine, model};

        const auto start = std::chrono::steady_clock::now();
        std::size_t configs = 0;
        std::size_t grid_points = 0;
        std::vector<CodesignOutcome> pass;
        for (const MissionSpec &mission : catalog) {
            CodesignOutcome outcome = driver.run(mission);
            configs += outcome.configCount;
            grid_points += outcome.gridPoints;
            pass.push_back(std::move(outcome));
        }
        const double seconds = now_seconds_since(start);
        const double configs_per_second =
            static_cast<double>(configs) / seconds;
        std::printf("search @%u thr    %8.3f s   %7.1f configs/s "
                    "(%zu configs, %zu grid points)\n",
                    threads, seconds, configs_per_second, configs,
                    grid_points);

        if (!first)
            json += ", ";
        first = false;
        json += "{\"threads\": " + std::to_string(threads);
        json += ", \"wall_seconds\": " + num(seconds);
        json += ", \"configs\": " + std::to_string(configs);
        json += ", \"grid_points\": " + std::to_string(grid_points);
        json += ", \"configs_per_second\": " +
                num(configs_per_second) + "}";

        if (outcomes.empty())
            outcomes = std::move(pass);
    }
    json += "]}";

    std::FILE *out = std::fopen(out_path.c_str(), "w");
    if (!out)
        fatal("roofline_codesign: cannot open '" + out_path + "'");
    std::fprintf(out, "%s\n", json.c_str());
    std::fclose(out);

    writeRooflineCsv(model, csv_dir + "/roofline_boards.csv");
    writeTable5Csv(outcomes, csv_dir + "/codesign_table5.csv");

    std::printf("\nwrote %s, %s/roofline_boards.csv, "
                "%s/codesign_table5.csv\n",
                out_path.c_str(), csv_dir.c_str(),
                csv_dir.c_str());
    for (const CodesignOutcome &outcome : outcomes) {
        if (outcome.recommended.feasible) {
            std::printf("  %-18s -> %s\n",
                        outcome.mission.name.c_str(),
                        outcome.recommended.config.boardName
                            .c_str());
        }
    }
    return 0;
}
