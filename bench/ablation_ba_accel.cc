/**
 * @file
 * Ablation beyond the paper's figures: which SLAM phases must an
 * FPGA accelerate?  Section 5.2 reports the FPGA design accelerates
 * the bundle adjustments and additionally integrates the eSLAM
 * feature front end; this bench quantifies each choice's
 * contribution to the end-to-end speedup (Amdahl structure).
 */

#include <cstdio>

#include "platform/exec_model.hh"
#include "util/regression.hh"
#include "util/table.hh"

using namespace dronedse;

namespace {

constexpr std::size_t kN =
    static_cast<std::size_t>(SlamPhase::NumPhases);

double
speedupWith(const std::array<
                PhaseWork,
                static_cast<std::size_t>(SlamPhase::NumPhases)> &work,
            const std::array<double, kN> &factors)
{
    const auto &rpi = platformSpec(PlatformKind::RPi);
    double t_base = 0.0, t_acc = 0.0;
    for (std::size_t p = 0; p < kN; ++p) {
        const double base =
            static_cast<double>(work[p].ops) / rpi.phaseThroughput[p];
        t_base += base;
        t_acc += base / factors[p];
    }
    return t_base / t_acc;
}

} // namespace

int
main()
{
    std::printf("=== Ablation: which SLAM phases to accelerate ===\n\n");

    struct Variant
    {
        const char *name;
        std::array<double, kN> factors;
    };
    // Factors: feature, matching, tracking, local BA, global BA.
    const Variant variants[] = {
        {"none (RPi)", {1, 1, 1, 1, 1}},
        {"BA only (40x)", {1, 1, 1, 40, 40}},
        {"features only (eSLAM, 10x)", {10, 10, 1, 1, 1}},
        {"BA + features (paper FPGA)", {12, 12, 12, 50, 50}},
        {"BA + features, BA 100x", {12, 12, 12, 100, 100}},
        {"everything 50x", {50, 50, 50, 50, 50}},
    };

    Table t({"accelerated phases", "MH01", "V201", "MH04", "geomean"});
    const SequenceStats mh01 =
        SlamPipeline::runSequence(findSequence("MH01"));
    const SequenceStats v201 =
        SlamPipeline::runSequence(findSequence("V201"));
    const SequenceStats mh04 =
        SlamPipeline::runSequence(findSequence("MH04"));

    for (const auto &variant : variants) {
        const double a = speedupWith(mh01.work, variant.factors);
        const double b = speedupWith(v201.work, variant.factors);
        const double c = speedupWith(mh04.work, variant.factors);
        t.addRow({variant.name, fmt(a, 1) + "x", fmt(b, 1) + "x",
                  fmt(c, 1) + "x",
                  fmt(geomean({a, b, c}), 1) + "x"});
    }
    t.print();

    std::printf(
        "\nReading (Amdahl): BA-only acceleration saturates around\n"
        "5-8x because the un-accelerated front end dominates the\n"
        "residue; feature-only acceleration is nearly useless on its\n"
        "own.  Only the combination (the paper's FPGA: dense-matrix\n"
        "BA pipeline + eSLAM front end) reaches the ~30x regime, and\n"
        "further BA-only gains show diminishing end-to-end returns.\n");
    return 0;
}
