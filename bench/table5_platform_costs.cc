/**
 * @file
 * Table 5 reproduction: the cost of each platform for SLAM —
 * speedup, power and weight overheads, integration/fabrication
 * cost, and gained flight time for small and large drones — ending
 * with the paper's FPGA recommendation.
 */

#include <cstdio>

#include "dse/footprint.hh"
#include "dse/weight_closure.hh"
#include "platform/exec_model.hh"
#include "platform/offload.hh"
#include "util/table.hh"

using namespace dronedse;
using namespace dronedse::unit_literals;

int
main()
{
    std::printf("=== Table 5: platform costs for SLAM ===\n\n");

    // Speedups measured by the Figure 17 harness (frame-limited for
    // speed; geomeans are stable).
    const Figure17Data fig17 = runFigure17(100);
    const auto table = assessOffload(fig17.geomeanSpeedup);

    Table t({"platform", "SLAM speedup", "power overhead (W)",
             "weight overhead (g)", "integration", "fabrication",
             "gain small (min)", "gain large (min)"});
    for (const auto &a : table) {
        t.addRow({a.spec.name, fmt(a.slamSpeedup, 2) + "x",
                  fmt(a.spec.powerOverheadW.value(), 3),
                  fmt(a.spec.weightOverheadG.value(), 0),
                  costLevelName(a.spec.integrationCost),
                  costLevelName(a.spec.fabricationCost),
                  fmt(a.gainedSmallMin, 2), fmt(a.gainedLargeMin, 2)});
    }
    t.print();

    std::printf("\nPaper values: speedups 1x/2.16x/30.70x/23.53x; "
                "gains small 0/-4/~2-3/~2.2-3.2 min; "
                "large 0/-1.5/~1/~1 min (baseline 15 min).\n");

    const auto &small_pick = recommendPlatform(table, true);
    const auto &large_pick = recommendPlatform(table, false);
    std::printf("\nRecommendation: %s (small drones), %s (large "
                "drones).\nPaper conclusion: the FPGA is the most "
                "cost-effective platform — the ASIC's extra ~20 s\n"
                "cannot justify its integration and fabrication "
                "cost.\n",
                small_pick.spec.name.c_str(),
                large_pick.spec.name.c_str());

    // Weight-aware cross-check with the DSE model (the paper's
    // arithmetic is power-only; our model can close the loop).
    std::printf("\nWeight-aware cross-check (450 mm drone, DSE "
                "closure):\n");
    DesignInputs in;
    in.wheelbaseMm = 450.0_mm;
    in.cells = 3;
    in.capacityMah = 5000.0_mah;
    in.compute = {"TX2-class CPU/GPU", BoardClass::Improved, 85.0,
                  10.0};
    for (const auto &a : table) {
        if (a.spec.kind == PlatformKind::TX2)
            continue;
        const double gain =
            platformSwapGainMin(
                in, a.spec.powerOverheadW - Quantity<Watts>(10.0),
                a.spec.weightOverheadG - Quantity<Grams>(85.0))
                .value();
        std::printf("  CPU/GPU -> %-4s : %+6.2f min (weight feedback "
                    "included)\n",
                    a.spec.name.c_str(), gain);
    }
    return 0;
}
