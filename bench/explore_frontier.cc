/**
 * @file
 * Frontier-fidelity benchmark for the adaptive explorer.
 *
 * Solves the 450 mm reference space exhaustively once (the oracle),
 * then re-runs the adaptive driver at a ladder of evaluation budgets
 * — 1%, 2.5%, 5%, 7.5%, and 10% of the grid — and scores each run
 * against the oracle frontier: matched / missing / false-positive
 * counts and the fidelity ratio.  A final entry runs the six-axis
 * wide space adaptively (its grid is too large to solve
 * exhaustively, which is the point of the subsystem).
 *
 * Emits `BENCH_explore.json` with the full fidelity-vs-evaluations
 * series plus `explore_fidelity.csv` for plotting.  Each budget gets
 * a fresh engine so wall times and evaluation counts are honest
 * (no cross-run memo hits).
 *
 * Usage: explore_frontier [--output PATH] [--csv-dir DIR]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "engine/engine.hh"
#include "engine/pareto.hh"
#include "explore/driver.hh"
#include "explore/sampler.hh"
#include "explore/space.hh"
#include "util/csv.hh"
#include "util/logging.hh"

using namespace dronedse;
using namespace dronedse::explore;
using namespace dronedse::unit_literals;

namespace {

double
now_seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return std::string(buf);
}

/** Canonical identity of one lattice design (bit-exact fields). */
using PointKey = std::tuple<double, int, double, double, std::string,
                            int, double>;

PointKey
keyOf(const DesignResult &res)
{
    return {res.inputs.wheelbaseMm.value(), res.inputs.cells,
            res.inputs.capacityMah.value(), res.inputs.twr,
            res.inputs.compute.name,
            static_cast<int>(res.inputs.activity),
            res.inputs.payloadG.value()};
}

struct Fidelity
{
    std::size_t matched = 0;
    std::size_t missing = 0;
    std::size_t falsePositives = 0;

    double ratio(std::size_t oracle_size) const
    {
        return oracle_size == 0
                   ? 1.0
                   : static_cast<double>(matched) /
                         static_cast<double>(oracle_size);
    }
};

Fidelity
scoreAgainstOracle(const ExploreResult &result,
                   const std::set<PointKey> &oracle_frontier)
{
    Fidelity out;
    std::set<PointKey> found;
    for (std::size_t i : result.frontier)
        found.insert(keyOf(result.points[i]));
    for (const PointKey &key : found) {
        if (oracle_frontier.contains(key))
            ++out.matched;
        else
            ++out.falsePositives;
    }
    out.missing = oracle_frontier.size() - out.matched;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_explore.json";
    std::string csv_dir = ".";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--output") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--csv-dir") == 0 &&
                   i + 1 < argc) {
            csv_dir = argv[++i];
        } else {
            fatal(std::string("explore_frontier: unknown argument "
                              "'") +
                  argv[i] + "' (usage: explore_frontier "
                            "[--output PATH] [--csv-dir DIR])");
        }
    }

    std::printf("=== Adaptive frontier fidelity vs. evaluation "
                "budget ===\n\n");

    // Oracle: the full 450 mm reference grid, solved exhaustively.
    const ExploreSpace space = referenceSpace450(100.0_mah);
    const std::size_t grid = space.pointCount();
    engine::SweepEngine oracle_engine{
        engine::EngineOptions{.threads = 4}};
    const auto oracle_start = std::chrono::steady_clock::now();
    std::vector<DesignResult> oracle;
    {
        auto gen = makeGenerator(SamplerKind::Grid, 0);
        const auto all = gen->nextBatch(space, grid);
        std::vector<DesignInputs> inputs;
        inputs.reserve(all.size());
        for (const auto &idx : all)
            inputs.push_back(space.materialize(idx));
        oracle = oracle_engine.solvePoints(inputs);
    }
    const double oracle_seconds = now_seconds_since(oracle_start);
    std::set<PointKey> oracle_frontier;
    for (std::size_t i : engine::paretoFrontier(oracle))
        oracle_frontier.insert(keyOf(oracle[i]));
    std::printf("oracle           %8.3f s   %zu points, frontier "
                "%zu\n",
                oracle_seconds, grid, oracle_frontier.size());

    std::string json = "{\"bench\": \"explore_frontier\"";
    json += ", \"space_points\": " + std::to_string(grid);
    json += ", \"oracle_frontier\": " +
            std::to_string(oracle_frontier.size());
    json += ", \"oracle_seconds\": " + num(oracle_seconds);
    json += ", \"series\": [";

    CsvWriter csv({"budget_fraction", "budget", "evaluations",
                   "rounds", "wall_seconds", "frontier_size",
                   "matched", "missing", "false_positives",
                   "fidelity"});

    bool first = true;
    for (const double fraction : {0.01, 0.025, 0.05, 0.075, 0.10}) {
        const auto budget = static_cast<std::size_t>(
            static_cast<double>(grid) * fraction);
        engine::SweepEngine engine{
            engine::EngineOptions{.threads = 4}};
        ExploreOptions options;
        options.maxEvaluations = budget;
        AdaptiveDriver driver(engine, options);
        const auto start = std::chrono::steady_clock::now();
        const ExploreResult result = driver.run(space);
        const double seconds = now_seconds_since(start);
        const Fidelity score =
            scoreAgainstOracle(result, oracle_frontier);
        const double fidelity = score.ratio(oracle_frontier.size());
        std::printf("budget %5.1f%%    %8.3f s   %zu evals, %zu "
                    "rounds, fidelity %.4f (%zu missing, %zu "
                    "false)\n",
                    fraction * 100.0, seconds, result.evaluations(),
                    result.rounds.size(), fidelity, score.missing,
                    score.falsePositives);

        if (!first)
            json += ", ";
        first = false;
        json += "{\"budget_fraction\": " + num(fraction);
        json += ", \"budget\": " + std::to_string(budget);
        json += ", \"evaluations\": " +
                std::to_string(result.evaluations());
        json += ", \"rounds\": " +
                std::to_string(result.rounds.size());
        json += ", \"wall_seconds\": " + num(seconds);
        json += ", \"frontier_size\": " +
                std::to_string(result.frontier.size());
        json += ", \"matched\": " + std::to_string(score.matched);
        json += ", \"missing\": " + std::to_string(score.missing);
        json += ", \"false_positives\": " +
                std::to_string(score.falsePositives);
        json += ", \"fidelity\": " + num(fidelity) + "}";

        csv.addRow({num(fraction), std::to_string(budget),
                    std::to_string(result.evaluations()),
                    std::to_string(result.rounds.size()),
                    num(seconds),
                    std::to_string(result.frontier.size()),
                    std::to_string(score.matched),
                    std::to_string(score.missing),
                    std::to_string(score.falsePositives),
                    num(fidelity)});
    }
    json += "]";

    // The six-axis wide space: too large to grid, adaptive-only.
    {
        const ExploreSpace wide = wideSpace6();
        engine::SweepEngine engine{
            engine::EngineOptions{.threads = 4}};
        ExploreOptions options;
        options.maxEvaluations = 4096;
        AdaptiveDriver driver(engine, options);
        const auto start = std::chrono::steady_clock::now();
        const ExploreResult result = driver.run(wide);
        const double seconds = now_seconds_since(start);
        std::printf("wide 6-axis      %8.3f s   %zu evals of %zu "
                    "points, frontier %zu\n",
                    seconds, result.evaluations(),
                    wide.pointCount(), result.frontier.size());
        json += ", \"wide6\": {\"space_points\": " +
                std::to_string(wide.pointCount());
        json += ", \"evaluations\": " +
                std::to_string(result.evaluations());
        json += ", \"rounds\": " +
                std::to_string(result.rounds.size());
        json += ", \"frontier_size\": " +
                std::to_string(result.frontier.size());
        json += ", \"wall_seconds\": " + num(seconds) + "}";
    }
    json += "}";

    std::FILE *out = std::fopen(out_path.c_str(), "w");
    if (!out)
        fatal("explore_frontier: cannot open '" + out_path + "'");
    std::fprintf(out, "%s\n", json.c_str());
    std::fclose(out);
    csv.write(csv_dir + "/explore_fidelity.csv");
    std::printf("\nwrote %s and %s/explore_fidelity.csv\n",
                out_path.c_str(), csv_dir.c_str());
    return 0;
}
