/**
 * @file
 * Figure 14 reproduction: the open-source drone's weight breakdown,
 * plus the model's closure of the same design for comparison.
 */

#include <cstdio>

#include "core/presets.hh"
#include "dse/weight_closure.hh"
#include "util/table.hh"

using namespace dronedse;

int
main()
{
    std::printf("=== Figure 14: our drone weight breakdown ===\n\n");

    Table t({"component", "weight (g)", "share"});
    for (const auto &slice : ourDroneWeightBreakdown())
        t.addRow({slice.component, fmt(slice.weightG, 0),
                  fmtPercent(slice.fraction, 0)});
    t.addRow({"TOTAL", fmt(ourDroneTotalWeightG().value(), 0), "100%"});
    t.print();

    std::printf("\nModel closure of the same design "
                "(450 mm, 3S 3000 mAh, RPi + Navio2):\n\n");
    const DesignResult res = solveDesign(ourDroneInputs());
    if (!res.feasible) {
        std::printf("INFEASIBLE: %s\n", res.infeasibleReason.c_str());
        return 1;
    }
    Table m({"component", "model (g)", "build (g)"});
    m.addRow({"Frame", fmt(res.frameWeightG.value(), 0), "272"});
    m.addRow({"Battery", fmt(res.batteryWeightG.value(), 0), "248"});
    m.addRow({"Motors (4x)", fmt(res.motorSetWeightG.value(), 0),
              "220"});
    m.addRow({"ESC (4x)", fmt(res.escSetWeightG.value(), 0), "112"});
    m.addRow({"Props (4x)", fmt(res.propSetWeightG.value(), 0), "40"});
    m.addRow({"Compute", fmt(res.inputs.compute.weightG, 0), "73"});
    m.addRow(
        {"Support/wiring",
         fmt((res.wiringWeightG + res.inputs.sensorWeightG).value(), 0),
         "106"});
    m.addRow({"TOTAL", fmt(res.totalWeightG.value(), 0), "1071"});
    m.print();

    std::printf("\nModel flight time: %.1f min "
                "(paper baseline: ~15 min)\n",
                res.flightTimeMin.value());
    return 0;
}
