/**
 * @file
 * Figure 17 reproduction: ORB-style SLAM speedup over the RPi for
 * TX2 and FPGA, per EuRoC-like sequence, with the phase breakdown
 * (feature extraction/matching vs local vs global bundle
 * adjustment) and geomean row.
 */

#include <cstdio>

#include "platform/exec_model.hh"
#include "util/table.hh"

using namespace dronedse;

int
main()
{
    std::printf("=== Figure 17: SLAM speedup over RPi ===\n\n");

    const Figure17Data data = runFigure17();

    Table t({"sequence", "difficulty", "RPi (s)", "TX2 speedup",
             "FPGA speedup", "ASIC speedup", "RPi BA share"});
    for (const auto &row : data.rows) {
        t.addRow({row.sequence, row.difficulty,
                  fmt(row.totalSeconds[0], 1),
                  fmt(row.speedup[1], 2) + "x",
                  fmt(row.speedup[2], 2) + "x",
                  fmt(row.speedup[3], 2) + "x",
                  fmtPercent(row.rpiBaFraction, 0)});
    }
    t.addRow({"GMEAN", "-", "-", fmt(data.geomeanSpeedup[1], 2) + "x",
              fmt(data.geomeanSpeedup[2], 2) + "x",
              fmt(data.geomeanSpeedup[3], 2) + "x", "-"});
    t.print();

    std::printf("\nPaper geomeans: TX2 2.16x, FPGA 30.70x "
                "(ASIC/Navion-style 23.53x in Table 5).\n");

    std::printf("\nPhase split on the accelerators (MH01):\n");
    const auto &mh01 = data.rows.front();
    Table p({"platform", "feature+match (s)", "tracking (s)",
             "local BA (s)", "global BA (s)"});
    auto prow = [&](const char *name, const PlatformTimes &pt) {
        p.addRow({name,
                  fmt(pt.phaseSeconds[0] + pt.phaseSeconds[1], 2),
                  fmt(pt.phaseSeconds[2], 3),
                  fmt(pt.phaseSeconds[3], 2),
                  fmt(pt.phaseSeconds[4], 2)});
    };
    prow("TX2", mh01.tx2);
    prow("FPGA", mh01.fpga);
    p.print();

    std::printf("\nShape checks: bundle adjustment dominates the RPi "
                "baseline (~90%% on easy sequences);\nthe FPGA's "
                "dense-matrix BA pipeline is what buys its lead "
                "(paper Section 5.2).\n");
    return 0;
}
