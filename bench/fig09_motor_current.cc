/**
 * @file
 * Figure 9 reproduction: per-motor max current draw vs basic weight
 * at TWR = 2, grouped by supply voltage (1S-6S) and wheelbase class
 * (50/100/200/450/800 mm with 1"/2"/5"/10"/20" propellers).
 */

#include <cstdio>

#include "dse/sweep.hh"
#include "util/table.hh"

using namespace dronedse;

namespace {

struct Panel
{
    const char *label;
    double propIn;
    double basicLo, basicHi, step;
};

void
printPanel(const Panel &panel)
{
    std::printf("--- %s (prop %.0f\", TWR=2) ---\n", panel.label,
                panel.propIn);
    std::vector<std::string> headers{"basic weight (g)"};
    for (int cells = 1; cells <= 6; ++cells)
        headers.push_back(std::to_string(cells) + "S (A)");
    Table t(headers);

    for (double basic = panel.basicLo; basic <= panel.basicHi + 1e-9;
         basic += panel.step) {
        std::vector<std::string> row{fmt(basic, 0)};
        for (int cells = 1; cells <= 6; ++cells) {
            const auto curve = motorCurrentCurve(
                Quantity<Inches>(panel.propIn), cells,
                Quantity<Grams>(basic), Quantity<Grams>(basic),
                Quantity<Grams>(1.0));
            row.push_back(
                curve.empty()
                    ? "-"
                    : fmt(curve[0].motorCurrentA.value(), 1));
        }
        t.addRow(row);
    }
    t.print();

    // Kv annotations, as in the figure legends.
    std::printf("matched Kv at mid-weight: ");
    const double mid = 0.5 * (panel.basicLo + panel.basicHi);
    for (int cells = 1; cells <= 6; ++cells) {
        const auto curve = motorCurrentCurve(
            Quantity<Inches>(panel.propIn), cells, Quantity<Grams>(mid),
            Quantity<Grams>(mid), Quantity<Grams>(1.0));
        if (!curve.empty())
            std::printf("%dS=%.0fKv ", cells, curve[0].kv);
    }
    std::printf("\n\n");
}

} // namespace

int
main()
{
    std::printf("=== Figure 9: motor current draw vs basic weight ===\n"
                "(basic weight excludes battery, ESCs, motors)\n\n");

    const Panel panels[] = {
        {"(a) 50mm", 1.0, 100.0, 600.0, 100.0},
        {"(a) 100mm", 2.0, 100.0, 600.0, 100.0},
        {"(b) 200mm", 5.0, 100.0, 1100.0, 200.0},
        {"(c) 450mm", 10.0, 100.0, 1800.0, 300.0},
        {"(d) 800mm", 20.0, 100.0, 2700.0, 400.0},
    };
    for (const auto &panel : panels)
        printPanel(panel);

    std::printf("Shape checks (paper Section 3.1):\n"
                "  - current grows with basic weight in every panel\n"
                "  - more cells -> lower current at equal weight\n"
                "  - small props need extreme Kv ratings "
                "(compare 100mm vs 800mm Kv annotations)\n");
    return 0;
}
