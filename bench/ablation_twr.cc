/**
 * @file
 * Ablation beyond the paper's figures: repeat the Figure 10
 * footprint analysis at TWR 2-4.  Section 7 states that higher TWR
 * values yield a lower contribution of computation power; this bench
 * quantifies that claim with the same model.
 */

#include <cstdio>

#include "components/compute_board.hh"
#include "dse/sweep.hh"
#include "dse/weight_closure.hh"
#include "util/table.hh"

using namespace dronedse;
using namespace dronedse::unit_literals;

int
main()
{
    std::printf("=== Ablation: computation footprint vs TWR ===\n\n");

    const auto &spec = classSpec(SizeClass::Medium);
    Table t({"TWR", "best flight time (min)", "avg power (W)",
             "20W compute share @hover", "20W compute share @maneuver"});

    double prev_share = 1.0;
    bool monotone = true;
    for (double twr = 2.0; twr <= 4.0 + 1e-9; twr += 0.5) {
        const DesignResult best =
            bestConfiguration(spec, advancedChip20W(), 250.0_mah, twr);
        // Re-evaluate the same configuration while maneuvering.
        DesignInputs man = best.inputs;
        man.activity = FlightActivity::Maneuvering;
        const DesignResult man_res = solveDesign(man);

        t.addRow({fmt(twr, 1), fmt(best.flightTimeMin.value(), 1),
                  fmt(best.avgPowerW.value(), 0),
                  fmtPercent(best.computePowerFraction),
                  fmtPercent(man_res.computePowerFraction)});

        if (best.computePowerFraction > prev_share + 1e-9)
            monotone = false;
        prev_share = best.computePowerFraction;
    }
    t.print();

    std::printf("\nShape check: compute share decreases with TWR "
                "(paper Section 7) -> %s\n",
                monotone ? "HOLDS" : "VIOLATED");
    return 0;
}
