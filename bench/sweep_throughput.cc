/**
 * @file
 * Sweep-engine throughput bench: serial reference vs `SweepEngine`
 * at 1/2/4/8 threads on the Figure 10 footprint grids (all three
 * size classes, both chips, both activities, cells 1-6), plus a
 * cold-cache batch-vs-scalar series (SoA `solveDesignBatch` kernel
 * vs per-point `solveDesign`) that measures the raw-compute win the
 * memo cache would otherwise mask.
 *
 * Emits machine-readable results — points/s, cache hit rates,
 * speedups, a serial-vs-engine CSV identity check, and the span
 * tracer's overhead on the sweep (runtime-enabled vs disabled;
 * budget <3%) — as `BENCH_sweep.json`.
 *
 * Usage: sweep_throughput [out.json] [--cold]
 *
 * `--cold` re-measures every cold series best-of-3 with
 * `clearCache()` between repetitions, so each rep is a genuinely
 * cold solve; without it a rerun on the same engine would score
 * cache hits and report a warm number as cold.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "components/compute_board.hh"
#include "dse/batch_solve.hh"
#include "dse/export.hh"
#include "dse/sweep.hh"
#include "dse/weight_closure.hh"
#include "engine/engine.hh"
#include "obs/tracer.hh"
#include "util/logging.hh"

using namespace dronedse;
using namespace dronedse::unit_literals;

namespace {

std::vector<SweepSpec>
fig10Grids()
{
    std::vector<SweepSpec> specs;
    for (SizeClass cls :
         {SizeClass::Small, SizeClass::Medium, SizeClass::Large}) {
        SweepSpec spec = classSweepSpec(classSpec(cls),
                                        {1, 2, 3, 4, 5, 6}, 100.0_mah,
                                        basicChip3W());
        spec.boards = {advancedChip20W(), basicChip3W()};
        spec.activities = {FlightActivity::Hovering,
                           FlightActivity::Maneuvering};
        specs.push_back(std::move(spec));
    }
    return specs;
}

double
now_seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Feasible-only CSV of a full solved grid (the serial contract). */
std::string
feasibleCsv(const std::vector<DesignResult> &points)
{
    std::vector<DesignResult> feasible;
    for (const auto &res : points) {
        if (res.feasible)
            feasible.push_back(res);
    }
    return sweepToCsv(feasible).str();
}

std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return std::string(buf);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_sweep.json";
    bool cold_mode = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--cold")
            cold_mode = true;
        else
            out_path = arg;
    }
    const int cold_reps = cold_mode ? 3 : 1;
    const std::vector<SweepSpec> specs = fig10Grids();

    std::size_t grid_points = 0;
    for (const auto &spec : specs)
        grid_points += spec.pointCount();
    std::printf("=== Sweep engine throughput (Fig 10 grids, %zu "
                "points) ===\n\n",
                grid_points);

    // Serial reference: plain solveDesign over the expanded grids.
    const auto serial_start = std::chrono::steady_clock::now();
    std::string serial_csv;
    for (const auto &spec : specs)
        serial_csv += feasibleCsv(runSweepSerial(spec));
    const double serial_seconds = now_seconds_since(serial_start);
    const double serial_pps =
        static_cast<double>(grid_points) / serial_seconds;
    std::printf("serial          %8.3f s   %9.0f points/s\n",
                serial_seconds, serial_pps);

    std::string json = "{\"bench\": \"sweep_throughput\"";
    json += ", \"grid_points\": " + std::to_string(grid_points);
    json += ", \"serial\": {\"wall_seconds\": " + num(serial_seconds);
    json += ", \"points_per_second\": " + num(serial_pps) + "}";
    json += ", \"engine\": [";

    bool first = true;
    for (int threads : {1, 2, 4, 8}) {
        engine::SweepEngine eng{
            engine::EngineOptions{.threads = threads}};

        // Cold pass: every point is a miss and a real solve.  In
        // --cold mode the pass repeats best-of-N, with clearCache()
        // wiping the memo between reps so rep 2+ stays a real solve
        // instead of an all-hits replay masquerading as cold.
        double cold_seconds = 1e300;
        std::string engine_csv;
        for (int rep = 0; rep < cold_reps; ++rep) {
            if (rep > 0)
                eng.clearCache();
            const auto cold_start = std::chrono::steady_clock::now();
            std::string rep_csv;
            for (const auto &spec : specs)
                rep_csv += feasibleCsv(eng.run(spec).points);
            cold_seconds =
                std::min(cold_seconds, now_seconds_since(cold_start));
            engine_csv = std::move(rep_csv);
        }
        const engine::CacheCounters cold_cache = eng.cacheCounters();

        // Warm pass: the same grids again; the closure is all hits.
        const auto warm_start = std::chrono::steady_clock::now();
        for (const auto &spec : specs)
            eng.run(spec);
        const double warm_seconds = now_seconds_since(warm_start);
        const engine::CacheCounters total_cache = eng.cacheCounters();
        const std::uint64_t warm_hits =
            total_cache.hits - cold_cache.hits;
        const std::uint64_t warm_misses =
            total_cache.misses - cold_cache.misses;
        const double warm_hit_rate =
            warm_hits + warm_misses == 0
                ? 0.0
                : static_cast<double>(warm_hits) /
                      static_cast<double>(warm_hits + warm_misses);

        const bool identical = engine_csv == serial_csv;
        const double cold_pps =
            static_cast<double>(grid_points) / cold_seconds;
        const double warm_pps =
            static_cast<double>(grid_points) / warm_seconds;
        std::printf("engine %2d thr   %8.3f s   %9.0f points/s cold   "
                    "%8.3f s %9.0f points/s warm   csv %s\n",
                    threads, cold_seconds, cold_pps, warm_seconds,
                    warm_pps, identical ? "identical" : "DIVERGED");

        if (!first)
            json += ", ";
        first = false;
        json += "{\"threads\": " + std::to_string(threads);
        json += ", \"cold\": {\"wall_seconds\": " + num(cold_seconds);
        json += ", \"points_per_second\": " + num(cold_pps);
        json += ", \"cache_hit_rate\": " + num(cold_cache.hitRate()) +
                "}";
        json += ", \"warm\": {\"wall_seconds\": " + num(warm_seconds);
        json += ", \"points_per_second\": " + num(warm_pps);
        json += ", \"cache_hit_rate\": " + num(warm_hit_rate) + "}";
        json += ", \"speedup_vs_serial\": " +
                num(serial_seconds / cold_seconds);
        json += ", \"csv_identical\": ";
        json += identical ? "true" : "false";
        json += "}";
    }
    json += "]";

    // Batch-vs-scalar, cold cache: the same grids through the same
    // engine with only `batchSolve` toggled, clearCache() before
    // every timed pass so each one measures raw solves — the SoA
    // kernel against one `solveDesign` per point — rather than memo
    // hits.  This is the series that shows the kernel's raw-compute
    // win; everything above mixes in cache effects.
    std::printf("\n--- batch vs scalar, cold cache (best of %d) ---\n",
                cold_reps);
    json += ", \"batch_vs_scalar\": {\"cold_cache\": true";
    json += ", \"reps\": " + std::to_string(cold_reps);

    // Raw kernel series: `solveDesign` loop vs `solveDesignBatch`
    // with the memo cache bypassed outright — no quantization, no
    // lookups, no inserts — so the number is the SoA kernel's
    // compute win and nothing else.
    {
        std::vector<DesignInputs> flat_grid;
        for (const auto &spec : specs) {
            const std::vector<DesignInputs> grid = expandGrid(spec);
            flat_grid.insert(flat_grid.end(), grid.begin(),
                             grid.end());
        }
        std::vector<DesignResult> flat_out(flat_grid.size());
        double raw_scalar = 1e300, raw_batch = 1e300;
        for (int rep = 0; rep < cold_reps; ++rep) {
            auto start = std::chrono::steady_clock::now();
            for (std::size_t i = 0; i < flat_grid.size(); ++i)
                flat_out[i] = solveDesign(flat_grid[i]);
            raw_scalar =
                std::min(raw_scalar, now_seconds_since(start));
            start = std::chrono::steady_clock::now();
            solveDesignBatch(
                std::span<const DesignInputs>(flat_grid),
                std::span<DesignResult>(flat_out));
            raw_batch = std::min(raw_batch, now_seconds_since(start));
        }
        const double raw_scalar_pps =
            static_cast<double>(flat_grid.size()) / raw_scalar;
        const double raw_batch_pps =
            static_cast<double>(flat_grid.size()) / raw_batch;
        std::printf("raw kernel (no cache)   scalar %9.0f points/s   "
                    "batch %9.0f points/s   speedup %.2fx\n",
                    raw_scalar_pps, raw_batch_pps,
                    raw_scalar / raw_batch);
        json += ", \"raw_kernel\": {\"scalar_points_per_second\": " +
                num(raw_scalar_pps);
        json +=
            ", \"batch_points_per_second\": " + num(raw_batch_pps);
        json += ", \"batch_speedup\": " +
                num(raw_scalar / raw_batch) + "}";
    }

    json += ", \"series\": [";
    bool first_bvs = true;
    for (int threads : {1, 4}) {
        double scalar_seconds = 1e300, batch_seconds = 1e300;
        std::string scalar_csv_out, batch_csv_out;
        for (const bool batch : {false, true}) {
            engine::SweepEngine eng{engine::EngineOptions{
                .threads = threads, .batchSolve = batch}};
            for (int rep = 0; rep < cold_reps; ++rep) {
                eng.clearCache();
                // Time only the sweeps; CSV formatting is the same
                // either way and would otherwise swamp the solver.
                std::vector<engine::SweepResult> runs;
                const auto start = std::chrono::steady_clock::now();
                for (const auto &spec : specs)
                    runs.push_back(eng.run(spec));
                const double seconds = now_seconds_since(start);
                std::string rep_csv;
                for (const auto &run : runs)
                    rep_csv += feasibleCsv(run.points);
                if (batch) {
                    batch_seconds = std::min(batch_seconds, seconds);
                    batch_csv_out = std::move(rep_csv);
                } else {
                    scalar_seconds = std::min(scalar_seconds, seconds);
                    scalar_csv_out = std::move(rep_csv);
                }
            }
        }
        const bool identical = batch_csv_out == scalar_csv_out &&
                               batch_csv_out == serial_csv;
        const double scalar_pps =
            static_cast<double>(grid_points) / scalar_seconds;
        const double batch_pps =
            static_cast<double>(grid_points) / batch_seconds;
        const double speedup = scalar_seconds / batch_seconds;
        std::printf("%2d thr   scalar %9.0f points/s   batch %9.0f "
                    "points/s   speedup %.2fx   csv %s\n",
                    threads, scalar_pps, batch_pps, speedup,
                    identical ? "identical" : "DIVERGED");

        if (!first_bvs)
            json += ", ";
        first_bvs = false;
        json += "{\"threads\": " + std::to_string(threads);
        json += ", \"scalar\": {\"wall_seconds\": " +
                num(scalar_seconds);
        json += ", \"points_per_second\": " + num(scalar_pps) + "}";
        json +=
            ", \"batch\": {\"wall_seconds\": " + num(batch_seconds);
        json += ", \"points_per_second\": " + num(batch_pps) + "}";
        json += ", \"batch_speedup\": " + num(speedup);
        json += ", \"csv_identical\": ";
        json += identical ? "true" : "false";
        json += "}";
    }
    json += "]}";

    // Tracer overhead on the Fig 10 sweep: cold passes on a fresh
    // engine (so every point is a real solve), best-of-N to shave
    // scheduler noise, tracer runtime-off vs runtime-on.  The
    // compiled-out configuration (-DDRONEDSE_TRACING=OFF) is proven
    // by the CI `obs` job; a single binary can only compare runtime
    // states.
    constexpr int kOverheadReps = 5;
    constexpr int kOverheadThreads = 4;
    const auto cold_sweep_seconds = [&specs] {
        engine::SweepEngine eng{
            engine::EngineOptions{.threads = kOverheadThreads}};
        const auto start = std::chrono::steady_clock::now();
        for (const auto &spec : specs)
            eng.run(spec);
        return now_seconds_since(start);
    };
    double off_seconds = 1e300, on_seconds = 1e300;
    std::size_t spans_recorded = 0;
    obs::tracer().setEnabled(false);
    for (int rep = 0; rep < kOverheadReps; ++rep)
        off_seconds = std::min(off_seconds, cold_sweep_seconds());
    obs::tracer().setEnabled(true);
    for (int rep = 0; rep < kOverheadReps; ++rep) {
        obs::tracer().clear();
        on_seconds = std::min(on_seconds, cold_sweep_seconds());
        spans_recorded = obs::tracer().snapshot().size();
    }
    obs::tracer().setEnabled(false);
    obs::tracer().clear();
    const double overhead_pct =
        off_seconds > 0.0
            ? 100.0 * (on_seconds - off_seconds) / off_seconds
            : 0.0;
    const bool compiled_in = DRONEDSE_TRACING != 0;
    std::printf("\ntracer overhead (%d thr, best of %d): off %.3f s, "
                "on %.3f s -> %+.2f%% (%zu spans, budget <3%%)\n",
                kOverheadThreads, kOverheadReps, off_seconds,
                on_seconds, overhead_pct, spans_recorded);

    json += ", \"tracing\": {\"compiled_in\": ";
    json += compiled_in ? "true" : "false";
    json += ", \"threads\": " + std::to_string(kOverheadThreads);
    json += ", \"disabled_wall_seconds\": " + num(off_seconds);
    json += ", \"enabled_wall_seconds\": " + num(on_seconds);
    json += ", \"overhead_pct\": " + num(overhead_pct);
    json += ", \"spans_recorded\": " + std::to_string(spans_recorded);
    json += ", \"budget_pct\": 3}";
    json += "}\n";

    std::ofstream out(out_path);
    if (!out)
        fatal("sweep_throughput: cannot write " + out_path);
    out << json;
    out.close();
    std::printf("\nWrote %s\n", out_path.c_str());
    return 0;
}
