/**
 * @file
 * Fleet-engine throughput bench: the full composed scenario catalog
 * (11 singles + every cleanly-composing ordered pair) at a
 * per-scenario drone population, flown at 1/2/4/8 threads.
 *
 * Emits `BENCH_fleet.json` with missions/s per thread count, the
 * scaling ratios, and a byte-identity check of the full ECDF CSV
 * across every thread count against the serial run (the fleet
 * determinism contract, DESIGN.md §16).  The acceptance gate is
 * >= 1000 missions/s at 8 threads on this composed workload —
 * roughly the 25 ms/mission full-stack harness times 25, which is
 * what makes million-mission risk studies tractable.
 *
 * Usage: fleet_throughput [out.json] [--drones N]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "fleet/fleet.hh"
#include "util/logging.hh"

using namespace dronedse;
using namespace dronedse::fleet;

namespace {

double
now_seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return std::string(buf);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_fleet.json";
    std::size_t drones = 64;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--drones") == 0 && i + 1 < argc)
            drones =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        else
            out_path = argv[i];
    }

    ComposedCatalog catalog = composedCatalog();
    FleetSpec spec;
    spec.mission = findMission("survey");
    spec.scenarios = std::move(catalog.scenarios);
    spec.dronesPerScenario = drones;
    const std::size_t missions =
        spec.scenarios.size() * spec.dronesPerScenario;

    std::printf("=== Fleet throughput: %zu composed scenarios x "
                "%zu drones = %zu missions (%zu pairs rejected) "
                "===\n\n",
                spec.scenarios.size(), spec.dronesPerScenario,
                missions, catalog.rejectedPairs);

    std::string json = "{\"bench\": \"fleet_throughput\"";
    json += ", \"scenarios\": " +
            std::to_string(spec.scenarios.size());
    json += ", \"drones_per_scenario\": " + std::to_string(drones);
    json += ", \"missions\": " + std::to_string(missions);
    json += ", \"series\": [";

    std::string serial_ecdf;
    double serial_seconds = 0.0;
    double mps_at_8 = 0.0;
    bool all_identical = true;
    bool first = true;
    for (int threads : {1, 2, 4, 8}) {
        // Best-of-3 wall time; the result is checked every rep.
        double best_seconds = 1e300;
        std::string ecdf;
        for (int rep = 0; rep < 3; ++rep) {
            const auto start = std::chrono::steady_clock::now();
            const FleetResult result = runFleet(spec, threads);
            const double seconds = now_seconds_since(start);
            best_seconds = std::min(best_seconds, seconds);
            const std::string rep_ecdf = fleetEcdfCsv(result);
            if (rep > 0 && rep_ecdf != ecdf)
                fatal("fleet_throughput: repeat run diverged at " +
                      std::to_string(threads) + " threads");
            ecdf = rep_ecdf;
        }
        if (threads == 1) {
            serial_ecdf = ecdf;
            serial_seconds = best_seconds;
        }
        const bool identical = ecdf == serial_ecdf;
        all_identical = all_identical && identical;

        const double mps =
            static_cast<double>(missions) / best_seconds;
        if (threads == 8)
            mps_at_8 = mps;
        const double speedup = serial_seconds / best_seconds;
        std::printf("threads %d   %8.3f s   %9.0f missions/s   "
                    "x%.2f   ecdf %s\n",
                    threads, best_seconds, mps, speedup,
                    identical ? "identical" : "DIVERGED");

        if (!first)
            json += ", ";
        first = false;
        json += "{\"threads\": " + std::to_string(threads);
        json += ", \"wall_seconds\": " + num(best_seconds);
        json += ", \"missions_per_second\": " + num(mps);
        json += ", \"speedup\": " + num(speedup);
        json += ", \"ecdf_identical\": ";
        json += identical ? "true" : "false";
        json += "}";
    }

    const bool gate = mps_at_8 >= 1000.0 && all_identical;
    json += "], \"ecdf_identical_all\": ";
    json += all_identical ? "true" : "false";
    json += ", \"gate_1000_mps_at_8_threads\": ";
    json += gate ? "true" : "false";
    json += "}\n";

    std::printf("\ngate (>=1000 missions/s at 8 threads, all ECDFs "
                "identical): %s\n", gate ? "PASS" : "FAIL");

    std::ofstream out(out_path);
    if (!out)
        fatal("fleet_throughput: cannot open '" + out_path + "'");
    out << json;
    std::printf("wrote %s\n", out_path.c_str());
    return gate ? 0 : 1;
}
