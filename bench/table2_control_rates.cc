/**
 * @file
 * Table 2 reproduction plus the Section 2.1.3 frequency ablation.
 *
 * (a) On-board sensor data frequencies; (b) controller update
 * frequencies and measured step-response times of the hierarchical
 * cascade; and the paper's central inner-loop claim: 50-500 Hz
 * suffices because the physical response, not computation, is the
 * limit — so response times flatten beyond ~500 Hz.
 */

#include <cstdio>

#include "control/autopilot.hh"
#include "control/cascade.hh"
#include "sim/quadrotor.hh"
#include "util/table.hh"

using namespace dronedse;

namespace {

CascadePlant
plantFor(const QuadrotorParams &p)
{
    return {p.massKg, p.inertiaDiag,
            {p.armLengthM, p.yawTorquePerThrust, p.maxThrustPerMotorN}};
}

/** 90 % step-response time of the rate (thrust) level. */
double
rateResponse(double thrust_hz)
{
    QuadrotorParams p;
    Quadrotor quad(p);
    LoopRates rates;
    rates.thrustHz = thrust_hz;
    rates.attitudeHz = std::min(200.0, thrust_hz);
    rates.positionHz = std::min(40.0, thrust_hz / 2.0);
    CascadeController ctrl(plantFor(p), rates);
    ctrl.overrideRateTarget({1.0, 0.0, 0.0});
    const int divider =
        std::max(1, static_cast<int>(1000.0 / thrust_hz));
    double t = 0.0;
    std::array<double, 4> cmd =
        ctrl.tick(quad.state(), OuterLoopTargets{});
    for (int i = 0; i < 3000; ++i) {
        if (i % divider == 0)
            cmd = ctrl.tick(quad.state(), OuterLoopTargets{});
        quad.commandMotors(cmd);
        quad.step(0.001);
        t += 0.001;
        if (quad.state().angularVelocity.x >= 0.9)
            return t;
    }
    return -1.0;
}

double
attitudeResponse()
{
    QuadrotorParams p;
    Quadrotor quad(p);
    CascadeController ctrl(plantFor(p));
    ctrl.overrideAttitudeTarget(Quaternion::fromEuler(0.3, 0, 0));
    double t = 0.0;
    for (int i = 0; i < 5000; ++i) {
        quad.commandMotors(ctrl.tick(quad.state(), {}));
        quad.step(0.001);
        t += 0.001;
        if (quad.state().attitude.roll() >= 0.27)
            return t;
    }
    return -1.0;
}

double
positionResponse()
{
    QuadrotorParams p;
    Quadrotor quad(p);
    RigidBodyState s;
    s.position = {0, 0, 1};
    quad.setState(s);
    CascadeController ctrl(plantFor(p));
    OuterLoopTargets targets;
    targets.position = {1, 0, 1};
    double t = 0.0;
    for (int i = 0; i < 10000; ++i) {
        quad.commandMotors(ctrl.tick(quad.state(), targets));
        quad.step(0.001);
        t += 0.001;
        if (quad.state().position.x >= 0.9)
            return t;
    }
    return -1.0;
}

} // namespace

int
main()
{
    std::printf("=== Table 2a: sensor data frequencies ===\n\n");
    SensorRates rates;
    Table a({"sensor", "model rate", "paper range"});
    a.addRow({"accelerometer", fmt(rates.accelHz, 0) + " Hz",
              "100-200 Hz"});
    a.addRow({"gyroscope", fmt(rates.gyroHz, 0) + " Hz",
              "100-200 Hz"});
    a.addRow({"magnetometer", fmt(rates.magHz, 0) + " Hz", "10 Hz"});
    a.addRow({"barometer", fmt(rates.baroHz, 0) + " Hz", "10-20 Hz"});
    a.addRow({"GPS", fmt(rates.gpsHz, 0) + " Hz", "1-40 Hz"});
    a.print();

    std::printf("\n=== Table 2b: controller rates & response ===\n\n");
    LoopRates loops;
    const double t_rate = rateResponse(loops.thrustHz);
    const double t_att = attitudeResponse();
    const double t_pos = positionResponse();
    Table b({"controller", "update rate", "measured response",
             "paper response"});
    b.addRow({"thrust (low)", fmt(loops.thrustHz, 0) + " Hz",
              fmt(t_rate * 1000.0, 0) + " ms", "50 ms"});
    b.addRow({"attitude (mid)", fmt(loops.attitudeHz, 0) + " Hz",
              fmt(t_att * 1000.0, 0) + " ms", "100 ms"});
    b.addRow({"position (high)", fmt(loops.positionHz, 0) + " Hz",
              fmt(t_pos, 2) + " s", "1 s"});
    b.print();

    std::printf("\n=== Inner-loop frequency ablation ===\n"
                "(90%% rate-step response vs inner-loop rate)\n\n");
    Table c({"inner-loop rate", "response (ms)", "note"});
    for (double hz : {50.0, 100.0, 250.0, 500.0, 1000.0, 2000.0}) {
        const double r = rateResponse(hz);
        std::string note;
        if (hz <= 500.0)
            note = "paper's commercial band (50-500 Hz)";
        else
            note = "beyond the physical response limit";
        c.addRow({fmt(hz, 0) + " Hz",
                  r > 0 ? fmt(r * 1000.0, 0) : "unstable", note});
    }
    c.print();

    std::printf("\nClaim check (Section 2.1.3D): response time "
                "flattens above ~500 Hz — the inner loop is limited "
                "by the drone's physical response (motor lag, "
                "inertia), not by computation.\n");
    return 0;
}
