/**
 * @file
 * Figure 16 reproduction: (a) RPi power across the bench/flight
 * phases; (b) whole-drone power through a simulated measurement
 * flight (idle, takeoff, hover, maneuvering, landing).
 */

#include <cstdio>

#include "power/board_power.hh"
#include "power/drone_power.hh"
#include "util/table.hh"

using namespace dronedse;

int
main()
{
    std::printf("=== Figure 16a: RPi power during the mission ===\n\n");
    const auto script = figure16aScript();
    const PowerTrace board = boardPowerTrace(script);

    Table a({"phase", "start (s)", "mean (W)", "max (W)"});
    for (std::size_t i = 0; i < board.phases.size(); ++i) {
        const double t0 = board.phases[i].first;
        const double t1 = i + 1 < board.phases.size()
                              ? board.phases[i + 1].first
                              : board.samples.back().t;
        a.addRow({board.phases[i].second, fmt(t0, 0),
                  fmt(board.meanW(t0, t1).value(), 2),
                  fmt(board.maxW(t0, t1).value(), 2)});
    }
    a.print();
    std::printf("\nPaper measurements: autopilot 3.39 W; +SLAM idle "
                "4.05 W; +SLAM flying 4.56 W avg (5 W peak).\n");

    std::printf("\n=== Figure 16b: whole-drone power in flight ===\n\n");
    const FlightPowerResult flight = flyMeasurementFlight();

    Table b({"phase", "start (s)"});
    for (const auto &[t0, label] : flight.trace.phases)
        b.addRow({label, fmt(t0, 1)});
    b.print();

    std::printf("\nflight mean: %.0f W (paper: ~130 W average)\n",
                flight.flightMeanW.value());
    std::printf("hover mean:  %.0f W\n", flight.hoverMeanW.value());
    std::printf("maneuver peak: %.0f W (paper: up to ~250 W)\n",
                flight.maneuverPeakW.value());
    std::printf("energy drawn: %.1f Wh, final SoC %.0f%%, stable=%s\n",
                flight.energyDrawnWh.value(), 100.0 * flight.finalSoc,
                flight.stableFlight ? "yes" : "NO");

    // A coarse ASCII strip chart of the whole-drone trace.
    std::printf("\npower trace (1 char per 2 s, ~28 W per step):\n");
    double t_next = 0.0;
    std::string strip;
    for (const auto &s : flight.trace.samples) {
        if (s.t >= t_next) {
            const int level =
                std::min(9, static_cast<int>(s.powerW / 28.0));
            strip += static_cast<char>('0' + level);
            t_next += 2.0;
        }
    }
    std::printf("%s\n", strip.c_str());
    return 0;
}
