/**
 * @file
 * serve_loadgen: closed-loop load generator for dse_server.
 *
 * Starts an in-process TCP server, precomputes the exact expected
 * reply bytes for every request through the *serial* model path
 * (`solveDesign` / `runSweepSerial` + the shared serializers), then
 * hammers the socket with 1/2/4/8 closed-loop client threads and
 * byte-compares every reply against the oracle.  Any divergence —
 * a torn frame, a cache returning the wrong point, a worker racing
 * the serializer — fails the run (nonzero exit).
 *
 * Emits `BENCH_serve.json`: per-client-count throughput, latency
 * percentiles, and shed rate, the serving-layer row of the bench
 * trajectory next to `BENCH_sweep.json`.
 *
 * Usage: serve_loadgen [--requests N] [--workers N] [--output PATH]
 *   --requests N  total requests per client-count run (default 20000)
 *   --workers N   server worker threads (default 4)
 *   --output PATH output JSON path (default BENCH_serve.json)
 */

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "dse/sweep.hh"
#include "dse/weight_closure.hh"
#include "engine/pareto.hh"
#include "serve/request.hh"
#include "serve/server.hh"
#include "util/json.hh"
#include "util/logging.hh"

using namespace dronedse;

namespace {

struct Options
{
    int requests = 20000;
    int workers = 4;
    std::string outputPath = "BENCH_serve.json";
};

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
            opts.requests = std::atoi(argv[++i]);
            if (opts.requests < 1)
                fatal("serve_loadgen: --requests expects a positive "
                      "integer");
        } else if (std::strcmp(argv[i], "--workers") == 0 &&
                   i + 1 < argc) {
            opts.workers = std::atoi(argv[++i]);
            if (opts.workers < 1)
                fatal("serve_loadgen: --workers expects a positive "
                      "integer");
        } else if (std::strcmp(argv[i], "--output") == 0 &&
                   i + 1 < argc) {
            opts.outputPath = argv[++i];
        } else {
            fatal(std::string("serve_loadgen: unknown argument '") +
                  argv[i] +
                  "' (usage: serve_loadgen [--requests N] "
                  "[--workers N] [--output PATH])");
        }
    }
    return opts;
}

/** The request mix: distinct design points cycled by every client. */
struct Workload
{
    std::vector<std::string> frames;
    std::vector<std::string> expected; // oracle reply per frame
};

Workload
buildWorkload()
{
    // 240 distinct points spanning the small/medium envelope; the
    // oracle solves each through the plain serial `solveDesign`
    // path (no engine, no cache) and serializes with the same
    // functions the server uses.
    Workload load;
    std::uint64_t id = 0;
    for (double wheelbase : {250.0, 330.0, 450.0, 600.0}) {
        for (int cells : {2, 3, 4, 5, 6}) {
            for (double capacity : {1500.0, 2200.0, 3000.0, 4000.0,
                                    5200.0, 6600.0}) {
                for (double twr : {2.0, 3.0}) {
                    serve::Request request;
                    request.id = id++;
                    request.kind = serve::QueryKind::Design;
                    request.cls = serve::QueryClass::Interactive;
                    request.point.wheelbaseMm =
                        Quantity<Millimeters>(wheelbase);
                    request.point.cells = cells;
                    request.point.capacityMah =
                        Quantity<MilliampHours>(capacity);
                    request.point.twr = twr;
                    load.frames.push_back(
                        serve::serializeRequest(request));
                    load.expected.push_back(
                        serve::serializeDesignReply(
                            request.id, solveDesign(request.point)));
                }
            }
        }
    }
    return load;
}

/** One blocking line-protocol TCP client. */
class Client
{
  public:
    explicit Client(std::uint16_t port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0)
            fatal("serve_loadgen: socket() failed");
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) < 0)
            fatal("serve_loadgen: connect() failed");
    }

    ~Client()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    /** Send one frame and block for its reply line. */
    std::string roundTrip(const std::string &frame)
    {
        std::string wire = frame;
        wire += '\n';
        std::size_t sent = 0;
        while (sent < wire.size()) {
            const ssize_t n = ::write(fd_, wire.data() + sent,
                                      wire.size() - sent);
            if (n <= 0)
                fatal("serve_loadgen: write() failed");
            sent += static_cast<std::size_t>(n);
        }
        while (true) {
            const std::size_t newline = buffer_.find('\n');
            if (newline != std::string::npos) {
                std::string reply = buffer_.substr(0, newline);
                buffer_.erase(0, newline + 1);
                return reply;
            }
            char chunk[65536];
            const ssize_t n = ::read(fd_, chunk, sizeof chunk);
            if (n <= 0)
                fatal("serve_loadgen: server closed the connection");
            buffer_.append(chunk, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd_ = -1;
    std::string buffer_;
};

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const std::size_t rank = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(sorted.size()) - 1.0,
                         p * static_cast<double>(sorted.size())));
    return sorted[rank];
}

struct RunResult
{
    int clients = 0;
    int requests = 0;
    double seconds = 0.0;
    double qps = 0.0;
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double shedRate = 0.0;
    int mismatches = 0;
};

RunResult
runClosedLoop(std::uint16_t port, const Workload &load, int clients,
              int total_requests)
{
    std::atomic<int> next{0};
    std::atomic<int> mismatches{0};
    std::atomic<int> shed{0};
    std::vector<std::vector<double>> latencies(
        static_cast<std::size_t>(clients));

    const auto worker = [&](int client_index) {
        Client client(port);
        auto &lat = latencies[static_cast<std::size_t>(client_index)];
        while (true) {
            const int index = next.fetch_add(1);
            if (index >= total_requests)
                break;
            const std::size_t slot =
                static_cast<std::size_t>(index) % load.frames.size();
            const auto start = std::chrono::steady_clock::now();
            const std::string reply =
                client.roundTrip(load.frames[slot]);
            lat.push_back(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count());
            if (reply == load.expected[slot])
                continue;
            if (reply.find("\"ok\": false") != std::string::npos)
                shed.fetch_add(1);
            else
                mismatches.fetch_add(1);
        }
    };

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int i = 0; i < clients; ++i)
        threads.emplace_back(worker, i);
    for (std::thread &t : threads)
        t.join();
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();

    std::vector<double> all;
    for (const auto &lat : latencies)
        all.insert(all.end(), lat.begin(), lat.end());
    std::sort(all.begin(), all.end());

    RunResult result;
    result.clients = clients;
    result.requests = total_requests;
    result.seconds = seconds;
    result.qps = seconds > 0.0
                     ? static_cast<double>(total_requests) / seconds
                     : 0.0;
    result.p50Ms = percentile(all, 0.50) * 1e3;
    result.p95Ms = percentile(all, 0.95) * 1e3;
    result.p99Ms = percentile(all, 0.99) * 1e3;
    result.shedRate = static_cast<double>(shed.load()) /
                      static_cast<double>(total_requests);
    result.mismatches = mismatches.load();
    return result;
}

/** Sweep-query oracle: server reply vs runSweepSerial, byte for byte. */
bool
checkSweepOracle(std::uint16_t port)
{
    SweepSpec spec;
    spec.airframes = {SweepAirframe{Quantity<Millimeters>(250.0),
                                    Quantity<Inches>(0.0)},
                      SweepAirframe{Quantity<Millimeters>(450.0),
                                    Quantity<Inches>(0.0)}};
    spec.boards = {ComputeBoardRecord{"Basic 3W chip",
                                      BoardClass::Basic, 20.0, 3.0}};
    spec.cells = {3, 4};
    spec.capacityLoMah = Quantity<MilliampHours>(2000.0);
    spec.capacityHiMah = Quantity<MilliampHours>(5000.0);
    spec.capacityStepMah = Quantity<MilliampHours>(500.0);

    serve::Request request;
    request.id = 999983;
    request.kind = serve::QueryKind::Sweep;
    request.spec = spec;

    const std::vector<DesignResult> points = runSweepSerial(spec);
    std::size_t feasible = 0;
    for (const DesignResult &p : points)
        feasible += p.feasible ? 1 : 0;
    const std::string expected = serve::serializeSweepReply(
        request.id, points, feasible, engine::paretoFrontier(points));

    Client client(port);
    const std::string reply =
        client.roundTrip(serve::serializeRequest(request));
    if (reply == expected)
        return true;
    warn("serve_loadgen: sweep reply diverged from the serial "
         "oracle");
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);

    serve::ServerOptions server_options;
    // The bench measures engine-bound serving throughput: open the
    // rate limits wide so admission only acts if the queue backs up.
    server_options.service.admission.interactive = {1e9, 1e9};
    server_options.service.admission.batch = {1e9, 1e9};
    server_options.service.admission.queueCapacity = 8192;
    server_options.workers = opts.workers;
    serve::Server server{server_options};
    const std::uint16_t port = server.start();

    std::printf("=== serve_loadgen: closed-loop protocol bench ===\n");
    const Workload load = buildWorkload();
    std::printf("workload: %zu distinct design queries, %d requests "
                "per run, %d server worker(s)\n",
                load.frames.size(), opts.requests, opts.workers);

    // Warm pass: every distinct point once, so timed runs measure
    // the memoized steady state (the acceptance criterion's
    // "warm-cache" condition).
    {
        Client warm(port);
        for (std::size_t i = 0; i < load.frames.size(); ++i) {
            if (warm.roundTrip(load.frames[i]) != load.expected[i])
                fatal("serve_loadgen: cold-path reply diverged from "
                      "the solveDesign oracle");
        }
    }

    const bool sweep_ok = checkSweepOracle(port);

    std::vector<RunResult> runs;
    int total_mismatches = 0;
    for (int clients : {1, 2, 4, 8}) {
        const RunResult result =
            runClosedLoop(port, load, clients, opts.requests);
        std::printf("clients=%d  %.0f q/s  p50=%.3fms p95=%.3fms "
                    "p99=%.3fms  shed=%.2f%%  mismatches=%d\n",
                    result.clients, result.qps, result.p50Ms,
                    result.p95Ms, result.p99Ms,
                    100.0 * result.shedRate, result.mismatches);
        total_mismatches += result.mismatches;
        runs.push_back(result);
    }
    server.stop();

    std::vector<JsonValue> run_values;
    for (const RunResult &r : runs) {
        run_values.push_back(JsonValue::object({
            {"clients", JsonValue::number(r.clients)},
            {"requests", JsonValue::number(r.requests)},
            {"seconds", JsonValue::number(r.seconds)},
            {"qps", JsonValue::number(r.qps)},
            {"latency_ms",
             JsonValue::object({
                 {"p50", JsonValue::number(r.p50Ms)},
                 {"p95", JsonValue::number(r.p95Ms)},
                 {"p99", JsonValue::number(r.p99Ms)},
             })},
            {"shed_rate", JsonValue::number(r.shedRate)},
            {"mismatches", JsonValue::number(r.mismatches)},
        }));
    }
    const JsonValue doc = JsonValue::object({
        {"bench", JsonValue::string("serve_loadgen")},
        {"distinct_queries",
         JsonValue::number(static_cast<double>(load.frames.size()))},
        {"server_workers", JsonValue::number(opts.workers)},
        {"sweep_oracle_ok", JsonValue::boolean(sweep_ok)},
        {"runs", JsonValue::array(std::move(run_values))},
    });
    std::FILE *f = std::fopen(opts.outputPath.c_str(), "w");
    if (!f)
        fatal("serve_loadgen: cannot open '" + opts.outputPath + "'");
    const std::string text = doc.dump(6) + "\n";
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("Wrote %s\n", opts.outputPath.c_str());

    if (total_mismatches > 0 || !sweep_ok) {
        warn("serve_loadgen: FAILED oracle byte-comparison");
        return 1;
    }
    std::printf("All replies byte-identical to the serial oracle.\n");
    return 0;
}
