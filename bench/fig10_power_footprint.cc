/**
 * @file
 * Figure 10 reproduction, served by the batch sweep engine.
 *
 * Top row (a-c): total power consumption vs all-up weight for the
 * 100/450/800 mm classes with 1S/3S/6S battery families, the best
 * configuration's flight time, and the commercial validation points.
 *
 * Bottom row (d-f): computation power as % of total for 3 W and 20 W
 * chips, hovering and maneuvering.
 *
 * Each panel runs ONE engine sweep per class (the shared
 * `classSweepSpec` grid) and reads every weight bucket out of that
 * result; the old per-bucket re-sweeps become cache lookups.
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "components/compute_board.hh"
#include "dse/sweep.hh"
#include "engine/engine.hh"
#include "util/table.hh"

using namespace dronedse;
using namespace dronedse::unit_literals;

namespace {

/** Feasible results of one (board, activity, cells) sub-series. */
std::vector<DesignResult>
subSeries(const engine::SweepResult &swept, const std::string &board,
          FlightActivity activity, int cells)
{
    std::vector<DesignResult> out;
    for (std::size_t i : swept.feasible) {
        const DesignResult &res = swept.points[i];
        if (res.inputs.compute.name == board &&
            res.inputs.activity == activity &&
            res.inputs.cells == cells) {
            out.push_back(res);
        }
    }
    return out;
}

void
printPowerPanel(engine::SweepEngine &eng, SizeClass cls)
{
    const auto &spec = classSpec(cls);
    std::printf("--- Figure 10 (%s): power vs weight ---\n", spec.label);

    const engine::SweepResult swept = eng.run(
        classSweepSpec(spec, {1, 3, 6}, 100.0_mah, basicChip3W()));

    Table t({"weight (g)", "1S power (W)", "3S power (W)",
             "6S power (W)"});
    // Bucket the per-cells series on the weight axis.
    const double axis_lo = spec.weightAxisLoG.value();
    const double axis_hi = spec.weightAxisHiG.value();
    const double bucket = (axis_hi - axis_lo) / 12.0;
    for (double w = axis_lo; w <= axis_hi + 1e-9; w += bucket) {
        std::vector<std::string> row{fmt(w, 0)};
        for (int cells : {1, 3, 6}) {
            const auto series =
                subSeries(swept, basicChip3W().name,
                          FlightActivity::Hovering, cells);
            std::string cell = "-";
            double best_delta = bucket / 2.0;
            for (const auto &res : series) {
                const double d =
                    std::abs(res.totalWeightG.value() - w);
                if (d < best_delta) {
                    best_delta = d;
                    cell = fmt(res.avgPowerW.value(), 0);
                }
            }
            row.push_back(cell);
        }
        t.addRow(row);
    }
    t.print();

    const DesignResult best = eng.bestConfiguration(spec, basicChip3W());
    std::printf("Best configuration: %.0f mAh %dS, %.0f g -> "
                "%.1f min flight time (paper: %.0f min)\n",
                best.inputs.capacityMah.value(), best.inputs.cells,
                best.totalWeightG.value(), best.flightTimeMin.value(),
                spec.paperBestFlightTimeMin.value());

    std::printf("Commercial validation points:\n");
    for (const auto &drone : commercialDronesInClass(cls)) {
        std::printf("  %-15s %6.0f g  implied hover %.0f W, "
                    "%.0f min\n",
                    drone.name.c_str(), drone.weightG,
                    drone.impliedHoverPowerW().value(),
                    drone.flightTimeMin);
    }
    std::printf("\n");
}

void
printFootprintPanel(engine::SweepEngine &eng, SizeClass cls)
{
    const auto &spec = classSpec(cls);
    std::printf("--- Figure 10 (%s): %% computation power ---\n",
                spec.label);

    // One grid: both chips, both activities, all battery families.
    SweepSpec grid = classSweepSpec(spec, {1, 2, 3, 4, 5, 6},
                                    100.0_mah, basicChip3W());
    grid.boards = {advancedChip20W(), basicChip3W()};
    grid.activities = {FlightActivity::Hovering,
                       FlightActivity::Maneuvering};
    const engine::SweepResult swept = eng.run(grid);

    Table t({"weight (g)", "20W @hover", "20W @maneuver", "3W @hover",
             "3W @maneuver"});
    const double axis_lo = spec.weightAxisLoG.value();
    const double axis_hi = spec.weightAxisHiG.value();
    const double bucket = (axis_hi - axis_lo) / 10.0;
    for (double w = axis_lo; w <= axis_hi + 1e-9; w += bucket) {
        std::vector<std::string> row{fmt(w, 0)};
        for (const auto &board : {advancedChip20W(), basicChip3W()}) {
            for (FlightActivity act : {FlightActivity::Hovering,
                                       FlightActivity::Maneuvering}) {
                // Best (lowest-power) feasible design at this weight
                // across battery families, as in the paper's
                // procedure.
                double best_frac = -1.0, best_power = 1e18;
                for (int cells : {1, 2, 3, 4, 5, 6}) {
                    const auto series =
                        subSeries(swept, board.name, act, cells);
                    for (const auto &res : series) {
                        if (std::abs(res.totalWeightG.value() - w) <
                                bucket / 2.0 &&
                            res.avgPowerW.value() < best_power) {
                            best_power = res.avgPowerW.value();
                            best_frac = res.computePowerFraction;
                        }
                    }
                }
                row.push_back(best_frac < 0.0 ? "-"
                                              : fmtPercent(best_frac));
            }
        }
        t.addRow(row);
    }
    t.print();
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("=== Figure 10: total power and computation "
                "footprint ===\n\n");
    engine::SweepEngine eng;
    for (SizeClass cls :
         {SizeClass::Small, SizeClass::Medium, SizeClass::Large})
        printPowerPanel(eng, cls);
    for (SizeClass cls :
         {SizeClass::Small, SizeClass::Medium, SizeClass::Large})
        printFootprintPanel(eng, cls);

    std::printf("Headline claims (Section 3.2):\n"
                "  - 3 W chips contribute < 5%% of total power\n"
                "  - 20 W systems drop to ~10%% when maneuvering\n"
                "  - medium/large drones: compute savings gain up to "
                "~+2 min\n");

    const engine::CacheCounters cache = eng.cacheCounters();
    std::fprintf(stderr,
                 "[engine] %d thread(s), cache %llu/%llu hits "
                 "(%.0f%%), last sweep %.0f points/s\n",
                 eng.threadCount(),
                 static_cast<unsigned long long>(cache.hits),
                 static_cast<unsigned long long>(cache.hits +
                                                 cache.misses),
                 100.0 * cache.hitRate(),
                 eng.lastRunStats().pointsPerSecond);
    return 0;
}
