/**
 * @file
 * Figure 8 reproduction: (a) ESC max continuous current vs the
 * weight of a set of four ESCs, long- vs short-flight designs;
 * (b) frame wheelbase vs frame weight.
 */

#include <cstdio>

#include "components/esc.hh"
#include "components/frame.hh"
#include "util/table.hh"

using namespace dronedse;

int
main()
{
    std::printf("=== Figure 8a: ESC current vs 4x-ESC weight ===\n\n");

    Rng rng(2021);
    const auto esc_catalog = generateEscCatalog(rng);
    std::printf("Synthetic survey: %zu ESCs (paper surveyed 40)\n\n",
                esc_catalog.size());

    const LinearFit long_refit =
        fitEscCatalog(esc_catalog, EscClass::LongFlight);
    const LinearFit short_refit =
        fitEscCatalog(esc_catalog, EscClass::ShortFlight);
    std::printf("long-flight : paper y = 4.9678x - 15.757 | "
                "refit y = %.4fx + %.3f (R^2 %.3f)\n",
                long_refit.slope, long_refit.intercept,
                long_refit.rSquared);
    std::printf("short-flight: paper y = 1.2269x + 11.816 | "
                "refit y = %.4fx + %.3f (R^2 %.3f)\n\n",
                short_refit.slope, short_refit.intercept,
                short_refit.rSquared);

    Table esc({"max current (A)", "long-flight 4x (g)",
               "short-flight 4x (g)"});
    for (double current = 10.0; current <= 90.0; current += 10.0) {
        const Quantity<Amperes> amps(current);
        esc.addRow(
            {fmt(current, 0),
             fmt(escSetWeightG(amps, EscClass::LongFlight).value(), 0),
             fmt(escSetWeightG(amps, EscClass::ShortFlight).value(),
                 0)});
    }
    esc.print();

    std::printf("\n=== Figure 8b: frame wheelbase vs weight ===\n\n");
    const auto frame_catalog = generateFrameCatalog(rng);
    std::printf("Synthetic survey: %zu frames (paper surveyed 25)\n",
                frame_catalog.size());
    const LinearFit frame_refit = fitFrameCatalog(frame_catalog);
    std::printf("paper fit (x > 200): y = 1.2767x - 167.6 | "
                "refit y = %.4fx + %.1f\n\n",
                frame_refit.slope, frame_refit.intercept);

    Table frames({"wheelbase (mm)", "frame weight (g)", "max prop (in)"});
    for (double wb : {50.0, 100.0, 150.0, 200.0, 300.0, 450.0, 600.0,
                      800.0, 1000.0}) {
        const Quantity<Millimeters> wheelbase(wb);
        frames.addRow(
            {fmt(wb, 0), fmt(frameWeightG(wheelbase).value(), 0),
             fmt(maxPropDiameterIn(wheelbase).value(), 1)});
    }
    frames.print();

    std::printf("\nNamed survey frames:\n");
    for (const auto &rec : frame_catalog) {
        if (rec.name.rfind("Frame-", 0) == 0)
            continue;
        std::printf("  %-20s %6.0f mm  %6.0f g\n", rec.name.c_str(),
                    rec.wheelbaseMm, rec.weightG);
    }
    return 0;
}
