/**
 * @file
 * Figure 15 reproduction: performance counters for the autopilot,
 * SLAM, and autopilot co-scheduled with SLAM on one RPi-class core
 * (IPC, LLC miss rate, branch miss rate) plus the TLB-miss headline
 * (Section 5.1: "SLAM causes 4.5x as many TLB misses as the
 * autopilot alone").
 */

#include <cstdio>

#include "uarch/core.hh"
#include "util/table.hh"

using namespace dronedse;

int
main()
{
    std::printf("=== Figure 15: autopilot vs SLAM contention ===\n\n");

    const std::uint64_t n = 3000000;

    PerfCounters autopilot_alone, slam_alone;
    {
        CorePlatform platform;
        TraceGenerator gen(autopilotProfile(), 1);
        autopilot_alone = runAlone(gen, n, platform);
    }
    {
        CorePlatform platform;
        TraceGenerator gen(slamProfile(), 2);
        slam_alone = runAlone(gen, n, platform);
    }
    CoScheduleResult co;
    {
        CorePlatform platform;
        TraceGenerator ap(autopilotProfile(), 1);
        TraceGenerator sl(slamProfile(), 2);
        co = coSchedule(ap, sl, n, kDefaultSliceInstructions,
                        platform);
    }

    Table t({"workload", "IPC", "LLC miss rate", "branch miss rate",
             "TLB misses / kinst"});
    auto row = [&](const char *name, const PerfCounters &c) {
        t.addRow({name, fmt(c.ipc(), 3), fmtPercent(c.llcMissRate()),
                  fmtPercent(c.branchMissRate()),
                  fmt(1000.0 * static_cast<double>(c.tlbMisses) /
                          static_cast<double>(c.instructions),
                      2)});
    };
    row("Autopilot", autopilot_alone);
    row("SLAM", slam_alone);
    row("Autopilot w/ SLAM", co.first);
    row("SLAM w/ Autopilot", co.second);
    t.print();

    const double tlb_ratio =
        static_cast<double>(co.first.tlbMisses) /
        static_cast<double>(autopilot_alone.tlbMisses);
    const double ipc_ratio = autopilot_alone.ipc() / co.first.ipc();
    std::printf(
        "\nHeadlines vs paper Section 5.1:\n"
        "  autopilot TLB misses with SLAM: %.2fx (paper ~4.5x)\n"
        "  autopilot IPC drop with SLAM:   %.2fx (paper ~1.7x)\n"
        "  LLC / branch miss rates rise with SLAM: %s\n",
        tlb_ratio, ipc_ratio,
        (co.first.llcMissRate() > autopilot_alone.llcMissRate() &&
         co.first.branchMissRate() > autopilot_alone.branchMissRate())
            ? "HOLDS"
            : "VIOLATED");
    std::printf("\nConclusion (paper): heavy outer-loop workloads on "
                "the shared core lag the autopilot;\nthe inner loop "
                "needs its dedicated processor and the heavy work "
                "wants offload.\n");
    return 0;
}
