/**
 * @file
 * google-benchmark timings of the library's hot kernels: the DSE
 * weight-closure solve, FAST detection, BRIEF description, Hamming
 * matching, PnP, bundle adjustment, EKF update, the quadrotor
 * physics step, and the cache-simulator step.
 */

#include <benchmark/benchmark.h>

#include "control/ekf.hh"
#include "dse/sweep.hh"
#include "dse/weight_closure.hh"
#include "slam/ba.hh"
#include "slam/pipeline.hh"
#include "sim/quadrotor.hh"
#include "uarch/core.hh"

namespace dronedse {
namespace {

using namespace unit_literals;

void
BM_DesignClosure(benchmark::State &state)
{
    DesignInputs in;
    in.wheelbaseMm = 450.0_mm;
    in.cells = 3;
    in.capacityMah = 5000.0_mah;
    for (auto _ : state) {
        benchmark::DoNotOptimize(solveDesign(in));
    }
}
BENCHMARK(BM_DesignClosure);

void
BM_ClassSweep(benchmark::State &state)
{
    const auto &spec = classSpec(SizeClass::Medium);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sweepCapacity(spec, 3, 500.0_mah, basicChip3W()));
    }
}
BENCHMARK(BM_ClassSweep);

void
BM_FastDetect(benchmark::State &state)
{
    SyntheticWorld world(findSequence("MH01"));
    const SyntheticFrame frame = world.renderFrame(10);
    for (auto _ : state) {
        benchmark::DoNotOptimize(detectFast(frame.image));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FastDetect);

void
BM_BriefDescribe(benchmark::State &state)
{
    SyntheticWorld world(findSequence("MH01"));
    const SyntheticFrame frame = world.renderFrame(10);
    const auto corners = detectFast(frame.image);
    BriefExtractor brief;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            brief.describeAll(frame.image, corners));
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(corners.size()));
}
BENCHMARK(BM_BriefDescribe);

void
BM_HammingMatch(benchmark::State &state)
{
    SyntheticWorld world(findSequence("MH01"));
    const SyntheticFrame f0 = world.renderFrame(0);
    const SyntheticFrame f1 = world.renderFrame(2);
    BriefExtractor brief;
    const auto a = brief.describeAll(f0.image, detectFast(f0.image));
    const auto b = brief.describeAll(f1.image, detectFast(f1.image));
    for (auto _ : state) {
        benchmark::DoNotOptimize(matchFeatures(a, b));
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(a.size() * b.size()));
}
BENCHMARK(BM_HammingMatch);

void
BM_QuadrotorStep(benchmark::State &state)
{
    Quadrotor quad;
    for (auto _ : state) {
        quad.step(0.001);
        benchmark::DoNotOptimize(quad.state());
    }
}
BENCHMARK(BM_QuadrotorStep);

void
BM_EkfPredictUpdate(benchmark::State &state)
{
    PositionEkf ekf;
    GpsSample gps;
    gps.position = {1, 2, 3};
    for (auto _ : state) {
        ekf.predict({0.1, 0.0, -0.05}, 0.005);
        ekf.updateGps(gps, 0.8, 0.15);
        benchmark::DoNotOptimize(ekf.position());
    }
}
BENCHMARK(BM_EkfPredictUpdate);

void
BM_CacheSimStep(benchmark::State &state)
{
    CorePlatform platform;
    TraceGenerator gen(slamProfile(), 7);
    PerfCounters counters;
    for (auto _ : state) {
        executeEvent(gen.next(), platform, counters);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheSimStep);

void
BM_LocalBundleAdjust(benchmark::State &state)
{
    // Build a small solved map once, then re-optimize perturbed
    // copies (what the pipeline does per keyframe).
    SequenceSpec spec = findSequence("V101");
    spec.frames = 60;
    SyntheticWorld world(spec);
    SlamPipeline pipeline(world.camera());
    pipeline.bootstrap(world.renderFrame(0), world.renderFrame(18));
    for (int i = 19; i < spec.frames; ++i)
        pipeline.processFrame(world.renderFrame(i));

    const SlamMap &frozen = pipeline.map();
    const int kf = static_cast<int>(frozen.keyframeCount());
    for (auto _ : state) {
        state.PauseTiming();
        SlamMap copy = frozen;
        state.ResumeTiming();
        benchmark::DoNotOptimize(bundleAdjust(
            world.camera(), copy, std::max(0, kf - 5), kf));
    }
}
BENCHMARK(BM_LocalBundleAdjust);

} // namespace
} // namespace dronedse

BENCHMARK_MAIN();
