/**
 * @file
 * Figure 11 reproduction: commercial small drones' hovering and
 * maneuvering power, the contribution of heavy computation (SLAM,
 * recognition, HD video) to hover power, and flight time — plus a
 * model cross-check of the small class through the same shared
 * `classSweepSpec` grid the Figure 10 panels use.
 */

#include <cstdio>

#include "components/commercial.hh"
#include "components/compute_board.hh"
#include "dse/sweep.hh"
#include "engine/engine.hh"
#include "util/table.hh"

using namespace dronedse;
using namespace dronedse::unit_literals;

int
main()
{
    std::printf("=== Figure 11: small commercial drones ===\n\n");

    Table t({"drone", "weight (g)", "hover (W)", "maneuver (W)",
             "heavy compute (W)", "heavy compute (%)",
             "flight time (min)"});

    double min_frac = 1.0, max_frac = 0.0;
    for (const auto &drone : figure11Drones()) {
        const double hover = drone.impliedHoverPowerW().value();
        const double heavy = drone.heavyComputeW;
        const double frac = heavy / (hover + heavy);
        min_frac = std::min(min_frac, frac);
        max_frac = std::max(max_frac, frac);
        t.addRow({drone.name, fmt(drone.weightG, 0), fmt(hover, 0),
                  fmt(drone.impliedManeuverPowerW().value(), 0),
                  fmt(heavy, 1),
                  fmtPercent(frac), fmt(drone.flightTimeMin, 0)});
    }
    t.print();

    std::printf("\nHeavy computation contribution range: %.0f%%-%.0f%% "
                "(paper: 10-20%% when hovering with heavy compute)\n",
                min_frac * 100.0, max_frac * 100.0);

    // The +5 minute claim: eliminating heavy compute on a small
    // drone stretches the hover endurance by up to ~20 %.
    std::printf("\nPotential gain from offloading heavy compute:\n");
    for (const auto &drone : figure11Drones()) {
        const double hover = drone.impliedHoverPowerW().value();
        const double heavy = drone.heavyComputeW;
        const double t_with = drone.batteryWh * 0.85 /
                              (hover + heavy) * 60.0;
        const double t_without = drone.batteryWh * 0.85 / hover * 60.0;
        std::printf("  %-15s +%.1f min (%.0f%% of flight time)\n",
                    drone.name.c_str(), t_without - t_with,
                    (t_without - t_with) / t_with * 100.0);
    }
    std::printf("\nPaper claim: optimizing heavy computations in small "
                "drones can gain up to ~20%% / +5 min flight time.\n");

    // Model cross-check: sweep the small class through the shared
    // Figure 10 grid builder and compare the model's best
    // configuration against the commercial field above.
    engine::SweepEngine eng;
    const auto &small = classSpec(SizeClass::Small);
    const engine::SweepResult swept = eng.run(classSweepSpec(
        small, {1, 2, 3, 4, 5, 6}, 100.0_mah, basicChip3W()));
    const DesignResult best = eng.bestConfiguration(small, basicChip3W());
    std::printf("\nModel cross-check (%s grid, %zu points, %zu "
                "feasible):\n  best config %.0f mAh %dS -> %.0f g, "
                "hover %.0f W, %.1f min (paper best: %.0f min)\n",
                small.label, swept.stats.gridPoints,
                swept.stats.feasiblePoints,
                best.inputs.capacityMah.value(), best.inputs.cells,
                best.totalWeightG.value(), best.avgPowerW.value(),
                best.flightTimeMin.value(),
                small.paperBestFlightTimeMin.value());
    return 0;
}
