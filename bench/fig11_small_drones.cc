/**
 * @file
 * Figure 11 reproduction: commercial small drones' hovering and
 * maneuvering power, the contribution of heavy computation (SLAM,
 * recognition, HD video) to hover power, and flight time.
 */

#include <cstdio>

#include "components/commercial.hh"
#include "util/table.hh"

using namespace dronedse;

int
main()
{
    std::printf("=== Figure 11: small commercial drones ===\n\n");

    Table t({"drone", "weight (g)", "hover (W)", "maneuver (W)",
             "heavy compute (W)", "heavy compute (%)",
             "flight time (min)"});

    double min_frac = 1.0, max_frac = 0.0;
    for (const auto &drone : figure11Drones()) {
        const double hover = drone.impliedHoverPowerW().value();
        const double heavy = drone.heavyComputeW;
        const double frac = heavy / (hover + heavy);
        min_frac = std::min(min_frac, frac);
        max_frac = std::max(max_frac, frac);
        t.addRow({drone.name, fmt(drone.weightG, 0), fmt(hover, 0),
                  fmt(drone.impliedManeuverPowerW().value(), 0),
                  fmt(heavy, 1),
                  fmtPercent(frac), fmt(drone.flightTimeMin, 0)});
    }
    t.print();

    std::printf("\nHeavy computation contribution range: %.0f%%-%.0f%% "
                "(paper: 10-20%% when hovering with heavy compute)\n",
                min_frac * 100.0, max_frac * 100.0);

    // The +5 minute claim: eliminating heavy compute on a small
    // drone stretches the hover endurance by up to ~20 %.
    std::printf("\nPotential gain from offloading heavy compute:\n");
    for (const auto &drone : figure11Drones()) {
        const double hover = drone.impliedHoverPowerW().value();
        const double heavy = drone.heavyComputeW;
        const double t_with = drone.batteryWh * 0.85 /
                              (hover + heavy) * 60.0;
        const double t_without = drone.batteryWh * 0.85 / hover * 60.0;
        std::printf("  %-15s +%.1f min (%.0f%% of flight time)\n",
                    drone.name.c_str(), t_without - t_with,
                    (t_without - t_with) / t_with * 100.0);
    }
    std::printf("\nPaper claim: optimizing heavy computations in small "
                "drones can gain up to ~20%% / +5 min flight time.\n");
    return 0;
}
