/**
 * @file
 * Figure 7 reproduction: LiPo battery capacity vs weight per cell
 * configuration, with the re-derived least-squares fits next to the
 * paper's published coefficients.
 */

#include <cstdio>

#include "components/battery.hh"
#include "util/table.hh"

using namespace dronedse;
using namespace dronedse::unit_literals;

int
main()
{
    std::printf("=== Figure 7: LiPo battery capacity vs weight ===\n\n");

    Rng rng(2021);
    const auto catalog = generateBatteryCatalog(rng);
    std::printf("Synthetic survey: %zu commercial packs "
                "(paper surveyed 250)\n\n",
                catalog.size());

    Table fits({"config", "paper slope", "refit slope", "paper icept",
                "refit icept", "R^2", "packs"});
    for (int cells = kMinCells; cells <= kMaxCells; ++cells) {
        const LinearFit paper = paperBatteryFit(cells);
        const LinearFit refit = fitBatteryCatalog(catalog, cells);
        fits.addRow({std::to_string(cells) + "S1P",
                     fmt(paper.slope, 3), fmt(refit.slope, 3),
                     fmt(paper.intercept, 1), fmt(refit.intercept, 1),
                     fmt(refit.rSquared, 3),
                     std::to_string(refit.samples)});
    }
    fits.print();

    std::printf("\nModel weight (g) across the capacity sweep:\n\n");
    Table series({"capacity (mAh)", "1S", "2S", "3S", "4S", "5S", "6S"});
    for (double cap = 1000.0; cap <= 10000.0; cap += 1000.0) {
        std::vector<std::string> row{fmt(cap, 0)};
        for (int cells = kMinCells; cells <= kMaxCells; ++cells)
            row.push_back(fmt(
                batteryWeightG(cells, Quantity<MilliampHours>(cap))
                    .value(),
                0));
        series.addRow(row);
    }
    series.print();

    std::printf("\nShape check: higher-voltage packs carry higher "
                "overhead at equal capacity (paper Section 3.1).\n");
    return 0;
}
