#include <gtest/gtest.h>

#include <cmath>

#include "control/mixer.hh"

namespace dronedse {
namespace {

MixerConfig
config()
{
    return {0.225, 0.016, 5.25};
}

/** Recompose the wrench an output thrust set actually produces. */
ControlWrench
recompose(const std::array<double, 4> &f, const MixerConfig &cfg)
{
    const double d = cfg.armLengthM / std::sqrt(2.0);
    ControlWrench w;
    w.thrustN = f[0] + f[1] + f[2] + f[3];
    w.tauX = d * (-f[0] + f[1] + f[2] - f[3]);
    w.tauY = d * (-f[0] + f[1] - f[2] + f[3]);
    w.tauZ = cfg.yawTorquePerThrust * (f[0] + f[1] - f[2] - f[3]);
    return w;
}

TEST(Mixer, PureThrustIsEqual)
{
    const auto f = mixWrench({8.0, 0, 0, 0}, config());
    for (double t : f)
        EXPECT_NEAR(t, 2.0, 1e-12);
}

TEST(Mixer, RoundTripsUnsaturatedWrench)
{
    const ControlWrench w{10.0, 0.12, -0.08, 0.03};
    const auto f = mixWrench(w, config());
    const ControlWrench back = recompose(f, config());
    EXPECT_NEAR(back.thrustN, w.thrustN, 1e-9);
    EXPECT_NEAR(back.tauX, w.tauX, 1e-9);
    EXPECT_NEAR(back.tauY, w.tauY, 1e-9);
    EXPECT_NEAR(back.tauZ, w.tauZ, 1e-9);
}

TEST(Mixer, RollTorqueRaisesLeftMotors)
{
    // Positive tau_x comes from motors 1 and 2 (left side in the
    // recomposition above).
    const auto f = mixWrench({8.0, 0.2, 0, 0}, config());
    EXPECT_GT(f[1], f[0]);
    EXPECT_GT(f[2], f[3]);
}

TEST(Mixer, YawPrioritizedBelowThrustWhenSaturating)
{
    MixerConfig cfg = config();
    // Thrust near the ceiling plus a big yaw demand must not break
    // the thrust budget: yaw authority is reduced instead.
    const ControlWrench w{4.0 * cfg.maxThrustPerMotorN * 0.98, 0, 0,
                          2.0};
    const auto f = mixWrench(w, cfg);
    const ControlWrench back = recompose(f, cfg);
    EXPECT_NEAR(back.thrustN, w.thrustN, 0.3);
    EXPECT_LT(std::fabs(back.tauZ), std::fabs(w.tauZ));
    for (double t : f) {
        EXPECT_GE(t, 0.0);
        EXPECT_LE(t, cfg.maxThrustPerMotorN + 1e-9);
    }
}

TEST(Mixer, NeverCommandsNegativeThrust)
{
    const auto f = mixWrench({0.5, 1.0, -1.0, 0.5}, config());
    for (double t : f)
        EXPECT_GE(t, 0.0);
}

} // namespace
} // namespace dronedse
