/**
 * @file
 * Velocity-target mode (paper Figure 6: the outer loop may dictate
 * velocity targets instead of positions, e.g. for target-following
 * applications).
 */

#include <gtest/gtest.h>

#include "control/cascade.hh"
#include "sim/quadrotor.hh"

namespace dronedse {
namespace {

CascadePlant
plantFor(const QuadrotorParams &p)
{
    return {p.massKg, p.inertiaDiag,
            {p.armLengthM, p.yawTorquePerThrust, p.maxThrustPerMotorN}};
}

TEST(VelocityMode, TracksCommandedVelocity)
{
    QuadrotorParams p;
    Quadrotor quad(p);
    RigidBodyState s;
    s.position = {0, 0, 5};
    quad.setState(s);
    CascadeController ctrl(plantFor(p));

    OuterLoopTargets targets;
    targets.velocityMode = true;
    targets.velocity = {2.0, 0.0, 0.0};
    for (int i = 0; i < 5000; ++i) {
        quad.commandMotors(ctrl.tick(quad.state(), targets));
        quad.step(0.001);
    }
    EXPECT_NEAR(quad.state().velocity.x, 2.0, 0.25);
    EXPECT_NEAR(quad.state().velocity.y, 0.0, 0.1);
    EXPECT_NEAR(quad.state().velocity.z, 0.0, 0.15);
    EXPECT_GT(quad.state().position.x, 5.0);
}

TEST(VelocityMode, VerticalVelocityClimbs)
{
    QuadrotorParams p;
    Quadrotor quad(p);
    RigidBodyState s;
    s.position = {0, 0, 2};
    quad.setState(s);
    CascadeController ctrl(plantFor(p));

    OuterLoopTargets targets;
    targets.velocityMode = true;
    targets.velocity = {0.0, 0.0, 1.0};
    for (int i = 0; i < 4000; ++i) {
        quad.commandMotors(ctrl.tick(quad.state(), targets));
        quad.step(0.001);
    }
    EXPECT_NEAR(quad.state().velocity.z, 1.0, 0.2);
    EXPECT_GT(quad.state().position.z, 4.0);
}

TEST(VelocityMode, CommandClampedToMaxVelocity)
{
    QuadrotorParams p;
    Quadrotor quad(p);
    RigidBodyState s;
    s.position = {0, 0, 20};
    quad.setState(s);
    CascadeGains gains;
    CascadeController ctrl(plantFor(p), LoopRates{}, gains);

    OuterLoopTargets targets;
    targets.velocityMode = true;
    targets.velocity = {50.0, 0.0, 0.0}; // far beyond maxVelocity
    for (int i = 0; i < 8000; ++i) {
        quad.commandMotors(ctrl.tick(quad.state(), targets));
        quad.step(0.001);
    }
    // Airspeed settles near (below) the clamp, never at 50.
    EXPECT_LT(quad.state().velocity.x, gains.maxVelocity + 1.0);
    EXPECT_GT(quad.state().velocity.x, 2.0);
    EXPECT_FALSE(quad.upsideDown());
}

TEST(VelocityMode, ZeroVelocityHolds)
{
    QuadrotorParams p;
    Quadrotor quad(p);
    RigidBodyState s;
    s.position = {0, 0, 3};
    s.velocity = {2.0, 0, 0};
    quad.setState(s);
    CascadeController ctrl(plantFor(p));

    OuterLoopTargets targets;
    targets.velocityMode = true;
    for (int i = 0; i < 5000; ++i) {
        quad.commandMotors(ctrl.tick(quad.state(), targets));
        quad.step(0.001);
    }
    EXPECT_LT(quad.state().velocity.norm(), 0.15);
}

} // namespace
} // namespace dronedse
