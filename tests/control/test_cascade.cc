/**
 * @file
 * Plant-in-the-loop tests of the hierarchical cascade, including the
 * Table 2b response-time bands: thrust (rate) ~50 ms, attitude
 * ~100 ms, position ~1 s — and the time-scale-separation property.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "control/cascade.hh"
#include "sim/quadrotor.hh"

namespace dronedse {
namespace {

CascadePlant
plantFor(const QuadrotorParams &p)
{
    return {p.massKg, p.inertiaDiag,
            {p.armLengthM, p.yawTorquePerThrust, p.maxThrustPerMotorN}};
}

/** Run the loop until predicate(truth) or timeout; returns seconds. */
template <typename Pred>
double
runUntil(Quadrotor &quad, CascadeController &ctrl,
         const OuterLoopTargets &targets, double timeout, Pred pred)
{
    double t = 0.0;
    while (t < timeout) {
        quad.commandMotors(ctrl.tick(quad.state(), targets));
        quad.step(0.001);
        t += 0.001;
        if (pred(quad.state()))
            return t;
    }
    return -1.0;
}

TEST(Cascade, RateStepResponseWithinTable2Band)
{
    QuadrotorParams p;
    Quadrotor quad(p);
    CascadeController ctrl(plantFor(p));
    ctrl.overrideRateTarget({1.0, 0.0, 0.0});
    const double t90 = runUntil(
        quad, ctrl, {}, 1.0,
        [](const RigidBodyState &s) { return s.angularVelocity.x >= 0.9; });
    ASSERT_GT(t90, 0.0) << "rate step never reached 90 %";
    // Low-level response time ~50 ms (Table 2b).
    EXPECT_LT(t90, 0.10);
    EXPECT_GT(t90, 0.01);
}

TEST(Cascade, AttitudeStepResponseWithinTable2Band)
{
    QuadrotorParams p;
    Quadrotor quad(p);
    CascadeController ctrl(plantFor(p));
    ctrl.overrideAttitudeTarget(Quaternion::fromEuler(0.3, 0.0, 0.0));
    const double t90 = runUntil(
        quad, ctrl, {}, 2.0,
        [](const RigidBodyState &s) { return s.attitude.roll() >= 0.27; });
    ASSERT_GT(t90, 0.0) << "attitude step never reached 90 %";
    // Mid-level response time ~100 ms (Table 2b).
    EXPECT_LT(t90, 0.30);
    EXPECT_GT(t90, 0.04);
}

TEST(Cascade, PositionStepResponseWithinTable2Band)
{
    QuadrotorParams p;
    Quadrotor quad(p);
    RigidBodyState s;
    s.position = {0, 0, 1};
    quad.setState(s);
    CascadeController ctrl(plantFor(p));
    OuterLoopTargets targets;
    targets.position = {1.0, 0.0, 1.0};
    const double t90 = runUntil(
        quad, ctrl, targets, 5.0,
        [](const RigidBodyState &st) { return st.position.x >= 0.9; });
    ASSERT_GT(t90, 0.0) << "position step never reached 90 %";
    // High-level response time ~1 s (Table 2b).
    EXPECT_LT(t90, 2.5);
    EXPECT_GT(t90, 0.4);
}

TEST(Cascade, TimeScaleSeparationOrdering)
{
    // Each level must respond slower than the level below it.
    QuadrotorParams p;

    Quadrotor q1(p);
    CascadeController c1(plantFor(p));
    c1.overrideRateTarget({1.0, 0.0, 0.0});
    const double t_rate = runUntil(
        q1, c1, {}, 1.0,
        [](const RigidBodyState &s) { return s.angularVelocity.x >= 0.9; });

    Quadrotor q2(p);
    CascadeController c2(plantFor(p));
    c2.overrideAttitudeTarget(Quaternion::fromEuler(0.3, 0.0, 0.0));
    const double t_att = runUntil(
        q2, c2, {}, 2.0,
        [](const RigidBodyState &s) { return s.attitude.roll() >= 0.27; });

    Quadrotor q3(p);
    RigidBodyState s;
    s.position = {0, 0, 1};
    q3.setState(s);
    CascadeController c3(plantFor(p));
    OuterLoopTargets targets;
    targets.position = {1.0, 0.0, 1.0};
    const double t_pos = runUntil(
        q3, c3, targets, 5.0,
        [](const RigidBodyState &st) { return st.position.x >= 0.9; });

    ASSERT_GT(t_rate, 0.0);
    ASSERT_GT(t_att, 0.0);
    ASSERT_GT(t_pos, 0.0);
    EXPECT_LT(t_rate, t_att);
    EXPECT_LT(t_att, t_pos);
}

TEST(Cascade, HoldsHoverWithTruthState)
{
    QuadrotorParams p;
    Quadrotor quad(p);
    RigidBodyState s;
    s.position = {0, 0, 2};
    quad.setState(s);
    CascadeController ctrl(plantFor(p));
    OuterLoopTargets targets;
    targets.position = {0, 0, 2};
    for (int i = 0; i < 10000; ++i) {
        quad.commandMotors(ctrl.tick(quad.state(), targets));
        quad.step(0.001);
    }
    EXPECT_LT((quad.state().position - targets.position).norm(), 0.05);
    EXPECT_FALSE(quad.upsideDown());
}

TEST(Cascade, TracksYawTarget)
{
    QuadrotorParams p;
    Quadrotor quad(p);
    RigidBodyState s;
    s.position = {0, 0, 2};
    quad.setState(s);
    CascadeController ctrl(plantFor(p));
    OuterLoopTargets targets;
    targets.position = {0, 0, 2};
    targets.yaw = 1.0;
    for (int i = 0; i < 5000; ++i) {
        quad.commandMotors(ctrl.tick(quad.state(), targets));
        quad.step(0.001);
    }
    EXPECT_NEAR(quad.state().attitude.yaw(), 1.0, 0.05);
}

TEST(Cascade, UpdateCountersRespectDividers)
{
    QuadrotorParams p;
    Quadrotor quad(p);
    CascadeController ctrl(plantFor(p));
    OuterLoopTargets targets;
    for (int i = 0; i < 1000; ++i) {
        quad.commandMotors(ctrl.tick(quad.state(), targets));
        quad.step(0.001);
    }
    // 1 kHz thrust, 200 Hz attitude, 40 Hz position (Table 2b).
    EXPECT_EQ(ctrl.thrustUpdates(), 1000);
    EXPECT_EQ(ctrl.attitudeUpdates(), 200);
    EXPECT_EQ(ctrl.positionUpdates(), 40);
}

TEST(Cascade, CustomRatesChangeDividers)
{
    QuadrotorParams p;
    Quadrotor quad(p);
    LoopRates rates;
    rates.thrustHz = 500.0;
    rates.attitudeHz = 100.0;
    rates.positionHz = 20.0;
    CascadeController ctrl(plantFor(p), rates);
    OuterLoopTargets targets;
    for (int i = 0; i < 500; ++i)
        quad.commandMotors(ctrl.tick(quad.state(), targets));
    EXPECT_EQ(ctrl.thrustUpdates(), 500);
    EXPECT_EQ(ctrl.attitudeUpdates(), 100);
    EXPECT_EQ(ctrl.positionUpdates(), 20);
}

TEST(CascadeDeath, RejectsInvertedRates)
{
    QuadrotorParams p;
    LoopRates bad;
    bad.thrustHz = 100.0;
    bad.attitudeHz = 200.0;
    EXPECT_EXIT(CascadeController(plantFor(p), bad),
                testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace dronedse
