#include <gtest/gtest.h>

#include "control/pid.hh"

namespace dronedse {
namespace {

TEST(Pid, ProportionalAction)
{
    Pid pid({2.0, 0.0, 0.0, 0.0, 0.0});
    EXPECT_DOUBLE_EQ(pid.update(1.0, 0.0, 0.01), 2.0);
    EXPECT_DOUBLE_EQ(pid.update(1.0, 0.5, 0.01), 1.0);
    EXPECT_DOUBLE_EQ(pid.update(1.0, 2.0, 0.01), -2.0);
}

TEST(Pid, IntegralRemovesSteadyStateError)
{
    // First-order plant x' = u - 0.5 (constant disturbance); a pure
    // P controller leaves offset, PI drives it to the setpoint.
    auto run = [](PidConfig cfg) {
        Pid pid(cfg);
        double x = 0.0;
        const double dt = 0.01;
        for (int i = 0; i < 20000; ++i) {
            const double u = pid.update(1.0, x, dt);
            x += (u - 0.5) * dt;
        }
        return x;
    };
    const double p_only = run({2.0, 0.0, 0.0, 0.0, 0.0});
    const double pi = run({2.0, 1.0, 0.0, 0.0, 0.0});
    EXPECT_NEAR(p_only, 0.75, 0.02); // offset = disturbance / kp
    EXPECT_NEAR(pi, 1.0, 0.01);
}

TEST(Pid, DerivativeOnMeasurementAvoidsSetpointKick)
{
    Pid pid({1.0, 0.0, 1.0, 0.0, 0.0});
    // Prime the derivative history.
    pid.update(0.0, 0.0, 0.01);
    // A setpoint step with unchanged measurement must not spike the
    // derivative term.
    const double out = pid.update(10.0, 0.0, 0.01);
    EXPECT_DOUBLE_EQ(out, 10.0); // kp * error only
    // A measurement step does engage the derivative (damping).
    const double out2 = pid.update(10.0, 1.0, 0.01);
    EXPECT_LT(out2, 9.0 - 50.0); // 9 - 1/0.01 * kd
}

TEST(Pid, OutputSaturation)
{
    Pid pid({100.0, 0.0, 0.0, 5.0, 0.0});
    EXPECT_DOUBLE_EQ(pid.update(1.0, 0.0, 0.01), 5.0);
    EXPECT_DOUBLE_EQ(pid.update(-1.0, 0.0, 0.01), -5.0);
}

TEST(Pid, IntegralClamp)
{
    Pid pid({0.0, 1.0, 0.0, 0.0, 0.5});
    for (int i = 0; i < 1000; ++i)
        pid.update(10.0, 0.0, 0.1);
    EXPECT_NEAR(pid.integral(), 0.5, 1e-12);
}

TEST(Pid, ResetClearsHistory)
{
    Pid pid({1.0, 1.0, 1.0, 0.0, 0.0});
    pid.update(1.0, 0.0, 0.1);
    pid.update(1.0, 0.5, 0.1);
    EXPECT_GT(pid.integral(), 0.0);
    pid.reset();
    EXPECT_DOUBLE_EQ(pid.integral(), 0.0);
}

TEST(PidDeath, RejectsNonPositiveDt)
{
    Pid pid;
    EXPECT_EXIT(pid.update(1.0, 0.0, 0.0), testing::ExitedWithCode(1),
                "");
}

} // namespace
} // namespace dronedse
