#include <gtest/gtest.h>

#include <cmath>

#include "control/ekf.hh"
#include "util/rng.hh"
#include "util/units.hh"

namespace dronedse {
namespace {

TEST(PositionEkf, ConvergesOnStaticTarget)
{
    PositionEkf ekf;
    Rng rng(5);
    const Vec3 truth{3.0, -2.0, 10.0};
    const double initial_unc = ekf.positionUncertainty();

    for (int i = 0; i < 100; ++i) {
        // 10 Hz GPS with 0.8 m noise; no motion.
        for (int k = 0; k < 20; ++k)
            ekf.predict({0, 0, 0}, 0.005);
        GpsSample gps;
        gps.position = {truth.x + rng.gaussian(0.0, 0.8),
                        truth.y + rng.gaussian(0.0, 0.8),
                        truth.z + rng.gaussian(0.0, 1.2)};
        gps.velocity = {rng.gaussian(0.0, 0.15),
                        rng.gaussian(0.0, 0.15),
                        rng.gaussian(0.0, 0.15)};
        ekf.updateGps(gps, 0.8, 0.15);
    }
    EXPECT_LT((ekf.position() - truth).norm(), 0.6);
    EXPECT_LT(ekf.velocity().norm(), 0.2);
    EXPECT_LT(ekf.positionUncertainty(), initial_unc / 10.0);
}

TEST(PositionEkf, TracksConstantAcceleration)
{
    PositionEkf ekf;
    Rng rng(6);
    const Vec3 accel{1.0, 0.0, 0.0};
    Vec3 pos{0, 0, 0}, vel{0, 0, 0};
    const double dt = 0.005;

    for (int i = 0; i < 2000; ++i) {
        pos += vel * dt + accel * (0.5 * dt * dt);
        vel += accel * dt;
        ekf.predict(accel, dt);
        if (i % 20 == 19) {
            GpsSample gps;
            gps.position = {pos.x + rng.gaussian(0.0, 0.8),
                            pos.y + rng.gaussian(0.0, 0.8),
                            pos.z + rng.gaussian(0.0, 1.2)};
            gps.velocity = {vel.x + rng.gaussian(0.0, 0.15),
                            vel.y + rng.gaussian(0.0, 0.15),
                            vel.z + rng.gaussian(0.0, 0.15)};
            ekf.updateGps(gps, 0.8, 0.15);
        }
    }
    EXPECT_LT((ekf.position() - pos).norm(), 1.0);
    EXPECT_LT((ekf.velocity() - vel).norm(), 0.3);
}

TEST(PositionEkf, BaroSharpensAltitude)
{
    PositionEkf ekf;
    Rng rng(7);
    // Altitude-only information via the barometer.
    for (int i = 0; i < 200; ++i) {
        ekf.predict({0, 0, 0}, 0.05);
        BaroSample baro;
        baro.altitude = 5.0 + rng.gaussian(0.0, 0.25);
        ekf.updateBaro(baro, 0.25);
    }
    EXPECT_NEAR(ekf.position().z, 5.0, 0.3);
}

TEST(AttitudeFilter, GyroIntegration)
{
    AttitudeFilter filter;
    // 0.5 rad/s roll for 1 s.
    for (int i = 0; i < 200; ++i)
        filter.predict({0.5, 0, 0}, 0.005);
    EXPECT_NEAR(filter.attitude().roll(), 0.5, 1e-3);
}

TEST(AttitudeFilter, AccelCorrectsInitialTiltError)
{
    AttitudeFilter filter(0.8, 0.05);
    // Estimate starts wrong by 0.2 rad roll; body actually level.
    filter.reset(Quaternion::fromEuler(0.2, 0.0, 0.0));
    // Level body at rest: specific force = +g along body z.
    for (int i = 0; i < 2000; ++i) {
        filter.predict({0, 0, 0}, 0.005);
        filter.correctAccel({0.0, 0.0, kGravity}, 0.005);
    }
    EXPECT_NEAR(filter.attitude().roll(), 0.0, 0.02);
}

TEST(AttitudeFilter, RejectsDynamicAccel)
{
    AttitudeFilter filter(0.8, 0.05);
    filter.reset(Quaternion::fromEuler(0.2, 0.0, 0.0));
    // Specific force far from 1 g must be ignored.
    for (int i = 0; i < 1000; ++i)
        filter.correctAccel({0.0, 0.0, 2.0 * kGravity}, 0.005);
    EXPECT_NEAR(filter.attitude().roll(), 0.2, 1e-9);
}

TEST(AttitudeFilter, MagCorrectsYaw)
{
    AttitudeFilter filter(0.4, 0.2);
    filter.reset(Quaternion::fromEuler(0.0, 0.0, 0.5));
    for (int i = 0; i < 100; ++i)
        filter.correctMag(0.0);
    EXPECT_NEAR(filter.attitude().yaw(), 0.0, 0.01);
}

TEST(AttitudeFilter, MagHandlesWrapAround)
{
    AttitudeFilter filter(0.4, 0.2);
    filter.reset(Quaternion::fromEuler(0.0, 0.0, 3.0));
    // Target yaw -3.0 rad is close to +3.0 through the wrap.
    for (int i = 0; i < 200; ++i)
        filter.correctMag(-3.0);
    const double err = std::fabs(filter.attitude().yaw()) - 3.0;
    EXPECT_NEAR(err, 0.0, 0.05);
}

TEST(StateEstimator, FusedHoverEstimate)
{
    StateEstimator est;
    Rng rng(8);
    RigidBodyState truth;
    truth.position = {1.0, 2.0, 5.0};

    double t = 0.0;
    for (int i = 0; i < 2000; ++i) {
        t += 0.005;
        ImuSample imu;
        imu.timestamp = t;
        imu.accel = {rng.gaussian(0.0, 0.08), rng.gaussian(0.0, 0.08),
                     kGravity + rng.gaussian(0.0, 0.08)};
        imu.gyro = {rng.gaussian(0.0, 0.005),
                    rng.gaussian(0.0, 0.005),
                    rng.gaussian(0.0, 0.005)};
        est.onImu(imu);
        if (i % 20 == 19) {
            GpsSample gps;
            gps.timestamp = t;
            gps.position = {truth.position.x + rng.gaussian(0.0, 0.8),
                            truth.position.y + rng.gaussian(0.0, 0.8),
                            truth.position.z + rng.gaussian(0.0, 1.2)};
            gps.velocity = {rng.gaussian(0.0, 0.15),
                            rng.gaussian(0.0, 0.15),
                            rng.gaussian(0.0, 0.15)};
            est.onGps(gps);
        }
        if (i % 10 == 9)
            est.onBaro({truth.position.z + rng.gaussian(0.0, 0.25), t});
        if (i % 20 == 0)
            est.onMag({rng.gaussian(0.0, 0.02), t});
    }
    const RigidBodyState e = est.estimate();
    EXPECT_LT((e.position - truth.position).norm(), 0.7);
    EXPECT_LT(e.velocity.norm(), 0.3);
    EXPECT_NEAR(e.attitude.roll(), 0.0, 0.05);
    EXPECT_NEAR(e.attitude.pitch(), 0.0, 0.05);
}

} // namespace
} // namespace dronedse
