#include <gtest/gtest.h>

#include "control/scheduler.hh"
#include "obs/metrics.hh"
#include "obs/tracer.hh"

namespace dronedse {
namespace {

TEST(Scheduler, ExecutesAtDeclaredRates)
{
    RateScheduler sched;
    long fast = 0, slow = 0;
    sched.addTask("fast", 100.0, 0.0, [&](double) { ++fast; });
    sched.addTask("slow", 10.0, 0.0, [&](double) { ++slow; });
    sched.advanceTo(1.0);
    // Releases at t=0 inclusive.
    EXPECT_NEAR(static_cast<double>(fast), 100.0, 2.0);
    EXPECT_NEAR(static_cast<double>(slow), 10.0, 2.0);
}

TEST(Scheduler, NoMissesWhenCpuIsLight)
{
    RateScheduler sched;
    // Inner-loop-like: 500 Hz with 0.2 ms cost = 10 % utilization.
    sched.addTask("inner", 500.0, 0.0002, [](double) {});
    sched.advanceTo(2.0);
    const auto stats = sched.stats();
    EXPECT_EQ(stats[0].deadlineMisses, 0);
    EXPECT_NEAR(sched.utilization(), 0.1, 0.02);
}

TEST(Scheduler, HeavyTaskCausesDeadlineMisses)
{
    // A SLAM-like job that takes longer than its own period misses
    // deadlines and, sharing the CPU, delays the inner loop too.
    RateScheduler sched;
    sched.addTask("inner", 500.0, 0.0005, [](double) {});
    sched.addTask("slam", 10.0, 0.15, [](double) {});
    sched.advanceTo(2.0);
    const auto stats = sched.stats();
    long slam_misses = 0, inner_misses = 0;
    for (const auto &s : stats) {
        if (s.name == "slam")
            slam_misses = s.deadlineMisses;
        else
            inner_misses = s.deadlineMisses;
    }
    EXPECT_GT(slam_misses, 0);
    // With SLAM hogging 150 ms blocks, the 2 ms-period inner loop
    // inevitably misses (a non-preemptive CPU, the paper's argument
    // for a dedicated inner-loop processor).
    EXPECT_GT(inner_misses, 0);
}

TEST(Scheduler, DedicatedInnerLoopHasNoMisses)
{
    // The paper's design point: the inner loop gets its own MCU.
    RateScheduler inner_cpu;
    inner_cpu.addTask("inner", 500.0, 0.0005, [](double) {});
    RateScheduler companion;
    companion.addTask("slam", 10.0, 0.15, [](double) {});
    inner_cpu.advanceTo(2.0);
    companion.advanceTo(2.0);
    EXPECT_EQ(inner_cpu.stats()[0].deadlineMisses, 0);
}

TEST(Scheduler, UtilizationAccumulates)
{
    RateScheduler sched;
    sched.addTask("a", 100.0, 0.004, [](double) {});
    sched.advanceTo(1.0);
    EXPECT_NEAR(sched.utilization(), 0.4, 0.05);
}

TEST(Scheduler, StatsCarryNamesAndRates)
{
    RateScheduler sched;
    sched.addTask("ekf", 200.0, 0.0001, [](double) {});
    sched.addTask("nav", 10.0, 0.001, [](double) {});
    sched.advanceTo(0.5);
    const auto stats = sched.stats();
    ASSERT_EQ(stats.size(), 2u);
    // Rate-monotonic order: highest rate first.
    EXPECT_EQ(stats[0].name, "ekf");
    EXPECT_EQ(stats[0].rateHz, 200.0);
    EXPECT_EQ(stats[1].name, "nav");
    EXPECT_GT(stats[0].cpuTimeS, 0.0);
}

TEST(Scheduler, ObsCountersTrackMissesWhileTheInnerRateHolds)
{
    // The paper's split-CPU design point, now observable: the
    // companion runs an outer-loop task costing more than its
    // period (guaranteed misses), the inner loop owns its MCU and
    // holds rate; the registry's deadline-miss counter must account
    // exactly for the companion's misses.
    obs::Counter &misses =
        obs::metrics().counter("control.scheduler.deadline_misses");
    obs::Counter &execs =
        obs::metrics().counter("control.scheduler.executions");
    const std::uint64_t misses_before = misses.value();
    const std::uint64_t execs_before = execs.value();

    RateScheduler inner_cpu;
    long inner_runs = 0;
    inner_cpu.addTask("inner", 400.0, 0.0005,
                      [&](double) { ++inner_runs; });
    RateScheduler companion;
    companion.addTask("slam", 10.0, 0.15, [](double) {});
    inner_cpu.advanceTo(2.0);
    companion.advanceTo(2.0);

    // Inner-loop rate holds on its dedicated CPU.
    EXPECT_EQ(inner_cpu.stats()[0].deadlineMisses, 0);
    EXPECT_NEAR(static_cast<double>(inner_runs), 800.0, 2.0);

    // An over-budget task misses on (nearly) every release, and the
    // registry saw exactly the misses the schedulers reported.
    long reported_misses = 0, reported_execs = 0;
    for (const auto *sched : {&inner_cpu, &companion}) {
        for (const auto &s : sched->stats()) {
            reported_misses += s.deadlineMisses;
            reported_execs += s.executions;
        }
    }
    EXPECT_GT(reported_misses, 0);
    EXPECT_EQ(misses.value() - misses_before,
              static_cast<std::uint64_t>(reported_misses));
    EXPECT_EQ(execs.value() - execs_before,
              static_cast<std::uint64_t>(reported_execs));
}

#if DRONEDSE_TRACING
TEST(Scheduler, TaskExecutionsLandOnTheSimTrack)
{
    obs::tracer().clear();
    obs::tracer().setEnabled(true);
    RateScheduler sched;
    sched.addTask("nav", 10.0, 0.001, [](double) {});
    sched.advanceTo(1.0);
    obs::tracer().setEnabled(false);

    const auto spans = obs::tracer().snapshot();
    obs::tracer().clear();
    long nav_spans = 0;
    for (const auto &span : spans) {
        if (span.name != "nav")
            continue;
        ++nav_spans;
        // Scheduler time is the simulated mission clock, so its
        // spans live on the sim track, in microseconds.
        EXPECT_EQ(span.track, obs::kSimTrack);
        EXPECT_DOUBLE_EQ(span.durUs, 1000.0);
    }
    EXPECT_NEAR(static_cast<double>(nav_spans), 10.0, 2.0);
}
#endif // DRONEDSE_TRACING

TEST(SchedulerDeath, RejectsInvalidTask)
{
    RateScheduler sched;
    EXPECT_EXIT(sched.addTask("bad", 0.0, 0.0, [](double) {}),
                testing::ExitedWithCode(1), "");
    EXPECT_EXIT(sched.addTask("bad", 10.0, -1.0, [](double) {}),
                testing::ExitedWithCode(1), "");
}

TEST(SchedulerDeath, TimeMustNotGoBackwards)
{
    RateScheduler sched;
    sched.addTask("a", 10.0, 0.0, [](double) {});
    sched.advanceTo(1.0);
    EXPECT_EXIT(sched.advanceTo(0.5), testing::ExitedWithCode(1), "");
}

TEST(SchedulerFault, CostScaleInflatesMisses)
{
    // At scale 1 the task set fits; a contention burst makes every
    // job overrun its period.
    RateScheduler sched;
    sched.addTask("heavy", 10.0, 0.06, [](double) {});
    sched.advanceTo(2.0);
    EXPECT_EQ(sched.totalDeadlineMisses(), 0);

    sched.setCostScale(8.0);
    sched.advanceTo(4.0);
    EXPECT_GT(sched.totalDeadlineMisses(), 0);

    // After the burst the CPU still has a queue of inflated jobs;
    // misses continue until the backlog drains, then stop.
    const long during_burst = sched.totalDeadlineMisses();
    sched.setCostScale(1.0);
    sched.advanceTo(25.0);
    const long after_drain = sched.totalDeadlineMisses();
    sched.advanceTo(30.0);
    EXPECT_EQ(sched.totalDeadlineMisses(), after_drain);
    EXPECT_GE(after_drain, during_burst);
}

TEST(SchedulerFault, RateSheddingRelievesOverload)
{
    RateScheduler sched;
    sched.addTask("nav", 10.0, 0.05, [](double) {});
    sched.addTask("slam", 10.0, 0.08, [](double) {});
    sched.advanceTo(2.0);
    // 1.3x utilization demanded: misses pile up.
    const long overloaded = sched.totalDeadlineMisses();
    EXPECT_GT(overloaded, 0);

    // Shed to 0.65x demanded: once the backlog drains, no new
    // misses.
    sched.setTaskRate("nav", 5.0);
    sched.setTaskRate("slam", 5.0);
    EXPECT_DOUBLE_EQ(sched.taskRate("nav"), 5.0);
    sched.advanceTo(6.0);
    const long after_drain = sched.totalDeadlineMisses();
    sched.advanceTo(10.0);
    EXPECT_EQ(sched.totalDeadlineMisses(), after_drain);
}

TEST(SchedulerFault, TaskCostCanMigrate)
{
    RateScheduler sched;
    sched.addTask("slam", 10.0, 0.012, [](double) {});
    EXPECT_DOUBLE_EQ(sched.taskCost("slam"), 0.012);
    sched.setTaskCost("slam", 0.045);
    EXPECT_DOUBLE_EQ(sched.taskCost("slam"), 0.045);
    // Releases at t = 0, 0.1, ..., 1.0 inclusive: 11 executions.
    sched.advanceTo(1.0);
    const auto stats = sched.stats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_NEAR(stats[0].cpuTimeS, 11 * 0.045, 1e-9);
}

TEST(SchedulerFaultDeath, MutatorsValidate)
{
    RateScheduler sched;
    sched.addTask("a", 10.0, 0.0, [](double) {});
    EXPECT_EXIT(sched.setCostScale(0.0), testing::ExitedWithCode(1),
                "");
    EXPECT_EXIT(sched.setTaskRate("a", -1.0),
                testing::ExitedWithCode(1), "");
    EXPECT_EXIT(sched.setTaskRate("missing", 5.0),
                testing::ExitedWithCode(1), "");
    EXPECT_EXIT(sched.setTaskCost("a", -0.1),
                testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace dronedse
