/**
 * @file
 * Closed-loop autopilot tests, including the paper's central
 * inner-loop claim (Section 2.1.3D): the update frequency of the
 * inner loop is 50-500 Hz, limited by the physical response of the
 * drone and not by computation — so raising the rate beyond that
 * buys nothing, while starving it breaks the loop.
 */

#include <gtest/gtest.h>

#include "control/autopilot.hh"

namespace dronedse {
namespace {

std::vector<Waypoint>
hoverMission()
{
    return {{{0, 0, 2}, 0.0, 0.4, 1e9}};
}

std::vector<Waypoint>
squareMission()
{
    return {{{0, 0, 2}, 0.0, 0.6, 0.0},
            {{4, 0, 2}, 0.0, 0.6, 0.0},
            {{4, 4, 2}, 0.0, 0.6, 0.0},
            {{0, 0, 2}, 0.0, 0.6, 0.0}};
}

TEST(Autopilot, ClosedLoopHoverWithEstimator)
{
    Autopilot ap(QuadrotorParams{}, hoverMission());
    ap.run(15.0);
    // GPS-limited accuracy: within ~1 m of the hover point.
    EXPECT_LT((ap.quad().state().position - Vec3{0, 0, 2}).norm(), 1.2);
    EXPECT_LT(ap.estimationErrorM(), 1.0);
    EXPECT_FALSE(ap.quad().upsideDown());
}

TEST(Autopilot, SensorRatesMatchTable2a)
{
    AutopilotConfig cfg;
    Autopilot ap(QuadrotorParams{}, hoverMission(), cfg);
    ap.run(10.0);
    // 200 Hz IMU, 10 Hz GPS, 20 Hz baro, 10 Hz mag over 10 s.
    // (Counts come through the estimator's consumption, so check
    // via a standalone suite below instead of private state.)
    SensorSuite suite(cfg.sensorRates, cfg.noise, 3);
    RigidBodyState truth;
    for (int i = 0; i < 10000; ++i) {
        suite.advance(i * 0.001, truth, {});
        suite.imu();
        suite.gps();
        suite.baro();
        suite.mag();
    }
    EXPECT_NEAR(static_cast<double>(suite.imuCount()), 2000.0, 5.0);
    EXPECT_NEAR(static_cast<double>(suite.gpsCount()), 100.0, 2.0);
    EXPECT_NEAR(static_cast<double>(suite.baroCount()), 200.0, 2.0);
    EXPECT_NEAR(static_cast<double>(suite.magCount()), 100.0, 2.0);
}

TEST(Autopilot, CompletesSquareMission)
{
    Autopilot ap(QuadrotorParams{}, squareMission());
    ap.run(40.0);
    EXPECT_TRUE(ap.navigator().missionComplete());
    EXPECT_EQ(ap.navigator().reachedCount(), 4u);
}

TEST(Autopilot, SurvivesWindGusts)
{
    // Table 1: wind gusts are compensated by the inner loop.
    AutopilotConfig cfg;
    cfg.wind.steady = {2.0, 0.0, 0.0};
    cfg.wind.gustIntensity = 1.5;
    Autopilot ap(QuadrotorParams{}, hoverMission(), cfg);
    ap.run(15.0);
    EXPECT_FALSE(ap.quad().upsideDown());
    EXPECT_LT((ap.quad().state().position - Vec3{0, 0, 2}).norm(), 2.0);
}

TEST(Autopilot, FlightLogRecordsPower)
{
    Autopilot ap(QuadrotorParams{}, hoverMission());
    ap.run(5.0);
    ASSERT_GT(ap.log().size(), 100u);
    // Hover propulsion power for the 1.07 kg default airframe is in
    // the ~100-200 W band (Figure 16b context).
    const FlightSample &last = ap.log().back();
    EXPECT_GT(last.propulsionPowerW, 50.0);
    EXPECT_LT(last.propulsionPowerW, 300.0);
}

/**
 * The inner-loop frequency ablation (paper Section 2.1.3D):
 * 50-500 Hz inner loops all hold hover; beyond 500 Hz there is no
 * measurable improvement because physics, not compute, limits the
 * response.
 */
class InnerLoopFrequency : public testing::TestWithParam<double>
{
};

TEST_P(InnerLoopFrequency, HoldsHoverAcrossPaperBand)
{
    const double hz = GetParam();
    AutopilotConfig cfg;
    cfg.useTruthState = true; // isolate control physics
    cfg.rates.thrustHz = hz;
    cfg.rates.attitudeHz = std::min(hz, 200.0);
    cfg.rates.positionHz = std::min(hz / 2.0, 40.0);
    Autopilot ap(QuadrotorParams{}, hoverMission(), cfg);
    ap.run(10.0);
    EXPECT_FALSE(ap.quad().upsideDown()) << hz << " Hz";
    EXPECT_LT((ap.quad().state().position - Vec3{0, 0, 2}).norm(), 0.5)
        << hz << " Hz";
}

INSTANTIATE_TEST_SUITE_P(PaperBand, InnerLoopFrequency,
                         testing::Values(100.0, 200.0, 250.0, 500.0,
                                         1000.0));

TEST(Autopilot, NoBenefitBeyond500Hz)
{
    auto tracking_error = [](double hz) {
        AutopilotConfig cfg;
        cfg.useTruthState = true;
        cfg.rates.thrustHz = hz;
        cfg.rates.attitudeHz = 200.0;
        cfg.rates.positionHz = 40.0;
        cfg.wind.gustIntensity = 1.0;
        Autopilot ap(QuadrotorParams{}, squareMission(), cfg);
        ap.run(30.0);
        return ap.meanTrackingErrorM(20.0);
    };
    const double err_500 = tracking_error(500.0);
    const double err_2000 = tracking_error(2000.0);
    // Quadrupling the rate beyond 500 Hz does not improve tracking
    // by more than noise (the paper's "not limited by computation").
    EXPECT_LT(err_2000, err_500 * 1.35 + 0.05);
    EXPECT_GT(err_2000, err_500 * 0.65 - 0.05);
}

} // namespace
} // namespace dronedse
