/**
 * @file
 * Failure-injection tests: the electromechanical and sensor faults
 * of paper Table 1 ("motor imperfection", "weight imbalance") and
 * GPS-denied operation.  These exercise the inner loop's robustness
 * margins and the estimator's degradation modes.
 */

#include <gtest/gtest.h>

#include "control/autopilot.hh"

namespace dronedse {
namespace {

std::vector<Waypoint>
hoverMission()
{
    return {{{0, 0, 2}, 0.0, 0.4, 1e9}};
}

TEST(FailureInjection, PartialMotorDeratingIsSurvivable)
{
    // A motor that only delivers 75 % of command: the rate-loop
    // integrators absorb the asymmetry and hover holds.
    AutopilotConfig cfg;
    cfg.useTruthState = true;
    Autopilot ap(QuadrotorParams{}, hoverMission(), cfg);
    ap.run(3.0);
    ap.quad().failMotor(0, 0.75);
    ap.run(8.0);
    EXPECT_FALSE(ap.quad().upsideDown());
    EXPECT_LT((ap.quad().state().position - Vec3{0, 0, 2}).norm(),
              0.6);
}

TEST(FailureInjection, DeadMotorIsCatastrophic)
{
    // A quadcopter cannot hover on three motors: total thrust and
    // roll/pitch authority collapse together.  The vehicle departs
    // controlled flight — which is why the paper's drones carry a
    // dedicated, conservative inner-loop processor rather than
    // relying on software heroics.
    AutopilotConfig cfg;
    cfg.useTruthState = true;
    Autopilot ap(QuadrotorParams{}, hoverMission(), cfg);
    ap.run(3.0);
    ap.quad().failMotor(2, 0.0);
    ap.run(8.0);
    const double err =
        (ap.quad().state().position - Vec3{0, 0, 2}).norm();
    EXPECT_TRUE(ap.quad().upsideDown() || err > 1.0);
}

TEST(FailureInjection, MotorEffectivenessAccessors)
{
    Quadrotor quad;
    EXPECT_EQ(quad.motorEffectiveness(1), 1.0);
    quad.failMotor(1, 0.4);
    EXPECT_EQ(quad.motorEffectiveness(1), 0.4);
    quad.failMotor(1, 2.0); // clamped
    EXPECT_EQ(quad.motorEffectiveness(1), 1.0);
    EXPECT_EXIT(quad.failMotor(7), testing::ExitedWithCode(1), "");
}

TEST(FailureInjection, PayloadImbalanceHeld)
{
    // Weight imbalance (Table 1): simulate with a constant lateral
    // wind-equivalent disturbance; the cascade's velocity integral
    // trims it out.
    AutopilotConfig cfg;
    cfg.useTruthState = true;
    cfg.wind.steady = {3.0, 0.0, 0.0};
    Autopilot ap(QuadrotorParams{}, hoverMission(), cfg);
    ap.run(12.0);
    EXPECT_LT((ap.quad().state().position - Vec3{0, 0, 2}).norm(),
              0.5);
}

TEST(FailureInjection, GpsOutageDegradesThenRecovers)
{
    Autopilot ap(QuadrotorParams{}, hoverMission(), AutopilotConfig{});
    ap.run(8.0);
    const double err_locked = ap.estimationErrorM();

    // Ten seconds GPS-denied: the EKF coasts on IMU + baro; the
    // position estimate drifts.
    ap.sensors().setGpsAvailable(false);
    ap.run(10.0);
    const double err_denied = ap.estimationErrorM();
    EXPECT_GT(err_denied, err_locked);

    // Reacquisition pulls the estimate back in.
    ap.sensors().setGpsAvailable(true);
    ap.run(6.0);
    EXPECT_LT(ap.estimationErrorM(), err_denied);
    EXPECT_LT(ap.estimationErrorM(), 1.5);
}

TEST(FailureInjection, AltitudeSurvivesGpsOutage)
{
    // The barometer keeps altitude observable without GPS.
    Autopilot ap(QuadrotorParams{}, hoverMission(), AutopilotConfig{});
    ap.run(6.0);
    ap.sensors().setGpsAvailable(false);
    ap.run(10.0);
    const double alt_err = std::abs(
        ap.estimator().estimate().position.z -
        ap.quad().state().position.z);
    EXPECT_LT(alt_err, 0.8);
    EXPECT_FALSE(ap.quad().upsideDown());
}

TEST(FailureInjection, StrongGustsWithinTable1Envelope)
{
    // Wind gusts (Table 1) up to 3 m/s RMS on top of a 4 m/s mean:
    // hover degrades but the vehicle stays upright.
    AutopilotConfig cfg;
    cfg.wind.steady = {4.0, 0.0, 0.0};
    cfg.wind.gustIntensity = 3.0;
    Autopilot ap(QuadrotorParams{}, hoverMission(), cfg);
    ap.run(15.0);
    EXPECT_FALSE(ap.quad().upsideDown());
    EXPECT_LT((ap.quad().state().position - Vec3{0, 0, 2}).norm(),
              3.0);
}

TEST(FailureInjection, SensorNoiseScaleDegradesEstimate)
{
    // The same seed flown twice: inflating the noise scale (an IMU
    // noise-spike fault) must not improve the estimate.
    Autopilot clean(QuadrotorParams{}, hoverMission(),
                    AutopilotConfig{});
    clean.run(10.0);

    Autopilot noisy(QuadrotorParams{}, hoverMission(),
                    AutopilotConfig{});
    noisy.sensors().setNoiseScale(8.0);
    EXPECT_DOUBLE_EQ(noisy.sensors().noiseScale(), 8.0);
    noisy.run(10.0);

    EXPECT_GT(noisy.estimationErrorM(), clean.estimationErrorM());
    EXPECT_EXIT(noisy.sensors().setNoiseScale(-1.0),
                testing::ExitedWithCode(1), "");
}

TEST(FailureInjection, LandSafeDescendsAndStaysDown)
{
    Autopilot ap(QuadrotorParams{}, hoverMission(), AutopilotConfig{});
    ap.run(6.0);
    EXPECT_FALSE(ap.landSafeActive());
    EXPECT_GT(ap.quad().state().position.z, 1.5);

    ap.commandLandSafe();
    EXPECT_TRUE(ap.landSafeActive());
    // Commanding it again is idempotent.
    ap.commandLandSafe();

    // A -0.5 m/s descent from 2 m needs ~4 s plus settling.
    ap.run(10.0);
    EXPECT_TRUE(ap.quad().onGround());
    EXPECT_FALSE(ap.quad().upsideDown());
    // Touchdown must be gentle: well under the 1.8 m/s crash limit.
    EXPECT_LT(ap.quad().maxImpactSpeed(), 1.2);

    // The navigator is bypassed for good: still on the ground later.
    ap.run(5.0);
    EXPECT_TRUE(ap.quad().onGround());
}

} // namespace
} // namespace dronedse
