#include <gtest/gtest.h>

#include "control/outer_loop.hh"

namespace dronedse {
namespace {

std::vector<Waypoint>
squareMission()
{
    return {{{0, 0, 2}, 0.0, 0.5, 0.0},
            {{5, 0, 2}, 0.0, 0.5, 0.0},
            {{5, 5, 2}, 1.57, 0.5, 0.0}};
}

TEST(OuterLoop, TargetsTrackCurrentWaypoint)
{
    WaypointNavigator nav(squareMission());
    const OuterLoopTargets t = nav.update({10, 10, 0}, 0.0);
    EXPECT_EQ(t.position.x, 0.0);
    EXPECT_EQ(nav.currentIndex(), 0u);
}

TEST(OuterLoop, AdvancesOnArrival)
{
    WaypointNavigator nav(squareMission());
    nav.update({0.1, 0.1, 2.0}, 1.0);
    EXPECT_EQ(nav.currentIndex(), 1u);
    const OuterLoopTargets t = nav.update({0.1, 0.1, 2.0}, 1.1);
    EXPECT_EQ(t.position.x, 5.0);
}

TEST(OuterLoop, HoldTimeDelaysAdvance)
{
    std::vector<Waypoint> mission = squareMission();
    mission[0].holdS = 2.0;
    WaypointNavigator nav(mission);
    nav.update({0, 0, 2}, 1.0);
    EXPECT_EQ(nav.currentIndex(), 0u); // arrived, still holding
    nav.update({0, 0, 2}, 2.0);
    EXPECT_EQ(nav.currentIndex(), 0u);
    nav.update({0, 0, 2}, 3.1);
    EXPECT_EQ(nav.currentIndex(), 1u);
}

TEST(OuterLoop, LeavingRadiusResetsHold)
{
    std::vector<Waypoint> mission = squareMission();
    mission[0].holdS = 2.0;
    WaypointNavigator nav(mission);
    nav.update({0, 0, 2}, 1.0);   // arrive
    nav.update({3, 0, 2}, 2.0);   // drift out
    nav.update({0, 0, 2}, 2.5);   // re-arrive: hold restarts
    nav.update({0, 0, 2}, 4.0);
    EXPECT_EQ(nav.currentIndex(), 0u);
    nav.update({0, 0, 2}, 4.6);
    EXPECT_EQ(nav.currentIndex(), 1u);
}

TEST(OuterLoop, MissionCompletionHoldsLastWaypoint)
{
    WaypointNavigator nav(squareMission());
    nav.update({0, 0, 2}, 1.0);
    nav.update({5, 0, 2}, 2.0);
    nav.update({5, 5, 2}, 3.0);
    EXPECT_TRUE(nav.missionComplete());
    EXPECT_EQ(nav.reachedCount(), 3u);
    const OuterLoopTargets t = nav.update({9, 9, 9}, 4.0);
    EXPECT_EQ(t.position.x, 5.0);
    EXPECT_EQ(t.position.y, 5.0);
    EXPECT_NEAR(t.yaw, 1.57, 1e-12);
}

TEST(OuterLoopDeath, EmptyMissionIsFatal)
{
    EXPECT_EXIT(WaypointNavigator({}), testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace dronedse
