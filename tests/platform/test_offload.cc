#include <gtest/gtest.h>

#include "platform/offload.hh"

namespace dronedse {
namespace {

std::vector<OffloadAssessment>
table5()
{
    // Paper geomean speedups; the flight-time columns are what we
    // check here.
    return assessOffload({1.0, 2.16, 30.7, 23.53});
}

TEST(Table5, Tx2LosesFlightTime)
{
    const auto table = table5();
    const auto &tx2 = table[static_cast<std::size_t>(
        PlatformKind::TX2)];
    // Paper: ~-4 min small, ~-1.5 min large.
    EXPECT_LT(tx2.gainedSmallMin, -1.0);
    EXPECT_GT(tx2.gainedSmallMin, -6.0);
    EXPECT_LT(tx2.gainedLargeMin, -0.3);
    EXPECT_GT(tx2.gainedLargeMin, -3.0);
}

TEST(Table5, FpgaGainsMatchPaperBands)
{
    const auto table = table5();
    const auto &fpga = table[static_cast<std::size_t>(
        PlatformKind::Fpga)];
    // Paper: ~+2-3 min small, ~+1 min large.
    EXPECT_GT(fpga.gainedSmallMin, 1.8);
    EXPECT_LT(fpga.gainedSmallMin, 3.5);
    EXPECT_GT(fpga.gainedLargeMin, 0.5);
    EXPECT_LT(fpga.gainedLargeMin, 1.8);
}

TEST(Table5, AsicBarelyBeatsFpga)
{
    // Paper: the ASIC adds only ~20 seconds over the FPGA.
    const auto table = table5();
    const auto &fpga = table[static_cast<std::size_t>(
        PlatformKind::Fpga)];
    const auto &asic = table[static_cast<std::size_t>(
        PlatformKind::Asic)];
    EXPECT_GT(asic.gainedSmallMin, fpga.gainedSmallMin);
    EXPECT_LT(asic.gainedSmallMin - fpga.gainedSmallMin, 0.8);
    EXPECT_LT(asic.gainedLargeMin - fpga.gainedLargeMin, 0.5);
}

TEST(Table5, RpiBaselineHasZeroGain)
{
    const auto table = table5();
    const auto &rpi = table[static_cast<std::size_t>(
        PlatformKind::RPi)];
    EXPECT_EQ(rpi.gainedSmallMin, 0.0);
    EXPECT_EQ(rpi.slamSpeedup, 1.0);
}

TEST(Table5, FpgaIsTheRecommendation)
{
    // The paper's conclusion: FPGA is the most cost-effective
    // platform for both small and large drones (the ASIC's tiny
    // extra gain cannot justify its integration/fabrication cost).
    const auto table = table5();
    EXPECT_EQ(recommendPlatform(table, true).spec.kind,
              PlatformKind::Fpga);
    EXPECT_EQ(recommendPlatform(table, false).spec.kind,
              PlatformKind::Fpga);
}

TEST(Table5, SpeedupsCarriedThrough)
{
    const auto table = table5();
    EXPECT_NEAR(table[1].slamSpeedup, 2.16, 1e-9);
    EXPECT_NEAR(table[2].slamSpeedup, 30.7, 1e-9);
}

TEST(Table5Death, EmptyTableIsFatal)
{
    EXPECT_EXIT(recommendPlatform({}), testing::ExitedWithCode(1), "");
}

TEST(OffloadLinkTest, HealthyLinkIsUsable)
{
    OffloadLink link;
    EXPECT_TRUE(link.up());
    EXPECT_TRUE(link.usable());
    EXPECT_DOUBLE_EQ(link.roundTripMs(), 5.0);
    EXPECT_TRUE(link.attempt());
    EXPECT_EQ(link.attempts(), 1);
    EXPECT_EQ(link.failures(), 0);
}

TEST(OffloadLinkTest, OutageMakesAttemptsFail)
{
    OffloadLink link;
    link.setDown(true);
    EXPECT_FALSE(link.up());
    EXPECT_FALSE(link.usable());
    EXPECT_FALSE(link.attempt());
    link.setDown(false);
    EXPECT_TRUE(link.attempt());
    EXPECT_EQ(link.attempts(), 2);
    EXPECT_EQ(link.failures(), 1);
}

TEST(OffloadLinkTest, LatencySpikePastBudgetIsUnusableButUp)
{
    OffloadLink link;
    link.setLatencySpikeMs(100.0);
    EXPECT_TRUE(link.up());
    EXPECT_DOUBLE_EQ(link.roundTripMs(), 105.0);
    EXPECT_FALSE(link.usable());
    link.setLatencySpikeMs(0.0);
    EXPECT_TRUE(link.usable());
}

TEST(OffloadLinkDeath, RejectsInvalidConfigAndSpike)
{
    EXPECT_EXIT(OffloadLink({-1.0, 60.0}),
                testing::ExitedWithCode(1), "");
    EXPECT_EXIT(OffloadLink({10.0, 5.0}),
                testing::ExitedWithCode(1), "");
    OffloadLink link;
    EXPECT_EXIT(link.setLatencySpikeMs(-0.1),
                testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace dronedse
