#include <gtest/gtest.h>

#include "platform/exec_model.hh"
#include "platform/platform.hh"

namespace dronedse {
namespace {

TEST(Platform, SpecsMatchTable5)
{
    const auto &rpi = platformSpec(PlatformKind::RPi);
    EXPECT_EQ(rpi.powerOverheadW.value(), 2.0);
    EXPECT_EQ(rpi.weightOverheadG.value(), 50.0);
    EXPECT_EQ(rpi.integrationCost, CostLevel::Low);

    const auto &tx2 = platformSpec(PlatformKind::TX2);
    EXPECT_EQ(tx2.powerOverheadW.value(), 10.0);
    EXPECT_EQ(tx2.weightOverheadG.value(), 85.0);

    const auto &fpga = platformSpec(PlatformKind::Fpga);
    EXPECT_EQ(fpga.powerOverheadW.value(), 0.417);
    EXPECT_EQ(fpga.weightOverheadG.value(), 75.0);
    EXPECT_EQ(fpga.integrationCost, CostLevel::Medium);
    EXPECT_EQ(fpga.fabricationCost, CostLevel::Medium);

    const auto &asic = platformSpec(PlatformKind::Asic);
    EXPECT_EQ(asic.powerOverheadW.value(), 0.024);
    EXPECT_EQ(asic.weightOverheadG.value(), 20.0);
    EXPECT_EQ(asic.integrationCost, CostLevel::High);
    EXPECT_EQ(asic.fabricationCost, CostLevel::High);

    EXPECT_EQ(allPlatforms().size(), 4u);
    EXPECT_STREQ(costLevelName(CostLevel::Medium), "Medium");
}

TEST(Platform, AcceleratorsNeverSlowerPerPhase)
{
    const auto &rpi = platformSpec(PlatformKind::RPi);
    for (PlatformKind kind :
         {PlatformKind::TX2, PlatformKind::Fpga, PlatformKind::Asic}) {
        const auto &spec = platformSpec(kind);
        for (std::size_t p = 0; p < spec.phaseThroughput.size(); ++p) {
            EXPECT_GE(spec.phaseThroughput[p],
                      rpi.phaseThroughput[p])
                << spec.name << " phase " << p;
        }
    }
}

TEST(Platform, TimeModelIsLinearInWork)
{
    std::array<PhaseWork,
               static_cast<std::size_t>(SlamPhase::NumPhases)>
        work{};
    work[0].ops = 1000000;
    work[3].ops = 4000000;
    const PlatformTimes once = timeOnPlatform(work, PlatformKind::RPi);
    for (auto &w : work)
        w.ops *= 2;
    const PlatformTimes twice = timeOnPlatform(work,
                                               PlatformKind::RPi);
    EXPECT_NEAR(twice.totalSeconds, 2.0 * once.totalSeconds, 1e-12);
}

TEST(Platform, BaDominatesRpiTime)
{
    // The paper: bundle adjustment is ~90 % of ORB-SLAM execution
    // time on the RPi (Section 5.2).
    std::array<PhaseWork,
               static_cast<std::size_t>(SlamPhase::NumPhases)>
        work{};
    // Typical easy-sequence op mix (see MH01 measurements).
    work[static_cast<std::size_t>(SlamPhase::FeatureExtraction)].ops =
        250'000'000;
    work[static_cast<std::size_t>(SlamPhase::Matching)].ops =
        120'000'000;
    work[static_cast<std::size_t>(SlamPhase::Tracking)].ops =
        15'000'000;
    work[static_cast<std::size_t>(SlamPhase::LocalBa)].ops =
        40'000'000;
    work[static_cast<std::size_t>(SlamPhase::GlobalBa)].ops =
        19'000'000;
    const PlatformTimes rpi = timeOnPlatform(work, PlatformKind::RPi);
    const double ba =
        rpi.phaseSeconds[static_cast<std::size_t>(SlamPhase::LocalBa)] +
        rpi.phaseSeconds[static_cast<std::size_t>(
            SlamPhase::GlobalBa)];
    EXPECT_GT(ba / rpi.totalSeconds, 0.85);
}

TEST(Figure17, GeomeansMatchPaperBands)
{
    // Full-length run; the acceptance gate for the Figure 17
    // reproduction (paper: TX2 2.16x, FPGA 30.7x, ASIC 23.53x).
    const Figure17Data data = runFigure17();
    ASSERT_EQ(data.rows.size(), 11u);
    EXPECT_NEAR(data.geomeanSpeedup[0], 1.0, 1e-9);
    EXPECT_NEAR(data.geomeanSpeedup[1], 2.16, 0.35);
    EXPECT_NEAR(data.geomeanSpeedup[2], 30.7, 4.7);
    EXPECT_NEAR(data.geomeanSpeedup[3], 23.53, 3.6);
}

TEST(Figure17, OrderingAndBaFractions)
{
    const Figure17Data data = runFigure17(80);
    for (const auto &row : data.rows) {
        // FPGA fastest, then ASIC, then TX2, then RPi (Table 5).
        EXPECT_GT(row.speedup[2], row.speedup[3]) << row.sequence;
        EXPECT_GT(row.speedup[3], row.speedup[1]) << row.sequence;
        EXPECT_GT(row.speedup[1], 1.0) << row.sequence;
        EXPECT_GT(row.rpiBaFraction, 0.2) << row.sequence;
    }
}

} // namespace
} // namespace dronedse
