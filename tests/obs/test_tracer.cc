/**
 * @file
 * Tracer battery: runtime gating, scoped-span capture, per-thread
 * buffers, snapshot ordering, Chrome-JSON / CSV export shape, and
 * the compiled-out configuration (every test that records spans is
 * guarded on DRONEDSE_TRACING; the stub behaviour is asserted when
 * the tracer is compiled out).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "obs/tracer.hh"
#include "util/csv.hh"

namespace dronedse::obs {
namespace {

#if DRONEDSE_TRACING

TEST(Tracer, DisabledTracerRecordsNothing)
{
    Tracer t;
    EXPECT_FALSE(t.enabled());
    const auto now = std::chrono::steady_clock::now();
    t.recordSpan("x", "test", now, now);
    t.recordInstant("x", "test");
    t.recordManual("x", "test", kWallTrack, 0.0, 1.0);
    EXPECT_TRUE(t.snapshot().empty());

    t.setEnabled(true);
    t.recordManual("x", "test", kWallTrack, 0.0, 1.0);
    EXPECT_EQ(t.snapshot().size(), 1u);
}

TEST(Tracer, RecordSpanMeasuresTheGivenInterval)
{
    Tracer t;
    t.setEnabled(true);
    const auto start = std::chrono::steady_clock::now();
    const auto end = start + std::chrono::microseconds(1500);
    t.recordSpan("timed", "test", start, end);

    const auto spans = t.snapshot();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].name, "timed");
    EXPECT_EQ(spans[0].category, "test");
    EXPECT_EQ(spans[0].phase, 'X');
    EXPECT_EQ(spans[0].track, kWallTrack);
    EXPECT_DOUBLE_EQ(spans[0].durUs, 1500.0);
    EXPECT_GE(spans[0].startUs, 0.0);
}

TEST(Tracer, ScopedSpanCapturesItsScopeOnTheGlobalTracer)
{
    tracer().clear();
    tracer().setEnabled(true);
    {
        ScopedSpan span("test.scoped", "test");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    instant("test.instant", "test");
    tracer().setEnabled(false);

    const auto spans = tracer().snapshot();
    tracer().clear();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].name, "test.scoped");
    EXPECT_EQ(spans[0].phase, 'X');
    EXPECT_GE(spans[0].durUs, 1000.0);
    EXPECT_EQ(spans[1].name, "test.instant");
    EXPECT_EQ(spans[1].phase, 'i');
    EXPECT_EQ(spans[1].durUs, 0.0);
}

TEST(Tracer, ScopedSpanIsNotCapturedWhenDisabled)
{
    tracer().clear();
    tracer().setEnabled(false);
    {
        ScopedSpan span("test.ghost", "test");
    }
    instant("test.ghost", "test");
    EXPECT_TRUE(tracer().snapshot().empty());
}

TEST(Tracer, RecordManualLandsOnTheRequestedTrack)
{
    Tracer t;
    t.setEnabled(true);
    t.recordManual("sim.task", "control", kSimTrack, 2.0e6, 5.0e3);

    const auto spans = t.snapshot();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].track, kSimTrack);
    EXPECT_DOUBLE_EQ(spans[0].startUs, 2.0e6);
    EXPECT_DOUBLE_EQ(spans[0].durUs, 5.0e3);
}

TEST(Tracer, SnapshotIsSortedByStartThenThread)
{
    Tracer t;
    t.setEnabled(true);
    t.recordManual("late", "test", kWallTrack, 30.0, 1.0);
    t.recordManual("early", "test", kWallTrack, 10.0, 1.0);
    t.recordManual("mid", "test", kWallTrack, 20.0, 1.0);

    const auto spans = t.snapshot();
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[0].name, "early");
    EXPECT_EQ(spans[1].name, "mid");
    EXPECT_EQ(spans[2].name, "late");
}

TEST(Tracer, ThreadsGetDistinctBuffersAndIds)
{
    Tracer t;
    t.setEnabled(true);
    constexpr int kThreads = 4;
    constexpr int kSpansPerThread = 50;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&t, i] {
            for (int k = 0; k < kSpansPerThread; ++k) {
                t.recordManual("w", "test", kWallTrack,
                               1000.0 * i + k, 1.0);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    const auto spans = t.snapshot();
    ASSERT_EQ(spans.size(),
              static_cast<std::size_t>(kThreads) * kSpansPerThread);
    std::set<std::uint32_t> ids;
    for (const auto &span : spans)
        ids.insert(span.thread);
    // Every worker registered its own buffer (the main thread never
    // recorded, so exactly kThreads ids appear).
    EXPECT_EQ(ids.size(), static_cast<std::size_t>(kThreads));
}

TEST(Tracer, ChromeJsonHasTheTraceEventShape)
{
    Tracer t;
    t.setEnabled(true);
    t.recordManual("engine.chunk", "engine", kWallTrack, 1.5, 2.5);
    t.recordInstant("engine.steal", "engine");
    t.recordManual("ctl", "control", kSimTrack, 9.0, 1.0);

    const std::string json = t.toChromeJson();
    EXPECT_NE(json.find("{\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""),
              std::string::npos);
    // Complete spans carry ph=X and a dur; instants ph=i and s=t.
    EXPECT_NE(json.find("\"name\": \"engine.chunk\", \"cat\": "
                        "\"engine\", \"ph\": \"X\", \"ts\": "
                        "1.500000, \"dur\": 2.500000, \"pid\": 1"),
              std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
    // The sim-track span renders under pid 2.
    EXPECT_NE(json.find("\"ts\": 9.000000, \"dur\": 1.000000, "
                        "\"pid\": 2"),
              std::string::npos);
}

TEST(Tracer, CsvExportRoundTripsThroughTheCsvParser)
{
    Tracer t;
    t.setEnabled(true);
    t.recordManual("a", "test", kWallTrack, 1.0, 2.0);
    t.recordManual("b", "test", kSimTrack, 3.0, 4.0);

    const auto rows = parseCsv(t.toCsv());
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0],
              (std::vector<std::string>{"name", "category", "track",
                                        "thread", "phase", "start_us",
                                        "dur_us"}));
    EXPECT_EQ(rows[1][0], "a");
    EXPECT_EQ(rows[1][2], "1");
    EXPECT_EQ(rows[2][0], "b");
    EXPECT_EQ(rows[2][2], "2");
}

TEST(Tracer, ClearDropsSpansButKeepsBuffersUsable)
{
    Tracer t;
    t.setEnabled(true);
    t.recordManual("x", "test", kWallTrack, 1.0, 1.0);
    EXPECT_EQ(t.snapshot().size(), 1u);
    t.clear();
    EXPECT_TRUE(t.snapshot().empty());
    t.recordManual("y", "test", kWallTrack, 2.0, 1.0);
    EXPECT_EQ(t.snapshot().size(), 1u);
}

#else // !DRONEDSE_TRACING

TEST(Tracer, CompiledOutTracerNeverEnablesOrRecords)
{
    Tracer t;
    t.setEnabled(true);
    EXPECT_FALSE(t.enabled());
    const auto now = std::chrono::steady_clock::now();
    t.recordSpan("x", "test", now, now);
    t.recordInstant("x", "test");
    t.recordManual("x", "test", kWallTrack, 0.0, 1.0);
    EXPECT_TRUE(t.snapshot().empty());
    EXPECT_NE(t.toChromeJson().find("\"traceEvents\": []"),
              std::string::npos);
}

TEST(Tracer, CompiledOutScopedSpanIsANoOp)
{
    tracer().setEnabled(true);
    {
        ScopedSpan span("test.stub", "test");
    }
    instant("test.stub", "test");
    EXPECT_FALSE(tracer().enabled());
    EXPECT_TRUE(tracer().snapshot().empty());
}

#endif // DRONEDSE_TRACING

} // namespace
} // namespace dronedse::obs
