/**
 * @file
 * Metrics-registry battery: find-or-create identity, counter/gauge
 * semantics, histogram bucket placement, exact accounting under
 * thread contention, and deterministic JSON snapshots.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.hh"

namespace dronedse::obs {
namespace {

TEST(Metrics, CounterFindOrCreateReturnsStableReference)
{
    MetricsRegistry reg;
    Counter &a = reg.counter("test.counter.a");
    Counter &a_again = reg.counter("test.counter.a");
    Counter &b = reg.counter("test.counter.b");
    EXPECT_EQ(&a, &a_again);
    EXPECT_NE(&a, &b);

    EXPECT_EQ(a.value(), 0u);
    a.add();
    a.add(41);
    EXPECT_EQ(a.value(), 42u);
    EXPECT_EQ(a_again.value(), 42u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(Metrics, GaugeIsLastWriteWins)
{
    MetricsRegistry reg;
    Gauge &g = reg.gauge("test.gauge");
    EXPECT_EQ(g.value(), 0.0);
    g.set(3.5);
    g.set(-7.25);
    EXPECT_EQ(g.value(), -7.25);
}

TEST(Metrics, HistogramPlacesSamplesInTheFirstCoveringBucket)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("test.hist", {1.0, 2.0, 4.0});
    ASSERT_EQ(h.bounds(), (std::vector<double>{1.0, 2.0, 4.0}));

    h.record(0.5); // bucket 0 (<= 1)
    h.record(1.0); // bucket 0 (edge is inclusive)
    h.record(1.5); // bucket 1
    h.record(4.0); // bucket 2
    h.record(9.0); // overflow bucket

    EXPECT_EQ(h.counts(),
              (std::vector<std::uint64_t>{2, 1, 1, 1}));
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
}

TEST(Metrics, HistogramBoundsOnlyApplyOnFirstRegistration)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("test.hist", {1.0, 2.0});
    Histogram &again = reg.histogram("test.hist", {99.0});
    EXPECT_EQ(&h, &again);
    EXPECT_EQ(again.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsDeathTest, UnsortedHistogramBoundsAreFatal)
{
    EXPECT_DEATH(Histogram({2.0, 1.0}), "ascending");
}

TEST(Metrics, ConcurrentCounterUpdatesAccountEveryIncrement)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("test.contended");
    Histogram &h = reg.histogram("test.contended.hist", {0.5});
    constexpr int kThreads = 8;
    constexpr int kAddsPerThread = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c, &h] {
            for (int i = 0; i < kAddsPerThread; ++i) {
                c.add();
                h.record(i % 2 == 0 ? 0.25 : 1.0);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    const auto total =
        static_cast<std::uint64_t>(kThreads) * kAddsPerThread;
    EXPECT_EQ(c.value(), total);
    EXPECT_EQ(h.count(), total);
    EXPECT_EQ(h.counts(),
              (std::vector<std::uint64_t>{total / 2, total / 2}));
}

TEST(Metrics, JsonSnapshotIsDeterministicAndSorted)
{
    const auto populate = [](MetricsRegistry &reg) {
        // Registered out of order; the snapshot must sort.
        reg.counter("zz.last").add(3);
        reg.counter("aa.first").add(1);
        reg.gauge("mid.gauge").set(2.5);
        reg.histogram("hist.h", {1.0}).record(0.5);
    };
    MetricsRegistry one, two;
    populate(one);
    populate(two);
    const std::string json = one.toJson();
    EXPECT_EQ(json, two.toJson());

    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_LT(json.find("aa.first"), json.find("zz.last"));
    EXPECT_NE(json.find("\"bounds\""), std::string::npos);
    EXPECT_NE(json.find("\"counts\""), std::string::npos);
}

TEST(Metrics, ClearResetsToTheEmptySnapshot)
{
    MetricsRegistry reg;
    const std::string empty = reg.toJson();
    reg.counter("test.c").add(5);
    reg.gauge("test.g").set(1.0);
    EXPECT_NE(reg.toJson(), empty);
    reg.clear();
    EXPECT_EQ(reg.toJson(), empty);
}

TEST(Metrics, GlobalRegistryIsASingleton)
{
    EXPECT_EQ(&metrics(), &metrics());
    // Instrumented modules publish through it; a name created here
    // must come back as the same object later.
    Counter &c = metrics().counter("test.metrics.singleton");
    EXPECT_EQ(&c, &metrics().counter("test.metrics.singleton"));
}

} // namespace
} // namespace dronedse::obs
