/**
 * @file
 * The Figure 17 phase breakdown, reproduced from the exported trace
 * alone: run a SLAM sequence with tracing on, then reconstruct each
 * phase's wall time purely by summing that phase's spans from the
 * tracer snapshot.  The sums must match the pipeline's own
 * PhaseWork.seconds accounting within 1% — the acceptance criterion
 * that makes the trace a trustworthy substitute for bespoke timers.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "obs/tracer.hh"
#include "slam/pipeline.hh"
#include "slam/world.hh"

namespace dronedse {
namespace {

#if DRONEDSE_TRACING

/** Span-name convention of the pipeline's phase instruments. */
const char *
spanNameFor(SlamPhase phase)
{
    switch (phase) {
    case SlamPhase::FeatureExtraction:
        return "slam.feature-extraction";
    case SlamPhase::Matching:
        return "slam.matching";
    case SlamPhase::Tracking:
        return "slam.tracking";
    case SlamPhase::LocalBa:
        return "slam.local-ba";
    case SlamPhase::GlobalBa:
        return "slam.global-ba";
    default:
        return "?";
    }
}

TEST(SlamTrace, PhaseBreakdownFromTheTraceMatchesWorkAccounting)
{
    obs::tracer().clear();
    obs::tracer().setEnabled(true);
    SequenceSpec spec = findSequence("V101");
    spec.frames = 150; // enough frames to hit every phase
    const SequenceStats stats = SlamPipeline::runSequence(spec);
    obs::tracer().setEnabled(false);

    // Rebuild the phase breakdown from the trace alone.
    std::map<std::string, double> traced_seconds;
    for (const obs::SpanRecord &span : obs::tracer().snapshot()) {
        if (span.category == "slam")
            traced_seconds[span.name] += span.durUs * 1e-6;
    }
    obs::tracer().clear();

    for (std::size_t p = 0;
         p < static_cast<std::size_t>(SlamPhase::NumPhases); ++p) {
        const auto phase = static_cast<SlamPhase>(p);
        const double accounted = stats.work[p].seconds;
        const double traced = traced_seconds[spanNameFor(phase)];
        ASSERT_GT(accounted, 0.0) << slamPhaseName(phase);
        // Both views derive from the same clock readings, so the
        // only slack is double rounding across thousands of spans —
        // far inside the 1% acceptance budget.
        EXPECT_NEAR(traced, accounted, 0.01 * accounted)
            << slamPhaseName(phase);
    }
}

TEST(SlamTrace, TraceCarriesOnlyWallTrackSlamSpans)
{
    obs::tracer().clear();
    obs::tracer().setEnabled(true);
    SequenceSpec spec = findSequence("MH01");
    spec.frames = 40;
    SlamPipeline::runSequence(spec);
    obs::tracer().setEnabled(false);

    const auto spans = obs::tracer().snapshot();
    obs::tracer().clear();
    ASSERT_FALSE(spans.empty());
    for (const auto &span : spans) {
        if (span.category != "slam")
            continue;
        EXPECT_EQ(span.track, obs::kWallTrack);
        EXPECT_EQ(span.phase, 'X');
        EXPECT_GE(span.durUs, 0.0);
    }
}

#else // !DRONEDSE_TRACING

TEST(SlamTrace, CompiledOutPipelineStillAccountsWork)
{
    obs::tracer().setEnabled(true); // no-op when compiled out
    SequenceSpec spec = findSequence("MH01");
    spec.frames = 40;
    const SequenceStats stats = SlamPipeline::runSequence(spec);
    EXPECT_TRUE(obs::tracer().snapshot().empty());
    double total = 0.0;
    for (const auto &work : stats.work)
        total += work.seconds;
    EXPECT_GT(total, 0.0);
}

#endif // DRONEDSE_TRACING

} // namespace
} // namespace dronedse
