#include <gtest/gtest.h>

#include <vector>

#include "util/regression.hh"
#include "util/rng.hh"

namespace dronedse {
namespace {

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniform(5.0, 7.0);
        EXPECT_GE(v, 5.0);
        EXPECT_LT(v, 7.0);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(4);
    std::vector<int> seen(6, 0);
    for (int i = 0; i < 6000; ++i) {
        const auto v = rng.uniformInt(0, 5);
        ASSERT_GE(v, 0);
        ASSERT_LE(v, 5);
        ++seen[static_cast<std::size_t>(v)];
    }
    for (int count : seen)
        EXPECT_GT(count, 800); // ~1000 expected per bucket
}

TEST(Rng, GaussianMoments)
{
    Rng rng(5);
    std::vector<double> samples;
    samples.reserve(50000);
    for (int i = 0; i < 50000; ++i)
        samples.push_back(rng.gaussian(10.0, 2.0));
    EXPECT_NEAR(mean(samples), 10.0, 0.05);
    EXPECT_NEAR(stddev(samples), 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(6);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        if (rng.bernoulli(0.3))
            ++hits;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

} // namespace
} // namespace dronedse
