#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hh"

namespace dronedse {
namespace {

TEST(Csv, HeaderAndRows)
{
    CsvWriter csv({"a", "b"});
    csv.addRow({std::vector<std::string>{"1", "2"}});
    csv.addRow(std::vector<double>{3.5, 4.25});
    EXPECT_EQ(csv.rowCount(), 2u);
    EXPECT_EQ(csv.str(), "a,b\n1,2\n3.5,4.25\n");
}

TEST(Csv, EscapingPerRfc4180)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");

    CsvWriter csv({"x"});
    csv.addRow({std::vector<std::string>{"a,b"}});
    EXPECT_EQ(csv.str(), "x\n\"a,b\"\n");
}

TEST(Csv, WriteRoundTrip)
{
    const std::string path = "/tmp/dronedse_csv_test.csv";
    CsvWriter csv({"k", "v"});
    csv.addRow({std::vector<std::string>{"answer", "42"}});
    csv.write(path);

    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), "k,v\nanswer,42\n");
    std::remove(path.c_str());
}

TEST(Csv, DoubleFormatting)
{
    CsvWriter csv({"v"});
    csv.addRow(std::vector<double>{0.1234567890123});
    // %.10g keeps ten significant digits.
    EXPECT_EQ(csv.str(), "v\n0.123456789\n");
}

TEST(CsvDeath, MismatchedRowPanics)
{
    CsvWriter csv({"a", "b"});
    EXPECT_DEATH(csv.addRow({std::vector<std::string>{"only"}}), "");
}

TEST(CsvDeath, EmptyHeaderIsFatal)
{
    EXPECT_EXIT(CsvWriter({}), testing::ExitedWithCode(1), "");
}

TEST(CsvDeath, UnwritablePathIsFatal)
{
    CsvWriter csv({"a"});
    EXPECT_EXIT(csv.write("/nonexistent-dir/out.csv"),
                testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace dronedse
