#include <gtest/gtest.h>

#include "util/table.hh"

namespace dronedse {
namespace {

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "22"});
    const std::string s = t.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("long-name"), std::string::npos);
    // Every line has the same length (aligned columns).
    std::size_t pos = 0, prev_len = 0;
    int lines = 0;
    while (pos < s.size()) {
        const std::size_t nl = s.find('\n', pos);
        const std::size_t len = nl - pos;
        if (lines > 0) {
            EXPECT_EQ(len, prev_len);
        }
        prev_len = len;
        pos = nl + 1;
        ++lines;
    }
    EXPECT_EQ(lines, 4); // header + rule + 2 rows
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, Formatting)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
    EXPECT_EQ(fmtPercent(0.123, 1), "12.3%");
    EXPECT_EQ(fmtPercent(1.0, 0), "100%");
}

TEST(TableDeath, RejectsWrongCellCount)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "");
}

} // namespace
} // namespace dronedse
