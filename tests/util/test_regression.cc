#include <gtest/gtest.h>

#include <cmath>

#include "util/regression.hh"
#include "util/rng.hh"

namespace dronedse {
namespace {

TEST(Regression, ExactLine)
{
    const std::vector<double> xs = {0, 1, 2, 3, 4};
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(2.5 * x + 1.0);
    const LinearFit fit = fitLinear(xs, ys);
    EXPECT_NEAR(fit.slope, 2.5, 1e-12);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
    EXPECT_NEAR(fit.rSquared, 1.0, 1e-12);
    EXPECT_EQ(fit.samples, 5u);
    EXPECT_NEAR(fit.at(10.0), 26.0, 1e-12);
}

TEST(Regression, NoisyLineRecoversCoefficients)
{
    Rng rng(17);
    std::vector<double> xs, ys;
    for (int i = 0; i < 2000; ++i) {
        const double x = rng.uniform(0.0, 100.0);
        xs.push_back(x);
        ys.push_back(0.7 * x - 3.0 + rng.gaussian(0.0, 1.0));
    }
    const LinearFit fit = fitLinear(xs, ys);
    EXPECT_NEAR(fit.slope, 0.7, 0.01);
    EXPECT_NEAR(fit.intercept, -3.0, 0.5);
    EXPECT_GT(fit.rSquared, 0.99);
}

TEST(Regression, MeanStddev)
{
    const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(v), 5.0);
    // Sample stddev of this classic set is sqrt(32/7).
    EXPECT_NEAR(stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_EQ(mean({}), 0.0);
    EXPECT_EQ(stddev({1.0}), 0.0);
}

TEST(Regression, Geomean)
{
    EXPECT_NEAR(geomean({1.0, 100.0}), 10.0, 1e-9);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-9);
    EXPECT_EQ(geomean({}), 0.0);
}

TEST(Regression, MinMax)
{
    const std::vector<double> v = {3.0, -1.0, 7.0};
    EXPECT_EQ(minValue(v), -1.0);
    EXPECT_EQ(maxValue(v), 7.0);
    EXPECT_EQ(minValue({}), 0.0);
}

TEST(RegressionDeath, GeomeanRejectsNonPositive)
{
    EXPECT_EXIT(geomean({1.0, 0.0}), testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace dronedse
