/**
 * @file
 * CSV round-trip battery: seeded-random tables full of quotes,
 * commas, CR/LF, empty cells, and extreme doubles must survive
 * write -> parse -> write byte-identically, and parse back to the
 * exact original cells.  Complements test_csv.cc's hand-written
 * cases with fuzzed coverage of the RFC-4180 escaping corners.
 */

#include <gtest/gtest.h>

#include <cfloat>
#include <string>
#include <vector>

#include "util/csv.hh"
#include "util/rng.hh"

namespace dronedse {
namespace {

std::string
randomCell(Rng &rng)
{
    // Heavily weighted toward the characters that trigger quoting;
    // also produces plenty of empty cells.
    static const char palette[] = {',', '"', '\n', '\r', 'a', 'b',
                                   'z', ' ', '0',  '9',  '-', '.'};
    const auto len =
        static_cast<std::size_t>(rng.uniformInt(0, 12));
    std::string cell;
    cell.reserve(len);
    for (std::size_t i = 0; i < len; ++i)
        cell += palette[static_cast<std::size_t>(
            rng.uniformInt(0, sizeof(palette) - 1))];
    return cell;
}

std::vector<std::vector<std::string>>
randomTable(Rng &rng)
{
    const auto cols =
        static_cast<std::size_t>(rng.uniformInt(1, 6));
    const auto rows =
        static_cast<std::size_t>(rng.uniformInt(1, 20));
    std::vector<std::vector<std::string>> table;
    table.reserve(rows + 1);
    for (std::size_t r = 0; r < rows + 1; ++r) {
        std::vector<std::string> row;
        row.reserve(cols);
        for (std::size_t c = 0; c < cols; ++c)
            row.push_back(randomCell(rng));
        table.push_back(std::move(row));
    }
    return table;
}

std::string
renderTable(const std::vector<std::vector<std::string>> &table)
{
    CsvWriter writer(table.front());
    for (std::size_t r = 1; r < table.size(); ++r)
        writer.addRow(table[r]);
    return writer.str();
}

TEST(CsvRoundTrip, SeededRandomTablesSurviveByteIdentically)
{
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        Rng rng(seed);
        const auto table = randomTable(rng);
        const std::string first = renderTable(table);

        // Parse recovers the exact cells...
        const auto parsed = parseCsv(first);
        ASSERT_EQ(parsed, table) << "seed " << seed;

        // ...and re-rendering the parse is byte-identical.
        EXPECT_EQ(renderTable(parsed), first) << "seed " << seed;
    }
}

TEST(CsvRoundTrip, ExtremeDoublesSurviveTheStringRoundTrip)
{
    CsvWriter writer({"value"});
    const std::vector<double> extremes{
        0.0,      -0.0,        DBL_MAX,  -DBL_MAX, DBL_MIN,
        -DBL_MIN, DBL_EPSILON, 1e308,    -1e308,   4.9e-324,
        1.0 / 3.0, -12345.678901234567};
    for (double v : extremes)
        writer.addRow(std::vector<double>{v});
    const std::string first = writer.str();

    const auto parsed = parseCsv(first);
    ASSERT_EQ(parsed.size(), extremes.size() + 1);
    CsvWriter again(parsed.front());
    for (std::size_t r = 1; r < parsed.size(); ++r)
        again.addRow(parsed[r]);
    EXPECT_EQ(again.str(), first);
}

TEST(CsvRoundTrip, EscapingCornersParseBackExactly)
{
    // The corners the fuzz loop is most likely to produce, pinned
    // down explicitly so a failure names the case.
    const std::vector<std::vector<std::string>> table{
        {"h1", "h2"},
        {"", ""},                  // empty cells
        {",", "\""},               // bare separator, bare quote
        {"\"\"", "a\"b\"c"},       // quote runs
        {"\r", "\r\n"},            // CR alone and CRLF inside a cell
        {"line1\nline2", "trail,"},
        {" lead", "trail "},
    };
    const std::string doc = renderTable(table);
    EXPECT_EQ(parseCsv(doc), table);
    EXPECT_EQ(renderTable(parseCsv(doc)), doc);
}

TEST(CsvRoundTrip, MalformedInputIsFatal)
{
    EXPECT_DEATH(parseCsv("a,\"unclosed\n"), "unclosed quote");
    EXPECT_DEATH(parseCsv("a,\"x\"y\n"), "garbage after");
    EXPECT_DEATH(parseCsv("a,b\"c\n"), "quote inside");
    EXPECT_DEATH(parseCsv("\"\"x\n"), "garbage after");
}

} // namespace
} // namespace dronedse
