/**
 * @file
 * Logging tests: level filtering, sink redirection, and (under
 * TSan) thread-safety of concurrent logging against level and sink
 * changes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/logging.hh"

using namespace dronedse;

namespace {

/** Captures everything the logger emits; restores state on exit. */
class CaptureSink
{
  public:
    CaptureSink()
    {
        previous_ = setLogSink([this](LogLevel level,
                                      const std::string &msg) {
            std::lock_guard<std::mutex> lock(mutex_);
            lines_.push_back({level, msg});
        });
    }

    ~CaptureSink()
    {
        setLogSink(std::move(previous_));
        setLogMinLevel(LogLevel::Info);
    }

    std::vector<std::pair<LogLevel, std::string>> lines() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return lines_;
    }

  private:
    mutable std::mutex mutex_;
    std::vector<std::pair<LogLevel, std::string>> lines_;
    LogSink previous_;
};

} // namespace

TEST(LoggingDeath, FatalExitsAndAlwaysWritesStderr)
{
    // fatal() must reach stderr even while a sink is installed, so
    // death-test expectations and crash triage see the message.
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        {
            setLogSink([](LogLevel, const std::string &) {});
            fatal("configuration rejected");
        },
        testing::ExitedWithCode(1), "fatal: configuration rejected");
}

TEST(LoggingDeath, PanicAborts)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(panic("impossible state"),
                 "panic: impossible state");
}

TEST(LoggingTest, LevelNamesAreStable)
{
    EXPECT_STREQ(logLevelName(LogLevel::Debug), "debug");
    EXPECT_STREQ(logLevelName(LogLevel::Info), "info");
    EXPECT_STREQ(logLevelName(LogLevel::Warn), "warn");
    EXPECT_STREQ(logLevelName(LogLevel::Error), "error");
}

TEST(LoggingTest, DefaultLevelFiltersDebugOnly)
{
    CaptureSink capture;
    ASSERT_EQ(logMinLevel(), LogLevel::Info);

    debug("dropped");
    inform("kept info");
    warn("kept warn");

    const auto lines = capture.lines();
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].first, LogLevel::Info);
    EXPECT_EQ(lines[0].second, "kept info");
    EXPECT_EQ(lines[1].first, LogLevel::Warn);
    EXPECT_EQ(lines[1].second, "kept warn");
}

TEST(LoggingTest, MinLevelRaisesAndLowersTheFloor)
{
    CaptureSink capture;

    setLogMinLevel(LogLevel::Debug);
    debug("now visible");
    EXPECT_EQ(capture.lines().size(), 1u);

    setLogMinLevel(LogLevel::Warn);
    debug("dropped");
    inform("dropped too");
    warn("still visible");
    const auto lines = capture.lines();
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[1].second, "still visible");
}

TEST(LoggingTest, SetSinkReturnsPreviousSink)
{
    std::vector<std::string> first, second;
    LogSink original = setLogSink(
        [&](LogLevel, const std::string &m) { first.push_back(m); });

    inform("to first");
    LogSink prev = setLogSink(
        [&](LogLevel, const std::string &m) { second.push_back(m); });
    inform("to second");

    // Restore the first sink from the returned handle.
    setLogSink(std::move(prev));
    inform("back to first");

    setLogSink(std::move(original));
    ASSERT_EQ(first.size(), 2u);
    EXPECT_EQ(first[0], "to first");
    EXPECT_EQ(first[1], "back to first");
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0], "to second");
}

TEST(LoggingTest, EmptySinkRestoresStdioDefault)
{
    {
        CaptureSink capture;
        inform("captured");
        EXPECT_EQ(capture.lines().size(), 1u);
    }
    // CaptureSink restored the default; this must not crash (and
    // goes to stdout, which gtest swallows).
    inform("back on stdout");
}

TEST(LoggingTest, ConcurrentLoggingAndReconfigurationIsSafe)
{
    // The TSan battery drives this: writers spam every level while
    // the main thread flips the floor and swaps sinks.
    CaptureSink capture;
    std::atomic<bool> stop{false};

    std::vector<std::thread> writers;
    writers.reserve(4);
    for (int w = 0; w < 4; ++w) {
        writers.emplace_back([&stop, w] {
            int i = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                const std::string msg =
                    "writer " + std::to_string(w) + " line " +
                    std::to_string(i++);
                debug(msg);
                inform(msg);
                warn(msg);
            }
        });
    }

    for (int k = 0; k < 200; ++k) {
        setLogMinLevel(k % 2 == 0 ? LogLevel::Debug
                                  : LogLevel::Warn);
        LogSink prev = setLogSink(
            [](LogLevel, const std::string &) {});
        setLogSink(std::move(prev));
        (void)logMinLevel();
    }
    stop.store(true);
    for (auto &t : writers)
        t.join();

    // No torn lines: every captured message is well-formed.
    for (const auto &[level, msg] : capture.lines()) {
        (void)level;
        EXPECT_EQ(msg.rfind("writer ", 0), 0u);
    }
}
