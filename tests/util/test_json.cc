#include "util/json.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "util/rng.hh"

using namespace dronedse;

TEST(Json, EscapeAndQuote)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonQuote("plain"), "\"plain\"");
    EXPECT_EQ(jsonQuote("a\"b\\c"), "\"a\\\"b\\\\c\"");
    EXPECT_EQ(jsonQuote(std::string("tab\there\nnl")),
              "\"tab\\there\\nnl\"");
}

TEST(Json, NumberFormatting)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(1.5), "1.5");
    EXPECT_EQ(jsonNumber(2.5, 6), "2.5");
    // Non-finite values have no JSON spelling.
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN()),
              "null");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
}

TEST(Json, ParseScalars)
{
    EXPECT_TRUE(parseJson("null")->isNull());
    EXPECT_EQ(parseJson("true")->asBool(), true);
    EXPECT_EQ(parseJson("false")->asBool(), false);
    EXPECT_DOUBLE_EQ(parseJson("-12.75e1")->asNumber(), -127.5);
    EXPECT_EQ(parseJson("\"hi\"")->asString(), "hi");
}

TEST(Json, ParseContainers)
{
    const auto doc =
        parseJson("{\"a\": [1, 2, 3], \"b\": {\"c\": \"d\"}}");
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->isObject());
    const JsonValue *a = doc->find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->items().size(), 3u);
    EXPECT_DOUBLE_EQ(a->items()[1].asNumber(), 2.0);
    const JsonValue *b = doc->find("b");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->find("c")->asString(), "d");
    EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(Json, ObjectsPreserveMemberOrder)
{
    const auto doc = parseJson("{\"z\": 1, \"a\": 2, \"m\": 3}");
    ASSERT_TRUE(doc.has_value());
    const auto &members = doc->members();
    ASSERT_EQ(members.size(), 3u);
    EXPECT_EQ(members[0].first, "z");
    EXPECT_EQ(members[1].first, "a");
    EXPECT_EQ(members[2].first, "m");
}

TEST(Json, UnicodeEscapes)
{
    const auto doc = parseJson("\"\\u0041\\u00e9\\ud83d\\ude00\"");
    ASSERT_TRUE(doc.has_value());
    // A, e-acute (2 UTF-8 bytes), grinning-face (4 bytes).
    EXPECT_EQ(doc->asString(),
              std::string("A\xc3\xa9\xf0\x9f\x98\x80"));
}

TEST(Json, RejectsMalformedDocuments)
{
    const std::vector<std::string> bad = {
        "",
        "{",
        "[1, 2",
        "{\"a\": }",
        "{\"a\" 1}",
        "tru",
        "01",
        "1.",
        "+1",
        "NaN",
        "Infinity",
        "-Infinity",
        "\"unterminated",
        "\"bad \\x escape\"",
        "\"\\ud800\"", // lone high surrogate
        "{\"a\": 1} trailing",
        "{\"a\": 1,}",
        "[1,]",
        "'single'",
        "\"raw\tcontrol\"",
    };
    for (const std::string &text : bad) {
        std::string error;
        EXPECT_FALSE(parseJson(text, &error).has_value())
            << "accepted: " << text;
        EXPECT_FALSE(error.empty()) << "no diagnostic for: " << text;
    }
}

TEST(Json, RejectsOverDeepNesting)
{
    std::string deep;
    for (int i = 0; i < 200; ++i)
        deep += '[';
    for (int i = 0; i < 200; ++i)
        deep += ']';
    EXPECT_FALSE(parseJson(deep).has_value());
}

TEST(Json, DumpParseDumpFixedPoint)
{
    const std::vector<std::string> canonical = {
        "null",
        "true",
        "[1, 2.5, \"three\"]",
        "{\"a\": [], \"b\": {}, \"c\": \"\\\"quoted\\\"\"}",
    };
    for (const std::string &text : canonical) {
        const auto doc = parseJson(text);
        ASSERT_TRUE(doc.has_value()) << text;
        EXPECT_EQ(doc->dump(), text);
    }
}

namespace {

JsonValue
randomValue(Rng &rng, int depth)
{
    const int kind = depth >= 4 ? rng.uniformInt(0, 3)
                                : rng.uniformInt(0, 5);
    switch (kind) {
    case 0: return JsonValue();
    case 1: return JsonValue::boolean(rng.uniform() < 0.5);
    case 2:
        return JsonValue::number(
            std::round(rng.uniform(-1e6, 1e6) * 1e3) / 1e3);
    case 3: {
        std::string s;
        const int len = rng.uniformInt(0, 12);
        for (int i = 0; i < len; ++i)
            s += static_cast<char>(rng.uniformInt(32, 126));
        return JsonValue::string(std::move(s));
    }
    case 4: {
        std::vector<JsonValue> items;
        const int len = rng.uniformInt(0, 4);
        for (int i = 0; i < len; ++i)
            items.push_back(randomValue(rng, depth + 1));
        return JsonValue::array(std::move(items));
    }
    default: {
        std::vector<JsonValue::Member> members;
        const int len = rng.uniformInt(0, 4);
        for (int i = 0; i < len; ++i)
            members.emplace_back("k" + std::to_string(i),
                                 randomValue(rng, depth + 1));
        return JsonValue::object(std::move(members));
    }
    }
}

} // namespace

TEST(Json, FuzzRoundTrip)
{
    // Seeded, so failures reproduce: dump -> parse -> dump must be a
    // byte-identical fixed point for arbitrary generated values.
    Rng rng(20260805);
    for (int trial = 0; trial < 500; ++trial) {
        const JsonValue value = randomValue(rng, 0);
        const std::string once = value.dump();
        std::string error;
        const auto reparsed = parseJson(once, &error);
        ASSERT_TRUE(reparsed.has_value())
            << "trial " << trial << ": " << error << "\n"
            << once;
        EXPECT_EQ(reparsed->dump(), once) << "trial " << trial;
    }
}
