#include <gtest/gtest.h>

#include <cmath>

#include "util/matrix.hh"
#include "util/rng.hh"

namespace dronedse {
namespace {

TEST(Matrix, IdentityMultiplication)
{
    Matrix a(3, 3);
    a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
    a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
    a(2, 0) = 7; a(2, 1) = 8; a(2, 2) = 10;

    const Matrix i = Matrix::identity(3);
    const Matrix prod = a * i;
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(prod(r, c), a(r, c));
}

TEST(Matrix, TransposeInvolution)
{
    Matrix a(2, 3);
    a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
    a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
    const Matrix t = a.transpose();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
    const Matrix tt = t.transpose();
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(tt(r, c), a(r, c));
}

TEST(Matrix, SolveSimpleSystem)
{
    Matrix a(2, 2);
    a(0, 0) = 2; a(0, 1) = 1;
    a(1, 0) = 1; a(1, 1) = 3;
    std::vector<double> x;
    ASSERT_TRUE(a.solve({5.0, 10.0}, x));
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Matrix, SolveDetectsSingular)
{
    Matrix a(2, 2);
    a(0, 0) = 1; a(0, 1) = 2;
    a(1, 0) = 2; a(1, 1) = 4;
    std::vector<double> x;
    EXPECT_FALSE(a.solve({1.0, 2.0}, x));
}

TEST(Matrix, SolveNeedsPivoting)
{
    // Zero on the initial pivot position forces a row swap.
    Matrix a(2, 2);
    a(0, 0) = 0; a(0, 1) = 1;
    a(1, 0) = 1; a(1, 1) = 0;
    std::vector<double> x;
    ASSERT_TRUE(a.solve({2.0, 3.0}, x));
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Matrix, CholeskySolvesSpdSystem)
{
    // A = B^T B + eps*I is SPD for any B.
    Rng rng(7);
    const std::size_t n = 8;
    Matrix b(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            b(r, c) = rng.gaussian();
    Matrix a = b.transpose() * b;
    a.addToDiagonal(0.5);

    std::vector<double> truth(n);
    for (std::size_t i = 0; i < n; ++i)
        truth[i] = rng.uniform(-2.0, 2.0);

    // rhs = A * truth.
    std::vector<double> rhs(n, 0.0);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            rhs[r] += a(r, c) * truth[c];

    std::vector<double> x;
    ASSERT_TRUE(a.solveCholesky(rhs, x));
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[i], truth[i], 1e-9);
}

TEST(Matrix, CholeskyRejectsIndefinite)
{
    Matrix a(2, 2);
    a(0, 0) = 1; a(0, 1) = 0;
    a(1, 0) = 0; a(1, 1) = -1;
    std::vector<double> x;
    EXPECT_FALSE(a.solveCholesky({1.0, 1.0}, x));
}

TEST(Matrix, AddToDiagonal)
{
    Matrix a(3, 3);
    a.addToDiagonal(2.5);
    EXPECT_DOUBLE_EQ(a(0, 0), 2.5);
    EXPECT_DOUBLE_EQ(a(1, 1), 2.5);
    EXPECT_DOUBLE_EQ(a(2, 2), 2.5);
    EXPECT_DOUBLE_EQ(a(0, 1), 0.0);
}

TEST(Matrix, GaussianAndCholeskyAgree)
{
    Rng rng(11);
    const std::size_t n = 12;
    Matrix b(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            b(r, c) = rng.gaussian();
    Matrix a = b.transpose() * b;
    a.addToDiagonal(1.0);

    std::vector<double> rhs(n);
    for (auto &v : rhs)
        v = rng.uniform(-1.0, 1.0);

    std::vector<double> x1, x2;
    ASSERT_TRUE(a.solve(rhs, x1));
    ASSERT_TRUE(a.solveCholesky(rhs, x2));
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x1[i], x2[i], 1e-9);
}

} // namespace
} // namespace dronedse
