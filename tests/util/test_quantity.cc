/**
 * @file
 * Unit-algebra tests for Quantity: the compile-time identities the
 * design-space model leans on, plus runtime conversion round-trips.
 * The negative space (Grams + Watts must NOT compile) is covered by
 * the try_compile test in tests/compile_fail/.
 */

#include <gtest/gtest.h>

#include <type_traits>

#include "util/quantity.hh"
#include "util/units.hh"

namespace dronedse {
namespace {

using namespace unit_literals;

// -- Compile-time: type identities ---------------------------------

// Same dimension, different scale: distinct types, so + is rejected
// until one side converts.
static_assert(!std::is_same_v<Quantity<Grams>, Quantity<Kilograms>>);
static_assert(!std::is_same_v<Quantity<Newtons>, Quantity<GramsForce>>);

// The electrical chain: V * A = W, W * h = Wh, Wh / W = h.
static_assert(std::is_same_v<decltype(12.0_v * 3.0_a), Quantity<Watts>>);
static_assert(std::is_same_v<decltype(5.0_w * Quantity<Hours>(2.0)),
                             Quantity<WattHours>>);
static_assert(std::is_same_v<decltype(30.0_wh / 10.0_w),
                             Quantity<Hours>>);

// The battery-energy trap: mAh * V is *milli*watt-hours.  Landing on
// Wh directly would silently reintroduce the paper models' classic
// 1000x capacity bug.
static_assert(std::is_same_v<decltype(3000.0_mah * 11.1_v),
                             Quantity<MilliwattHours>>);
static_assert(!std::is_same_v<decltype(3000.0_mah * 11.1_v),
                              Quantity<WattHours>>);

// Same-dimension ratios collapse to plain double.
static_assert(std::is_same_v<decltype(1.0_min / 1.0_s), double>);
static_assert(std::is_same_v<decltype(1.0_g / 1.0_kg), double>);
static_assert(std::is_same_v<decltype(1.0_wh / 1.0_wh), double>);

// -- Compile-time: constexpr arithmetic ----------------------------

static_assert((2.0_g + 3.0_g).value() == 5.0);
static_assert((10.0_w - 4.0_w).value() == 6.0);
static_assert((3.0_v * 2.0).value() == 6.0);
static_assert((2.0 * 3.0_v).value() == 6.0);
static_assert((8.0_a / 2.0).value() == 4.0);
static_assert((-(1.5_n)).value() == -1.5);
static_assert(2.0_min / 30.0_s == 4.0);
static_assert(1.0_kg / 1.0_g == 1000.0);

// Comparison is defaulted <=> on the stored double.
static_assert(2.0_g < 3.0_g);
static_assert(Quantity<Minutes>(5.0) == Quantity<Minutes>(5.0));

// -- Runtime: conversion round-trips -------------------------------

TEST(Quantity, MassConversionsRoundTrip)
{
    EXPECT_DOUBLE_EQ((1500.0_g).in<Kilograms>(), 1.5);
    EXPECT_DOUBLE_EQ((1.5_kg).in<Grams>(), 1500.0);
    EXPECT_DOUBLE_EQ((0.75_kg).to<Grams>().to<Kilograms>().value(),
                     0.75);
}

TEST(Quantity, LengthConversionsExact)
{
    EXPECT_DOUBLE_EQ((450.0_mm).in<Meters>(), 0.45);
    // 1 in = 25.4 mm exactly.
    EXPECT_DOUBLE_EQ((10.0_in).in<Millimeters>(), 254.0);
    EXPECT_DOUBLE_EQ((25.4_mm).in<Inches>(), 1.0);
}

TEST(Quantity, TimeConversions)
{
    EXPECT_DOUBLE_EQ((90.0_s).in<Minutes>(), 1.5);
    EXPECT_DOUBLE_EQ((1.5_min).in<Seconds>(), 90.0);
    EXPECT_DOUBLE_EQ(Quantity<Hours>(0.5).in<Minutes>(), 30.0);
    // 2400 rpm = 40 rev/s.
    EXPECT_DOUBLE_EQ((2400.0_rpm).in<RevPerSec>(), 40.0);
}

TEST(Quantity, ForceConversions)
{
    // 1 kgf = 9.80665 N (standard gravity, exact by definition).
    EXPECT_DOUBLE_EQ((1000.0_gf).in<Newtons>(), 9.80665);
    EXPECT_NEAR((9.80665_n).in<GramsForce>(), 1000.0, 1e-9);
}

TEST(Quantity, EnergyChainMatchesHandCalculation)
{
    // 3S 3000 mAh at 11.1 V nominal: 33.3 Wh.
    const auto mwh = 3000.0_mah * 11.1_v;
    EXPECT_NEAR(mwh.to<WattHours>().value(), 33.3, 1e-9);
    // Discharging at 100 W: 0.333 h = ~20 min.
    const Quantity<Hours> t = mwh.to<WattHours>() / 100.0_w;
    EXPECT_NEAR(t.to<Minutes>().value(), 19.98, 1e-9);
}

TEST(Quantity, PowerProductIsExactWatts)
{
    const Quantity<Watts> p = 11.1_v * 20.0_a;
    EXPECT_DOUBLE_EQ(p.value(), 222.0);
}

TEST(Quantity, WeightForceBridge)
{
    // X grams of mass weighs X grams-force: the identity Equation 2
    // relies on ("thrust = TWR * weight").
    const Quantity<GramsForce> f = weightForce(1061.0_g);
    EXPECT_DOUBLE_EQ(f.value(), 1061.0);
    EXPECT_DOUBLE_EQ(liftableMass(f).value(), 1061.0);
    // Round-trip through Newtons agrees with m * g0.
    EXPECT_NEAR(f.in<Newtons>(), 1.061 * 9.80665, 1e-12);
}

TEST(Quantity, CompoundAssignmentAndAccumulation)
{
    Quantity<Grams> total{};
    for (double w : {272.0, 248.0, 220.0, 112.0})
        total += Quantity<Grams>(w);
    EXPECT_DOUBLE_EQ(total.value(), 852.0);
    total -= 52.0_g;
    total *= 2.0;
    EXPECT_DOUBLE_EQ(total.value(), 1600.0);
    total /= 4.0;
    EXPECT_DOUBLE_EQ(total.value(), 400.0);
}

TEST(Quantity, UnitsHelpersAreTyped)
{
    // lipoPackVoltage: 3.7 V per cell nominal.
    EXPECT_DOUBLE_EQ(lipoPackVoltage(3).value(), 11.1);
    EXPECT_DOUBLE_EQ(lipoPackVoltage(6).value(), 22.2);
    // gramsToKg / kg round trip.
    EXPECT_DOUBLE_EQ(gramsToKg(Quantity<Grams>(850.0)).value(), 0.85);
}

} // namespace
} // namespace dronedse
