#include <gtest/gtest.h>

#include "util/vec3.hh"

namespace dronedse {
namespace {

TEST(Vec3, DefaultIsZero)
{
    Vec3 v;
    EXPECT_EQ(v.x, 0.0);
    EXPECT_EQ(v.y, 0.0);
    EXPECT_EQ(v.z, 0.0);
    EXPECT_EQ(v.norm(), 0.0);
}

TEST(Vec3, Arithmetic)
{
    const Vec3 a{1, 2, 3}, b{4, 5, 6};
    const Vec3 sum = a + b;
    EXPECT_EQ(sum.x, 5.0);
    EXPECT_EQ(sum.y, 7.0);
    EXPECT_EQ(sum.z, 9.0);

    const Vec3 diff = b - a;
    EXPECT_EQ(diff.x, 3.0);
    EXPECT_EQ(diff.y, 3.0);
    EXPECT_EQ(diff.z, 3.0);

    const Vec3 scaled = a * 2.0;
    EXPECT_EQ(scaled.z, 6.0);
    const Vec3 scaled2 = 2.0 * a;
    EXPECT_EQ(scaled2.z, 6.0);
    EXPECT_EQ((a / 2.0).x, 0.5);
}

TEST(Vec3, CompoundAssignment)
{
    Vec3 v{1, 1, 1};
    v += Vec3{1, 2, 3};
    EXPECT_EQ(v.y, 3.0);
    v -= Vec3{0, 1, 0};
    EXPECT_EQ(v.y, 2.0);
    v *= 3.0;
    EXPECT_EQ(v.x, 6.0);
}

TEST(Vec3, DotAndCross)
{
    const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
    EXPECT_EQ(x.dot(y), 0.0);
    EXPECT_EQ(x.dot(x), 1.0);

    const Vec3 c = x.cross(y);
    EXPECT_EQ(c.x, z.x);
    EXPECT_EQ(c.y, z.y);
    EXPECT_EQ(c.z, z.z);

    // Anti-commutativity.
    const Vec3 c2 = y.cross(x);
    EXPECT_EQ(c2.z, -1.0);
}

TEST(Vec3, NormAndNormalize)
{
    const Vec3 v{3, 4, 0};
    EXPECT_DOUBLE_EQ(v.norm(), 5.0);
    EXPECT_DOUBLE_EQ(v.squaredNorm(), 25.0);

    const Vec3 n = v.normalized();
    EXPECT_DOUBLE_EQ(n.norm(), 1.0);
    EXPECT_DOUBLE_EQ(n.x, 0.6);

    // Zero vector stays zero instead of producing NaN.
    const Vec3 zn = Vec3{}.normalized();
    EXPECT_EQ(zn.norm(), 0.0);
}

TEST(Vec3, CrossIsOrthogonal)
{
    const Vec3 a{1.5, -2.0, 0.7}, b{-0.3, 4.0, 2.2};
    const Vec3 c = a.cross(b);
    EXPECT_NEAR(c.dot(a), 0.0, 1e-12);
    EXPECT_NEAR(c.dot(b), 0.0, 1e-12);
}

} // namespace
} // namespace dronedse
