/**
 * @file
 * Property battery for `util/ecdf`: every query must agree with a
 * brute-force sorted-vector oracle over seeded sample clouds, the
 * quantile/cdf pair must be monotone and mutually consistent, the
 * answers must be invariant under sample permutation, and the edge
 * cases (empty, single sample, ties, non-finite input) must be
 * pinned.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/ecdf.hh"
#include "util/rng.hh"

using dronedse::Ecdf;
using dronedse::Rng;

namespace {

/** Brute-force oracle: count over the raw vector. */
double
oracleProbAtLeast(const std::vector<double> &xs, double t)
{
    std::size_t count = 0;
    for (double x : xs)
        count += x >= t ? 1 : 0;
    return static_cast<double>(count) /
           static_cast<double>(xs.size());
}

double
oracleCdf(const std::vector<double> &xs, double x)
{
    std::size_t count = 0;
    for (double v : xs)
        count += v <= x ? 1 : 0;
    return static_cast<double>(count) /
           static_cast<double>(xs.size());
}

/** Oracle quantile: smallest sample whose oracle cdf reaches q. */
double
oracleQuantile(std::vector<double> xs, double q)
{
    std::sort(xs.begin(), xs.end());
    for (double x : xs) {
        if (oracleCdf(xs, x) >= q)
            return x;
    }
    return xs.back();
}

std::vector<double>
seededCloud(std::uint64_t seed, std::size_t n)
{
    Rng rng(seed);
    std::vector<double> xs;
    xs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        // Mix of scales, negatives, and deliberate ties.
        double x = rng.gaussian(30.0, 20.0);
        if (rng.bernoulli(0.2))
            x = std::floor(x); // force tie groups
        xs.push_back(x);
    }
    return xs;
}

} // namespace

TEST(EcdfTest, AgreesWithOracleOnSeededClouds)
{
    for (std::uint64_t seed : {11u, 17u, 23u, 91u}) {
        const auto xs = seededCloud(seed, 257);
        const Ecdf ecdf(xs);
        Rng rng(seed ^ 0xabcdefULL);
        for (int i = 0; i < 200; ++i) {
            const double t = rng.uniform(-40.0, 110.0);
            EXPECT_DOUBLE_EQ(ecdf.probAtLeast(t),
                             oracleProbAtLeast(xs, t))
                << "seed " << seed << " t " << t;
            EXPECT_DOUBLE_EQ(ecdf.cdf(t), oracleCdf(xs, t))
                << "seed " << seed << " t " << t;
        }
        for (int i = 0; i < 200; ++i) {
            const double q = rng.uniform(0.0, 1.0);
            EXPECT_DOUBLE_EQ(ecdf.quantile(q), oracleQuantile(xs, q))
                << "seed " << seed << " q " << q;
        }
        // Exact sample points are where off-by-one bugs live.
        for (double x : xs) {
            EXPECT_DOUBLE_EQ(ecdf.cdf(x), oracleCdf(xs, x));
            EXPECT_DOUBLE_EQ(ecdf.probAtLeast(x),
                             oracleProbAtLeast(xs, x));
        }
    }
}

TEST(EcdfTest, QuantileAndCdfAreMonotone)
{
    const auto xs = seededCloud(41, 199);
    const Ecdf ecdf(xs);
    double prev_quantile = ecdf.quantile(0.0);
    double prev_cdf = 0.0;
    double prev_at_least = 1.0;
    for (int i = 0; i <= 1000; ++i) {
        const double q = static_cast<double>(i) / 1000.0;
        const double v = ecdf.quantile(q);
        EXPECT_GE(v, prev_quantile) << "q " << q;
        prev_quantile = v;

        const double x = -50.0 + 0.16 * i;
        const double c = ecdf.cdf(x);
        const double a = ecdf.probAtLeast(x);
        EXPECT_GE(c, prev_cdf) << "x " << x;
        EXPECT_LE(a, prev_at_least) << "x " << x;
        prev_cdf = c;
        prev_at_least = a;
    }
}

TEST(EcdfTest, QuantileInvertsTheCdf)
{
    // For every sample x: cdf(quantile(cdf(x))) == cdf(x), and the
    // quantile at that level is the smallest sample reaching it.
    const auto xs = seededCloud(7, 128);
    const Ecdf ecdf(xs);
    for (double x : xs) {
        const double q = ecdf.cdf(x);
        const double v = ecdf.quantile(q);
        EXPECT_DOUBLE_EQ(ecdf.cdf(v), q);
        EXPECT_LE(v, x);
    }
}

TEST(EcdfTest, PermutationAndInsertionOrderInvariance)
{
    const auto xs = seededCloud(59, 223);
    const Ecdf bulk(xs);

    // Reverse order, incrementally inserted.
    std::vector<double> reversed(xs.rbegin(), xs.rend());
    Ecdf incremental;
    for (double x : reversed)
        incremental.add(x);

    // Seeded shuffle (Fisher-Yates on top of util::Rng).
    std::vector<double> shuffled = xs;
    Rng rng(1234);
    for (std::size_t i = shuffled.size(); i > 1; --i)
        std::swap(shuffled[i - 1],
                  shuffled[static_cast<std::size_t>(
                      rng.uniformInt(0, static_cast<std::int64_t>(i) -
                                            1))]);
    const Ecdf permuted(shuffled);

    ASSERT_EQ(bulk.samples(), incremental.samples());
    ASSERT_EQ(bulk.samples(), permuted.samples());
    EXPECT_EQ(bulk.toCsvRows("x"), incremental.toCsvRows("x"));
    EXPECT_EQ(bulk.toCsvRows("x"), permuted.toCsvRows("x"));
}

TEST(EcdfTest, SingleSample)
{
    Ecdf ecdf;
    ecdf.add(4.5);
    EXPECT_EQ(ecdf.size(), 1u);
    EXPECT_DOUBLE_EQ(ecdf.min(), 4.5);
    EXPECT_DOUBLE_EQ(ecdf.max(), 4.5);
    EXPECT_DOUBLE_EQ(ecdf.mean(), 4.5);
    EXPECT_DOUBLE_EQ(ecdf.cdf(4.4), 0.0);
    EXPECT_DOUBLE_EQ(ecdf.cdf(4.5), 1.0);
    EXPECT_DOUBLE_EQ(ecdf.probAtLeast(4.5), 1.0);
    EXPECT_DOUBLE_EQ(ecdf.probAtLeast(4.6), 0.0);
    for (double q : {0.0, 0.01, 0.5, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(ecdf.quantile(q), 4.5) << q;
}

TEST(EcdfTest, TiesAreExact)
{
    const Ecdf ecdf(std::vector<double>{2.0, 2.0, 2.0, 5.0, 5.0});
    EXPECT_DOUBLE_EQ(ecdf.cdf(2.0), 0.6);
    EXPECT_DOUBLE_EQ(ecdf.cdf(1.9999), 0.0);
    EXPECT_DOUBLE_EQ(ecdf.probAtLeast(2.0), 1.0);
    EXPECT_DOUBLE_EQ(ecdf.probAtLeast(2.0000001), 0.4);
    EXPECT_DOUBLE_EQ(ecdf.probAtLeast(5.0), 0.4);
    EXPECT_DOUBLE_EQ(ecdf.quantile(0.2), 2.0);
    EXPECT_DOUBLE_EQ(ecdf.quantile(0.6), 2.0);
    EXPECT_DOUBLE_EQ(ecdf.quantile(0.61), 5.0);
    EXPECT_DOUBLE_EQ(ecdf.quantile(1.0), 5.0);
}

TEST(EcdfTest, EmptyAndNonFiniteAreFatal)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    Ecdf empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_DEATH(empty.quantile(0.5), "empty");
    EXPECT_DEATH(empty.cdf(0.0), "empty");
    EXPECT_DEATH(empty.probAtLeast(0.0), "empty");
    EXPECT_DEATH(empty.min(), "empty");

    Ecdf ecdf;
    EXPECT_DEATH(
        ecdf.add(std::numeric_limits<double>::infinity()), "finite");
    EXPECT_DEATH(
        ecdf.add(-std::numeric_limits<double>::infinity()), "finite");
    EXPECT_DEATH(ecdf.add(std::nan("")), "finite");
    EXPECT_DEATH(Ecdf(std::vector<double>{
                     1.0, std::numeric_limits<double>::quiet_NaN()}),
                 "finite");

    ecdf.add(1.0);
    EXPECT_DEATH(ecdf.quantile(1.5), "\\[0, 1\\]");
    EXPECT_DEATH(ecdf.quantile(-0.1), "\\[0, 1\\]");
}
