#include <gtest/gtest.h>

#include <cmath>

#include "util/quaternion.hh"

namespace dronedse {
namespace {

TEST(Quaternion, IdentityRotatesNothing)
{
    const Quaternion q;
    const Vec3 v{1, 2, 3};
    const Vec3 r = q.rotate(v);
    EXPECT_NEAR(r.x, 1.0, 1e-12);
    EXPECT_NEAR(r.y, 2.0, 1e-12);
    EXPECT_NEAR(r.z, 3.0, 1e-12);
}

TEST(Quaternion, AxisAngleQuarterTurn)
{
    const auto q = Quaternion::fromAxisAngle({0, 0, 1}, M_PI / 2);
    const Vec3 r = q.rotate({1, 0, 0});
    EXPECT_NEAR(r.x, 0.0, 1e-12);
    EXPECT_NEAR(r.y, 1.0, 1e-12);
    EXPECT_NEAR(r.z, 0.0, 1e-12);
}

TEST(Quaternion, EulerRoundTrip)
{
    const double roll = 0.3, pitch = -0.2, yaw = 1.1;
    const auto q = Quaternion::fromEuler(roll, pitch, yaw);
    EXPECT_NEAR(q.roll(), roll, 1e-10);
    EXPECT_NEAR(q.pitch(), pitch, 1e-10);
    EXPECT_NEAR(q.yaw(), yaw, 1e-10);
}

TEST(Quaternion, RotationMatrixMatchesRotate)
{
    const auto q = Quaternion::fromEuler(0.5, 0.1, -0.7);
    const Vec3 v{0.3, -1.2, 2.0};
    const Vec3 via_q = q.rotate(v);
    const Vec3 via_m = q.toRotationMatrix() * v;
    EXPECT_NEAR(via_q.x, via_m.x, 1e-12);
    EXPECT_NEAR(via_q.y, via_m.y, 1e-12);
    EXPECT_NEAR(via_q.z, via_m.z, 1e-12);
}

TEST(Quaternion, RotationMatrixIsOrthonormal)
{
    const auto q = Quaternion::fromEuler(0.9, -0.4, 0.2);
    const Mat3 r = q.toRotationMatrix();
    const Mat3 should_be_identity = r * r.transpose();
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            EXPECT_NEAR(should_be_identity(i, j), i == j ? 1.0 : 0.0,
                        1e-12);
    EXPECT_NEAR(r.determinant(), 1.0, 1e-12);
}

TEST(Quaternion, ComposedRotation)
{
    const auto qa = Quaternion::fromAxisAngle({0, 0, 1}, M_PI / 4);
    const auto qb = Quaternion::fromAxisAngle({0, 0, 1}, M_PI / 4);
    const auto q = qa * qb;
    const Vec3 r = q.rotate({1, 0, 0});
    EXPECT_NEAR(r.x, 0.0, 1e-12);
    EXPECT_NEAR(r.y, 1.0, 1e-12);
}

TEST(Quaternion, IntegrationApproximatesRotation)
{
    // Integrate a constant yaw rate for one second in small steps;
    // should be close to the closed-form rotation.
    Quaternion q;
    const Vec3 omega{0, 0, 1.0};
    const double dt = 1e-3;
    for (int i = 0; i < 1000; ++i)
        q = q.integrated(omega, dt);
    EXPECT_NEAR(q.yaw(), 1.0, 1e-3);
    EXPECT_NEAR(q.norm(), 1.0, 1e-12);
}

TEST(Quaternion, ConjugateInvertsRotation)
{
    const auto q = Quaternion::fromEuler(0.2, 0.3, 0.4);
    const Vec3 v{1, 2, 3};
    const Vec3 back = q.conjugate().rotate(q.rotate(v));
    EXPECT_NEAR(back.x, v.x, 1e-12);
    EXPECT_NEAR(back.y, v.y, 1e-12);
    EXPECT_NEAR(back.z, v.z, 1e-12);
}

} // namespace
} // namespace dronedse
