#include <gtest/gtest.h>

#include "core/presets.hh"
#include "dse/weight_closure.hh"

namespace dronedse {
namespace {

using namespace unit_literals;

TEST(Presets, Figure14BreakdownSumsTo1071)
{
    // The thirteen Figure 14 components sum to 1071 g.
    EXPECT_NEAR(ourDroneTotalWeightG().value(), 1071.0, 1e-9);
    const auto slices = ourDroneWeightBreakdown();
    EXPECT_EQ(slices.size(), 13u);
    double frac = 0.0;
    for (const auto &s : slices)
        frac += s.fraction;
    EXPECT_NEAR(frac, 1.0, 1e-9);
}

TEST(Presets, Figure14TopComponents)
{
    const auto slices = ourDroneWeightBreakdown();
    // Paper: frame 25 %, battery 23 %, motors 21 %, ESC 10 %.
    EXPECT_EQ(slices[0].component, "Frame");
    EXPECT_NEAR(slices[0].fraction, 0.25, 0.02);
    EXPECT_EQ(slices[1].component, "Battery");
    EXPECT_NEAR(slices[1].fraction, 0.23, 0.02);
    EXPECT_EQ(slices[2].component, "Motors");
    EXPECT_NEAR(slices[2].fraction, 0.21, 0.02);
    EXPECT_EQ(slices[3].component, "ESC");
    EXPECT_NEAR(slices[3].fraction, 0.10, 0.02);
}

TEST(Presets, OurDroneDesignCloses)
{
    const DesignResult res = solveDesign(ourDroneInputs());
    ASSERT_TRUE(res.feasible) << res.infeasibleReason;
    // Model total should land near the real 1071 g build.
    EXPECT_NEAR(res.totalWeightG.value(), 1071.0, 330.0);
    // Flight time in the paper's ~15 min ballpark.
    EXPECT_GT(res.flightTimeMin, 8.0_min);
    EXPECT_LT(res.flightTimeMin, 22.0_min);
}

TEST(Presets, RacerIsShortFlight)
{
    const DesignInputs in = racer220Inputs();
    EXPECT_EQ(in.escClass, EscClass::ShortFlight);
    EXPECT_EQ(in.twr, 4.0);
    const DesignResult res = solveDesign(in);
    ASSERT_TRUE(res.feasible);
    // Racing configs trade flight time for thrust headroom.
    EXPECT_LT(res.flightTimeMin, solveDesign(ourDroneInputs()).flightTimeMin);
}

TEST(Presets, MapperCarriesLidar)
{
    const DesignInputs in = mapper800Inputs();
    EXPECT_GT(in.sensorWeightG, 900.0_g);
    // Ultra Puck is self-powered: no draw from the main pack.
    EXPECT_EQ(in.sensorPowerW, 0.0_w);
    const DesignResult res = solveDesign(in);
    ASSERT_TRUE(res.feasible);
    EXPECT_GT(res.totalWeightG, 2500.0_g);
}

} // namespace
} // namespace dronedse
