#include <gtest/gtest.h>

#include "core/designer.hh"
#include "core/presets.hh"

namespace dronedse {
namespace {

using namespace unit_literals;

TEST(Designer, FluentBuilderSetsInputs)
{
    DroneDesigner d;
    d.wheelbase(450.0_mm)
        .battery(3, 4000.0_mah)
        .twr(2.5)
        .payload(100.0_g)
        .activity(FlightActivity::Maneuvering)
        .propeller(9.0_in);
    const DesignInputs &in = d.inputs();
    EXPECT_EQ(in.wheelbaseMm, 450.0_mm);
    EXPECT_EQ(in.cells, 3);
    EXPECT_EQ(in.capacityMah, 4000.0_mah);
    EXPECT_EQ(in.twr, 2.5);
    EXPECT_EQ(in.payloadG, 100.0_g);
    EXPECT_EQ(in.activity, FlightActivity::Maneuvering);
    EXPECT_EQ(in.propDiameterIn, 9.0_in);
}

TEST(Designer, SensorAccumulates)
{
    DroneDesigner d;
    d.sensor(findSensor("RunCam Night Eagle 2"))
        .sensor(findSensor("Ultra Puck"));
    EXPECT_NEAR(d.inputs().sensorWeightG.value(), 14.5 + 925.0, 1e-9);
    // LiDAR self-powered, camera draws 1 W.
    EXPECT_NEAR(d.inputs().sensorPowerW.value(), 1.0, 1e-9);
}

TEST(Designer, DesignMatchesSolveDesign)
{
    DroneDesigner d(ourDroneInputs());
    const DesignResult res = d.design();
    ASSERT_TRUE(res.feasible);
    EXPECT_GT(res.flightTimeMin.value(), 0.0);
}

TEST(Designer, ReportHasBothActivities)
{
    DroneDesigner d(ourDroneInputs());
    const DesignReport rep = d.report();
    ASSERT_TRUE(rep.result.feasible);
    // Hover fraction exceeds maneuver fraction (Figure 10d-f).
    EXPECT_GT(rep.computeFractionHover, rep.computeFractionManeuver);
    EXPECT_GT(rep.maxComputeGainMin.value(), 0.0);
    EXPECT_FALSE(rep.nearestCommercial.empty());
    // Our drone's nearest commercial point should be itself.
    EXPECT_EQ(rep.nearestCommercial, "Our Drone");
    EXPECT_LT(rep.nearestCommercialDeltaG, 350.0_g);
}

TEST(Designer, ReportStringMentionsKeyFields)
{
    DroneDesigner d(ourDroneInputs());
    const std::string s = d.report().str();
    EXPECT_NE(s.find("flight time"), std::string::npos);
    EXPECT_NE(s.find("compute share"), std::string::npos);
    EXPECT_NE(s.find("nearest commercial"), std::string::npos);
}

TEST(Designer, InfeasibleReportIsSafe)
{
    DroneDesigner d;
    d.wheelbase(450.0_mm).battery(3, -1.0_mah);
    const DesignReport rep = d.report();
    EXPECT_FALSE(rep.result.feasible);
    const std::string s = rep.str();
    EXPECT_NE(s.find("INFEASIBLE"), std::string::npos);
}

} // namespace
} // namespace dronedse
