/**
 * @file
 * Regression pins for the paper's 450 mm reference design
 * (Section 4, Figure 14).  These exist to catch unit-audit
 * regressions: a grams-vs-kilograms or Wh-vs-mWh slip anywhere in
 * the closure chain moves every number here by ~1000x (or ~9.8x for
 * a gf-vs-N slip), so the tolerances are deliberately tight.
 */

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "dse/weight_closure.hh"
#include "physics/lipo.hh"
#include "util/units.hh"

namespace dronedse {
namespace {

using namespace unit_literals;

TEST(ReferenceDesign, PublishedWeightBreakdownTotals1071Grams)
{
    // Figure 14's slices sum to 1071 g (the pie's published parts).
    EXPECT_DOUBLE_EQ(ourDroneTotalWeightG().value(), 1071.0);
}

TEST(ReferenceDesign, PackEnergyChainHasNoThousandXSlip)
{
    // 3S 3000 mAh at 11.1 V nominal is 33.3 Wh — not 33300 (a mAh
    // read as Ah) and not 0.0333 (a mWh read as Wh).
    const Quantity<WattHours> nominal =
        capacityToWattHours(3000.0_mah, lipoPackVoltage(3));
    EXPECT_DOUBLE_EQ(nominal.value(), 33.3);
    // Usable energy applies the 85 % drain limit and 95 % delivery
    // efficiency: 33.3 * 0.85 * 0.95.
    EXPECT_DOUBLE_EQ(usableEnergyWh(3000.0_mah, lipoPackVoltage(3)).value(),
                     26.88975);
}

TEST(ReferenceDesign, ClosurePinsFor450mmDrone)
{
    const DesignResult res = solveDesign(ourDroneInputs());
    ASSERT_TRUE(res.feasible);

    // The solved all-up weight sits near the published 1071 g
    // (the closure re-derives frame/motor/ESC weight from models, so
    // it does not land exactly on the pie chart).
    EXPECT_NEAR(res.totalWeightG.value(), 1117.56, 0.05);

    // Paper Section 5.2 works with "~140 W" total draw and ~15 min
    // hover for this drone; the model's operating point:
    EXPECT_NEAR(res.avgPowerW.value(), 142.44, 0.05);
    EXPECT_NEAR(res.flightTimeMin.value(), 11.33, 0.05);
    EXPECT_NEAR(res.usableEnergyWh.value(), 26.88975, 1e-6);
    EXPECT_NEAR(res.motorMaxCurrentA.value(), 10.15, 0.05);

    // Energy bookkeeping closes: t * P == E_usable (Equation 5).
    EXPECT_NEAR((res.flightTimeMin.to<Hours>() * res.avgPowerW)
                    .to<WattHours>()
                    .value(),
                res.usableEnergyWh.value(), 1e-6);
}

TEST(ReferenceDesign, ThrustUnitsUseGramsForceNotNewtons)
{
    const DesignResult res = solveDesign(ourDroneInputs());
    ASSERT_TRUE(res.feasible);
    // Hover thrust per motor is weight/4 in grams-force.  A gf/N mixup
    // would shift this by 9.8x.
    const Quantity<GramsForce> hover =
        weightForce(res.totalWeightG) / 4.0;
    EXPECT_NEAR(hover.value(), res.totalWeightG.value() / 4.0, 1e-9);
    // TWR 2.0 design: each motor's max thrust must cover 2x hover.
    EXPECT_GE(res.motor.maxThrust().value() + 1e-9,
              2.0 * hover.value() * 0.9);
}

} // namespace
} // namespace dronedse
