/**
 * @file
 * Fleet determinism battery (DESIGN.md §16).
 *
 * The fleet engine's contract: per-drone results depend only on
 * (fleetSeed, logical drone index, scenario) — never on thread
 * count, lane-block partition, or processing order.  This battery
 * pins that contract three ways:
 *
 *  1. Golden outputs at seed 17 for four composed catalog scenarios
 *     (generated once from a jobs=1 run, byte-compared forever).
 *  2. Byte-identity of the full ECDF CSV across jobs 1/2/8 and
 *     across repeat runs.
 *  3. Order-invariance: `runFleetPermuted` processes a shuffled
 *     flattened index space — lane blocks then group *different*
 *     drones — and must still produce byte-identical output.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "fault/fault.hh"
#include "fleet/fleet.hh"
#include "util/rng.hh"

namespace dronedse::fleet {
namespace {

/** FNV-1a, for pinning large CSV bodies without embedding them. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

/** The battery: four composed two-fault scenarios at seed 17. */
FleetSpec
batterySpec()
{
    const char *pairs[4][2] = {
        {"gps_outage_midway", "motor_derate_mild"},
        {"link_flap", "camera_blackout"},
        {"latency_spike", "motor_derate_deep"},
        {"contention_burst", "gps_outage_midway"},
    };
    FleetSpec spec;
    spec.mission = findMission("survey");
    for (const auto &p : pairs) {
        auto composed = fault::composeScenarios(
            fault::findScenario(p[0]), fault::findScenario(p[1]));
        EXPECT_TRUE(composed.ok());
        spec.scenarios.push_back({composed.scenario->name,
                                  *composed.scenario, EnvAxes{}});
    }
    spec.dronesPerScenario = 48;
    spec.fleetSeed = 17;
    return spec;
}

/**
 * Golden per-scenario summary at seed 17, generated from a jobs=1
 * run.  %.17g formatting makes equal doubles give equal text, so a
 * byte-level diff here is a bit-level diff of the results.
 */
const char *kGoldenSummary =
    "scenario,drones,survival_rate,crashed,landed_safe,"
    "survived_degraded,completed,q10_flight_s,q50_flight_s,"
    "q90_flight_s,p_flight_ge_60s,mean_energy_wh\n"
    "gps_outage_midway+motor_derate_mild,48,1,0,48,0,0,"
    "34.100000000000001,34.600000000000001,35.200000000000003,0,"
    "1.9182737028451176\n"
    "link_flap+camera_blackout,48,1,0,0,48,0,62.400000000000006,"
    "64.700000000000003,68.400000000000006,0.97916666666666663,"
    "3.6108533742087299\n"
    "latency_spike+motor_derate_deep,48,1,0,48,0,0,"
    "22.100000000000001,22.100000000000001,22.100000000000001,0,"
    "1.2078799201695081\n"
    "contention_burst+gps_outage_midway,48,1,0,48,0,0,"
    "34.100000000000001,34.600000000000001,35.200000000000003,0,"
    "1.9006890410669517\n";

/** FNV-1a of the full ECDF CSV (384 samples) of the same run. */
constexpr std::uint64_t kGoldenEcdfHash = 17354385297078338916ULL;

TEST(FleetDeterminism, GoldenBatteryPinnedAtSeed17)
{
    const FleetResult result = runFleet(batterySpec(), 1);
    EXPECT_EQ(fleetSummaryCsv(result), kGoldenSummary);
    EXPECT_EQ(fnv1a(fleetEcdfCsv(result)), kGoldenEcdfHash);
}

TEST(FleetDeterminism, ByteIdenticalAcrossJobs128)
{
    const FleetSpec spec = batterySpec();
    const std::string ecdf1 = fleetEcdfCsv(runFleet(spec, 1));
    const std::string ecdf2 = fleetEcdfCsv(runFleet(spec, 2));
    const std::string ecdf8 = fleetEcdfCsv(runFleet(spec, 8));
    EXPECT_EQ(ecdf1, ecdf2);
    EXPECT_EQ(ecdf1, ecdf8);
    EXPECT_EQ(fnv1a(ecdf1), kGoldenEcdfHash);
}

TEST(FleetDeterminism, RepeatRunsAreByteIdentical)
{
    const FleetSpec spec = batterySpec();
    const FleetResult a = runFleet(spec, 4);
    const FleetResult b = runFleet(spec, 4);
    EXPECT_EQ(fleetEcdfCsv(a), fleetEcdfCsv(b));
    EXPECT_EQ(fleetSummaryCsv(a), fleetSummaryCsv(b));
}

TEST(FleetDeterminism, DroneOrderPermutationIsInvariant)
{
    const FleetSpec spec = batterySpec();
    const std::string baseline = fleetEcdfCsv(runFleet(spec, 1));

    const std::size_t total =
        spec.scenarios.size() * spec.dronesPerScenario;
    std::vector<std::size_t> order(total);
    std::iota(order.begin(), order.end(), std::size_t{0});

    // Reversed order: every lane block groups a different drone
    // set than the identity order.
    std::reverse(order.begin(), order.end());
    EXPECT_EQ(fleetEcdfCsv(runFleetPermuted(spec, 3, order)),
              baseline);

    // Seeded Fisher-Yates shuffles, multi-threaded.
    Rng rng(123);
    for (int round = 0; round < 3; ++round) {
        for (std::size_t i = total - 1; i > 0; --i) {
            const auto j = static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<std::int64_t>(i)));
            std::swap(order[i], order[j]);
        }
        EXPECT_EQ(fleetEcdfCsv(runFleetPermuted(spec, 4, order)),
                  baseline)
            << "shuffle round " << round;
    }
}

TEST(FleetDeterminism, OddPopulationsDoNotDependOnLanePadding)
{
    // 13 drones/scenario: not a multiple of the lane width, so the
    // final block of each chunk runs partially filled and chunk
    // boundaries fall mid-block at some thread counts.
    FleetSpec spec = batterySpec();
    spec.dronesPerScenario = 13;
    const std::string ecdf1 = fleetEcdfCsv(runFleet(spec, 1));
    const std::string ecdf5 = fleetEcdfCsv(runFleet(spec, 5));
    EXPECT_EQ(ecdf1, ecdf5);
}

TEST(FleetDeterminism, SeedActuallyFeedsTheModel)
{
    // Guards against the goldens silently pinning a constant model:
    // a different fleet seed must change the byte stream.
    FleetSpec spec = batterySpec();
    spec.fleetSeed = 18;
    EXPECT_NE(fnv1a(fleetEcdfCsv(runFleet(spec, 1))),
              kGoldenEcdfHash);
}

TEST(FleetDeterminism, EnvAxesFeedTheModel)
{
    // Wind, payload, and battery age must each perturb results.
    const FleetSpec base = batterySpec();
    const std::string baseline =
        fleetEcdfCsv(runFleet(base, 1));

    FleetSpec windy = base;
    windy.scenarios[0].env.windMps = 8.0;
    EXPECT_NE(fleetEcdfCsv(runFleet(windy, 1)), baseline);

    FleetSpec heavy = base;
    heavy.scenarios[0].env.payloadG = 400.0;
    EXPECT_NE(fleetEcdfCsv(runFleet(heavy, 1)), baseline);

    // The battery must age enough to bite before the scenario's
    // GPS-denial landing (~34 s, ~1.9 Wh drawn): at 5 % health the
    // SOC floor trips mid-flight.
    FleetSpec aged = base;
    aged.scenarios[0].env.batteryAge = 0.05;
    EXPECT_NE(fleetEcdfCsv(runFleet(aged, 1)), baseline);
}

TEST(FleetDeterminism, InvalidSpecsAreFatal)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    FleetSpec empty = batterySpec();
    empty.scenarios.clear();
    EXPECT_DEATH(runFleet(empty, 1), "no scenarios");

    FleetSpec aged = batterySpec();
    aged.scenarios[0].env.batteryAge = 0.0;
    EXPECT_DEATH(runFleet(aged, 1), "battery age");

    FleetSpec bad_order = batterySpec();
    EXPECT_DEATH(runFleetPermuted(bad_order, 1, {0, 1, 2}),
                 "permutation");
}

} // namespace
} // namespace dronedse::fleet
