/**
 * @file
 * Fleet-vs-single-mission differential battery.
 *
 * A 1-drone fleet at FullStack fidelity must be *field-identical* to
 * calling `fault::runResilienceMission` directly with the derived
 * per-drone seed, for every scenario in the fault catalog, with the
 * policy on and off.  This proves the fleet harness — seed
 * derivation, scenario plumbing, report aggregation, slot indexing —
 * adds nothing and loses nothing on top of the single-mission path.
 */

#include <gtest/gtest.h>

#include "fault/fault.hh"
#include "fault/mission.hh"
#include "fleet/fleet.hh"

namespace dronedse::fleet {
namespace {

/** Exact-equality comparison of every mapped outcome field. */
void
expectOutcomeMatchesReport(const DroneOutcome &out,
                           const fault::MissionReport &report,
                           const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(out.tier, report.tier);
    EXPECT_EQ(out.crashed, report.crashed);
    EXPECT_EQ(out.landed, report.landed);
    EXPECT_EQ(out.missionComplete, report.missionComplete);
    EXPECT_EQ(out.waypointsReached, report.waypointsReached);
    EXPECT_EQ(out.flightTimeS, report.flightTimeS);
    EXPECT_EQ(out.energyWh, report.energyWh);
    EXPECT_EQ(out.maxTrackErrM, report.maxTrackErrM);
    EXPECT_EQ(out.maxEstErrM, report.maxEstErrM);
    EXPECT_EQ(out.worstMode, report.worstMode);
}

/** Full-report comparison, including the fields DroneOutcome drops. */
void
expectReportsEqual(const fault::MissionReport &a,
                   const fault::MissionReport &b)
{
    EXPECT_EQ(a.scenario, b.scenario);
    EXPECT_EQ(a.policyEnabled, b.policyEnabled);
    EXPECT_EQ(a.tier, b.tier);
    EXPECT_EQ(a.crashed, b.crashed);
    EXPECT_EQ(a.landed, b.landed);
    EXPECT_EQ(a.missionComplete, b.missionComplete);
    EXPECT_EQ(a.waypointsReached, b.waypointsReached);
    EXPECT_EQ(a.flightTimeS, b.flightTimeS);
    EXPECT_EQ(a.maxEstErrM, b.maxEstErrM);
    EXPECT_EQ(a.meanTrackErrM, b.meanTrackErrM);
    EXPECT_EQ(a.maxTrackErrM, b.maxTrackErrM);
    EXPECT_EQ(a.energyWh, b.energyWh);
    EXPECT_EQ(a.deadlineMisses, b.deadlineMisses);
    EXPECT_EQ(a.linkRetries, b.linkRetries);
    EXPECT_EQ(a.worstMode, b.worstMode);
    ASSERT_EQ(a.transitions.size(), b.transitions.size());
    for (std::size_t i = 0; i < a.transitions.size(); ++i) {
        EXPECT_EQ(a.transitions[i].t, b.transitions[i].t);
        EXPECT_EQ(a.transitions[i].from, b.transitions[i].from);
        EXPECT_EQ(a.transitions[i].to, b.transitions[i].to);
        EXPECT_EQ(a.transitions[i].reason, b.transitions[i].reason);
    }
}

FleetSpec
oneDroneSpec(const fault::FaultScenario &scenario, bool policy)
{
    FleetSpec spec;
    spec.mission = findMission("survey");
    spec.scenarios = wrapScenarios({scenario});
    spec.dronesPerScenario = 1;
    spec.fleetSeed = 17;
    spec.policyEnabled = policy;
    spec.fidelity = FleetFidelity::FullStack;
    return spec;
}

TEST(FleetDifferential, OneDroneFleetMatchesEveryCatalogScenario)
{
    for (const auto &scenario : fault::scenarioCatalog()) {
        const FleetSpec spec = oneDroneSpec(scenario, true);
        const FleetResult fleet = runFleet(spec, 1);
        ASSERT_EQ(fleet.scenarios.size(), 1u);
        ASSERT_EQ(fleet.scenarios[0].outcomes.size(), 1u);
        ASSERT_EQ(fleet.scenarios[0].fullReports.size(), 1u);

        fault::ResilienceConfig config;
        config.seed = deriveDroneSeed(17, 0);
        const fault::MissionReport direct =
            fault::runResilienceMission(scenario, config);

        expectOutcomeMatchesReport(fleet.scenarios[0].outcomes[0],
                                   direct, scenario.name);
        expectReportsEqual(fleet.scenarios[0].fullReports[0],
                           direct);
    }
}

TEST(FleetDifferential, PolicyOffAlsoMatches)
{
    for (const char *name :
         {"gps_outage_imu_noise", "motor_derate_deep",
          "kitchen_sink"}) {
        const fault::FaultScenario scenario =
            fault::findScenario(name);
        const FleetSpec spec = oneDroneSpec(scenario, false);
        const FleetResult fleet = runFleet(spec, 1);

        fault::ResilienceConfig config;
        config.policyEnabled = false;
        config.seed = deriveDroneSeed(17, 0);
        const fault::MissionReport direct =
            fault::runResilienceMission(scenario, config);

        expectOutcomeMatchesReport(fleet.scenarios[0].outcomes[0],
                                   direct, name);
        expectReportsEqual(fleet.scenarios[0].fullReports[0],
                           direct);
    }
}

TEST(FleetDifferential, MultiScenarioFleetSeedsByLogicalIndex)
{
    // The whole catalog, one drone each, flown with 4 workers: slot
    // s must equal a direct run at deriveDroneSeed(17, s) — the
    // logical flattened index, independent of which worker ran it.
    const auto &catalog = fault::scenarioCatalog();
    FleetSpec spec;
    spec.mission = findMission("survey");
    spec.scenarios = wrapScenarios(catalog);
    spec.dronesPerScenario = 1;
    spec.fleetSeed = 17;
    spec.fidelity = FleetFidelity::FullStack;
    const FleetResult fleet = runFleet(spec, 4);

    ASSERT_EQ(fleet.scenarios.size(), catalog.size());
    for (std::size_t s = 0; s < catalog.size(); ++s) {
        fault::ResilienceConfig config;
        config.seed = deriveDroneSeed(17, s);
        const fault::MissionReport direct =
            fault::runResilienceMission(catalog[s], config);
        expectOutcomeMatchesReport(fleet.scenarios[s].outcomes[0],
                                   direct, catalog[s].name);
    }
}

TEST(FleetDifferential, FullStackRejectsNonNominalEnvAxes)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    FleetSpec spec =
        oneDroneSpec(fault::findScenario("nominal"), true);
    spec.scenarios[0].env.windMps = 6.0;
    EXPECT_DEATH(runFleet(spec, 1), "nominal EnvAxes");
}

TEST(FleetDifferential, DeriveDroneSeedSpreadsAndIsStable)
{
    // Pinned values: the differential contract depends on this
    // exact derivation, so a silent change must fail loudly.
    EXPECT_EQ(deriveDroneSeed(17, 0),
              deriveDroneSeed(17, 0));
    EXPECT_NE(deriveDroneSeed(17, 0), deriveDroneSeed(17, 1));
    EXPECT_NE(deriveDroneSeed(17, 0), deriveDroneSeed(18, 0));
    // Adjacent indices must not collide over a broad range.
    for (std::uint64_t i = 1; i < 1000; ++i)
        EXPECT_NE(deriveDroneSeed(17, i),
                  deriveDroneSeed(17, i - 1));
}

} // namespace
} // namespace dronedse::fleet
