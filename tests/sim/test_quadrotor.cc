#include <gtest/gtest.h>

#include <cmath>

#include "dse/weight_closure.hh"
#include "sim/quadrotor.hh"
#include "util/units.hh"

namespace dronedse {
namespace {

using namespace unit_literals;

TEST(Quadrotor, HoverEquilibrium)
{
    Quadrotor quad;
    RigidBodyState s;
    s.position = {0, 0, 5};
    quad.setState(s);
    // Default command is exact hover thrust.
    for (int i = 0; i < 5000; ++i)
        quad.step(0.001);
    EXPECT_NEAR(quad.state().position.z, 5.0, 0.01);
    EXPECT_LT(quad.state().velocity.norm(), 0.01);
    EXPECT_LT(quad.state().angularVelocity.norm(), 1e-9);
}

TEST(Quadrotor, FreeFallAtZeroThrust)
{
    Quadrotor quad;
    RigidBodyState s;
    s.position = {0, 0, 100};
    quad.setState(s);
    quad.commandMotors({0, 0, 0, 0});
    for (int i = 0; i < 1000; ++i)
        quad.step(0.001);
    // After 1 s with motor lag spinning down, velocity approaches
    // -g * t (minus spin-down and drag losses).
    EXPECT_LT(quad.state().velocity.z, -7.0);
    EXPECT_GT(quad.state().velocity.z, -kGravity - 0.1);
}

TEST(Quadrotor, ExcessThrustClimbs)
{
    Quadrotor quad;
    RigidBodyState s;
    s.position = {0, 0, 2};
    quad.setState(s);
    const double hover = quad.params().hoverThrustPerMotorN();
    quad.commandMotors({1.2 * hover, 1.2 * hover, 1.2 * hover,
                        1.2 * hover});
    for (int i = 0; i < 1000; ++i)
        quad.step(0.001);
    EXPECT_GT(quad.state().position.z, 2.5);
    EXPECT_GT(quad.state().velocity.z, 0.5);
}

TEST(Quadrotor, DifferentialThrustRolls)
{
    Quadrotor quad;
    RigidBodyState s;
    s.position = {0, 0, 10};
    quad.setState(s);
    const double hover = quad.params().hoverThrustPerMotorN();
    // More thrust on the right side (m0 front-right, m3 back-right)
    // should roll left: positive tau_x is left-down... with our
    // layout, raising m1/m2 (left side) produces positive tau_x.
    quad.commandMotors({hover - 0.2, hover + 0.2, hover + 0.2,
                        hover - 0.2});
    for (int i = 0; i < 200; ++i)
        quad.step(0.001);
    EXPECT_GT(quad.state().angularVelocity.x, 0.1);
    EXPECT_NEAR(quad.state().angularVelocity.y, 0.0, 1e-6);
}

TEST(Quadrotor, ReactionTorqueYaws)
{
    Quadrotor quad;
    RigidBodyState s;
    s.position = {0, 0, 10};
    quad.setState(s);
    const double hover = quad.params().hoverThrustPerMotorN();
    // CW pair (m0, m1) stronger -> positive yaw reaction.
    quad.commandMotors({hover + 0.2, hover + 0.2, hover - 0.2,
                        hover - 0.2});
    for (int i = 0; i < 200; ++i)
        quad.step(0.001);
    EXPECT_GT(quad.state().angularVelocity.z, 0.01);
    EXPECT_NEAR(quad.state().angularVelocity.x, 0.0, 1e-6);
    EXPECT_NEAR(quad.state().angularVelocity.y, 0.0, 1e-6);
}

TEST(Quadrotor, MotorLagTimeConstant)
{
    Quadrotor quad;
    quad.commandMotors({0, 0, 0, 0});
    for (int i = 0; i < 2000; ++i)
        quad.step(0.001);
    // Step the command and check ~63 % at one time constant.
    const double target = 3.0;
    quad.commandMotors({target, target, target, target});
    const int tau_steps = static_cast<int>(
        quad.params().motorTimeConstantS * 1000.0);
    for (int i = 0; i < tau_steps; ++i)
        quad.step(0.001);
    EXPECT_NEAR(quad.motorThrusts()[0], 0.632 * target, 0.1);
}

TEST(Quadrotor, CommandsAreClamped)
{
    Quadrotor quad;
    quad.commandMotors({1e6, -5.0, 1.0, 1.0});
    quad.step(0.001);
    EXPECT_LE(quad.motorThrusts()[0],
              quad.params().maxThrustPerMotorN + 1e-9);
    EXPECT_GE(quad.motorThrusts()[1], 0.0);
}

TEST(Quadrotor, GroundPlaneStopsDescent)
{
    Quadrotor quad;
    RigidBodyState s;
    s.position = {0, 0, 0.2};
    quad.setState(s);
    quad.commandMotors({0, 0, 0, 0});
    for (int i = 0; i < 2000; ++i)
        quad.step(0.001);
    EXPECT_GE(quad.state().position.z, 0.0);
    EXPECT_GE(quad.state().velocity.z, -1e-9);
}

TEST(Quadrotor, DragDecaysHorizontalSpeed)
{
    Quadrotor quad;
    RigidBodyState s;
    s.position = {0, 0, 50};
    s.velocity = {8.0, 0.0, 0.0};
    quad.setState(s);
    for (int i = 0; i < 3000; ++i)
        quad.step(0.001);
    EXPECT_LT(quad.state().velocity.x, 6.0);
    EXPECT_GT(quad.state().velocity.x, 0.0);
}

TEST(Quadrotor, WindPushesTheVehicle)
{
    Quadrotor quad;
    RigidBodyState s;
    s.position = {0, 0, 50};
    quad.setState(s);
    for (int i = 0; i < 3000; ++i)
        quad.step(0.001, {5.0, 0.0, 0.0});
    EXPECT_GT(quad.state().velocity.x, 0.5);
    EXPECT_GT(quad.state().position.x, 0.5);
}

TEST(Quadrotor, UpsideDownDetection)
{
    Quadrotor quad;
    EXPECT_FALSE(quad.upsideDown());
    RigidBodyState s;
    s.attitude = Quaternion::fromEuler(M_PI, 0.0, 0.0);
    quad.setState(s);
    EXPECT_TRUE(quad.upsideDown());
}

TEST(Quadrotor, ElectricalPowerTracksThrust)
{
    Quadrotor quad;
    for (int i = 0; i < 500; ++i)
        quad.step(0.001);
    const double hover_power = quad.electricalPowerW();
    EXPECT_GT(hover_power, 30.0);
    EXPECT_LT(hover_power, 300.0);

    const double max_t = quad.params().maxThrustPerMotorN;
    quad.commandMotors({max_t, max_t, max_t, max_t});
    for (int i = 0; i < 500; ++i)
        quad.step(0.001);
    EXPECT_GT(quad.electricalPowerW(), 2.0 * hover_power);
}

TEST(Quadrotor, ParamsFromDesign)
{
    DesignInputs in;
    in.wheelbaseMm = 450.0_mm;
    in.cells = 3;
    in.capacityMah = 3000.0_mah;
    const DesignResult res = solveDesign(in);
    ASSERT_TRUE(res.feasible);
    const QuadrotorParams p = QuadrotorParams::fromDesign(res);
    EXPECT_NEAR(p.massKg, res.totalWeightG.in<Kilograms>(), 1e-9);
    EXPECT_NEAR(p.armLengthM, 0.225, 1e-9);
    // Max thrust per motor equals TWR * weight / 4.
    EXPECT_NEAR(p.maxThrustPerMotorN * 4.0,
                2.0 * p.massKg * kGravity, 0.05 * p.massKg * kGravity);
}

TEST(QuadrotorDeath, RejectsBadStep)
{
    Quadrotor quad;
    EXPECT_EXIT(quad.step(0.0), testing::ExitedWithCode(1), "");
}

TEST(QuadrotorTest, GroundContactRecordsPeakImpactSpeed)
{
    // Drop from 2 m with motors off: the clamp must record the
    // touchdown speed (v = sqrt(2 g h) ~ 6.3 m/s) and report ground
    // contact.
    Quadrotor quad;
    RigidBodyState s = quad.state();
    s.position.z = 2.0;
    quad.setState(s);
    quad.commandMotors({0.0, 0.0, 0.0, 0.0});
    EXPECT_FALSE(quad.onGround());
    EXPECT_DOUBLE_EQ(quad.maxImpactSpeed(), 0.0);

    for (int i = 0; i < 2000 && !quad.onGround(); ++i)
        quad.step(0.001);

    EXPECT_TRUE(quad.onGround());
    // Slightly below sqrt(2 g h) = 6.26 m/s: the hover thrust decays
    // through the motor lag during the first few tens of ms.
    EXPECT_GT(quad.maxImpactSpeed(), 4.5);
    EXPECT_LT(quad.maxImpactSpeed(), std::sqrt(2.0 * 9.81 * 2.0));
}

} // namespace
} // namespace dronedse
