#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/environment.hh"
#include "util/regression.hh"

namespace dronedse {
namespace {

TEST(Environment, NoGustsMeansSteadyWind)
{
    WindParams params;
    params.steady = {3.0, -1.0, 0.0};
    params.gustIntensity = 0.0;
    WindField wind(params);
    for (int i = 0; i < 100; ++i) {
        const Vec3 w = wind.sample(0.01);
        EXPECT_NEAR(w.x, 3.0, 1e-9);
        EXPECT_NEAR(w.y, -1.0, 1e-9);
        EXPECT_NEAR(w.z, 0.0, 1e-9);
    }
}

TEST(Environment, GustRmsMatchesIntensity)
{
    WindParams params;
    params.gustIntensity = 2.0;
    params.gustCorrelationS = 0.5;
    WindField wind(params, 3);

    std::vector<double> xs;
    // Skip the warm-up, then collect samples at spacing comparable
    // to the correlation time.
    for (int i = 0; i < 200; ++i)
        wind.sample(0.01);
    for (int i = 0; i < 20000; ++i)
        xs.push_back(wind.sample(0.01).x);
    const double rms = std::sqrt(
        mean([&] {
            std::vector<double> sq;
            sq.reserve(xs.size());
            for (double v : xs)
                sq.push_back(v * v);
            return sq;
        }()));
    EXPECT_NEAR(rms, 2.0, 0.5);
}

TEST(Environment, DeterministicPerSeed)
{
    WindParams params;
    params.gustIntensity = 1.0;
    WindField a(params, 42), b(params, 42);
    for (int i = 0; i < 100; ++i) {
        const Vec3 wa = a.sample(0.01);
        const Vec3 wb = b.sample(0.01);
        EXPECT_EQ(wa.x, wb.x);
        EXPECT_EQ(wa.y, wb.y);
    }
}

TEST(Environment, GustsDecorrelateOverTime)
{
    WindParams params;
    params.gustIntensity = 1.5;
    params.gustCorrelationS = 0.2;
    WindField wind(params, 9);
    for (int i = 0; i < 100; ++i)
        wind.sample(0.01);
    const double now = wind.current().x;
    // After many correlation times the gust should have moved.
    for (int i = 0; i < 2000; ++i)
        wind.sample(0.01);
    EXPECT_NE(now, wind.current().x);
}

TEST(EnvironmentDeath, RejectsBadCorrelation)
{
    WindParams params;
    params.gustCorrelationS = 0.0;
    EXPECT_EXIT(WindField{params}, testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace dronedse
