#include <gtest/gtest.h>

#include "uarch/branch_predictor.hh"
#include "uarch/cache.hh"
#include "uarch/tlb.hh"
#include "util/rng.hh"

namespace dronedse {
namespace {

TEST(Cache, HitsAfterFill)
{
    Cache cache({1024, 64, 2});
    EXPECT_FALSE(cache.access(0x1000)); // cold miss
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1008)); // same line
    EXPECT_EQ(cache.accesses(), 3u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, LruEviction)
{
    // 1 KiB, 64 B lines, 2-way: 8 sets.  Three lines mapping to the
    // same set exceed the ways; the least recently used is evicted.
    Cache cache({1024, 64, 2});
    const std::uint64_t stride = 64 * 8; // same set
    cache.access(0 * stride);
    cache.access(1 * stride);
    cache.access(0 * stride);            // refresh line 0
    EXPECT_FALSE(cache.access(2 * stride)); // evicts line 1
    EXPECT_TRUE(cache.access(0 * stride));
    EXPECT_FALSE(cache.access(1 * stride)); // was evicted
}

TEST(Cache, WorkingSetLargerThanCapacityThrashes)
{
    Cache cache({4096, 64, 4});
    // Stream 64 KiB repeatedly: everything misses after warmup.
    for (int pass = 0; pass < 3; ++pass)
        for (std::uint64_t a = 0; a < 64 * 1024; a += 64)
            cache.access(a);
    EXPECT_GT(cache.missRate(), 0.95);
}

TEST(Cache, WorkingSetWithinCapacityHits)
{
    Cache cache({64 * 1024, 64, 4});
    for (int pass = 0; pass < 4; ++pass)
        for (std::uint64_t a = 0; a < 16 * 1024; a += 64)
            cache.access(a);
    // Only the first pass misses.
    EXPECT_LT(cache.missRate(), 0.3);
}

TEST(Cache, FlushInvalidates)
{
    Cache cache({1024, 64, 2});
    cache.access(0x40);
    cache.flush();
    EXPECT_FALSE(cache.access(0x40));
}

TEST(CacheDeath, RejectsBadGeometry)
{
    EXPECT_EXIT(Cache({1000, 64, 2}), testing::ExitedWithCode(1), "");
    EXPECT_EXIT(Cache({1024, 60, 2}), testing::ExitedWithCode(1), "");
}

TEST(Tlb, CoversSmallFootprint)
{
    Tlb tlb({48, 4096});
    // 32 pages touched repeatedly fit in 48 entries.
    for (int pass = 0; pass < 4; ++pass)
        for (std::uint64_t p = 0; p < 32; ++p)
            tlb.access(p * 4096);
    EXPECT_EQ(tlb.misses(), 32u); // cold only
}

TEST(Tlb, ThrashesBeyondReach)
{
    Tlb tlb({16, 4096});
    for (int pass = 0; pass < 3; ++pass)
        for (std::uint64_t p = 0; p < 64; ++p)
            tlb.access(p * 4096);
    EXPECT_GT(tlb.missRate(), 0.9);
}

TEST(Tlb, FlushForcesRefill)
{
    Tlb tlb({48, 4096});
    tlb.access(0x5000);
    EXPECT_TRUE(tlb.access(0x5000));
    tlb.flush();
    EXPECT_FALSE(tlb.access(0x5000));
}

TEST(BranchPredictor, LearnsLoopPattern)
{
    BranchPredictor bp;
    // Taken 15 times, not-taken once: a classic loop back edge.
    long correct = 0, total = 0;
    for (int iter = 0; iter < 200; ++iter) {
        const bool taken = iter % 16 != 15;
        if (bp.predictAndTrain(0x400100, taken))
            ++correct;
        ++total;
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.8);
}

TEST(BranchPredictor, RandomBranchesNearChance)
{
    BranchPredictor bp;
    Rng rng(13);
    for (int i = 0; i < 20000; ++i)
        bp.predictAndTrain(0x400000 + (i % 7) * 16, rng.bernoulli(0.5));
    EXPECT_GT(bp.missRate(), 0.4);
    EXPECT_LT(bp.missRate(), 0.6);
}

TEST(BranchPredictor, BiasedBranchesBeatChance)
{
    BranchPredictor bp;
    Rng rng(14);
    for (int i = 0; i < 20000; ++i)
        bp.predictAndTrain(0x400200, rng.bernoulli(0.9));
    EXPECT_LT(bp.missRate(), 0.2);
}

TEST(BranchPredictorDeath, RejectsBadConfig)
{
    EXPECT_EXIT(BranchPredictor({0, 0}), testing::ExitedWithCode(1),
                "");
    EXPECT_EXIT(BranchPredictor({8, 12}), testing::ExitedWithCode(1),
                "");
}

} // namespace
} // namespace dronedse
