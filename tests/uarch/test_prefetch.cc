/**
 * @file
 * Next-line prefetcher ablation: streaming (autopilot-like) access
 * patterns benefit strongly; gather-heavy (SLAM-like) patterns
 * barely move — the asymmetry that makes prefetching a cheap
 * mitigation for the inner loop but not for the outer loop.
 */

#include <gtest/gtest.h>

#include "uarch/cache.hh"
#include "uarch/core.hh"

namespace dronedse {
namespace {

TEST(Prefetch, HidesSequentialMisses)
{
    CacheConfig base{4096, 64, 4, false};
    CacheConfig pf = base;
    pf.nextLinePrefetch = true;

    Cache plain(base), prefetching(pf);
    // Stream far beyond capacity: every line cold without prefetch.
    for (std::uint64_t a = 0; a < 1024 * 1024; a += 8) {
        plain.access(a);
        prefetching.access(a);
    }
    EXPECT_GT(plain.missRate(), 0.1);
    EXPECT_LT(prefetching.missRate(), 0.6 * plain.missRate());
    EXPECT_GT(prefetching.prefetches(), 1000u);
}

TEST(Prefetch, UselessForRandomGathers)
{
    CacheConfig base{4096, 64, 4, false};
    CacheConfig pf = base;
    pf.nextLinePrefetch = true;

    Cache plain(base), prefetching(pf);
    Rng rng(3);
    for (int i = 0; i < 200000; ++i) {
        const std::uint64_t a = rng.next() % (16 * 1024 * 1024);
        plain.access(a);
        prefetching.access(a);
    }
    // Within a few percent of each other: next-line fetches almost
    // never match the next random gather.
    EXPECT_NEAR(prefetching.missRate(), plain.missRate(), 0.05);
}

TEST(Prefetch, DisabledByDefault)
{
    Cache cache({4096, 64, 4});
    for (std::uint64_t a = 0; a < 65536; a += 64)
        cache.access(a);
    EXPECT_EQ(cache.prefetches(), 0u);
}

TEST(Prefetch, HelpsAutopilotWorkload)
{
    // End-to-end: the streaming autopilot trace gains IPC from an
    // L1 next-line prefetcher; the gather-heavy SLAM trace gains
    // almost nothing.
    auto ipc_for = [](const WorkloadProfile &profile, bool prefetch) {
        CorePlatform platform;
        CacheConfig l1{32 * 1024, 64, 4, prefetch};
        platform.l1 = Cache(l1);
        TraceGenerator gen(profile, 11);
        return runAlone(gen, 800000, platform).ipc();
    };
    const double ap_gain = ipc_for(autopilotProfile(), true) /
                           ipc_for(autopilotProfile(), false);
    const double slam_gain = ipc_for(slamProfile(), true) /
                             ipc_for(slamProfile(), false);
    EXPECT_GT(ap_gain, 1.05);
    EXPECT_LT(slam_gain, ap_gain);
    EXPECT_LT(slam_gain, 1.1);
}

} // namespace
} // namespace dronedse
