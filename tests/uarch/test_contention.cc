/**
 * @file
 * The Figure 15 reproduction gates: co-running SLAM with the
 * autopilot on one core raises the autopilot's TLB misses ~4.5x,
 * drops its IPC ~1.7x, and raises its LLC and branch miss rates
 * (paper Section 5.1).
 */

#include <gtest/gtest.h>

#include "uarch/core.hh"

namespace dronedse {
namespace {

constexpr std::uint64_t kInstructions = 1500000;

struct Figure15Data
{
    PerfCounters autopilotAlone;
    PerfCounters slamAlone;
    PerfCounters autopilotCoRun;
    PerfCounters slamCoRun;
};

const Figure15Data &
figure15()
{
    static const Figure15Data data = [] {
        Figure15Data d;
        {
            CorePlatform p;
            TraceGenerator g(autopilotProfile(), 1);
            d.autopilotAlone = runAlone(g, kInstructions, p);
        }
        {
            CorePlatform p;
            TraceGenerator g(slamProfile(), 2);
            d.slamAlone = runAlone(g, kInstructions, p);
        }
        {
            CorePlatform p;
            TraceGenerator a(autopilotProfile(), 1);
            TraceGenerator s(slamProfile(), 2);
            const CoScheduleResult r =
                coSchedule(a, s, kInstructions,
                           kDefaultSliceInstructions, p);
            d.autopilotCoRun = r.first;
            d.slamCoRun = r.second;
        }
        return d;
    }();
    return data;
}

TEST(Figure15, TlbMissesRiseAboutFourAndAHalfTimes)
{
    const auto &d = figure15();
    const double ratio =
        static_cast<double>(d.autopilotCoRun.tlbMisses) /
        static_cast<double>(d.autopilotAlone.tlbMisses);
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 7.0);
}

TEST(Figure15, AutopilotIpcDropsAboutOnePointSeven)
{
    const auto &d = figure15();
    const double ratio =
        d.autopilotAlone.ipc() / d.autopilotCoRun.ipc();
    EXPECT_GT(ratio, 1.35);
    EXPECT_LT(ratio, 2.1);
}

TEST(Figure15, LlcMissRateRisesWithSlam)
{
    const auto &d = figure15();
    EXPECT_GT(d.autopilotCoRun.llcMissRate(),
              2.0 * d.autopilotAlone.llcMissRate());
}

TEST(Figure15, BranchMissRateRisesWithSlam)
{
    const auto &d = figure15();
    EXPECT_GT(d.autopilotCoRun.branchMissRate(),
              d.autopilotAlone.branchMissRate());
}

TEST(Figure15, SlamIsTheHeavierWorkload)
{
    const auto &d = figure15();
    EXPECT_GT(d.slamAlone.llcMissRate(),
              d.autopilotAlone.llcMissRate());
    EXPECT_GT(d.slamAlone.branchMissRate(),
              d.autopilotAlone.branchMissRate());
    EXPECT_GT(d.slamAlone.tlbMissRate(),
              d.autopilotAlone.tlbMissRate());
    EXPECT_LT(d.slamAlone.ipc(), d.autopilotAlone.ipc());
}

TEST(Figure15, InstructionsAccounted)
{
    const auto &d = figure15();
    EXPECT_EQ(d.autopilotAlone.instructions, kInstructions);
    EXPECT_EQ(d.autopilotCoRun.instructions, kInstructions);
    EXPECT_EQ(d.slamCoRun.instructions, kInstructions);
}

TEST(Core, EventTimingBreakdown)
{
    CorePlatform platform;
    PerfCounters counters;

    // ALU op: one cycle.
    executeEvent({TraceKind::Alu, 0, 0, false}, platform, counters);
    EXPECT_EQ(counters.cycles, platform.timing.aluCycles);

    // Cold load: TLB miss + L1 miss + LLC miss.
    const std::uint64_t before = counters.cycles;
    executeEvent({TraceKind::Load, 0x123450, 0, false}, platform,
                 counters);
    EXPECT_EQ(counters.cycles - before,
              platform.timing.tlbMissCycles +
                  platform.timing.memoryCycles);
    EXPECT_EQ(counters.llcMisses, 1u);
    EXPECT_EQ(counters.tlbMisses, 1u);

    // Warm load to the same line: L1 hit, TLB hit.
    const std::uint64_t before2 = counters.cycles;
    executeEvent({TraceKind::Load, 0x123458, 0, false}, platform,
                 counters);
    EXPECT_EQ(counters.cycles - before2,
              platform.timing.l1HitCycles);
}

TEST(Core, CountersAccumulate)
{
    PerfCounters a, b;
    a.instructions = 10;
    a.cycles = 30;
    a.tlbMisses = 2;
    b.instructions = 5;
    b.cycles = 10;
    b.tlbMisses = 1;
    a += b;
    EXPECT_EQ(a.instructions, 15u);
    EXPECT_EQ(a.cycles, 40u);
    EXPECT_EQ(a.tlbMisses, 3u);
}

TEST(Core, DeterministicPerSeed)
{
    CorePlatform p1, p2;
    TraceGenerator g1(autopilotProfile(), 99);
    TraceGenerator g2(autopilotProfile(), 99);
    const PerfCounters c1 = runAlone(g1, 100000, p1);
    const PerfCounters c2 = runAlone(g2, 100000, p2);
    EXPECT_EQ(c1.cycles, c2.cycles);
    EXPECT_EQ(c1.tlbMisses, c2.tlbMisses);
}

TEST(CoreDeath, RejectsZeroSlice)
{
    CorePlatform p;
    TraceGenerator a(autopilotProfile(), 1);
    TraceGenerator s(slamProfile(), 2);
    EXPECT_EXIT(coSchedule(a, s, 100, 0, p),
                testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace dronedse
