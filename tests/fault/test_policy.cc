/**
 * @file
 * DegradationPolicy property tests: monotonicity (a strictly worse
 * fault trace never yields a strictly better outcome), idempotent
 * recovery, and backoff bounds.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fault/policy.hh"
#include "util/rng.hh"

using namespace dronedse;
using namespace dronedse::fault;

namespace {

/** A deterministic pseudo-random health trace, 0.1 s ticks. */
std::vector<HealthSnapshot>
randomTrace(std::uint64_t seed, int ticks)
{
    Rng rng(seed);
    std::vector<HealthSnapshot> trace;
    trace.reserve(ticks);
    long misses = 0;
    double soc = 1.0;
    for (int k = 0; k < ticks; ++k) {
        HealthSnapshot h;
        h.t = 0.1 * k;
        h.linkUp = !rng.bernoulli(0.2);
        h.gpsAvailable = !rng.bernoulli(0.15);
        misses += rng.uniformInt(0, 2);
        h.deadlineMisses = misses;
        h.estErrM = rng.uniform(0.0, 4.0);
        soc = std::max(0.0, soc - rng.uniform(0.0, 0.002));
        h.stateOfCharge = soc;
        h.minMotorEffectiveness = rng.uniform(0.5, 1.0);
        trace.push_back(h);
    }
    return trace;
}

/**
 * Degrade a trace pointwise: every sample gets worse or stays the
 * same in every health dimension (misses stay cumulative).
 */
std::vector<HealthSnapshot>
worsen(const std::vector<HealthSnapshot> &trace, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<HealthSnapshot> worse = trace;
    long extra = 0;
    for (auto &h : worse) {
        h.linkUp = h.linkUp && !rng.bernoulli(0.3);
        h.gpsAvailable = h.gpsAvailable && !rng.bernoulli(0.3);
        extra += rng.uniformInt(0, 3);
        h.deadlineMisses += extra;
        h.estErrM += rng.uniform(0.0, 3.0);
        h.stateOfCharge =
            std::max(0.0, h.stateOfCharge - rng.uniform(0.0, 0.1));
        h.minMotorEffectiveness = std::max(
            0.0, h.minMotorEffectiveness - rng.uniform(0.0, 0.2));
        h.t = trace[&h - worse.data()].t;
    }
    return worse;
}

FlightMode
runTrace(const std::vector<HealthSnapshot> &trace)
{
    DegradationPolicy policy;
    for (const auto &h : trace)
        policy.update(h);
    return policy.worstMode();
}

} // namespace

TEST(PolicyProperty, WorseTraceNeverYieldsBetterOutcome)
{
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
        const auto base = randomTrace(seed, 300);
        const auto worse = worsen(base, seed + 1000);

        const FlightMode base_worst = runTrace(base);
        const FlightMode worse_worst = runTrace(worse);
        EXPECT_GE(static_cast<int>(worse_worst),
                  static_cast<int>(base_worst))
            << "seed " << seed;

        // Same crash/completion facts, worse trace: the tier must
        // not improve.
        for (const bool crashed : {false, true}) {
            for (const bool complete : {false, true}) {
                const auto base_tier = DegradationPolicy::outcomeFor(
                    crashed, complete, base_worst);
                const auto worse_tier = DegradationPolicy::outcomeFor(
                    crashed, complete, worse_worst);
                EXPECT_LE(static_cast<int>(worse_tier),
                          static_cast<int>(base_tier))
                    << "seed " << seed;
            }
        }
    }
}

TEST(PolicyProperty, EscalationIsImmediate)
{
    DegradationPolicy policy;
    HealthSnapshot h;
    h.t = 0.0;
    EXPECT_EQ(policy.update(h), FlightMode::Nominal);
    h.t = 0.1;
    h.linkUp = false;
    EXPECT_EQ(policy.update(h), FlightMode::DegradedSlam);
    h.t = 0.2;
    h.estErrM = 3.0;
    EXPECT_EQ(policy.update(h), FlightMode::RateShed);
    h.t = 0.3;
    h.minMotorEffectiveness = 0.2;
    EXPECT_EQ(policy.update(h), FlightMode::LandSafe);
}

TEST(PolicyProperty, RecoveryIsIdempotent)
{
    DegradationPolicy policy;
    HealthSnapshot h;

    // Break the link, then restore it.
    h.t = 0.0;
    h.linkUp = false;
    EXPECT_EQ(policy.update(h), FlightMode::DegradedSlam);
    h.linkUp = true;

    // The elevated mode holds until recoveryHoldS of clear health.
    h.t = 1.0;
    EXPECT_EQ(policy.update(h), FlightMode::DegradedSlam);
    h.t = 1.0 + policy.config().recoveryHoldS + 0.1;
    EXPECT_EQ(policy.update(h), FlightMode::Nominal);

    // Re-applying the same clear health changes nothing: no mode
    // flapping, no new transitions.
    const std::size_t transitions = policy.transitions().size();
    for (int k = 0; k < 50; ++k) {
        h.t += 0.1;
        EXPECT_EQ(policy.update(h), FlightMode::Nominal);
    }
    EXPECT_EQ(policy.transitions().size(), transitions);
}

TEST(PolicyProperty, LandSafeIsAbsorbing)
{
    DegradationPolicy policy;
    HealthSnapshot h;
    h.t = 0.0;
    h.stateOfCharge = 0.05;
    EXPECT_EQ(policy.update(h), FlightMode::LandSafe);

    // Perfect health forever after: still landing.
    h.stateOfCharge = 1.0;
    for (int k = 1; k <= 100; ++k) {
        h.t = 0.1 * k;
        EXPECT_EQ(policy.update(h), FlightMode::LandSafe);
    }
    EXPECT_EQ(policy.worstMode(), FlightMode::LandSafe);
}

TEST(PolicyProperty, BackoffStaysWithinConfiguredBounds)
{
    PolicyConfig config;
    config.backoffMinS = 0.5;
    config.backoffMaxS = 8.0;
    config.backoffFactor = 2.0;
    DegradationPolicy policy(config);

    HealthSnapshot h;
    h.linkUp = false;
    double t = 0.0;
    policy.update(h);

    // Fail every retry for a long stretch.
    for (int k = 0; k < 200; ++k) {
        t += 0.1;
        h.t = t;
        policy.update(h);
        if (policy.offloadRetryDue(t))
            policy.onRetryResult(t, false);
    }
    ASSERT_FALSE(policy.retryIntervals().empty());
    for (const double interval : policy.retryIntervals()) {
        EXPECT_GE(interval, config.backoffMinS);
        EXPECT_LE(interval, config.backoffMaxS);
    }
    // Intervals grow monotonically up to the cap...
    for (std::size_t i = 1; i < policy.retryIntervals().size(); ++i)
        EXPECT_GE(policy.retryIntervals()[i],
                  policy.retryIntervals()[i - 1]);
    EXPECT_DOUBLE_EQ(policy.currentBackoffS(), config.backoffMaxS);

    // ...and a success resets the interval to the minimum.
    policy.onRetryResult(t, true);
    EXPECT_DOUBLE_EQ(policy.currentBackoffS(), config.backoffMinS);
}

TEST(PolicyProperty, RetryCadenceRespectsBackoff)
{
    DegradationPolicy policy;
    HealthSnapshot h;
    h.linkUp = false;
    policy.update(h);

    // Immediately after the outage no retry is due; the first one
    // comes after backoffMinS.
    EXPECT_FALSE(policy.offloadRetryDue(0.0));
    EXPECT_FALSE(
        policy.offloadRetryDue(policy.config().backoffMinS * 0.9));
    EXPECT_TRUE(
        policy.offloadRetryDue(policy.config().backoffMinS * 1.1));
}

TEST(PolicyTest, TimeMustNotGoBackwards)
{
    EXPECT_EXIT(
        {
            DegradationPolicy policy;
            HealthSnapshot h;
            h.t = 5.0;
            policy.update(h);
            h.t = 4.0;
            policy.update(h);
        },
        testing::ExitedWithCode(1), "");
}

TEST(PolicyTest, OutcomeTierMapping)
{
    using P = DegradationPolicy;
    EXPECT_EQ(P::outcomeFor(true, true, FlightMode::Nominal),
              OutcomeTier::Crashed);
    EXPECT_EQ(P::outcomeFor(false, true, FlightMode::Nominal),
              OutcomeTier::Completed);
    EXPECT_EQ(P::outcomeFor(false, true, FlightMode::RateShed),
              OutcomeTier::SurvivedDegraded);
    EXPECT_EQ(P::outcomeFor(false, false, FlightMode::LandSafe),
              OutcomeTier::LandedSafe);
    EXPECT_EQ(P::outcomeFor(false, false, FlightMode::DegradedSlam),
              OutcomeTier::SurvivedDegraded);
}

TEST(PolicyTest, TransitionsRecordReasons)
{
    DegradationPolicy policy;
    HealthSnapshot h;
    h.t = 0.0;
    h.gpsAvailable = false;
    policy.update(h);
    ASSERT_EQ(policy.transitions().size(), 1u);
    EXPECT_EQ(policy.transitions()[0].to, FlightMode::DegradedSlam);
    EXPECT_FALSE(policy.transitions()[0].reason.empty());
}
