/**
 * @file
 * Golden scenario battery: every catalog scenario flown at a fixed
 * seed pins its outcome, and the battery is bit-identical across
 * repeat runs and thread counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "fault/fault.hh"
#include "fault/mission.hh"

using namespace dronedse::fault;

namespace {

ResilienceConfig
goldenConfig(bool policy_enabled = true)
{
    ResilienceConfig config;
    config.durationS = 60.0;
    config.seed = 17;
    config.policyEnabled = policy_enabled;
    return config;
}

/** What each catalog scenario must produce at seed 17, policy on. */
struct Golden
{
    OutcomeTier tier;
    bool crashed;
    std::size_t waypoints;
    FlightMode worstMode;
};

const std::map<std::string, Golden> &
goldenTable()
{
    static const std::map<std::string, Golden> table = {
        {"nominal",
         {OutcomeTier::Completed, false, 5, FlightMode::Nominal}},
        {"gps_outage_midway",
         {OutcomeTier::SurvivedDegraded, false, 5,
          FlightMode::LandSafe}},
        {"gps_outage_imu_noise",
         {OutcomeTier::LandedSafe, false, 4, FlightMode::LandSafe}},
        {"link_flap",
         {OutcomeTier::SurvivedDegraded, false, 5,
          FlightMode::RateShed}},
        {"link_loss_permanent",
         {OutcomeTier::SurvivedDegraded, false, 5,
          FlightMode::RateShed}},
        {"latency_spike",
         {OutcomeTier::SurvivedDegraded, false, 5,
          FlightMode::RateShed}},
        {"motor_derate_mild",
         {OutcomeTier::Completed, false, 5, FlightMode::Nominal}},
        {"motor_derate_deep",
         {OutcomeTier::LandedSafe, false, 4, FlightMode::LandSafe}},
        {"contention_burst",
         {OutcomeTier::SurvivedDegraded, false, 5,
          FlightMode::RateShed}},
        {"camera_blackout",
         {OutcomeTier::Completed, false, 5, FlightMode::Nominal}},
        {"kitchen_sink",
         {OutcomeTier::SurvivedDegraded, false, 5,
          FlightMode::LandSafe}},
    };
    return table;
}

} // namespace

TEST(ScenarioBattery, GoldenOutcomesAtFixedSeed)
{
    const auto reports =
        runScenarioBattery(scenarioCatalog(), goldenConfig(), 1);
    ASSERT_EQ(reports.size(), goldenTable().size());
    for (const auto &r : reports) {
        const auto it = goldenTable().find(r.scenario);
        ASSERT_NE(it, goldenTable().end()) << r.scenario;
        const Golden &want = it->second;
        EXPECT_EQ(r.tier, want.tier) << r.scenario;
        EXPECT_EQ(r.crashed, want.crashed) << r.scenario;
        EXPECT_EQ(r.waypointsReached, want.waypoints) << r.scenario;
        EXPECT_EQ(r.worstMode, want.worstMode) << r.scenario;
    }
}

TEST(ScenarioBattery, BitIdenticalAcrossRepeatRuns)
{
    const auto a =
        runScenarioBattery(scenarioCatalog(), goldenConfig(), 1);
    const auto b =
        runScenarioBattery(scenarioCatalog(), goldenConfig(), 1);
    EXPECT_EQ(batteryToCsv(a), batteryToCsv(b));
}

TEST(ScenarioBattery, BitIdenticalAcrossThreadCounts)
{
    // The --jobs 1/2/8 invariance the engine's indexed-slot
    // parallelFor guarantees: the CSV must match byte for byte.
    const auto jobs1 =
        runScenarioBattery(scenarioCatalog(), goldenConfig(), 1);
    const auto jobs2 =
        runScenarioBattery(scenarioCatalog(), goldenConfig(), 2);
    const auto jobs8 =
        runScenarioBattery(scenarioCatalog(), goldenConfig(), 8);
    EXPECT_EQ(batteryToCsv(jobs1), batteryToCsv(jobs2));
    EXPECT_EQ(batteryToCsv(jobs1), batteryToCsv(jobs8));
}

TEST(ScenarioBattery, PolicyFlipsCrashesIntoSurvival)
{
    // The headline resilience claim: scenarios that crash the drone
    // with the policy disabled end in a controlled outcome with it
    // enabled.
    const std::vector<std::string> flipped = {
        "gps_outage_midway",
        "gps_outage_imu_noise",
        "motor_derate_deep",
        "kitchen_sink",
    };
    for (const auto &name : flipped) {
        const auto without = runResilienceMission(
            findScenario(name), goldenConfig(false));
        const auto with =
            runResilienceMission(findScenario(name), goldenConfig());
        EXPECT_TRUE(without.crashed) << name;
        EXPECT_FALSE(with.crashed) << name;
        EXPECT_GT(static_cast<int>(with.tier),
                  static_cast<int>(without.tier))
            << name;
    }
}

TEST(ScenarioBattery, NominalScenarioIsCleanEitherWay)
{
    const auto with = runResilienceMission(findScenario("nominal"),
                                           goldenConfig());
    const auto without = runResilienceMission(
        findScenario("nominal"), goldenConfig(false));
    EXPECT_EQ(with.tier, OutcomeTier::Completed);
    EXPECT_EQ(without.tier, OutcomeTier::Completed);
    EXPECT_TRUE(with.transitions.empty());
    EXPECT_EQ(with.deadlineMisses, 0);
}

TEST(ScenarioBattery, ReportsAreInternallyConsistent)
{
    const auto reports =
        runScenarioBattery(scenarioCatalog(), goldenConfig(), 2);
    for (const auto &r : reports) {
        EXPECT_GT(r.flightTimeS, 0.0) << r.scenario;
        EXPECT_LE(r.flightTimeS, 60.0 + 1e-9) << r.scenario;
        EXPECT_GT(r.energyWh, 0.0) << r.scenario;
        EXPECT_LE(r.waypointsReached, 6u) << r.scenario;
        EXPECT_EQ(r.transitions.empty(),
                  r.worstMode == FlightMode::Nominal)
            << r.scenario;
        if (r.crashed)
            EXPECT_EQ(r.tier, OutcomeTier::Crashed) << r.scenario;
    }
}

TEST(ScenarioBattery, CsvRowsMatchHeaderArity)
{
    const auto reports = runScenarioBattery(
        {findScenario("nominal"), findScenario("link_flap")},
        goldenConfig(), 1);
    const std::string header = reportCsvHeader();
    const auto count_commas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    for (const auto &r : reports)
        EXPECT_EQ(count_commas(reportCsvRow(r)),
                  count_commas(header));

    const std::string csv = batteryToCsv(reports);
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
    EXPECT_EQ(csv.rfind(header, 0), 0u);
}

TEST(ScenarioBattery, SeedChangesNumbersButDeterminismHolds)
{
    ResilienceConfig other = goldenConfig();
    other.seed = 99;
    const auto a = runScenarioBattery(scenarioCatalog(), other, 2);
    const auto b = runScenarioBattery(scenarioCatalog(), other, 4);
    EXPECT_EQ(batteryToCsv(a), batteryToCsv(b));
}
