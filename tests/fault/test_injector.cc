/**
 * @file
 * Fault taxonomy, scenario parsing, and injector query tests.
 */

#include <gtest/gtest.h>

#include <set>

#include "fault/fault.hh"
#include "fault/injector.hh"

using namespace dronedse::fault;

TEST(FaultTaxonomy, NamesRoundTripForEveryKind)
{
    for (int k = 0; k < static_cast<int>(FaultKind::NumKinds); ++k) {
        const auto kind = static_cast<FaultKind>(k);
        const auto back = faultKindFromName(faultKindName(kind));
        ASSERT_TRUE(back.has_value()) << faultKindName(kind);
        EXPECT_EQ(*back, kind);
    }
}

TEST(FaultTaxonomy, UnknownNameIsRejected)
{
    EXPECT_FALSE(faultKindFromName("warp_core_breach").has_value());
    EXPECT_FALSE(faultKindFromName("").has_value());
}

TEST(FaultEventTest, ActiveWindowIsHalfOpen)
{
    const FaultEvent e{FaultKind::GpsDropout, 10.0, 5.0, 1.0, 0};
    EXPECT_FALSE(e.activeAt(9.999));
    EXPECT_TRUE(e.activeAt(10.0));
    EXPECT_TRUE(e.activeAt(14.999));
    EXPECT_FALSE(e.activeAt(15.0));
}

TEST(ScenarioParse, ParsesEventsCommentsAndBlanks)
{
    const FaultScenario sc = parseScenario("demo", R"(
# a comment
gps_dropout start=5 dur=10

motor_derate start=2 dur=30 mag=0.6 index=3
)");
    ASSERT_EQ(sc.events.size(), 2u);
    EXPECT_EQ(sc.events[0].kind, FaultKind::GpsDropout);
    EXPECT_DOUBLE_EQ(sc.events[0].startS, 5.0);
    EXPECT_DOUBLE_EQ(sc.events[0].durationS, 10.0);
    EXPECT_EQ(sc.events[1].kind, FaultKind::MotorDerate);
    EXPECT_DOUBLE_EQ(sc.events[1].magnitude, 0.6);
    EXPECT_EQ(sc.events[1].index, 3);
}

TEST(ScenarioParse, TextRoundTripsThroughSerializer)
{
    for (const auto &sc : scenarioCatalog()) {
        const FaultScenario back =
            parseScenario(sc.name, scenarioToText(sc));
        ASSERT_EQ(back.events.size(), sc.events.size()) << sc.name;
        for (std::size_t i = 0; i < sc.events.size(); ++i) {
            EXPECT_EQ(back.events[i].kind, sc.events[i].kind);
            EXPECT_DOUBLE_EQ(back.events[i].startS,
                             sc.events[i].startS);
            EXPECT_DOUBLE_EQ(back.events[i].durationS,
                             sc.events[i].durationS);
            EXPECT_DOUBLE_EQ(back.events[i].magnitude,
                             sc.events[i].magnitude);
            EXPECT_EQ(back.events[i].index, sc.events[i].index);
        }
    }
}

TEST(ScenarioParse, MalformedLinesAreFatal)
{
    EXPECT_EXIT(parseScenario("bad", "warp_core start=1 dur=2"),
                testing::ExitedWithCode(1), "unknown fault kind");
    EXPECT_EXIT(parseScenario("bad", "gps_dropout start=1"),
                testing::ExitedWithCode(1), "");
    EXPECT_EXIT(parseScenario("bad", "gps_dropout bogus=1 dur=2"),
                testing::ExitedWithCode(1), "");
}

TEST(ScenarioCatalog, HasAtLeastEightUniquelyNamedScenarios)
{
    const auto &catalog = scenarioCatalog();
    EXPECT_GE(catalog.size(), 8u);
    std::set<std::string> names;
    for (const auto &sc : catalog) {
        EXPECT_FALSE(sc.name.empty());
        EXPECT_FALSE(sc.description.empty()) << sc.name;
        EXPECT_TRUE(names.insert(sc.name).second)
            << "duplicate scenario name " << sc.name;
    }
}

TEST(ScenarioCatalog, CoversEveryFaultKind)
{
    std::set<FaultKind> seen;
    for (const auto &sc : scenarioCatalog())
        for (const auto &e : sc.events)
            seen.insert(e.kind);
    EXPECT_EQ(seen.size(),
              static_cast<std::size_t>(FaultKind::NumKinds));
}

TEST(ScenarioCatalog, FindByNameWorksAndUnknownIsFatal)
{
    EXPECT_EQ(findScenario("nominal").events.size(), 0u);
    EXPECT_EXIT(findScenario("definitely_not_a_scenario"),
                testing::ExitedWithCode(1), "");
}

TEST(RandomScenario, SameSeedSameScenario)
{
    const FaultScenario a = randomScenario(42, 60.0);
    const FaultScenario b = randomScenario(42, 60.0);
    EXPECT_EQ(scenarioToText(a), scenarioToText(b));
    // A different seed (nearly always) draws a different timeline.
    const FaultScenario c = randomScenario(43, 60.0);
    EXPECT_NE(scenarioToText(a), scenarioToText(c));
}

TEST(RandomScenario, MagnitudesAreWithinKindRanges)
{
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        const FaultScenario sc = randomScenario(seed, 60.0);
        for (const auto &e : sc.events) {
            EXPECT_GE(e.startS, 0.0);
            EXPECT_LT(e.startS, 60.0);
            EXPECT_GT(e.durationS, 0.0);
            if (e.kind == FaultKind::MotorDerate) {
                EXPECT_GE(e.magnitude, 0.0);
                EXPECT_LE(e.magnitude, 1.0);
                EXPECT_GE(e.index, 0);
                EXPECT_LE(e.index, 3);
            }
        }
    }
}

TEST(InjectorTest, ActiveAndCountFollowTheTimeline)
{
    FaultScenario sc;
    sc.name = "t";
    sc.events.push_back({FaultKind::GpsDropout, 10.0, 5.0, 1.0, 0});
    sc.events.push_back({FaultKind::ComputeContention, 12.0, 2.0,
                         4.0, 0});
    const FaultInjector inj(sc);

    EXPECT_FALSE(inj.active(FaultKind::GpsDropout, 9.0));
    EXPECT_TRUE(inj.active(FaultKind::GpsDropout, 10.0));
    EXPECT_EQ(inj.activeCount(9.0), 0u);
    EXPECT_EQ(inj.activeCount(13.0), 2u);
    EXPECT_EQ(inj.activeCount(14.5), 1u);
    EXPECT_DOUBLE_EQ(inj.lastEventEnd(), 15.0);
}

TEST(InjectorTest, MagnitudeCombinesWorstCase)
{
    FaultScenario sc;
    sc.name = "t";
    // Two overlapping contention bursts: the worse (max) one rules.
    sc.events.push_back({FaultKind::ComputeContention, 0.0, 10.0,
                         3.0, 0});
    sc.events.push_back({FaultKind::ComputeContention, 2.0, 4.0,
                         8.0, 0});
    // Two deratings of the same motor: the worse (min) one rules.
    sc.events.push_back({FaultKind::MotorDerate, 0.0, 10.0, 0.8, 1});
    sc.events.push_back({FaultKind::MotorDerate, 2.0, 4.0, 0.3, 1});
    const FaultInjector inj(sc);

    EXPECT_DOUBLE_EQ(inj.magnitude(FaultKind::ComputeContention, 1.0,
                                   1.0),
                     3.0);
    EXPECT_DOUBLE_EQ(inj.magnitude(FaultKind::ComputeContention, 3.0,
                                   1.0),
                     8.0);
    EXPECT_DOUBLE_EQ(inj.magnitude(FaultKind::ComputeContention,
                                   20.0, 1.0),
                     1.0);
    EXPECT_DOUBLE_EQ(inj.motorEffectiveness(1, 1.0), 0.8);
    EXPECT_DOUBLE_EQ(inj.motorEffectiveness(1, 3.0), 0.3);
    EXPECT_DOUBLE_EQ(inj.motorEffectiveness(0, 3.0), 1.0);
    EXPECT_DOUBLE_EQ(inj.motorEffectiveness(1, 20.0), 1.0);
}
