/**
 * @file
 * Premise battery for `fault::composeScenarios`: every typed
 * rejection reason must be reachable (same-kind overlap, same-motor
 * overlap, link-subsystem overlap), every legal composition must
 * merge cleanly, and the rejection must be a value — not a fatal()
 * — because cross-producting a catalog treats clashes as expected
 * filter hits.
 */

#include <gtest/gtest.h>

#include <string>

#include "fault/fault.hh"
#include "fault/injector.hh"

using namespace dronedse::fault;

namespace {

FaultEvent
event(FaultKind kind, double start, double duration,
      double magnitude = 1.0, int index = 0)
{
    FaultEvent e;
    e.kind = kind;
    e.startS = start;
    e.durationS = duration;
    e.magnitude = magnitude;
    e.index = index;
    return e;
}

FaultScenario
scenario(const std::string &name, std::vector<FaultEvent> events)
{
    FaultScenario s;
    s.name = name;
    s.description = name;
    s.events = std::move(events);
    return s;
}

} // namespace

TEST(ScenarioCompose, MergesDisjointSubsystems)
{
    const auto a =
        scenario("gps", {event(FaultKind::GpsDropout, 10.0, 20.0)});
    const auto b = scenario(
        "imu", {event(FaultKind::ImuNoiseSpike, 12.0, 30.0, 8.0)});
    const ComposeResult r = composeScenarios(a, b);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.error.has_value());
    EXPECT_EQ(r.scenario->name, "gps+imu");
    ASSERT_EQ(r.scenario->events.size(), 2u);
    // Input order is preserved: a's events, then b's.
    EXPECT_EQ(r.scenario->events[0].kind, FaultKind::GpsDropout);
    EXPECT_EQ(r.scenario->events[1].kind, FaultKind::ImuNoiseSpike);

    // The merged timeline drives the injector like any other.
    const FaultInjector injector(*r.scenario);
    EXPECT_TRUE(injector.active(FaultKind::GpsDropout, 15.0));
    EXPECT_DOUBLE_EQ(
        injector.magnitude(FaultKind::ImuNoiseSpike, 15.0, 1.0), 8.0);
}

TEST(ScenarioCompose, MergesSameKindWhenWindowsAreDisjoint)
{
    const auto a =
        scenario("early", {event(FaultKind::GpsDropout, 5.0, 10.0)});
    const auto b =
        scenario("late", {event(FaultKind::GpsDropout, 15.0, 10.0)});
    // [5,15) and [15,25) touch but do not overlap.
    const ComposeResult r = composeScenarios(a, b);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.scenario->events.size(), 2u);
}

TEST(ScenarioCompose, MergesDerateOnDifferentMotors)
{
    const auto a = scenario(
        "m0", {event(FaultKind::MotorDerate, 10.0, 40.0, 0.7, 0)});
    const auto b = scenario(
        "m2", {event(FaultKind::MotorDerate, 10.0, 40.0, 0.5, 2)});
    const ComposeResult r = composeScenarios(a, b);
    ASSERT_TRUE(r.ok()) << r.error->message();

    const FaultInjector injector(*r.scenario);
    EXPECT_DOUBLE_EQ(injector.motorEffectiveness(0, 20.0), 0.7);
    EXPECT_DOUBLE_EQ(injector.motorEffectiveness(2, 20.0), 0.5);
    EXPECT_DOUBLE_EQ(injector.motorEffectiveness(1, 20.0), 1.0);
}

TEST(ScenarioCompose, RejectsSameKindOverlap)
{
    const auto a =
        scenario("a", {event(FaultKind::GpsDropout, 10.0, 20.0)});
    const auto b =
        scenario("b", {event(FaultKind::GpsDropout, 25.0, 20.0)});
    const ComposeResult r = composeScenarios(a, b);
    ASSERT_FALSE(r.ok());
    ASSERT_TRUE(r.error.has_value());
    EXPECT_EQ(r.error->reason, ComposeErrorReason::SameKindOverlap);
    EXPECT_EQ(r.error->subsystem, FaultSubsystem::Gps);
    EXPECT_DOUBLE_EQ(r.error->overlapStartS, 25.0);
    EXPECT_EQ(r.error->first.kind, FaultKind::GpsDropout);
    EXPECT_EQ(r.error->second.kind, FaultKind::GpsDropout);
    EXPECT_NE(r.error->message().find("same_kind_overlap"),
              std::string::npos);
}

TEST(ScenarioCompose, RejectsSameMotorOverlap)
{
    const auto a = scenario(
        "a", {event(FaultKind::MotorDerate, 10.0, 40.0, 0.7, 1)});
    const auto b = scenario(
        "b", {event(FaultKind::MotorDerate, 30.0, 40.0, 0.4, 1)});
    const ComposeResult r = composeScenarios(a, b);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error->reason, ComposeErrorReason::MotorIndexOverlap);
    EXPECT_EQ(r.error->subsystem, FaultSubsystem::Motor1);
    EXPECT_DOUBLE_EQ(r.error->overlapStartS, 30.0);
}

TEST(ScenarioCompose, RejectsLinkDownVersusLatencySpike)
{
    // Different kinds, one physical radio: the injector would
    // happily answer both queries, but the scenario semantics are
    // undefined (latency of a link that is down?), so composition
    // must reject rather than let the strongest writer win.
    const auto a = scenario(
        "down", {event(FaultKind::OffloadLinkDown, 10.0, 20.0)});
    const auto b =
        scenario("slow", {event(FaultKind::OffloadLatencySpike, 20.0,
                                20.0, 150.0)});
    const ComposeResult r = composeScenarios(a, b);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error->reason,
              ComposeErrorReason::LinkSubsystemOverlap);
    EXPECT_EQ(r.error->subsystem, FaultSubsystem::OffloadLink);
    EXPECT_DOUBLE_EQ(r.error->overlapStartS, 20.0);
}

TEST(ScenarioCompose, EveryReasonNameIsStable)
{
    EXPECT_STREQ(
        composeErrorReasonName(ComposeErrorReason::SameKindOverlap),
        "same_kind_overlap");
    EXPECT_STREQ(
        composeErrorReasonName(ComposeErrorReason::MotorIndexOverlap),
        "motor_index_overlap");
    EXPECT_STREQ(composeErrorReasonName(
                     ComposeErrorReason::LinkSubsystemOverlap),
                 "link_subsystem_overlap");
}

TEST(ScenarioCompose, PreexistingClashInsideOneInputIsAlsoCaught)
{
    // The check covers the whole merged timeline, so a scenario
    // that already clashes with itself cannot sneak through behind
    // a clean partner.
    const auto dirty =
        scenario("dirty", {event(FaultKind::CameraFrameLoss, 5.0, 10.0),
                           event(FaultKind::CameraFrameLoss, 9.0, 4.0)});
    const auto clean = scenario("clean", {});
    const ComposeResult r = composeScenarios(dirty, clean);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error->reason, ComposeErrorReason::SameKindOverlap);
    EXPECT_EQ(r.error->subsystem, FaultSubsystem::Camera);
}

TEST(ScenarioCompose, CatalogSelfProductFiltersNotCrashes)
{
    // Cross-producting the 11-scenario catalog must partition into
    // accepted merges and typed rejections, with nominal (empty
    // timeline) composing with everything.
    const auto &catalog = scenarioCatalog();
    int accepted = 0, rejected = 0;
    for (const auto &a : catalog) {
        for (const auto &b : catalog) {
            if (a.name == b.name)
                continue;
            const ComposeResult r = composeScenarios(a, b);
            if (r.ok()) {
                ++accepted;
                if (a.name == "nominal" || b.name == "nominal")
                    continue;
                EXPECT_FALSE(r.scenario->events.empty());
            } else {
                ++rejected;
                EXPECT_FALSE(r.error->message().empty());
            }
        }
    }
    EXPECT_GT(accepted, 0);
    EXPECT_GT(rejected, 0);
    // nominal composes with all 10 others, both ways.
    EXPECT_GE(accepted, 20);
}

TEST(ScenarioCompose, ExplicitNameOverridesDefault)
{
    const auto a =
        scenario("a", {event(FaultKind::GpsDropout, 1.0, 2.0)});
    const auto b = scenario("b", {});
    const ComposeResult r = composeScenarios(a, b, "custom");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.scenario->name, "custom");
}
