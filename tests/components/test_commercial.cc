#include <gtest/gtest.h>

#include "components/commercial.hh"

namespace dronedse {
namespace {

TEST(Commercial, TableContainsPaperDrones)
{
    const auto &mavic = findCommercialDrone("DJI MAVIC");
    EXPECT_EQ(mavic.weightG, 734.0);
    EXPECT_EQ(mavic.flightTimeMin, 27.0);

    const auto &ours = findCommercialDrone("Our Drone");
    EXPECT_EQ(ours.weightG, 1071.0);
    EXPECT_EQ(ours.sizeClass, SizeClass::Medium);
    // The paper measures 4.56 W for autopilot + SLAM on the RPi.
    EXPECT_EQ(ours.heavyComputeW, 4.56);
}

TEST(Commercial, ImpliedHoverPowerIsPlausible)
{
    // A Mavic-class drone hovers at roughly 80-120 W.
    const auto &mavic = findCommercialDrone("DJI MAVIC");
    const double p = mavic.impliedHoverPowerW().value();
    EXPECT_GT(p, 60.0);
    EXPECT_LT(p, 140.0);

    // Maneuvering multiplies by the load-fraction ratio (> 2x).
    EXPECT_GT(mavic.impliedManeuverPowerW().value(), 2.0 * p);
}

TEST(Commercial, ClassPartitions)
{
    const auto small = commercialDronesInClass(SizeClass::Small);
    const auto medium = commercialDronesInClass(SizeClass::Medium);
    const auto large = commercialDronesInClass(SizeClass::Large);
    EXPECT_GE(small.size(), 5u);
    EXPECT_EQ(medium.size(), 2u);
    EXPECT_EQ(large.size(), 1u);
    EXPECT_EQ(small.size() + medium.size() + large.size(),
              commercialDroneTable().size());
}

TEST(Commercial, Figure11SetMatchesPaper)
{
    const auto f11 = figure11Drones();
    EXPECT_EQ(f11.size(), 6u);
    bool has_mambo = false;
    for (const auto &d : f11)
        if (d.name == "Parrot Mambo")
            has_mambo = true;
    EXPECT_TRUE(has_mambo);
}

TEST(Commercial, HeavierDronesDrawMorePower)
{
    // Within the validation set, implied hover power grows with
    // weight (the Figure 10 trend the points validate).
    const auto &mambo = findCommercialDrone("Parrot Mambo");
    const auto &skydio = findCommercialDrone("SKYDIO 2");
    const auto &matrice = findCommercialDrone("DJI MATRICE");
    EXPECT_LT(mambo.impliedHoverPowerW(), skydio.impliedHoverPowerW());
    EXPECT_LT(skydio.impliedHoverPowerW(), matrice.impliedHoverPowerW());
}

TEST(CommercialDeath, UnknownDroneIsFatal)
{
    EXPECT_EXIT(findCommercialDrone("DJI Unobtainium"),
                testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace dronedse
