#include <gtest/gtest.h>

#include "components/compute_board.hh"

namespace dronedse {
namespace {

TEST(ComputeBoard, TableMatchesPaperValues)
{
    const auto &rpi = findComputeBoard("Raspberry Pi 4");
    EXPECT_EQ(rpi.weightG, 50.0);
    EXPECT_EQ(rpi.powerW, 5.0);
    EXPECT_EQ(rpi.boardClass, BoardClass::Improved);

    const auto &tx2 = findComputeBoard("Nvidia Jetson TX2");
    EXPECT_EQ(tx2.weightG, 85.0);
    EXPECT_EQ(tx2.powerW, 10.0);

    const auto &pixhawk = findComputeBoard("Pixhawk 4");
    EXPECT_EQ(pixhawk.boardClass, BoardClass::Basic);
    EXPECT_EQ(pixhawk.weightG, 15.8);

    const auto &manifold = findComputeBoard("DJI Manifold");
    EXPECT_EQ(manifold.powerW, 20.0);
    EXPECT_EQ(manifold.weightG, 200.0);
}

TEST(ComputeBoard, TenBoardsAsInTable4)
{
    EXPECT_EQ(computeBoardTable().size(), 10u);
    int basic = 0, improved = 0;
    for (const auto &rec : computeBoardTable()) {
        (rec.boardClass == BoardClass::Basic ? basic : improved) += 1;
        EXPECT_GT(rec.weightG, 0.0);
        EXPECT_GT(rec.powerW, 0.0);
    }
    EXPECT_EQ(basic, 5);
    EXPECT_EQ(improved, 5);
}

TEST(ComputeBoard, AbstractChips)
{
    EXPECT_EQ(basicChip3W().powerW, 3.0);
    EXPECT_EQ(advancedChip20W().powerW, 20.0);
    EXPECT_LT(basicChip3W().weightG, advancedChip20W().weightG);
}

TEST(ComputeBoardDeath, UnknownBoardIsFatal)
{
    EXPECT_EXIT(findComputeBoard("Flux Capacitor"),
                testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace dronedse
