#include <gtest/gtest.h>

#include "components/esc.hh"

namespace dronedse {
namespace {

using namespace unit_literals;

TEST(Esc, PaperFitCoefficients)
{
    const LinearFit lf = paperEscFit(EscClass::LongFlight);
    EXPECT_NEAR(lf.slope, 4.9678, 1e-9);
    EXPECT_NEAR(lf.intercept, -15.757, 1e-9);
    const LinearFit sf = paperEscFit(EscClass::ShortFlight);
    EXPECT_NEAR(sf.slope, 1.2269, 1e-9);
    EXPECT_NEAR(sf.intercept, 11.816, 1e-9);
}

TEST(Esc, ShortFlightEscsAreLighter)
{
    // Racing ESCs trade thermal headroom for weight (Figure 8a).
    for (double current = 20.0; current <= 90.0; current += 10.0) {
        EXPECT_LT(escSetWeightG(Quantity<Amperes>(current),
                                EscClass::ShortFlight),
                  escSetWeightG(Quantity<Amperes>(current),
                                EscClass::LongFlight))
            << "at " << current << " A";
    }
}

TEST(Esc, WeightClampedForTinyCurrents)
{
    // The long-flight fit goes negative below ~3 A; the model clamps.
    EXPECT_GE(escSetWeightG(1.0_a, EscClass::LongFlight).value(), 10.0);
}

TEST(Esc, WeightMonotoneInCurrent)
{
    double prev = 0.0;
    for (double current = 10.0; current <= 90.0; current += 5.0) {
        const double w = escSetWeightG(Quantity<Amperes>(current)).value();
        EXPECT_GE(w, prev);
        prev = w;
    }
}

TEST(Esc, CatalogReproducesFits)
{
    Rng rng(7);
    const auto catalog = generateEscCatalog(rng);
    EXPECT_EQ(catalog.size(), 40u);

    const LinearFit refit_long = fitEscCatalog(catalog,
                                               EscClass::LongFlight);
    EXPECT_NEAR(refit_long.slope, 4.9678, 0.5);
    const LinearFit refit_short = fitEscCatalog(catalog,
                                                EscClass::ShortFlight);
    EXPECT_NEAR(refit_short.slope, 1.2269, 0.3);
}

} // namespace
} // namespace dronedse
