#include <gtest/gtest.h>

#include "components/propeller.hh"

namespace dronedse {
namespace {

using namespace unit_literals;

TEST(Propeller, TenInchMatchesOurDrone)
{
    // Figure 14: four 1045 props weigh 40 g.
    EXPECT_NEAR(propellerSetWeightG(10.0_in).value(), 40.0, 2.0);
}

TEST(Propeller, PitchIsFractionOfDiameter)
{
    const PropellerRecord rec = makePropeller(10.0_in);
    EXPECT_NEAR(rec.pitchIn, 4.5, 0.1);
}

TEST(Propeller, WeightScalesWithArea)
{
    const double w5 = propellerSetWeightG(5.0_in).value();
    const double w10 = propellerSetWeightG(10.0_in).value();
    EXPECT_NEAR(w10 / w5, 4.0, 1e-9);
}

TEST(PropellerDeath, RejectsNonPositiveDiameter)
{
    EXPECT_EXIT(makePropeller(0.0_in), testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace dronedse
