#include <gtest/gtest.h>

#include "components/frame.hh"

namespace dronedse {
namespace {

using namespace unit_literals;

TEST(Frame, PaperFitAboveBoundary)
{
    EXPECT_NEAR(frameWeightG(450.0_mm).value(),
                1.2767 * 450.0 - 167.6, 1e-9);
    EXPECT_NEAR(frameWeightG(960.0_mm).value(),
                1.2767 * 960.0 - 167.6, 1e-9);
}

TEST(Frame, SmallFramesInPaperBand)
{
    // Below 200 mm, Figure 8b shows a 50-200 g band.
    for (double wb = 60.0; wb <= 200.0; wb += 20.0) {
        const double w = frameWeightG(Quantity<Millimeters>(wb)).value();
        EXPECT_GE(w, 50.0) << wb;
        EXPECT_LE(w, 200.0) << wb;
    }
}

TEST(Frame, ContinuousAtBoundary)
{
    EXPECT_NEAR(frameWeightG(200.0_mm).value(),
                frameWeightG(200.01_mm).value(), 0.5);
}

TEST(Frame, WeightMonotoneInWheelbase)
{
    double prev = 0.0;
    for (double wb = 60.0; wb <= 1100.0; wb += 20.0) {
        const double w = frameWeightG(Quantity<Millimeters>(wb)).value();
        EXPECT_GE(w, prev) << wb;
        prev = w;
    }
}

TEST(Frame, PropPairingsMatchFigure9)
{
    EXPECT_NEAR(maxPropDiameterIn(50.0_mm).value(), 1.0, 1e-9);
    EXPECT_NEAR(maxPropDiameterIn(100.0_mm).value(), 2.0, 1e-9);
    EXPECT_NEAR(maxPropDiameterIn(200.0_mm).value(), 5.0, 1e-9);
    EXPECT_NEAR(maxPropDiameterIn(450.0_mm).value(), 10.0, 1e-9);
    EXPECT_NEAR(maxPropDiameterIn(800.0_mm).value(), 20.0, 1e-9);
}

TEST(Frame, PropInterpolatesAndExtrapolates)
{
    // Between anchors: monotone.
    EXPECT_GT(maxPropDiameterIn(300.0_mm).value(), 5.0);
    EXPECT_LT(maxPropDiameterIn(300.0_mm).value(), 10.0);
    // Beyond 800 mm extrapolates upward.
    EXPECT_GT(maxPropDiameterIn(1000.0_mm).value(), 20.0);
    // Tiny wheelbase scales toward zero.
    EXPECT_LT(maxPropDiameterIn(25.0_mm).value(), 1.0);
}

TEST(Frame, CatalogIncludesNamedFrames)
{
    Rng rng(11);
    const auto catalog = generateFrameCatalog(rng);
    EXPECT_EQ(catalog.size(), 25u);
    bool found_f450 = false, found_t960 = false;
    for (const auto &rec : catalog) {
        if (rec.name == "Crazepony F450") {
            found_f450 = true;
            EXPECT_EQ(rec.wheelbaseMm, 450.0);
        }
        if (rec.name == "Tarot T960")
            found_t960 = true;
    }
    EXPECT_TRUE(found_f450);
    EXPECT_TRUE(found_t960);
}

TEST(Frame, CatalogRefitNearPaperSlope)
{
    Rng rng(12);
    const auto catalog = generateFrameCatalog(rng, 40);
    const LinearFit refit = fitFrameCatalog(catalog);
    EXPECT_NEAR(refit.slope, 1.2767, 0.35);
}

TEST(FrameDeath, RejectsNonPositiveWheelbase)
{
    EXPECT_EXIT(frameWeightG(0.0_mm), testing::ExitedWithCode(1), "");
    EXPECT_EXIT(maxPropDiameterIn(-5.0_mm), testing::ExitedWithCode(1),
                "");
}

} // namespace
} // namespace dronedse
