#include <gtest/gtest.h>

#include "components/motor.hh"
#include "util/units.hh"

namespace dronedse {
namespace {

using namespace unit_literals;

TEST(Motor, WeightAnchors)
{
    // Paper Section 3.1: ~5 g motors on 100 mm drones, ~100 g on
    // 1000 mm drones; MT2213 (~850 g thrust) weighs ~55 g.
    EXPECT_NEAR(motorWeightG(75.0_gf).value(), 5.0, 3.0);
    EXPECT_NEAR(motorWeightG(850.0_gf).value(), 55.0, 10.0);
    EXPECT_NEAR(motorWeightG(1500.0_gf).value(), 100.0, 15.0);
}

TEST(Motor, WeightMonotoneInThrust)
{
    double prev = 0.0;
    for (double thrust = 50.0; thrust <= 5000.0; thrust += 100.0) {
        const double w = motorWeightG(Quantity<GramsForce>(thrust)).value();
        EXPECT_GT(w, prev);
        prev = w;
    }
}

TEST(Motor, MatchMotorConsistency)
{
    const Quantity<Volts> volts = lipoPackVoltage(3);
    const MotorRecord rec = matchMotor(600.0_gf, 10.0_in, volts);
    EXPECT_GT(rec.kv, 0.0);
    EXPECT_GT(rec.maxCurrentA, 0.0);
    EXPECT_NEAR(rec.maxThrustG, 600.0, 1e-12);
    EXPECT_EQ(rec.propDiameterIn, 10.0);
    // An MT2213-class match: Kv in the hundreds, current < 20 A.
    EXPECT_GT(rec.kv, 300.0);
    EXPECT_LT(rec.kv, 2000.0);
    EXPECT_LT(rec.maxCurrentA, 20.0);
}

TEST(Motor, HigherVoltageLowersKvAndCurrent)
{
    const MotorRecord m3s = matchMotor(800.0_gf, 10.0_in,
                                       lipoPackVoltage(3));
    const MotorRecord m6s = matchMotor(800.0_gf, 10.0_in,
                                       lipoPackVoltage(6));
    EXPECT_GT(m3s.kv, m6s.kv);
    EXPECT_GT(m3s.maxCurrentA, m6s.maxCurrentA);
}

TEST(Motor, CatalogSpansClasses)
{
    Rng rng(5);
    const auto catalog = generateMotorCatalog(rng);
    EXPECT_EQ(catalog.size(), 150u);

    // The catalog must include both extreme-Kv micro motors and
    // low-Kv heavy-lift motors (Figure 9a vs 9d).
    double min_kv = 1e12, max_kv = 0.0;
    for (const auto &rec : catalog) {
        min_kv = std::min(min_kv, rec.kv);
        max_kv = std::max(max_kv, rec.kv);
        EXPECT_GT(rec.weightG, 0.0);
    }
    EXPECT_LT(min_kv, 1500.0);
    EXPECT_GT(max_kv, 10000.0);
}

TEST(MotorDeath, RejectsNonPositiveThrust)
{
    EXPECT_EXIT(matchMotor(0.0_gf, 10.0_in, 11.1_v),
                testing::ExitedWithCode(1), "");
    EXPECT_EXIT(motorWeightG(-1.0_gf), testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace dronedse
