#include <gtest/gtest.h>

#include "components/battery.hh"
#include "util/units.hh"

namespace dronedse {
namespace {

using namespace unit_literals;

TEST(Battery, PaperFitCoefficients)
{
    // Figure 7 legend values.
    EXPECT_NEAR(paperBatteryFit(6).slope, 0.116, 1e-9);
    EXPECT_NEAR(paperBatteryFit(6).intercept, 159.117, 1e-9);
    EXPECT_NEAR(paperBatteryFit(1).slope, 0.019, 1e-9);
    EXPECT_NEAR(paperBatteryFit(1).intercept, 4.856, 1e-9);
    EXPECT_NEAR(paperBatteryFit(3).at(3000.0), 0.074 * 3000 + 16.935,
                1e-9);
}

TEST(Battery, RecordDerivedQuantities)
{
    BatteryRecord rec;
    rec.cells = 3;
    rec.capacityMah = 3000.0;
    rec.dischargeC = 30.0;
    EXPECT_NEAR(rec.nominalVoltage().value(), 11.1, 1e-9);
    EXPECT_NEAR(rec.energyWh().value(), 33.3, 1e-9);
    EXPECT_NEAR(rec.maxContinuousCurrentA().value(), 90.0, 1e-9);
}

TEST(Battery, WeightInversion)
{
    const Quantity<Grams> w = batteryWeightG(4, 5000.0_mah);
    EXPECT_NEAR(batteryCapacityAtWeight(4, w).value(), 5000.0, 1e-6);
    // Below the intercept no capacity is reachable.
    EXPECT_EQ(batteryCapacityAtWeight(6, 100.0_g).value(), 0.0);
}

TEST(Battery, CatalogReproducesPaperFits)
{
    Rng rng(2021);
    const auto catalog = generateBatteryCatalog(rng);
    EXPECT_GE(catalog.size(), 250u - 10u);

    for (int cells = kMinCells; cells <= kMaxCells; ++cells) {
        const LinearFit paper = paperBatteryFit(cells);
        const LinearFit refit = fitBatteryCatalog(catalog, cells);
        // The survey -> fit pipeline recovers the published slope
        // within a few percent.
        EXPECT_NEAR(refit.slope, paper.slope, 0.10 * paper.slope)
            << cells << "S slope";
        EXPECT_GT(refit.rSquared, 0.9) << cells << "S fit quality";
    }
}

TEST(Battery, HigherVoltagePacksHaveHigherOverhead)
{
    // Figure 7 observation: higher-voltage packs carry more casing
    // and interconnect overhead at the same capacity.
    EXPECT_GT(batteryWeightG(6, 4000.0_mah),
              batteryWeightG(3, 4000.0_mah));
    EXPECT_GT(batteryWeightG(3, 4000.0_mah),
              batteryWeightG(1, 4000.0_mah));
}

TEST(Battery, WeightMonotoneInCapacity)
{
    for (int cells = kMinCells; cells <= kMaxCells; ++cells) {
        EXPECT_LT(batteryWeightG(cells, 1000.0_mah),
                  batteryWeightG(cells, 8000.0_mah));
    }
}

TEST(BatteryDeath, RejectsBadCellCount)
{
    EXPECT_EXIT(paperBatteryFit(0), testing::ExitedWithCode(1), "");
    EXPECT_EXIT(paperBatteryFit(7), testing::ExitedWithCode(1), "");
}

/** Parameterized: catalog entries stay near their config's fit. */
class BatteryCatalogPerConfig : public testing::TestWithParam<int>
{
};

TEST_P(BatteryCatalogPerConfig, EntriesNearFit)
{
    Rng rng(99);
    const auto catalog = generateBatteryCatalog(rng);
    const int cells = GetParam();
    const LinearFit fit = paperBatteryFit(cells);
    int count = 0;
    for (const auto &rec : catalog) {
        if (rec.cells != cells)
            continue;
        ++count;
        const double expect = fit.at(rec.capacityMah);
        EXPECT_NEAR(rec.weightG, expect, 0.25 * expect + 5.0);
    }
    EXPECT_GT(count, 10);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, BatteryCatalogPerConfig,
                         testing::Range(1, 7));

} // namespace
} // namespace dronedse
