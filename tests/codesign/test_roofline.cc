#include "codesign/roofline.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>

#include "slam/pipeline.hh"

using namespace dronedse;
using namespace dronedse::codesign;

namespace {

constexpr std::size_t kNumPhases =
    static_cast<std::size_t>(SlamPhase::NumPhases);
constexpr std::size_t kNumPlatforms =
    static_cast<std::size_t>(PlatformKind::NumPlatforms);

} // namespace

TEST(Roofline, CalibrationIsDeterministic)
{
    const RooflineModel a;
    const RooflineModel b;
    EXPECT_EQ(a.calibration().host.peakOpsPerSec,
              b.calibration().host.peakOpsPerSec);
    EXPECT_EQ(a.calibration().host.bandwidthBytesPerSec,
              b.calibration().host.bandwidthBytesPerSec);
    for (std::size_t i = 0; i < kNumPhases; ++i) {
        EXPECT_EQ(a.intensity(static_cast<SlamPhase>(i)),
                  b.intensity(static_cast<SlamPhase>(i)));
    }
}

TEST(Roofline, HostFitGoldenValues)
{
    // Golden pins of the canonical fit (seed 17, 1e6 events).  The
    // trace generator and core model are deterministic, so drift
    // here means the microarchitecture model itself changed.
    const RooflineModel &model = RooflineModel::shared();
    const RooflineSpec &host = model.roofline(PlatformKind::RPi);
    EXPECT_NEAR(host.peakOpsPerSec, 1.164e9, 0.01e9);
    EXPECT_NEAR(host.bandwidthBytesPerSec, 7.414e8, 0.01e8);
    EXPECT_NEAR(host.ridgeOpsPerByte(), 1.57, 0.02);
}

TEST(Roofline, PhaseIntensityGoldenValues)
{
    const RooflineModel &model = RooflineModel::shared();
    EXPECT_NEAR(model.intensity(SlamPhase::FeatureExtraction),
                0.312, 0.01);
    EXPECT_NEAR(model.intensity(SlamPhase::Matching), 1.907, 0.02);
    EXPECT_NEAR(model.intensity(SlamPhase::Tracking), 20.35, 0.2);
    EXPECT_NEAR(model.intensity(SlamPhase::LocalBa), 0.203, 0.01);
    EXPECT_NEAR(model.intensity(SlamPhase::GlobalBa), 0.078, 0.005);
}

TEST(Roofline, IntensityOrderingMatchesLocality)
{
    // Streaming image phases and gather-heavy BA phases must sit
    // below the cache-resident tracking kernel.
    const RooflineModel &model = RooflineModel::shared();
    const double feature =
        model.intensity(SlamPhase::FeatureExtraction);
    const double matching = model.intensity(SlamPhase::Matching);
    const double tracking = model.intensity(SlamPhase::Tracking);
    const double local_ba = model.intensity(SlamPhase::LocalBa);
    const double global_ba = model.intensity(SlamPhase::GlobalBa);
    EXPECT_LT(global_ba, local_ba);
    EXPECT_LT(local_ba, feature);
    EXPECT_LT(feature, matching);
    EXPECT_LT(matching, tracking);
}

TEST(Roofline, BoundClassificationGoldenMatrix)
{
    // Golden classification of every (phase, platform) pair.  The
    // streaming and BA phases are memory-bound everywhere; the
    // cache-resident tracking kernel is compute-bound everywhere;
    // descriptor matching straddles the ridge: compute-bound except
    // on the TX2, whose bandwidth factor is the richest relative to
    // its peak (wide GPU lanes on a shared LPDDR4 bus).
    const RooflineModel &model = RooflineModel::shared();
    struct Row
    {
        SlamPhase phase;
        // RPi, TX2, FPGA, ASIC.
        bool memoryBound[4];
    };
    const Row expected[] = {
        {SlamPhase::FeatureExtraction, {true, true, true, true}},
        {SlamPhase::Matching, {false, true, false, false}},
        {SlamPhase::Tracking, {false, false, false, false}},
        {SlamPhase::LocalBa, {true, true, true, true}},
        {SlamPhase::GlobalBa, {true, true, true, true}},
    };
    for (const Row &row : expected) {
        for (std::size_t p = 0; p < kNumPlatforms; ++p) {
            const auto kind = static_cast<PlatformKind>(p);
            EXPECT_EQ(model.memoryBound(kind, row.phase),
                      row.memoryBound[p])
                << slamPhaseName(row.phase) << " on "
                << platformSpec(kind).name;
        }
    }
}

TEST(Roofline, RoofsDominateMeasuredThroughput)
{
    // A roofline is an upper bound: every platform's attainable
    // throughput must sit at or above its Table 4 calibrated
    // throughput (gap >= 1), so the effective throughput the
    // co-design driver plans with is the measured number.
    const RooflineModel &model = RooflineModel::shared();
    for (std::size_t p = 0; p < kNumPlatforms; ++p) {
        const auto kind = static_cast<PlatformKind>(p);
        for (const PhaseRooflineReport &row : model.report(kind)) {
            EXPECT_GE(row.gap, 1.0)
                << slamPhaseName(row.phase) << " on "
                << platformSpec(kind).name;
            EXPECT_GE(row.attainableOpsPerSec,
                      row.measuredOpsPerSec);
            EXPECT_EQ(model.effectiveThroughput(kind, row.phase),
                      row.measuredOpsPerSec);
        }
    }
}

TEST(Roofline, AttainableIsMinOfTheTwoRoofs)
{
    const RooflineModel &model = RooflineModel::shared();
    for (std::size_t p = 0; p < kNumPlatforms; ++p) {
        const auto kind = static_cast<PlatformKind>(p);
        const RooflineSpec &roof = model.roofline(kind);
        EXPECT_GT(roof.peakOpsPerSec, 0.0);
        EXPECT_GT(roof.bandwidthBytesPerSec, 0.0);
        for (std::size_t i = 0; i < kNumPhases; ++i) {
            const auto phase = static_cast<SlamPhase>(i);
            const double attainable =
                model.attainable(kind, phase);
            EXPECT_LE(attainable, roof.peakOpsPerSec);
            EXPECT_LE(attainable, roof.bandwidthBytesPerSec *
                                      model.intensity(phase));
            const double expected = std::min(
                roof.peakOpsPerSec, roof.bandwidthBytesPerSec *
                                        model.intensity(phase));
            EXPECT_DOUBLE_EQ(attainable, expected);
        }
    }
}
