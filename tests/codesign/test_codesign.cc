#include "codesign/codesign.hh"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "engine/engine.hh"
#include "serve/request.hh"

using namespace dronedse;
using namespace dronedse::codesign;

namespace {

constexpr std::size_t kNumPlatforms =
    static_cast<std::size_t>(PlatformKind::NumPlatforms);

const CodesignChoice &
platformChoice(const CodesignOutcome &outcome, PlatformKind kind)
{
    return outcome.perPlatform[static_cast<std::size_t>(kind)];
}

const CodesignChoice &
splitChoice(const CodesignOutcome &outcome, OffloadSplit split)
{
    return outcome.perSplit[static_cast<std::size_t>(split)];
}

} // namespace

TEST(Codesign, PaperCatalogDerivesTable5)
{
    // The acceptance bar of the subsystem: for every mission in the
    // paper catalog the search must *derive* the board the paper
    // assigns — the FPGA — rather than having it configured in.
    engine::SweepEngine engine{engine::EngineOptions{.threads = 2}};
    const CodesignDriver driver{engine};

    for (const MissionSpec &mission : paperMissionCatalog()) {
        const CodesignOutcome outcome = driver.run(mission);
        ASSERT_TRUE(outcome.recommended.feasible) << mission.name;
        EXPECT_EQ(outcome.recommended.config.platform,
                  PlatformKind::Fpga)
            << mission.name;

        // The paper's supporting columns: the RPi and TX2 cannot
        // sustain any admissible rate, so they never make the
        // frontier; their best sustained fps explains why.
        EXPECT_FALSE(
            platformChoice(outcome, PlatformKind::RPi).feasible);
        EXPECT_FALSE(
            platformChoice(outcome, PlatformKind::TX2).feasible);
        EXPECT_LT(outcome.bestSustainedFps[static_cast<std::size_t>(
                      PlatformKind::RPi)],
                  mission.targetRateHz);
        EXPECT_LT(outcome.bestSustainedFps[static_cast<std::size_t>(
                      PlatformKind::TX2)],
                  mission.targetRateHz);

        // The ASIC flies at least as long (it is lighter), but its
        // edge stays inside the tie margin, so fabrication cost
        // decides — exactly the paper's FPGA-over-ASIC argument.
        const CodesignChoice &fpga =
            platformChoice(outcome, PlatformKind::Fpga);
        const CodesignChoice &asic =
            platformChoice(outcome, PlatformKind::Asic);
        ASSERT_TRUE(fpga.feasible);
        ASSERT_TRUE(asic.feasible);
        const double delta = asic.design.flightTimeMin.value() -
                             fpga.design.flightTimeMin.value();
        EXPECT_GE(delta, 0.0) << mission.name;
        EXPECT_LE(delta, kTieMarginMin) << mission.name;
    }
}

TEST(Codesign, NanoMissionOptimalBoardDiffersBySplit)
{
    // The per-split frontier must diverge: under accel_ba the light
    // BA-only FPGA part wins, under accel_all the ASIC's 55 g
    // weight advantage makes it the optimum.
    engine::SweepEngine engine{engine::EngineOptions{.threads = 2}};
    const CodesignDriver driver{engine};
    const CodesignOutcome outcome =
        driver.run(paperMissionCatalog().back());
    ASSERT_EQ(outcome.mission.name, "nano_scout_250");

    const CodesignChoice &ba =
        splitChoice(outcome, OffloadSplit::AccelBa);
    const CodesignChoice &all =
        splitChoice(outcome, OffloadSplit::AccelAll);
    ASSERT_TRUE(ba.feasible);
    ASSERT_TRUE(all.feasible);
    EXPECT_EQ(ba.config.platform, PlatformKind::Fpga);
    EXPECT_EQ(all.config.platform, PlatformKind::Asic);
    EXPECT_NE(ba.config.platform, all.config.platform);
}

TEST(Codesign, HighRateMissionForcesFullOffload)
{
    // At 30 Hz the host front end alone takes ~66 ms per frame, so
    // the BA-only split cannot reach the target rate and the whole
    // pipeline must move onto the accelerator.
    engine::SweepEngine engine{engine::EngineOptions{.threads = 2}};
    const CodesignDriver driver{engine};
    const CodesignOutcome outcome =
        driver.run(paperMissionCatalog()[2]);
    ASSERT_EQ(outcome.mission.name, "agile_inspect_450");

    EXPECT_FALSE(
        splitChoice(outcome, OffloadSplit::HostOnly).feasible);
    EXPECT_FALSE(
        splitChoice(outcome, OffloadSplit::AccelBa).feasible);
    ASSERT_TRUE(outcome.recommended.feasible);
    EXPECT_EQ(outcome.recommended.config.split,
              OffloadSplit::AccelAll);
}

TEST(Codesign, RecommendationWeaklyDominatesFixedBoards)
{
    // Property over 20 seeded missions: whatever board you fix, the
    // co-design recommendation flies at least as long up to the tie
    // margin (within which it may deliberately trade flight time
    // for a cheaper platform).
    engine::SweepEngine engine{engine::EngineOptions{.threads = 2}};
    const CodesignDriver driver{engine};

    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        const MissionSpec mission = seededMission(seed);
        const CodesignOutcome outcome = driver.run(mission);
        for (std::size_t p = 0; p < kNumPlatforms; ++p) {
            const auto kind = static_cast<PlatformKind>(p);
            const CodesignChoice fixed =
                driver.runFixedPlatform(mission, kind);
            if (!fixed.feasible)
                continue;
            ASSERT_TRUE(outcome.recommended.feasible)
                << mission.name;
            EXPECT_GE(
                outcome.recommended.design.flightTimeMin.value(),
                fixed.design.flightTimeMin.value() - kTieMarginMin)
                << mission.name << " vs fixed "
                << platformSpec(kind).name;
        }
    }
}

TEST(Codesign, RecommendationBitIdenticalAcrossThreadCounts)
{
    // The serialized outcome — not just the chosen board — must be
    // byte-identical at any engine thread count.
    const MissionSpec mission = paperMissionCatalog().front();
    std::string baseline;
    for (const unsigned threads : {1u, 2u, 8u}) {
        engine::SweepEngine engine{
            engine::EngineOptions{.threads = threads}};
        const CodesignDriver driver{engine};
        const std::string reply = serve::serializeCodesignReply(
            1, driver.run(mission));
        if (baseline.empty())
            baseline = reply;
        else
            EXPECT_EQ(reply, baseline)
                << "threads=" << threads;
    }
}

TEST(Codesign, EnumerationIsDeterministicAndOrdered)
{
    engine::SweepEngine engine{engine::EngineOptions{.threads = 1}};
    const CodesignDriver driver{engine};
    const MissionSpec mission = paperMissionCatalog().front();

    const auto a = driver.enumerateConfigs(mission);
    const auto b = driver.enumerateConfigs(mission);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_FALSE(a.empty());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].boardName, b[i].boardName);
        // Table 5 platform order, splits within a platform, rates
        // within a split.
        if (i > 0) {
            EXPECT_GE(static_cast<int>(a[i].platform),
                      static_cast<int>(a[i - 1].platform));
        }
        // Every admitted config meets the mission rate with its
        // roofline-sustained rate.
        EXPECT_GE(a[i].rateHz, mission.targetRateHz);
        EXPECT_GE(a[i].sustainedFps, a[i].rateHz);
    }
}

TEST(Codesign, SplitNamesRoundTrip)
{
    for (const auto split :
         {OffloadSplit::HostOnly, OffloadSplit::AccelBa,
          OffloadSplit::AccelAll}) {
        OffloadSplit parsed = OffloadSplit::HostOnly;
        ASSERT_TRUE(
            parseOffloadSplit(offloadSplitName(split), parsed));
        EXPECT_EQ(parsed, split);
    }
    OffloadSplit parsed = OffloadSplit::HostOnly;
    EXPECT_FALSE(parseOffloadSplit("gpu_only", parsed));
}
