#include <gtest/gtest.h>

#include <cmath>

#include "physics/propeller_aero.hh"
#include "util/units.hh"

namespace dronedse {
namespace {

using namespace unit_literals;

TEST(PropellerAero, ThrustScalesWithSpeedSquared)
{
    const Quantity<Meters> d = inchesToMeters(10.0_in);
    const double t1 = propThrustN(100.0_hz, d).value();
    const double t2 = propThrustN(200.0_hz, d).value();
    EXPECT_NEAR(t2 / t1, 4.0, 1e-12);
}

TEST(PropellerAero, PowerScalesWithSpeedCubed)
{
    const Quantity<Meters> d = inchesToMeters(10.0_in);
    const double p1 = propShaftPowerW(100.0_hz, d).value();
    const double p2 = propShaftPowerW(200.0_hz, d).value();
    EXPECT_NEAR(p2 / p1, 8.0, 1e-12);
}

TEST(PropellerAero, RevsForThrustInvertsThrust)
{
    const Quantity<GramsForce> thrust = 600.0_gf;
    const Quantity<RevPerSec> n = revsForThrust(thrust, 10.0_in);
    EXPECT_NEAR(propThrustG(n, inchesToMeters(10.0_in)).value(),
                thrust.value(), 1e-9);
}

TEST(PropellerAero, Mt2213Calibration)
{
    // An MT2213-class motor with a 10x4.5 prop on 3S produces ~850 g
    // max thrust at ~160 W electrical; the model should land within
    // ~25 % on power for that operating point.
    const Quantity<Volts> volts = lipoPackVoltage(3);
    const double p = electricalPowerW(850.0_gf, 10.0_in).value();
    EXPECT_GT(p, 120.0);
    EXPECT_LT(p, 230.0);
    const double i = motorCurrentA(850.0_gf, 10.0_in, volts).value();
    EXPECT_NEAR(i, p / volts.value(), 1e-12);
}

TEST(PropellerAero, LargerPropIsMoreEfficient)
{
    // Same thrust with a larger disk needs less power (momentum
    // theory: disk loading drives induced power).
    const Quantity<Watts> p_small = electricalPowerW(400.0_gf, 5.0_in);
    const Quantity<Watts> p_large = electricalPowerW(400.0_gf, 10.0_in);
    EXPECT_LT(p_large, p_small);
}

TEST(PropellerAero, SmallPropsNeedExtremeKv)
{
    // The Figure 9a observation: 1"-2" props on low-voltage packs
    // require five-digit Kv ratings (the figure annotates 25000Kv
    // for the 2" class and 51000Kv for the 1" class).
    const double kv_2in = requiredKv(100.0_gf, 2.0_in, lipoPackVoltage(1));
    EXPECT_GT(kv_2in, 20000.0);
    const double kv_1in = requiredKv(100.0_gf, 1.0_in, lipoPackVoltage(1));
    EXPECT_GT(kv_1in, 45000.0);
    const double kv_large =
        requiredKv(1500.0_gf, 20.0_in, lipoPackVoltage(6));
    EXPECT_LT(kv_large, 1000.0);
}

TEST(PropellerAero, KvDecreasesWithVoltage)
{
    const double kv_2s = requiredKv(300.0_gf, 5.0_in, lipoPackVoltage(2));
    const double kv_6s = requiredKv(300.0_gf, 5.0_in, lipoPackVoltage(6));
    EXPECT_NEAR(kv_2s / kv_6s, 3.0, 1e-9);
}

TEST(PropellerAeroDeath, RejectsBadArguments)
{
    EXPECT_EXIT(revsForThrust(100.0_gf, 0.0_in),
                testing::ExitedWithCode(1), "");
    EXPECT_EXIT(motorCurrentA(100.0_gf, 5.0_in, 0.0_v),
                testing::ExitedWithCode(1), "");
    EXPECT_EXIT(requiredKv(100.0_gf, 5.0_in, -1.0_v),
                testing::ExitedWithCode(1), "");
}

/** Property sweep: current decreases monotonically with cell count. */
class CurrentVsCells : public testing::TestWithParam<int>
{
};

TEST_P(CurrentVsCells, MoreCellsLessCurrent)
{
    const int cells = GetParam();
    const Quantity<Amperes> i_lo =
        motorCurrentA(800.0_gf, 10.0_in, lipoPackVoltage(cells));
    const Quantity<Amperes> i_hi =
        motorCurrentA(800.0_gf, 10.0_in, lipoPackVoltage(cells + 1));
    EXPECT_GT(i_lo, i_hi);
}

INSTANTIATE_TEST_SUITE_P(Cells, CurrentVsCells, testing::Range(1, 6));

} // namespace
} // namespace dronedse
