#include <gtest/gtest.h>

#include "physics/lipo.hh"
#include "util/units.hh"

namespace dronedse {
namespace {

using namespace unit_literals;

TEST(Lipo, UsableEnergyAppliesDerating)
{
    // 3000 mAh at 11.1 V is 33.3 Wh nominal; usable applies the 85 %
    // drain limit and delivery efficiency.
    const double usable = usableEnergyWh(3000.0_mah, 11.1_v).value();
    EXPECT_NEAR(usable, 33.3 * kLipoDrainLimit * kPowerDeliveryEfficiency,
                1e-9);
    EXPECT_LT(usable, 33.3);
}

TEST(Lipo, PackVoltage)
{
    LipoPack pack(3, 3000.0_mah);
    EXPECT_NEAR(pack.nominalVoltage().value(), 11.1, 1e-9);
    // Full pack sits above nominal (4.2 V/cell).
    EXPECT_NEAR(pack.terminalVoltage().value(), 12.6, 1e-9);
}

TEST(Lipo, DischargeTracksEnergy)
{
    LipoPack pack(3, 3000.0_mah);
    const double total = pack.totalEnergyWh().value();
    EXPECT_NEAR(total, 33.3, 1e-9);

    // Draw 100 W for 6 minutes = 10 Wh.
    pack.discharge(100.0_w, 360.0_s);
    EXPECT_NEAR(pack.drawnEnergyWh().value(), 10.0, 1e-9);
    EXPECT_NEAR(pack.stateOfCharge(), 1.0 - 10.0 / 33.3, 1e-9);
    EXPECT_FALSE(pack.depleted());
}

TEST(Lipo, DepletesAtDrainLimit)
{
    LipoPack pack(2, 1000.0_mah);
    const double total = pack.totalEnergyWh().value();
    // Drain 86 % of the pack.
    pack.discharge(Quantity<Watts>(total * 0.86), 3600.0_s);
    EXPECT_TRUE(pack.depleted());
}

TEST(Lipo, VoltageSagsWithDischarge)
{
    LipoPack pack(4, 2000.0_mah);
    const double v_full = pack.terminalVoltage().value();
    pack.discharge(Quantity<Watts>(pack.totalEnergyWh().value() * 0.5),
                   3600.0_s);
    const double v_half = pack.terminalVoltage().value();
    EXPECT_LT(v_half, v_full);
    EXPECT_GT(v_half, 4 * 3.3);
}

TEST(Lipo, SocNeverNegative)
{
    LipoPack pack(1, 500.0_mah);
    pack.discharge(Quantity<Watts>(1e6), 3600.0_s);
    EXPECT_GE(pack.stateOfCharge(), 0.0);
}

TEST(LipoDeath, RejectsBadConstruction)
{
    EXPECT_EXIT(LipoPack(0, 1000.0_mah), testing::ExitedWithCode(1), "");
    EXPECT_EXIT(LipoPack(3, -5.0_mah), testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace dronedse
