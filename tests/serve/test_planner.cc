#include "serve/planner.hh"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hh"
#include "explore/driver.hh"
#include "explore/gate.hh"
#include "explore/space.hh"

using namespace dronedse;
using namespace dronedse::serve;

namespace {

Request
validSweep(std::uint64_t id)
{
    Request request;
    request.id = id;
    request.kind = QueryKind::Sweep;
    request.spec.boards = {ComputeBoardRecord{
        "Basic 3W chip", BoardClass::Basic, 20.0, 3.0}};
    request.spec.cells = {3, 4};
    request.spec.capacityLoMah = Quantity<MilliampHours>(2000.0);
    request.spec.capacityHiMah = Quantity<MilliampHours>(4000.0);
    request.spec.capacityStepMah = Quantity<MilliampHours>(500.0);
    return request;
}

Request
validDesign(std::uint64_t id)
{
    Request request;
    request.id = id;
    request.kind = QueryKind::Design;
    return request;
}

Request
validExplore(std::uint64_t id)
{
    Request request;
    request.id = id;
    request.kind = QueryKind::Explore;
    request.explore.space.axes = {
        explore::capacityAxis(Quantity<MilliampHours>(1500.0),
                              Quantity<MilliampHours>(500.0), 6),
        explore::cellsAxis({3, 4}),
    };
    request.explore.options.sampler = explore::SamplerKind::Grid;
    request.explore.options.initialSamples = 4;
    request.explore.options.maxEvaluations = 12;
    return request;
}

Request
validRisk(std::uint64_t id)
{
    Request request;
    request.id = id;
    request.kind = QueryKind::Risk;
    request.risk.point.capacityMah =
        Quantity<MilliampHours>(2200.0);
    request.risk.options.samples = 64;
    request.risk.gates = {explore::GateSpec{
        explore::GateMetric::FlightTimeMin, explore::GateOp::AtLeast,
        5.0, 0.5}};
    request.risk.quantiles = {0.5};
    return request;
}

} // namespace

TEST(ServePlanner, AcceptsValidQueries)
{
    engine::SweepEngine engine{engine::EngineOptions{.threads = 1}};
    QueryPlanner planner{engine};
    ErrorReply err;
    EXPECT_TRUE(planner.validate(validDesign(1), err)) << err.message;
    EXPECT_TRUE(planner.validate(validSweep(2), err)) << err.message;
}

TEST(ServePlanner, RejectsSemanticViolations)
{
    engine::SweepEngine engine{engine::EngineOptions{.threads = 1}};
    QueryPlanner planner{engine};

    const auto rejected = [&](const Request &request) {
        ErrorReply err;
        EXPECT_FALSE(planner.validate(request, err));
        EXPECT_EQ(err.code, ErrorCode::InvalidRequest);
        return err.message;
    };

    Request r = validDesign(1);
    r.point.cells = 9;
    rejected(r);

    r = validDesign(2);
    r.point.wheelbaseMm = Quantity<Millimeters>(-10.0);
    rejected(r);

    r = validDesign(3);
    r.point.twr = 50.0;
    rejected(r);

    r = validSweep(4);
    r.spec.boards.clear();
    rejected(r);

    r = validSweep(5);
    r.spec.capacityHiMah = Quantity<MilliampHours>(100.0);
    rejected(r); // hi < lo

    r = validSweep(6);
    r.spec.capacityStepMah = Quantity<MilliampHours>(0.1);
    rejected(r); // below minimum step

    // A hostile capacity axis must be rejected analytically, fast,
    // without walking the axis.
    r = validSweep(7);
    r.spec.capacityHiMah = Quantity<MilliampHours>(1e300);
    r.spec.capacityStepMah = Quantity<MilliampHours>(1.0);
    rejected(r);

    // Over the grid cap.
    r = validSweep(8);
    r.spec.capacityLoMah = Quantity<MilliampHours>(1.0);
    r.spec.capacityHiMah = Quantity<MilliampHours>(300001.0);
    r.spec.capacityStepMah = Quantity<MilliampHours>(1.0);
    rejected(r);

    EXPECT_EQ(planner.stats().executed, 0u);
}

TEST(ServePlanner, ExecuteMatchesEngineRun)
{
    engine::SweepEngine engine{engine::EngineOptions{.threads = 1}};
    QueryPlanner planner{engine};
    const Request request = validSweep(21);

    const engine::SweepResult expected = engine.run(request.spec);
    const std::string reply = planner.execute(request);
    EXPECT_EQ(reply,
              serializeSweepReply(request.id, expected.points,
                                  expected.feasible.size(),
                                  expected.frontier));
}

TEST(ServePlanner, SweepAndParetoShareOneCoalescingKey)
{
    engine::SweepEngine engine{engine::EngineOptions{.threads = 1}};
    QueryPlanner planner{engine};

    // Same spec, different kind: pareto reuses the sweep's batch via
    // the memo cache (serial here, so the second run is all hits).
    Request sweep = validSweep(1);
    Request pareto = validSweep(2);
    pareto.kind = QueryKind::Pareto;

    planner.execute(sweep);
    const engine::CacheCounters after_sweep =
        engine.cacheCounters();
    planner.execute(pareto);
    const engine::CacheCounters after_pareto =
        engine.cacheCounters();
    EXPECT_EQ(after_pareto.misses, after_sweep.misses)
        << "pareto over the same spec re-solved points";
}

TEST(ServePlanner, ConcurrentIdenticalSweepsCoalesce)
{
    engine::SweepEngine engine{engine::EngineOptions{.threads = 2}};
    QueryPlanner planner{engine};
    const Request request = validSweep(33);
    constexpr int kCallers = 8;

    std::vector<std::string> replies(kCallers);
    std::vector<std::thread> threads;
    threads.reserve(kCallers);
    for (int i = 0; i < kCallers; ++i)
        threads.emplace_back([&, i] {
            replies[static_cast<std::size_t>(i)] =
                planner.execute(request);
        });
    for (std::thread &t : threads)
        t.join();

    for (int i = 1; i < kCallers; ++i)
        EXPECT_EQ(replies[static_cast<std::size_t>(i)], replies[0]);

    const PlannerStats stats = planner.stats();
    EXPECT_EQ(stats.executed, static_cast<std::uint64_t>(kCallers));
    EXPECT_GE(stats.batchesLed, 1u);
    EXPECT_EQ(stats.batchesLed + stats.coalesced,
              static_cast<std::uint64_t>(kCallers));
    // The race is real, so followers are not guaranteed, but points
    // were solved exactly once: every batch after the first is pure
    // cache hits.
    const engine::CacheCounters cache = engine.cacheCounters();
    EXPECT_EQ(cache.misses, request.spec.pointCount());
}

TEST(ServePlanner, AcceptsValidExploreAndRiskQueries)
{
    engine::SweepEngine engine{engine::EngineOptions{.threads = 1}};
    QueryPlanner planner{engine};
    ErrorReply err;
    EXPECT_TRUE(planner.validate(validExplore(1), err))
        << err.message;
    EXPECT_TRUE(planner.validate(validRisk(2), err)) << err.message;
}

TEST(ServePlanner, RejectsExploreAndRiskViolations)
{
    engine::SweepEngine engine{engine::EngineOptions{.threads = 1}};
    QueryPlanner planner{engine};

    const auto rejected = [&](const Request &request,
                              const char *label) {
        ErrorReply err;
        EXPECT_FALSE(planner.validate(request, err)) << label;
        EXPECT_EQ(err.code, ErrorCode::InvalidRequest) << label;
    };

    // Everything the explore/risk layer would fatal() on must be
    // pre-rejected here: an admitted request can never crash the
    // worker.
    Request r = validExplore(1);
    r.explore.space.axes.clear();
    rejected(r, "empty space");

    r = validExplore(2);
    r.explore.space.axes.push_back(explore::cellsAxis({3}));
    rejected(r, "duplicate axis kind");

    r = validExplore(3);
    r.explore.options.maxEvaluations = 0;
    rejected(r, "zero evaluation budget");

    r = validExplore(4);
    r.explore.options.maxEvaluations = 1u << 30;
    rejected(r, "budget over the service cap");

    r = validExplore(5);
    r.explore.options.initialSamples = 0;
    rejected(r, "zero initial samples");

    r = validExplore(6);
    r.explore.options.roundEvaluations = 0;
    rejected(r, "zero round evaluations");

    r = validExplore(7);
    r.explore.space.axes[0] =
        explore::capacityAxis(Quantity<MilliampHours>(-100.0),
                              Quantity<MilliampHours>(50.0), 3);
    rejected(r, "negative capacity axis");

    r = validExplore(8);
    r.explore.space.base.twr = 50.0;
    rejected(r, "base twr out of range");

    r = validRisk(9);
    r.risk.options.samples = 0;
    rejected(r, "zero samples");

    r = validRisk(10);
    r.risk.options.samples = 1u << 30;
    rejected(r, "samples over the service cap");

    r = validRisk(11);
    r.risk.options.scatterReplicates = 1;
    rejected(r, "scatter replicates below 2");

    r = validRisk(12);
    r.risk.quantiles = {1.5};
    rejected(r, "quantile outside [0, 1]");

    r = validRisk(13);
    r.risk.gates[0].minProbability = -0.5;
    rejected(r, "gate probability outside [0, 1]");

    EXPECT_EQ(planner.stats().executed, 0u);
}

TEST(ServePlanner, ExploreExecuteMatchesDriverRun)
{
    engine::SweepEngine engine{engine::EngineOptions{.threads = 1}};
    QueryPlanner planner{engine};
    const Request request = validExplore(41);

    // An identical driver run over an identical engine must produce
    // the byte-identical reply (exploration is deterministic; the
    // planner adds nothing but serialization).
    engine::SweepEngine oracle_engine{
        engine::EngineOptions{.threads = 1}};
    explore::AdaptiveDriver driver(oracle_engine,
                                   request.explore.options);
    const explore::ExploreResult expected =
        driver.run(request.explore.space);

    const std::string reply = planner.execute(request);
    EXPECT_EQ(reply, serializeExploreReply(request.id, expected));
    EXPECT_NE(reply.find("\"frontier\""), std::string::npos);
    EXPECT_NE(reply.find("\"converged\""), std::string::npos);
}

TEST(ServePlanner, RiskExecuteCarriesGatesAndQuantiles)
{
    engine::SweepEngine engine{engine::EngineOptions{.threads = 1}};
    QueryPlanner planner{engine};
    const Request request = validRisk(43);

    const explore::RiskOutcome expected =
        explore::runRiskQuery(request.risk);
    const std::string reply = planner.execute(request);
    EXPECT_EQ(reply, serializeRiskReply(request.id, expected,
                                        request.risk.quantiles));
    EXPECT_NE(reply.find("\"feasible_fraction\""),
              std::string::npos);
    EXPECT_NE(reply.find("\"flight_time_min\""), std::string::npos);
    EXPECT_NE(reply.find("\"all_pass\""), std::string::npos);
}

TEST(ServePlanner, ConcurrentIdenticalExploresCoalesce)
{
    engine::SweepEngine engine{engine::EngineOptions{.threads = 2}};
    QueryPlanner planner{engine};
    const Request request = validExplore(51);
    constexpr int kCallers = 6;

    std::vector<std::string> replies(kCallers);
    std::vector<std::thread> threads;
    threads.reserve(kCallers);
    for (int i = 0; i < kCallers; ++i)
        threads.emplace_back([&, i] {
            replies[static_cast<std::size_t>(i)] =
                planner.execute(request);
        });
    for (std::thread &t : threads)
        t.join();

    for (int i = 1; i < kCallers; ++i)
        EXPECT_EQ(replies[static_cast<std::size_t>(i)], replies[0]);

    const PlannerStats stats = planner.stats();
    EXPECT_EQ(stats.executed, static_cast<std::uint64_t>(kCallers));
    EXPECT_GE(stats.batchesLed, 1u);
    EXPECT_EQ(stats.batchesLed + stats.coalesced,
              static_cast<std::uint64_t>(kCallers));
    // Whatever the leader/follower split, no caller re-solved a
    // design: every run after the first is pure cache hits.
    const engine::CacheCounters cache = engine.cacheCounters();
    EXPECT_LE(cache.misses, request.explore.options.maxEvaluations);
}

TEST(ServePlanner, ConcurrentRunsAreSerializedByTheEngine)
{
    // Distinct specs from many threads: the engine's internal run
    // mutex must order them without torn results.
    engine::SweepEngine engine{engine::EngineOptions{.threads = 2}};
    QueryPlanner planner{engine};
    constexpr int kCallers = 6;

    std::vector<std::string> replies(kCallers);
    std::vector<std::string> expected(kCallers);
    std::vector<Request> requests;
    for (int i = 0; i < kCallers; ++i) {
        Request request = validSweep(static_cast<std::uint64_t>(i));
        request.spec.capacityLoMah =
            Quantity<MilliampHours>(1500.0 + 100.0 * i);
        requests.push_back(request);
    }
    std::vector<std::thread> threads;
    for (int i = 0; i < kCallers; ++i)
        threads.emplace_back([&, i] {
            replies[static_cast<std::size_t>(i)] = planner.execute(
                requests[static_cast<std::size_t>(i)]);
        });
    for (std::thread &t : threads)
        t.join();

    for (int i = 0; i < kCallers; ++i) {
        const Request &request =
            requests[static_cast<std::size_t>(i)];
        const engine::SweepResult oracle = engine.run(request.spec);
        EXPECT_EQ(replies[static_cast<std::size_t>(i)],
                  serializeSweepReply(request.id, oracle.points,
                                      oracle.feasible.size(),
                                      oracle.frontier))
            << "caller " << i;
    }
}
