#include "serve/server.hh"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "dse/sweep.hh"
#include "dse/weight_closure.hh"
#include "engine/pareto.hh"
#include "serve/transport.hh"
#include "util/json.hh"

using namespace dronedse;
using namespace dronedse::serve;

namespace {

Request
designRequest(std::uint64_t id, double capacity = 3000.0)
{
    Request request;
    request.id = id;
    request.kind = QueryKind::Design;
    request.point.capacityMah = Quantity<MilliampHours>(capacity);
    return request;
}

SweepSpec
smallSpec()
{
    SweepSpec spec;
    spec.boards = {ComputeBoardRecord{
        "Basic 3W chip", BoardClass::Basic, 20.0, 3.0}};
    spec.cells = {3, 4};
    spec.capacityLoMah = Quantity<MilliampHours>(2000.0);
    spec.capacityHiMah = Quantity<MilliampHours>(4000.0);
    spec.capacityStepMah = Quantity<MilliampHours>(500.0);
    return spec;
}

} // namespace

TEST(ServeTransport, DesignReplyMatchesSerialOracle)
{
    ServiceOptions options;
    options.engine.threads = 2;
    Service service{options};
    LocalTransport transport{service};

    const Request request = designRequest(5, 2200.0);
    const std::string reply =
        transport.roundTrip(serializeRequest(request));
    EXPECT_EQ(reply, serializeDesignReply(
                         request.id, solveDesign(request.point)));
}

TEST(ServeTransport, SweepReplyMatchesRunSweepSerialOracle)
{
    ServiceOptions options;
    options.engine.threads = 2;
    Service service{options};
    LocalTransport transport{service};

    Request request;
    request.id = 17;
    request.kind = QueryKind::Sweep;
    request.spec = smallSpec();

    // Oracle: the plain serial sweep path, no engine, no cache.
    const std::vector<DesignResult> points =
        runSweepSerial(request.spec);
    std::size_t feasible = 0;
    for (const DesignResult &p : points)
        feasible += p.feasible ? 1 : 0;
    const std::string expected = serializeSweepReply(
        request.id, points, feasible,
        engine::paretoFrontier(points));

    EXPECT_EQ(transport.roundTrip(serializeRequest(request)),
              expected);

    // Pareto over the same spec agrees with the same oracle.
    Request pareto = request;
    pareto.id = 18;
    pareto.kind = QueryKind::Pareto;
    EXPECT_EQ(transport.roundTrip(serializeRequest(pareto)),
              serializeParetoReply(pareto.id, points,
                                   engine::paretoFrontier(points)));
}

TEST(ServeTransport, RejectionsCompleteImmediately)
{
    Service service{ServiceOptions{}};
    LocalTransport transport{service};
    transport.submit("{not json");
    ASSERT_EQ(transport.exchanges().size(), 1u);
    EXPECT_TRUE(transport.exchanges()[0].rejected);
    EXPECT_NE(transport.exchanges()[0].reply.find("\"parse_error\""),
              std::string::npos);
    EXPECT_EQ(service.admission().depth(), 0u);
}

// The ISSUE 5 acceptance test: under 2x overload the admission
// controller must shed rather than let p99 latency grow without
// bound.  Fully deterministic: virtual clock, fixed service time.
TEST(ServeOverload, ShedsInsteadOfUnboundedLatency)
{
    constexpr double kServiceTime = 0.005; // 200 q/s capacity
    constexpr std::size_t kQueueCap = 64;

    ServiceOptions options;
    options.engine.threads = 1;
    options.admission.queueCapacity = kQueueCap;
    options.admission.interactive = {1e9, 1e9};
    options.admission.batch = {1e9, 1e9};
    Service service{options};
    LocalTransport transport{service, kServiceTime};

    // Closed service loop at 2x capacity: two arrivals (one
    // interactive, one batch) per completed query.
    std::map<std::uint64_t, double> submit_t;
    std::uint64_t next_id = 0;
    std::size_t max_depth = 0;
    for (int i = 0; i < 3000; ++i) {
        for (int k = 0; k < 2; ++k) {
            Request request = designRequest(next_id++);
            request.cls = k == 0 ? QueryClass::Interactive
                                 : QueryClass::Batch;
            submit_t[request.id] = transport.now();
            transport.submit(serializeRequest(request));
        }
        transport.drain(1);
        max_depth = std::max(max_depth, service.admission().depth());
    }
    transport.drain();

    // The bounded queue never grew past its capacity.
    EXPECT_LE(max_depth, kQueueCap);

    // The controller escalated, and sheds hit the batch class while
    // interactive queries kept flowing.
    const std::vector<ShedTransition> transitions =
        service.admission().transitions();
    ASSERT_FALSE(transitions.empty());
    EXPECT_EQ(transitions[0].from, ShedState::Nominal);
    EXPECT_EQ(transitions[0].to, ShedState::ShedLowPriority);
    const AdmissionStats stats = service.admission().stats();
    EXPECT_GT(stats.shedClass, 0u);
    EXPECT_GT(stats.admitted, 0u);
    EXPECT_GT(stats.rejected(), 0u);

    // Every completed (non-rejected) query's end-to-end latency is
    // bounded by the queue: at most kQueueCap queued ahead plus its
    // own service time.  This is the "p99 does not grow without
    // bound" assertion — with shedding disabled the closed loop
    // above would push waits toward 3000 * kServiceTime.
    const double bound =
        (static_cast<double>(kQueueCap) + 1.0) * kServiceTime + 1e-9;
    std::vector<double> latencies;
    for (const LocalExchange &exchange : transport.exchanges()) {
        if (exchange.rejected)
            continue;
        const auto doc = parseJson(exchange.reply);
        ASSERT_TRUE(doc.has_value());
        const std::uint64_t id = static_cast<std::uint64_t>(
            doc->find("id")->asNumber());
        const double latency = exchange.t - submit_t.at(id);
        EXPECT_LE(latency, bound);
        latencies.push_back(latency);
    }
    ASSERT_GT(latencies.size(), 100u);
}

// --- TCP smoke test ------------------------------------------------

namespace {

class TestClient
{
  public:
    explicit TestClient(std::uint16_t port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd_, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        EXPECT_EQ(::connect(fd_,
                            reinterpret_cast<sockaddr *>(&addr),
                            sizeof addr),
                  0);
    }

    ~TestClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    std::string roundTrip(const std::string &frame)
    {
        const std::string wire = frame + "\n";
        EXPECT_EQ(::write(fd_, wire.data(), wire.size()),
                  static_cast<ssize_t>(wire.size()));
        while (true) {
            const std::size_t newline = buffer_.find('\n');
            if (newline != std::string::npos) {
                std::string reply = buffer_.substr(0, newline);
                buffer_.erase(0, newline + 1);
                return reply;
            }
            char chunk[4096];
            const ssize_t n = ::read(fd_, chunk, sizeof chunk);
            if (n <= 0)
                return buffer_;
            buffer_.append(chunk, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd_ = -1;
    std::string buffer_;
};

} // namespace

TEST(ServeServer, TcpRoundTripMatchesOracle)
{
    ServerOptions options;
    options.service.engine.threads = 1;
    options.workers = 2;
    Server server{options};
    const std::uint16_t port = server.start();
    ASSERT_GT(port, 0);

    TestClient client{port};
    for (std::uint64_t id = 1; id <= 8; ++id) {
        const Request request =
            designRequest(id, 2000.0 + 250.0 * static_cast<double>(id));
        EXPECT_EQ(client.roundTrip(serializeRequest(request)),
                  serializeDesignReply(request.id,
                                       solveDesign(request.point)));
    }

    // Malformed frames get typed errors on the same connection.
    const std::string bad = client.roundTrip("{broken");
    EXPECT_NE(bad.find("\"ok\": false"), std::string::npos);
    EXPECT_NE(bad.find("\"parse_error\""), std::string::npos);

    // And the connection still works afterwards.
    const Request again = designRequest(99);
    EXPECT_EQ(client.roundTrip(serializeRequest(again)),
              serializeDesignReply(again.id,
                                   solveDesign(again.point)));
    server.stop();
}

TEST(ServeServer, ConcurrentClientsGetConsistentReplies)
{
    ServerOptions options;
    options.service.engine.threads = 2;
    options.workers = 2;
    Server server{options};
    const std::uint16_t port = server.start();

    constexpr int kClients = 4;
    std::vector<std::thread> threads;
    std::vector<int> failures(kClients, 0);
    for (int c = 0; c < kClients; ++c)
        threads.emplace_back([&, c] {
            TestClient client{port};
            for (std::uint64_t id = 0; id < 50; ++id) {
                const Request request = designRequest(
                    id, 1500.0 + 100.0 * static_cast<double>(
                                     (id + static_cast<std::uint64_t>(
                                               c)) %
                                     20));
                const std::string expected = serializeDesignReply(
                    request.id, solveDesign(request.point));
                if (client.roundTrip(serializeRequest(request)) !=
                    expected)
                    ++failures[static_cast<std::size_t>(c)];
            }
        });
    for (std::thread &t : threads)
        t.join();
    for (int c = 0; c < kClients; ++c)
        EXPECT_EQ(failures[static_cast<std::size_t>(c)], 0)
            << "client " << c;
    server.stop();
}
