#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "codesign/codesign.hh"
#include "engine/engine.hh"
#include "serve/planner.hh"
#include "serve/request.hh"
#include "serve/server.hh"
#include "serve/transport.hh"

using namespace dronedse;
using namespace dronedse::serve;

namespace {

/** A small mission so serve tests stay fast (27 grid points). */
codesign::MissionSpec
tinyMission()
{
    codesign::MissionSpec mission;
    mission.name = "tiny";
    mission.targetRateHz = 15.0;
    mission.wheelbasesMm = {Quantity<Millimeters>(450.0)};
    mission.cells = {3};
    mission.capacityLoMah = Quantity<MilliampHours>(2000.0);
    mission.capacityHiMah = Quantity<MilliampHours>(3000.0);
    mission.capacityStepMah = Quantity<MilliampHours>(500.0);
    return mission;
}

Request
codesignRequest(std::uint64_t id)
{
    Request request;
    request.id = id;
    request.kind = QueryKind::Codesign;
    request.mission = tinyMission();
    return request;
}

} // namespace

TEST(ServeCodesign, RequestSerializationIsAFixedPoint)
{
    const Request request = codesignRequest(7);
    const std::string canonical = serializeRequest(request);

    Request parsed;
    ErrorReply err;
    ASSERT_TRUE(parseRequest(canonical, parsed, err))
        << err.message;
    EXPECT_EQ(parsed.kind, QueryKind::Codesign);
    EXPECT_EQ(parsed.mission.name, "tiny");
    EXPECT_EQ(serializeRequest(parsed), canonical);
}

TEST(ServeCodesign, RoundTripMatchesDirectDriverOracle)
{
    // End-to-end through the wire protocol: the served reply must
    // be byte-identical to driving the search directly (which the
    // engine's determinism contract guarantees even though the
    // service runs its own engine at its own thread count).
    ServiceOptions options;
    options.engine.threads = 2;
    Service service{options};
    LocalTransport transport{service};

    const Request request = codesignRequest(11);
    const std::string reply =
        transport.roundTrip(serializeRequest(request));

    engine::SweepEngine engine{engine::EngineOptions{.threads = 1}};
    const codesign::CodesignDriver driver{engine};
    EXPECT_EQ(reply, serializeCodesignReply(
                         request.id, driver.run(request.mission)));
    EXPECT_NE(reply.find("\"kind\": \"codesign\""),
              std::string::npos);
    EXPECT_NE(reply.find("\"recommended\""), std::string::npos);
}

TEST(ServeCodesign, MalformedMissionsAreRejected)
{
    ServiceOptions options;
    options.engine.threads = 1;
    Service service{options};
    LocalTransport transport{service};

    const auto expect_invalid = [&](const std::string &frame) {
        const std::string reply = transport.roundTrip(frame);
        EXPECT_NE(reply.find("\"ok\": false"), std::string::npos)
            << frame;
        EXPECT_NE(reply.find("invalid_request"), std::string::npos)
            << frame;
    };

    // Missing mission object.
    expect_invalid(R"({"id": 1, "kind": "codesign"})");
    // Type violation caught by the parser.
    expect_invalid(
        R"({"id": 2, "kind": "codesign", "mission": )"
        R"({"target_rate_hz": "fast"}})");
    // Unknown activity spelling.
    expect_invalid(
        R"({"id": 3, "kind": "codesign", "mission": )"
        R"({"activity": "diving"}})");
    // Semantic violation caught by the planner.
    expect_invalid(
        R"({"id": 4, "kind": "codesign", "mission": )"
        R"({"target_rate_hz": -5}})");
    expect_invalid(
        R"({"id": 5, "kind": "codesign", "mission": )"
        R"({"wheelbases_mm": []}})");
    expect_invalid(
        R"({"id": 6, "kind": "codesign", "mission": )"
        R"({"capacity_lo_mah": 4000, "capacity_hi_mah": 2000}})");
}

TEST(ServeCodesign, IdenticalMissionsCoalesceSingleFlight)
{
    engine::SweepEngine engine{engine::EngineOptions{.threads = 2}};
    QueryPlanner planner{engine};
    const Request request = codesignRequest(21);
    constexpr int kCallers = 8;

    std::vector<std::string> replies(kCallers);
    std::vector<std::thread> threads;
    threads.reserve(kCallers);
    for (int i = 0; i < kCallers; ++i)
        threads.emplace_back([&, i] {
            replies[static_cast<std::size_t>(i)] =
                planner.execute(request);
        });
    for (std::thread &t : threads)
        t.join();

    for (int i = 1; i < kCallers; ++i)
        EXPECT_EQ(replies[static_cast<std::size_t>(i)], replies[0]);

    const PlannerStats stats = planner.stats();
    EXPECT_EQ(stats.executed, static_cast<std::uint64_t>(kCallers));
    EXPECT_GE(stats.batchesLed, 1u);
    EXPECT_EQ(stats.batchesLed + stats.coalesced,
              static_cast<std::uint64_t>(kCallers));
}
