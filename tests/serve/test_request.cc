#include "serve/request.hh"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "explore/space.hh"
#include "serve/service.hh"
#include "util/rng.hh"

using namespace dronedse;
using namespace dronedse::serve;

namespace {

Request
designRequest(std::uint64_t id)
{
    Request request;
    request.id = id;
    request.kind = QueryKind::Design;
    request.point.wheelbaseMm = Quantity<Millimeters>(330.0);
    request.point.cells = 4;
    request.point.capacityMah = Quantity<MilliampHours>(2200.0);
    return request;
}

Request
sweepRequest(std::uint64_t id)
{
    Request request;
    request.id = id;
    request.kind = QueryKind::Sweep;
    request.cls = QueryClass::Batch;
    request.spec.boards = {ComputeBoardRecord{
        "Basic 3W chip", BoardClass::Basic, 20.0, 3.0}};
    request.spec.cells = {3, 4};
    request.spec.capacityLoMah = Quantity<MilliampHours>(2000.0);
    request.spec.capacityHiMah = Quantity<MilliampHours>(4000.0);
    request.spec.capacityStepMah = Quantity<MilliampHours>(500.0);
    return request;
}

Request
exploreRequest(std::uint64_t id)
{
    Request request;
    request.id = id;
    request.kind = QueryKind::Explore;
    request.explore.space.axes = {
        explore::capacityAxis(Quantity<MilliampHours>(1000.0),
                              Quantity<MilliampHours>(500.0), 5),
        explore::cellsAxis({3, 4}),
        explore::twrAxis(2.0, 0.5, 3),
    };
    request.explore.options.maxEvaluations = 20;
    request.explore.options.initialSamples = 8;
    return request;
}

Request
riskRequest(std::uint64_t id)
{
    Request request;
    request.id = id;
    request.kind = QueryKind::Risk;
    request.risk.point.capacityMah =
        Quantity<MilliampHours>(2200.0);
    request.risk.options.samples = 64;
    request.risk.gates = {explore::GateSpec{
        explore::GateMetric::FlightTimeMin, explore::GateOp::AtLeast,
        10.0, 0.9}};
    request.risk.quantiles = {0.1, 0.5, 0.9};
    return request;
}

} // namespace

TEST(ServeRequest, DesignRoundTripIsByteIdentical)
{
    const Request original = designRequest(7);
    const std::string frame = serializeRequest(original);
    Request parsed;
    ErrorReply err;
    ASSERT_TRUE(parseRequest(frame, parsed, err)) << err.message;
    EXPECT_EQ(parsed.id, 7u);
    EXPECT_EQ(parsed.kind, QueryKind::Design);
    EXPECT_EQ(parsed.cls, QueryClass::Interactive);
    EXPECT_EQ(serializeRequest(parsed), frame);
}

TEST(ServeRequest, SweepRoundTripIsByteIdentical)
{
    const Request original = sweepRequest(11);
    const std::string frame = serializeRequest(original);
    Request parsed;
    ErrorReply err;
    ASSERT_TRUE(parseRequest(frame, parsed, err)) << err.message;
    EXPECT_EQ(parsed.kind, QueryKind::Sweep);
    EXPECT_EQ(parsed.cls, QueryClass::Batch);
    EXPECT_EQ(parsed.spec.cells, (std::vector<int>{3, 4}));
    EXPECT_EQ(serializeRequest(parsed), frame);
}

TEST(ServeRequest, MissingFieldsKeepDefaults)
{
    Request parsed;
    ErrorReply err;
    ASSERT_TRUE(parseRequest(
        "{\"id\": 3, \"kind\": \"design\", \"point\": {}}", parsed,
        err))
        << err.message;
    const DesignInputs defaults;
    EXPECT_EQ(parsed.point.cells, defaults.cells);
    EXPECT_DOUBLE_EQ(parsed.point.wheelbaseMm.value(),
                     defaults.wheelbaseMm.value());
    EXPECT_EQ(parsed.cls, QueryClass::Interactive);
}

TEST(ServeRequest, ErrorsEchoTheReadableId)
{
    Request parsed;
    ErrorReply err;
    EXPECT_FALSE(parseRequest(
        "{\"id\": 42, \"kind\": \"design\"}", parsed, err));
    EXPECT_EQ(parsed.id, 42u);
    EXPECT_EQ(err.code, ErrorCode::InvalidRequest);
    const std::string reply = serializeErrorReply(parsed.id, err);
    EXPECT_NE(reply.find("\"id\": 42"), std::string::npos);
    EXPECT_NE(reply.find("\"invalid_request\""), std::string::npos);
}

TEST(ServeRequest, FuzzSerializeParseSerialize)
{
    Rng rng(1609);
    for (int trial = 0; trial < 300; ++trial) {
        Request request;
        request.id = static_cast<std::uint64_t>(
            rng.uniformInt(0, 1'000'000'000));
        request.cls = rng.uniform() < 0.5 ? QueryClass::Interactive
                                          : QueryClass::Batch;
        const int kind = static_cast<int>(rng.uniformInt(0, 2));
        if (kind == 0) {
            request.kind = QueryKind::Design;
            request.point.wheelbaseMm = Quantity<Millimeters>(
                rng.uniform(80.0, 900.0));
            request.point.cells =
                static_cast<int>(rng.uniformInt(1, 6));
            request.point.capacityMah = Quantity<MilliampHours>(
                rng.uniform(500.0, 9000.0));
            request.point.twr = rng.uniform(1.0, 6.0);
            request.point.payloadG =
                Quantity<Grams>(rng.uniform(0.0, 300.0));
            if (rng.uniform() < 0.5)
                request.point.activity =
                    FlightActivity::Maneuvering;
        } else {
            request.kind = kind == 1 ? QueryKind::Sweep
                                     : QueryKind::Pareto;
            const int n_frames =
                static_cast<int>(rng.uniformInt(1, 3));
            request.spec.airframes.clear();
            for (int i = 0; i < n_frames; ++i)
                request.spec.airframes.push_back(SweepAirframe{
                    Quantity<Millimeters>(rng.uniform(100.0, 700.0)),
                    Quantity<Inches>(0.0)});
            request.spec.boards = {ComputeBoardRecord{
                "b" + std::to_string(trial), BoardClass::Improved,
                rng.uniform(5.0, 200.0), rng.uniform(0.5, 30.0)}};
            request.spec.cells = {
                static_cast<int>(rng.uniformInt(1, 6))};
            request.spec.twr = rng.uniform(1.0, 6.0);
        }
        const std::string once = serializeRequest(request);
        Request parsed;
        ErrorReply err;
        ASSERT_TRUE(parseRequest(once, parsed, err))
            << "trial " << trial << ": " << err.message << "\n"
            << once;
        EXPECT_EQ(serializeRequest(parsed), once)
            << "trial " << trial;
    }
}

TEST(ServeRequest, ExploreRoundTripIsByteIdentical)
{
    Request original = exploreRequest(13);
    // Exercise every axis kind in one frame.
    original.explore.space.axes.push_back(
        explore::wheelbaseAxis(Quantity<Millimeters>(300.0),
                               Quantity<Millimeters>(50.0), 4));
    original.explore.space.axes.push_back(
        explore::boardAxis({ComputeBoardRecord{
            "Basic 3W chip", BoardClass::Basic, 20.0, 3.0}}));
    original.explore.space.axes.push_back(explore::activityAxis(
        {FlightActivity::Hovering, FlightActivity::Maneuvering}));
    original.explore.space.axes.push_back(explore::payloadAxis(
        Quantity<Grams>(0.0), Quantity<Grams>(100.0), 3));
    original.explore.options.sampler = explore::SamplerKind::Grid;
    original.explore.options.seed = 99;

    const std::string frame = serializeRequest(original);
    Request parsed;
    ErrorReply err;
    ASSERT_TRUE(parseRequest(frame, parsed, err)) << err.message;
    EXPECT_EQ(parsed.kind, QueryKind::Explore);
    EXPECT_EQ(parsed.explore.space.axes.size(), 7u);
    EXPECT_EQ(parsed.explore.options.sampler,
              explore::SamplerKind::Grid);
    EXPECT_EQ(parsed.explore.options.seed, 99u);
    EXPECT_EQ(serializeRequest(parsed), frame);
}

TEST(ServeRequest, RiskRoundTripIsByteIdentical)
{
    const Request original = riskRequest(17);
    const std::string frame = serializeRequest(original);
    Request parsed;
    ErrorReply err;
    ASSERT_TRUE(parseRequest(frame, parsed, err)) << err.message;
    EXPECT_EQ(parsed.kind, QueryKind::Risk);
    ASSERT_EQ(parsed.risk.gates.size(), 1u);
    EXPECT_EQ(parsed.risk.gates[0].metric,
              explore::GateMetric::FlightTimeMin);
    EXPECT_EQ(parsed.risk.gates[0].op, explore::GateOp::AtLeast);
    EXPECT_EQ(parsed.risk.quantiles,
              (std::vector<double>{0.1, 0.5, 0.9}));
    EXPECT_EQ(serializeRequest(parsed), frame);
}

TEST(ServeRequest, ExploreOptionsDefaultsSurviveOmission)
{
    // An explore frame with only a space: every option keeps its
    // compiled-in default, and the canonical form round-trips.
    Request parsed;
    ErrorReply err;
    ASSERT_TRUE(parseRequest(
        "{\"id\": 5, \"kind\": \"explore\", \"space\": {\"axes\": "
        "[{\"axis\": \"cells\", \"values\": [3, 4]}]}}",
        parsed, err))
        << err.message;
    const explore::ExploreOptions defaults;
    EXPECT_EQ(parsed.explore.options.sampler, defaults.sampler);
    EXPECT_EQ(parsed.explore.options.seed, defaults.seed);
    EXPECT_EQ(parsed.explore.options.initialSamples,
              defaults.initialSamples);
    EXPECT_EQ(parsed.explore.options.roundEvaluations,
              defaults.roundEvaluations);
    EXPECT_EQ(parsed.explore.options.maxEvaluations,
              defaults.maxEvaluations);
    const std::string canonical = serializeRequest(parsed);
    Request reparsed;
    ASSERT_TRUE(parseRequest(canonical, reparsed, err))
        << err.message;
    EXPECT_EQ(serializeRequest(reparsed), canonical);
}

TEST(ServeRequest, FuzzExploreAndRiskSerializeParseSerialize)
{
    Rng rng(4242);
    for (int trial = 0; trial < 200; ++trial) {
        Request request;
        request.id = static_cast<std::uint64_t>(
            rng.uniformInt(0, 1'000'000'000));
        if (rng.uniform() < 0.5) {
            request.kind = QueryKind::Explore;
            request.explore.space.axes.push_back(
                explore::capacityAxis(
                    Quantity<MilliampHours>(
                        rng.uniform(500.0, 3000.0)),
                    Quantity<MilliampHours>(
                        rng.uniform(50.0, 500.0)),
                    static_cast<std::size_t>(
                        rng.uniformInt(1, 12))));
            if (rng.uniform() < 0.5)
                request.explore.space.axes.push_back(
                    explore::cellsAxis(
                        {static_cast<int>(rng.uniformInt(1, 6))}));
            if (rng.uniform() < 0.5)
                request.explore.space.axes.push_back(
                    explore::twrAxis(rng.uniform(1.5, 3.0),
                                     rng.uniform(0.1, 1.0),
                                     static_cast<std::size_t>(
                                         rng.uniformInt(1, 5))));
            request.explore.options.seed = static_cast<std::uint64_t>(
                rng.uniformInt(0, 1 << 20));
            request.explore.options.maxEvaluations =
                static_cast<std::size_t>(rng.uniformInt(1, 5000));
        } else {
            request.kind = QueryKind::Risk;
            request.risk.point.capacityMah = Quantity<MilliampHours>(
                rng.uniform(500.0, 9000.0));
            request.risk.point.twr = rng.uniform(1.0, 6.0);
            request.risk.options.seed = static_cast<std::uint64_t>(
                rng.uniformInt(0, 1 << 20));
            request.risk.options.samples = static_cast<std::size_t>(
                rng.uniformInt(1, 2048));
            const int n_gates =
                static_cast<int>(rng.uniformInt(0, 3));
            for (int g = 0; g < n_gates; ++g)
                request.risk.gates.push_back(explore::GateSpec{
                    rng.uniform() < 0.5
                        ? explore::GateMetric::FlightTimeMin
                        : explore::GateMetric::TotalWeightG,
                    rng.uniform() < 0.5 ? explore::GateOp::AtLeast
                                        : explore::GateOp::AtMost,
                    rng.uniform(1.0, 1000.0),
                    rng.uniform(0.0, 1.0)});
            const int n_q = static_cast<int>(rng.uniformInt(0, 4));
            for (int q = 0; q < n_q; ++q)
                request.risk.quantiles.push_back(
                    rng.uniform(0.0, 1.0));
        }
        const std::string once = serializeRequest(request);
        Request parsed;
        ErrorReply err;
        ASSERT_TRUE(parseRequest(once, parsed, err))
            << "trial " << trial << ": " << err.message << "\n"
            << once;
        EXPECT_EQ(serializeRequest(parsed), once)
            << "trial " << trial;
    }
}

TEST(ServeRequest, MalformedExploreAndRiskFrames)
{
    const auto rejected = [](const std::string &frame,
                             const char *label) {
        Request parsed;
        ErrorReply err;
        EXPECT_FALSE(parseRequest(frame, parsed, err)) << label;
        EXPECT_EQ(err.code, ErrorCode::InvalidRequest) << label;
    };
    rejected("{\"id\": 1, \"kind\": \"explore\"}", "missing space");
    rejected("{\"id\": 1, \"kind\": \"explore\", \"space\": "
             "{\"axes\": \"all\"}}",
             "axes not an array");
    rejected("{\"id\": 1, \"kind\": \"explore\", \"space\": "
             "{\"axes\": [{\"axis\": \"warp\"}]}}",
             "unknown axis kind");
    rejected("{\"id\": 1, \"kind\": \"explore\", \"space\": "
             "{\"axes\": [{\"axis\": \"cells\", \"values\": [3]}]}, "
             "\"options\": {\"sampler\": \"psychic\"}}",
             "unknown sampler");
    rejected("{\"id\": 1, \"kind\": \"risk\"}", "missing point");
    rejected("{\"id\": 1, \"kind\": \"risk\", \"point\": {}, "
             "\"quantiles\": [\"median\"]}",
             "quantile not a number");
    rejected("{\"id\": 1, \"kind\": \"risk\", \"point\": {}, "
             "\"gates\": [{\"metric\": \"karma\"}]}",
             "unknown gate metric");
}

// --- malformed-frame battery (ISSUE 5 satellite) -------------------
//
// Every frame must map to a typed error reply, and none may change
// server-side state: no query executed, nothing admitted to the
// queue, no engine work.

TEST(ServeRequest, MalformedFrameBattery)
{
    struct Case
    {
        const char *label;
        std::string frame;
        const char *expect_code;
    };
    const std::string valid = serializeRequest(designRequest(1));
    std::vector<Case> cases = {
        {"empty frame", "", "parse_error"},
        {"truncated JSON", valid.substr(0, valid.size() / 2),
         "parse_error"},
        {"not an object", "[1, 2, 3]", "parse_error"},
        {"bare garbage", "hello there", "parse_error"},
        {"NaN field",
         "{\"id\": 1, \"kind\": \"design\", \"point\": "
         "{\"twr\": NaN}}",
         "parse_error"},
        {"Infinity field",
         "{\"id\": 1, \"kind\": \"design\", \"point\": "
         "{\"capacity_mah\": Infinity}}",
         "parse_error"},
        {"missing id", "{\"kind\": \"design\", \"point\": {}}",
         "invalid_request"},
        {"fractional id",
         "{\"id\": 1.5, \"kind\": \"design\", \"point\": {}}",
         "invalid_request"},
        {"negative id",
         "{\"id\": -4, \"kind\": \"design\", \"point\": {}}",
         "invalid_request"},
        {"unknown query kind",
         "{\"id\": 2, \"kind\": \"teleport\", \"point\": {}}",
         "invalid_request"},
        {"unknown class",
         "{\"id\": 2, \"kind\": \"design\", \"class\": \"vip\", "
         "\"point\": {}}",
         "invalid_request"},
        {"wrong type for point",
         "{\"id\": 2, \"kind\": \"design\", \"point\": 7}",
         "invalid_request"},
        {"wrong type for field",
         "{\"id\": 2, \"kind\": \"design\", \"point\": "
         "{\"cells\": \"four\"}}",
         "invalid_request"},
        {"unknown esc class",
         "{\"id\": 2, \"kind\": \"design\", \"point\": "
         "{\"esc_class\": \"warp\"}}",
         "invalid_request"},
        {"spec for design missing",
         "{\"id\": 2, \"kind\": \"sweep\"}", "invalid_request"},
    };
    // Oversized line: rejected by the service's frame cap.
    Case oversized{"oversized line",
                   "{\"id\": 1, \"kind\": \"design\", \"pad\": \"" +
                       std::string(3000, 'x') + "\", \"point\": {}}",
                   "too_large"};

    ServiceOptions options;
    options.engine.threads = 1;
    options.maxFrameBytes = 2048;
    Service service{options};

    cases.push_back(oversized);
    double t = 0.0;
    for (const Case &c : cases) {
        const std::string reply = service.handleFrame(c.frame, t);
        t += 1e-3;
        EXPECT_NE(reply.find("\"ok\": false"), std::string::npos)
            << c.label << ": " << reply;
        EXPECT_NE(reply.find(std::string("\"") + c.expect_code +
                             "\""),
                  std::string::npos)
            << c.label << ": " << reply;
    }

    // No server-side state change: nothing executed, nothing
    // admitted, no engine work, no queue residue.
    EXPECT_EQ(service.planner().stats().executed, 0u);
    EXPECT_EQ(service.planner().stats().invalid, 0u);
    EXPECT_EQ(service.admission().stats().admitted, 0u);
    EXPECT_EQ(service.admission().depth(), 0u);
    const engine::CacheCounters cache =
        service.engine().cacheCounters();
    EXPECT_EQ(cache.hits + cache.misses, 0u);

    // And the service still answers a valid frame normally.
    const std::string ok_reply = service.handleFrame(valid, t);
    EXPECT_NE(ok_reply.find("\"ok\": true"), std::string::npos);
    EXPECT_EQ(service.planner().stats().executed, 1u);
}
