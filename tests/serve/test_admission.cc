#include "serve/admission.hh"

#include <gtest/gtest.h>

#include <vector>

using namespace dronedse::serve;

namespace {

QueuedItem
item(QueryClass cls)
{
    QueuedItem out;
    out.request.cls = cls;
    return out;
}

/** Config with wide-open buckets so only the knob under test acts. */
AdmissionConfig
openConfig()
{
    AdmissionConfig config;
    config.interactive = {1e9, 1e9};
    config.batch = {1e9, 1e9};
    return config;
}

} // namespace

TEST(ServeAdmission, TokenBucketEnforcesBurstThenRate)
{
    AdmissionConfig config = openConfig();
    config.interactive = {10.0, 5.0}; // 10/s sustained, burst of 5
    AdmissionController admission{config};

    // The burst admits 5 back-to-back at t=0, then the bucket is dry.
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(admission.submit(item(QueryClass::Interactive), 0.0),
                  AdmitDecision::Admit)
            << i;
    EXPECT_EQ(admission.submit(item(QueryClass::Interactive), 0.0),
              AdmitDecision::RateLimited);

    // 0.5 s refills 5 tokens.
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(admission.submit(item(QueryClass::Interactive), 0.5),
                  AdmitDecision::Admit)
            << i;
    EXPECT_EQ(admission.submit(item(QueryClass::Interactive), 0.5),
              AdmitDecision::RateLimited);
    EXPECT_EQ(admission.stats().rateLimited, 2u);
}

TEST(ServeAdmission, ClassBucketsAreIndependent)
{
    AdmissionConfig config = openConfig();
    config.interactive = {10.0, 1.0};
    AdmissionController admission{config};

    EXPECT_EQ(admission.submit(item(QueryClass::Interactive), 0.0),
              AdmitDecision::Admit);
    EXPECT_EQ(admission.submit(item(QueryClass::Interactive), 0.0),
              AdmitDecision::RateLimited);
    // Batch has its own (open) bucket.
    EXPECT_EQ(admission.submit(item(QueryClass::Batch), 0.0),
              AdmitDecision::Admit);
}

TEST(ServeAdmission, BoundedQueueRejectsWhenFull)
{
    AdmissionConfig config = openConfig();
    config.queueCapacity = 3;
    AdmissionController admission{config};

    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(admission.submit(item(QueryClass::Interactive), 0.0),
                  AdmitDecision::Admit);
    EXPECT_EQ(admission.submit(item(QueryClass::Interactive), 0.0),
              AdmitDecision::QueueFull);
    EXPECT_EQ(admission.depth(), 3u);

    QueuedItem out;
    ASSERT_TRUE(admission.pop(0.0, out));
    EXPECT_EQ(admission.submit(item(QueryClass::Interactive), 0.0),
              AdmitDecision::Admit);
}

TEST(ServeAdmission, PopIsFifoAndRecordsWaits)
{
    AdmissionController admission{openConfig()};
    QueuedItem first = item(QueryClass::Interactive);
    first.request.id = 1;
    QueuedItem second = item(QueryClass::Interactive);
    second.request.id = 2;
    EXPECT_EQ(admission.submit(first, 0.0), AdmitDecision::Admit);
    EXPECT_EQ(admission.submit(second, 0.0), AdmitDecision::Admit);

    QueuedItem out;
    ASSERT_TRUE(admission.pop(0.25, out));
    EXPECT_EQ(out.request.id, 1u);
    ASSERT_TRUE(admission.pop(0.25, out));
    EXPECT_EQ(out.request.id, 2u);
    EXPECT_FALSE(admission.pop(0.25, out));
}

namespace {

/** Push `n` items through with a fixed queue wait per item. */
void
pumpWindow(AdmissionController &admission, double &t, double wait,
           int n = AdmissionController::kP95WindowSamples)
{
    for (int i = 0; i < n; ++i) {
        ASSERT_EQ(admission.submit(item(QueryClass::Interactive), t),
                  AdmitDecision::Admit);
        t += wait;
        QueuedItem out;
        ASSERT_TRUE(admission.pop(t, out));
    }
}

} // namespace

TEST(ServeAdmission, SlowWindowsEscalateToShedThenReject)
{
    AdmissionConfig config = openConfig();
    config.waitP95ShedS = 0.05;
    config.waitP95RejectS = 10.0; // out of reach: test the +1 path
    config.shedLevel = 3.0;
    config.rejectLevel = 9.0;
    config.overloadHalfLifeS = 0.0; // no decay: count windows
    AdmissionController admission{config};

    double t = 0.0;
    // Two slow windows: level 2, still Nominal.
    pumpWindow(admission, t, 0.1);
    pumpWindow(admission, t, 0.1);
    EXPECT_EQ(admission.state(), ShedState::Nominal);
    EXPECT_GE(admission.lastWindowP95S(), 0.05);

    // Third slow window crosses shedLevel.
    pumpWindow(admission, t, 0.1);
    EXPECT_EQ(admission.state(), ShedState::ShedLowPriority);

    // Batch is now shed, interactive still admitted.
    EXPECT_EQ(admission.submit(item(QueryClass::Batch), t),
              AdmitDecision::ShedClass);
    EXPECT_EQ(admission.submit(item(QueryClass::Interactive), t),
              AdmitDecision::Admit);
    QueuedItem out;
    ASSERT_TRUE(admission.pop(t, out));

    // Realign to the 32-dequeue window boundary (the pop above is
    // one extra sample), then five more slow windows cross
    // rejectLevel: everything is shed.
    pumpWindow(admission, t, 0.1, 31);
    for (int i = 0; i < 5; ++i)
        pumpWindow(admission, t, 0.1);
    EXPECT_EQ(admission.state(), ShedState::RejectAll);
    EXPECT_EQ(admission.submit(item(QueryClass::Interactive), t),
              AdmitDecision::ShedAll);
    EXPECT_EQ(admission.submit(item(QueryClass::Batch), t),
              AdmitDecision::ShedAll);
}

TEST(ServeAdmission, RejectThresholdEscalatesThreeTimesAsFast)
{
    AdmissionConfig config = openConfig();
    config.waitP95ShedS = 0.05;
    config.waitP95RejectS = 0.5;
    config.overloadHalfLifeS = 0.0;
    AdmissionController admission{config};

    // One window past the reject threshold feeds the accumulator
    // +3 — straight to ShedLowPriority (shedLevel = 3).
    double t = 0.0;
    pumpWindow(admission, t, 1.0);
    EXPECT_EQ(admission.state(), ShedState::ShedLowPriority);
}

TEST(ServeAdmission, RecoversAfterHoldWithHysteresis)
{
    AdmissionConfig config = openConfig();
    config.waitP95ShedS = 0.01;
    config.waitP95RejectS = 0.05; // 0.1 s waits feed +3 per window
    config.shedLevel = 3.0;
    config.rejectLevel = 9.0;
    config.overloadHalfLifeS = 0.5;
    config.recoveryHoldS = 1.0;
    AdmissionController admission{config};

    double t = 0.0;
    for (int i = 0;
         i < 10 && admission.state() != ShedState::ShedLowPriority;
         ++i)
        pumpWindow(admission, t, 0.1);
    ASSERT_EQ(admission.state(), ShedState::ShedLowPriority);

    // 0.6 s later the level has decayed below shedLevel, but the
    // recovery hold has not elapsed: still shedding (hysteresis).
    t += 0.6;
    EXPECT_EQ(admission.submit(item(QueryClass::Batch), t),
              AdmitDecision::ShedClass);
    EXPECT_EQ(admission.state(), ShedState::ShedLowPriority);

    // After the hold elapses with the level decayed, Nominal again.
    t += 5.0;
    EXPECT_EQ(admission.submit(item(QueryClass::Batch), t),
              AdmitDecision::Admit);
    EXPECT_EQ(admission.state(), ShedState::Nominal);

    // The transition log recorded the round trip.
    const std::vector<ShedTransition> transitions =
        admission.transitions();
    ASSERT_EQ(transitions.size(), 2u);
    EXPECT_EQ(transitions[0].to, ShedState::ShedLowPriority);
    EXPECT_EQ(transitions[1].to, ShedState::Nominal);
    EXPECT_EQ(transitions[1].reason, "recovered");
    QueuedItem out;
    ASSERT_TRUE(admission.pop(t, out));
}

TEST(ServeAdmission, RejectionMapsToTypedErrors)
{
    EXPECT_EQ(admitError(AdmitDecision::RateLimited).code,
              ErrorCode::RateLimited);
    EXPECT_EQ(admitError(AdmitDecision::QueueFull).code,
              ErrorCode::Overloaded);
    EXPECT_EQ(admitError(AdmitDecision::ShedClass).code,
              ErrorCode::Overloaded);
    EXPECT_EQ(admitError(AdmitDecision::ShedAll).code,
              ErrorCode::Overloaded);
}

TEST(ServeAdmission, StateNamesAreStable)
{
    EXPECT_STREQ(shedStateName(ShedState::Nominal), "nominal");
    EXPECT_STREQ(shedStateName(ShedState::ShedLowPriority),
                 "shed_low_priority");
    EXPECT_STREQ(shedStateName(ShedState::RejectAll), "reject_all");
}
