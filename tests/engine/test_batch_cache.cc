/**
 * @file
 * Batch path through the engine layer: `MemoCache::solveBatch`
 * counter reconciliation (hits + misses advance by exactly the batch
 * size, duplicates of a missed key score as replayed hits) and
 * `SweepEngine` with `batchSolve` on vs off producing byte-identical
 * sweeps at every thread count.
 */

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "components/compute_board.hh"
#include "engine/engine.hh"
#include "engine/memo_cache.hh"

#include "../dse/batch_test_util.hh"

using namespace dronedse;
using namespace dronedse::engine;
using namespace dronedse::unit_literals;
using batch_test::expectByteIdentical;

namespace {

std::vector<DesignInputs>
smallGrid()
{
    SweepSpec spec = classSweepSpec(classSpec(SizeClass::Medium),
                                    {2, 4}, 500.0_mah, basicChip3W());
    return expandGrid(spec);
}

std::vector<DesignResult>
solveBatchThrough(MemoCache &cache,
                  const std::vector<DesignInputs> &inputs)
{
    std::vector<DesignResult> results(inputs.size());
    cache.solveBatch(std::span<const DesignInputs>(inputs),
                     std::span<DesignResult>(results));
    return results;
}

} // namespace

TEST(BatchCache, ColdBatchIsAllMisses)
{
    MemoCache cache;
    const std::vector<DesignInputs> grid = smallGrid();
    const std::vector<DesignResult> batch =
        solveBatchThrough(cache, grid);

    const CacheCounters after = cache.counters();
    EXPECT_EQ(after.hits, 0u);
    EXPECT_EQ(after.misses, grid.size());
    EXPECT_EQ(after.hits + after.misses, grid.size());
    EXPECT_EQ(cache.size(), grid.size());

    // And the results must be what the memoized scalar path returns.
    MemoCache reference;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        SCOPED_TRACE("index " + std::to_string(i));
        expectByteIdentical(reference.solve(grid[i]), batch[i]);
    }
}

TEST(BatchCache, WarmBatchIsAllHits)
{
    MemoCache cache;
    const std::vector<DesignInputs> grid = smallGrid();
    const std::vector<DesignResult> cold =
        solveBatchThrough(cache, grid);
    const std::vector<DesignResult> warm =
        solveBatchThrough(cache, grid);

    const CacheCounters after = cache.counters();
    EXPECT_EQ(after.hits, grid.size());
    EXPECT_EQ(after.misses, grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        SCOPED_TRACE("index " + std::to_string(i));
        expectByteIdentical(cold[i], warm[i]);
    }
}

TEST(BatchCache, IntraBatchDuplicatesScoreAsReplayedHits)
{
    // Tripled grid in one batch: the unique keys miss once each, and
    // every repeat scores the hit it would have scored sequentially
    // against the fresh insert — hits + misses == batch size, exactly
    // as if each point had gone through `solve` one at a time.
    const std::vector<DesignInputs> grid = smallGrid();
    std::vector<DesignInputs> tripled;
    for (int rep = 0; rep < 3; ++rep)
        tripled.insert(tripled.end(), grid.begin(), grid.end());

    MemoCache cache;
    const std::vector<DesignResult> batch =
        solveBatchThrough(cache, tripled);
    const CacheCounters after = cache.counters();
    EXPECT_EQ(after.misses, grid.size());
    EXPECT_EQ(after.hits, 2 * grid.size());
    EXPECT_EQ(after.hits + after.misses, tripled.size());
    EXPECT_EQ(cache.size(), grid.size());

    // A sequential replay of the same stream lands the same counters.
    MemoCache sequential;
    for (const DesignInputs &in : tripled)
        sequential.solve(in);
    const CacheCounters seq = sequential.counters();
    EXPECT_EQ(after.hits, seq.hits);
    EXPECT_EQ(after.misses, seq.misses);
    EXPECT_EQ(after.evictions, seq.evictions);

    for (std::size_t i = 0; i < grid.size(); ++i) {
        SCOPED_TRACE("index " + std::to_string(i));
        expectByteIdentical(batch[i], batch[i + grid.size()]);
        expectByteIdentical(batch[i], batch[i + 2 * grid.size()]);
    }
}

TEST(BatchCache, EmptyBatchTouchesNothing)
{
    MemoCache cache;
    std::vector<DesignInputs> none;
    std::vector<DesignResult> out;
    cache.solveBatch(std::span<const DesignInputs>(none),
                     std::span<DesignResult>(out));
    const CacheCounters after = cache.counters();
    EXPECT_EQ(after.hits + after.misses, 0u);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(BatchCache, CountersAdvanceByBatchSizeAcrossMixedStreams)
{
    // Interleave batch and scalar calls over overlapping point sets;
    // the invariant `hits + misses == points submitted` must hold at
    // every step regardless of which path served each point.
    MemoCache cache;
    const std::vector<DesignInputs> grid = smallGrid();
    std::uint64_t submitted = 0;

    const std::vector<DesignInputs> front(grid.begin(),
                                          grid.begin() + 5);
    solveBatchThrough(cache, front);
    submitted += front.size();

    for (std::size_t i = 0; i < 8 && i < grid.size(); ++i) {
        cache.solve(grid[i]);
        ++submitted;
    }

    solveBatchThrough(cache, grid);
    submitted += grid.size();

    const CacheCounters after = cache.counters();
    EXPECT_EQ(after.hits + after.misses, submitted);
}

TEST(BatchEngine, BatchAndScalarEnginesAreByteIdentical)
{
    SweepSpec spec = classSweepSpec(classSpec(SizeClass::Medium),
                                    {1, 2, 3, 4, 5, 6}, 250.0_mah,
                                    basicChip3W());
    for (int threads : {1, 2, 8}) {
        SCOPED_TRACE("threads " + std::to_string(threads));
        SweepEngine batch_engine{
            EngineOptions{.threads = threads, .batchSolve = true}};
        SweepEngine scalar_engine{
            EngineOptions{.threads = threads, .batchSolve = false}};
        const SweepResult with_batch = batch_engine.run(spec);
        const SweepResult with_scalar = scalar_engine.run(spec);

        ASSERT_EQ(with_batch.points.size(), with_scalar.points.size());
        for (std::size_t i = 0; i < with_batch.points.size(); ++i) {
            SCOPED_TRACE("index " + std::to_string(i));
            expectByteIdentical(with_scalar.points[i],
                                with_batch.points[i]);
        }
        EXPECT_EQ(with_batch.feasible, with_scalar.feasible);
        EXPECT_EQ(with_batch.frontier, with_scalar.frontier);

        // Both paths account for every grid point in the counters.
        const SweepStats &bs = with_batch.stats;
        const SweepStats &ss = with_scalar.stats;
        EXPECT_EQ(bs.cache.hits + bs.cache.misses, bs.gridPoints);
        EXPECT_EQ(ss.cache.hits + ss.cache.misses, ss.gridPoints);
    }
}

TEST(BatchEngine, ThreadCountsAgreeBitwiseOnTheBatchPath)
{
    SweepSpec spec = classSweepSpec(classSpec(SizeClass::Small),
                                    {1, 2, 3, 4}, 200.0_mah,
                                    advancedChip20W());
    SweepEngine reference{
        EngineOptions{.threads = 1, .batchSolve = true}};
    const SweepResult base = reference.run(spec);
    for (int threads : {2, 8}) {
        SCOPED_TRACE("threads " + std::to_string(threads));
        SweepEngine engine{
            EngineOptions{.threads = threads, .batchSolve = true}};
        const SweepResult run = engine.run(spec);
        ASSERT_EQ(run.points.size(), base.points.size());
        for (std::size_t i = 0; i < run.points.size(); ++i) {
            SCOPED_TRACE("index " + std::to_string(i));
            expectByteIdentical(base.points[i], run.points[i]);
        }
    }
}

TEST(BatchEngine, ClearCacheForcesResolve)
{
    SweepSpec spec = classSweepSpec(classSpec(SizeClass::Medium), {4},
                                    500.0_mah, basicChip3W());
    SweepEngine engine{EngineOptions{.threads = 1}};
    const SweepResult first = engine.run(spec);
    EXPECT_EQ(first.stats.cache.hits, 0u);

    // Warm rerun: all hits.  After clearCache, all misses again —
    // that is what makes the bench's --cold series honest.
    const SweepResult warm = engine.run(spec);
    EXPECT_EQ(warm.stats.cache.misses, 0u);
    EXPECT_EQ(warm.stats.cache.hits, warm.stats.gridPoints);

    engine.clearCache();
    const SweepResult cold = engine.run(spec);
    EXPECT_EQ(cold.stats.cache.hits, 0u);
    EXPECT_EQ(cold.stats.cache.misses, cold.stats.gridPoints);
    for (std::size_t i = 0; i < first.points.size(); ++i) {
        SCOPED_TRACE("index " + std::to_string(i));
        expectByteIdentical(first.points[i], cold.points[i]);
    }
}
