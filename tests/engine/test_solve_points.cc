#include <gtest/gtest.h>

#include <vector>

#include "components/compute_board.hh"
#include "dse/sweep.hh"
#include "dse/weight_closure.hh"
#include "engine/engine.hh"

namespace dronedse {
namespace {

using namespace unit_literals;
using engine::EngineOptions;
using engine::SweepEngine;
using engine::bestFeasibleIndex;

std::vector<DesignInputs>
mixedPoints()
{
    // A hand-assembled (non-grid) point list spanning feasible,
    // infeasible, and validation-rejected designs.
    std::vector<DesignInputs> points;
    for (int cells : {1, 3, 6}) {
        for (double cap : {800.0, 3000.0, 6500.0}) {
            DesignInputs in;
            in.cells = cells;
            in.capacityMah = Quantity<MilliampHours>(cap);
            in.compute = cells == 3 ? advancedChip20W()
                                    : basicChip3W();
            points.push_back(in);
        }
    }
    DesignInputs bad;
    bad.cells = 9; // validation-rejected
    points.push_back(bad);
    return points;
}

TEST(SolvePoints, ElementwiseIdenticalToScalarSolves)
{
    const std::vector<DesignInputs> points = mixedPoints();
    for (int threads : {1, 2, 8}) {
        SweepEngine eng{EngineOptions{.threads = threads}};
        const std::vector<DesignResult> batch =
            eng.solvePoints(points);
        ASSERT_EQ(batch.size(), points.size());
        for (std::size_t i = 0; i < points.size(); ++i) {
            const DesignResult ref = solveDesign(points[i]);
            EXPECT_EQ(batch[i].feasible, ref.feasible);
            EXPECT_EQ(batch[i].infeasibleReason, ref.infeasibleReason);
            EXPECT_EQ(batch[i].totalWeightG, ref.totalWeightG);
            EXPECT_EQ(batch[i].flightTimeMin, ref.flightTimeMin);
            EXPECT_EQ(batch[i].avgPowerW, ref.avgPowerW);
        }
    }
}

TEST(SolvePoints, ScalarPathMatchesBatchPath)
{
    const std::vector<DesignInputs> points = mixedPoints();
    SweepEngine batch{EngineOptions{.threads = 2}};
    SweepEngine scalar{
        EngineOptions{.threads = 2, .batchSolve = false}};
    const auto a = batch.solvePoints(points);
    const auto b = scalar.solvePoints(points);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].feasible, b[i].feasible);
        EXPECT_EQ(a[i].totalWeightG, b[i].totalWeightG);
        EXPECT_EQ(a[i].flightTimeMin, b[i].flightTimeMin);
    }
}

TEST(BestFeasibleIndex, ScansInInputOrderWithStrictDisplacement)
{
    SweepEngine eng{EngineOptions{.threads = 1}};
    const std::vector<DesignResult> solved =
        eng.solvePoints(mixedPoints());

    const std::size_t best = bestFeasibleIndex(solved);
    ASSERT_LT(best, solved.size());
    EXPECT_TRUE(solved[best].feasible);
    for (const DesignResult &res : solved) {
        if (res.feasible)
            EXPECT_GE(solved[best].flightTimeMin.value(),
                      res.flightTimeMin.value());
    }

    // Duplicates tie: only strictly greater flight time displaces,
    // so the first of an equal pair wins.
    std::vector<DesignResult> dup = {solved[best], solved[best]};
    EXPECT_EQ(bestFeasibleIndex(dup), 0u);

    // Nothing feasible: the sentinel.
    std::vector<DesignResult> none(3);
    EXPECT_EQ(bestFeasibleIndex(none), 3u);

    // The practical filter drops designs outside the class limits.
    const SizeClassSpec &medium = classSpec(SizeClass::Medium);
    const std::size_t practical = bestFeasibleIndex(solved, &medium);
    if (practical < solved.size())
        EXPECT_TRUE(withinPracticalLimits(solved[practical], medium));
}

TEST(BestConfiguration, EngineScanStillMatchesSerialSearch)
{
    // The rewrite through solvePoints + bestFeasibleIndex must keep
    // the exact result of the serial dse search.
    const SizeClassSpec &medium = classSpec(SizeClass::Medium);
    SweepEngine eng{EngineOptions{.threads = 4}};
    const DesignResult engine_best =
        eng.bestConfiguration(medium, basicChip3W(), 250.0_mah);
    const DesignResult serial_best =
        bestConfiguration(medium, basicChip3W(), 250.0_mah);
    EXPECT_EQ(engine_best.inputs.cells, serial_best.inputs.cells);
    EXPECT_EQ(engine_best.inputs.capacityMah,
              serial_best.inputs.capacityMah);
    EXPECT_EQ(engine_best.flightTimeMin, serial_best.flightTimeMin);
    EXPECT_EQ(engine_best.totalWeightG, serial_best.totalWeightG);
}

} // namespace
} // namespace dronedse
