#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "components/compute_board.hh"
#include "dse/export.hh"
#include "dse/sweep.hh"
#include "dse/weight_closure.hh"
#include "engine/engine.hh"

namespace dronedse {
namespace {

using namespace unit_literals;
using engine::EngineOptions;
using engine::SweepEngine;
using engine::SweepResult;

/** The Figure 10 footprint grid of the medium class. */
SweepSpec
fig10MediumGrid()
{
    SweepSpec spec = classSweepSpec(classSpec(SizeClass::Medium),
                                    {1, 2, 3, 4, 5, 6}, 250.0_mah,
                                    basicChip3W());
    spec.boards = {advancedChip20W(), basicChip3W()};
    spec.activities = {FlightActivity::Hovering,
                       FlightActivity::Maneuvering};
    return spec;
}

void
expectIdenticalResults(const DesignResult &a, const DesignResult &b)
{
    ASSERT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.infeasibleReason, b.infeasibleReason);
    EXPECT_EQ(a.inputs.capacityMah, b.inputs.capacityMah);
    EXPECT_EQ(a.inputs.cells, b.inputs.cells);
    EXPECT_EQ(a.inputs.compute.name, b.inputs.compute.name);
    EXPECT_EQ(a.inputs.activity, b.inputs.activity);
    // Bitwise-identical solved quantities, not just approximately
    // equal: the determinism contract is exact.
    EXPECT_EQ(a.totalWeightG, b.totalWeightG);
    EXPECT_EQ(a.basicWeightG, b.basicWeightG);
    EXPECT_EQ(a.avgPowerW, b.avgPowerW);
    EXPECT_EQ(a.flightTimeMin, b.flightTimeMin);
    EXPECT_EQ(a.computePowerFraction, b.computePowerFraction);
    EXPECT_EQ(a.motorMaxCurrentA, b.motorMaxCurrentA);
    EXPECT_EQ(a.motor.kv, b.motor.kv);
}

class SweepEngineThreads : public testing::TestWithParam<int>
{
};

TEST_P(SweepEngineThreads, ElementwiseIdenticalToSerial)
{
    const SweepSpec spec = fig10MediumGrid();
    const std::vector<DesignResult> serial = runSweepSerial(spec);

    SweepEngine eng{EngineOptions{.threads = GetParam()}};
    const SweepResult swept = eng.run(spec);

    ASSERT_EQ(swept.points.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectIdenticalResults(swept.points[i], serial[i]);

    // And again from a warm cache: hits must be exact replays.
    const SweepResult rerun = eng.run(spec);
    ASSERT_EQ(rerun.points.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectIdenticalResults(rerun.points[i], serial[i]);
}

TEST_P(SweepEngineThreads, CsvExportByteIdenticalToSerial)
{
    const auto &spec = classSpec(SizeClass::Medium);
    std::string serial_csv;
    for (int cells : {1, 3, 6}) {
        serial_csv += sweepToCsv(sweepCapacity(spec, cells, 100.0_mah,
                                               basicChip3W()))
                          .str();
    }

    SweepEngine eng{EngineOptions{.threads = GetParam()}};
    std::string engine_csv;
    for (int cells : {1, 3, 6}) {
        const SweepResult swept = eng.run(classSweepSpec(
            spec, {cells}, 100.0_mah, basicChip3W()));
        engine_csv += sweepToCsv(swept.feasibleSeries()).str();
    }
    EXPECT_EQ(engine_csv, serial_csv);
}

INSTANTIATE_TEST_SUITE_P(Threads, SweepEngineThreads,
                         testing::Values(1, 2, 8));

TEST(SweepEngine, BestConfigurationMatchesSerial)
{
    for (SizeClass cls :
         {SizeClass::Small, SizeClass::Medium, SizeClass::Large}) {
        const auto &spec = classSpec(cls);
        const DesignResult serial =
            bestConfiguration(spec, basicChip3W());
        SweepEngine eng{EngineOptions{.threads = 4}};
        const DesignResult parallel =
            eng.bestConfiguration(spec, basicChip3W());
        expectIdenticalResults(parallel, serial);
    }
}

TEST(SweepEngine, FeasibleEnvelopeMatchesPointFlags)
{
    SweepEngine eng{EngineOptions{.threads = 2}};
    const SweepResult swept = eng.run(fig10MediumGrid());
    std::size_t feasible_count = 0;
    for (std::size_t i = 0; i < swept.points.size(); ++i) {
        if (swept.points[i].feasible)
            ++feasible_count;
    }
    EXPECT_EQ(swept.feasible.size(), feasible_count);
    for (std::size_t idx : swept.feasible)
        EXPECT_TRUE(swept.points[idx].feasible);
    for (std::size_t idx : swept.frontier)
        EXPECT_TRUE(swept.points[idx].feasible);
}

TEST(SweepEngine, StatsAccountForEveryPoint)
{
    const SweepSpec spec = fig10MediumGrid();
    SweepEngine eng{EngineOptions{.threads = 2}};

    const SweepResult cold = eng.run(spec);
    EXPECT_EQ(cold.stats.gridPoints, spec.pointCount());
    EXPECT_EQ(cold.stats.threads, 2);
    EXPECT_GT(cold.stats.pointsPerSecond, 0.0);
    // Cold run: every point misses once.
    EXPECT_EQ(cold.stats.cache.hits, 0u);
    EXPECT_EQ(cold.stats.cache.misses, spec.pointCount());
    std::uint64_t items = 0;
    for (const auto &worker : cold.stats.perThread)
        items += worker.itemsProcessed;
    EXPECT_EQ(items, spec.pointCount());

    // Warm run: every point hits.
    const SweepResult warm = eng.run(spec);
    EXPECT_EQ(warm.stats.cache.hits, spec.pointCount());
    EXPECT_EQ(warm.stats.cache.misses, 0u);

    const std::string json = warm.stats.toJson();
    EXPECT_NE(json.find("\"points_per_second\""), std::string::npos);
    EXPECT_NE(json.find("\"hit_rate\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"per_thread\""), std::string::npos);
}

TEST(SweepEngine, SharedEngineSolveMatchesSolveDesign)
{
    DesignInputs in;
    in.wheelbaseMm = 450.0_mm;
    in.cells = 3;
    in.capacityMah = 3000.0_mah;
    const DesignResult direct = solveDesign(in);
    const DesignResult cached = engine::sharedEngine().solve(in);
    expectIdenticalResults(cached, direct);
    expectIdenticalResults(engine::sharedEngine().solve(in), direct);
}

} // namespace
} // namespace dronedse
