/**
 * @file
 * Property-based checks of the Pareto frontier against seeded-random
 * point clouds: membership is exactly "no dominator exists", the
 * frontier is invariant under input permutation, and the frontier is
 * a fixed point of itself.  Clouds mix clustered and spread points
 * plus duplicates and infeasibles so ties and boundaries get hit.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <set>
#include <vector>

#include "engine/pareto.hh"
#include "util/rng.hh"

namespace dronedse {
namespace {

using engine::dominates;
using engine::paretoFrontier;

DesignResult
point(double flight_min, double compute_w, double weight_g,
      bool feasible = true)
{
    DesignResult res;
    res.feasible = feasible;
    res.flightTimeMin = Quantity<Minutes>(flight_min);
    res.computePowerW = Quantity<Watts>(compute_w);
    res.totalWeightG = Quantity<Grams>(weight_g);
    return res;
}

/**
 * A random cloud exercising the frontier's edge cases: coarse grids
 * (many exact ties per axis), exact duplicates, and a sprinkling of
 * infeasible points that must never appear or dominate.
 */
std::vector<DesignResult>
randomCloud(Rng &rng, std::size_t n)
{
    std::vector<DesignResult> cloud;
    cloud.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (!cloud.empty() && rng.bernoulli(0.1)) {
            cloud.push_back(cloud[static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<std::int64_t>(
                                      cloud.size() - 1)))]);
            continue;
        }
        // Snap to a coarse grid so equal coordinates are common.
        const double flight =
            static_cast<double>(rng.uniformInt(5, 40));
        const double power =
            0.5 * static_cast<double>(rng.uniformInt(2, 40));
        const double weight =
            50.0 * static_cast<double>(rng.uniformInt(4, 40));
        cloud.push_back(
            point(flight, power, weight, !rng.bernoulli(0.15)));
    }
    return cloud;
}

/** Brute-force oracle: i is on the frontier iff it is feasible and
 * nothing in the cloud dominates it. */
std::vector<std::size_t>
oracleFrontier(const std::vector<DesignResult> &cloud)
{
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        if (!cloud[i].feasible)
            continue;
        bool dominated = false;
        for (std::size_t j = 0; j < cloud.size() && !dominated; ++j)
            dominated = j != i && dominates(cloud[j], cloud[i]);
        if (!dominated)
            frontier.push_back(i);
    }
    return frontier;
}

/** The frontier as a multiset of coordinate triples, so frontiers of
 * permuted inputs can be compared index-free. */
std::multiset<std::tuple<double, double, double>>
frontierPoints(const std::vector<DesignResult> &cloud,
               const std::vector<std::size_t> &frontier)
{
    std::multiset<std::tuple<double, double, double>> set;
    for (std::size_t idx : frontier) {
        const DesignResult &p = cloud[idx];
        set.insert({p.flightTimeMin.value(), p.computePowerW.value(),
                    p.totalWeightG.value()});
    }
    return set;
}

TEST(ParetoProperties, MembershipIsExactlyNoDominatorExists)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        Rng rng(seed);
        const auto cloud = randomCloud(
            rng, static_cast<std::size_t>(rng.uniformInt(1, 120)));
        EXPECT_EQ(paretoFrontier(cloud), oracleFrontier(cloud))
            << "seed " << seed;
    }
}

TEST(ParetoProperties, FrontierIsInvariantUnderPermutation)
{
    for (std::uint64_t seed = 100; seed < 110; ++seed) {
        Rng rng(seed);
        auto cloud = randomCloud(rng, 80);
        const auto baseline =
            frontierPoints(cloud, paretoFrontier(cloud));
        for (int round = 0; round < 5; ++round) {
            // Fisher-Yates with the deterministic Rng.
            for (std::size_t i = cloud.size(); i > 1; --i) {
                const auto j = static_cast<std::size_t>(
                    rng.uniformInt(0,
                                   static_cast<std::int64_t>(i) - 1));
                std::swap(cloud[i - 1], cloud[j]);
            }
            EXPECT_EQ(frontierPoints(cloud, paretoFrontier(cloud)),
                      baseline)
                << "seed " << seed << " round " << round;
        }
    }
}

TEST(ParetoProperties, FrontierIsAFixedPointOfItself)
{
    for (std::uint64_t seed = 200; seed < 215; ++seed) {
        Rng rng(seed);
        const auto cloud = randomCloud(rng, 100);
        const auto frontier = paretoFrontier(cloud);
        std::vector<DesignResult> survivors;
        survivors.reserve(frontier.size());
        for (std::size_t idx : frontier)
            survivors.push_back(cloud[idx]);

        std::vector<std::size_t> everything(survivors.size());
        std::iota(everything.begin(), everything.end(), 0u);
        EXPECT_EQ(paretoFrontier(survivors), everything)
            << "seed " << seed;
    }
}

TEST(ParetoProperties, FrontierIndicesAreSortedUniqueAndFeasible)
{
    for (std::uint64_t seed = 300; seed < 310; ++seed) {
        Rng rng(seed);
        const auto cloud = randomCloud(rng, 60);
        const auto frontier = paretoFrontier(cloud);
        EXPECT_TRUE(
            std::is_sorted(frontier.begin(), frontier.end()));
        EXPECT_EQ(std::adjacent_find(frontier.begin(), frontier.end()),
                  frontier.end());
        for (std::size_t idx : frontier) {
            ASSERT_LT(idx, cloud.size());
            EXPECT_TRUE(cloud[idx].feasible);
        }
    }
}

} // namespace
} // namespace dronedse
