#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "components/compute_board.hh"
#include "dse/weight_closure.hh"
#include "engine/memo_cache.hh"

namespace dronedse {
namespace {

using namespace unit_literals;
using engine::CacheCounters;
using engine::DesignKey;
using engine::MemoCache;
using engine::quantizeInputs;

DesignInputs
mediumInputs()
{
    DesignInputs in;
    in.wheelbaseMm = 450.0_mm;
    in.cells = 3;
    in.capacityMah = 3000.0_mah;
    return in;
}

TEST(MemoCache, HitReturnsTheExactCachedResult)
{
    MemoCache cache;
    const DesignInputs in = mediumInputs();

    const DesignResult first = cache.solve(in);
    CacheCounters counters = cache.counters();
    EXPECT_EQ(counters.hits, 0u);
    EXPECT_EQ(counters.misses, 1u);

    const DesignResult second = cache.solve(in);
    counters = cache.counters();
    EXPECT_EQ(counters.hits, 1u);
    EXPECT_EQ(counters.misses, 1u);
    EXPECT_EQ(second.feasible, first.feasible);
    EXPECT_EQ(second.totalWeightG, first.totalWeightG);
    EXPECT_EQ(second.flightTimeMin, first.flightTimeMin);
    EXPECT_EQ(second.avgPowerW, first.avgPowerW);
}

TEST(MemoCache, HitBypassesTheSolverEntirely)
{
    // Plant a sentinel result under a key: a later lookup must hand
    // back that exact object, proving hits never re-solve.
    MemoCache cache;
    const DesignInputs in = mediumInputs();
    const DesignKey key = quantizeInputs(in);

    DesignResult sentinel = solveDesign(in);
    sentinel.totalWeightG = Quantity<Grams>(-12345.0);
    cache.insert(key, sentinel);

    const auto found = cache.lookup(key);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->totalWeightG, Quantity<Grams>(-12345.0));
    const DesignResult solved = cache.solve(in);
    EXPECT_EQ(solved.totalWeightG, Quantity<Grams>(-12345.0));
}

TEST(MemoCache, SubQuantumJitterSharesAKey)
{
    // Inputs closer than the 1e-6 quantum are deliberately treated
    // as the same design point.
    DesignInputs a = mediumInputs();
    DesignInputs b = mediumInputs();
    b.capacityMah = a.capacityMah + Quantity<MilliampHours>(1e-8);
    EXPECT_EQ(quantizeInputs(a), quantizeInputs(b));
}

TEST(MemoCache, QuantizationNeverAliasesAcrossFeasibilityBoundary)
{
    // Bisect the capacity axis down to millimAh resolution to find
    // an adjacent feasible/infeasible pair (the battery C-rating
    // boundary), then assert the two sides quantize to different
    // keys and each side returns its own result through the cache.
    DesignInputs in = mediumInputs();
    in.cells = 6;
    const auto feasibleAt = [&in](double cap_mah) {
        DesignInputs probe = in;
        probe.capacityMah = Quantity<MilliampHours>(cap_mah);
        return solveDesign(probe).feasible;
    };
    double lo = 1.0, hi = 3000.0;
    ASSERT_FALSE(feasibleAt(lo));
    ASSERT_TRUE(feasibleAt(hi));
    while (hi - lo > 0.001) {
        const double mid = 0.5 * (lo + hi);
        (feasibleAt(mid) ? hi : lo) = mid;
    }

    DesignInputs feas = in;
    feas.capacityMah = Quantity<MilliampHours>(hi);
    DesignInputs infeas = in;
    infeas.capacityMah = Quantity<MilliampHours>(lo);
    ASSERT_NE(quantizeInputs(feas), quantizeInputs(infeas));

    MemoCache cache;
    EXPECT_TRUE(cache.solve(feas).feasible);
    EXPECT_FALSE(cache.solve(infeas).feasible);
    // Both sides cached independently; replay preserves each.
    EXPECT_TRUE(cache.solve(feas).feasible);
    EXPECT_FALSE(cache.solve(infeas).feasible);
    EXPECT_EQ(cache.counters().hits, 2u);
}

TEST(MemoCache, DistinctBoardNamesDoNotShareAnEntry)
{
    // Two boards with identical physics still differ in the echoed
    // inputs, so the cache must keep them apart.
    DesignInputs a = mediumInputs();
    a.compute = {"Board A", BoardClass::Basic, 20.0, 3.0};
    DesignInputs b = a;
    b.compute.name = "Board B";
    EXPECT_NE(quantizeInputs(a), quantizeInputs(b));

    MemoCache cache;
    EXPECT_EQ(cache.solve(a).inputs.compute.name, "Board A");
    EXPECT_EQ(cache.solve(b).inputs.compute.name, "Board B");
    EXPECT_EQ(cache.solve(a).inputs.compute.name, "Board A");
}

TEST(MemoCache, EvictsOldestWhenOverCapacity)
{
    // Tiny cache: one entry per shard.
    MemoCache cache(MemoCache::kShards);
    DesignInputs in = mediumInputs();
    for (int i = 0; i < 100; ++i) {
        in.capacityMah = Quantity<MilliampHours>(1000.0 + 10.0 * i);
        cache.solve(in);
    }
    EXPECT_LE(cache.size(), MemoCache::kShards);
    const CacheCounters counters = cache.counters();
    EXPECT_EQ(counters.misses, 100u);
    EXPECT_GT(counters.evictions, 0u);
}

TEST(MemoCache, ConcurrentSolvesAccountEveryCall)
{
    MemoCache cache;
    constexpr int kThreads = 8;
    constexpr int kCallsPerThread = 200;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache] {
            DesignInputs in = mediumInputs();
            for (int i = 0; i < kCallsPerThread; ++i) {
                // 20 distinct points, hammered from every thread.
                in.capacityMah =
                    Quantity<MilliampHours>(2000.0 + 100.0 * (i % 20));
                const DesignResult res = cache.solve(in);
                ASSERT_TRUE(res.feasible);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    const CacheCounters counters = cache.counters();
    EXPECT_EQ(counters.hits + counters.misses,
              static_cast<std::uint64_t>(kThreads) * kCallsPerThread);
    EXPECT_GE(counters.hits,
              static_cast<std::uint64_t>(kThreads) * kCallsPerThread -
                  8 * 20);
}

TEST(MemoCache, EvictionStressReconcilesAndReSolvesIdentically)
{
    // Small capacity + more distinct keys than slots + 8 threads:
    // constant eviction under contention (run under TSan in CI).
    MemoCache cache(MemoCache::kShards * 2);
    const std::uint64_t capacity = MemoCache::kShards * 2;

    // Solve one probe point first and snapshot its result; by the
    // end of the stress it will have been evicted and must re-solve
    // to the bitwise-identical answer.
    DesignInputs probe = mediumInputs();
    probe.capacityMah = Quantity<MilliampHours>(1234.0);
    const DesignResult first = cache.solve(probe);

    constexpr int kThreads = 8;
    constexpr int kCallsPerThread = 400;
    constexpr int kDistinctPoints = 160;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, t] {
            DesignInputs in = mediumInputs();
            for (int i = 0; i < kCallsPerThread; ++i) {
                const int point = (i + 37 * t) % kDistinctPoints;
                in.capacityMah = Quantity<MilliampHours>(
                    2000.0 + 10.0 * point);
                cache.solve(in);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    // Counters reconcile exactly even while evicting.
    const CacheCounters counters = cache.counters();
    EXPECT_EQ(counters.hits + counters.misses,
              static_cast<std::uint64_t>(kThreads) * kCallsPerThread +
                  1u);
    EXPECT_GT(counters.evictions, 0u);
    EXPECT_LE(cache.size(), capacity);
    // Every resident entry and every eviction came from a miss that
    // inserted (concurrent duplicate inserts are no-ops).
    EXPECT_LE(cache.size() + counters.evictions, counters.misses);

    // Flood with fresh keys until the probe's shard has evicted it,
    // then re-solve: the evicted key must come back as a miss with
    // the exact result.
    DesignInputs flood = mediumInputs();
    for (int i = 0; i < 4096; ++i) {
        if (!cache.lookup(quantizeInputs(probe)).has_value())
            break;
        flood.capacityMah =
            Quantity<MilliampHours>(9000.0 + 10.0 * i);
        cache.solve(flood);
    }
    ASSERT_FALSE(cache.lookup(quantizeInputs(probe)).has_value());

    const std::uint64_t misses_before = cache.counters().misses;
    const DesignResult again = cache.solve(probe);
    EXPECT_EQ(cache.counters().misses, misses_before + 1);
    EXPECT_EQ(again.feasible, first.feasible);
    EXPECT_EQ(again.totalWeightG, first.totalWeightG);
    EXPECT_EQ(again.flightTimeMin, first.flightTimeMin);
    EXPECT_EQ(again.avgPowerW, first.avgPowerW);
    EXPECT_EQ(again.computePowerW, first.computePowerW);
}

} // namespace
} // namespace dronedse
