#include <gtest/gtest.h>

#include <vector>

#include "engine/pareto.hh"

namespace dronedse {
namespace {

using engine::dominates;
using engine::paretoFrontier;

DesignResult
point(double flight_min, double compute_w, double weight_g,
      bool feasible = true)
{
    DesignResult res;
    res.feasible = feasible;
    res.flightTimeMin = Quantity<Minutes>(flight_min);
    res.computePowerW = Quantity<Watts>(compute_w);
    res.totalWeightG = Quantity<Grams>(weight_g);
    return res;
}

TEST(Pareto, DominanceRequiresStrictImprovementSomewhere)
{
    const DesignResult a = point(20.0, 3.0, 1000.0);
    EXPECT_FALSE(dominates(a, a));

    // Better on one axis, equal elsewhere: dominates.
    EXPECT_TRUE(dominates(point(21.0, 3.0, 1000.0), a));
    EXPECT_TRUE(dominates(point(20.0, 4.0, 1000.0), a));
    EXPECT_TRUE(dominates(point(20.0, 3.0, 900.0), a));

    // A tradeoff (better one axis, worse another) never dominates.
    EXPECT_FALSE(dominates(point(25.0, 1.0, 1000.0), a));
    EXPECT_FALSE(dominates(a, point(25.0, 1.0, 1000.0)));

    // Infeasible points neither dominate nor get dominated.
    EXPECT_FALSE(dominates(point(99.0, 99.0, 1.0, false), a));
    EXPECT_FALSE(dominates(a, point(1.0, 1.0, 9999.0, false)));
}

TEST(Pareto, HandComputedSixPointFrontier)
{
    // Objectives: flight time up, compute power up, weight down.
    const std::vector<DesignResult> points{
        point(20.0, 3.0, 1000.0),        // 0: on frontier
        point(18.0, 20.0, 1200.0),       // 1: on frontier
        point(20.0, 3.0, 1100.0),        // 2: dominated by 0
        point(25.0, 1.0, 900.0),         // 3: on frontier
        point(17.0, 15.0, 1250.0),       // 4: dominated by 1
        point(30.0, 50.0, 500.0, false), // 5: infeasible, excluded
    };
    const std::vector<std::size_t> expected{0, 1, 3};
    EXPECT_EQ(paretoFrontier(points), expected);
}

TEST(Pareto, DuplicatePointsAllStayOnTheFrontier)
{
    const std::vector<DesignResult> points{
        point(20.0, 3.0, 1000.0),
        point(20.0, 3.0, 1000.0),
        point(10.0, 3.0, 1500.0),
    };
    const std::vector<std::size_t> expected{0, 1};
    EXPECT_EQ(paretoFrontier(points), expected);
}

TEST(Pareto, EmptyAndAllInfeasibleInputs)
{
    EXPECT_TRUE(paretoFrontier({}).empty());
    const std::vector<DesignResult> infeasible{
        point(20.0, 3.0, 1000.0, false),
        point(25.0, 5.0, 900.0, false),
    };
    EXPECT_TRUE(paretoFrontier(infeasible).empty());
}

TEST(Pareto, SingleFeasiblePointIsTheFrontier)
{
    const std::vector<DesignResult> points{point(15.0, 2.0, 800.0)};
    const std::vector<std::size_t> expected{0};
    EXPECT_EQ(paretoFrontier(points), expected);
}

} // namespace
} // namespace dronedse
