#include <gtest/gtest.h>

#include "power/board_power.hh"
#include "power/drone_power.hh"

namespace dronedse {
namespace {

using namespace unit_literals;

TEST(BoardPower, StateMeansMatchMeasurements)
{
    // Paper Section 5.1.
    EXPECT_EQ(boardStateMeanW(BoardState::Autopilot), 3.39_w);
    EXPECT_EQ(boardStateMeanW(BoardState::AutopilotSlamIdle), 4.05_w);
    EXPECT_EQ(boardStateMeanW(BoardState::AutopilotSlamFlying),
              4.56_w);
    EXPECT_EQ(boardStateMeanW(BoardState::Disconnected), 0.0_w);
}

TEST(BoardPower, Figure16aTraceShape)
{
    const auto script = figure16aScript();
    const PowerTrace trace = boardPowerTrace(script);
    ASSERT_EQ(trace.phases.size(), script.size());

    // Phase means within a tenth of a watt of the measurements.
    const double t_ap = trace.phases[1].first;
    const double t_idle = trace.phases[2].first;
    const double t_fly = trace.phases[3].first;
    const double t_off = trace.phases[4].first;
    EXPECT_NEAR(trace.meanW(t_ap, t_idle).value(), 3.39, 0.1);
    EXPECT_NEAR(trace.meanW(t_idle, t_fly).value(), 4.05, 0.1);
    EXPECT_NEAR(trace.meanW(t_fly, t_off).value(), 4.56, 0.25);
    // Peaks approach but never exceed 5 W.
    EXPECT_GT(trace.maxW(t_fly, t_off), 4.7_w);
    EXPECT_LE(trace.maxW(t_fly, t_off), 5.0_w);
    // Monotone ordering of the operating states.
    EXPECT_LT(trace.meanW(t_ap, t_idle), trace.meanW(t_idle, t_fly));
    EXPECT_LT(trace.meanW(t_idle, t_fly), trace.meanW(t_fly, t_off));
}

TEST(BoardPower, TraceStatsHelpers)
{
    PowerTrace trace;
    trace.samples = {{0.0, 2.0}, {1.0, 4.0}, {2.0, 6.0}};
    EXPECT_NEAR(trace.meanW(0.0, 2.0).value(), 3.0, 1e-12);
    EXPECT_NEAR(trace.maxW(0.0, 3.0).value(), 6.0, 1e-12);
    // 2 W for 1 s + 4 W for 1 s = 6 Ws.
    EXPECT_NEAR(trace.energyWh().value(), 6.0 / 3600.0, 1e-12);
}

TEST(BoardPowerDeath, RejectsBadRate)
{
    EXPECT_EXIT(boardPowerTrace(figure16aScript(), 0.0_hz),
                testing::ExitedWithCode(1), "");
}

TEST(DronePower, Figure16bFlight)
{
    FlightPowerConfig config;
    config.hoverS = 12.0_s;
    config.maneuverS = 10.0_s;
    const FlightPowerResult result = flyMeasurementFlight(config);

    EXPECT_TRUE(result.stableFlight);
    // Paper Figure 16b: ~130 W average in flight for the 450 mm
    // drone; accept 90-190 W.
    EXPECT_GT(result.flightMeanW, 90.0_w);
    EXPECT_LT(result.flightMeanW, 190.0_w);
    // Maneuvering spikes well above hover (paper: up to ~250 W).
    EXPECT_GT(result.maneuverPeakW, 1.2 * result.hoverMeanW);
    // Battery drained but far from empty in a two-minute flight.
    EXPECT_LT(result.finalSoc, 1.0);
    EXPECT_GT(result.finalSoc, 0.5);
    EXPECT_GT(result.energyDrawnWh, 1.0_wh);
    // Idle phase draws only electronics (~7 W).
    EXPECT_LT(result.trace.meanW(0.0, 5.0), 10.0_w);
    EXPECT_GE(result.trace.phases.size(), 3u);
}

TEST(DronePower, HeavierComputeRaisesTotalPower)
{
    FlightPowerConfig light;
    light.hoverS = 8.0_s;
    light.maneuverS = 6.0_s;
    FlightPowerConfig heavy = light;
    heavy.computePowerW += 15.0_w; // TX2-class system
    const double p_light =
        flyMeasurementFlight(light).flightMeanW.value();
    const double p_heavy =
        flyMeasurementFlight(heavy).flightMeanW.value();
    EXPECT_NEAR(p_heavy - p_light, 15.0, 4.0);
}

} // namespace
} // namespace dronedse
