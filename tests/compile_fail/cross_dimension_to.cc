// MUST NOT COMPILE: .to<>() converts between units of the *same*
// dimension only; watt-hours are not minutes.
#include "util/quantity.hh"

int
main()
{
    using namespace dronedse;
    auto bad = Quantity<WattHours>(1.0).to<Minutes>();
    (void)bad;
    return 0;
}
