/**
 * Positive control for the thread-safety negative-compile checks:
 * correctly locked access to a guarded member must compile cleanly
 * under -Wthread-safety -Wthread-safety-beta -Werror.
 */
#include "util/thread_annotations.hh"

namespace {

class Counter
{
  public:
    void bump()
    {
        dronedse::util::MutexLock lock(mutex_);
        ++value_;
    }

    int read()
    {
        dronedse::util::MutexLock lock(mutex_);
        return value_;
    }

  private:
    dronedse::util::Mutex mutex_;
    int value_ DDSE_GUARDED_BY(mutex_) = 0;
};

} // namespace

int
main()
{
    Counter c;
    c.bump();
    return c.read();
}
