/**
 * Must NOT compile under -Wthread-safety -Werror (clang): calls a
 * REQUIRES(mutex_) function without acquiring the mutex first.
 */
#include "util/thread_annotations.hh"

namespace {

class Counter
{
  public:
    void bump() DDSE_REQUIRES(mutex_) { ++value_; }
    void caller() { bump(); } // mutex_ not held

  private:
    dronedse::util::Mutex mutex_;
    int value_ DDSE_GUARDED_BY(mutex_) = 0;
};

} // namespace

int
main()
{
    Counter c;
    c.caller();
    return 0;
}
