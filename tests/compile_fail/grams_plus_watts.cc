// MUST NOT COMPILE: adding a mass to a power mixes dimensions.
#include "util/quantity.hh"

int
main()
{
    using namespace dronedse;
    auto bad = Quantity<Grams>(1.0) + Quantity<Watts>(1.0);
    (void)bad;
    return 0;
}
