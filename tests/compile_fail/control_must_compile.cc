// Positive control for the negative-compile harness: this file uses
// the same include path and flags as the must-fail snippets and MUST
// compile.  If it fails, the harness is broken (e.g. a bad include
// dir), and the "expected failures" above prove nothing.
#include "util/quantity.hh"

int
main()
{
    using namespace dronedse;
    const auto p = Quantity<Volts>(11.1) * Quantity<Amperes>(2.0);
    return p.value() > 0.0 ? 0 : 1;
}
