/**
 * Must NOT compile under -Wthread-safety -Werror (clang): reads a
 * GUARDED_BY member without holding its mutex.
 */
#include "util/thread_annotations.hh"

namespace {

class Counter
{
  public:
    int read() { return value_; } // no lock held

  private:
    dronedse::util::Mutex mutex_;
    int value_ DDSE_GUARDED_BY(mutex_) = 0;
};

} // namespace

int
main()
{
    Counter c;
    return c.read();
}
