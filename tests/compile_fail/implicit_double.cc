// MUST NOT COMPILE: Quantity's constructor is explicit, so a raw
// double cannot silently become a typed value.
#include "util/quantity.hh"

int
main()
{
    dronedse::Quantity<dronedse::Watts> p = 4.5;
    (void)p;
    return 0;
}
