// MUST NOT COMPILE: same dimension, different unit — adding grams to
// kilograms without an explicit .to<>() conversion is the silent
// 1000x bug the type system exists to stop.
#include "util/quantity.hh"

int
main()
{
    using namespace dronedse;
    auto bad = Quantity<Grams>(1.0) + Quantity<Kilograms>(1.0);
    (void)bad;
    return 0;
}
