/**
 * @file
 * Geometric back-end tests: PnP, triangulation, and bundle
 * adjustment on synthetic configurations with known ground truth.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "slam/ba.hh"
#include "slam/pnp.hh"
#include "slam/triangulation.hh"
#include "util/rng.hh"

namespace dronedse {
namespace {

PinholeCamera
camera()
{
    return {};
}

/** Random landmarks in front of the origin. */
std::vector<Vec3>
cloud(Rng &rng, int n)
{
    std::vector<Vec3> pts;
    pts.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        pts.push_back({rng.uniform(-3.0, 3.0), rng.uniform(-2.0, 2.0),
                       rng.uniform(4.0, 10.0)});
    }
    return pts;
}

TEST(Pnp, RecoversPoseFromNoisyProjections)
{
    Rng rng(3);
    const PinholeCamera cam = camera();
    Se3 truth;
    truth.rotation = Quaternion::fromEuler(0.05, -0.08, 0.1);
    truth.translation = {0.2, -0.1, 0.3};

    std::vector<PnpPoint> points;
    for (const Vec3 &w : cloud(rng, 60)) {
        const auto px = cam.projectWorld(truth, w);
        if (!px)
            continue;
        points.push_back(
            {w, {px->u + rng.gaussian(0.0, 0.4),
                 px->v + rng.gaussian(0.0, 0.4)}});
    }
    ASSERT_GE(points.size(), 30u);

    const PnpResult res = solvePnp(cam, points, Se3{});
    ASSERT_TRUE(res.converged);
    EXPECT_LT((res.pose.center() - truth.center()).norm(), 0.03);
    EXPECT_LT(res.rmsReprojPx, 1.0);
    EXPECT_GT(res.inliers, 25);
}

TEST(Pnp, RobustToOutliers)
{
    Rng rng(4);
    const PinholeCamera cam = camera();
    Se3 truth;
    truth.translation = {0.1, 0.2, 0.0};

    std::vector<PnpPoint> points;
    int added = 0;
    for (const Vec3 &w : cloud(rng, 80)) {
        const auto px = cam.projectWorld(truth, w);
        if (!px)
            continue;
        PnpPoint p{w, {px->u, px->v}};
        // 20 % gross outliers.
        if (added % 5 == 0) {
            p.pixel.u = rng.uniform(0.0, 320.0);
            p.pixel.v = rng.uniform(0.0, 240.0);
        }
        points.push_back(p);
        ++added;
    }

    const PnpResult res = solvePnp(cam, points, Se3{});
    ASSERT_TRUE(res.converged);
    EXPECT_LT((res.pose.center() - truth.center()).norm(), 0.05);
}

TEST(Pnp, TooFewPointsFails)
{
    const PinholeCamera cam = camera();
    const std::vector<PnpPoint> points(3);
    EXPECT_FALSE(solvePnp(cam, points, Se3{}).converged);
}

TEST(Triangulation, RecoversPointWithBaseline)
{
    const PinholeCamera cam = camera();
    const Vec3 truth{1.0, -0.5, 6.0};
    const Se3 pose_a; // identity
    Se3 pose_b;
    pose_b.translation = {-0.8, 0.0, 0.0}; // 0.8 m baseline

    const auto pa = cam.projectWorld(pose_a, truth);
    const auto pb = cam.projectWorld(pose_b, truth);
    ASSERT_TRUE(pa && pb);
    const auto est = triangulate(cam, pose_a, *pa, pose_b, *pb);
    ASSERT_TRUE(est.has_value());
    EXPECT_LT((*est - truth).norm(), 0.02);
}

TEST(Triangulation, ParallaxGateRejectsShortBaseline)
{
    const PinholeCamera cam = camera();
    const Vec3 truth{0.5, 0.2, 12.0};
    const Se3 pose_a;
    Se3 pose_b;
    pose_b.translation = {-0.01, 0.0, 0.0}; // 1 cm baseline at 12 m

    const auto pa = cam.projectWorld(pose_a, truth);
    const auto pb = cam.projectWorld(pose_b, truth);
    ASSERT_TRUE(pa && pb);
    EXPECT_FALSE(
        triangulate(cam, pose_a, *pa, pose_b, *pb).has_value());
}

TEST(Triangulation, RejectsBehindCamera)
{
    const PinholeCamera cam = camera();
    const Se3 pose_a;
    Se3 pose_b;
    pose_b.translation = {-0.8, 0.0, 0.0};
    // Diverging forward rays whose closest approach lies behind the
    // cameras.
    const Pixel pa{cam.cx - 80.0, cam.cy};
    const Pixel pb{cam.cx + 80.0, cam.cy};
    const auto est = triangulate(cam, pose_a, pa, pose_b, pb);
    EXPECT_FALSE(est.has_value());
}

/** Build a small map with noisy poses/points for BA tests. */
struct BaFixture
{
    PinholeCamera cam;
    SlamMap map;
    std::vector<Se3> true_poses;
    std::vector<Vec3> true_points;

    explicit BaFixture(double pose_noise, double point_noise,
                       int n_kf = 6, int n_pts = 60)
    {
        Rng rng(9);
        for (const Vec3 &p : cloud(rng, n_pts))
            true_points.push_back(p);

        for (int k = 0; k < n_kf; ++k) {
            Se3 pose;
            pose.translation = {-0.3 * k, 0.02 * k, 0.0};
            true_poses.push_back(pose);
        }

        // Map points at noisy positions.
        BriefExtractor brief;
        for (const Vec3 &p : true_points) {
            const Vec3 noisy{p.x + rng.gaussian(0.0, point_noise),
                             p.y + rng.gaussian(0.0, point_noise),
                             p.z + rng.gaussian(0.0, point_noise)};
            map.addPoint(noisy, Descriptor{});
        }

        // Keyframes at noisy poses observing true projections.
        for (int k = 0; k < n_kf; ++k) {
            Keyframe kf;
            kf.frameIndex = k;
            kf.pose = true_poses[static_cast<std::size_t>(k)];
            if (k > 0) {
                kf.pose.translation += {rng.gaussian(0.0, pose_noise),
                                        rng.gaussian(0.0, pose_noise),
                                        rng.gaussian(0.0, pose_noise)};
            }
            for (std::size_t i = 0; i < true_points.size(); ++i) {
                const auto px = cam.projectWorld(
                    true_poses[static_cast<std::size_t>(k)],
                    true_points[i]);
                if (px)
                    kf.observations.push_back(
                        {static_cast<int>(i), *px});
            }
            map.addKeyframe(std::move(kf));
        }
    }
};

TEST(BundleAdjust, ReducesChi2AndRecoversGeometry)
{
    BaFixture fx(0.05, 0.08);
    const BaResult res = globalBundleAdjust(fx.cam, fx.map);
    EXPECT_TRUE(res.converged);
    EXPECT_LT(res.finalChi2, 0.05 * res.initialChi2 + 1.0);
    EXPECT_GT(res.jacobianEvals, 100u);
    EXPECT_GT(res.pointBlockSolves, 0u);

    // Points move back toward truth.
    double err = 0.0;
    for (std::size_t i = 0; i < fx.true_points.size(); ++i) {
        err += (fx.map.points()[i].position - fx.true_points[i])
                   .norm();
    }
    err /= static_cast<double>(fx.true_points.size());
    EXPECT_LT(err, 0.03);

    // Poses recover too (first held fixed).
    for (std::size_t k = 1; k < fx.true_poses.size(); ++k) {
        EXPECT_LT((fx.map.keyframes()[k].pose.center() -
                   fx.true_poses[k].center())
                      .norm(),
                  0.02)
            << "keyframe " << k;
    }
}

TEST(BundleAdjust, GaugeKeepsFirstPoseFixed)
{
    BaFixture fx(0.05, 0.08);
    const Se3 before = fx.map.keyframes()[0].pose;
    globalBundleAdjust(fx.cam, fx.map);
    const Se3 after = fx.map.keyframes()[0].pose;
    EXPECT_EQ(before.translation.x, after.translation.x);
    EXPECT_EQ(before.rotation.w, after.rotation.w);
}

TEST(BundleAdjust, LocalWindowKeepsAnchorsFixed)
{
    BaFixture fx(0.05, 0.08);
    const Se3 anchor_before = fx.map.keyframes()[1].pose;
    const BaResult res = bundleAdjust(fx.cam, fx.map, 3, 6);
    EXPECT_TRUE(res.converged);
    // Keyframes outside the window are untouched.
    EXPECT_EQ(fx.map.keyframes()[1].pose.translation.x,
              anchor_before.translation.x);
    // The Schur system covers exactly the window poses.
    EXPECT_EQ(res.schurDimension, 6 * 3);
}

TEST(BundleAdjust, CleanDataStaysPut)
{
    BaFixture fx(0.0, 0.0);
    const BaResult res = globalBundleAdjust(fx.cam, fx.map);
    EXPECT_TRUE(res.converged);
    EXPECT_LT(res.finalChi2, 1e-6);
}

TEST(BundleAdjustDeath, RejectsBadWindow)
{
    BaFixture fx(0.01, 0.01);
    EXPECT_EXIT(bundleAdjust(fx.cam, fx.map, 4, 2),
                testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace dronedse
