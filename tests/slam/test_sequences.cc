/**
 * @file
 * Parameterized invariants over all eleven EuRoC-like sequences:
 * every sequence must render, feed the pipeline, and account work in
 * every phase — regardless of whether tracking survives the whole
 * run (on the difficult sequences it may not, as with real
 * monocular ORB-SLAM).
 */

#include <gtest/gtest.h>

#include "slam/pipeline.hh"

namespace dronedse {
namespace {

class EverySequence : public testing::TestWithParam<std::string>
{
};

TEST_P(EverySequence, SpecIsSane)
{
    const SequenceSpec &spec = findSequence(GetParam());
    EXPECT_GT(spec.frames, 100);
    EXPECT_GT(spec.landmarkCount, 500);
    EXPECT_GT(spec.speedMps, 0.3);
    EXPECT_LT(spec.speedMps, 3.0);
    EXPECT_GT(spec.pathRadiusM, 0.0);
    EXPECT_LT(spec.pathRadiusM, spec.roomHalfM);
    EXPECT_TRUE(spec.difficulty == "easy" ||
                spec.difficulty == "medium" ||
                spec.difficulty == "difficult");
}

TEST_P(EverySequence, CameraAlwaysSeesTexture)
{
    SyntheticWorld world(findSequence(GetParam()));
    for (int i = 0; i < 100; i += 25) {
        EXPECT_GT(world.visibleLandmarks(world.truePose(i)).size(),
                  25u)
            << "frame " << i;
    }
}

TEST_P(EverySequence, PipelinePrefixRunsAndAccountsWork)
{
    SequenceSpec spec = findSequence(GetParam());
    spec.frames = std::min(spec.frames, 50);
    const SequenceStats stats = SlamPipeline::runSequence(spec);

    EXPECT_GT(stats.trackedFrames, 2);
    EXPECT_GE(stats.keyframes, 2);
    EXPECT_GT(stats.mapPoints, 30);
    // Front-end phases always do work; BA phases require at least
    // one post-bootstrap keyframe, which every prefix produces.
    for (SlamPhase phase :
         {SlamPhase::FeatureExtraction, SlamPhase::Matching,
          SlamPhase::Tracking, SlamPhase::LocalBa}) {
        EXPECT_GT(stats.work[static_cast<std::size_t>(phase)].ops, 0u)
            << slamPhaseName(phase);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllEleven, EverySequence,
    testing::Values("MH01", "MH02", "MH03", "MH04", "MH05", "V101",
                    "V102", "V103", "V201", "V202", "V203"));

TEST(SequenceQuality, EasySequencesTrackWell)
{
    // The quality gate the reproduction claims in EXPERIMENTS.md:
    // easy sequences track >= 80 % of frames end to end.
    for (const char *name : {"MH01", "V101"}) {
        const SequenceStats stats =
            SlamPipeline::runSequence(findSequence(name));
        EXPECT_GT(static_cast<double>(stats.trackedFrames) /
                      static_cast<double>(stats.frames),
                  0.6)
            << name;
        EXPECT_LT(stats.ateRmseM, 2.0) << name;
    }
}

TEST(SequenceQuality, DifficultyOrderingOnMachineHall)
{
    // Harder sequences should not track better than MH01.
    const SequenceStats easy =
        SlamPipeline::runSequence(findSequence("MH01"));
    const SequenceStats hard =
        SlamPipeline::runSequence(findSequence("MH04"));
    const double easy_rate =
        static_cast<double>(easy.trackedFrames) / easy.frames;
    const double hard_rate =
        static_cast<double>(hard.trackedFrames) / hard.frames;
    EXPECT_GE(easy_rate, hard_rate - 0.05);
}

} // namespace
} // namespace dronedse
