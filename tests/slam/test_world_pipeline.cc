#include <gtest/gtest.h>

#include <cmath>

#include "slam/map.hh"
#include "slam/pipeline.hh"
#include "slam/world.hh"

namespace dronedse {
namespace {

TEST(World, ElevenEuRocSequences)
{
    const auto &specs = euRocSequences();
    EXPECT_EQ(specs.size(), 11u);
    EXPECT_EQ(specs.front().name, "MH01");
    EXPECT_EQ(specs.back().name, "V203");
    EXPECT_EQ(findSequence("V101").difficulty, "easy");
    EXPECT_EQ(findSequence("MH04").difficulty, "difficult");
    // Machine-hall rooms are larger than Vicon rooms.
    EXPECT_GT(findSequence("MH01").roomHalfM,
              findSequence("V101").roomHalfM);
}

TEST(World, LookAtPoseGeometry)
{
    const Vec3 center{1.0, 2.0, 3.0};
    const Vec3 target{5.0, 2.0, 3.0};
    const Se3 pose = lookAtPose(center, target);
    // Camera centre maps to the origin of the camera frame.
    EXPECT_NEAR(pose.apply(center).norm(), 0.0, 1e-12);
    // The target sits on the +z (optical) axis.
    const Vec3 t = pose.apply(target);
    EXPECT_NEAR(t.x, 0.0, 1e-12);
    EXPECT_NEAR(t.y, 0.0, 1e-12);
    EXPECT_GT(t.z, 0.0);
}

TEST(World, RenderingIsDeterministic)
{
    const auto &spec = findSequence("V101");
    SyntheticWorld a(spec), b(spec);
    const SyntheticFrame fa = a.renderFrame(5);
    const SyntheticFrame fb = b.renderFrame(5);
    EXPECT_EQ(fa.image.data(), fb.image.data());
}

TEST(World, ManyLandmarksVisiblePerFrame)
{
    SyntheticWorld world(findSequence("MH01"));
    for (int i = 0; i < 50; i += 10) {
        const auto visible =
            world.visibleLandmarks(world.truePose(i));
        EXPECT_GT(visible.size(), 40u) << "frame " << i;
    }
}

TEST(World, TrajectoryIsSmooth)
{
    SyntheticWorld world(findSequence("MH01"));
    for (int i = 1; i < 40; ++i) {
        const double step = (world.truePose(i).center() -
                             world.truePose(i - 1).center())
                                .norm();
        // ~speed/fps metres per frame.
        EXPECT_LT(step, 0.2);
        EXPECT_GT(step, 0.005);
    }
}

TEST(Map, AddAndRetrieve)
{
    SlamMap map;
    const int p0 = map.addPoint({1, 2, 3}, Descriptor{});
    const int p1 = map.addPoint({4, 5, 6}, Descriptor{});
    EXPECT_EQ(map.pointCount(), 2u);
    EXPECT_EQ(map.point(p1).position.y, 5.0);

    Keyframe kf;
    kf.observations.push_back({p0, {10, 20}});
    const int k0 = map.addKeyframe(std::move(kf));
    EXPECT_EQ(map.point(p0).observations, 1);
    map.addObservation(k0, p1, {30, 40});
    EXPECT_EQ(map.point(p1).observations, 1);
    EXPECT_EQ(map.keyframe(k0).observations.size(), 2u);
}

TEST(Map, CullsWeakOldPoints)
{
    SlamMap map;
    const int weak = map.addPoint({0, 0, 5}, Descriptor{});
    const int strong = map.addPoint({1, 0, 5}, Descriptor{});

    Keyframe kf0;
    kf0.observations.push_back({weak, {10, 10}});
    kf0.observations.push_back({strong, {20, 20}});
    map.addKeyframe(std::move(kf0));

    Keyframe kf1;
    kf1.observations.push_back({strong, {21, 21}});
    map.addKeyframe(std::move(kf1));

    // Cull points with < 2 observations not seen since keyframe 1.
    const std::size_t removed = map.cullPoints(2, 1);
    EXPECT_EQ(removed, 1u);
    EXPECT_EQ(map.pointCount(), 1u);
    EXPECT_EQ(map.points()[0].id, strong);
    // The dead point's observations are gone from keyframe 0.
    EXPECT_EQ(map.keyframe(0).observations.size(), 1u);
}

TEST(Pipeline, BootstrapSeedsMap)
{
    const auto &spec = findSequence("MH01");
    SyntheticWorld world(spec);
    SlamPipeline pipeline(world.camera());
    pipeline.bootstrap(world.renderFrame(0), world.renderFrame(15));
    EXPECT_GT(pipeline.map().pointCount(), 80u);
    EXPECT_EQ(pipeline.map().keyframeCount(), 2u);
    EXPECT_EQ(pipeline.trajectory().size(), 2u);
}

TEST(Pipeline, TracksEasySequencePrefix)
{
    const auto &spec = findSequence("MH01");
    SyntheticWorld world(spec);
    SlamPipeline pipeline(world.camera());

    std::vector<Se3> truth;
    const SyntheticFrame f0 = world.renderFrame(0);
    const SyntheticFrame f1 = world.renderFrame(15);
    truth.push_back(f0.truePose);
    truth.push_back(f1.truePose);
    pipeline.bootstrap(f0, f1);

    int tracked = 0;
    const int until = 80;
    for (int i = 16; i < until; ++i) {
        const SyntheticFrame frame = world.renderFrame(i);
        truth.push_back(frame.truePose);
        if (pipeline.processFrame(frame).tracked)
            ++tracked;
    }
    EXPECT_GT(tracked, (until - 16) * 8 / 10);
    EXPECT_LT(pipeline.ateRmseM(truth), 1.5);
}

TEST(Pipeline, WorkCountersPopulated)
{
    SequenceSpec spec = findSequence("V101");
    spec.frames = 60; // short run for test speed
    const SequenceStats stats = SlamPipeline::runSequence(spec);
    const auto &work = stats.work;
    EXPECT_GT(work[static_cast<std::size_t>(
                       SlamPhase::FeatureExtraction)]
                  .ops,
              0u);
    EXPECT_GT(work[static_cast<std::size_t>(SlamPhase::Matching)].ops,
              0u);
    EXPECT_GT(work[static_cast<std::size_t>(SlamPhase::Tracking)].ops,
              0u);
    EXPECT_GT(work[static_cast<std::size_t>(SlamPhase::LocalBa)].ops,
              0u);
    EXPECT_GT(work[static_cast<std::size_t>(SlamPhase::GlobalBa)].ops,
              0u);
    EXPECT_GT(stats.keyframes, 2);
    EXPECT_GT(stats.mapPoints, 100);
}

TEST(Pipeline, PhaseNames)
{
    EXPECT_STREQ(slamPhaseName(SlamPhase::FeatureExtraction),
                 "feature-extraction");
    EXPECT_STREQ(slamPhaseName(SlamPhase::GlobalBa), "global-ba");
}

TEST(PipelineDeath, ProcessBeforeBootstrap)
{
    SlamPipeline pipeline(PinholeCamera{});
    SyntheticWorld world(findSequence("V101"));
    EXPECT_EXIT(pipeline.processFrame(world.renderFrame(0)),
                testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace dronedse
