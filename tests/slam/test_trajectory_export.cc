#include <gtest/gtest.h>

#include <sstream>

#include "slam/pipeline.hh"

namespace dronedse {
namespace {

TEST(TrajectoryExport, TumFormatShape)
{
    std::vector<Se3> poses(3);
    poses[1].translation = {1.0, 2.0, 3.0};
    poses[2].rotation = Quaternion::fromEuler(0.0, 0.0, 0.5);

    const std::string tum =
        SlamPipeline::trajectoryToTum(poses, 20.0);
    std::stringstream ss(tum);
    std::string line;
    int lines = 0;
    while (std::getline(ss, line)) {
        std::stringstream ls(line);
        double v;
        int fields = 0;
        while (ls >> v)
            ++fields;
        EXPECT_EQ(fields, 8) << line;
        ++lines;
    }
    EXPECT_EQ(lines, 3);
}

TEST(TrajectoryExport, TimestampsFollowFps)
{
    std::vector<Se3> poses(3);
    const std::string tum =
        SlamPipeline::trajectoryToTum(poses, 10.0);
    std::stringstream ss(tum);
    double t0, t1;
    std::string rest;
    ss >> t0;
    std::getline(ss, rest);
    ss >> t1;
    EXPECT_NEAR(t0, 0.0, 1e-9);
    EXPECT_NEAR(t1, 0.1, 1e-9);
}

TEST(TrajectoryExport, StoresCameraCenters)
{
    // The exported translation is the camera centre in the world
    // frame (camera-to-world convention).
    Se3 pose;
    pose.rotation = Quaternion::fromEuler(0.1, -0.2, 0.7);
    pose.translation = {3.0, -1.0, 2.0};
    const Vec3 centre = pose.center();

    const std::string tum = SlamPipeline::trajectoryToTum({pose});
    std::stringstream ss(tum);
    double t, x, y, z;
    ss >> t >> x >> y >> z;
    EXPECT_NEAR(x, centre.x, 1e-5);
    EXPECT_NEAR(y, centre.y, 1e-5);
    EXPECT_NEAR(z, centre.z, 1e-5);
}

TEST(TrajectoryExportDeath, RejectsBadFps)
{
    EXPECT_EXIT(SlamPipeline::trajectoryToTum({}, 0.0),
                testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace dronedse
