#include <gtest/gtest.h>

#include <cmath>

#include "slam/camera.hh"
#include "slam/se3.hh"

namespace dronedse {
namespace {

TEST(Se3, ApplyInverseRoundTrip)
{
    Se3 pose;
    pose.rotation = Quaternion::fromEuler(0.2, -0.3, 0.9);
    pose.translation = {1.0, -2.0, 3.0};
    const Vec3 world{4.0, 5.0, -1.0};
    const Vec3 cam = pose.apply(world);
    const Vec3 back = pose.applyInverse(cam);
    EXPECT_NEAR(back.x, world.x, 1e-12);
    EXPECT_NEAR(back.y, world.y, 1e-12);
    EXPECT_NEAR(back.z, world.z, 1e-12);
}

TEST(Se3, CenterIsCameraOrigin)
{
    Se3 pose;
    pose.rotation = Quaternion::fromEuler(0.5, 0.1, -0.4);
    pose.translation = {2.0, 0.0, -1.0};
    const Vec3 c = pose.center();
    const Vec3 at_origin = pose.apply(c);
    EXPECT_NEAR(at_origin.norm(), 0.0, 1e-12);
}

TEST(Se3, ComposeMatchesSequentialApply)
{
    Se3 a, b;
    a.rotation = Quaternion::fromEuler(0.1, 0.2, 0.3);
    a.translation = {1, 2, 3};
    b.rotation = Quaternion::fromEuler(-0.2, 0.4, 0.0);
    b.translation = {-1, 0, 2};
    const Vec3 x{0.5, -0.5, 4.0};
    const Vec3 via_compose = a.compose(b).apply(x);
    const Vec3 via_sequential = a.apply(b.apply(x));
    EXPECT_NEAR(via_compose.x, via_sequential.x, 1e-12);
    EXPECT_NEAR(via_compose.y, via_sequential.y, 1e-12);
    EXPECT_NEAR(via_compose.z, via_sequential.z, 1e-12);
}

TEST(Se3, InverseComposesToIdentity)
{
    Se3 a;
    a.rotation = Quaternion::fromEuler(0.7, -0.1, 0.2);
    a.translation = {3, -4, 5};
    const Se3 id = a.compose(a.inverse());
    EXPECT_NEAR(id.translation.norm(), 0.0, 1e-12);
    EXPECT_NEAR(std::fabs(id.rotation.w), 1.0, 1e-12);
}

TEST(Se3, ExpMapSmallAngle)
{
    const Quaternion q = so3Exp({1e-8, 0, 0});
    EXPECT_NEAR(q.w, 1.0, 1e-12);
    EXPECT_NEAR(q.x, 5e-9, 1e-12);

    const Quaternion q2 = so3Exp({0, 0, M_PI / 2});
    EXPECT_NEAR(q2.yaw(), M_PI / 2, 1e-12);
}

TEST(Se3, BoxPlusMatchesLinearization)
{
    Se3 pose;
    pose.rotation = Quaternion::fromEuler(0.1, 0.0, 0.0);
    pose.translation = {1, 0, 0};
    const Vec3 x{2, 3, 4};
    const Vec3 p = pose.apply(x);

    const Vec3 omega{1e-4, -2e-4, 3e-4};
    const Vec3 upsilon{5e-4, 0, -1e-4};
    const Vec3 p_new = se3BoxPlus(pose, omega, upsilon).apply(x);
    // First-order prediction; the gap is the second-order term.
    const Vec3 predicted = p + omega.cross(p) + upsilon;
    EXPECT_NEAR(p_new.x, predicted.x, 5e-6);
    EXPECT_NEAR(p_new.y, predicted.y, 5e-6);
    EXPECT_NEAR(p_new.z, predicted.z, 5e-6);
}

TEST(Camera, ProjectBackProjectRoundTrip)
{
    PinholeCamera cam;
    const Vec3 p{0.5, -0.3, 4.0};
    const auto px = cam.project(p);
    ASSERT_TRUE(px.has_value());
    const Vec3 back = cam.backProject(*px, 4.0);
    EXPECT_NEAR(back.x, p.x, 1e-12);
    EXPECT_NEAR(back.y, p.y, 1e-12);
    EXPECT_NEAR(back.z, p.z, 1e-12);
}

TEST(Camera, RejectsBehindCamera)
{
    PinholeCamera cam;
    EXPECT_FALSE(cam.project({0, 0, -1}).has_value());
    EXPECT_FALSE(cam.project({0, 0, 0.01}).has_value());
}

TEST(Camera, RejectsOutsideImage)
{
    PinholeCamera cam;
    // Steep lateral angle lands outside 320x240.
    EXPECT_FALSE(cam.project({10.0, 0.0, 1.0}).has_value());
    EXPECT_TRUE(cam.inImage({5, 5}, 0.0));
    EXPECT_FALSE(cam.inImage({5, 5}, 10.0));
}

TEST(Camera, PrincipalPointProjectsToCenter)
{
    PinholeCamera cam;
    const auto px = cam.project({0, 0, 2.0});
    ASSERT_TRUE(px.has_value());
    EXPECT_NEAR(px->u, cam.cx, 1e-12);
    EXPECT_NEAR(px->v, cam.cy, 1e-12);
}

} // namespace
} // namespace dronedse
