#include <gtest/gtest.h>

#include <cmath>

#include "slam/brief.hh"
#include "slam/fast.hh"
#include "slam/matcher.hh"
#include "slam/world.hh"

namespace dronedse {
namespace {

/** Stamp a deterministic high-contrast 7x7 pattern. */
void
stampPattern(Image &img, int cx, int cy, std::uint64_t seed)
{
    Rng rng(seed);
    for (int dy = -3; dy <= 3; ++dy)
        for (int dx = -3; dx <= 3; ++dx)
            img.at(cx + dx, cy + dy) = rng.bernoulli(0.5) ? 235 : 15;
}

Image
flatImage()
{
    return Image(160, 120, 100);
}

TEST(Fast, FlatImageHasNoCorners)
{
    const Image img = flatImage();
    const auto corners = detectFast(img);
    EXPECT_TRUE(corners.empty());
}

TEST(Fast, DetectsStampedPatterns)
{
    Image img = flatImage();
    stampPattern(img, 40, 40, 1);
    stampPattern(img, 100, 60, 2);
    stampPattern(img, 60, 90, 3);
    const auto corners = detectFast(img);
    ASSERT_GE(corners.size(), 3u);
    // Each stamp yields at least one corner within a few pixels.
    for (const auto &[sx, sy] :
         {std::pair{40, 40}, {100, 60}, {60, 90}}) {
        bool found = false;
        for (const auto &c : corners) {
            if (std::abs(c.x - sx) <= 4 && std::abs(c.y - sy) <= 4)
                found = true;
        }
        EXPECT_TRUE(found) << "stamp at " << sx << "," << sy;
    }
}

TEST(Fast, RespectsMargin)
{
    Image img = flatImage();
    stampPattern(img, 5, 5, 4); // inside the margin band
    FastConfig cfg;
    cfg.margin = 12;
    const auto corners = detectFast(img, cfg);
    for (const auto &c : corners) {
        EXPECT_GE(c.x, cfg.margin);
        EXPECT_GE(c.y, cfg.margin);
        EXPECT_LT(c.x, img.width() - cfg.margin);
        EXPECT_LT(c.y, img.height() - cfg.margin);
    }
}

TEST(Fast, NonMaximumSuppressionSpacing)
{
    Image img = flatImage();
    for (int i = 0; i < 6; ++i)
        stampPattern(img, 40 + 8 * i, 40, 10 + static_cast<unsigned>(i));
    FastConfig cfg;
    cfg.nmsRadius = 3;
    const auto corners = detectFast(img, cfg);
    for (std::size_t a = 0; a < corners.size(); ++a) {
        for (std::size_t b = a + 1; b < corners.size(); ++b) {
            const int dx = corners[a].x - corners[b].x;
            const int dy = corners[a].y - corners[b].y;
            EXPECT_GT(dx * dx + dy * dy,
                      cfg.nmsRadius * cfg.nmsRadius);
        }
    }
}

TEST(Fast, MaxCornersCap)
{
    Image img = flatImage();
    Rng rng(3);
    for (int i = 0; i < 80; ++i) {
        stampPattern(img,
                     static_cast<int>(rng.uniformInt(15, 144)),
                     static_cast<int>(rng.uniformInt(15, 104)),
                     static_cast<std::uint64_t>(i) + 100);
    }
    FastConfig cfg;
    cfg.maxCorners = 20;
    const auto corners = detectFast(img, cfg);
    EXPECT_LE(corners.size(), 20u);
    EXPECT_GE(corners.size(), 15u);
}

TEST(Fast, WorkCountersAccumulate)
{
    Image img = flatImage();
    stampPattern(img, 40, 40, 1);
    FastWork work;
    detectFast(img, {}, &work);
    EXPECT_GT(work.pixelsTested, 10000u);
}

TEST(Brief, SelfDistanceZeroAndSymmetry)
{
    Image img = flatImage();
    stampPattern(img, 40, 40, 7);
    BriefExtractor brief;
    const Descriptor a = brief.describe(img, {40, 40, 0});
    const Descriptor b = brief.describe(img, {41, 40, 0});
    EXPECT_EQ(a.distance(a), 0);
    EXPECT_EQ(a.distance(b), b.distance(a));
}

TEST(Brief, StableUnderOnePixelShift)
{
    // The 3x3 box smoothing must keep a descriptor much closer to
    // its 1-px-shifted self than to a different pattern.
    Image img = flatImage();
    stampPattern(img, 40, 40, 7);
    stampPattern(img, 100, 60, 8);
    BriefExtractor brief;
    const Descriptor self = brief.describe(img, {40, 40, 0});
    const Descriptor shifted = brief.describe(img, {41, 40, 0});
    const Descriptor other = brief.describe(img, {100, 60, 0});
    EXPECT_LT(self.distance(shifted), 50);
    EXPECT_GT(self.distance(other), 52);
    EXPECT_LT(self.distance(shifted), self.distance(other));
}

TEST(Matcher, MatchesIdenticalFeatureSets)
{
    Image img = flatImage();
    Rng rng(5);
    for (int i = 0; i < 12; ++i) {
        stampPattern(img, 20 + (i % 4) * 35, 20 + (i / 4) * 35,
                     static_cast<std::uint64_t>(i) + 50);
    }
    BriefExtractor brief;
    const auto corners = detectFast(img);
    const auto features = brief.describeAll(img, corners);
    ASSERT_GE(features.size(), 8u);

    MatchWork work;
    const auto matches = matchFeatures(features, features, {}, &work);
    EXPECT_EQ(matches.size(), features.size());
    for (const auto &m : matches) {
        EXPECT_EQ(m.queryIndex, m.trainIndex);
        EXPECT_EQ(m.distance, 0);
    }
    EXPECT_EQ(work.comparisons, features.size() * features.size());
}

TEST(Matcher, RatioTestRejectsAmbiguous)
{
    // Two identical train descriptors: best == second, so the ratio
    // test must reject the match.
    Image img = flatImage();
    stampPattern(img, 40, 40, 9);
    BriefExtractor brief;
    const Descriptor d = brief.describe(img, {40, 40, 0});
    Feature f;
    f.corner = {40, 40, 0};
    f.descriptor = d;
    const std::vector<Feature> query{f};
    const std::vector<Descriptor> train{d, d};
    const auto matches = matchDescriptors(query, train);
    EXPECT_TRUE(matches.empty());
}

TEST(Matcher, DistanceThreshold)
{
    Image img = flatImage();
    stampPattern(img, 40, 40, 9);
    stampPattern(img, 100, 60, 10);
    BriefExtractor brief;
    Feature f;
    f.corner = {40, 40, 0};
    f.descriptor = brief.describe(img, {40, 40, 0});
    const std::vector<Descriptor> train{
        brief.describe(img, {100, 60, 0})};
    MatcherConfig cfg;
    cfg.maxDistance = 10; // far below a random-pattern distance
    EXPECT_TRUE(matchDescriptors({f}, train, cfg).empty());
}

} // namespace
} // namespace dronedse
