#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "components/compute_board.hh"
#include "dse/sweep.hh"
#include "explore/sampler.hh"
#include "explore/space.hh"

namespace dronedse::explore {
namespace {

using namespace unit_literals;

/** A small space with two lattice axes (16 x 16). */
ExploreSpace
square16()
{
    ExploreSpace space;
    space.axes = {twrAxis(1.5, 0.1, 16),
                  capacityAxis(1000.0_mah, 250.0_mah, 16)};
    return space;
}

/** A 3-axis space with power-of-two sizes (8 x 8 x 4). */
ExploreSpace
dyadic3()
{
    ExploreSpace space;
    space.axes = {twrAxis(1.5, 0.1, 8),
                  capacityAxis(1000.0_mah, 500.0_mah, 8),
                  payloadAxis(0.0_g, 100.0_g, 4)};
    return space;
}

SweepSpec
smallSweep()
{
    SweepSpec spec = classSweepSpec(classSpec(SizeClass::Medium),
                                    {2, 3}, 250.0_mah, basicChip3W());
    spec.boards = {basicChip3W(), advancedChip20W()};
    spec.activities = {FlightActivity::Hovering,
                       FlightActivity::Maneuvering};
    return spec;
}

TEST(Samplers, NameRoundTrip)
{
    for (SamplerKind kind :
         {SamplerKind::Grid, SamplerKind::UniformRandom,
          SamplerKind::LatinHypercube, SamplerKind::Sobol}) {
        SamplerKind parsed;
        ASSERT_TRUE(parseSamplerKind(samplerKindName(kind), parsed));
        EXPECT_EQ(parsed, kind);
    }
    SamplerKind parsed;
    EXPECT_FALSE(parseSamplerKind("halton", parsed));
}

TEST(Samplers, GridEnumerationMatchesExpandGrid)
{
    const SweepSpec spec = smallSweep();
    const ExploreSpace space = spaceFromSweepSpec(spec);
    const std::vector<DesignInputs> grid = expandGrid(spec);
    ASSERT_EQ(space.pointCount(), grid.size());

    auto gen = makeGenerator(SamplerKind::Grid, 0);
    const auto batch = gen->nextBatch(space, grid.size() + 10);
    ASSERT_EQ(batch.size(), grid.size());
    // Exhausted: further calls return nothing.
    EXPECT_TRUE(gen->nextBatch(space, 4).empty());

    for (std::size_t i = 0; i < grid.size(); ++i) {
        const DesignInputs in = space.materialize(batch[i]);
        // Bit-identical to the sweep grid, not approximately equal:
        // exact frontier-set comparison depends on it.
        EXPECT_EQ(in.wheelbaseMm, grid[i].wheelbaseMm);
        EXPECT_EQ(in.cells, grid[i].cells);
        EXPECT_EQ(in.capacityMah, grid[i].capacityMah);
        EXPECT_EQ(in.twr, grid[i].twr);
        EXPECT_EQ(in.compute.name, grid[i].compute.name);
        EXPECT_EQ(in.activity, grid[i].activity);
        EXPECT_EQ(in.payloadG, grid[i].payloadG);
    }
}

TEST(Samplers, SeededStreamsAreReproducible)
{
    const ExploreSpace space = square16();
    for (SamplerKind kind :
         {SamplerKind::UniformRandom, SamplerKind::LatinHypercube,
          SamplerKind::Sobol}) {
        auto a = makeGenerator(kind, 17);
        auto b = makeGenerator(kind, 17);
        auto c = makeGenerator(kind, 18);
        bool any_difference = false;
        for (int call = 0; call < 4; ++call) {
            const auto ba = a->nextBatch(space, 64);
            const auto bb = b->nextBatch(space, 64);
            const auto bc = c->nextBatch(space, 64);
            EXPECT_EQ(ba, bb) << samplerKindName(kind);
            if (ba != bc)
                any_difference = true;
        }
        // A different seed must actually change the stream.
        EXPECT_TRUE(any_difference) << samplerKindName(kind);
    }
}

TEST(Samplers, StreamsAreBatchSplitInvariant)
{
    // Uniform and Sobol' are continuous streams: one call of 128
    // equals two calls of 64.  (LHS is intentionally not — the
    // batch size defines its strata.)
    const ExploreSpace space = square16();
    for (SamplerKind kind :
         {SamplerKind::UniformRandom, SamplerKind::Sobol}) {
        auto whole = makeGenerator(kind, 99);
        auto split = makeGenerator(kind, 99);
        const auto all = whole->nextBatch(space, 128);
        auto first = split->nextBatch(space, 64);
        const auto second = split->nextBatch(space, 64);
        first.insert(first.end(), second.begin(), second.end());
        EXPECT_EQ(all, first) << samplerKindName(kind);
    }
}

TEST(Samplers, LatinHypercubeCoversEveryStratumOncePerAxis)
{
    // Batch size n == axis size: each axis marginal must be a
    // permutation of {0..n-1}.
    const ExploreSpace space = square16();
    auto gen = makeGenerator(SamplerKind::LatinHypercube, 7);
    for (int call = 0; call < 3; ++call) {
        const auto batch = gen->nextBatch(space, 16);
        ASSERT_EQ(batch.size(), 16u);
        for (std::size_t d = 0; d < 2; ++d) {
            std::set<std::size_t> seen;
            for (const auto &c : batch)
                seen.insert(c[d]);
            EXPECT_EQ(seen.size(), 16u) << "axis " << d;
        }
    }
}

TEST(Samplers, SobolPrefixesAreDyadicallyStratified)
{
    // The digital shift preserves the (t,m,s)-net structure: on an
    // axis of size 2^k, every 2^k-aligned prefix of the sequence
    // hits each lattice position exactly once per dimension.
    const ExploreSpace space = dyadic3();
    for (std::uint64_t seed : {17ULL, 1234567ULL}) {
        auto gen = makeGenerator(SamplerKind::Sobol, seed);
        const auto batch = gen->nextBatch(space, 8);
        ASSERT_EQ(batch.size(), 8u);
        for (std::size_t d = 0; d < 2; ++d) {
            std::set<std::size_t> seen;
            for (const auto &c : batch)
                seen.insert(c[d]);
            EXPECT_EQ(seen.size(), 8u)
                << "seed " << seed << " axis " << d;
        }
        // The 4-wide payload axis: each value twice over 8 points.
        std::set<std::size_t> payload;
        for (const auto &c : batch)
            payload.insert(c[2]);
        EXPECT_EQ(payload.size(), 4u);
    }
}

TEST(Samplers, SobolBeatsUniformOnCellCoverage)
{
    // Discrepancy sanity, phrased combinatorially: 256 points on the
    // 16 x 16 lattice can hit at most 256 distinct cells; the
    // low-discrepancy sequence must cover strictly more of them than
    // i.i.d. uniform sampling (which collides ~37% of the time).
    const ExploreSpace space = square16();
    const auto countCells = [&](SamplerKind kind) {
        auto gen = makeGenerator(kind, 42);
        std::set<std::pair<std::size_t, std::size_t>> cells;
        for (const auto &c : gen->nextBatch(space, 256))
            cells.insert({c[0], c[1]});
        return cells.size();
    };
    const std::size_t sobol = countCells(SamplerKind::Sobol);
    const std::size_t uniform = countCells(SamplerKind::UniformRandom);
    EXPECT_GT(sobol, uniform);
    EXPECT_EQ(sobol, 256u); // a (t,m,2)-net at full stride
}

TEST(Samplers, GeneratorRejectsArityChange)
{
    auto gen = makeGenerator(SamplerKind::UniformRandom, 1);
    (void)gen->nextBatch(square16(), 4);
    EXPECT_DEATH((void)gen->nextBatch(dyadic3(), 4), "arity");
}

} // namespace
} // namespace dronedse::explore
