#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "components/compute_board.hh"
#include "dse/sweep.hh"
#include "engine/engine.hh"
#include "engine/pareto.hh"
#include "explore/driver.hh"
#include "explore/sampler.hh"
#include "explore/space.hh"

namespace dronedse::explore {
namespace {

using namespace unit_literals;
using engine::EngineOptions;
using engine::SweepEngine;

/**
 * A canonical identity for one lattice design: the frontier-set
 * comparisons below are exact set equality over these, which is
 * sound because adaptive and exhaustive materialize bit-identical
 * inputs for the same lattice index.
 */
using PointKey = std::tuple<double, int, double, double, std::string,
                            int, double>;

PointKey
keyOf(const DesignResult &res)
{
    return {res.inputs.wheelbaseMm.value(), res.inputs.cells,
            res.inputs.capacityMah.value(), res.inputs.twr,
            res.inputs.compute.name,
            static_cast<int>(res.inputs.activity),
            res.inputs.payloadG.value()};
}

/** Exhaustively solve a space through the grid sampler. */
std::vector<DesignResult>
solveWholeSpace(SweepEngine &eng, const ExploreSpace &space)
{
    auto gen = makeGenerator(SamplerKind::Grid, 0);
    const auto all = gen->nextBatch(space, space.pointCount());
    std::vector<DesignInputs> inputs;
    inputs.reserve(all.size());
    for (const auto &idx : all)
        inputs.push_back(space.materialize(idx));
    return eng.solvePoints(inputs);
}

std::set<PointKey>
frontierKeys(const std::vector<DesignResult> &points,
             const std::vector<std::size_t> &frontier)
{
    std::set<PointKey> keys;
    for (std::size_t i : frontier)
        keys.insert(keyOf(points[i]));
    return keys;
}

/** The 450 mm reference space at a coarser (test-sized) step. */
ExploreSpace
testSpace450()
{
    return referenceSpace450(100.0_mah);
}

TEST(AdaptiveDriver, FrontierIsParetoConsistentAtAnyBudget)
{
    // A budgeted run may keep points whose dominators it has not
    // evaluated yet — that is the nature of partial information.
    // What must hold at *any* budget: the kept frontier is exactly
    // the Pareto set of the evaluated points (no evaluated point
    // dominates a kept one), and every evaluated point that belongs
    // to the exhaustive frontier is kept (a globally non-dominated
    // point is non-dominated in every subset containing it).
    const ExploreSpace space = testSpace450();
    SweepEngine eng{EngineOptions{.threads = 4}};
    const std::vector<DesignResult> oracle =
        solveWholeSpace(eng, space);
    const std::set<PointKey> oracle_frontier =
        frontierKeys(oracle, engine::paretoFrontier(oracle));

    for (std::size_t budget : {600u, 1500u}) {
        ExploreOptions options;
        options.maxEvaluations = budget;
        options.initialSamples = 256;
        AdaptiveDriver driver(eng, options);
        const ExploreResult result = driver.run(space);
        EXPECT_LE(result.evaluations(), budget);

        const std::set<std::size_t> kept(result.frontier.begin(),
                                         result.frontier.end());
        for (std::size_t i : result.frontier) {
            for (std::size_t j = 0; j < result.points.size(); ++j) {
                EXPECT_FALSE(engine::dominates(result.points[j],
                                               result.points[i]))
                    << "budget " << budget;
            }
        }
        for (std::size_t j = 0; j < result.points.size(); ++j) {
            if (oracle_frontier.contains(keyOf(result.points[j])))
                EXPECT_TRUE(kept.contains(j)) << "budget " << budget;
        }
    }
}

TEST(AdaptiveDriver, RecoversExactFrontierWithTenthOfGridSolves)
{
    // The acceptance gate: on the 450 mm reference space the
    // adaptive run must recover the exhaustive Pareto frontier
    // *exactly* while spending at most 10% of the grid's solves.
    const ExploreSpace space = testSpace450();
    SweepEngine eng{EngineOptions{.threads = 4}};
    const std::vector<DesignResult> oracle =
        solveWholeSpace(eng, space);
    const std::set<PointKey> oracle_frontier =
        frontierKeys(oracle, engine::paretoFrontier(oracle));

    ExploreOptions options;
    options.maxEvaluations = space.pointCount() / 10;
    AdaptiveDriver driver(eng, options);
    const ExploreResult result = driver.run(space);

    EXPECT_LE(result.evaluations(), space.pointCount() / 10);
    const std::set<PointKey> adaptive =
        frontierKeys(result.points, result.frontier);
    EXPECT_EQ(adaptive, oracle_frontier);
    EXPECT_GT(result.rounds.size(), 1u);
}

TEST(AdaptiveDriver, ByteIdenticalAcrossThreadCountsAndReruns)
{
    const ExploreSpace space = testSpace450();
    ExploreOptions options;
    options.maxEvaluations = 1200;
    options.initialSamples = 256;

    std::string frontier_ref, rounds_ref;
    for (int threads : {1, 2, 8}) {
        SweepEngine eng{EngineOptions{.threads = threads}};
        AdaptiveDriver driver(eng, options);
        const ExploreResult first = driver.run(space);
        // Rerun on the same engine: the warm memo cache must not
        // change the answer, only the cost.
        const ExploreResult second = driver.run(space);
        EXPECT_EQ(frontierCsv(first), frontierCsv(second));
        EXPECT_EQ(roundsCsv(first), roundsCsv(second));
        if (frontier_ref.empty()) {
            frontier_ref = frontierCsv(first);
            rounds_ref = roundsCsv(first);
        } else {
            EXPECT_EQ(frontierCsv(first), frontier_ref)
                << "threads " << threads;
            EXPECT_EQ(roundsCsv(first), rounds_ref)
                << "threads " << threads;
        }
    }
    EXPECT_FALSE(frontier_ref.empty());
}

TEST(AdaptiveDriver, SamplerChoiceChangesTheSearchNotTheContract)
{
    const ExploreSpace space = testSpace450();
    SweepEngine eng{EngineOptions{.threads = 4}};
    for (SamplerKind kind :
         {SamplerKind::UniformRandom, SamplerKind::LatinHypercube,
          SamplerKind::Sobol}) {
        ExploreOptions options;
        options.sampler = kind;
        options.maxEvaluations = 800;
        AdaptiveDriver driver(eng, options);
        const ExploreResult result = driver.run(space);
        EXPECT_LE(result.evaluations(), 800u) << samplerKindName(kind);
        EXPECT_FALSE(result.frontier.empty()) << samplerKindName(kind);
        // The incumbent routes through the shared scan helper.
        ASSERT_LT(result.incumbent, result.points.size());
        const double best =
            result.points[result.incumbent].flightTimeMin.value();
        for (const DesignResult &res : result.points) {
            if (res.feasible)
                EXPECT_GE(best, res.flightTimeMin.value());
        }
    }
}

TEST(AdaptiveDriver, CompletesSixAxisSpace)
{
    // wideSpace6 is past what the exhaustive benches walk; the
    // driver must still finish within budget and produce a frontier
    // covering several payload values.
    const ExploreSpace space = wideSpace6(200.0_mah);
    ASSERT_EQ(space.axisCount(), 6u);
    SweepEngine eng{EngineOptions{.threads = 4}};
    ExploreOptions options;
    options.maxEvaluations = 2500;
    AdaptiveDriver driver(eng, options);
    const ExploreResult result = driver.run(space);
    EXPECT_LE(result.evaluations(), 2500u);
    EXPECT_FALSE(result.frontier.empty());
    ASSERT_LT(result.incumbent, result.points.size());
    EXPECT_TRUE(result.points[result.incumbent].feasible);
}

TEST(AdaptiveDriver, GridSamplerConvergesOnTinySpace)
{
    // A space smaller than the budget: the grid sampler enumerates
    // everything, refinement finds nothing new, and the run reports
    // convergence with the frontier equal to the exhaustive one.
    SweepSpec spec = classSweepSpec(classSpec(SizeClass::Medium),
                                    {3, 4}, 500.0_mah, basicChip3W());
    spec.boards = {basicChip3W(), advancedChip20W()};
    const ExploreSpace space = spaceFromSweepSpec(spec);

    SweepEngine eng{EngineOptions{.threads = 2}};
    const std::vector<DesignResult> oracle =
        solveWholeSpace(eng, space);

    ExploreOptions options;
    options.sampler = SamplerKind::Grid;
    options.maxEvaluations = space.pointCount() * 2;
    AdaptiveDriver driver(eng, options);
    const ExploreResult result = driver.run(space);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.evaluations(), space.pointCount());
    EXPECT_EQ(frontierKeys(result.points, result.frontier),
              frontierKeys(oracle, engine::paretoFrontier(oracle)));
}

TEST(AdaptiveDriver, RejectsInvalidSpaceAndOptions)
{
    SweepEngine eng{EngineOptions{.threads = 1}};
    EXPECT_DEATH(
        {
            ExploreOptions options;
            options.maxEvaluations = 0;
            AdaptiveDriver driver(eng, options);
        },
        "maxEvaluations");
    ExploreOptions options;
    AdaptiveDriver driver(eng, options);
    ExploreSpace empty;
    EXPECT_DEATH((void)driver.run(empty), "at least one axis");
}

} // namespace
} // namespace dronedse::explore
