#include <gtest/gtest.h>

#include <vector>

#include "components/battery.hh"
#include "components/compute_board.hh"
#include "components/frame.hh"
#include "dse/sweep.hh"
#include "dse/weight_closure.hh"
#include "explore/gate.hh"
#include "explore/uncertainty.hh"

namespace dronedse::explore {
namespace {

using namespace unit_literals;

/** The paper's 450 mm reference point (Section 5 best design). */
DesignInputs
referencePoint()
{
    DesignInputs in;
    in.wheelbaseMm = 450.0_mm;
    in.cells = 3;
    in.capacityMah = 5000.0_mah;
    in.twr = 2.0;
    in.compute = basicChip3W();
    return in;
}

void
expectBitIdentical(const DesignResult &a, const DesignResult &b)
{
    ASSERT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.infeasibleReason, b.infeasibleReason);
    EXPECT_EQ(a.totalWeightG, b.totalWeightG);
    EXPECT_EQ(a.basicWeightG, b.basicWeightG);
    EXPECT_EQ(a.frameWeightG, b.frameWeightG);
    EXPECT_EQ(a.batteryWeightG, b.batteryWeightG);
    EXPECT_EQ(a.motorSetWeightG, b.motorSetWeightG);
    EXPECT_EQ(a.escSetWeightG, b.escSetWeightG);
    EXPECT_EQ(a.propSetWeightG, b.propSetWeightG);
    EXPECT_EQ(a.wiringWeightG, b.wiringWeightG);
    EXPECT_EQ(a.motor.kv, b.motor.kv);
    EXPECT_EQ(a.motorMaxCurrentA, b.motorMaxCurrentA);
    EXPECT_EQ(a.extremeKv, b.extremeKv);
    EXPECT_EQ(a.maxPowerW, b.maxPowerW);
    EXPECT_EQ(a.propulsionPowerW, b.propulsionPowerW);
    EXPECT_EQ(a.computePowerW, b.computePowerW);
    EXPECT_EQ(a.avgPowerW, b.avgPowerW);
    EXPECT_EQ(a.usableEnergyWh, b.usableEnergyWh);
    EXPECT_EQ(a.flightTimeMin, b.flightTimeMin);
    EXPECT_EQ(a.computePowerFraction, b.computePowerFraction);
}

TEST(SurveyModel, PaperModelMatchesSolveDesignBitForBit)
{
    // The differential that anchors the whole uncertainty path: at
    // the published coefficients, the model-parameterized solver is
    // the solver.  Sweep a grid that crosses feasible, infeasible,
    // and validation-rejected regions.
    SweepSpec spec = classSweepSpec(classSpec(SizeClass::Medium),
                                    {1, 2, 3, 4, 5, 6}, 500.0_mah,
                                    basicChip3W());
    spec.boards = {basicChip3W(), advancedChip20W()};
    spec.activities = {FlightActivity::Hovering,
                       FlightActivity::Maneuvering};
    const SurveyModel paper = SurveyModel::paper();
    for (const DesignInputs &in : expandGrid(spec))
        expectBitIdentical(solveDesignModel(in, paper),
                           solveDesign(in));

    // Edge inputs the grid never hits.
    DesignInputs bad = referencePoint();
    bad.cells = 9;
    expectBitIdentical(solveDesignModel(bad, paper), solveDesign(bad));
    bad = referencePoint();
    bad.twr = 0.5;
    expectBitIdentical(solveDesignModel(bad, paper), solveDesign(bad));
    bad = referencePoint();
    bad.wheelbaseMm = 120.0_mm; // below the frame-fit boundary
    expectBitIdentical(solveDesignModel(bad, paper), solveDesign(bad));
}

TEST(FitScatter, DerivedScatterIsPositiveAndReproducible)
{
    const FitScatter a = FitScatter::fromCatalogs(17, 16);
    const FitScatter b = FitScatter::fromCatalogs(17, 16);
    for (int i = 0; i < 6; ++i) {
        EXPECT_GT(a.batterySlopeSd[i], 0.0);
        EXPECT_GT(a.batteryInterceptSd[i], 0.0);
        EXPECT_EQ(a.batterySlopeSd[i], b.batterySlopeSd[i]);
        EXPECT_EQ(a.batteryInterceptSd[i], b.batteryInterceptSd[i]);
    }
    for (int i = 0; i < 2; ++i) {
        EXPECT_GT(a.escSlopeSd[i], 0.0);
        EXPECT_GT(a.escInterceptSd[i], 0.0);
    }
    EXPECT_GT(a.frameSlopeSd, 0.0);
    EXPECT_GT(a.frameInterceptSd, 0.0);
    EXPECT_EQ(a.frameSlopeSd, b.frameSlopeSd);

    // The scatter is small relative to the coefficients themselves
    // (the survey pipeline recovers the published fits well).
    EXPECT_LT(a.batterySlopeSd[2], 0.1 * paperBatteryFit(3).slope);
    EXPECT_LT(a.frameSlopeSd, 0.1 * paperFrameFit().slope);
}

TEST(Uncertainty, PropagationIsDeterministicPerSeed)
{
    const DesignInputs point = referencePoint();
    UncertaintyOptions options;
    options.samples = 64;
    options.scatterReplicates = 8;
    const UncertaintyResult a = propagateUncertainty(point, options);
    const UncertaintyResult b = propagateUncertainty(point, options);
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.feasibleSamples, b.feasibleSamples);
    ASSERT_FALSE(a.flightTimeMin.empty());
    EXPECT_EQ(a.flightTimeMin.samples(), b.flightTimeMin.samples());
    EXPECT_EQ(a.totalWeightG.samples(), b.totalWeightG.samples());

    options.seed = 18;
    const UncertaintyResult c = propagateUncertainty(point, options);
    ASSERT_FALSE(c.flightTimeMin.empty());
    EXPECT_NE(a.flightTimeMin.samples(), c.flightTimeMin.samples());
}

TEST(Uncertainty, DistributionBracketsTheNominalSolve)
{
    const DesignInputs point = referencePoint();
    UncertaintyOptions options;
    options.samples = 128;
    options.scatterReplicates = 16;
    const UncertaintyResult res = propagateUncertainty(point, options);
    ASSERT_TRUE(res.nominal.feasible);
    EXPECT_EQ(res.samples, 128u);
    EXPECT_GT(res.feasibleFraction(), 0.9);
    ASSERT_FALSE(res.flightTimeMin.empty());
    // Symmetric coefficient perturbations land the nominal solve
    // strictly inside the sampled range.
    EXPECT_LT(res.flightTimeMin.min(),
              res.nominal.flightTimeMin.value());
    EXPECT_GT(res.flightTimeMin.max(),
              res.nominal.flightTimeMin.value());
    EXPECT_LT(res.totalWeightG.min(), res.nominal.totalWeightG.value());
    EXPECT_GT(res.totalWeightG.max(), res.nominal.totalWeightG.value());
}

TEST(Gates, NameRoundTrips)
{
    for (GateMetric m :
         {GateMetric::FlightTimeMin, GateMetric::TotalWeightG}) {
        GateMetric parsed;
        ASSERT_TRUE(parseGateMetric(gateMetricName(m), parsed));
        EXPECT_EQ(parsed, m);
    }
    for (GateOp op : {GateOp::AtLeast, GateOp::AtMost}) {
        GateOp parsed;
        ASSERT_TRUE(parseGateOp(gateOpName(op), parsed));
        EXPECT_EQ(parsed, op);
    }
    GateMetric metric;
    EXPECT_FALSE(parseGateMetric("thrust", metric));
    GateOp op;
    EXPECT_FALSE(parseGateOp("exactly", op));
}

TEST(Gates, ProbabilitiesCountInfeasibleSamplesAsMisses)
{
    UncertaintyResult res;
    res.samples = 10;
    res.feasibleSamples = 8;
    res.flightTimeMin =
        Ecdf({10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0, 17.0});
    res.totalWeightG = Ecdf({900, 910, 920, 930, 940, 950, 960, 970});

    GateSpec floor;
    floor.metric = GateMetric::FlightTimeMin;
    floor.op = GateOp::AtLeast;
    floor.threshold = 12.0; // 6 of 8 feasible meet it, of 10 total
    floor.minProbability = 0.6;
    GateSpec ceiling;
    ceiling.metric = GateMetric::TotalWeightG;
    ceiling.op = GateOp::AtMost;
    ceiling.threshold = 935.0; // 4 of 10
    ceiling.minProbability = 0.5;

    const GateReport report = evaluateGates(res, {floor, ceiling});
    ASSERT_EQ(report.gates.size(), 2u);
    EXPECT_DOUBLE_EQ(report.gates[0].probability, 0.6);
    EXPECT_TRUE(report.gates[0].pass);
    EXPECT_DOUBLE_EQ(report.gates[1].probability, 0.4);
    EXPECT_FALSE(report.gates[1].pass);
    EXPECT_FALSE(report.allPass);
    EXPECT_DOUBLE_EQ(report.feasibleFraction, 0.8);

    // No gates: vacuous pass.
    EXPECT_TRUE(evaluateGates(res, {}).allPass);

    // Renders mention the verdict and stay byte-stable.
    const std::string text = gateReportText(report);
    EXPECT_NE(text.find("FAIL"), std::string::npos);
    EXPECT_EQ(gateReportCsv(report), gateReportCsv(report));
}

TEST(Gates, RiskQueryGatesTheReferenceDesign)
{
    RiskQuery query;
    query.point = referencePoint();
    query.options.samples = 64;
    query.options.scatterReplicates = 8;

    GateSpec feasible_floor;
    feasible_floor.metric = GateMetric::FlightTimeMin;
    feasible_floor.op = GateOp::AtLeast;
    feasible_floor.threshold = 1.0; // trivially met when feasible
    feasible_floor.minProbability = 0.9;
    GateSpec impossible;
    impossible.metric = GateMetric::FlightTimeMin;
    impossible.op = GateOp::AtLeast;
    impossible.threshold = 1.0e6;
    impossible.minProbability = 0.5;
    query.gates = {feasible_floor, impossible};
    query.quantiles = {0.1, 0.5, 0.9};

    const RiskOutcome outcome = runRiskQuery(query);
    ASSERT_EQ(outcome.report.gates.size(), 2u);
    EXPECT_TRUE(outcome.report.gates[0].pass);
    EXPECT_DOUBLE_EQ(outcome.report.gates[1].probability, 0.0);
    EXPECT_FALSE(outcome.report.gates[1].pass);
    EXPECT_FALSE(outcome.report.allPass);

    query.quantiles = {1.5};
    EXPECT_DEATH((void)runRiskQuery(query), "quantile");
}

} // namespace
} // namespace dronedse::explore
