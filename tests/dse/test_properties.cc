/**
 * @file
 * Property-based sweeps over the design-space model: the partial
 * derivatives the paper's tradeoff discussion relies on must hold
 * across the whole swept space, not just at spot-checked points.
 */

#include <gtest/gtest.h>

#include "components/compute_board.hh"
#include "dse/weight_closure.hh"
#include "util/units.hh"

namespace dronedse {
namespace {

using namespace unit_literals;

DesignInputs
base(double wheelbase, int cells, double capacity)
{
    DesignInputs in;
    in.wheelbaseMm = Quantity<Millimeters>(wheelbase);
    in.cells = cells;
    in.capacityMah = Quantity<MilliampHours>(capacity);
    return in;
}

/** Sweep axis: (wheelbase, cells). */
using Axis = std::tuple<double, int>;

class DesignSpaceProperties : public testing::TestWithParam<Axis>
{
};

TEST_P(DesignSpaceProperties, WeightMonotoneInCapacity)
{
    const auto [wb, cells] = GetParam();
    double prev = 0.0;
    for (double cap = 1000.0; cap <= 8000.0; cap += 1000.0) {
        const DesignResult res = solveDesign(base(wb, cells, cap));
        if (!res.feasible)
            continue;
        EXPECT_GT(res.totalWeightG.value(), prev)
            << wb << "mm " << cells << "S " << cap << "mAh";
        prev = res.totalWeightG.value();
    }
}

TEST_P(DesignSpaceProperties, PowerMonotoneInCapacity)
{
    const auto [wb, cells] = GetParam();
    double prev = 0.0;
    for (double cap = 1000.0; cap <= 8000.0; cap += 1000.0) {
        const DesignResult res = solveDesign(base(wb, cells, cap));
        if (!res.feasible)
            continue;
        EXPECT_GT(res.avgPowerW.value(), prev);
        prev = res.avgPowerW.value();
    }
}

TEST_P(DesignSpaceProperties, MoreComputePowerShortensFlight)
{
    const auto [wb, cells] = GetParam();
    DesignInputs light = base(wb, cells, 4000.0);
    light.compute = basicChip3W();
    DesignInputs heavy = light;
    heavy.compute = advancedChip20W();
    const DesignResult l = solveDesign(light);
    const DesignResult h = solveDesign(heavy);
    if (!l.feasible || !h.feasible)
        GTEST_SKIP() << "infeasible corner of the space";
    EXPECT_LT(h.flightTimeMin, l.flightTimeMin);
    EXPECT_GT(h.computePowerFraction, l.computePowerFraction);
    // The heavier board also raises total weight through closure.
    EXPECT_GT(h.totalWeightG, l.totalWeightG);
}

TEST_P(DesignSpaceProperties, ShortFlightEscsAreLighterButEqualPower)
{
    const auto [wb, cells] = GetParam();
    DesignInputs long_esc = base(wb, cells, 3000.0);
    DesignInputs short_esc = long_esc;
    short_esc.escClass = EscClass::ShortFlight;
    const DesignResult l = solveDesign(long_esc);
    const DesignResult s = solveDesign(short_esc);
    if (!l.feasible || !s.feasible)
        GTEST_SKIP() << "infeasible corner of the space";
    // The two Figure 8a fits cross near ~7.4 A per ESC: racing ESCs
    // only win on weight above the crossover (tiny ESCs bottom out
    // on connectors/board mass either way).
    if (l.motorMaxCurrentA < 8.0_a)
        GTEST_SKIP() << "below the Figure 8a fit crossover";
    EXPECT_LT(s.escSetWeightG, l.escSetWeightG);
    EXPECT_LT(s.totalWeightG, l.totalWeightG);
    // Lighter build -> slightly longer flight (Figure 8a's real
    // tradeoff is thermal endurance, which the closure does not
    // model).
    EXPECT_GE(s.flightTimeMin, l.flightTimeMin);
}

TEST_P(DesignSpaceProperties, EnergyBookkeepingConsistent)
{
    const auto [wb, cells] = GetParam();
    const DesignResult res = solveDesign(base(wb, cells, 5000.0));
    if (!res.feasible)
        GTEST_SKIP() << "infeasible corner of the space";
    // FlightTime * AvgPower == usable energy (Equation 5 inverted).
    EXPECT_NEAR((res.flightTimeMin.to<Hours>() * res.avgPowerW)
                    .to<WattHours>()
                    .value(),
                res.usableEnergyWh.value(), 1e-6);
    // Usable energy is strictly less than nominal pack energy.
    const Quantity<WattHours> nominal =
        (res.inputs.capacityMah * lipoPackVoltage(res.inputs.cells))
            .to<WattHours>();
    EXPECT_LT(res.usableEnergyWh, nominal);
}

INSTANTIATE_TEST_SUITE_P(
    WheelbaseCells, DesignSpaceProperties,
    testing::Combine(testing::Values(200.0, 450.0, 800.0),
                     testing::Values(2, 3, 4, 6)));

TEST(DesignSpacePropertiesGlobal, BiggerWheelbaseHeavierDrone)
{
    double prev = 0.0;
    for (double wb : {150.0, 250.0, 450.0, 650.0, 800.0}) {
        const DesignResult res = solveDesign(base(wb, 4, 4000.0));
        ASSERT_TRUE(res.feasible) << wb;
        EXPECT_GT(res.totalWeightG.value(), prev) << wb;
        prev = res.totalWeightG.value();
    }
}

TEST(DesignSpacePropertiesGlobal, BiggerPropsAreMoreEfficient)
{
    // At fixed weight class, a larger prop (lower disk loading)
    // hovers on less power.
    DesignInputs small_prop = base(450.0, 3, 4000.0);
    small_prop.propDiameterIn = 8.0_in;
    DesignInputs big_prop = base(450.0, 3, 4000.0);
    big_prop.propDiameterIn = 11.0_in;
    const DesignResult s = solveDesign(small_prop);
    const DesignResult b = solveDesign(big_prop);
    ASSERT_TRUE(s.feasible);
    ASSERT_TRUE(b.feasible);
    EXPECT_LT(b.avgPowerW, s.avgPowerW);
    EXPECT_GT(b.flightTimeMin, s.flightTimeMin);
}

} // namespace
} // namespace dronedse
