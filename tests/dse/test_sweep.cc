#include <gtest/gtest.h>

#include "components/compute_board.hh"
#include "dse/sweep.hh"

namespace dronedse {
namespace {

using namespace unit_literals;

TEST(Sweep, CapacitySweepProducesSeries)
{
    const auto &spec = classSpec(SizeClass::Medium);
    const auto series =
        sweepCapacity(spec, 3, 500.0_mah, basicChip3W());
    EXPECT_GT(series.size(), 10u);
    // Weight grows monotonically with capacity.
    for (std::size_t i = 1; i < series.size(); ++i)
        EXPECT_GT(series[i].totalWeightG, series[i - 1].totalWeightG);
}

TEST(Sweep, PowerGrowsWithWeight)
{
    // The Figure 10a-c trend: heavier designs draw more power.
    const auto &spec = classSpec(SizeClass::Large);
    const auto series =
        sweepCapacity(spec, 6, 500.0_mah, basicChip3W());
    ASSERT_GT(series.size(), 5u);
    for (std::size_t i = 1; i < series.size(); ++i)
        EXPECT_GT(series[i].avgPowerW, series[i - 1].avgPowerW);
}

TEST(Sweep, FlightTimeHasInteriorOptimum)
{
    // Bigger batteries add energy but also weight; over a wide
    // enough capacity range the best flight time sits strictly
    // inside the sweep (physically, the optimum battery mass is a
    // bounded multiple of the rest of the airframe).
    SizeClassSpec spec = classSpec(SizeClass::Medium);
    spec.capacityLoMah = 1000.0_mah;
    spec.capacityHiMah = 40000.0_mah;
    const auto series =
        sweepCapacity(spec, 3, 1000.0_mah, basicChip3W());
    ASSERT_GT(series.size(), 8u);
    std::size_t best = 0;
    for (std::size_t i = 0; i < series.size(); ++i)
        if (series[i].flightTimeMin > series[best].flightTimeMin)
            best = i;
    EXPECT_GT(best, 0u);
    EXPECT_LT(best, series.size() - 1);
}

TEST(Sweep, BestConfigurationBeatsSeriesMembers)
{
    const auto &spec = classSpec(SizeClass::Medium);
    const DesignResult best = bestConfiguration(spec, basicChip3W());
    ASSERT_TRUE(best.feasible);
    for (int cells : {1, 3, 6}) {
        const auto series = sweepCapacity(spec, cells, 500.0_mah,
                                          basicChip3W());
        for (const auto &res : series) {
            if (withinPracticalLimits(res, spec)) {
                EXPECT_LE(res.flightTimeMin,
                          best.flightTimeMin +
                              Quantity<Minutes>(1e-9));
            }
        }
    }
}

TEST(Sweep, MotorCurrentCurveShape)
{
    // Figure 9: current grows with basic weight; higher voltage
    // needs less current at the same weight.
    const auto c3s = motorCurrentCurve(10.0_in, 3, 200.0_g, 1800.0_g,
                                       100.0_g);
    const auto c6s = motorCurrentCurve(10.0_in, 6, 200.0_g, 1800.0_g,
                                       100.0_g);
    ASSERT_EQ(c3s.size(), c6s.size());
    ASSERT_GT(c3s.size(), 5u);
    for (std::size_t i = 0; i < c3s.size(); ++i) {
        EXPECT_GT(c3s[i].motorCurrentA, c6s[i].motorCurrentA);
        if (i > 0) {
            EXPECT_GT(c3s[i].motorCurrentA, c3s[i - 1].motorCurrentA);
        }
    }
}

TEST(Sweep, SmallPropsNeedExtremeKv)
{
    // Figure 9a: 1"-2" props on 1S packs hit five-digit Kv ratings.
    const auto tiny =
        motorCurrentCurve(2.0_in, 1, 100.0_g, 600.0_g, 100.0_g);
    ASSERT_FALSE(tiny.empty());
    EXPECT_GT(tiny.back().kv, 25000.0);

    // Figure 9d: 20" props on 6S have low Kv ratings.
    const auto big = motorCurrentCurve(20.0_in, 6, 1000.0_g, 2700.0_g,
                                       200.0_g);
    ASSERT_FALSE(big.empty());
    EXPECT_LT(big.front().kv, 1500.0);
}

TEST(Sweep, ClassSpecsMatchPaperPanels)
{
    EXPECT_EQ(classSpec(SizeClass::Small).paperBestFlightTimeMin,
              23.0_min);
    EXPECT_EQ(classSpec(SizeClass::Medium).paperBestFlightTimeMin,
              19.0_min);
    EXPECT_EQ(classSpec(SizeClass::Large).paperBestFlightTimeMin,
              22.0_min);
    EXPECT_EQ(classSpec(SizeClass::Medium).wheelbaseMm, 450.0_mm);
    EXPECT_EQ(classSpec(SizeClass::Large).propDiameterIn, 20.0_in);
}

/** Parameterized sweep: every class yields a feasible best config. */
class BestPerClass : public testing::TestWithParam<SizeClass>
{
};

TEST_P(BestPerClass, FeasibleWithinWeightEnvelope)
{
    const auto &spec = classSpec(GetParam());
    const DesignResult best = bestConfiguration(spec, basicChip3W());
    ASSERT_TRUE(best.feasible);
    EXPECT_LE(best.totalWeightG, spec.weightAxisHiG);
    EXPECT_GT(best.flightTimeMin, 5.0_min);
}

INSTANTIATE_TEST_SUITE_P(Classes, BestPerClass,
                         testing::Values(SizeClass::Small,
                                         SizeClass::Medium,
                                         SizeClass::Large));

} // namespace
} // namespace dronedse
