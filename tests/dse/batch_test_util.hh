/**
 * @file
 * Shared helper of the batch-solver test batteries: assert two
 * `DesignResult`s are *byte*-identical — every double compared by
 * bit pattern (memcmp), not by `==` — which is the contract
 * `solveDesignBatch` makes against the scalar oracle (DESIGN.md §15).
 */

#ifndef DRONEDSE_TESTS_DSE_BATCH_TEST_UTIL_HH
#define DRONEDSE_TESTS_DSE_BATCH_TEST_UTIL_HH

#include <gtest/gtest.h>

#include <cstring>

#include "dse/design_point.hh"

namespace dronedse::batch_test {

inline void
expectSameBits(double scalar, double batch, const char *field)
{
    EXPECT_EQ(std::memcmp(&scalar, &batch, sizeof(double)), 0)
        << field << ": scalar " << scalar << " vs batch " << batch;
}

template <typename U>
inline void
expectSameBits(Quantity<U> scalar, Quantity<U> batch, const char *field)
{
    expectSameBits(scalar.value(), batch.value(), field);
}

/** Every field of the result, including the echoed inputs. */
inline void
expectByteIdentical(const DesignResult &s, const DesignResult &b)
{
    EXPECT_EQ(s.feasible, b.feasible);
    EXPECT_EQ(s.infeasibleReason, b.infeasibleReason);

    expectSameBits(s.inputs.wheelbaseMm, b.inputs.wheelbaseMm,
                   "inputs.wheelbaseMm");
    EXPECT_EQ(s.inputs.cells, b.inputs.cells);
    expectSameBits(s.inputs.capacityMah, b.inputs.capacityMah,
                   "inputs.capacityMah");
    expectSameBits(s.inputs.twr, b.inputs.twr, "inputs.twr");
    expectSameBits(s.inputs.propDiameterIn, b.inputs.propDiameterIn,
                   "inputs.propDiameterIn");
    EXPECT_EQ(s.inputs.escClass, b.inputs.escClass);
    EXPECT_EQ(s.inputs.compute.name, b.inputs.compute.name);
    EXPECT_EQ(s.inputs.compute.boardClass, b.inputs.compute.boardClass);
    expectSameBits(s.inputs.compute.weightG, b.inputs.compute.weightG,
                   "inputs.compute.weightG");
    expectSameBits(s.inputs.compute.powerW, b.inputs.compute.powerW,
                   "inputs.compute.powerW");
    expectSameBits(s.inputs.sensorWeightG, b.inputs.sensorWeightG,
                   "inputs.sensorWeightG");
    expectSameBits(s.inputs.sensorPowerW, b.inputs.sensorPowerW,
                   "inputs.sensorPowerW");
    expectSameBits(s.inputs.payloadG, b.inputs.payloadG,
                   "inputs.payloadG");
    EXPECT_EQ(s.inputs.activity, b.inputs.activity);

    expectSameBits(s.totalWeightG, b.totalWeightG, "totalWeightG");
    expectSameBits(s.basicWeightG, b.basicWeightG, "basicWeightG");
    expectSameBits(s.frameWeightG, b.frameWeightG, "frameWeightG");
    expectSameBits(s.batteryWeightG, b.batteryWeightG, "batteryWeightG");
    expectSameBits(s.motorSetWeightG, b.motorSetWeightG,
                   "motorSetWeightG");
    expectSameBits(s.escSetWeightG, b.escSetWeightG, "escSetWeightG");
    expectSameBits(s.propSetWeightG, b.propSetWeightG, "propSetWeightG");
    expectSameBits(s.wiringWeightG, b.wiringWeightG, "wiringWeightG");

    EXPECT_EQ(s.motor.name, b.motor.name);
    expectSameBits(s.motor.kv, b.motor.kv, "motor.kv");
    expectSameBits(s.motor.weightG, b.motor.weightG, "motor.weightG");
    expectSameBits(s.motor.maxCurrentA, b.motor.maxCurrentA,
                   "motor.maxCurrentA");
    expectSameBits(s.motor.maxThrustG, b.motor.maxThrustG,
                   "motor.maxThrustG");
    expectSameBits(s.motor.propDiameterIn, b.motor.propDiameterIn,
                   "motor.propDiameterIn");
    expectSameBits(s.motorMaxCurrentA, b.motorMaxCurrentA,
                   "motorMaxCurrentA");
    EXPECT_EQ(s.extremeKv, b.extremeKv);

    expectSameBits(s.maxPowerW, b.maxPowerW, "maxPowerW");
    expectSameBits(s.propulsionPowerW, b.propulsionPowerW,
                   "propulsionPowerW");
    expectSameBits(s.computePowerW, b.computePowerW, "computePowerW");
    expectSameBits(s.sensorPowerW, b.sensorPowerW, "sensorPowerW");
    expectSameBits(s.avgPowerW, b.avgPowerW, "avgPowerW");
    expectSameBits(s.usableEnergyWh, b.usableEnergyWh, "usableEnergyWh");
    expectSameBits(s.flightTimeMin, b.flightTimeMin, "flightTimeMin");
    expectSameBits(s.computePowerFraction, b.computePowerFraction,
                   "computePowerFraction");
}

} // namespace dronedse::batch_test

#endif // DRONEDSE_TESTS_DSE_BATCH_TEST_UTIL_HH
