/**
 * @file
 * End-to-end calibration gates: the model must land in the paper's
 * published bands for the headline numbers of Section 3.2 and
 * Figure 10.  These are the acceptance tests for the reproduction;
 * see EXPERIMENTS.md.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "components/compute_board.hh"
#include "dse/sweep.hh"
#include "dse/weight_closure.hh"

namespace dronedse {
namespace {

using namespace unit_literals;

TEST(Calibration, BestFlightTimesMatchPaperValidation)
{
    // "...resulting in 23, 19, and 21 minutes for 100, 450, and
    // 800 mm wheelbases, respectively" (Section 3.2; Figure 10
    // panels annotate 23/19/22).  Accept +-25 % for the small and
    // medium classes; the large class gets +-40 % because our
    // first-principles propulsion model is more efficient at low
    // disk loading (20" props) than the paper's empirical motor
    // survey — see EXPERIMENTS.md.
    for (SizeClass cls :
         {SizeClass::Small, SizeClass::Medium, SizeClass::Large}) {
        const auto &spec = classSpec(cls);
        const double tolerance = cls == SizeClass::Large ? 0.40 : 0.25;
        const DesignResult best = bestConfiguration(spec, basicChip3W());
        ASSERT_TRUE(best.feasible);
        EXPECT_NEAR(best.flightTimeMin.value(),
                    spec.paperBestFlightTimeMin.value(),
                    tolerance * spec.paperBestFlightTimeMin.value())
            << spec.label;
    }
}

TEST(Calibration, OurDronePowerNear130W)
{
    // Figure 16b: the paper's 450 mm drone averages ~130 W in flight
    // at ~30 % flying load.  Accept 90-180 W.
    DesignInputs in;
    in.wheelbaseMm = 450.0_mm;
    in.cells = 3;
    in.capacityMah = 3000.0_mah;
    in.compute = {"RPi + Navio2", BoardClass::Improved, 73.0, 5.75};
    in.sensorWeightG = 86.0_g;
    in.sensorPowerW = 1.5_w;
    const DesignResult res = solveDesign(in);
    ASSERT_TRUE(res.feasible);
    EXPECT_GT(res.avgPowerW, 90.0_w);
    EXPECT_LT(res.avgPowerW, 180.0_w);
}

TEST(Calibration, ComputeShareRange2To30Percent)
{
    // Section 1: "the percentage of computation power from total
    // power widely ranges from 2-30%".  Check both extremes exist
    // in the swept space.
    double min_frac = 1.0, max_frac = 0.0;
    for (SizeClass cls :
         {SizeClass::Small, SizeClass::Medium, SizeClass::Large}) {
        const auto &spec = classSpec(cls);
        for (const ComputeBoardRecord &board :
             {basicChip3W(), advancedChip20W()}) {
            for (FlightActivity act : {FlightActivity::Hovering,
                                       FlightActivity::Maneuvering}) {
                for (int cells : {1, 3, 6}) {
                    const auto series = sweepCapacity(
                        spec, cells, 1000.0_mah, board, act);
                    for (const auto &res : series) {
                        if (res.totalWeightG < spec.weightAxisLoG ||
                            res.totalWeightG > spec.weightAxisHiG) {
                            continue;
                        }
                        min_frac = std::min(min_frac,
                                            res.computePowerFraction);
                        max_frac = std::max(max_frac,
                                            res.computePowerFraction);
                    }
                }
            }
        }
    }
    EXPECT_LT(min_frac, 0.03);
    EXPECT_GT(max_frac, 0.20);
    EXPECT_LT(max_frac, 0.45);
}

TEST(Calibration, SmallDroneHeavyComputeGainBand)
{
    // Section 3.2 / Figure 11: on small drones, heavy computation
    // contributes 10-20 % of hover power, so offloading it gains up
    // to ~20 % of flight time (around +2-5 minutes).
    double max_gain = 0.0;
    for (const auto &drone : figure11Drones()) {
        const double hover = drone.impliedHoverPowerW().value();
        const double frac =
            drone.heavyComputeW / (hover + drone.heavyComputeW);
        EXPECT_GT(frac, 0.07) << drone.name;
        EXPECT_LT(frac, 0.22) << drone.name;

        const double usable = drone.batteryWh * 0.85;
        const double t_with =
            usable / (hover + drone.heavyComputeW) * 60.0;
        const double t_off = usable / hover * 60.0;
        max_gain = std::max(max_gain, t_off - t_with);
    }
    EXPECT_GT(max_gain, 1.8);
    EXPECT_LT(max_gain, 6.0);
}

TEST(Calibration, LargeDroneGainAboutTwoMinutes)
{
    // Section 3.2: in large/medium drones, max gain from compute
    // power savings is ~+2 minutes.
    const auto &spec = classSpec(SizeClass::Large);
    const DesignResult best = bestConfiguration(spec, advancedChip20W());
    ASSERT_TRUE(best.feasible);
    const double new_time = best.usableEnergyWh.value() /
                            (best.avgPowerW.value() - 18.0) * 60.0;
    const double gain = new_time - best.flightTimeMin.value();
    EXPECT_GT(gain, 0.5);
    EXPECT_LT(gain, 4.0);
}

TEST(Calibration, CommercialPointsNearModelCurves)
{
    // Figure 10 validation: the published commercial drones should
    // sit near the model's power-vs-weight curves.  For each point,
    // find the model design of matching weight (best cells) and
    // compare implied hover power within a factor of two.
    for (SizeClass cls :
         {SizeClass::Small, SizeClass::Medium, SizeClass::Large}) {
        const auto &spec = classSpec(cls);
        for (const auto &drone : commercialDronesInClass(cls)) {
            double best_delta = 1e18;
            double model_power = 0.0;
            for (int cells : {1, 2, 3, 4, 6}) {
                const auto series = sweepCapacity(
                    spec, cells, 250.0_mah, basicChip3W());
                for (const auto &res : series) {
                    const double d = std::fabs(
                        (res.totalWeightG - drone.weight()).value());
                    if (d < best_delta) {
                        best_delta = d;
                        model_power = res.avgPowerW.value();
                    }
                }
            }
            if (best_delta > 0.3 * drone.weightG)
                continue; // point outside this class's model range
            const double implied = drone.impliedHoverPowerW().value();
            EXPECT_LT(model_power, implied * 2.2) << drone.name;
            EXPECT_GT(model_power, implied / 2.2) << drone.name;
        }
    }
}

} // namespace
} // namespace dronedse
