#include <gtest/gtest.h>

#include "dse/weight_closure.hh"
#include "util/units.hh"

namespace dronedse {
namespace {

using namespace unit_literals;

DesignInputs
medium450()
{
    DesignInputs in;
    in.wheelbaseMm = 450.0_mm;
    in.cells = 3;
    in.capacityMah = 5000.0_mah;
    return in;
}

TEST(WeightClosure, ConvergesAndAccounts)
{
    const DesignResult res = solveDesign(medium450());
    ASSERT_TRUE(res.feasible) << res.infeasibleReason;

    // The component breakdown must sum to the total.
    const Quantity<Grams> sum =
        res.frameWeightG + res.batteryWeightG + res.motorSetWeightG +
        res.escSetWeightG + res.propSetWeightG + res.wiringWeightG +
        Quantity<Grams>(res.inputs.compute.weightG) +
        res.inputs.sensorWeightG + res.inputs.payloadG;
    EXPECT_NEAR(sum.value(), res.totalWeightG.value(), 0.1);

    // Basic weight excludes battery, ESCs, and motors (Figure 9).
    EXPECT_NEAR(res.basicWeightG.value(),
                (res.totalWeightG - res.batteryWeightG -
                 res.motorSetWeightG - res.escSetWeightG)
                    .value(),
                1e-6);
}

TEST(WeightClosure, FixedPointSelfConsistent)
{
    // At the solution, the matched motor must carry exactly
    // TWR * total / 4 grams.
    const DesignResult res = solveDesign(medium450());
    ASSERT_TRUE(res.feasible);
    EXPECT_NEAR(res.motor.maxThrustG,
                res.inputs.twr * res.totalWeightG.value() / 4.0, 0.5);
}

TEST(WeightClosure, A450ClassLandsNearOurDrone)
{
    // A 450 mm / 3S design should close near the paper's 1061 g
    // open-source drone (Figure 14) for a comparable battery.
    DesignInputs in = medium450();
    in.capacityMah = 3000.0_mah;
    in.compute.weightG = 73.0; // RPi + Navio2
    in.compute.powerW = 5.75;
    const DesignResult res = solveDesign(in);
    ASSERT_TRUE(res.feasible);
    EXPECT_NEAR(res.totalWeightG.value(), 1061.0, 300.0);
}

TEST(WeightClosure, PowerEquationStructure)
{
    const DesignResult res = solveDesign(medium450());
    ASSERT_TRUE(res.feasible);
    const Quantity<Volts> volts = lipoPackVoltage(res.inputs.cells);
    EXPECT_NEAR(res.maxPowerW.value(),
                4.0 * (res.motorMaxCurrentA * volts).value(), 1e-9);
    EXPECT_NEAR(res.avgPowerW.value(),
                (res.propulsionPowerW + res.computePowerW +
                 res.sensorPowerW)
                    .value(),
                1e-9);
    EXPECT_NEAR(res.computePowerFraction,
                res.computePowerW / res.avgPowerW, 1e-12);
}

TEST(WeightClosure, ManeuveringDrawsMore)
{
    DesignInputs hover = medium450();
    DesignInputs maneuver = medium450();
    maneuver.activity = FlightActivity::Maneuvering;
    const DesignResult h = solveDesign(hover);
    const DesignResult m = solveDesign(maneuver);
    ASSERT_TRUE(h.feasible);
    ASSERT_TRUE(m.feasible);
    EXPECT_GT(m.avgPowerW, 1.8 * h.avgPowerW);
    EXPECT_LT(m.flightTimeMin, h.flightTimeMin);
    // Weight closure is activity-independent.
    EXPECT_NEAR(m.totalWeightG.value(), h.totalWeightG.value(), 1e-9);
}

TEST(WeightClosure, HigherTwrCostsFlightTime)
{
    DesignInputs low = medium450();
    DesignInputs high = medium450();
    high.twr = 4.0;
    const DesignResult l = solveDesign(low);
    const DesignResult h = solveDesign(high);
    ASSERT_TRUE(l.feasible);
    ASSERT_TRUE(h.feasible);
    EXPECT_GT(h.totalWeightG, l.totalWeightG);
    EXPECT_GT(h.avgPowerW, l.avgPowerW);
    EXPECT_LT(h.flightTimeMin, l.flightTimeMin);
    EXPECT_LT(h.computePowerFraction, l.computePowerFraction);
}

TEST(WeightClosure, PayloadShrinksFlightTime)
{
    DesignInputs bare = medium450();
    DesignInputs loaded = medium450();
    loaded.payloadG = 200.0_g;
    const DesignResult b = solveDesign(bare);
    const DesignResult l = solveDesign(loaded);
    ASSERT_TRUE(b.feasible);
    ASSERT_TRUE(l.feasible);
    EXPECT_GT(l.totalWeightG, b.totalWeightG + 200.0_g);
    EXPECT_LT(l.flightTimeMin, b.flightTimeMin);
}

TEST(WeightClosure, ExtremeKvFlaggedForTinyProps)
{
    DesignInputs in;
    in.wheelbaseMm = 100.0_mm; // strict 2" prop
    in.cells = 1;
    in.capacityMah = 1500.0_mah;
    const DesignResult res = solveDesign(in);
    if (res.feasible) {
        EXPECT_TRUE(res.extremeKv);
    }
}

TEST(WeightClosure, InvalidInputsAreInfeasible)
{
    DesignInputs in = medium450();
    in.cells = 9;
    EXPECT_FALSE(solveDesign(in).feasible);

    in = medium450();
    in.capacityMah = -10.0_mah;
    EXPECT_FALSE(solveDesign(in).feasible);

    in = medium450();
    in.twr = 0.5;
    EXPECT_FALSE(solveDesign(in).feasible);
}

/** Property sweep over cells: flight time positive, weights close. */
class ClosurePerCells : public testing::TestWithParam<int>
{
};

TEST_P(ClosurePerCells, SolvesAcrossCellCounts)
{
    DesignInputs in = medium450();
    in.cells = GetParam();
    const DesignResult res = solveDesign(in);
    ASSERT_TRUE(res.feasible) << res.infeasibleReason;
    EXPECT_GT(res.flightTimeMin.value(), 0.0);
    EXPECT_GT(res.totalWeightG, 500.0_g);
    EXPECT_LT(res.totalWeightG, 5000.0_g);
}

INSTANTIATE_TEST_SUITE_P(Cells, ClosurePerCells, testing::Range(2, 7));

} // namespace
} // namespace dronedse
