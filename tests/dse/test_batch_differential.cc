/**
 * @file
 * Differential battery holding `solveDesignBatch` to the scalar
 * `solveDesign` oracle, byte for byte (DESIGN.md §15):
 *
 *   (a) the full 450 mm reference grid (and the other two Figure 10
 *       size classes, both boards, both activities, cells 1-6);
 *   (b) seeded random design clouds spanning the input space,
 *       including infeasible and non-converging corners;
 *   (c) feasibility-boundary points located by bisection, where a
 *       masked lane sits one ULP-scale step from flipping verdicts
 *       and any drift in the iteration would surface first.
 */

#include <gtest/gtest.h>

#include <vector>

#include "components/compute_board.hh"
#include "dse/batch_solve.hh"
#include "dse/sweep.hh"
#include "dse/weight_closure.hh"
#include "batch_test_util.hh"
#include "util/rng.hh"

using namespace dronedse;
using namespace dronedse::unit_literals;
using batch_test::expectByteIdentical;

namespace {

/** Batch-solve the whole set and compare every element bitwise. */
void
expectBatchMatchesScalar(const std::vector<DesignInputs> &inputs)
{
    const std::vector<DesignResult> batch =
        solveDesignBatch(std::span<const DesignInputs>(inputs));
    ASSERT_EQ(batch.size(), inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        SCOPED_TRACE("index " + std::to_string(i));
        expectByteIdentical(solveDesign(inputs[i]), batch[i]);
    }
}

SweepSpec
fullClassSpec(SizeClass cls)
{
    SweepSpec spec = classSweepSpec(classSpec(cls), {1, 2, 3, 4, 5, 6},
                                    100.0_mah, basicChip3W());
    spec.boards = {advancedChip20W(), basicChip3W()};
    spec.activities = {FlightActivity::Hovering,
                       FlightActivity::Maneuvering};
    return spec;
}

} // namespace

TEST(BatchDifferential, Full450mmReferenceGrid)
{
    const std::vector<DesignInputs> grid =
        expandGrid(fullClassSpec(SizeClass::Medium));
    ASSERT_GT(grid.size(), 1000u);
    expectBatchMatchesScalar(grid);
}

TEST(BatchDifferential, SmallAndLargeClassGrids)
{
    for (SizeClass cls : {SizeClass::Small, SizeClass::Large}) {
        SCOPED_TRACE(static_cast<int>(cls));
        expectBatchMatchesScalar(expandGrid(fullClassSpec(cls)));
    }
}

TEST(BatchDifferential, SeededRandomDesignClouds)
{
    // Wide clouds: wheelbases off the class anchors, fractional
    // capacities, hostile TWRs, explicit prop overrides, sensors and
    // payloads — plus corners the validation rejects, so refused
    // lanes sit next to converging ones inside single blocks.
    for (std::uint64_t seed : {11ull, 29ull, 4242ull}) {
        SCOPED_TRACE(seed);
        Rng rng(seed);
        std::vector<DesignInputs> cloud;
        for (int i = 0; i < 300; ++i) {
            DesignInputs in;
            in.wheelbaseMm =
                Quantity<Millimeters>(rng.uniform(40.0, 1100.0));
            in.cells = static_cast<int>(rng.uniformInt(0, 8));
            in.capacityMah =
                Quantity<MilliampHours>(rng.uniform(-200.0, 12000.0));
            in.twr = rng.uniform(0.5, 6.0);
            if (rng.uniform() < 0.3)
                in.propDiameterIn =
                    Quantity<Inches>(rng.uniform(1.0, 22.0));
            in.escClass = rng.uniform() < 0.5 ? EscClass::LongFlight
                                              : EscClass::ShortFlight;
            in.compute = rng.uniform() < 0.5 ? basicChip3W()
                                             : advancedChip20W();
            in.sensorWeightG = Quantity<Grams>(rng.uniform(0.0, 150.0));
            in.sensorPowerW = Quantity<Watts>(rng.uniform(0.0, 10.0));
            in.payloadG = Quantity<Grams>(rng.uniform(0.0, 500.0));
            in.activity = rng.uniform() < 0.5
                              ? FlightActivity::Hovering
                              : FlightActivity::Maneuvering;
            cloud.push_back(in);
        }
        expectBatchMatchesScalar(cloud);
    }
}

TEST(BatchDifferential, BisectedFeasibilityBoundaryPoints)
{
    // Bisect the battery C-rating feasibility boundary in capacity
    // (the `test_memo_cache.cc` idiom) for each battery family, then
    // solve a tight bracket around every boundary.  These are the
    // inputs where bit drift would first flip a verdict: the scalar
    // and batch paths must agree on *which side* each bracket point
    // lands on, with identical bytes throughout.
    std::vector<DesignInputs> bracket;
    for (int cells = 1; cells <= 6; ++cells) {
        DesignInputs probe;
        probe.cells = cells;
        double lo = 1.0, hi = 3000.0;
        // The boundary may sit outside [lo, hi] for some families;
        // only bisect brackets that actually straddle it.
        probe.capacityMah = Quantity<MilliampHours>(lo);
        const bool lo_feasible = solveDesign(probe).feasible;
        probe.capacityMah = Quantity<MilliampHours>(hi);
        const bool hi_feasible = solveDesign(probe).feasible;
        if (lo_feasible == hi_feasible)
            continue;
        while (hi - lo > 0.001) {
            const double mid = 0.5 * (lo + hi);
            probe.capacityMah = Quantity<MilliampHours>(mid);
            if (solveDesign(probe).feasible == hi_feasible)
                hi = mid;
            else
                lo = mid;
        }
        for (double cap : {lo, hi, lo - 0.0005, hi + 0.0005,
                           0.5 * (lo + hi)}) {
            DesignInputs in = probe;
            in.capacityMah = Quantity<MilliampHours>(cap);
            bracket.push_back(in);
        }
    }
    ASSERT_FALSE(bracket.empty());
    expectBatchMatchesScalar(bracket);
}

TEST(BatchDifferential, SpanAndVectorOverloadsAgree)
{
    const std::vector<DesignInputs> grid =
        expandGrid(fullClassSpec(SizeClass::Medium));
    const std::vector<DesignInputs> subset(grid.begin(),
                                           grid.begin() + 37);
    const std::vector<DesignResult> from_vector =
        solveDesignBatch(std::span<const DesignInputs>(subset));
    std::vector<DesignResult> from_span(subset.size());
    solveDesignBatch(std::span<const DesignInputs>(subset),
                     std::span<DesignResult>(from_span));
    for (std::size_t i = 0; i < subset.size(); ++i) {
        SCOPED_TRACE("index " + std::to_string(i));
        expectByteIdentical(from_vector[i], from_span[i]);
    }
}
