/**
 * @file
 * Algebraic properties of `solveDesignBatch` (the batch API part of
 * the DESIGN.md §15 contract) plus hostile-input edges:
 *
 *   - permutation invariance: each result depends only on its own
 *     input, never on its neighbours in the batch;
 *   - partition invariance: solve(N) == concat(solve(k), solve(N-k))
 *     for arbitrary seeded splits, i.e. the lane blocking is not
 *     observable (this is what lets the engine chunk freely);
 *   - idempotence across repeat calls, including into a reused
 *     (dirty) output buffer;
 *   - duplicate, infeasible, non-converging, and empty/odd-sized
 *     batches (0, 1, lane-width +/- 1) all match the scalar path
 *     element for element.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "components/compute_board.hh"
#include "dse/batch_solve.hh"
#include "dse/sweep.hh"
#include "dse/weight_closure.hh"
#include "batch_test_util.hh"
#include "util/rng.hh"

using namespace dronedse;
using namespace dronedse::unit_literals;
using batch_test::expectByteIdentical;

namespace {

/** A mixed bag: feasible points, every rejection reason, repeats. */
std::vector<DesignInputs>
mixedBatch()
{
    std::vector<DesignInputs> inputs;

    SweepSpec spec = classSweepSpec(classSpec(SizeClass::Medium),
                                    {2, 4, 6}, 500.0_mah, basicChip3W());
    const std::vector<DesignInputs> grid = expandGrid(spec);
    inputs.insert(inputs.end(), grid.begin(), grid.end());

    DesignInputs bad_cells;
    bad_cells.cells = 9; // "cell count out of range"
    inputs.push_back(bad_cells);

    DesignInputs bad_capacity;
    bad_capacity.capacityMah = -100.0_mah; // "invalid capacity, ..."
    inputs.push_back(bad_capacity);

    DesignInputs bad_twr;
    bad_twr.twr = 0.5; // "invalid capacity, TWR, or wheelbase"
    inputs.push_back(bad_twr);

    DesignInputs c_rating;
    c_rating.cells = 6;
    c_rating.capacityMah = 5.0_mah; // C-rating cannot supply max draw
    inputs.push_back(c_rating);

    DesignInputs runaway;
    runaway.twr = 40.0; // weight closure diverges
    inputs.push_back(runaway);

    // Duplicates of a feasible point and of a rejected one.
    inputs.push_back(grid.front());
    inputs.push_back(bad_cells);

    return inputs;
}

std::vector<DesignResult>
solveBatchOf(const std::vector<DesignInputs> &inputs)
{
    return solveDesignBatch(std::span<const DesignInputs>(inputs));
}

} // namespace

TEST(BatchProperties, MixedBatchPremises)
{
    // The mixed bag must actually cover every scalar verdict, or the
    // batteries below prove less than they claim.
    const std::vector<DesignInputs> inputs = mixedBatch();
    std::vector<std::string> reasons;
    for (const auto &in : inputs)
        reasons.push_back(solveDesign(in).infeasibleReason);
    EXPECT_NE(std::find(reasons.begin(), reasons.end(), ""),
              reasons.end());
    for (const char *expected :
         {"cell count out of range",
          "invalid capacity, TWR, or wheelbase",
          "battery C-rating cannot supply max draw",
          "weight closure diverged"}) {
        EXPECT_NE(std::find(reasons.begin(), reasons.end(), expected),
                  reasons.end())
            << expected;
    }
}

TEST(BatchProperties, HostileBatchMatchesScalarElementForElement)
{
    const std::vector<DesignInputs> inputs = mixedBatch();
    const std::vector<DesignResult> batch = solveBatchOf(inputs);
    ASSERT_EQ(batch.size(), inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        SCOPED_TRACE("index " + std::to_string(i));
        expectByteIdentical(solveDesign(inputs[i]), batch[i]);
    }
}

TEST(BatchProperties, InvariantUnderPermutation)
{
    const std::vector<DesignInputs> inputs = mixedBatch();
    const std::vector<DesignResult> reference = solveBatchOf(inputs);

    for (std::uint64_t seed : {3ull, 17ull, 99ull}) {
        SCOPED_TRACE(seed);
        Rng rng(seed);
        std::vector<std::size_t> perm(inputs.size());
        std::iota(perm.begin(), perm.end(), std::size_t{0});
        for (std::size_t i = perm.size(); i > 1; --i)
            std::swap(perm[i - 1],
                      perm[static_cast<std::size_t>(
                          rng.uniformInt(0, static_cast<std::int64_t>(
                                                i - 1)))]);

        std::vector<DesignInputs> shuffled;
        for (std::size_t i : perm)
            shuffled.push_back(inputs[i]);
        const std::vector<DesignResult> out = solveBatchOf(shuffled);
        for (std::size_t i = 0; i < perm.size(); ++i) {
            SCOPED_TRACE("slot " + std::to_string(i));
            expectByteIdentical(reference[perm[i]], out[i]);
        }
    }
}

TEST(BatchProperties, InvariantUnderPartitioning)
{
    const std::vector<DesignInputs> inputs = mixedBatch();
    const std::vector<DesignResult> whole = solveBatchOf(inputs);

    Rng rng(7);
    for (int trial = 0; trial < 8; ++trial) {
        SCOPED_TRACE(trial);
        // Random split points, including lane-misaligned ones.
        const std::size_t k = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(inputs.size())));
        const std::vector<DesignInputs> head(inputs.begin(),
                                             inputs.begin() +
                                                 static_cast<long>(k));
        const std::vector<DesignInputs> tail(inputs.begin() +
                                                 static_cast<long>(k),
                                             inputs.end());
        std::vector<DesignResult> parts = solveBatchOf(head);
        const std::vector<DesignResult> rest = solveBatchOf(tail);
        parts.insert(parts.end(), rest.begin(), rest.end());
        ASSERT_EQ(parts.size(), whole.size());
        for (std::size_t i = 0; i < whole.size(); ++i) {
            SCOPED_TRACE("index " + std::to_string(i));
            expectByteIdentical(whole[i], parts[i]);
        }
    }
}

TEST(BatchProperties, IdempotentAcrossRepeatCalls)
{
    const std::vector<DesignInputs> inputs = mixedBatch();
    const std::vector<DesignResult> first = solveBatchOf(inputs);

    // Second pass writes into the *same* buffer the first pass
    // filled: stale state in a reused output slot must not leak.
    std::vector<DesignResult> reused = first;
    solveDesignBatch(std::span<const DesignInputs>(inputs),
                     std::span<DesignResult>(reused));
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        SCOPED_TRACE("index " + std::to_string(i));
        expectByteIdentical(first[i], reused[i]);
    }
}

TEST(BatchProperties, EdgeSizesMatchScalar)
{
    const std::vector<DesignInputs> pool = mixedBatch();
    // 0, 1, lane-width-1, lane-width, lane-width+1 — the mask edges.
    for (std::size_t n : {std::size_t{0}, std::size_t{1},
                          kBatchLaneWidth - 1, kBatchLaneWidth,
                          kBatchLaneWidth + 1}) {
        SCOPED_TRACE("size " + std::to_string(n));
        ASSERT_LE(n, pool.size());
        const std::vector<DesignInputs> inputs(pool.begin(),
                                               pool.begin() +
                                                   static_cast<long>(n));
        const std::vector<DesignResult> batch = solveBatchOf(inputs);
        ASSERT_EQ(batch.size(), n);
        for (std::size_t i = 0; i < n; ++i) {
            SCOPED_TRACE("index " + std::to_string(i));
            expectByteIdentical(solveDesign(inputs[i]), batch[i]);
        }
    }
}

TEST(BatchProperties, AllDuplicatesBatch)
{
    // A batch that is one design repeated past the lane width.
    DesignInputs in;
    in.cells = 4;
    in.capacityMah = 4000.0_mah;
    const std::vector<DesignInputs> inputs(2 * kBatchLaneWidth + 3, in);
    const DesignResult scalar = solveDesign(in);
    for (const DesignResult &res : solveBatchOf(inputs))
        expectByteIdentical(scalar, res);
}
