#include <gtest/gtest.h>

#include <sstream>

#include "components/compute_board.hh"
#include "dse/export.hh"

namespace dronedse {
namespace {

using namespace unit_literals;

TEST(Export, SweepCsvHasOneRowPerDesign)
{
    const auto &spec = classSpec(SizeClass::Medium);
    const auto series =
        sweepCapacity(spec, 3, 1000.0_mah, basicChip3W());
    const CsvWriter csv = sweepToCsv(series);
    EXPECT_EQ(csv.rowCount(), series.size());

    // Header names the key columns.
    const std::string doc = csv.str();
    EXPECT_NE(doc.find("capacity_mah"), std::string::npos);
    EXPECT_NE(doc.find("flight_time_min"), std::string::npos);

    // Row count matches line count (header + rows).
    std::stringstream ss(doc);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(ss, line))
        ++lines;
    EXPECT_EQ(lines, series.size() + 1);
}

TEST(Export, MotorCurveCsv)
{
    const auto curve = motorCurrentCurve(10.0_in, 3, 200.0_g,
                                         1000.0_g, 200.0_g);
    const CsvWriter csv = motorCurveToCsv(curve);
    EXPECT_EQ(csv.rowCount(), curve.size());
    EXPECT_NE(csv.str().find("basic_weight_g"), std::string::npos);
}

} // namespace
} // namespace dronedse
