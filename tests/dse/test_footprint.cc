#include <gtest/gtest.h>

#include "components/compute_board.hh"
#include "dse/footprint.hh"
#include "dse/sweep.hh"
#include "dse/weight_closure.hh"

namespace dronedse {
namespace {

using namespace unit_literals;

DesignResult
solved450(const ComputeBoardRecord &board,
          FlightActivity activity = FlightActivity::Hovering)
{
    DesignInputs in;
    in.wheelbaseMm = 450.0_mm;
    in.cells = 3;
    in.capacityMah = 5000.0_mah;
    in.compute = board;
    in.activity = activity;
    const DesignResult res = solveDesign(in);
    EXPECT_TRUE(res.feasible);
    return res;
}

TEST(Footprint, GainExactMatchesEnergyBudget)
{
    const DesignResult res = solved450(advancedChip20W());
    const double gain = gainedFlightTimeMin(res, 10.0_w).value();
    const double expect = res.usableEnergyWh.value() /
                              (res.avgPowerW.value() - 10.0) * 60.0 -
                          res.flightTimeMin.value();
    EXPECT_NEAR(gain, expect, 1e-9);
    EXPECT_GT(gain, 0.0);
}

TEST(Footprint, NegativeSavingsShrinkFlightTime)
{
    const DesignResult res = solved450(basicChip3W());
    EXPECT_LT(gainedFlightTimeMin(res, -10.0_w).value(), 0.0);
}

TEST(Footprint, PaperApproximation)
{
    // Section 5.2: saving 10 W on a 140 W drone with 15 min flight
    // time gains about one minute.
    const double approx =
        gainedFlightTimeApproxMin(10.0_w, 140.0_w, 15.0_min).value();
    EXPECT_NEAR(approx, 15.0 * 10.0 / 140.0, 1e-12);
    EXPECT_NEAR(approx, 1.07, 0.05);
}

TEST(Footprint, ExactAndApproxAgreeForSmallSavings)
{
    const DesignResult res = solved450(advancedChip20W());
    const double exact = gainedFlightTimeMin(res, 2.0_w).value();
    const double approx =
        gainedFlightTimeApproxMin(2.0_w, res.avgPowerW,
                                  res.flightTimeMin)
            .value();
    EXPECT_NEAR(exact, approx, 0.05 * exact + 0.01);
}

TEST(Footprint, ThreeWattChipUnderFivePercent)
{
    // Figure 10d-f: the 3 W chip contributes < 5 % of total power
    // across medium/large drones.
    for (SizeClass cls : {SizeClass::Medium, SizeClass::Large}) {
        const auto &spec = classSpec(cls);
        const auto series = sweepCapacity(spec, 3, 1000.0_mah,
                                          basicChip3W());
        for (const auto &res : series) {
            if (res.totalWeightG < spec.weightAxisLoG ||
                res.totalWeightG > spec.weightAxisHiG) {
                continue;
            }
            EXPECT_LT(res.computePowerFraction, 0.05)
                << "weight " << res.totalWeightG.value();
        }
    }
}

TEST(Footprint, TwentyWattChipDropsWhenManeuvering)
{
    const DesignResult hover = solved450(advancedChip20W());
    const DesignResult man =
        solved450(advancedChip20W(), FlightActivity::Maneuvering);
    EXPECT_GT(hover.computePowerFraction, man.computePowerFraction);
    // Paper: ~10 % average when the drone moves.
    EXPECT_LT(man.computePowerFraction, 0.15);
}

TEST(Footprint, PlatformSwapIncludesWeightFeedback)
{
    DesignInputs in;
    in.wheelbaseMm = 450.0_mm;
    in.cells = 3;
    in.capacityMah = 5000.0_mah;
    in.compute = {"RPi-class", BoardClass::Improved, 50.0, 5.0};
    const DesignResult base = solveDesign(in);
    ASSERT_TRUE(base.feasible);

    // RPi -> ASIC (Table 5): -1.98 W and -30 g, both help.
    const double gain_asic =
        platformSwapGainMin(in, Quantity<Watts>(-1.976), -30.0_g)
            .value();
    EXPECT_GT(gain_asic, 0.0);

    // RPi -> FPGA: saves power but adds 25 g; the weight feedback
    // (bigger motors, more hover power) must shrink the gain below
    // the power-only estimate.
    const Quantity<Minutes> gain_fpga =
        platformSwapGainMin(in, Quantity<Watts>(-1.583), 25.0_g);
    const Quantity<Minutes> power_only =
        gainedFlightTimeMin(base, 1.583_w);
    EXPECT_LT(gain_fpga, power_only);

    // RPi -> TX2: heavier and hungrier, loses flight time.
    EXPECT_LT(platformSwapGainMin(in, 5.0_w, 35.0_g).value(), 0.0);
}

} // namespace
} // namespace dronedse
