/**
 * @file
 * Cross-model integration: the analytical DSE equations and the
 * physics simulator are two independent paths to the same
 * quantities, and they must agree — hover power, thrust budgets,
 * and flight time all come out of both.
 */

#include <gtest/gtest.h>

#include "control/autopilot.hh"
#include "core/presets.hh"
#include "dse/weight_closure.hh"
#include "physics/lipo.hh"
#include "physics/propeller_aero.hh"
#include "util/units.hh"

namespace dronedse {
namespace {

using namespace unit_literals;

TEST(CrossModel, SimulatedHoverPowerMatchesAeroModel)
{
    // The simulator's hover power must equal the propeller model
    // evaluated at weight/4 per motor.
    const DesignResult design = solveDesign(ourDroneInputs());
    ASSERT_TRUE(design.feasible);
    const QuadrotorParams params = QuadrotorParams::fromDesign(design);

    Autopilot ap(params, {{{0, 0, 2}, 0.0, 0.4, 1e9}},
                 AutopilotConfig{});
    ap.run(10.0);
    const double sim_power = ap.quad().electricalPowerW();

    const Quantity<GramsForce> hover_thrust =
        weightForce(design.totalWeightG) / 4.0;
    const double analytic =
        4.0 * electricalPowerW(
                  hover_thrust,
                  Quantity<Inches>(design.motor.propDiameterIn))
                  .value();
    EXPECT_NEAR(sim_power, analytic, 0.15 * analytic);
}

TEST(CrossModel, DseLoadFractionBracketsSimulatedHover)
{
    // The paper models hover as 20-30 % of max draw; the simulator,
    // which knows nothing of that convention, must land near it for
    // a TWR-2 design (physics says (1/2)^1.5 ~ 35 %).
    const DesignResult design = solveDesign(ourDroneInputs());
    ASSERT_TRUE(design.feasible);
    const QuadrotorParams params = QuadrotorParams::fromDesign(design);

    Autopilot ap(params, {{{0, 0, 2}, 0.0, 0.4, 1e9}},
                 AutopilotConfig{});
    ap.run(10.0);
    const double fraction =
        ap.quad().electricalPowerW() / design.maxPowerW.value();
    EXPECT_GT(fraction, 0.20);
    EXPECT_LT(fraction, 0.45);
}

TEST(CrossModel, SimulatedEnduranceTracksDseFlightTime)
{
    // Drain a battery at the simulator's hover power and compare
    // against the DSE Equation 5 flight time (the DSE hover-load
    // convention differs from exact physics by design; allow 35 %).
    const DesignInputs inputs = ourDroneInputs();
    const DesignResult design = solveDesign(inputs);
    ASSERT_TRUE(design.feasible);
    const QuadrotorParams params = QuadrotorParams::fromDesign(design);

    Autopilot ap(params, {{{0, 0, 2}, 0.0, 0.4, 1e9}},
                 AutopilotConfig{});
    ap.run(8.0);
    const Quantity<Watts> hover_power =
        Quantity<Watts>(ap.quad().electricalPowerW()) +
        design.computePowerW + design.sensorPowerW;

    const Quantity<Minutes> endurance =
        (usableEnergyWh(inputs.capacityMah,
                        lipoPackVoltage(inputs.cells)) /
         hover_power)
            .to<Minutes>();
    EXPECT_NEAR(endurance.value(), design.flightTimeMin.value(),
                0.35 * design.flightTimeMin.value());
}

TEST(CrossModel, TwrHeadroomIsRealInTheSimulator)
{
    // A TWR-2 design must be able to accelerate upward at ~1 g from
    // hover when commanded full thrust.
    const DesignResult design = solveDesign(ourDroneInputs());
    ASSERT_TRUE(design.feasible);
    const QuadrotorParams params = QuadrotorParams::fromDesign(design);

    Quadrotor quad(params);
    RigidBodyState s;
    s.position = {0, 0, 10};
    quad.setState(s);
    const double max_t = params.maxThrustPerMotorN;
    quad.commandMotors({max_t, max_t, max_t, max_t});
    for (int i = 0; i < 1000; ++i)
        quad.step(0.001);
    // v = a*t with a ~ g (minus drag and spin-up).
    EXPECT_GT(quad.state().velocity.z, 0.6 * kGravity);
    EXPECT_LT(quad.state().velocity.z, 1.2 * kGravity);
}

TEST(CrossModel, PresetAirframeFliesItsMission)
{
    // End-to-end: every preset design yields an airframe the control
    // stack can actually fly.
    for (const DesignInputs &inputs :
         {ourDroneInputs(), mapper800Inputs()}) {
        const DesignResult design = solveDesign(inputs);
        ASSERT_TRUE(design.feasible);
        Autopilot ap(QuadrotorParams::fromDesign(design),
                     {{{0, 0, 3}, 0.0, 0.6, 0.0},
                      {{4, 0, 3}, 0.0, 0.8, 1e9}},
                     AutopilotConfig{});
        ap.run(20.0);
        EXPECT_FALSE(ap.quad().upsideDown())
            << inputs.wheelbaseMm.value() << " mm";
        EXPECT_GE(ap.navigator().reachedCount(), 1u)
            << inputs.wheelbaseMm.value() << " mm";
    }
}

} // namespace
} // namespace dronedse
