/** Upper-layer header the back-edge fixture points at. */
#ifndef FIXTURE_TOP_HH
#define FIXTURE_TOP_HH

namespace fixture {
inline int top() { return 1; }
} // namespace fixture

#endif
