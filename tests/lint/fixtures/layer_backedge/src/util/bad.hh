/** Known-bad fixture: util (layer 0) includes engine (layer 1). */
#ifndef FIXTURE_BACKEDGE_HH
#define FIXTURE_BACKEDGE_HH

#include "engine/top.hh"

#endif
