/** Known-bad fixture: raw-double parameter with a unit suffix. */
#ifndef FIXTURE_BAD_UNITS_HH
#define FIXTURE_BAD_UNITS_HH

namespace fixture {

/** `weightG` should be Quantity<Grams>, not a bare double. */
double thrustRequired(double weightG, double twr);

} // namespace fixture

#endif
