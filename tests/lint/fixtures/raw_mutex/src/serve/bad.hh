/** Known-bad fixture: raw std::mutex in an annotated subsystem. */
#ifndef FIXTURE_RAW_MUTEX_HH
#define FIXTURE_RAW_MUTEX_HH

#include <mutex>

namespace fixture {

class Queue
{
  public:
    void push()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++depth_;
    }

  private:
    std::mutex mutex_;
    int depth_ = 0;
};

} // namespace fixture

#endif
