/** Known-bad fixture: nondeterminism in a deterministic subtree. */
#include <random>

namespace fixture {

int
draw()
{
    std::mt19937 rng; // unseeded: default seed hides intent
    std::random_device entropy;
    return static_cast<int>(rng() ^ entropy());
}

} // namespace fixture
