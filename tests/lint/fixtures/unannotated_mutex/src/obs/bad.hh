/** Known-bad fixture: util::Mutex with no DDSE_* annotation —
 *  nothing tells the analysis what it guards. */
#ifndef FIXTURE_UNANNOTATED_MUTEX_HH
#define FIXTURE_UNANNOTATED_MUTEX_HH

#include "util/thread_annotations.hh"

namespace fixture {

class Registry
{
  private:
    mutable util::Mutex mutex_;
    int value_ = 0; // should be DDSE_GUARDED_BY(mutex_)
};

} // namespace fixture

#endif
