/** Clean fixture: nothing for any analyzer pass to flag. */
#ifndef FIXTURE_GOOD_HH
#define FIXTURE_GOOD_HH

namespace fixture {

inline double
scale(double factor, double input)
{
    return factor * input;
}

} // namespace fixture

#endif
