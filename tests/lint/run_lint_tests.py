#!/usr/bin/env python3
"""Battery for tools/analyze.py: every known-bad fixture must be
flagged by the right pass with the right message, the clean fixture
and the real tree must pass.

Usage: run_lint_tests.py REPO_ROOT
"""

import pathlib
import subprocess
import sys

REPO = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")
ANALYZE = REPO / "tools" / "analyze.py"
FIXTURES = REPO / "tests" / "lint" / "fixtures"

# (fixture dir, passes to run, expected stderr substring)
BAD_CASES = (
    ("raw_double_unit_param", "units",
     "raw `double weightG` parameter"),
    ("unseeded_rng", "determinism", "unseeded mt19937"),
    ("unseeded_rng", "determinism", "random_device"),
    ("layer_backedge", "layering", "back-edges are banned"),
    ("raw_mutex", "locks", "raw std::mutex"),
    ("raw_mutex", "locks", "raw std::lock_guard"),
    ("unannotated_mutex", "locks",
     "not referenced by any DDSE_* annotation"),
)

failures = []


def run(root, passes):
    return subprocess.run(
        [sys.executable, str(ANALYZE), "--root", str(root),
         "--fixture", "--passes", passes],
        capture_output=True, text=True)


for name, passes, needle in BAD_CASES:
    proc = run(FIXTURES / name, passes)
    if proc.returncode == 0:
        failures.append(f"{name}[{passes}]: expected failure, "
                        f"analyzer exited 0")
    elif needle not in proc.stderr:
        failures.append(f"{name}[{passes}]: expected "
                        f"'{needle}' in stderr, got:\n{proc.stderr}")
    else:
        print(f"PASS {name}[{passes}]: flagged ('{needle}')")

proc = run(FIXTURES / "clean", "units,locks,determinism,layering")
if proc.returncode != 0:
    failures.append(f"clean: expected success, analyzer said:\n"
                    f"{proc.stdout}{proc.stderr}")
else:
    print("PASS clean: analyzer exits 0")

proc = subprocess.run(
    [sys.executable, str(ANALYZE), "--root", str(REPO)],
    capture_output=True, text=True)
if proc.returncode != 0:
    failures.append(f"real tree: analyzer failed:\n"
                    f"{proc.stdout}{proc.stderr}")
else:
    print("PASS real tree: analyzer exits 0")

if failures:
    print("\n".join(failures), file=sys.stderr)
    print(f"\nrun_lint_tests: {len(failures)} failure(s)",
          file=sys.stderr)
    sys.exit(1)
print(f"run_lint_tests: all {len(BAD_CASES) + 2} checks passed")
