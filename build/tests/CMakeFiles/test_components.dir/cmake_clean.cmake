file(REMOVE_RECURSE
  "CMakeFiles/test_components.dir/components/test_battery.cc.o"
  "CMakeFiles/test_components.dir/components/test_battery.cc.o.d"
  "CMakeFiles/test_components.dir/components/test_commercial.cc.o"
  "CMakeFiles/test_components.dir/components/test_commercial.cc.o.d"
  "CMakeFiles/test_components.dir/components/test_compute_board.cc.o"
  "CMakeFiles/test_components.dir/components/test_compute_board.cc.o.d"
  "CMakeFiles/test_components.dir/components/test_esc.cc.o"
  "CMakeFiles/test_components.dir/components/test_esc.cc.o.d"
  "CMakeFiles/test_components.dir/components/test_frame.cc.o"
  "CMakeFiles/test_components.dir/components/test_frame.cc.o.d"
  "CMakeFiles/test_components.dir/components/test_motor.cc.o"
  "CMakeFiles/test_components.dir/components/test_motor.cc.o.d"
  "CMakeFiles/test_components.dir/components/test_propeller.cc.o"
  "CMakeFiles/test_components.dir/components/test_propeller.cc.o.d"
  "test_components"
  "test_components.pdb"
  "test_components[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
