
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/components/test_battery.cc" "tests/CMakeFiles/test_components.dir/components/test_battery.cc.o" "gcc" "tests/CMakeFiles/test_components.dir/components/test_battery.cc.o.d"
  "/root/repo/tests/components/test_commercial.cc" "tests/CMakeFiles/test_components.dir/components/test_commercial.cc.o" "gcc" "tests/CMakeFiles/test_components.dir/components/test_commercial.cc.o.d"
  "/root/repo/tests/components/test_compute_board.cc" "tests/CMakeFiles/test_components.dir/components/test_compute_board.cc.o" "gcc" "tests/CMakeFiles/test_components.dir/components/test_compute_board.cc.o.d"
  "/root/repo/tests/components/test_esc.cc" "tests/CMakeFiles/test_components.dir/components/test_esc.cc.o" "gcc" "tests/CMakeFiles/test_components.dir/components/test_esc.cc.o.d"
  "/root/repo/tests/components/test_frame.cc" "tests/CMakeFiles/test_components.dir/components/test_frame.cc.o" "gcc" "tests/CMakeFiles/test_components.dir/components/test_frame.cc.o.d"
  "/root/repo/tests/components/test_motor.cc" "tests/CMakeFiles/test_components.dir/components/test_motor.cc.o" "gcc" "tests/CMakeFiles/test_components.dir/components/test_motor.cc.o.d"
  "/root/repo/tests/components/test_propeller.cc" "tests/CMakeFiles/test_components.dir/components/test_propeller.cc.o" "gcc" "tests/CMakeFiles/test_components.dir/components/test_propeller.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dronedse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/dronedse_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/components/CMakeFiles/dronedse_components.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/dronedse_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dronedse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
