
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/power/test_power.cc" "tests/CMakeFiles/test_power.dir/power/test_power.cc.o" "gcc" "tests/CMakeFiles/test_power.dir/power/test_power.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dronedse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/dronedse_power.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/dronedse_control.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dronedse_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/dronedse_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/components/CMakeFiles/dronedse_components.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/dronedse_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dronedse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
