file(REMOVE_RECURSE
  "CMakeFiles/test_dse.dir/dse/test_calibration.cc.o"
  "CMakeFiles/test_dse.dir/dse/test_calibration.cc.o.d"
  "CMakeFiles/test_dse.dir/dse/test_export.cc.o"
  "CMakeFiles/test_dse.dir/dse/test_export.cc.o.d"
  "CMakeFiles/test_dse.dir/dse/test_footprint.cc.o"
  "CMakeFiles/test_dse.dir/dse/test_footprint.cc.o.d"
  "CMakeFiles/test_dse.dir/dse/test_properties.cc.o"
  "CMakeFiles/test_dse.dir/dse/test_properties.cc.o.d"
  "CMakeFiles/test_dse.dir/dse/test_sweep.cc.o"
  "CMakeFiles/test_dse.dir/dse/test_sweep.cc.o.d"
  "CMakeFiles/test_dse.dir/dse/test_weight_closure.cc.o"
  "CMakeFiles/test_dse.dir/dse/test_weight_closure.cc.o.d"
  "test_dse"
  "test_dse.pdb"
  "test_dse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
