file(REMOVE_RECURSE
  "CMakeFiles/test_control.dir/control/test_autopilot.cc.o"
  "CMakeFiles/test_control.dir/control/test_autopilot.cc.o.d"
  "CMakeFiles/test_control.dir/control/test_cascade.cc.o"
  "CMakeFiles/test_control.dir/control/test_cascade.cc.o.d"
  "CMakeFiles/test_control.dir/control/test_ekf.cc.o"
  "CMakeFiles/test_control.dir/control/test_ekf.cc.o.d"
  "CMakeFiles/test_control.dir/control/test_failure_injection.cc.o"
  "CMakeFiles/test_control.dir/control/test_failure_injection.cc.o.d"
  "CMakeFiles/test_control.dir/control/test_mixer.cc.o"
  "CMakeFiles/test_control.dir/control/test_mixer.cc.o.d"
  "CMakeFiles/test_control.dir/control/test_outer_loop.cc.o"
  "CMakeFiles/test_control.dir/control/test_outer_loop.cc.o.d"
  "CMakeFiles/test_control.dir/control/test_pid.cc.o"
  "CMakeFiles/test_control.dir/control/test_pid.cc.o.d"
  "CMakeFiles/test_control.dir/control/test_scheduler.cc.o"
  "CMakeFiles/test_control.dir/control/test_scheduler.cc.o.d"
  "CMakeFiles/test_control.dir/control/test_velocity_mode.cc.o"
  "CMakeFiles/test_control.dir/control/test_velocity_mode.cc.o.d"
  "test_control"
  "test_control.pdb"
  "test_control[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
