
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/control/test_autopilot.cc" "tests/CMakeFiles/test_control.dir/control/test_autopilot.cc.o" "gcc" "tests/CMakeFiles/test_control.dir/control/test_autopilot.cc.o.d"
  "/root/repo/tests/control/test_cascade.cc" "tests/CMakeFiles/test_control.dir/control/test_cascade.cc.o" "gcc" "tests/CMakeFiles/test_control.dir/control/test_cascade.cc.o.d"
  "/root/repo/tests/control/test_ekf.cc" "tests/CMakeFiles/test_control.dir/control/test_ekf.cc.o" "gcc" "tests/CMakeFiles/test_control.dir/control/test_ekf.cc.o.d"
  "/root/repo/tests/control/test_failure_injection.cc" "tests/CMakeFiles/test_control.dir/control/test_failure_injection.cc.o" "gcc" "tests/CMakeFiles/test_control.dir/control/test_failure_injection.cc.o.d"
  "/root/repo/tests/control/test_mixer.cc" "tests/CMakeFiles/test_control.dir/control/test_mixer.cc.o" "gcc" "tests/CMakeFiles/test_control.dir/control/test_mixer.cc.o.d"
  "/root/repo/tests/control/test_outer_loop.cc" "tests/CMakeFiles/test_control.dir/control/test_outer_loop.cc.o" "gcc" "tests/CMakeFiles/test_control.dir/control/test_outer_loop.cc.o.d"
  "/root/repo/tests/control/test_pid.cc" "tests/CMakeFiles/test_control.dir/control/test_pid.cc.o" "gcc" "tests/CMakeFiles/test_control.dir/control/test_pid.cc.o.d"
  "/root/repo/tests/control/test_scheduler.cc" "tests/CMakeFiles/test_control.dir/control/test_scheduler.cc.o" "gcc" "tests/CMakeFiles/test_control.dir/control/test_scheduler.cc.o.d"
  "/root/repo/tests/control/test_velocity_mode.cc" "tests/CMakeFiles/test_control.dir/control/test_velocity_mode.cc.o" "gcc" "tests/CMakeFiles/test_control.dir/control/test_velocity_mode.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dronedse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/dronedse_control.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dronedse_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/dronedse_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/components/CMakeFiles/dronedse_components.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/dronedse_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dronedse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
