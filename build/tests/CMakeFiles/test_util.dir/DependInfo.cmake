
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_csv.cc" "tests/CMakeFiles/test_util.dir/util/test_csv.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_csv.cc.o.d"
  "/root/repo/tests/util/test_matrix.cc" "tests/CMakeFiles/test_util.dir/util/test_matrix.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_matrix.cc.o.d"
  "/root/repo/tests/util/test_quaternion.cc" "tests/CMakeFiles/test_util.dir/util/test_quaternion.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_quaternion.cc.o.d"
  "/root/repo/tests/util/test_regression.cc" "tests/CMakeFiles/test_util.dir/util/test_regression.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_regression.cc.o.d"
  "/root/repo/tests/util/test_rng.cc" "tests/CMakeFiles/test_util.dir/util/test_rng.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_rng.cc.o.d"
  "/root/repo/tests/util/test_table.cc" "tests/CMakeFiles/test_util.dir/util/test_table.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_table.cc.o.d"
  "/root/repo/tests/util/test_vec3.cc" "tests/CMakeFiles/test_util.dir/util/test_vec3.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_vec3.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dronedse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/dronedse_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/components/CMakeFiles/dronedse_components.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/dronedse_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dronedse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
