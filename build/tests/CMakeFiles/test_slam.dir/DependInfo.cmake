
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/slam/test_features.cc" "tests/CMakeFiles/test_slam.dir/slam/test_features.cc.o" "gcc" "tests/CMakeFiles/test_slam.dir/slam/test_features.cc.o.d"
  "/root/repo/tests/slam/test_geometry.cc" "tests/CMakeFiles/test_slam.dir/slam/test_geometry.cc.o" "gcc" "tests/CMakeFiles/test_slam.dir/slam/test_geometry.cc.o.d"
  "/root/repo/tests/slam/test_se3_camera.cc" "tests/CMakeFiles/test_slam.dir/slam/test_se3_camera.cc.o" "gcc" "tests/CMakeFiles/test_slam.dir/slam/test_se3_camera.cc.o.d"
  "/root/repo/tests/slam/test_sequences.cc" "tests/CMakeFiles/test_slam.dir/slam/test_sequences.cc.o" "gcc" "tests/CMakeFiles/test_slam.dir/slam/test_sequences.cc.o.d"
  "/root/repo/tests/slam/test_trajectory_export.cc" "tests/CMakeFiles/test_slam.dir/slam/test_trajectory_export.cc.o" "gcc" "tests/CMakeFiles/test_slam.dir/slam/test_trajectory_export.cc.o.d"
  "/root/repo/tests/slam/test_world_pipeline.cc" "tests/CMakeFiles/test_slam.dir/slam/test_world_pipeline.cc.o" "gcc" "tests/CMakeFiles/test_slam.dir/slam/test_world_pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dronedse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/slam/CMakeFiles/dronedse_slam.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/dronedse_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/components/CMakeFiles/dronedse_components.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/dronedse_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dronedse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
