file(REMOVE_RECURSE
  "CMakeFiles/test_slam.dir/slam/test_features.cc.o"
  "CMakeFiles/test_slam.dir/slam/test_features.cc.o.d"
  "CMakeFiles/test_slam.dir/slam/test_geometry.cc.o"
  "CMakeFiles/test_slam.dir/slam/test_geometry.cc.o.d"
  "CMakeFiles/test_slam.dir/slam/test_se3_camera.cc.o"
  "CMakeFiles/test_slam.dir/slam/test_se3_camera.cc.o.d"
  "CMakeFiles/test_slam.dir/slam/test_sequences.cc.o"
  "CMakeFiles/test_slam.dir/slam/test_sequences.cc.o.d"
  "CMakeFiles/test_slam.dir/slam/test_trajectory_export.cc.o"
  "CMakeFiles/test_slam.dir/slam/test_trajectory_export.cc.o.d"
  "CMakeFiles/test_slam.dir/slam/test_world_pipeline.cc.o"
  "CMakeFiles/test_slam.dir/slam/test_world_pipeline.cc.o.d"
  "test_slam"
  "test_slam.pdb"
  "test_slam[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
