# Empty dependencies file for dronedse_core.
# This may be replaced when dependencies are built.
