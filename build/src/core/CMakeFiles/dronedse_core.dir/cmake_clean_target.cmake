file(REMOVE_RECURSE
  "libdronedse_core.a"
)
