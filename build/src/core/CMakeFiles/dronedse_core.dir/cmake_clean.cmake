file(REMOVE_RECURSE
  "CMakeFiles/dronedse_core.dir/designer.cc.o"
  "CMakeFiles/dronedse_core.dir/designer.cc.o.d"
  "CMakeFiles/dronedse_core.dir/presets.cc.o"
  "CMakeFiles/dronedse_core.dir/presets.cc.o.d"
  "libdronedse_core.a"
  "libdronedse_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dronedse_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
