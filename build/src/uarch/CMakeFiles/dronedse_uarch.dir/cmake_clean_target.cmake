file(REMOVE_RECURSE
  "libdronedse_uarch.a"
)
