# Empty dependencies file for dronedse_uarch.
# This may be replaced when dependencies are built.
