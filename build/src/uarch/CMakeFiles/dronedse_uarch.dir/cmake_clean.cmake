file(REMOVE_RECURSE
  "CMakeFiles/dronedse_uarch.dir/branch_predictor.cc.o"
  "CMakeFiles/dronedse_uarch.dir/branch_predictor.cc.o.d"
  "CMakeFiles/dronedse_uarch.dir/cache.cc.o"
  "CMakeFiles/dronedse_uarch.dir/cache.cc.o.d"
  "CMakeFiles/dronedse_uarch.dir/core.cc.o"
  "CMakeFiles/dronedse_uarch.dir/core.cc.o.d"
  "CMakeFiles/dronedse_uarch.dir/tlb.cc.o"
  "CMakeFiles/dronedse_uarch.dir/tlb.cc.o.d"
  "CMakeFiles/dronedse_uarch.dir/trace.cc.o"
  "CMakeFiles/dronedse_uarch.dir/trace.cc.o.d"
  "libdronedse_uarch.a"
  "libdronedse_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dronedse_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
