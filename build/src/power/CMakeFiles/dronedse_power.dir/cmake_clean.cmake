file(REMOVE_RECURSE
  "CMakeFiles/dronedse_power.dir/board_power.cc.o"
  "CMakeFiles/dronedse_power.dir/board_power.cc.o.d"
  "CMakeFiles/dronedse_power.dir/drone_power.cc.o"
  "CMakeFiles/dronedse_power.dir/drone_power.cc.o.d"
  "libdronedse_power.a"
  "libdronedse_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dronedse_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
