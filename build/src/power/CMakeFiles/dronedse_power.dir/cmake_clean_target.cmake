file(REMOVE_RECURSE
  "libdronedse_power.a"
)
