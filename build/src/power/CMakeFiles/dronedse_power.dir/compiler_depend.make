# Empty compiler generated dependencies file for dronedse_power.
# This may be replaced when dependencies are built.
