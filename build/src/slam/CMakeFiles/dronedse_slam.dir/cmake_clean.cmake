file(REMOVE_RECURSE
  "CMakeFiles/dronedse_slam.dir/ba.cc.o"
  "CMakeFiles/dronedse_slam.dir/ba.cc.o.d"
  "CMakeFiles/dronedse_slam.dir/brief.cc.o"
  "CMakeFiles/dronedse_slam.dir/brief.cc.o.d"
  "CMakeFiles/dronedse_slam.dir/camera.cc.o"
  "CMakeFiles/dronedse_slam.dir/camera.cc.o.d"
  "CMakeFiles/dronedse_slam.dir/fast.cc.o"
  "CMakeFiles/dronedse_slam.dir/fast.cc.o.d"
  "CMakeFiles/dronedse_slam.dir/image.cc.o"
  "CMakeFiles/dronedse_slam.dir/image.cc.o.d"
  "CMakeFiles/dronedse_slam.dir/map.cc.o"
  "CMakeFiles/dronedse_slam.dir/map.cc.o.d"
  "CMakeFiles/dronedse_slam.dir/matcher.cc.o"
  "CMakeFiles/dronedse_slam.dir/matcher.cc.o.d"
  "CMakeFiles/dronedse_slam.dir/pipeline.cc.o"
  "CMakeFiles/dronedse_slam.dir/pipeline.cc.o.d"
  "CMakeFiles/dronedse_slam.dir/pnp.cc.o"
  "CMakeFiles/dronedse_slam.dir/pnp.cc.o.d"
  "CMakeFiles/dronedse_slam.dir/se3.cc.o"
  "CMakeFiles/dronedse_slam.dir/se3.cc.o.d"
  "CMakeFiles/dronedse_slam.dir/triangulation.cc.o"
  "CMakeFiles/dronedse_slam.dir/triangulation.cc.o.d"
  "CMakeFiles/dronedse_slam.dir/world.cc.o"
  "CMakeFiles/dronedse_slam.dir/world.cc.o.d"
  "libdronedse_slam.a"
  "libdronedse_slam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dronedse_slam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
