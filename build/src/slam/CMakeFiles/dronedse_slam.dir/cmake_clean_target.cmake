file(REMOVE_RECURSE
  "libdronedse_slam.a"
)
