
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/slam/ba.cc" "src/slam/CMakeFiles/dronedse_slam.dir/ba.cc.o" "gcc" "src/slam/CMakeFiles/dronedse_slam.dir/ba.cc.o.d"
  "/root/repo/src/slam/brief.cc" "src/slam/CMakeFiles/dronedse_slam.dir/brief.cc.o" "gcc" "src/slam/CMakeFiles/dronedse_slam.dir/brief.cc.o.d"
  "/root/repo/src/slam/camera.cc" "src/slam/CMakeFiles/dronedse_slam.dir/camera.cc.o" "gcc" "src/slam/CMakeFiles/dronedse_slam.dir/camera.cc.o.d"
  "/root/repo/src/slam/fast.cc" "src/slam/CMakeFiles/dronedse_slam.dir/fast.cc.o" "gcc" "src/slam/CMakeFiles/dronedse_slam.dir/fast.cc.o.d"
  "/root/repo/src/slam/image.cc" "src/slam/CMakeFiles/dronedse_slam.dir/image.cc.o" "gcc" "src/slam/CMakeFiles/dronedse_slam.dir/image.cc.o.d"
  "/root/repo/src/slam/map.cc" "src/slam/CMakeFiles/dronedse_slam.dir/map.cc.o" "gcc" "src/slam/CMakeFiles/dronedse_slam.dir/map.cc.o.d"
  "/root/repo/src/slam/matcher.cc" "src/slam/CMakeFiles/dronedse_slam.dir/matcher.cc.o" "gcc" "src/slam/CMakeFiles/dronedse_slam.dir/matcher.cc.o.d"
  "/root/repo/src/slam/pipeline.cc" "src/slam/CMakeFiles/dronedse_slam.dir/pipeline.cc.o" "gcc" "src/slam/CMakeFiles/dronedse_slam.dir/pipeline.cc.o.d"
  "/root/repo/src/slam/pnp.cc" "src/slam/CMakeFiles/dronedse_slam.dir/pnp.cc.o" "gcc" "src/slam/CMakeFiles/dronedse_slam.dir/pnp.cc.o.d"
  "/root/repo/src/slam/se3.cc" "src/slam/CMakeFiles/dronedse_slam.dir/se3.cc.o" "gcc" "src/slam/CMakeFiles/dronedse_slam.dir/se3.cc.o.d"
  "/root/repo/src/slam/triangulation.cc" "src/slam/CMakeFiles/dronedse_slam.dir/triangulation.cc.o" "gcc" "src/slam/CMakeFiles/dronedse_slam.dir/triangulation.cc.o.d"
  "/root/repo/src/slam/world.cc" "src/slam/CMakeFiles/dronedse_slam.dir/world.cc.o" "gcc" "src/slam/CMakeFiles/dronedse_slam.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dronedse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
