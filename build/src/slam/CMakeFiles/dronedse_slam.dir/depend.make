# Empty dependencies file for dronedse_slam.
# This may be replaced when dependencies are built.
