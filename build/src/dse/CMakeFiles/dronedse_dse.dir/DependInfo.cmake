
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dse/export.cc" "src/dse/CMakeFiles/dronedse_dse.dir/export.cc.o" "gcc" "src/dse/CMakeFiles/dronedse_dse.dir/export.cc.o.d"
  "/root/repo/src/dse/footprint.cc" "src/dse/CMakeFiles/dronedse_dse.dir/footprint.cc.o" "gcc" "src/dse/CMakeFiles/dronedse_dse.dir/footprint.cc.o.d"
  "/root/repo/src/dse/sweep.cc" "src/dse/CMakeFiles/dronedse_dse.dir/sweep.cc.o" "gcc" "src/dse/CMakeFiles/dronedse_dse.dir/sweep.cc.o.d"
  "/root/repo/src/dse/weight_closure.cc" "src/dse/CMakeFiles/dronedse_dse.dir/weight_closure.cc.o" "gcc" "src/dse/CMakeFiles/dronedse_dse.dir/weight_closure.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/components/CMakeFiles/dronedse_components.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/dronedse_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dronedse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
