file(REMOVE_RECURSE
  "CMakeFiles/dronedse_dse.dir/export.cc.o"
  "CMakeFiles/dronedse_dse.dir/export.cc.o.d"
  "CMakeFiles/dronedse_dse.dir/footprint.cc.o"
  "CMakeFiles/dronedse_dse.dir/footprint.cc.o.d"
  "CMakeFiles/dronedse_dse.dir/sweep.cc.o"
  "CMakeFiles/dronedse_dse.dir/sweep.cc.o.d"
  "CMakeFiles/dronedse_dse.dir/weight_closure.cc.o"
  "CMakeFiles/dronedse_dse.dir/weight_closure.cc.o.d"
  "libdronedse_dse.a"
  "libdronedse_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dronedse_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
