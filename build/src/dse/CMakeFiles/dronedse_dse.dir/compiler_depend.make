# Empty compiler generated dependencies file for dronedse_dse.
# This may be replaced when dependencies are built.
