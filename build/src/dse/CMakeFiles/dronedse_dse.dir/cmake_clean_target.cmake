file(REMOVE_RECURSE
  "libdronedse_dse.a"
)
