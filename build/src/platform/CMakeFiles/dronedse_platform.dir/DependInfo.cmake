
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/exec_model.cc" "src/platform/CMakeFiles/dronedse_platform.dir/exec_model.cc.o" "gcc" "src/platform/CMakeFiles/dronedse_platform.dir/exec_model.cc.o.d"
  "/root/repo/src/platform/offload.cc" "src/platform/CMakeFiles/dronedse_platform.dir/offload.cc.o" "gcc" "src/platform/CMakeFiles/dronedse_platform.dir/offload.cc.o.d"
  "/root/repo/src/platform/platform.cc" "src/platform/CMakeFiles/dronedse_platform.dir/platform.cc.o" "gcc" "src/platform/CMakeFiles/dronedse_platform.dir/platform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/slam/CMakeFiles/dronedse_slam.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/dronedse_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dronedse_util.dir/DependInfo.cmake"
  "/root/repo/build/src/components/CMakeFiles/dronedse_components.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/dronedse_physics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
