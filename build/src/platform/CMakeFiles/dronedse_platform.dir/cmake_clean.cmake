file(REMOVE_RECURSE
  "CMakeFiles/dronedse_platform.dir/exec_model.cc.o"
  "CMakeFiles/dronedse_platform.dir/exec_model.cc.o.d"
  "CMakeFiles/dronedse_platform.dir/offload.cc.o"
  "CMakeFiles/dronedse_platform.dir/offload.cc.o.d"
  "CMakeFiles/dronedse_platform.dir/platform.cc.o"
  "CMakeFiles/dronedse_platform.dir/platform.cc.o.d"
  "libdronedse_platform.a"
  "libdronedse_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dronedse_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
