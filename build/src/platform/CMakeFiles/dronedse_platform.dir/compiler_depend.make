# Empty compiler generated dependencies file for dronedse_platform.
# This may be replaced when dependencies are built.
