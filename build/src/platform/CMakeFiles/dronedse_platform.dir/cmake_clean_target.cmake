file(REMOVE_RECURSE
  "libdronedse_platform.a"
)
