file(REMOVE_RECURSE
  "CMakeFiles/dronedse_sim.dir/environment.cc.o"
  "CMakeFiles/dronedse_sim.dir/environment.cc.o.d"
  "CMakeFiles/dronedse_sim.dir/quadrotor.cc.o"
  "CMakeFiles/dronedse_sim.dir/quadrotor.cc.o.d"
  "libdronedse_sim.a"
  "libdronedse_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dronedse_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
