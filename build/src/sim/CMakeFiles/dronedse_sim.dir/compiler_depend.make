# Empty compiler generated dependencies file for dronedse_sim.
# This may be replaced when dependencies are built.
