file(REMOVE_RECURSE
  "libdronedse_sim.a"
)
