file(REMOVE_RECURSE
  "CMakeFiles/dronedse_control.dir/autopilot.cc.o"
  "CMakeFiles/dronedse_control.dir/autopilot.cc.o.d"
  "CMakeFiles/dronedse_control.dir/cascade.cc.o"
  "CMakeFiles/dronedse_control.dir/cascade.cc.o.d"
  "CMakeFiles/dronedse_control.dir/ekf.cc.o"
  "CMakeFiles/dronedse_control.dir/ekf.cc.o.d"
  "CMakeFiles/dronedse_control.dir/mixer.cc.o"
  "CMakeFiles/dronedse_control.dir/mixer.cc.o.d"
  "CMakeFiles/dronedse_control.dir/outer_loop.cc.o"
  "CMakeFiles/dronedse_control.dir/outer_loop.cc.o.d"
  "CMakeFiles/dronedse_control.dir/pid.cc.o"
  "CMakeFiles/dronedse_control.dir/pid.cc.o.d"
  "CMakeFiles/dronedse_control.dir/scheduler.cc.o"
  "CMakeFiles/dronedse_control.dir/scheduler.cc.o.d"
  "CMakeFiles/dronedse_control.dir/sensors.cc.o"
  "CMakeFiles/dronedse_control.dir/sensors.cc.o.d"
  "libdronedse_control.a"
  "libdronedse_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dronedse_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
