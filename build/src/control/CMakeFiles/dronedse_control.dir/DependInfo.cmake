
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/autopilot.cc" "src/control/CMakeFiles/dronedse_control.dir/autopilot.cc.o" "gcc" "src/control/CMakeFiles/dronedse_control.dir/autopilot.cc.o.d"
  "/root/repo/src/control/cascade.cc" "src/control/CMakeFiles/dronedse_control.dir/cascade.cc.o" "gcc" "src/control/CMakeFiles/dronedse_control.dir/cascade.cc.o.d"
  "/root/repo/src/control/ekf.cc" "src/control/CMakeFiles/dronedse_control.dir/ekf.cc.o" "gcc" "src/control/CMakeFiles/dronedse_control.dir/ekf.cc.o.d"
  "/root/repo/src/control/mixer.cc" "src/control/CMakeFiles/dronedse_control.dir/mixer.cc.o" "gcc" "src/control/CMakeFiles/dronedse_control.dir/mixer.cc.o.d"
  "/root/repo/src/control/outer_loop.cc" "src/control/CMakeFiles/dronedse_control.dir/outer_loop.cc.o" "gcc" "src/control/CMakeFiles/dronedse_control.dir/outer_loop.cc.o.d"
  "/root/repo/src/control/pid.cc" "src/control/CMakeFiles/dronedse_control.dir/pid.cc.o" "gcc" "src/control/CMakeFiles/dronedse_control.dir/pid.cc.o.d"
  "/root/repo/src/control/scheduler.cc" "src/control/CMakeFiles/dronedse_control.dir/scheduler.cc.o" "gcc" "src/control/CMakeFiles/dronedse_control.dir/scheduler.cc.o.d"
  "/root/repo/src/control/sensors.cc" "src/control/CMakeFiles/dronedse_control.dir/sensors.cc.o" "gcc" "src/control/CMakeFiles/dronedse_control.dir/sensors.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dronedse_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/dronedse_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dronedse_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/dronedse_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/components/CMakeFiles/dronedse_components.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
