file(REMOVE_RECURSE
  "libdronedse_control.a"
)
