# Empty dependencies file for dronedse_control.
# This may be replaced when dependencies are built.
