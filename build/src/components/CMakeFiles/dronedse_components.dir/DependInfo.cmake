
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/components/battery.cc" "src/components/CMakeFiles/dronedse_components.dir/battery.cc.o" "gcc" "src/components/CMakeFiles/dronedse_components.dir/battery.cc.o.d"
  "/root/repo/src/components/commercial.cc" "src/components/CMakeFiles/dronedse_components.dir/commercial.cc.o" "gcc" "src/components/CMakeFiles/dronedse_components.dir/commercial.cc.o.d"
  "/root/repo/src/components/compute_board.cc" "src/components/CMakeFiles/dronedse_components.dir/compute_board.cc.o" "gcc" "src/components/CMakeFiles/dronedse_components.dir/compute_board.cc.o.d"
  "/root/repo/src/components/esc.cc" "src/components/CMakeFiles/dronedse_components.dir/esc.cc.o" "gcc" "src/components/CMakeFiles/dronedse_components.dir/esc.cc.o.d"
  "/root/repo/src/components/frame.cc" "src/components/CMakeFiles/dronedse_components.dir/frame.cc.o" "gcc" "src/components/CMakeFiles/dronedse_components.dir/frame.cc.o.d"
  "/root/repo/src/components/motor.cc" "src/components/CMakeFiles/dronedse_components.dir/motor.cc.o" "gcc" "src/components/CMakeFiles/dronedse_components.dir/motor.cc.o.d"
  "/root/repo/src/components/propeller.cc" "src/components/CMakeFiles/dronedse_components.dir/propeller.cc.o" "gcc" "src/components/CMakeFiles/dronedse_components.dir/propeller.cc.o.d"
  "/root/repo/src/components/sensor.cc" "src/components/CMakeFiles/dronedse_components.dir/sensor.cc.o" "gcc" "src/components/CMakeFiles/dronedse_components.dir/sensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dronedse_util.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/dronedse_physics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
