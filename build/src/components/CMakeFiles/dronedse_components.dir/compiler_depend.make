# Empty compiler generated dependencies file for dronedse_components.
# This may be replaced when dependencies are built.
