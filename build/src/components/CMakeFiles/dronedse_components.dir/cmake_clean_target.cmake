file(REMOVE_RECURSE
  "libdronedse_components.a"
)
