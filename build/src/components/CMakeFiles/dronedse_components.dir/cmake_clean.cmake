file(REMOVE_RECURSE
  "CMakeFiles/dronedse_components.dir/battery.cc.o"
  "CMakeFiles/dronedse_components.dir/battery.cc.o.d"
  "CMakeFiles/dronedse_components.dir/commercial.cc.o"
  "CMakeFiles/dronedse_components.dir/commercial.cc.o.d"
  "CMakeFiles/dronedse_components.dir/compute_board.cc.o"
  "CMakeFiles/dronedse_components.dir/compute_board.cc.o.d"
  "CMakeFiles/dronedse_components.dir/esc.cc.o"
  "CMakeFiles/dronedse_components.dir/esc.cc.o.d"
  "CMakeFiles/dronedse_components.dir/frame.cc.o"
  "CMakeFiles/dronedse_components.dir/frame.cc.o.d"
  "CMakeFiles/dronedse_components.dir/motor.cc.o"
  "CMakeFiles/dronedse_components.dir/motor.cc.o.d"
  "CMakeFiles/dronedse_components.dir/propeller.cc.o"
  "CMakeFiles/dronedse_components.dir/propeller.cc.o.d"
  "CMakeFiles/dronedse_components.dir/sensor.cc.o"
  "CMakeFiles/dronedse_components.dir/sensor.cc.o.d"
  "libdronedse_components.a"
  "libdronedse_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dronedse_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
