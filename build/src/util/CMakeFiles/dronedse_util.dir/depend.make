# Empty dependencies file for dronedse_util.
# This may be replaced when dependencies are built.
