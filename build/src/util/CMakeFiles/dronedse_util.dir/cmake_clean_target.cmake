file(REMOVE_RECURSE
  "libdronedse_util.a"
)
