file(REMOVE_RECURSE
  "CMakeFiles/dronedse_util.dir/csv.cc.o"
  "CMakeFiles/dronedse_util.dir/csv.cc.o.d"
  "CMakeFiles/dronedse_util.dir/logging.cc.o"
  "CMakeFiles/dronedse_util.dir/logging.cc.o.d"
  "CMakeFiles/dronedse_util.dir/matrix.cc.o"
  "CMakeFiles/dronedse_util.dir/matrix.cc.o.d"
  "CMakeFiles/dronedse_util.dir/regression.cc.o"
  "CMakeFiles/dronedse_util.dir/regression.cc.o.d"
  "CMakeFiles/dronedse_util.dir/rng.cc.o"
  "CMakeFiles/dronedse_util.dir/rng.cc.o.d"
  "CMakeFiles/dronedse_util.dir/table.cc.o"
  "CMakeFiles/dronedse_util.dir/table.cc.o.d"
  "libdronedse_util.a"
  "libdronedse_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dronedse_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
