# Empty dependencies file for dronedse_physics.
# This may be replaced when dependencies are built.
