
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/physics/lipo.cc" "src/physics/CMakeFiles/dronedse_physics.dir/lipo.cc.o" "gcc" "src/physics/CMakeFiles/dronedse_physics.dir/lipo.cc.o.d"
  "/root/repo/src/physics/propeller_aero.cc" "src/physics/CMakeFiles/dronedse_physics.dir/propeller_aero.cc.o" "gcc" "src/physics/CMakeFiles/dronedse_physics.dir/propeller_aero.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dronedse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
