file(REMOVE_RECURSE
  "libdronedse_physics.a"
)
