file(REMOVE_RECURSE
  "CMakeFiles/dronedse_physics.dir/lipo.cc.o"
  "CMakeFiles/dronedse_physics.dir/lipo.cc.o.d"
  "CMakeFiles/dronedse_physics.dir/propeller_aero.cc.o"
  "CMakeFiles/dronedse_physics.dir/propeller_aero.cc.o.d"
  "libdronedse_physics.a"
  "libdronedse_physics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dronedse_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
