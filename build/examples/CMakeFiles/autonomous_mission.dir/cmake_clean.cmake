file(REMOVE_RECURSE
  "CMakeFiles/autonomous_mission.dir/autonomous_mission.cc.o"
  "CMakeFiles/autonomous_mission.dir/autonomous_mission.cc.o.d"
  "autonomous_mission"
  "autonomous_mission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autonomous_mission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
