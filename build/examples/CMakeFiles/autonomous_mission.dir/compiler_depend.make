# Empty compiler generated dependencies file for autonomous_mission.
# This may be replaced when dependencies are built.
