
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/slam_offload_study.cc" "examples/CMakeFiles/slam_offload_study.dir/slam_offload_study.cc.o" "gcc" "examples/CMakeFiles/slam_offload_study.dir/slam_offload_study.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dronedse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/dronedse_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/dronedse_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/components/CMakeFiles/dronedse_components.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/dronedse_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/slam/CMakeFiles/dronedse_slam.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dronedse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
