file(REMOVE_RECURSE
  "CMakeFiles/slam_offload_study.dir/slam_offload_study.cc.o"
  "CMakeFiles/slam_offload_study.dir/slam_offload_study.cc.o.d"
  "slam_offload_study"
  "slam_offload_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slam_offload_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
