# Empty compiler generated dependencies file for slam_offload_study.
# This may be replaced when dependencies are built.
