file(REMOVE_RECURSE
  "CMakeFiles/fig10_power_footprint.dir/fig10_power_footprint.cc.o"
  "CMakeFiles/fig10_power_footprint.dir/fig10_power_footprint.cc.o.d"
  "fig10_power_footprint"
  "fig10_power_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_power_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
