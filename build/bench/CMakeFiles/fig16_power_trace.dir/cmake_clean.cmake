file(REMOVE_RECURSE
  "CMakeFiles/fig16_power_trace.dir/fig16_power_trace.cc.o"
  "CMakeFiles/fig16_power_trace.dir/fig16_power_trace.cc.o.d"
  "fig16_power_trace"
  "fig16_power_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_power_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
