# Empty dependencies file for fig16_power_trace.
# This may be replaced when dependencies are built.
