# Empty dependencies file for fig14_weight_breakdown.
# This may be replaced when dependencies are built.
