file(REMOVE_RECURSE
  "CMakeFiles/fig14_weight_breakdown.dir/fig14_weight_breakdown.cc.o"
  "CMakeFiles/fig14_weight_breakdown.dir/fig14_weight_breakdown.cc.o.d"
  "fig14_weight_breakdown"
  "fig14_weight_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_weight_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
