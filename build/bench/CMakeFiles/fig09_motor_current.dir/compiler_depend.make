# Empty compiler generated dependencies file for fig09_motor_current.
# This may be replaced when dependencies are built.
