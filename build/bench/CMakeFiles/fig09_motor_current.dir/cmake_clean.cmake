file(REMOVE_RECURSE
  "CMakeFiles/fig09_motor_current.dir/fig09_motor_current.cc.o"
  "CMakeFiles/fig09_motor_current.dir/fig09_motor_current.cc.o.d"
  "fig09_motor_current"
  "fig09_motor_current.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_motor_current.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
