file(REMOVE_RECURSE
  "CMakeFiles/fig07_battery_weight.dir/fig07_battery_weight.cc.o"
  "CMakeFiles/fig07_battery_weight.dir/fig07_battery_weight.cc.o.d"
  "fig07_battery_weight"
  "fig07_battery_weight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_battery_weight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
