# Empty compiler generated dependencies file for fig07_battery_weight.
# This may be replaced when dependencies are built.
