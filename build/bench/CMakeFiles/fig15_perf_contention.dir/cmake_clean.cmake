file(REMOVE_RECURSE
  "CMakeFiles/fig15_perf_contention.dir/fig15_perf_contention.cc.o"
  "CMakeFiles/fig15_perf_contention.dir/fig15_perf_contention.cc.o.d"
  "fig15_perf_contention"
  "fig15_perf_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_perf_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
