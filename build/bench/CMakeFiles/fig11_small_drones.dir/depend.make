# Empty dependencies file for fig11_small_drones.
# This may be replaced when dependencies are built.
