file(REMOVE_RECURSE
  "CMakeFiles/fig11_small_drones.dir/fig11_small_drones.cc.o"
  "CMakeFiles/fig11_small_drones.dir/fig11_small_drones.cc.o.d"
  "fig11_small_drones"
  "fig11_small_drones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_small_drones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
