file(REMOVE_RECURSE
  "CMakeFiles/table5_platform_costs.dir/table5_platform_costs.cc.o"
  "CMakeFiles/table5_platform_costs.dir/table5_platform_costs.cc.o.d"
  "table5_platform_costs"
  "table5_platform_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_platform_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
