# Empty dependencies file for table5_platform_costs.
# This may be replaced when dependencies are built.
