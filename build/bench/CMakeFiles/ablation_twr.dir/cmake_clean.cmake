file(REMOVE_RECURSE
  "CMakeFiles/ablation_twr.dir/ablation_twr.cc.o"
  "CMakeFiles/ablation_twr.dir/ablation_twr.cc.o.d"
  "ablation_twr"
  "ablation_twr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_twr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
