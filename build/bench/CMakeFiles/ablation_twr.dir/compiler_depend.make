# Empty compiler generated dependencies file for ablation_twr.
# This may be replaced when dependencies are built.
