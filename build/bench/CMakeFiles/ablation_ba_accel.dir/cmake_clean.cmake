file(REMOVE_RECURSE
  "CMakeFiles/ablation_ba_accel.dir/ablation_ba_accel.cc.o"
  "CMakeFiles/ablation_ba_accel.dir/ablation_ba_accel.cc.o.d"
  "ablation_ba_accel"
  "ablation_ba_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ba_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
