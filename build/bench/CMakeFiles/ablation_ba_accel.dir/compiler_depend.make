# Empty compiler generated dependencies file for ablation_ba_accel.
# This may be replaced when dependencies are built.
