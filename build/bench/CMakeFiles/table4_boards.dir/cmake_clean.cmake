file(REMOVE_RECURSE
  "CMakeFiles/table4_boards.dir/table4_boards.cc.o"
  "CMakeFiles/table4_boards.dir/table4_boards.cc.o.d"
  "table4_boards"
  "table4_boards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_boards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
