# Empty compiler generated dependencies file for table4_boards.
# This may be replaced when dependencies are built.
