# Empty compiler generated dependencies file for fig17_slam_speedup.
# This may be replaced when dependencies are built.
