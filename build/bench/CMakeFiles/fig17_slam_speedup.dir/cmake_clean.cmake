file(REMOVE_RECURSE
  "CMakeFiles/fig17_slam_speedup.dir/fig17_slam_speedup.cc.o"
  "CMakeFiles/fig17_slam_speedup.dir/fig17_slam_speedup.cc.o.d"
  "fig17_slam_speedup"
  "fig17_slam_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_slam_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
