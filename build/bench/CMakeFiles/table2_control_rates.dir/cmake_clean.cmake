file(REMOVE_RECURSE
  "CMakeFiles/table2_control_rates.dir/table2_control_rates.cc.o"
  "CMakeFiles/table2_control_rates.dir/table2_control_rates.cc.o.d"
  "table2_control_rates"
  "table2_control_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_control_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
