file(REMOVE_RECURSE
  "CMakeFiles/fig08_esc_frame.dir/fig08_esc_frame.cc.o"
  "CMakeFiles/fig08_esc_frame.dir/fig08_esc_frame.cc.o.d"
  "fig08_esc_frame"
  "fig08_esc_frame.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_esc_frame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
