# Empty dependencies file for fig08_esc_frame.
# This may be replaced when dependencies are built.
