#!/usr/bin/env python3
"""Run clang-tidy over the library sources using the checked-in
.clang-tidy config and a build tree's compile_commands.json.

Usage: run_clang_tidy.py <clang-tidy-exe> <build-dir> <src-dir>

Exits non-zero if clang-tidy reports any diagnostic (warnings are
errors here: the config's check set is the project gate).
"""

import pathlib
import subprocess
import sys


def main() -> int:
    if len(sys.argv) != 4:
        print(__doc__, file=sys.stderr)
        return 2
    tidy, build_dir, src_dir = sys.argv[1:4]

    if not (pathlib.Path(build_dir) / "compile_commands.json").exists():
        print(f"run_clang_tidy: no compile_commands.json in "
              f"{build_dir} (configure with "
              f"CMAKE_EXPORT_COMPILE_COMMANDS=ON)", file=sys.stderr)
        return 2

    files = sorted(str(p) for p in pathlib.Path(src_dir).rglob("*.cc"))
    if not files:
        print(f"run_clang_tidy: no sources under {src_dir}",
              file=sys.stderr)
        return 2

    result = subprocess.run(
        [tidy, "-p", build_dir, "--quiet",
         "--warnings-as-errors=*", *files])
    if result.returncode == 0:
        print(f"run_clang_tidy: OK ({len(files)} sources)")
    return result.returncode


if __name__ == "__main__":
    sys.exit(main())
