#!/usr/bin/env python3
"""Validate an exported chrome://tracing JSON trace.

Usage: check_trace.py TRACE.json [--min-events N]

Schema checked (the subset of the Trace Event Format the obs tracer
emits, and the contract chrome://tracing needs to render the file):

  - top level: object with "traceEvents" (list); optional
    "displayTimeUnit" must be "ms" or "ns"
  - every event: object with string "name", string "cat", "ph" of
    "X" (complete span) or "i" (instant), numeric "ts" >= 0, and
    integer "pid"/"tid" >= 0
  - "X" events additionally need numeric "dur" >= 0
  - "i" events need scope "s" of "t", "p", or "g" and no "dur"
  - pids stay within the tracer's declared tracks (1 wall, 2 sim)

Exit status 0 when the trace validates, 1 with a per-event message
otherwise.  CI runs this against a trace freshly emitted by an
example binary so the export path stays loadable in the browser.
"""

import argparse
import json
import numbers
import sys

KNOWN_TRACKS = (1, 2)  # obs::kWallTrack, obs::kSimTrack


def fail(msg: str) -> None:
    print(f"check_trace: {msg}", file=sys.stderr)
    raise SystemExit(1)


def check_event(i: int, ev: object) -> None:
    where = f"traceEvents[{i}]"
    if not isinstance(ev, dict):
        fail(f"{where}: not an object")
    for key in ("name", "cat"):
        if not isinstance(ev.get(key), str) or not ev[key]:
            fail(f"{where}: missing or empty string '{key}'")
    ph = ev.get("ph")
    if ph not in ("X", "i"):
        fail(f"{where} ({ev['name']}): ph must be 'X' or 'i', "
             f"got {ph!r}")
    ts = ev.get("ts")
    if not isinstance(ts, numbers.Real) or ts < 0:
        fail(f"{where} ({ev['name']}): ts must be a number >= 0")
    for key in ("pid", "tid"):
        v = ev.get(key)
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            fail(f"{where} ({ev['name']}): {key} must be an "
                 f"integer >= 0")
    if ev["pid"] not in KNOWN_TRACKS:
        fail(f"{where} ({ev['name']}): pid {ev['pid']} is not a "
             f"known track {KNOWN_TRACKS}")
    if ph == "X":
        dur = ev.get("dur")
        if not isinstance(dur, numbers.Real) or dur < 0:
            fail(f"{where} ({ev['name']}): complete span needs "
                 f"numeric dur >= 0")
    else:
        if "dur" in ev:
            fail(f"{where} ({ev['name']}): instant must not carry "
                 f"dur")
        if ev.get("s") not in ("t", "p", "g"):
            fail(f"{where} ({ev['name']}): instant scope 's' must "
                 f"be 't', 'p', or 'g'")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="chrome://tracing JSON file")
    parser.add_argument("--min-events", type=int, default=1,
                        help="fail when fewer events are present "
                             "(default: 1)")
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"{args.trace}: {exc}")

    if not isinstance(doc, dict):
        fail("top level must be an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("missing 'traceEvents' list")
    if "displayTimeUnit" in doc and \
            doc["displayTimeUnit"] not in ("ms", "ns"):
        fail(f"displayTimeUnit must be 'ms' or 'ns', got "
             f"{doc['displayTimeUnit']!r}")
    if len(events) < args.min_events:
        fail(f"only {len(events)} events, expected at least "
             f"{args.min_events}")

    for i, ev in enumerate(events):
        check_event(i, ev)

    spans = sum(1 for ev in events if ev["ph"] == "X")
    instants = len(events) - spans
    print(f"check_trace: {args.trace} OK — {spans} spans, "
          f"{instants} instants across "
          f"{len({ev['pid'] for ev in events})} track(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
