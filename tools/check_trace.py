#!/usr/bin/env python3
"""Validate an exported chrome://tracing JSON trace.

Usage: check_trace.py TRACE.json [--min-events N]

Schema checked (the subset of the Trace Event Format the obs tracer
emits, and the contract chrome://tracing needs to render the file):

  - top level: object with "traceEvents" (list); optional
    "displayTimeUnit" must be "ms" or "ns"
  - every event: object with string "name", string "cat", "ph" of
    "X" (complete span) or "i" (instant), numeric "ts" >= 0, and
    integer "pid"/"tid" >= 0
  - "X" events additionally need numeric "dur" >= 0
  - "i" events need scope "s" of "t", "p", or "g" and no "dur"
  - pids stay within the tracer's declared tracks (1 wall, 2 sim)

Exit status 0 when the trace validates, 1 with a per-event message
otherwise.  CI runs this against a trace freshly emitted by an
example binary so the export path stays loadable in the browser.

Also importable: ``validate(path, min_events)`` returns the list of
error messages (``tools/analyze.py`` uses this as its `trace` pass).
"""

import argparse
import json
import numbers
import sys

KNOWN_TRACKS = (1, 2)  # obs::kWallTrack, obs::kSimTrack


def check_event(i: int, ev: object, errors: list) -> None:
    where = f"traceEvents[{i}]"
    if not isinstance(ev, dict):
        errors.append(f"{where}: not an object")
        return
    for key in ("name", "cat"):
        if not isinstance(ev.get(key), str) or not ev[key]:
            errors.append(f"{where}: missing or empty string '{key}'")
            return
    name = ev["name"]
    ph = ev.get("ph")
    if ph not in ("X", "i"):
        errors.append(f"{where} ({name}): ph must be 'X' or 'i', "
                      f"got {ph!r}")
        return
    ts = ev.get("ts")
    if not isinstance(ts, numbers.Real) or ts < 0:
        errors.append(f"{where} ({name}): ts must be a number >= 0")
    for key in ("pid", "tid"):
        v = ev.get(key)
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            errors.append(f"{where} ({name}): {key} must be an "
                          f"integer >= 0")
            return
    if ev["pid"] not in KNOWN_TRACKS:
        errors.append(f"{where} ({name}): pid {ev['pid']} is not a "
                      f"known track {KNOWN_TRACKS}")
    if ph == "X":
        dur = ev.get("dur")
        if not isinstance(dur, numbers.Real) or dur < 0:
            errors.append(f"{where} ({name}): complete span needs "
                          f"numeric dur >= 0")
    else:
        if "dur" in ev:
            errors.append(f"{where} ({name}): instant must not "
                          f"carry dur")
        if ev.get("s") not in ("t", "p", "g"):
            errors.append(f"{where} ({name}): instant scope 's' "
                          f"must be 't', 'p', or 'g'")


def validate(path: str, min_events: int = 1) -> list:
    """Validate one trace file; returns error messages (empty = OK)."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: {exc}"]

    if not isinstance(doc, dict):
        return ["top level must be an object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing 'traceEvents' list"]
    errors = []
    if "displayTimeUnit" in doc and \
            doc["displayTimeUnit"] not in ("ms", "ns"):
        errors.append(f"displayTimeUnit must be 'ms' or 'ns', got "
                      f"{doc['displayTimeUnit']!r}")
    if len(events) < min_events:
        errors.append(f"only {len(events)} events, expected at "
                      f"least {min_events}")
    for i, ev in enumerate(events):
        check_event(i, ev, errors)
    return errors


def summarize(path: str) -> str:
    with open(path, encoding="utf-8") as f:
        events = json.load(f)["traceEvents"]
    spans = sum(1 for ev in events if ev["ph"] == "X")
    instants = len(events) - spans
    tracks = len({ev["pid"] for ev in events})
    return (f"{spans} spans, {instants} instants across "
            f"{tracks} track(s)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="chrome://tracing JSON file")
    parser.add_argument("--min-events", type=int, default=1,
                        help="fail when fewer events are present "
                             "(default: 1)")
    args = parser.parse_args()

    errors = validate(args.trace, args.min_events)
    if errors:
        for msg in errors:
            print(f"check_trace: {msg}", file=sys.stderr)
        return 1
    print(f"check_trace: {args.trace} OK — {summarize(args.trace)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
