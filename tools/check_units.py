#!/usr/bin/env python3
"""Enforce the typed-quantity convention in public interfaces.

A function parameter declared as a raw ``double`` whose name carries a
unit suffix (``weightG``, ``capacityMah``, ``total_power_w``, ...) is a
value the type system should be checking: it must be a
``Quantity<Unit>`` instead.  This linter scans the headers under
``src/`` and fails on any such parameter outside the allowlist.

The allowlist is intentionally tiny (the build treats >10 entries as a
policy failure): the raw-double simulation/estimation layers keep
untyped numerics by design and are bridged with explicit ``Quantity``
wraps at their call sites.

Struct *fields* are not checked: catalog record structs store raw
published table data and expose typed accessors (see
DESIGN.md, "Static guarantees").

Usage: check_units.py [repo_root]
"""

import pathlib
import re
import sys

# Directory prefixes (relative to the repo root) whose headers may
# keep raw-double unit-suffixed parameters.  Keep this list short —
# every entry is a hole in the compile-time unit checking.
ALLOWLIST = (
    "src/control/",   # cascaded-controller internals: raw SI doubles
    "src/sim/",       # rigid-body state: raw SI doubles
    "src/slam/",      # vision pipeline: pixels and raw SI doubles
    "src/uarch/",     # microarchitecture model: cycles, not SI units
    "src/platform/",  # Table 5 record structs and their plumbing
)
MAX_ALLOWLIST_ENTRIES = 10

# Directory prefixes that must ALWAYS be scanned: adding one of these
# to the allowlist is a policy failure, not a config change.  The
# batch engine is listed explicitly because its internals (thread
# pool, cache shards) are legitimately raw-double/raw-integer code —
# the typed `Quantity` contract applies to its *headers* (the API
# boundary), which is exactly what this linter checks.
REQUIRED_SCANNED = (
    "src/components/",
    "src/physics/",
    "src/power/",
    "src/dse/",
    "src/engine/",
    "src/core/",
    "src/obs/",
    "src/fault/",
    "src/serve/",
)

# A parameter name "ends in a unit" when it has one of these suffixes
# after a lowercase letter or digit (camelCase: weightG, maxCurrentA)
# or with a snake separator (total_power_w, thrust_n).
UNIT_SUFFIXES = (
    "g", "kg", "mm", "m", "in", "gf", "n",
    "w", "wh", "mwh", "mah", "a", "v", "kv",
    "s", "min", "h", "hz", "rpm",
)

PARAM_RE = re.compile(r"\bdouble\s+[&*]?\s*([A-Za-z_]\w*)")

# Identifiers that merely *look* unit-suffixed: dimensionless or
# non-physical names the suffix heuristic would otherwise flag.
NAME_EXCEPTIONS = frozenset({
    "dim",     # matrix dimension
    "origin",  # coordinate origin
    "gain",    # controller gain (dimensionless)
})


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        if text.startswith("//", i):
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif text.startswith("/*", i):
            j = text.find("*/", i)
            j = n if j < 0 else j + 2
            out.append("".join(c if c == "\n" else " "
                               for c in text[i:j]))
            i = j
        elif text[i] in "\"'":
            quote = text[i]
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                out.append(" " if text[i] != "\n" else "\n")
                i += 2 if text[i] == "\\" else 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def has_unit_suffix(name: str) -> bool:
    if name.lower() in NAME_EXCEPTIONS:
        return False
    lower = name.lower()
    for suffix in UNIT_SUFFIXES:
        if lower.endswith("_" + suffix):
            return True
        # camelCase boundary: ...tG, ...tMah — the suffix must be
        # capitalized in the original and preceded by a lowercase
        # letter or digit.
        if (len(name) > len(suffix)
                and name.endswith(suffix.capitalize())
                and (name[-len(suffix) - 1].islower()
                     or name[-len(suffix) - 1].isdigit())):
            return True
    return False


def paren_segments(text: str):
    """Yield (line_number, text) for characters inside parentheses."""
    depth = 0
    line = 1
    buf = []
    buf_line = 1
    for ch in text:
        if ch == "\n":
            line += 1
        if ch == "(":
            if depth == 0:
                buf = []
                buf_line = line
            else:
                buf.append(ch)
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0 and buf:
                yield buf_line, "".join(buf)
            elif depth > 0:
                buf.append(ch)
            depth = max(depth, 0)
        elif depth > 0:
            buf.append(ch)


def check_header(path: pathlib.Path, rel: str):
    violations = []
    text = strip_comments(path.read_text())
    for line, segment in paren_segments(text):
        for match in PARAM_RE.finditer(segment):
            name = match.group(1)
            if has_unit_suffix(name):
                violations.append(
                    f"{rel}:{line}: raw `double {name}` parameter "
                    f"carries a unit suffix — use Quantity<...> "
                    f"(see src/util/quantity.hh)")
    return violations


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    if len(ALLOWLIST) > MAX_ALLOWLIST_ENTRIES:
        print(f"check_units: allowlist has {len(ALLOWLIST)} entries, "
              f"max {MAX_ALLOWLIST_ENTRIES} — shrink it, do not grow "
              f"it", file=sys.stderr)
        return 1
    for prefix in REQUIRED_SCANNED:
        if any(prefix.startswith(allowed) for allowed in ALLOWLIST):
            print(f"check_units: {prefix} is a typed-API module and "
                  f"must stay scanned — remove it from the allowlist",
                  file=sys.stderr)
            return 1

    violations = []
    scanned = 0
    for path in sorted((root / "src").rglob("*.hh")):
        rel = path.relative_to(root).as_posix()
        if any(rel.startswith(prefix) for prefix in ALLOWLIST):
            continue
        scanned += 1
        violations.extend(check_header(path, rel))

    if violations:
        print("\n".join(violations), file=sys.stderr)
        print(f"\ncheck_units: {len(violations)} violation(s) in "
              f"{scanned} scanned headers", file=sys.stderr)
        return 1
    print(f"check_units: OK ({scanned} headers scanned, "
          f"{len(ALLOWLIST)} allowlisted prefixes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
