#!/usr/bin/env python3
"""Enforce the typed-quantity convention in public interfaces.

A function parameter declared as a raw ``double`` whose name carries a
unit suffix (``weightG``, ``capacityMah``, ``total_power_w``, ...) is a
value the type system should be checking: it must be a
``Quantity<Unit>`` instead.  This linter scans the headers under
``src/`` and fails on any such parameter outside the allowlist.

The allowlist is intentionally tiny (the build treats >10 entries as a
policy failure): the raw-double simulation/estimation layers keep
untyped numerics by design and are bridged with explicit ``Quantity``
wraps at their call sites.

Every directory under ``src/`` is discovered and scanned
automatically — there is no hand-maintained "must scan" list, so a new
subsystem is covered the moment it appears.  An allowlist entry that
no longer names a real directory is itself a failure (stale holes do
not linger).

Struct *fields* are not checked: catalog record structs store raw
published table data and expose typed accessors (see
DESIGN.md, "Static guarantees").

Usage: check_units.py [repo_root]

Also importable: ``run(root, strict=True)`` returns the list of
violation messages (``tools/analyze.py`` uses this as its `units`
pass).
"""

import pathlib
import re
import sys

# Directory prefixes (relative to the repo root) whose headers may
# keep raw-double unit-suffixed parameters.  Keep this list short —
# every entry is a hole in the compile-time unit checking.
ALLOWLIST = (
    "src/control/",   # cascaded-controller internals: raw SI doubles
    "src/sim/",       # rigid-body state: raw SI doubles
    "src/slam/",      # vision pipeline: pixels and raw SI doubles
    "src/uarch/",     # microarchitecture model: cycles, not SI units
)
MAX_ALLOWLIST_ENTRIES = 10

# A parameter name "ends in a unit" when it has one of these suffixes
# after a lowercase letter or digit (camelCase: weightG, maxCurrentA)
# or with a snake separator (total_power_w, thrust_n).
UNIT_SUFFIXES = (
    "g", "kg", "mm", "m", "in", "gf", "n",
    "w", "wh", "mwh", "mah", "a", "v", "kv",
    "s", "min", "h", "hz", "rpm",
)

PARAM_RE = re.compile(r"\bdouble\s+[&*]?\s*([A-Za-z_]\w*)")

# Identifiers that merely *look* unit-suffixed: dimensionless or
# non-physical names the suffix heuristic would otherwise flag.
NAME_EXCEPTIONS = frozenset({
    "dim",     # matrix dimension
    "origin",  # coordinate origin
    "gain",    # controller gain (dimensionless)
})


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        if text.startswith("//", i):
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif text.startswith("/*", i):
            j = text.find("*/", i)
            j = n if j < 0 else j + 2
            out.append("".join(c if c == "\n" else " "
                               for c in text[i:j]))
            i = j
        elif text[i] in "\"'":
            quote = text[i]
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                out.append(" " if text[i] != "\n" else "\n")
                i += 2 if text[i] == "\\" else 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def has_unit_suffix(name: str) -> bool:
    if name.lower() in NAME_EXCEPTIONS:
        return False
    lower = name.lower()
    for suffix in UNIT_SUFFIXES:
        if lower.endswith("_" + suffix):
            return True
        # camelCase boundary: ...tG, ...tMah — the suffix must be
        # capitalized in the original and preceded by a lowercase
        # letter or digit.
        if (len(name) > len(suffix)
                and name.endswith(suffix.capitalize())
                and (name[-len(suffix) - 1].islower()
                     or name[-len(suffix) - 1].isdigit())):
            return True
    return False


def paren_segments(text: str):
    """Yield (line_number, text) for characters inside parentheses."""
    depth = 0
    line = 1
    buf = []
    buf_line = 1
    for ch in text:
        if ch == "\n":
            line += 1
        if ch == "(":
            if depth == 0:
                buf = []
                buf_line = line
            else:
                buf.append(ch)
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0 and buf:
                yield buf_line, "".join(buf)
            elif depth > 0:
                buf.append(ch)
            depth = max(depth, 0)
        elif depth > 0:
            buf.append(ch)


def check_header(path: pathlib.Path, rel: str):
    violations = []
    text = strip_comments(path.read_text())
    for line, segment in paren_segments(text):
        for match in PARAM_RE.finditer(segment):
            name = match.group(1)
            if has_unit_suffix(name):
                violations.append(
                    f"{rel}:{line}: raw `double {name}` parameter "
                    f"carries a unit suffix — use Quantity<...> "
                    f"(see src/util/quantity.hh)")
    return violations


def discovered_dirs(root: pathlib.Path):
    """Top-level directories under src/, sorted by name."""
    src = root / "src"
    if not src.is_dir():
        return []
    return sorted(d.name for d in src.iterdir() if d.is_dir())


def run(root: pathlib.Path, strict: bool = True):
    """Run the check; returns (violations, scanned_header_count).

    `strict` additionally enforces the allowlist policy: a bounded
    entry count and no stale entries (prefixes that are not real
    directories).  Fixture mini-trees pass strict=False because they
    do not mirror the allowlisted directories.
    """
    violations = []
    if len(ALLOWLIST) > MAX_ALLOWLIST_ENTRIES:
        violations.append(
            f"check_units: allowlist has {len(ALLOWLIST)} entries, "
            f"max {MAX_ALLOWLIST_ENTRIES} — shrink it, do not grow "
            f"it")
        return violations, 0
    if strict:
        for prefix in ALLOWLIST:
            if not (root / prefix).is_dir():
                violations.append(
                    f"check_units: stale allowlist entry '{prefix}' "
                    f"— no such directory; remove it")
        if violations:
            return violations, 0

    scanned = 0
    for path in sorted((root / "src").rglob("*.hh")):
        rel = path.relative_to(root).as_posix()
        if any(rel.startswith(prefix) for prefix in ALLOWLIST):
            continue
        scanned += 1
        violations.extend(check_header(path, rel))
    return violations, scanned


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    violations, scanned = run(root)
    if violations:
        print("\n".join(violations), file=sys.stderr)
        print(f"\ncheck_units: {len(violations)} violation(s) in "
              f"{scanned} scanned headers", file=sys.stderr)
        return 1
    dirs = discovered_dirs(root)
    covered = [d for d in dirs
               if f"src/{d}/" not in ALLOWLIST]
    print(f"check_units: OK ({scanned} headers scanned across "
          f"{len(covered)} of {len(dirs)} discovered src/ dirs, "
          f"{len(ALLOWLIST)} allowlisted prefixes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
