#!/usr/bin/env python3
"""Unified static-analysis driver for the dronedse tree.

One entry point, several passes; each pass prints `analyze[<pass>]:
OK` or a list of violations, and the driver exits non-zero when any
pass fails.  CI and `ctest` both go through this script, so the
passes cannot drift apart from each other.

Passes
------
units        typed-quantity convention in public headers
             (tools/check_units.py as a library)
locks        concurrency hygiene in the annotated subsystems:
             no raw std::mutex / lock_guard / unique_lock /
             condition_variable — everything goes through the
             annotated util::Mutex wrappers (thread_annotations.hh)
             — and every util::Mutex declaration must be referenced
             by at least one DDSE_* thread-safety annotation in the
             same file (an unreferenced mutex guards nothing the
             compiler can see)
determinism  bans nondeterminism sources in the deterministic
             subtrees (engine/fault/dse/serve): rand/srand,
             std::random_device, time(), system_clock, unseeded
             mt19937, and range-for accumulation over unordered
             containers (iteration order is unspecified)
layering     include-layer DAG: the fenced ``layers`` block in
             DESIGN.md §13 declares one layer per line, lowest
             first; a cross-directory include may only target a
             strictly lower layer
trace        chrome://tracing JSON schema (tools/check_trace.py as a
             library); only runs when --trace-file is given

A line may opt out of the determinism pass with an inline marker::

    foo();  // analyze:allow(determinism) — justification

Usage::

    analyze.py [--root DIR] [--passes a,b,...] [--fixture]
               [--trace-file F --min-events N]

``--fixture`` relaxes repo-shape policy checks (allowlist staleness)
so the known-bad mini-trees under tests/lint/fixtures/ can be
analyzed in isolation.
"""

import argparse
import pathlib
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import check_trace  # noqa: E402
import check_units  # noqa: E402

# Subsystems whose locking must go through util::Mutex (the
# thread-safety-annotated wrapper).  Directories are scanned
# recursively; single files are scanned alone.
ANNOTATED_PATHS = (
    "src/engine",
    "src/serve",
    "src/obs",
    "src/util/logging.cc",
)

RAW_SYNC_RE = re.compile(
    r"std::(?:recursive_|timed_|shared_)?mutex\b"
    r"|std::lock_guard\b"
    r"|std::unique_lock\b"
    r"|std::scoped_lock\b"
    r"|std::shared_lock\b"
    r"|std::condition_variable(?:_any)?\b")

MUTEX_DECL_RE = re.compile(r"\butil::Mutex\s+(\w+)\s*;")
ANNOTATION_ARG_RE = re.compile(r"DDSE_[A-Z_]+\(([^)]*)\)")

# Deterministic subtrees: a sweep/fault/serve run must be a pure
# function of its inputs (DESIGN.md §13).
DETERMINISTIC_PATHS = (
    "src/engine",
    "src/fault",
    "src/dse",
    "src/serve",
    "src/codesign",
    "src/fleet",
    "src/explore",
)

ALLOW_MARKER_RE = re.compile(r"analyze:allow\((\w+)\)")

DETERMINISM_BANNED = (
    (re.compile(r"(?<![.\w])(?:std::)?random_device\b"),
     "std::random_device is nondeterministic"),
    (re.compile(r"(?<![.\w])s?rand\s*\("),
     "rand()/srand() — use a seeded std::mt19937"),
    (re.compile(r"(?<![.\w])time\s*\("),
     "time() reads the wall clock"),
    (re.compile(r"\bsystem_clock\b"),
     "system_clock reads the wall clock (steady_clock is the "
     "monotonic alternative)"),
    (re.compile(r"\bmt19937(?:_64)?\s+\w+\s*(?:;|\{\s*\}|\(\s*\))"),
     "unseeded mt19937 — pass an explicit seed"),
)


def iter_sources(root, paths, suffixes=(".hh", ".cc")):
    for entry in paths:
        p = root / entry
        if p.is_file():
            yield p
        elif p.is_dir():
            for child in sorted(p.rglob("*")):
                if child.suffix in suffixes:
                    yield child


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def allow_lines(text, pass_name):
    """Line numbers carrying an analyze:allow(<pass>) marker."""
    allowed = set()
    for i, line in enumerate(text.splitlines(), 1):
        m = ALLOW_MARKER_RE.search(line)
        if m and m.group(1) == pass_name:
            allowed.add(i)
            allowed.add(i + 1)  # marker on its own line covers next
    return allowed


def pass_units(root, fixture):
    violations, _ = check_units.run(root, strict=not fixture)
    return violations


def pass_locks(root, fixture):
    del fixture
    violations = []
    for path in iter_sources(root, ANNOTATED_PATHS):
        rel = path.relative_to(root).as_posix()
        raw = path.read_text()
        text = check_units.strip_comments(raw)
        for m in RAW_SYNC_RE.finditer(text):
            violations.append(
                f"{rel}:{line_of(text, m.start())}: raw "
                f"{m.group(0)} in an annotated subsystem — use "
                f"util::Mutex / util::MutexLock / util::CondVar "
                f"(src/util/thread_annotations.hh)")
        referenced = set()
        for m in ANNOTATION_ARG_RE.finditer(text):
            referenced.update(re.findall(r"\w+", m.group(1)))
        for m in MUTEX_DECL_RE.finditer(text):
            name = m.group(1)
            if name not in referenced:
                violations.append(
                    f"{rel}:{line_of(text, m.start())}: util::Mutex "
                    f"`{name}` is not referenced by any DDSE_* "
                    f"annotation in this file — add GUARDED_BY / "
                    f"REQUIRES / EXCLUDES so the analysis can see "
                    f"what it guards")
    return violations


def unordered_names(text):
    """Identifiers declared as unordered_map/unordered_set."""
    names = set()
    for m in re.finditer(r"\bunordered_(?:map|set)\s*<", text):
        depth = 1
        i = m.end()
        while i < len(text) and depth > 0:
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
            i += 1
        decl = re.match(r"\s*&?\s*(\w+)", text[i:])
        if decl:
            names.add(decl.group(1))
    return names


def pass_determinism(root, fixture):
    del fixture
    violations = []
    for path in iter_sources(root, DETERMINISTIC_PATHS):
        rel = path.relative_to(root).as_posix()
        raw = path.read_text()
        allowed = allow_lines(raw, "determinism")
        text = check_units.strip_comments(raw)
        for regex, why in DETERMINISM_BANNED:
            for m in regex.finditer(text):
                line = line_of(text, m.start())
                if line in allowed:
                    continue
                violations.append(
                    f"{rel}:{line}: {m.group(0).strip()} — {why}")
        names = unordered_names(text)
        for m in re.finditer(
                r"for\s*\([^;{()]*:\s*(?:this->)?(\w+)\s*\)", text):
            if m.group(1) in names:
                line = line_of(text, m.start())
                if line in allowed:
                    continue
                violations.append(
                    f"{rel}:{line}: range-for over unordered "
                    f"container `{m.group(1)}` — iteration order is "
                    f"unspecified; sort keys first or use an "
                    f"ordered container")
    return violations


def parse_layers(design_path):
    """The fenced ``layers`` block: one layer per line, lowest
    first; returns {dir: layer_index} or (None, error)."""
    if not design_path.is_file():
        return None, f"{design_path}: not found"
    text = design_path.read_text()
    m = re.search(r"```layers\n(.*?)```", text, re.S)
    if not m:
        return None, (f"{design_path.name}: no fenced ```layers "
                      f"block — declare the include-layer DAG "
                      f"(DESIGN.md §13)")
    layers = {}
    for i, line in enumerate(m.group(1).strip().splitlines()):
        for name in line.split():
            if name in layers:
                return None, (f"{design_path.name}: layer dir "
                              f"'{name}' listed twice")
            layers[name] = i
    return layers, None


INCLUDE_RE = re.compile(r'#include\s+"([^"]+)"')


def strip_comments_keep_strings(text: str) -> str:
    """Blank // and /* */ comments but keep string contents (the
    layering pass reads include paths, which live in strings —
    check_units.strip_comments blanks those too)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        if text.startswith("//", i):
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif text.startswith("/*", i):
            j = text.find("*/", i)
            j = n if j < 0 else j + 2
            out.append("".join(c if c == "\n" else " "
                               for c in text[i:j]))
            i = j
        elif text[i] in "\"'":
            quote = text[i]
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append(text[i:i + 2])
                    i += 2
                else:
                    out.append(text[i])
                    i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def pass_layering(root, fixture):
    del fixture
    layers, err = parse_layers(root / "DESIGN.md")
    if err:
        return [err]
    violations = []
    src = root / "src"
    for d in sorted(p.name for p in src.iterdir() if p.is_dir()):
        if d not in layers:
            violations.append(
                f"src/{d}/ is not assigned to a layer in the "
                f"DESIGN.md ```layers block")
    if violations:
        return violations
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".hh", ".cc"):
            continue
        rel = path.relative_to(root).as_posix()
        here = path.relative_to(src).parts[0]
        text = strip_comments_keep_strings(path.read_text())
        for m in INCLUDE_RE.finditer(text):
            top = m.group(1).split("/")[0]
            if top == here or top not in layers:
                continue
            if layers[top] >= layers[here]:
                violations.append(
                    f"{rel}:{line_of(text, m.start())}: includes "
                    f"\"{m.group(1)}\" — src/{top}/ (layer "
                    f"{layers[top]}) is not below src/{here}/ "
                    f"(layer {layers[here]}); back-edges are "
                    f"banned (DESIGN.md §13)")
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repo root (default: .)")
    parser.add_argument("--passes",
                        default="units,locks,determinism,layering",
                        help="comma-separated pass list")
    parser.add_argument("--fixture", action="store_true",
                        help="relax repo-shape policy checks for "
                             "fixture mini-trees")
    parser.add_argument("--trace-file",
                        help="chrome://tracing JSON for the trace "
                             "pass (adds the pass when given)")
    parser.add_argument("--min-events", type=int, default=1,
                        help="trace pass: minimum event count")
    args = parser.parse_args()

    root = pathlib.Path(args.root).resolve()
    passes = {
        "units": pass_units,
        "locks": pass_locks,
        "determinism": pass_determinism,
        "layering": pass_layering,
    }
    requested = [p.strip() for p in args.passes.split(",")
                 if p.strip()]
    if args.trace_file and "trace" not in requested:
        requested.append("trace")

    failed = 0
    for name in requested:
        if name == "trace":
            if not args.trace_file:
                print("analyze[trace]: SKIP (no --trace-file)")
                continue
            violations = check_trace.validate(args.trace_file,
                                              args.min_events)
        elif name in passes:
            violations = passes[name](root, args.fixture)
        else:
            print(f"analyze: unknown pass '{name}'",
                  file=sys.stderr)
            return 2
        if violations:
            failed += 1
            for v in violations:
                print(f"analyze[{name}]: {v}", file=sys.stderr)
            print(f"analyze[{name}]: FAIL "
                  f"({len(violations)} violation(s))",
                  file=sys.stderr)
        else:
            print(f"analyze[{name}]: OK")

    if failed:
        print(f"analyze: {failed} pass(es) failed", file=sys.stderr)
        return 1
    print(f"analyze: all {len(requested)} pass(es) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
