/**
 * @file
 * SLAM offload study: run the pipeline on a synthetic sequence,
 * time it on every Table 5 platform, convert the power deltas into
 * flight time with the DSE model, and pick a platform — the
 * decision procedure of the paper's Section 5.
 *
 * Usage: slam_offload_study [--trace PATH] [--metrics PATH]
 *   --trace PATH   SLAM-phase spans as chrome://tracing JSON (the
 *                  Figure 17 phase breakdown, read off the trace)
 *   --metrics PATH obs metrics-registry snapshot as JSON
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "dse/footprint.hh"
#include "dse/weight_closure.hh"
#include "obs/metrics.hh"
#include "obs/tracer.hh"
#include "platform/exec_model.hh"
#include "platform/offload.hh"
#include "slam/pipeline.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace dronedse;
using namespace dronedse::unit_literals;

int
main(int argc, char **argv)
{
    std::string trace_path, metrics_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--metrics") == 0 &&
                   i + 1 < argc) {
            metrics_path = argv[++i];
        } else {
            fatal(std::string("slam_offload_study: unknown argument "
                              "'") +
                  argv[i] + "' (usage: slam_offload_study "
                            "[--trace PATH] [--metrics PATH])");
        }
    }
    if (!trace_path.empty())
        obs::tracer().setEnabled(true);

    std::printf("=== SLAM offload study ===\n\n");

    // 1. Run the actual pipeline on one sequence and measure work.
    const SequenceSpec &spec = findSequence("V101");
    std::printf("running ORB-style SLAM on %s (%d frames)...\n",
                spec.name.c_str(), spec.frames);
    const SequenceStats stats = SlamPipeline::runSequence(spec);
    std::printf("  tracked %d/%d frames, %d keyframes, %d map "
                "points, ATE %.2f m\n\n",
                stats.trackedFrames, stats.frames, stats.keyframes,
                stats.mapPoints, stats.ateRmseM);

    // 2. Time that work on every platform.
    Table t({"platform", "total (s)", "fps", "speedup", "power (W)",
             "meets 20 fps camera?"});
    const PlatformTimes rpi = timeOnPlatform(stats.work,
                                             PlatformKind::RPi);
    for (const auto &spec_p : allPlatforms()) {
        const PlatformTimes pt = timeOnPlatform(stats.work,
                                                spec_p.kind);
        const double fps = stats.frames / pt.totalSeconds;
        t.addRow({spec_p.name, fmt(pt.totalSeconds, 2),
                  fmt(fps, 0),
                  fmt(rpi.totalSeconds / pt.totalSeconds, 2) + "x",
                  fmt(spec_p.powerOverheadW.value(), 3),
                  fps >= 20.0 ? "yes" : "no"});
    }
    t.print();

    // 3. Convert the power deltas into flight time on a concrete
    // drone design (450 mm, TX2-class CPU/GPU today).
    std::printf("\nflight-time impact on a 450 mm drone (DSE "
                "closure, weight feedback included):\n");
    DesignInputs in;
    in.wheelbaseMm = 450.0_mm;
    in.cells = 3;
    in.capacityMah = 5000.0_mah;
    in.compute = {"CPU/GPU (TX2-class)", BoardClass::Improved, 85.0,
                  10.0};
    const DesignResult base = solveDesign(in);
    std::printf("  baseline: %.1f min at %.0f W\n",
                base.flightTimeMin.value(), base.avgPowerW.value());
    for (const auto &spec_p : allPlatforms()) {
        if (spec_p.kind == PlatformKind::TX2)
            continue;
        const Quantity<Minutes> gain = platformSwapGainMin(
            in, spec_p.powerOverheadW - Quantity<Watts>(10.0),
            spec_p.weightOverheadG - Quantity<Grams>(85.0));
        std::printf("  offload to %-4s : %+5.2f min\n",
                    spec_p.name.c_str(), gain.value());
    }

    // 4. The recommendation, per the paper's Table 5 logic.
    const Figure17Data fig17 = runFigure17(80);
    const auto table = assessOffload(fig17.geomeanSpeedup);
    std::printf("\nrecommended platform: %s\n",
                recommendPlatform(table, true).spec.name.c_str());
    std::printf("(paper: FPGA — the ASIC's extra seconds cannot "
                "justify fabrication cost,\nand the TX2 costs "
                "flight time outright)\n");

    if (!trace_path.empty()) {
        obs::tracer().writeChromeJson(trace_path);
        std::printf("\nwrote trace to %s (open in chrome://tracing)"
                    "\n",
                    trace_path.c_str());
    }
    if (!metrics_path.empty()) {
        obs::metrics().writeJson(metrics_path);
        std::printf("wrote metrics snapshot to %s\n",
                    metrics_path.c_str());
    }
    return 0;
}
