/**
 * @file
 * Shared command-line parsing for the example binaries.
 *
 * Every example speaks the same core dialect — `--seed N`,
 * `--jobs N`, `--csv PATH` — plus its own study-specific flags.
 * Before this helper each binary hand-rolled the strcmp ladder and
 * they drifted (different missing-value behavior, different error
 * spellings).  The cursor below owns the walk, the value plumbing,
 * and the uniform `fatal()` message; each binary keeps only its own
 * flag list:
 *
 *   ExampleArgs args(argc, argv, "fleet_study",
 *                    "[--jobs N] [--seed N] [--csv PATH]");
 *   while (args.next()) {
 *       if (args.intArg("--jobs", opts.jobs, 1)) continue;
 *       if (args.u64Arg("--seed", opts.seed)) continue;
 *       if (args.stringArg("--csv", opts.csvPath)) continue;
 *       if (args.flag("--list")) { opts.list = true; continue; }
 *       args.unknown();
 *   }
 *
 * Header-only on purpose: examples link only the libraries their
 * study needs, and a parsing helper is not worth a library.
 */

#ifndef DRONEDSE_EXAMPLES_EXAMPLE_ARGS_HH
#define DRONEDSE_EXAMPLES_EXAMPLE_ARGS_HH

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/logging.hh"

namespace dronedse::examples {

class ExampleArgs
{
  public:
    ExampleArgs(int argc, char **argv, std::string program,
                std::string usage)
        : argc_(argc), argv_(argv), program_(std::move(program)),
          usage_(std::move(usage))
    {
    }

    /** Advance to the next argument; false when exhausted. */
    bool next()
    {
        ++index_;
        return index_ < argc_;
    }

    /** True when the current argument is exactly `name`. */
    bool flag(const char *name) const
    {
        return std::strcmp(argv_[index_], name) == 0;
    }

    /** `--name VALUE`: fills `out`, consumes the value. */
    bool stringArg(const char *name, std::string &out)
    {
        if (!flag(name))
            return false;
        out = takeValue(name);
        return true;
    }

    /** `--name N` with N an integer >= `min`. */
    bool intArg(const char *name, int &out, int min)
    {
        if (!flag(name))
            return false;
        const std::string value = takeValue(name);
        char *end = nullptr;
        const long parsed = std::strtol(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0' || parsed < min)
            fatal(program_ + ": " + name +
                  " expects an integer >= " + std::to_string(min));
        out = static_cast<int>(parsed);
        return true;
    }

    /** `--name N` with N a non-negative integer (seeds, budgets). */
    bool u64Arg(const char *name, std::uint64_t &out)
    {
        if (!flag(name))
            return false;
        const std::string value = takeValue(name);
        char *end = nullptr;
        const unsigned long long parsed =
            std::strtoull(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0' ||
            value.front() == '-')
            fatal(program_ + ": " + name +
                  " expects a non-negative integer");
        out = parsed;
        return true;
    }

    /** `--name X` with X a finite double. */
    bool doubleArg(const char *name, double &out)
    {
        if (!flag(name))
            return false;
        const std::string value = takeValue(name);
        char *end = nullptr;
        const double parsed = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0')
            fatal(program_ + ": " + name + " expects a number");
        out = parsed;
        return true;
    }

    /** The current argument matched nothing: fail with usage. */
    [[noreturn]] void unknown() const
    {
        fatal(program_ + ": unknown argument '" + argv_[index_] +
              "' (usage: " + program_ + " " + usage_ + ")");
    }

  private:
    std::string takeValue(const char *name)
    {
        if (index_ + 1 >= argc_)
            fatal(program_ + ": " + name + " expects a value");
        ++index_;
        return argv_[index_];
    }

    int argc_;
    char **argv_;
    std::string program_;
    std::string usage_;
    int index_ = 0;
};

} // namespace dronedse::examples

#endif // DRONEDSE_EXAMPLES_EXAMPLE_ARGS_HH
