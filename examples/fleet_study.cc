/**
 * @file
 * Fleet-scale risk study: fly drone populations through composed
 * fault scenarios and environment axes, and report survival rates
 * and flight-time / energy ECDFs per scenario (DESIGN.md §16).
 *
 * Usage: fleet_study [--mission NAME] [--drones N] [--jobs N]
 *                    [--seed S] [--no-policy] [--catalog]
 *                    [--scenario NAME] [--winds CSV]
 *                    [--payloads CSV] [--ages CSV]
 *                    [--summary-csv PATH] [--ecdf-csv PATH]
 *                    [--list]
 *   --mission NAME     mission from the catalog (default survey)
 *   --drones N         drones per scenario (default 256)
 *   --jobs N           worker threads (0 = all cores, default 1)
 *   --seed S           fleet seed (default 17)
 *   --no-policy        disable the degradation policy ladder
 *   --catalog          fly the full composed catalog (11 singles +
 *                      every cleanly-composing ordered pair)
 *   --scenario NAME    fly one fault-catalog scenario instead
 *   --winds CSV        wind axis values, m/s (e.g. 0,4,8)
 *   --payloads CSV     payload axis values, g (e.g. 0,250,500)
 *   --ages CSV         battery-age axis values in (0,1]
 *   --summary-csv PATH write the per-scenario summary CSV
 *   --ecdf-csv PATH    write the full ECDF CSV
 *   --list             print missions and scenarios, then exit
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "example_args.hh"
#include "fault/fault.hh"
#include "fleet/fleet.hh"
#include "util/logging.hh"

using namespace dronedse;
using namespace dronedse::fleet;

namespace {

std::vector<double>
parseAxis(const char *arg, const char *name)
{
    std::vector<double> out;
    std::string s(arg);
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        const std::string tok = s.substr(pos, comma - pos);
        if (tok.empty())
            fatal(std::string("fleet_study: empty value in --") +
                  name);
        out.push_back(std::atof(tok.c_str()));
        pos = comma + 1;
    }
    if (out.empty())
        fatal(std::string("fleet_study: --") + name +
              " needs at least one value");
    return out;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream f(path);
    if (!f)
        fatal("fleet_study: cannot open '" + path + "' for writing");
    f << content;
}

} // namespace

int
main(int argc, char **argv)
{
    FleetSpec spec;
    spec.mission = findMission("survey");
    int jobs = 1;
    bool use_catalog = false;
    std::string scenario_name, summary_path, ecdf_path;
    std::vector<double> winds, payloads, ages;

    examples::ExampleArgs args(argc, argv, "fleet_study",
                               "[--mission NAME] [--drones N] "
                               "[--jobs N] [--seed N] [--no-policy] "
                               "[--catalog] [--scenario NAME] "
                               "[--winds A,B] [--payloads A,B] "
                               "[--ages A,B] [--summary-csv PATH] "
                               "[--ecdf-csv PATH] [--list]");
    while (args.next()) {
        std::string value;
        if (args.stringArg("--mission", value)) {
            spec.mission = findMission(value);
            continue;
        }
        if (args.stringArg("--drones", value)) {
            spec.dronesPerScenario =
                static_cast<std::size_t>(std::atoll(value.c_str()));
            continue;
        }
        if (args.intArg("--jobs", jobs, 1))
            continue;
        if (args.u64Arg("--seed", spec.fleetSeed))
            continue;
        if (args.flag("--no-policy")) {
            spec.policyEnabled = false;
            continue;
        }
        if (args.flag("--catalog")) {
            use_catalog = true;
            continue;
        }
        if (args.stringArg("--scenario", scenario_name))
            continue;
        if (args.stringArg("--winds", value)) {
            winds = parseAxis(value.c_str(), "winds");
            continue;
        }
        if (args.stringArg("--payloads", value)) {
            payloads = parseAxis(value.c_str(), "payloads");
            continue;
        }
        if (args.stringArg("--ages", value)) {
            ages = parseAxis(value.c_str(), "ages");
            continue;
        }
        if (args.stringArg("--summary-csv", summary_path))
            continue;
        if (args.stringArg("--ecdf-csv", ecdf_path))
            continue;
        if (args.flag("--list")) {
            std::printf("missions:\n");
            for (const auto &m : missionCatalog())
                std::printf("  %-14s %s\n", m.name.c_str(),
                            m.description.c_str());
            std::printf("fault scenarios:\n");
            for (const auto &sc : fault::scenarioCatalog())
                std::printf("  %-24s %s\n", sc.name.c_str(),
                            sc.description.c_str());
            return 0;
        }
        args.unknown();
    }

    if (use_catalog && !scenario_name.empty())
        fatal("fleet_study: --catalog and --scenario are exclusive");

    if (use_catalog) {
        ComposedCatalog catalog = composedCatalog();
        std::printf("composed catalog: %zu scenarios (%zu pairs "
                    "rejected by the subsystem-overlap rule)\n",
                    catalog.scenarios.size(), catalog.rejectedPairs);
        spec.scenarios = std::move(catalog.scenarios);
    } else if (!scenario_name.empty()) {
        spec.scenarios =
            wrapScenarios({fault::findScenario(scenario_name)});
    } else {
        spec.scenarios = wrapScenarios(fault::scenarioCatalog());
    }

    if (!winds.empty() || !payloads.empty() || !ages.empty()) {
        const EnvAxes nominal;
        if (winds.empty())
            winds = {nominal.windMps};
        if (payloads.empty())
            payloads = {nominal.payloadG};
        if (ages.empty())
            ages = {nominal.batteryAge};
        spec.scenarios =
            crossWithAxes(spec.scenarios, winds, payloads, ages);
    }

    std::printf("=== Fleet: mission '%s', %zu scenario%s x %zu "
                "drones, policy %s, seed %llu ===\n\n",
                spec.mission.name.c_str(), spec.scenarios.size(),
                spec.scenarios.size() == 1 ? "" : "s",
                spec.dronesPerScenario,
                spec.policyEnabled ? "ON" : "OFF",
                static_cast<unsigned long long>(spec.fleetSeed));

    const FleetResult result = runFleet(spec, jobs);

    std::printf("%-44s %8s %6s %6s %6s %6s %9s %9s\n", "scenario",
                "survive", "crash", "land", "degr", "compl",
                "t50 (s)", "t90 (s)");
    for (const auto &sc : result.scenarios) {
        const Ecdf flight = sc.flightTimeEcdf();
        std::printf(
            "%-44s %7.1f%% %6zu %6zu %6zu %6zu %9.1f %9.1f\n",
            sc.name.c_str(), 100.0 * sc.survivalRate(),
            sc.tierCount(fault::OutcomeTier::Crashed),
            sc.tierCount(fault::OutcomeTier::LandedSafe),
            sc.tierCount(fault::OutcomeTier::SurvivedDegraded),
            sc.tierCount(fault::OutcomeTier::Completed),
            flight.quantile(0.5), flight.quantile(0.9));
    }
    std::printf("\n%llu missions flown\n",
                static_cast<unsigned long long>(result.missionsFlown));

    if (!summary_path.empty()) {
        writeFile(summary_path, fleetSummaryCsv(result));
        std::printf("summary CSV written to %s\n",
                    summary_path.c_str());
    }
    if (!ecdf_path.empty()) {
        writeFile(ecdf_path, fleetEcdfCsv(result));
        std::printf("ECDF CSV written to %s\n", ecdf_path.c_str());
    }
    return 0;
}
