/**
 * @file
 * dse_server: the DSE-as-a-service front end.
 *
 * Serves the line-delimited JSON query protocol (DESIGN.md §12)
 * either over TCP (default) or over stdin/stdout for piping:
 *
 *   dse_server --port 7070 --jobs 4 --workers 2
 *   echo '{"id": 1, "kind": "design", "point": {...}}' \
 *       | dse_server --stdio
 *
 * Usage: dse_server [--port N] [--bind ADDR] [--jobs N]
 *                   [--workers N] [--stdio] [--no-batch]
 *   --port N     TCP port (default 0 = ephemeral, printed at start)
 *   --bind ADDR  IPv4 bind address (default 127.0.0.1)
 *   --jobs N     engine sweep threads (default: hardware)
 *   --workers N  server worker threads draining the queue (default 2)
 *   --stdio      answer frames from stdin on stdout, then exit
 *   --no-batch   solve point-by-point instead of through the SoA
 *                batch kernel (replies are bit-identical either way)
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>

#include "example_args.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "util/logging.hh"

using namespace dronedse;

namespace {

struct Options
{
    int port = 0;
    std::string bindAddress = "127.0.0.1";
    int jobs = 0; // 0 = hardware concurrency
    int workers = 2;
    bool stdio = false;
    bool batchSolve = true;
};

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    examples::ExampleArgs args(argc, argv, "dse_server",
                               "[--port N] [--bind ADDR] [--jobs N] "
                               "[--workers N] [--stdio] "
                               "[--no-batch]");
    while (args.next()) {
        if (args.intArg("--port", opts.port, 0)) {
            if (opts.port > 65535)
                fatal("dse_server: --port expects 0..65535");
            continue;
        }
        if (args.stringArg("--bind", opts.bindAddress))
            continue;
        if (args.intArg("--jobs", opts.jobs, 1))
            continue;
        if (args.intArg("--workers", opts.workers, 1))
            continue;
        if (args.flag("--stdio")) {
            opts.stdio = true;
            continue;
        }
        if (args.flag("--no-batch")) {
            opts.batchSolve = false;
            continue;
        }
        args.unknown();
    }
    return opts;
}

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

int
runStdio(serve::Service &service)
{
    // One frame per line in, one reply per line out; the wait the
    // admission controller sees is zero (synchronous path).
    std::string line;
    double t = 0.0;
    while (std::getline(std::cin, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        const std::string reply = service.handleFrame(line, t);
        std::fputs(reply.c_str(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
        t += 1e-3;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);

    serve::ServiceOptions service_options;
    service_options.engine.threads = opts.jobs;
    service_options.engine.batchSolve = opts.batchSolve;

    if (opts.stdio) {
        serve::Service service{service_options};
        return runStdio(service);
    }

    serve::ServerOptions server_options;
    server_options.service = service_options;
    server_options.bindAddress = opts.bindAddress;
    server_options.port = static_cast<std::uint16_t>(opts.port);
    server_options.workers = opts.workers;

    serve::Server server{server_options};
    const std::uint16_t port = server.start();
    std::printf("dse_server ready on %s:%u (%d worker(s); Ctrl-C to "
                "stop)\n",
                opts.bindAddress.c_str(), port, opts.workers);
    std::fflush(stdout);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    while (!g_stop.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    server.stop();
    std::printf("dse_server stopped.\n");
    return 0;
}
