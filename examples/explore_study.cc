/**
 * @file
 * Adaptive exploration study: run the boundary-refinement driver
 * over the 450 mm reference space (or the six-axis wide space),
 * print the recovered Pareto frontier and round ledger, then close
 * out the incumbent with a risk-gated uncertainty report.
 *
 * Usage: explore_study [--jobs N] [--seed S] [--budget N]
 *                      [--sampler NAME] [--wide] [--csv PATH]
 *                      [--rounds-csv PATH] [--samples N]
 *   --jobs N         engine worker threads (default 1)
 *   --seed S         sampler + uncertainty seed (default 17)
 *   --budget N       max solver evaluations (default 10% of grid)
 *   --sampler NAME   grid | uniform | lhs | sobol (default sobol)
 *   --wide           explore the six-axis wide space instead
 *   --csv PATH       write the frontier CSV (byte-stable; CI diffs
 *                    this across --jobs 1/2/8)
 *   --rounds-csv PATH  write the per-round ledger CSV
 *   --samples N      Monte-Carlo samples for the closeout (default
 *                    256)
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "engine/engine.hh"
#include "example_args.hh"
#include "explore/driver.hh"
#include "explore/gate.hh"
#include "explore/sampler.hh"
#include "explore/space.hh"
#include "util/logging.hh"

using namespace dronedse;
using namespace dronedse::explore;
using namespace dronedse::unit_literals;

namespace {

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream f(path);
    if (!f)
        fatal("explore_study: cannot open '" + path +
              "' for writing");
    f << content;
}

} // namespace

int
main(int argc, char **argv)
{
    int jobs = 1;
    std::uint64_t seed = 17;
    std::uint64_t budget = 0; // 0 = 10% of the grid
    std::uint64_t mc_samples = 256;
    std::string sampler_name = "sobol";
    std::string csv_path, rounds_path;
    bool wide = false;

    examples::ExampleArgs args(argc, argv, "explore_study",
                               "[--jobs N] [--seed S] [--budget N] "
                               "[--sampler NAME] [--wide] "
                               "[--csv PATH] [--rounds-csv PATH] "
                               "[--samples N]");
    while (args.next()) {
        if (args.intArg("--jobs", jobs, 1))
            continue;
        if (args.u64Arg("--seed", seed))
            continue;
        if (args.u64Arg("--budget", budget))
            continue;
        if (args.stringArg("--sampler", sampler_name))
            continue;
        if (args.flag("--wide")) {
            wide = true;
            continue;
        }
        if (args.stringArg("--csv", csv_path))
            continue;
        if (args.stringArg("--rounds-csv", rounds_path))
            continue;
        if (args.u64Arg("--samples", mc_samples))
            continue;
        args.unknown();
    }

    ExploreOptions options;
    options.seed = seed;
    if (!parseSamplerKind(sampler_name, options.sampler))
        fatal("explore_study: unknown sampler '" + sampler_name +
              "' (grid | uniform | lhs | sobol)");

    const ExploreSpace space =
        wide ? wideSpace6() : referenceSpace450(100.0_mah);
    options.maxEvaluations =
        budget != 0 ? static_cast<std::size_t>(budget)
                    : space.pointCount() / 10;

    std::printf("=== Adaptive design-space exploration ===\n\n");
    std::printf("space: %zu axes, %zu lattice points\n",
                space.axisCount(), space.pointCount());
    std::printf("budget: %zu evaluations (%s sampler, seed %llu)\n\n",
                options.maxEvaluations,
                samplerKindName(options.sampler),
                static_cast<unsigned long long>(seed));

    engine::SweepEngine engine{
        engine::EngineOptions{.threads = jobs}};
    AdaptiveDriver driver(engine, options);
    const ExploreResult result = driver.run(space);

    std::printf("evaluated %zu of %zu points in %zu rounds "
                "(converged: %s)\n",
                result.evaluations(), result.spacePoints,
                result.rounds.size(),
                result.converged ? "yes" : "no");
    std::printf("frontier: %zu designs\n\n", result.frontier.size());

    const DesignResult &best = result.points[result.incumbent];
    std::printf("incumbent (longest feasible flight):\n"
                "  wheelbase %.0f mm, %d cells, %.0f mAh, twr %.1f, "
                "board %s\n"
                "  flight %.2f min, weight %.1f g, avg power %.1f "
                "W\n\n",
                best.inputs.wheelbaseMm.value(), best.inputs.cells,
                best.inputs.capacityMah.value(), best.inputs.twr,
                best.inputs.compute.name.c_str(),
                best.flightTimeMin.value(),
                best.totalWeightG.value(), best.avgPowerW.value());

    // Risk-gated closeout: does the incumbent hold up when the
    // survey-fit coefficients are perturbed within catalog scatter?
    RiskQuery risk;
    risk.point = best.inputs;
    risk.options.seed = seed;
    risk.options.samples = static_cast<std::size_t>(mc_samples);
    risk.gates = {
        GateSpec{GateMetric::FlightTimeMin, GateOp::AtLeast,
                 0.9 * best.flightTimeMin.value(), 0.9},
        GateSpec{GateMetric::TotalWeightG, GateOp::AtMost,
                 1.1 * best.totalWeightG.value(), 0.9},
    };
    const RiskOutcome outcome = runRiskQuery(risk);
    std::printf("%s\n", gateReportText(outcome.report).c_str());

    if (!csv_path.empty())
        writeFile(csv_path, frontierCsv(result));
    if (!rounds_path.empty())
        writeFile(rounds_path, roundsCsv(result));
    return 0;
}
