/**
 * @file
 * Design explorer: sweep size class x battery x compute board
 * through the batch engine and print the Pareto frontier of flight
 * time vs compute capability vs all-up weight.
 *
 * Usage: design_explorer [--jobs N] [--csv PATH] [--trace PATH]
 *                        [--metrics PATH] [--no-batch]
 *   --jobs N       worker threads for the sweep (default: hardware)
 *   --csv PATH     write every feasible design point as CSV
 *   --trace PATH   capture engine spans, write chrome://tracing JSON
 *   --metrics PATH write the obs metrics-registry snapshot as JSON
 *   --no-batch     solve point-by-point instead of through the SoA
 *                  batch kernel (output is bit-identical either way;
 *                  CI diffs the two CSVs to prove it)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "components/compute_board.hh"
#include "dse/export.hh"
#include "dse/sweep.hh"
#include "engine/engine.hh"
#include "engine/pareto.hh"
#include "example_args.hh"
#include "obs/metrics.hh"
#include "obs/tracer.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace dronedse;
using namespace dronedse::unit_literals;

namespace {

struct Options
{
    int jobs = 0; // 0 = hardware concurrency
    bool batchSolve = true;
    std::string csvPath;
    std::string tracePath;
    std::string metricsPath;
};

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    examples::ExampleArgs args(argc, argv, "design_explorer",
                               "[--jobs N] [--csv PATH] "
                               "[--trace PATH] [--metrics PATH] "
                               "[--no-batch]");
    while (args.next()) {
        if (args.intArg("--jobs", opts.jobs, 1))
            continue;
        if (args.stringArg("--csv", opts.csvPath))
            continue;
        if (args.stringArg("--trace", opts.tracePath))
            continue;
        if (args.stringArg("--metrics", opts.metricsPath))
            continue;
        if (args.flag("--no-batch")) {
            opts.batchSolve = false;
            continue;
        }
        args.unknown();
    }
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);
    if (!opts.tracePath.empty())
        obs::tracer().setEnabled(true);

    std::printf("=== Design explorer: flight time vs compute ===\n\n");

    engine::SweepEngine eng{engine::EngineOptions{
        .threads = opts.jobs, .batchSolve = opts.batchSolve}};

    // One sweep per size class (their capacity axes differ), every
    // compute board and battery family in each.
    std::vector<DesignResult> points;
    double wall_seconds = 0.0;
    for (SizeClass cls :
         {SizeClass::Small, SizeClass::Medium, SizeClass::Large}) {
        SweepSpec spec = classSweepSpec(classSpec(cls),
                                        {1, 2, 3, 4, 5, 6}, 500.0_mah,
                                        basicChip3W());
        spec.boards = computeBoardTable();
        const engine::SweepResult swept = eng.run(spec);
        wall_seconds += swept.stats.wallSeconds;
        for (std::size_t i : swept.feasible) {
            if (withinPracticalLimits(swept.points[i], classSpec(cls)))
                points.push_back(swept.points[i]);
        }
    }

    const auto frontier = engine::paretoFrontier(points);

    Table t({"frontier design", "compute board", "compute (W)",
             "weight (g)", "flight time (min)"});
    for (std::size_t idx : frontier) {
        const DesignResult &p = points[idx];
        t.addRow({fmt(p.inputs.wheelbaseMm.value(), 0) + "mm " +
                      std::to_string(p.inputs.cells) + "S " +
                      fmt(p.inputs.capacityMah.value(), 0) + "mAh",
                  p.inputs.compute.name,
                  fmt(p.inputs.compute.powerW, 1),
                  fmt(p.totalWeightG.value(), 0),
                  fmt(p.flightTimeMin.value(), 1)});
    }
    t.print();

    std::printf("\n%zu practical designs, %zu on the frontier.\n"
                "Reading: each extra watt of onboard compute costs "
                "flight time;\nthe frontier shows the best achievable "
                "trade at every capability level.\n",
                points.size(), frontier.size());

    if (!opts.csvPath.empty()) {
        sweepToCsv(points).write(opts.csvPath);
        std::printf("\nWrote %zu design points to %s\n", points.size(),
                    opts.csvPath.c_str());
    }

    const engine::CacheCounters cache = eng.cacheCounters();
    std::printf("\nEngine stats: %d thread(s), %.0f points/s, "
                "cache %llu hits / %llu misses (%.0f%% hit rate), "
                "%llu evictions\n",
                eng.threadCount(),
                wall_seconds > 0.0
                    ? static_cast<double>(cache.hits + cache.misses) /
                          wall_seconds
                    : 0.0,
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                100.0 * cache.hitRate(),
                static_cast<unsigned long long>(cache.evictions));
    std::printf("Last sweep: %s\n", eng.lastRunStats().toJson().c_str());

    if (!opts.tracePath.empty()) {
        obs::tracer().writeChromeJson(opts.tracePath);
        std::printf("Wrote trace to %s (open in chrome://tracing)\n",
                    opts.tracePath.c_str());
    }
    if (!opts.metricsPath.empty()) {
        obs::metrics().writeJson(opts.metricsPath);
        std::printf("Wrote metrics snapshot to %s\n",
                    opts.metricsPath.c_str());
    }
    return 0;
}
