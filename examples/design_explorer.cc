/**
 * @file
 * Design explorer: sweep wheelbase x battery x compute board and
 * print the Pareto frontier of flight time vs onboard compute power.
 *
 * A point is Pareto-optimal when no other design offers both more
 * flight time and more compute capability.
 */

#include <cstdio>
#include <vector>

#include "components/compute_board.hh"
#include "dse/sweep.hh"
#include "dse/weight_closure.hh"
#include "util/quantity.hh"
#include "util/table.hh"

using namespace dronedse;
using namespace dronedse::unit_literals;

int
main()
{
    std::printf("=== Design explorer: flight time vs compute ===\n\n");

    std::vector<DesignResult> points;
    for (const auto &board : computeBoardTable()) {
        for (SizeClass cls :
             {SizeClass::Small, SizeClass::Medium, SizeClass::Large}) {
            const auto &spec = classSpec(cls);
            const DesignResult best =
                bestConfiguration(spec, board, 500.0_mah);
            points.push_back(best);
        }
    }

    // Pareto filter: maximize (flightTimeMin, compute.powerW).
    std::vector<const DesignResult *> pareto;
    for (const auto &p : points) {
        bool dominated = false;
        for (const auto &q : points) {
            if (q.flightTimeMin.value() > p.flightTimeMin.value() + 1e-9 &&
                q.inputs.compute.powerW >= p.inputs.compute.powerW) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            pareto.push_back(&p);
    }

    Table t({"frontier design", "compute board", "compute (W)",
             "weight (g)", "flight time (min)"});
    for (const auto *p : pareto) {
        t.addRow({fmt(p->inputs.wheelbaseMm.value(), 0) + "mm " +
                      std::to_string(p->inputs.cells) + "S " +
                      fmt(p->inputs.capacityMah.value(), 0) + "mAh",
                  p->inputs.compute.name, fmt(p->inputs.compute.powerW, 1),
                  fmt(p->totalWeightG.value(), 0),
                  fmt(p->flightTimeMin.value(), 1)});
    }
    t.print();

    std::printf("\n%zu candidate designs, %zu on the frontier.\n"
                "Reading: each extra watt of onboard compute costs "
                "flight time;\nthe frontier shows the best achievable "
                "trade at every capability level.\n",
                points.size(), pareto.size());
    return 0;
}
