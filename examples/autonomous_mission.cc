/**
 * @file
 * Autonomous mission: the full closed loop of the paper's
 * open-source drone — EKF state estimation, the Table 2 cascaded
 * inner loop, waypoint navigation in the outer loop, wind gusts, a
 * battery draining in real time, and a SLAM pipeline digesting the
 * camera stream on the companion computer.
 *
 * Usage: autonomous_mission [--trace PATH] [--metrics PATH]
 *   --trace PATH   per-tick and SLAM-phase spans as chrome://tracing
 *                  JSON
 *   --metrics PATH obs metrics-registry snapshot as JSON
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "control/autopilot.hh"
#include "core/presets.hh"
#include "dse/weight_closure.hh"
#include "obs/metrics.hh"
#include "obs/tracer.hh"
#include "physics/lipo.hh"
#include "power/board_power.hh"
#include "slam/pipeline.hh"
#include "util/logging.hh"

using namespace dronedse;

int
main(int argc, char **argv)
{
    std::string trace_path, metrics_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--metrics") == 0 &&
                   i + 1 < argc) {
            metrics_path = argv[++i];
        } else {
            fatal(std::string("autonomous_mission: unknown argument "
                              "'") +
                  argv[i] + "' (usage: autonomous_mission "
                            "[--trace PATH] [--metrics PATH])");
        }
    }
    if (!trace_path.empty())
        obs::tracer().setEnabled(true);

    std::printf("=== Autonomous mission on the open-source drone "
                "===\n\n");

    // Size the airframe from the paper's 450 mm design.
    const DesignResult design = solveDesign(ourDroneInputs());
    if (!design.feasible) {
        std::printf("design infeasible: %s\n",
                    design.infeasibleReason.c_str());
        return 1;
    }
    const QuadrotorParams airframe = QuadrotorParams::fromDesign(design);
    std::printf("airframe: %.0f g, %.1f N max thrust/motor, "
                "flight-time budget %.1f min\n\n",
                design.totalWeightG.value(), airframe.maxThrustPerMotorN,
                design.flightTimeMin.value());

    // Survey mission: a 12 m square at 3 m altitude with a yaw turn
    // at each corner, under gusty wind.
    std::vector<Waypoint> mission = {
        {{0, 0, 3}, 0.0, 0.6, 2.0},   {{12, 0, 3}, 0.0, 0.8, 1.0},
        {{12, 12, 3}, 1.57, 0.8, 1.0}, {{0, 12, 3}, 3.14, 0.8, 1.0},
        {{0, 0, 3}, 0.0, 0.8, 1.0},   {{0, 0, 0.3}, 0.0, 0.3, 1e9},
    };
    AutopilotConfig config;
    config.wind.steady = {1.5, 0.5, 0.0};
    config.wind.gustIntensity = 1.0;
    Autopilot autopilot(airframe, std::move(mission), config);

    // SLAM runs on the companion computer while the drone flies.
    const SequenceSpec &seq = findSequence("MH01");
    SyntheticWorld world(seq);
    SlamPipeline slam(world.camera());
    slam.bootstrap(world.renderFrame(0), world.renderFrame(15));
    int slam_frame = 16;
    int slam_tracked = 0;

    LipoPack pack(3, Quantity<MilliampHours>(3000.0));
    const Quantity<Watts> compute_w =
        boardStateMeanW(BoardState::AutopilotSlamFlying) +
        Quantity<Watts>(2.25);

    std::printf("t(s)  waypoint  position              est.err  "
                "power(W)  SoC    SLAM\n");
    const double mission_s = 90.0;
    for (double t = 0.0; t < mission_s; t += 1.0) {
        obs::ScopedSpan tick_span("sim.tick", "sim");
        obs::metrics().counter("sim.mission.ticks").add(1);
        autopilot.run(1.0);
        const Quantity<Watts> power =
            Quantity<Watts>(autopilot.quad().electricalPowerW()) +
            compute_w;
        pack.discharge(power, Quantity<Seconds>(1.0));

        // SLAM consumes ~20 camera frames per second of flight; we
        // process a few per printed tick to keep the example quick.
        for (int k = 0; k < 2 && slam_frame < seq.frames;
             ++k, ++slam_frame) {
            if (slam.processFrame(world.renderFrame(slam_frame))
                    .tracked) {
                ++slam_tracked;
            }
        }

        if (static_cast<long>(t) % 10 == 0) {
            const auto &pos = autopilot.quad().state().position;
            std::printf("%4.0f  %zu/6       (%5.1f %5.1f %4.1f)   "
                        "%5.2f m  %7.1f  %4.0f%%  %d kf / %zu pts\n",
                        t, autopilot.navigator().currentIndex(), pos.x,
                        pos.y, pos.z, autopilot.estimationErrorM(),
                        power.value(), 100.0 * pack.stateOfCharge(),
                        static_cast<int>(slam.map().keyframeCount()),
                        slam.map().pointCount());
        }
        if (pack.depleted()) {
            std::printf("battery reached the 85%% drain limit — "
                        "landing now\n");
            break;
        }
    }

    std::printf("\nmission waypoints reached: %zu/6\n",
                autopilot.navigator().reachedCount());
    std::printf("SLAM frames tracked: %d (map: %zu keyframes, %zu "
                "points)\n",
                slam_tracked, slam.map().keyframeCount(),
                slam.map().pointCount());
    std::printf("energy drawn: %.1f Wh of %.1f Wh\n",
                pack.drawnEnergyWh().value(), pack.totalEnergyWh().value());
    std::printf("stable flight: %s\n",
                autopilot.quad().upsideDown() ? "NO" : "yes");

    if (!trace_path.empty()) {
        obs::tracer().writeChromeJson(trace_path);
        std::printf("wrote trace to %s (open in chrome://tracing)\n",
                    trace_path.c_str());
    }
    if (!metrics_path.empty()) {
        obs::metrics().writeJson(metrics_path);
        std::printf("wrote metrics snapshot to %s\n",
                    metrics_path.c_str());
    }
    return 0;
}
