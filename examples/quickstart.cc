/**
 * @file
 * Quickstart: design a 450 mm drone with the Figure 12 procedure and
 * print its report.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "components/compute_board.hh"
#include "core/designer.hh"
#include "dse/footprint.hh"
#include "util/quantity.hh"

using namespace dronedse;
using namespace dronedse::unit_literals;

int
main()
{
    // Step 1 (Figure 12): pick a frame for the application and add
    // the compute the mission needs.
    DroneDesigner designer;
    designer.wheelbase(450.0_mm)
        .battery(3, 4000.0_mah)
        .compute(findComputeBoard("Raspberry Pi 4"))
        .payload(100.0_g); // mission payload, e.g. a camera gimbal

    // Step 2: close the weight loop and evaluate power/flight time.
    const DesignReport report = designer.report();
    std::printf("%s\n", report.str().c_str());

    // Step 3: quantify an optimization — offload the 5 W companion
    // computer to a 0.4 W FPGA that weighs 25 g more (Section 5,
    // Table 5).  The paper's estimate is power-only; the model can
    // additionally resolve the weight feedback (a heavier platform
    // needs bigger motors).
    const DesignResult base = designer.design();
    const Quantity<Minutes> paper_style = gainedFlightTimeApproxMin(
        4.6_w, base.avgPowerW, base.flightTimeMin);
    const Quantity<Minutes> exact =
        platformSwapGainMin(designer.inputs(),
                            /*delta_power=*/-4.6_w,
                            /*delta_weight=*/25.0_g);
    std::printf("Offloading the RPi workload to an FPGA accelerator:\n"
                "  power-only estimate (paper's method): %+.2f min\n"
                "  with weight feedback (+25 g platform): %+.2f min\n",
                paper_style.value(), exact.value());
    return 0;
}
