/**
 * @file
 * Mission-resilience study: fly the scenario catalog with and
 * without the degradation policy and tabulate what each fault costs
 * — survival tier, position error, flight time, energy.
 *
 * Usage: resilience_study [--csv PATH] [--scenario NAME]
 *                         [--no-policy] [--jobs N] [--seed S]
 *                         [--duration S] [--list]
 *   --csv PATH       also write the battery as CSV
 *   --scenario NAME  run one catalog scenario instead of all
 *   --no-policy      disable the DegradationPolicy (injector only)
 *   --jobs N         worker threads for the battery (0 = all cores)
 *   --seed S         wind/sensor seed (default 17)
 *   --duration S     mission length in seconds (default 60)
 *   --list           print the scenario catalog and exit
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "example_args.hh"
#include "fault/fault.hh"
#include "fault/mission.hh"
#include "util/logging.hh"

using namespace dronedse;
using namespace dronedse::fault;

int
main(int argc, char **argv)
{
    std::string csv_path, scenario_name;
    ResilienceConfig config;
    int jobs = 1;
    examples::ExampleArgs args(argc, argv, "resilience_study",
                               "[--csv PATH] [--scenario NAME] "
                               "[--no-policy] [--jobs N] [--seed S] "
                               "[--duration S] [--list]");
    while (args.next()) {
        if (args.stringArg("--csv", csv_path))
            continue;
        if (args.stringArg("--scenario", scenario_name))
            continue;
        if (args.flag("--no-policy")) {
            config.policyEnabled = false;
            continue;
        }
        if (args.intArg("--jobs", jobs, 0))
            continue;
        if (args.u64Arg("--seed", config.seed))
            continue;
        if (args.doubleArg("--duration", config.durationS))
            continue;
        if (args.flag("--list")) {
            for (const auto &sc : scenarioCatalog())
                std::printf("%-24s %s\n", sc.name.c_str(),
                            sc.description.c_str());
            return 0;
        }
        args.unknown();
    }

    std::vector<FaultScenario> scenarios;
    if (scenario_name.empty()) {
        scenarios = scenarioCatalog();
    } else {
        scenarios.push_back(findScenario(scenario_name));
    }

    std::printf("=== Mission resilience: %zu scenario%s, policy %s "
                "===\n\n",
                scenarios.size(), scenarios.size() == 1 ? "" : "s",
                config.policyEnabled ? "ON" : "OFF");

    const auto reports = runScenarioBattery(scenarios, config, jobs);

    std::printf("%-24s %-17s %3s  %7s  %7s  %7s  %6s  %6s  %4s\n",
                "scenario", "tier", "wp", "time(s)", "trk(m)",
                "est(m)", "Wh", "miss", "mode");
    for (const auto &r : reports) {
        std::printf("%-24s %-17s %zu/%zu  %7.1f  %7.2f  %7.2f  "
                    "%6.2f  %6ld  %s\n",
                    r.scenario.c_str(), outcomeTierName(r.tier),
                    r.waypointsReached, kWaypointGoal, r.flightTimeS,
                    r.meanTrackErrM, r.maxEstErrM, r.energyWh,
                    r.deadlineMisses, flightModeName(r.worstMode));
    }

    std::size_t survived = 0;
    for (const auto &r : reports)
        if (!r.crashed)
            ++survived;
    std::printf("\nsurvived %zu/%zu scenarios\n", survived,
                reports.size());

    if (!csv_path.empty()) {
        std::ofstream out(csv_path);
        if (!out)
            fatal("resilience_study: cannot write " + csv_path);
        out << batteryToCsv(reports);
        std::printf("wrote CSV to %s\n", csv_path.c_str());
    }
    return 0;
}
