/**
 * @file
 * Automated co-design study: Table 5 as an output, not an input.
 *
 * The paper hand-assigns a compute platform per drone class and
 * then measures the flight-time consequence.  This study inverts
 * that: a mission profile goes in, the roofline-calibrated search
 * sweeps {platform x offload split x frame rate x airframe x
 * battery}, and the flight-time-optimal compute configuration comes
 * out — with the paper's board assignment (the FPGA) emerging as a
 * derived result, and the roofline gap report explaining why each
 * losing board loses.
 *
 * Usage: codesign_study [--mission NAME | --all] [--recommend]
 *                       [--jobs N] [--out FILE]
 *   --mission NAME  run one catalog mission (default: all)
 *   --all           run every catalog mission
 *   --recommend     print only the recommendation lines
 *   --jobs N        engine worker threads (result is bit-identical
 *                   at any N; that is the point)
 *   --out FILE      append each mission's canonical reply frame to
 *                   FILE, one per line, for byte-comparison runs
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "codesign/codesign.hh"
#include "engine/engine.hh"
#include "example_args.hh"
#include "serve/request.hh"
#include "slam/pipeline.hh"
#include "util/logging.hh"

using namespace dronedse;
using namespace dronedse::codesign;

namespace {

void
printRoofline(const RooflineModel &model)
{
    const HostCalibration &cal = model.calibration();
    std::printf("host fit: peak %.3e ops/s, bandwidth %.3e B/s, "
                "ridge %.2f ops/B\n\n",
                cal.host.peakOpsPerSec,
                cal.host.bandwidthBytesPerSec,
                cal.host.ridgeOpsPerByte());
    for (std::size_t p = 0;
         p < static_cast<std::size_t>(PlatformKind::NumPlatforms);
         ++p) {
        const auto kind = static_cast<PlatformKind>(p);
        const RooflineSpec &roof = model.roofline(kind);
        std::printf("%-5s peak %.2e ops/s  bw %.2e B/s  ridge "
                    "%.2f ops/B\n",
                    platformSpec(kind).name.c_str(),
                    roof.peakOpsPerSec, roof.bandwidthBytesPerSec,
                    roof.ridgeOpsPerByte());
        for (const PhaseRooflineReport &row : model.report(kind)) {
            std::printf("  %-18s I=%7.3f  attain=%.2e  "
                        "measured=%.2e  %s  gap=%.1fx\n",
                        slamPhaseName(row.phase),
                        row.intensityOpsPerByte,
                        row.attainableOpsPerSec,
                        row.measuredOpsPerSec,
                        row.memoryBound ? "MEM " : "COMP",
                        row.gap);
        }
    }
    std::printf("\n");
}

void
printChoice(const char *label, const CodesignChoice &choice)
{
    if (!choice.feasible) {
        std::printf("  %-12s (no feasible configuration)\n", label);
        return;
    }
    std::printf("  %-12s %-22s %6.2f min  %5.0f g  %6.2f W  "
                "wb=%.0fmm %dS %.0fmAh\n",
                label, choice.config.boardName.c_str(),
                choice.design.flightTimeMin.value(),
                choice.design.totalWeightG.value(),
                choice.design.avgPowerW.value(),
                choice.design.inputs.wheelbaseMm.value(),
                choice.design.inputs.cells,
                choice.design.inputs.capacityMah.value());
}

void
printOutcome(const CodesignOutcome &outcome, bool recommend_only)
{
    std::printf("== %s (target %.0f Hz, %zu configs, %zu grid "
                "points)\n",
                outcome.mission.name.c_str(),
                outcome.mission.targetRateHz, outcome.configCount,
                outcome.gridPoints);
    printChoice("RECOMMENDED", outcome.recommended);
    if (recommend_only) {
        std::printf("\n");
        return;
    }
    std::printf("  -- derived Table 5 (best per board):\n");
    for (std::size_t p = 0;
         p < static_cast<std::size_t>(PlatformKind::NumPlatforms);
         ++p) {
        const auto kind = static_cast<PlatformKind>(p);
        const CodesignChoice &choice = outcome.perPlatform[p];
        if (choice.feasible) {
            printChoice(platformSpec(kind).name.c_str(), choice);
        } else {
            std::printf("  %-12s infeasible: sustains %.1f fps < "
                        "%.0f Hz target\n",
                        platformSpec(kind).name.c_str(),
                        outcome.bestSustainedFps[p],
                        outcome.mission.targetRateHz);
        }
    }
    std::printf("  -- best per offload split:\n");
    for (std::size_t s = 0;
         s < static_cast<std::size_t>(OffloadSplit::NumSplits);
         ++s) {
        printChoice(
            offloadSplitName(static_cast<OffloadSplit>(s)),
            outcome.perSplit[s]);
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string mission_name;
    std::string out_path;
    bool recommend_only = false;
    int jobs = 2;
    examples::ExampleArgs args(argc, argv, "codesign_study",
                               "[--mission NAME | --all] "
                               "[--recommend] [--jobs N] "
                               "[--out FILE]");
    while (args.next()) {
        if (args.stringArg("--mission", mission_name))
            continue;
        if (args.flag("--all")) {
            mission_name.clear();
            continue;
        }
        if (args.flag("--recommend")) {
            recommend_only = true;
            continue;
        }
        if (args.intArg("--jobs", jobs, 1))
            continue;
        if (args.stringArg("--out", out_path))
            continue;
        args.unknown();
    }

    std::vector<MissionSpec> missions;
    for (const MissionSpec &mission : paperMissionCatalog()) {
        if (mission_name.empty() || mission.name == mission_name)
            missions.push_back(mission);
    }
    if (missions.empty()) {
        std::string known;
        for (const MissionSpec &mission : paperMissionCatalog())
            known += " " + mission.name;
        fatal("codesign_study: unknown mission '" + mission_name +
              "' (catalog:" + known + ")");
    }

    std::printf("=== Roofline + co-design study (jobs=%d) ===\n\n",
                jobs);

    engine::SweepEngine engine{
        engine::EngineOptions{.threads = jobs}};
    const CodesignDriver driver{engine};
    if (!recommend_only)
        printRoofline(driver.model());

    std::FILE *out = nullptr;
    if (!out_path.empty()) {
        out = std::fopen(out_path.c_str(), "w");
        if (!out)
            fatal("codesign_study: cannot open '" + out_path + "'");
    }

    for (std::size_t i = 0; i < missions.size(); ++i) {
        const CodesignOutcome outcome = driver.run(missions[i]);
        printOutcome(outcome, recommend_only);
        if (out) {
            const std::string frame =
                serve::serializeCodesignReply(i + 1, outcome);
            std::fprintf(out, "%s\n", frame.c_str());
        }
    }
    if (out)
        std::fclose(out);

    std::printf("the recommendation is a pure function of the "
                "mission: rerun with any --jobs count and compare "
                "--out files byte-for-byte.\n");
    return 0;
}
