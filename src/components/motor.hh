/**
 * @file
 * BLDC motor records and the motor mass model (paper Figure 9).
 *
 * Motors are characterized by their Kv rating (RPM per volt), weight,
 * and maximum thrust with a matched propeller.  The paper observes
 * motor weight ranging from ~5 g on 100 mm drones to ~100 g on
 * 1000 mm drones, driven by the torque (pole count, diameter) needed
 * to swing larger propellers.
 */

#ifndef DRONEDSE_COMPONENTS_MOTOR_HH
#define DRONEDSE_COMPONENTS_MOTOR_HH

#include <string>
#include <vector>

#include "util/quantity.hh"
#include "util/rng.hh"

namespace dronedse {

/**
 * One BLDC motor model.  Data fields stay raw doubles (catalog
 * boundary); typed accessors cover the quantities the solver uses.
 */
struct MotorRecord
{
    std::string name;
    /** Kv rating: no-load RPM per volt. */
    double kv = 0.0;
    /** Motor weight (g). */
    double weightG = 0.0;
    /** Maximum continuous current (A). */
    double maxCurrentA = 0.0;
    /** Maximum thrust (g) with the matched propeller. */
    double maxThrustG = 0.0;
    /** Matched propeller diameter (inches). */
    double propDiameterIn = 0.0;

    /** Motor weight as a typed quantity. */
    Quantity<Grams> weight() const { return Quantity<Grams>(weightG); }

    /** Max continuous current as a typed quantity. */
    Quantity<Amperes> maxCurrent() const
    {
        return Quantity<Amperes>(maxCurrentA);
    }

    /** Max thrust as a typed quantity. */
    Quantity<GramsForce> maxThrust() const
    {
        return Quantity<GramsForce>(maxThrustG);
    }
};

/**
 * Motor weight as a function of the max thrust it must produce.
 *
 * Calibrated to the paper's observations: an MT2213-class motor
 * (~55 g) lifts ~850 g with a 10" prop; 100 mm-class motors weigh
 * ~5 g; 1000 mm-class motors ~100 g.
 */
Quantity<Grams> motorWeightG(Quantity<GramsForce> max_thrust);

/**
 * Build the motor matched to a thrust requirement at a supply
 * voltage, using the propulsion physics to derive Kv and current.
 *
 * @param required_thrust   Max thrust per motor, i.e.
 *        TWR * weight / 4.
 * @param prop_diameter     Propeller diameter the frame allows.
 * @param supply_voltage    Battery nominal voltage.
 */
MotorRecord matchMotor(Quantity<GramsForce> required_thrust,
                       Quantity<Inches> prop_diameter,
                       Quantity<Volts> supply_voltage);

/**
 * Synthesize a motor catalog across wheelbase classes, mimicking the
 * data released by the paper's 150 manufacturers.
 */
std::vector<MotorRecord> generateMotorCatalog(Rng &rng, int per_class = 30);

} // namespace dronedse

#endif // DRONEDSE_COMPONENTS_MOTOR_HH
