/**
 * @file
 * BLDC motor records and the motor mass model (paper Figure 9).
 *
 * Motors are characterized by their Kv rating (RPM per volt), weight,
 * and maximum thrust with a matched propeller.  The paper observes
 * motor weight ranging from ~5 g on 100 mm drones to ~100 g on
 * 1000 mm drones, driven by the torque (pole count, diameter) needed
 * to swing larger propellers.
 */

#ifndef DRONEDSE_COMPONENTS_MOTOR_HH
#define DRONEDSE_COMPONENTS_MOTOR_HH

#include <string>
#include <vector>

#include "util/rng.hh"

namespace dronedse {

/** One BLDC motor model. */
struct MotorRecord
{
    std::string name;
    /** Kv rating: no-load RPM per volt. */
    double kv = 0.0;
    /** Motor weight (g). */
    double weightG = 0.0;
    /** Maximum continuous current (A). */
    double maxCurrentA = 0.0;
    /** Maximum thrust (g) with the matched propeller. */
    double maxThrustG = 0.0;
    /** Matched propeller diameter (inches). */
    double propDiameterIn = 0.0;
};

/**
 * Motor weight (g) as a function of the max thrust it must produce.
 *
 * Calibrated to the paper's observations: an MT2213-class motor
 * (~55 g) lifts ~850 g with a 10" prop; 100 mm-class motors weigh
 * ~5 g; 1000 mm-class motors ~100 g.
 */
double motorWeightG(double max_thrust_g);

/**
 * Build the motor matched to a thrust requirement at a supply
 * voltage, using the propulsion physics to derive Kv and current.
 *
 * @param required_thrust_g Max thrust per motor (g), i.e.
 *        TWR * weight / 4.
 * @param prop_diameter_in  Propeller diameter the frame allows.
 * @param supply_voltage    Battery nominal voltage.
 */
MotorRecord matchMotor(double required_thrust_g, double prop_diameter_in,
                       double supply_voltage);

/**
 * Synthesize a motor catalog across wheelbase classes, mimicking the
 * data released by the paper's 150 manufacturers.
 */
std::vector<MotorRecord> generateMotorCatalog(Rng &rng, int per_class = 30);

} // namespace dronedse

#endif // DRONEDSE_COMPONENTS_MOTOR_HH
