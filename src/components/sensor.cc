#include "components/sensor.hh"

#include "util/logging.hh"

namespace dronedse {

const std::vector<SensorRecord> &
sensorTable()
{
    static const std::vector<SensorRecord> table = {
        {"Eachine Bat 19S 800TVL", SensorKind::FpvCamera, 8.0, 0.25, false},
        {"RunCam Night Eagle 2", SensorKind::FpvCamera, 14.5, 1.0, false},
        {"HoverMap", SensorKind::Lidar, 1800.0, 50.0, true},
        {"YellowScan Surveyor", SensorKind::Lidar, 1600.0, 15.0, true},
        {"Ultra Puck", SensorKind::Lidar, 925.0, 10.0, true},
    };
    return table;
}

const SensorRecord &
findSensor(const std::string &name)
{
    for (const auto &rec : sensorTable()) {
        if (rec.name == name)
            return rec;
    }
    fatal("findSensor: unknown sensor '" + name + "'");
}

} // namespace dronedse
