#include "components/compute_board.hh"

#include "util/logging.hh"

namespace dronedse {

const std::vector<ComputeBoardRecord> &
computeBoardTable()
{
    // Power figures follow Table 4's current @ voltage ratings.
    static const std::vector<ComputeBoardRecord> table = {
        {"iFlight SucceX-E F4", BoardClass::Basic, 7.6, 0.5},
        {"DJI NAZA-M Lite", BoardClass::Basic, 66.3, 1.5},
        {"DJI NAZA-M V2", BoardClass::Basic, 82.0, 1.5},
        {"Pixhawk 4", BoardClass::Basic, 15.8, 2.0},
        {"Mateksys F405", BoardClass::Basic, 17.0, 1.0},
        {"Intel Aero", BoardClass::Improved, 30.0, 10.0},
        {"Navio2", BoardClass::Improved, 23.0, 0.75},
        {"Raspberry Pi 4", BoardClass::Improved, 50.0, 5.0},
        {"Nvidia Jetson TX2", BoardClass::Improved, 85.0, 10.0},
        {"DJI Manifold", BoardClass::Improved, 200.0, 20.0},
    };
    return table;
}

const ComputeBoardRecord &
findComputeBoard(const std::string &name)
{
    for (const auto &rec : computeBoardTable()) {
        if (rec.name == name)
            return rec;
    }
    fatal("findComputeBoard: unknown board '" + name + "'");
}

ComputeBoardRecord
basicChip3W()
{
    return {"Basic 3W chip", BoardClass::Basic, 20.0, 3.0};
}

ComputeBoardRecord
advancedChip20W()
{
    return {"Advanced 20W chip", BoardClass::Improved, 85.0, 20.0};
}

} // namespace dronedse
