#include "components/propeller.hh"

#include "util/logging.hh"

namespace dronedse {

PropellerRecord
makePropeller(Quantity<Inches> diameter)
{
    const double diameter_in = diameter.value();
    if (diameter_in <= 0.0)
        fatal("makePropeller: diameter must be positive");

    PropellerRecord rec;
    rec.diameterIn = diameter_in;
    rec.pitchIn = 0.45 * diameter_in;
    // Blade-area scaling anchored at the 10x4.5 prop (~10 g each),
    // matching the 40 g set of four on the paper's 450 mm drone
    // (Figure 14).
    rec.weightG = 0.1 * diameter_in * diameter_in;
    rec.name = std::to_string(static_cast<int>(diameter_in * 10)) +
               "x" + std::to_string(static_cast<int>(rec.pitchIn * 10)) +
               " prop";
    return rec;
}

Quantity<Grams>
propellerSetWeightG(Quantity<Inches> diameter)
{
    return Quantity<Grams>(4.0 * makePropeller(diameter).weightG);
}

} // namespace dronedse
