/**
 * @file
 * LiPo battery records, catalog, and weight model (paper Figure 7).
 *
 * The paper surveys 250 commercial LiPo packs and fits, per cell
 * count, a linear relationship between capacity (mAh) and weight (g).
 * We embed those published fits, synthesize a catalog of packs
 * scattered around them, and provide a fitter path that re-derives
 * the lines from the catalog (the survey -> fit -> model pipeline).
 */

#ifndef DRONEDSE_COMPONENTS_BATTERY_HH
#define DRONEDSE_COMPONENTS_BATTERY_HH

#include <string>
#include <vector>

#include "util/quantity.hh"
#include "util/regression.hh"
#include "util/rng.hh"

namespace dronedse {

/**
 * One commercial LiPo battery pack.  The data fields stay raw
 * doubles — catalog records are the survey/CSV boundary and feed the
 * unit-agnostic regression fitter — but every derived quantity is
 * typed.
 */
struct BatteryRecord
{
    std::string name;
    /** Series cell count (1S..6S). */
    int cells = 1;
    /** Capacity in mAh. */
    double capacityMah = 0.0;
    /** Pack weight in grams, including case/wires/protection. */
    double weightG = 0.0;
    /** Discharge C rating (max continuous current = C * Ah). */
    double dischargeC = 25.0;

    /** Capacity as a typed quantity. */
    Quantity<MilliampHours> capacity() const;

    /** Pack weight as a typed quantity. */
    Quantity<Grams> weight() const;

    /** Nominal pack voltage (3.7 V/cell). */
    Quantity<Volts> nominalVoltage() const;

    /** Stored energy at nominal voltage. */
    Quantity<WattHours> energyWh() const;

    /** Maximum continuous discharge current. */
    Quantity<Amperes> maxContinuousCurrentA() const;
};

/** Smallest and largest cell counts covered by the survey. */
inline constexpr int kMinCells = 1;
inline constexpr int kMaxCells = 6;

/**
 * Published capacity->weight fit for a given cell count
 * (Figure 7 legend, e.g. 6S: y = 0.116x + 159.117).
 */
LinearFit paperBatteryFit(int cells);

/**
 * Weight of the lightest commercial pack of the given capacity and
 * cell count, from the published fit.
 */
Quantity<Grams> batteryWeightG(int cells, Quantity<MilliampHours> capacity);

/**
 * Battery capacity reachable at a given pack weight for a cell
 * count (the fit inverted); returns 0 when the weight is below the
 * fit's intercept.
 */
Quantity<MilliampHours> batteryCapacityAtWeight(int cells,
                                                Quantity<Grams> weight);

/**
 * Synthesize a catalog of commercial packs scattered around the
 * published fits.
 *
 * @param rng Seeded generator (catalog is deterministic per seed).
 * @param packs_per_config Packs per cell count (default gives ~250
 *        packs in total, matching the paper's survey size).
 */
std::vector<BatteryRecord>
generateBatteryCatalog(Rng &rng, int packs_per_config = 42);

/**
 * Re-fit capacity vs weight from catalog entries of one cell count.
 * Used by tests/benches to confirm the survey pipeline reproduces
 * the published coefficients.
 */
LinearFit fitBatteryCatalog(const std::vector<BatteryRecord> &catalog,
                            int cells);

} // namespace dronedse

#endif // DRONEDSE_COMPONENTS_BATTERY_HH
