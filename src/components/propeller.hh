/**
 * @file
 * Propeller records: geometry and weight.
 *
 * The paper sets the propeller to the largest size the frame
 * wheelbase allows (Section 3.1); weight scales roughly with blade
 * area, so quadratically with diameter.
 */

#ifndef DRONEDSE_COMPONENTS_PROPELLER_HH
#define DRONEDSE_COMPONENTS_PROPELLER_HH

#include <string>

#include "util/quantity.hh"

namespace dronedse {

/** One propeller model. */
struct PropellerRecord
{
    std::string name;
    /** Blade tip-to-tip diameter (inches). */
    double diameterIn = 0.0;
    /** Blade pitch (inches of advance per revolution). */
    double pitchIn = 0.0;
    /** Weight of a single propeller (g). */
    double weightG = 0.0;
};

/**
 * Propeller sized for a given diameter: pitch is ~45 % of diameter
 * (typical multirotor props such as the 1045), weight scales with
 * blade area.
 */
PropellerRecord makePropeller(Quantity<Inches> diameter);

/** Weight of a set of four propellers of the given diameter. */
Quantity<Grams> propellerSetWeightG(Quantity<Inches> diameter);

} // namespace dronedse

#endif // DRONEDSE_COMPONENTS_PROPELLER_HH
