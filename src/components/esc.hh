/**
 * @file
 * Electronic speed controller records and weight model
 * (paper Figure 8a).
 *
 * The paper surveys 40 commercial ESCs and fits the total weight of
 * a set of four ESCs against the max continuous current per ESC,
 * split into long-flight designs (heavier MOSFETs/capacitors) and
 * short-flight racing designs that overheat in longer flights.
 */

#ifndef DRONEDSE_COMPONENTS_ESC_HH
#define DRONEDSE_COMPONENTS_ESC_HH

#include <string>
#include <vector>

#include "util/quantity.hh"
#include "util/regression.hh"
#include "util/rng.hh"

namespace dronedse {

/** Market segment an ESC design targets. */
enum class EscClass
{
    /** Racing ESCs: light, overheat after ~5 minutes. */
    ShortFlight,
    /** General-purpose ESCs sized for sustained flight. */
    LongFlight,
};

/** One commercial ESC model. */
struct EscRecord
{
    std::string name;
    EscClass escClass = EscClass::LongFlight;
    /** Max continuous current per ESC (A). */
    double maxCurrentA = 0.0;
    /** Weight of a set of four ESCs (g), as surveyed in Figure 8a. */
    double weight4xG = 0.0;
};

/**
 * Published current -> 4x-ESC-weight fit (Figure 8a legend:
 * long flight y = 4.9678x - 15.757; short y = 1.2269x + 11.816).
 */
LinearFit paperEscFit(EscClass esc_class);

/**
 * Weight of four ESCs rated for the given per-ESC continuous
 * current, from the published fit (clamped to be non-negative).
 */
Quantity<Grams> escSetWeightG(Quantity<Amperes> max_current,
                              EscClass esc_class = EscClass::LongFlight);

/** Synthesize a catalog of ~40 ESCs scattered around the fits. */
std::vector<EscRecord> generateEscCatalog(Rng &rng, int per_class = 20);

/** Re-fit current vs weight from catalog entries of one class. */
LinearFit fitEscCatalog(const std::vector<EscRecord> &catalog,
                        EscClass esc_class);

} // namespace dronedse

#endif // DRONEDSE_COMPONENTS_ESC_HH
