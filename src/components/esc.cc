#include "components/esc.hh"

#include <algorithm>

namespace dronedse {

LinearFit
paperEscFit(EscClass esc_class)
{
    LinearFit fit;
    if (esc_class == EscClass::LongFlight) {
        fit.slope = 4.9678;
        fit.intercept = -15.757;
    } else {
        fit.slope = 1.2269;
        fit.intercept = 11.816;
    }
    fit.rSquared = 1.0;
    return fit;
}

Quantity<Grams>
escSetWeightG(Quantity<Amperes> max_current, EscClass esc_class)
{
    const double w = paperEscFit(esc_class).at(max_current.value());
    // Tiny ESCs bottom out around 10 g for the set of four.
    return Quantity<Grams>(std::max(w, 10.0));
}

std::vector<EscRecord>
generateEscCatalog(Rng &rng, int per_class)
{
    std::vector<EscRecord> catalog;
    catalog.reserve(static_cast<std::size_t>(per_class) * 2);

    for (EscClass cls : {EscClass::LongFlight, EscClass::ShortFlight}) {
        const LinearFit fit = paperEscFit(cls);
        for (int i = 0; i < per_class; ++i) {
            EscRecord rec;
            rec.escClass = cls;
            rec.maxCurrentA = rng.uniform(10.0, 90.0);
            rec.weight4xG = std::max(
                fit.at(rec.maxCurrentA) * (1.0 + rng.gaussian(0.0, 0.05)),
                10.0);
            rec.name = std::string(cls == EscClass::LongFlight ? "LF" : "SF") +
                       "-ESC-" +
                       std::to_string(static_cast<int>(rec.maxCurrentA)) +
                       "A";
            catalog.push_back(rec);
        }
    }
    return catalog;
}

LinearFit
fitEscCatalog(const std::vector<EscRecord> &catalog, EscClass esc_class)
{
    std::vector<double> xs, ys;
    for (const auto &rec : catalog) {
        if (rec.escClass == esc_class) {
            xs.push_back(rec.maxCurrentA);
            ys.push_back(rec.weight4xG);
        }
    }
    return fitLinear(xs, ys);
}

} // namespace dronedse
