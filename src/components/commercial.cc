#include "components/commercial.hh"

#include "physics/loads.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace dronedse {

Quantity<Watts>
CommercialDrone::impliedHoverPowerW() const
{
    return ((batteryEnergy() * kLipoDrainLimit) / flightTime())
        .to<Watts>();
}

Quantity<Watts>
CommercialDrone::impliedManeuverPowerW() const
{
    return impliedHoverPowerW() * kManeuverLoadFraction /
           kHoverLoadFraction;
}

const std::vector<CommercialDrone> &
commercialDroneTable()
{
    // Values from the manufacturers' published spec sheets as cited
    // in the paper [33, 52-56, 69, 70].
    static const std::vector<CommercialDrone> table = {
        // Figure 10a ("100 mm" small class) points.
        {"Parrot Anafi", SizeClass::Small, 320.0, 20.7, 25.0, true, 5.0},
        {"DJI SPARK", SizeClass::Small, 300.0, 16.9, 16.0, true, 6.0},
        {"DJI MAVIC", SizeClass::Small, 734.0, 43.6, 27.0, false, 7.0},
        {"DJI MAVIC Air", SizeClass::Small, 430.0, 27.4, 21.0, true,
         7.0},
        {"Parrot Bebop 2", SizeClass::Small, 500.0, 30.0, 25.0, true,
         6.5},
        {"SKYDIO 2", SizeClass::Small, 775.0, 45.2, 23.0, true, 12.0},
        // Figure 10b (450 mm class) points.  "Our Drone" is the
        // paper's open-source build (Figure 14 parts sum).
        {"Our Drone", SizeClass::Medium, 1071.0, 33.3, 15.0, false,
         4.56},
        {"DJI Phantom 4", SizeClass::Medium, 1380.0, 81.3, 28.0, false,
         8.0},
        // Figure 10c (800 mm class) points.
        {"DJI MATRICE", SizeClass::Large, 2355.0, 99.9, 22.0, false,
         10.0},
        // Figure 11 only.
        {"Parrot Mambo", SizeClass::Small, 63.0, 2.44, 9.0, true, 1.5},
    };
    return table;
}

std::vector<CommercialDrone>
commercialDronesInClass(SizeClass size_class)
{
    std::vector<CommercialDrone> out;
    for (const auto &d : commercialDroneTable())
        if (d.sizeClass == size_class)
            out.push_back(d);
    return out;
}

std::vector<CommercialDrone>
figure11Drones()
{
    std::vector<CommercialDrone> out;
    for (const auto &d : commercialDroneTable())
        if (d.inFigure11)
            out.push_back(d);
    return out;
}

const CommercialDrone &
findCommercialDrone(const std::string &name)
{
    for (const auto &d : commercialDroneTable())
        if (d.name == name)
            return d;
    fatal("findCommercialDrone: unknown drone '" + name + "'");
}

} // namespace dronedse
