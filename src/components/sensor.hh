/**
 * @file
 * External sensors (paper Table 4): FPV cameras and drone-optimized
 * LiDAR units.  State-of-the-art LiDARs are self-powered (they carry
 * their own battery and compute), so they add weight but no draw on
 * the main pack.
 */

#ifndef DRONEDSE_COMPONENTS_SENSOR_HH
#define DRONEDSE_COMPONENTS_SENSOR_HH

#include <string>
#include <vector>

#include "util/quantity.hh"

namespace dronedse {

/** Sensor category in Table 4. */
enum class SensorKind
{
    FpvCamera,
    Lidar,
};

/** One external sensor package. */
struct SensorRecord
{
    std::string name;
    SensorKind kind = SensorKind::FpvCamera;
    /** Weight (g). */
    double weightG = 0.0;
    /** Power draw (W). */
    double powerW = 0.0;
    /** True when the unit carries its own battery (Table 4 LiDARs). */
    bool selfPowered = false;

    /** Sensor weight as a typed quantity. */
    Quantity<Grams> weight() const { return Quantity<Grams>(weightG); }

    /** Power drawn from the drone's main pack. */
    Quantity<Watts> mainPackPowerW() const
    {
        return Quantity<Watts>(selfPowered ? 0.0 : powerW);
    }
};

/** The Table 4 external sensor database. */
const std::vector<SensorRecord> &sensorTable();

/** Look up a sensor by name; fatal() if absent. */
const SensorRecord &findSensor(const std::string &name);

} // namespace dronedse

#endif // DRONEDSE_COMPONENTS_SENSOR_HH
