#include "components/battery.hh"

#include <array>

#include "util/logging.hh"
#include "util/units.hh"

namespace dronedse {

Quantity<MilliampHours>
BatteryRecord::capacity() const
{
    return Quantity<MilliampHours>(capacityMah);
}

Quantity<Grams>
BatteryRecord::weight() const
{
    return Quantity<Grams>(weightG);
}

Quantity<Volts>
BatteryRecord::nominalVoltage() const
{
    return lipoPackVoltage(cells);
}

Quantity<WattHours>
BatteryRecord::energyWh() const
{
    return capacityToWattHours(capacity(), nominalVoltage());
}

Quantity<Amperes>
BatteryRecord::maxContinuousCurrentA() const
{
    // C rating multiplies the one-hour discharge current (C * Ah).
    return (capacity() * dischargeC / Quantity<Hours>(1.0))
        .to<Amperes>();
}

namespace {

/** Figure 7 legend coefficients, indexed by cells-1. */
constexpr std::array<std::pair<double, double>, 6> kPaperFits = {{
    {0.019, 4.856},   // 1S
    {0.050, 12.316},  // 2S
    {0.074, 16.935},  // 3S
    {0.077, 81.265},  // 4S
    {0.118, 45.478},  // 5S
    {0.116, 159.117}, // 6S
}};

void
checkCells(int cells)
{
    if (cells < kMinCells || cells > kMaxCells)
        fatal("battery: cell count must be in [1, 6], got " +
              std::to_string(cells));
}

} // namespace

LinearFit
paperBatteryFit(int cells)
{
    checkCells(cells);
    LinearFit fit;
    fit.slope = kPaperFits[cells - 1].first;
    fit.intercept = kPaperFits[cells - 1].second;
    fit.rSquared = 1.0;
    fit.samples = 0;
    return fit;
}

Quantity<Grams>
batteryWeightG(int cells, Quantity<MilliampHours> capacity)
{
    return Quantity<Grams>(paperBatteryFit(cells).at(capacity.value()));
}

Quantity<MilliampHours>
batteryCapacityAtWeight(int cells, Quantity<Grams> weight)
{
    const LinearFit fit = paperBatteryFit(cells);
    if (weight.value() <= fit.intercept)
        return Quantity<MilliampHours>(0.0);
    return Quantity<MilliampHours>((weight.value() - fit.intercept) /
                                   fit.slope);
}

std::vector<BatteryRecord>
generateBatteryCatalog(Rng &rng, int packs_per_config)
{
    std::vector<BatteryRecord> catalog;
    catalog.reserve(static_cast<std::size_t>(packs_per_config) * 6);

    for (int cells = kMinCells; cells <= kMaxCells; ++cells) {
        const LinearFit fit = paperBatteryFit(cells);
        // Typical commercial capacity range narrows for high-voltage
        // packs (few 1S packs above ~3 Ah, few 6S below ~1 Ah).
        const double cap_lo = cells <= 2 ? 150.0 : 800.0;
        const double cap_hi = cells <= 2 ? 3500.0 : 10000.0;
        for (int i = 0; i < packs_per_config; ++i) {
            BatteryRecord rec;
            rec.cells = cells;
            rec.capacityMah = rng.uniform(cap_lo, cap_hi);
            // Real packs scatter around the fit: manufacturing
            // variation plus heavier construction for higher C.
            rec.dischargeC = rng.uniform(20.0, 120.0);
            const double c_penalty = (rec.dischargeC - 20.0) / 100.0;
            const double noise = rng.gaussian(0.0, 0.03);
            rec.weightG = fit.at(rec.capacityMah) *
                          (1.0 + 0.04 * c_penalty + noise);
            rec.name = std::to_string(cells) + "S1P-" +
                       std::to_string(static_cast<int>(rec.capacityMah)) +
                       "mAh-" +
                       std::to_string(static_cast<int>(rec.dischargeC)) +
                       "C";
            catalog.push_back(rec);
        }
    }
    return catalog;
}

LinearFit
fitBatteryCatalog(const std::vector<BatteryRecord> &catalog, int cells)
{
    checkCells(cells);
    std::vector<double> xs, ys;
    for (const auto &rec : catalog) {
        if (rec.cells == cells) {
            xs.push_back(rec.capacityMah);
            ys.push_back(rec.weightG);
        }
    }
    return fitLinear(xs, ys);
}

} // namespace dronedse
