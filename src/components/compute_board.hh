/**
 * @file
 * Flight controllers and companion compute boards (paper Table 4).
 *
 * The paper splits controllers into "basic" boards (inner-loop only,
 * STM32F-class) and "improved" boards (customizable inner loop plus
 * outer-loop capability).  In the footprint analysis these are
 * abstracted to two power levels: a 3 W chip (basic) and a 20 W chip
 * (advanced CPU/GPU system).
 */

#ifndef DRONEDSE_COMPONENTS_COMPUTE_BOARD_HH
#define DRONEDSE_COMPONENTS_COMPUTE_BOARD_HH

#include <string>
#include <vector>

namespace dronedse {

/** Capability class of a compute board (paper Table 4 grouping). */
enum class BoardClass
{
    /** Inner-loop only, limited outer-loop capability. */
    Basic,
    /** Customizable inner loop plus outer-loop functions. */
    Improved,
};

/** One flight controller or companion computer. */
struct ComputeBoardRecord
{
    std::string name;
    BoardClass boardClass = BoardClass::Basic;
    /** Board weight (g). */
    double weightG = 0.0;
    /** Typical power draw (W). */
    double powerW = 0.0;
};

/** The Table 4 flight controller / compute board database. */
const std::vector<ComputeBoardRecord> &computeBoardTable();

/** Look up a board by name; fatal() if absent. */
const ComputeBoardRecord &findComputeBoard(const std::string &name);

/**
 * The paper's abstract "3 W chip" representing a commercial
 * ultra-low-power flight controller (Section 3.1).
 */
ComputeBoardRecord basicChip3W();

/**
 * The paper's abstract "20 W chip" representing a CPU-GPU system
 * with much higher capability (Section 3.1).
 */
ComputeBoardRecord advancedChip20W();

} // namespace dronedse

#endif // DRONEDSE_COMPONENTS_COMPUTE_BOARD_HH
