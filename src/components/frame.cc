#include "components/frame.hh"

#include <algorithm>
#include <array>

#include "util/logging.hh"

namespace dronedse {

LinearFit
paperFrameFit()
{
    LinearFit fit;
    fit.slope = 1.2767;
    fit.intercept = -167.6;
    fit.rSquared = 1.0;
    return fit;
}

Quantity<Grams>
frameWeightG(Quantity<Millimeters> wheelbase)
{
    const double wheelbase_mm = wheelbase.value();
    if (wheelbase_mm <= 0.0)
        fatal("frameWeightG: wheelbase must be positive");

    const LinearFit fit = paperFrameFit();
    if (wheelbase_mm > 200.0)
        return Quantity<Grams>(fit.at(wheelbase_mm));

    // Below 200 mm the survey shows a 50-200 g band rather than the
    // main fit; ramp linearly from 50 g at 50 mm to the fit value at
    // the 200 mm boundary so the model is continuous.
    const double boundary = fit.at(200.0);
    const double t = std::clamp((wheelbase_mm - 50.0) / 150.0, 0.0, 1.0);
    return Quantity<Grams>(50.0 + t * (boundary - 50.0));
}

Quantity<Inches>
maxPropDiameterIn(Quantity<Millimeters> wheelbase)
{
    const double wheelbase_mm = wheelbase.value();
    if (wheelbase_mm <= 0.0)
        fatal("maxPropDiameterIn: wheelbase must be positive");

    // Piecewise-linear through the Figure 9 wheelbase/prop pairings.
    constexpr std::array<std::pair<double, double>, 5> points = {{
        {50.0, 1.0}, {100.0, 2.0}, {200.0, 5.0}, {450.0, 10.0},
        {800.0, 20.0},
    }};

    if (wheelbase_mm <= points.front().first)
        return Quantity<Inches>(points.front().second * wheelbase_mm /
                                points.front().first);
    for (std::size_t i = 1; i < points.size(); ++i) {
        if (wheelbase_mm <= points[i].first) {
            const auto &[x0, y0] = points[i - 1];
            const auto &[x1, y1] = points[i];
            const double t = (wheelbase_mm - x0) / (x1 - x0);
            return Quantity<Inches>(y0 + t * (y1 - y0));
        }
    }
    // Extrapolate with the last segment's slope.
    const auto &[x0, y0] = points[points.size() - 2];
    const auto &[x1, y1] = points.back();
    return Quantity<Inches>(y1 + (wheelbase_mm - x1) * (y1 - y0) /
                            (x1 - x0));
}

std::vector<FrameRecord>
generateFrameCatalog(Rng &rng, int extra)
{
    // Named frames visible in Figure 8b.
    std::vector<FrameRecord> catalog = {
        {"220 Martian II", 220.0, 95.0},
        {"Crazepony F450", 450.0, 272.0},
        {"Readytosky S500", 500.0, 405.0},
        {"iFlight BumbleBee", 142.0, 86.0},
        {"Tarot T960", 960.0, 1060.0},
    };

    for (int i = 0; i < extra; ++i) {
        FrameRecord rec;
        rec.wheelbaseMm = rng.uniform(80.0, 1100.0);
        rec.weightG = std::max(
            frameWeightG(Quantity<Millimeters>(rec.wheelbaseMm)).value() *
                (1.0 + rng.gaussian(0.0, 0.08)),
            40.0);
        rec.name = "Frame-" +
                   std::to_string(static_cast<int>(rec.wheelbaseMm)) + "mm";
        catalog.push_back(rec);
    }
    return catalog;
}

LinearFit
fitFrameCatalog(const std::vector<FrameRecord> &catalog)
{
    std::vector<double> xs, ys;
    for (const auto &rec : catalog) {
        if (rec.wheelbaseMm > 200.0) {
            xs.push_back(rec.wheelbaseMm);
            ys.push_back(rec.weightG);
        }
    }
    return fitLinear(xs, ys);
}

} // namespace dronedse
