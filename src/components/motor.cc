#include "components/motor.hh"

#include "physics/propeller_aero.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace dronedse {

Quantity<Grams>
motorWeightG(Quantity<GramsForce> max_thrust)
{
    if (max_thrust.value() < 0.0)
        fatal("motorWeightG: thrust must be non-negative");
    // Stator mass scales with torque demand, which scales with max
    // thrust for a matched propeller.  Anchors: MT2213 (~55 g for
    // ~850 g thrust), 100 mm-class (~5 g), 1000 mm-class (~100 g).
    return Quantity<Grams>(2.0 + max_thrust.value() / 15.0);
}

MotorRecord
matchMotor(Quantity<GramsForce> required_thrust,
           Quantity<Inches> prop_diameter, Quantity<Volts> supply_voltage)
{
    if (required_thrust.value() <= 0.0)
        fatal("matchMotor: required thrust must be positive");

    MotorRecord rec;
    rec.maxThrustG = required_thrust.value();
    rec.propDiameterIn = prop_diameter.value();
    rec.kv = requiredKv(required_thrust, prop_diameter, supply_voltage);
    rec.maxCurrentA =
        motorCurrentA(required_thrust, prop_diameter, supply_voltage)
            .value();
    rec.weightG = motorWeightG(required_thrust).value();
    rec.name = "BLDC-" + std::to_string(static_cast<int>(rec.kv)) + "Kv-" +
               std::to_string(static_cast<int>(prop_diameter.value())) +
               "in";
    return rec;
}

std::vector<MotorRecord>
generateMotorCatalog(Rng &rng, int per_class)
{
    // Wheelbase classes and their prop diameters, as in Figure 9.
    struct ClassSpec { double prop_in; double thrust_lo; double thrust_hi; };
    const ClassSpec classes[] = {
        {1.0, 20.0, 300.0},    // 50 mm
        {2.0, 50.0, 800.0},    // 100 mm
        {5.0, 100.0, 1600.0},  // 200 mm
        {10.0, 300.0, 2500.0}, // 450 mm
        {20.0, 800.0, 6000.0}, // 800 mm
    };

    std::vector<MotorRecord> catalog;
    catalog.reserve(sizeof(classes) / sizeof(classes[0]) *
                    static_cast<std::size_t>(per_class));
    for (const auto &cls : classes) {
        for (int i = 0; i < per_class; ++i) {
            const Quantity<GramsForce> thrust(
                rng.uniform(cls.thrust_lo, cls.thrust_hi));
            const int cells = static_cast<int>(rng.uniformInt(1, 6));
            MotorRecord rec = matchMotor(
                thrust, Quantity<Inches>(cls.prop_in),
                lipoPackVoltage(cells));
            // Manufacturing spread around the ideal match.
            rec.weightG *= 1.0 + rng.gaussian(0.0, 0.08);
            rec.kv *= 1.0 + rng.gaussian(0.0, 0.05);
            catalog.push_back(rec);
        }
    }
    return catalog;
}

} // namespace dronedse
