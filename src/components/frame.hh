/**
 * @file
 * Quadcopter frame records and weight model (paper Figure 8b).
 *
 * The paper surveys 25 commercial frames and fits weight against
 * wheelbase: y = 1.2767x - 167.6 for wheelbases above 200 mm, with
 * small frames occupying a 50-200 g band below that.  The wheelbase
 * also caps the propeller diameter a drone can swing.
 */

#ifndef DRONEDSE_COMPONENTS_FRAME_HH
#define DRONEDSE_COMPONENTS_FRAME_HH

#include <string>
#include <vector>

#include "util/quantity.hh"
#include "util/regression.hh"
#include "util/rng.hh"

namespace dronedse {

/** One commercial quadcopter frame. */
struct FrameRecord
{
    std::string name;
    /** Diagonal motor-to-motor distance (mm). */
    double wheelbaseMm = 0.0;
    /** Frame weight (g). */
    double weightG = 0.0;
};

/** Published wheelbase -> weight fit for frames above 200 mm. */
LinearFit paperFrameFit();

/**
 * Frame weight at a given wheelbase: the published fit above
 * 200 mm, a linear ramp through the paper's 50-200 g band below it.
 */
Quantity<Grams> frameWeightG(Quantity<Millimeters> wheelbase);

/**
 * Largest propeller diameter a frame of the given wheelbase can
 * swing.  Matches the Figure 9 pairings: 50 mm -> 1", 100 mm ->
 * 2", 200 mm -> 5", 450 mm -> 10", 800 mm -> 20".
 */
Quantity<Inches> maxPropDiameterIn(Quantity<Millimeters> wheelbase);

/**
 * Synthesize a catalog of ~25 frames, including the named frames in
 * Figure 8b (220 Martian II, Crazepony F450, Readytosky S500,
 * iFlight BumbleBee, Tarot T960).
 */
std::vector<FrameRecord> generateFrameCatalog(Rng &rng, int extra = 20);

/** Re-fit wheelbase vs weight from catalog frames above 200 mm. */
LinearFit fitFrameCatalog(const std::vector<FrameRecord> &catalog);

} // namespace dronedse

#endif // DRONEDSE_COMPONENTS_FRAME_HH
