/**
 * @file
 * Commercial drone validation database.
 *
 * The paper overlays published spec-sheet values for commercial
 * drones on its model output (diamond points in Figure 10) and
 * studies nano/micro consumer drones in Figure 11.  This database
 * carries those literature values: all-up weight, battery energy,
 * advertised flight time, and the size class each point is plotted
 * in.
 */

#ifndef DRONEDSE_COMPONENTS_COMMERCIAL_HH
#define DRONEDSE_COMPONENTS_COMMERCIAL_HH

#include <string>
#include <vector>

#include "util/quantity.hh"

namespace dronedse {

/** Size class a commercial drone is plotted against in Figure 10. */
enum class SizeClass
{
    /** Small folding consumer drones (Figure 10a, "100 mm" class). */
    Small,
    /** 450 mm-class (Figure 10b). */
    Medium,
    /** 800 mm-class (Figure 10c). */
    Large,
};

/** Published spec-sheet values for one commercial drone. */
struct CommercialDrone
{
    std::string name;
    SizeClass sizeClass = SizeClass::Small;
    /** All-up weight including battery (g). */
    double weightG = 0.0;
    /** Battery energy (Wh) from the spec sheet. */
    double batteryWh = 0.0;
    /** Advertised hover flight time (min). */
    double flightTimeMin = 0.0;
    /** True for the nano/micro drones studied in Figure 11. */
    bool inFigure11 = false;
    /**
     * Estimated heavy-computation power (W) when running SLAM /
     * recognition / HD video (Figure 11's yellow series).  Anchored
     * to the paper's RPi measurement (4.56 W average for autopilot +
     * SLAM, Section 5.1) and each platform's known compute stack
     * (e.g. Skydio 2 carries a Jetson TX2).
     */
    double heavyComputeW = 0.0;

    /** All-up weight as a typed quantity. */
    Quantity<Grams> weight() const { return Quantity<Grams>(weightG); }

    /** Spec-sheet battery energy as a typed quantity. */
    Quantity<WattHours> batteryEnergy() const
    {
        return Quantity<WattHours>(batteryWh);
    }

    /** Advertised hover flight time as a typed quantity. */
    Quantity<Minutes> flightTime() const
    {
        return Quantity<Minutes>(flightTimeMin);
    }

    /**
     * Average hover power implied by the spec sheet: usable energy
     * over advertised flight time.
     */
    Quantity<Watts> impliedHoverPowerW() const;

    /** Maneuvering power estimate (paper's 60-70 % vs 20-30 % load). */
    Quantity<Watts> impliedManeuverPowerW() const;
};

/** All commercial validation points used in Figures 10 and 11. */
const std::vector<CommercialDrone> &commercialDroneTable();

/** Subset plotted in a given Figure 10 panel. */
std::vector<CommercialDrone> commercialDronesInClass(SizeClass size_class);

/** The nano/micro drones of Figure 11. */
std::vector<CommercialDrone> figure11Drones();

/** Look up a drone by name; fatal() if absent. */
const CommercialDrone &findCommercialDrone(const std::string &name);

} // namespace dronedse

#endif // DRONEDSE_COMPONENTS_COMMERCIAL_HH
