/**
 * @file
 * Flying-load model (%FlyingLoad in Equation 3).
 *
 * The paper expresses average propulsion power as a fraction of the
 * maximum current draw: 20-30 % for low-load hovering, 60-70 % when
 * maneuvering (Section 3.2).
 */

#ifndef DRONEDSE_PHYSICS_LOADS_HH
#define DRONEDSE_PHYSICS_LOADS_HH

namespace dronedse {

/** Flight activity regimes used by the footprint analysis. */
enum class FlightActivity
{
    Hovering,
    Maneuvering,
};

/** Centre of the paper's hover band (20-30 % of max draw). */
inline constexpr double kHoverLoadFraction = 0.30;

/** Centre of the paper's maneuver band (60-70 % of max draw). */
inline constexpr double kManeuverLoadFraction = 0.65;

/** Load fraction for an activity regime. */
constexpr double
flyingLoadFraction(FlightActivity activity)
{
    return activity == FlightActivity::Hovering ? kHoverLoadFraction
                                                : kManeuverLoadFraction;
}

} // namespace dronedse

#endif // DRONEDSE_PHYSICS_LOADS_HH
