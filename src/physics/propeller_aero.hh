/**
 * @file
 * Propeller aerodynamics: the standard non-dimensional thrust/power
 * coefficient model.
 *
 *   thrust = Ct * rho * n^2 * D^4      (N, n in rev/s, D in m)
 *   power  = Cp * rho * n^3 * D^5      (W, shaft power)
 *
 * Coefficients are calibrated so an MT2213-class motor with a 10x4.5
 * propeller on 3S reproduces its published max thrust (~850 g) and
 * electrical power (~160 W), and so the paper's 450 mm drone hovers
 * near its measured 130 W (Figure 16b).
 */

#ifndef DRONEDSE_PHYSICS_PROPELLER_AERO_HH
#define DRONEDSE_PHYSICS_PROPELLER_AERO_HH

#include "util/quantity.hh"

namespace dronedse {

/** Thrust coefficient for typical multirotor props (pitch ~0.45 D). */
inline constexpr double kThrustCoefficient = 0.09;

/** Power coefficient for the same propeller family. */
inline constexpr double kPowerCoefficient = 0.05;

/** Electrical-to-shaft efficiency of a BLDC motor + ESC pair. */
inline constexpr double kMotorEfficiency = 0.75;

/**
 * Fraction of the no-load speed (Kv * V) a loaded propeller actually
 * reaches at full throttle.
 */
inline constexpr double kLoadedRpmFraction = 0.75;

/** Thrust of a propeller at rotation rate `n`, diameter `d`. */
Quantity<Newtons> propThrustN(Quantity<RevPerSec> n, Quantity<Meters> d);

/** Thrust in grams-force. */
Quantity<GramsForce> propThrustG(Quantity<RevPerSec> n,
                                 Quantity<Meters> d);

/** Shaft power at rotation rate `n`, diameter `d`. */
Quantity<Watts> propShaftPowerW(Quantity<RevPerSec> n,
                                Quantity<Meters> d);

/** Rotation speed needed to produce a thrust with a given prop. */
Quantity<RevPerSec> revsForThrust(Quantity<GramsForce> thrust,
                                  Quantity<Inches> d);

/** Rotation speed in RPM needed to produce a thrust. */
Quantity<Rpm> rpmForThrust(Quantity<GramsForce> thrust,
                           Quantity<Inches> d);

/**
 * Electrical power a motor draws to produce `thrust` with a
 * `d`-diameter propeller.
 */
Quantity<Watts> electricalPowerW(Quantity<GramsForce> thrust,
                                 Quantity<Inches> d);

/**
 * Motor current to produce `thrust` with a `d`-diameter propeller at
 * the given supply voltage.
 */
Quantity<Amperes> motorCurrentA(Quantity<GramsForce> thrust,
                                Quantity<Inches> d,
                                Quantity<Volts> voltage);

/**
 * Kv rating (RPM/V) a motor needs so that its loaded full-throttle
 * speed produces `thrust` with a `d`-diameter propeller at the given
 * supply voltage.
 */
double requiredKv(Quantity<GramsForce> thrust, Quantity<Inches> d,
                  Quantity<Volts> voltage);

} // namespace dronedse

#endif // DRONEDSE_PHYSICS_PROPELLER_AERO_HH
