/**
 * @file
 * Propeller aerodynamics: the standard non-dimensional thrust/power
 * coefficient model.
 *
 *   thrust = Ct * rho * n^2 * D^4      (N, n in rev/s, D in m)
 *   power  = Cp * rho * n^3 * D^5      (W, shaft power)
 *
 * Coefficients are calibrated so an MT2213-class motor with a 10x4.5
 * propeller on 3S reproduces its published max thrust (~850 g) and
 * electrical power (~160 W), and so the paper's 450 mm drone hovers
 * near its measured 130 W (Figure 16b).
 */

#ifndef DRONEDSE_PHYSICS_PROPELLER_AERO_HH
#define DRONEDSE_PHYSICS_PROPELLER_AERO_HH

namespace dronedse {

/** Thrust coefficient for typical multirotor props (pitch ~0.45 D). */
inline constexpr double kThrustCoefficient = 0.09;

/** Power coefficient for the same propeller family. */
inline constexpr double kPowerCoefficient = 0.05;

/** Electrical-to-shaft efficiency of a BLDC motor + ESC pair. */
inline constexpr double kMotorEfficiency = 0.75;

/**
 * Fraction of the no-load speed (Kv * V) a loaded propeller actually
 * reaches at full throttle.
 */
inline constexpr double kLoadedRpmFraction = 0.75;

/** Thrust (N) of a propeller at n rev/s with diameter d_m metres. */
double propThrustN(double n_rev_s, double d_m);

/** Thrust in grams-force. */
double propThrustG(double n_rev_s, double d_m);

/** Shaft power (W) at n rev/s with diameter d_m metres. */
double propShaftPowerW(double n_rev_s, double d_m);

/** Rotation speed (rev/s) needed to produce a thrust in grams. */
double revsForThrust(double thrust_g, double d_in);

/** Rotation speed in RPM needed to produce a thrust in grams. */
double rpmForThrust(double thrust_g, double d_in);

/**
 * Electrical power (W) a motor draws to produce `thrust_g` grams of
 * thrust with a `d_in`-inch propeller.
 */
double electricalPowerW(double thrust_g, double d_in);

/**
 * Motor current (A) to produce `thrust_g` grams of thrust with a
 * `d_in`-inch propeller at the given supply voltage.
 */
double motorCurrentA(double thrust_g, double d_in, double voltage);

/**
 * Kv rating (RPM/V) a motor needs so that its loaded full-throttle
 * speed produces `thrust_g` grams with a `d_in`-inch propeller at
 * the given supply voltage.
 */
double requiredKv(double thrust_g, double d_in, double voltage);

} // namespace dronedse

#endif // DRONEDSE_PHYSICS_PROPELLER_AERO_HH
