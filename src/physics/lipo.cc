#include "physics/lipo.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/units.hh"

namespace dronedse {

double
usableEnergyWh(double capacity_mah, double voltage)
{
    return capacityToWattHours(capacity_mah, voltage) * kLipoDrainLimit *
           kPowerDeliveryEfficiency;
}

LipoPack::LipoPack(int cells, double capacity_mah)
    : cells_(cells), capacityMah_(capacity_mah)
{
    if (cells < 1 || cells > 12)
        fatal("LipoPack: cell count out of range");
    if (capacity_mah <= 0.0)
        fatal("LipoPack: capacity must be positive");
}

double
LipoPack::nominalVoltage() const
{
    return cells_ * kLipoCellVoltage;
}

double
LipoPack::terminalVoltage() const
{
    // 4.2 V/cell full, ~3.3 V/cell at the drain limit; linear in SoC.
    const double per_cell = 3.3 + (4.2 - 3.3) * soc_;
    return cells_ * per_cell;
}

bool
LipoPack::depleted() const
{
    return soc_ <= 1.0 - kLipoDrainLimit;
}

void
LipoPack::discharge(double power_w, double dt_s)
{
    if (power_w < 0.0 || dt_s < 0.0)
        fatal("LipoPack::discharge: negative power or time");
    const double drawn = power_w * dt_s / 3600.0; // Wh
    drawn_wh_ += drawn;
    soc_ = std::max(0.0, soc_ - drawn / totalEnergyWh());
}

double
LipoPack::totalEnergyWh() const
{
    return capacityToWattHours(capacityMah_, nominalVoltage());
}

} // namespace dronedse
