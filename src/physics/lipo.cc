#include "physics/lipo.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/units.hh"

namespace dronedse {

Quantity<WattHours>
usableEnergyWh(Quantity<MilliampHours> capacity, Quantity<Volts> voltage)
{
    return capacityToWattHours(capacity, voltage) * kLipoDrainLimit *
           kPowerDeliveryEfficiency;
}

LipoPack::LipoPack(int cells, Quantity<MilliampHours> capacity)
    : cells_(cells), capacity_(capacity)
{
    if (cells < 1 || cells > 12)
        fatal("LipoPack: cell count out of range");
    if (capacity.value() <= 0.0)
        fatal("LipoPack: capacity must be positive");
}

Quantity<Volts>
LipoPack::nominalVoltage() const
{
    return lipoPackVoltage(cells_);
}

Quantity<Volts>
LipoPack::terminalVoltage() const
{
    // 4.2 V/cell full, ~3.3 V/cell at the drain limit; linear in SoC.
    const double per_cell = 3.3 + (4.2 - 3.3) * soc_;
    return Quantity<Volts>(cells_ * per_cell);
}

bool
LipoPack::depleted() const
{
    return soc_ <= 1.0 - kLipoDrainLimit;
}

void
LipoPack::discharge(Quantity<Watts> power, Quantity<Seconds> dt)
{
    if (power.value() < 0.0 || dt.value() < 0.0)
        fatal("LipoPack::discharge: negative power or time");
    const Quantity<WattHours> drawn = (power * dt).to<WattHours>();
    drawn_ += drawn;
    soc_ = std::max(0.0, soc_ - drawn / totalEnergyWh());
}

Quantity<WattHours>
LipoPack::totalEnergyWh() const
{
    return capacityToWattHours(capacity_, nominalVoltage());
}

} // namespace dronedse
