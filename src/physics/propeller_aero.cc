#include "physics/propeller_aero.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/units.hh"

namespace dronedse {

double
propThrustN(double n_rev_s, double d_m)
{
    return kThrustCoefficient * kAirDensity * n_rev_s * n_rev_s *
           d_m * d_m * d_m * d_m;
}

double
propThrustG(double n_rev_s, double d_m)
{
    return propThrustN(n_rev_s, d_m) * kGramsPerNewton;
}

double
propShaftPowerW(double n_rev_s, double d_m)
{
    return kPowerCoefficient * kAirDensity * n_rev_s * n_rev_s * n_rev_s *
           d_m * d_m * d_m * d_m * d_m;
}

double
revsForThrust(double thrust_g, double d_in)
{
    if (thrust_g < 0.0 || d_in <= 0.0)
        fatal("revsForThrust: invalid thrust or diameter");
    const double d_m = inchesToMeters(d_in);
    const double thrust_n = thrust_g / kGramsPerNewton;
    const double denom =
        kThrustCoefficient * kAirDensity * d_m * d_m * d_m * d_m;
    return std::sqrt(thrust_n / denom);
}

double
rpmForThrust(double thrust_g, double d_in)
{
    return revPerSecToRpm(revsForThrust(thrust_g, d_in));
}

double
electricalPowerW(double thrust_g, double d_in)
{
    const double n = revsForThrust(thrust_g, d_in);
    const double d_m = inchesToMeters(d_in);
    return propShaftPowerW(n, d_m) / kMotorEfficiency;
}

double
motorCurrentA(double thrust_g, double d_in, double voltage)
{
    if (voltage <= 0.0)
        fatal("motorCurrentA: voltage must be positive");
    return electricalPowerW(thrust_g, d_in) / voltage;
}

double
requiredKv(double thrust_g, double d_in, double voltage)
{
    if (voltage <= 0.0)
        fatal("requiredKv: voltage must be positive");
    return rpmForThrust(thrust_g, d_in) / (kLoadedRpmFraction * voltage);
}

} // namespace dronedse
