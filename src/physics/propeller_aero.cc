#include "physics/propeller_aero.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/units.hh"

namespace dronedse {

Quantity<Newtons>
propThrustN(Quantity<RevPerSec> n, Quantity<Meters> d)
{
    const double n_rev_s = n.value();
    const double d_m = d.value();
    return Quantity<Newtons>(kThrustCoefficient * kAirDensity * n_rev_s *
                             n_rev_s * d_m * d_m * d_m * d_m);
}

Quantity<GramsForce>
propThrustG(Quantity<RevPerSec> n, Quantity<Meters> d)
{
    return propThrustN(n, d).to<GramsForce>();
}

Quantity<Watts>
propShaftPowerW(Quantity<RevPerSec> n, Quantity<Meters> d)
{
    const double n_rev_s = n.value();
    const double d_m = d.value();
    return Quantity<Watts>(kPowerCoefficient * kAirDensity * n_rev_s *
                           n_rev_s * n_rev_s * d_m * d_m * d_m * d_m *
                           d_m);
}

Quantity<RevPerSec>
revsForThrust(Quantity<GramsForce> thrust, Quantity<Inches> d)
{
    if (thrust.value() < 0.0 || d.value() <= 0.0)
        fatal("revsForThrust: invalid thrust or diameter");
    const double d_m = inchesToMeters(d).value();
    const double thrust_n = thrust.to<Newtons>().value();
    const double denom =
        kThrustCoefficient * kAirDensity * d_m * d_m * d_m * d_m;
    return Quantity<RevPerSec>(std::sqrt(thrust_n / denom));
}

Quantity<Rpm>
rpmForThrust(Quantity<GramsForce> thrust, Quantity<Inches> d)
{
    return revPerSecToRpm(revsForThrust(thrust, d));
}

Quantity<Watts>
electricalPowerW(Quantity<GramsForce> thrust, Quantity<Inches> d)
{
    const Quantity<RevPerSec> n = revsForThrust(thrust, d);
    return propShaftPowerW(n, inchesToMeters(d)) / kMotorEfficiency;
}

Quantity<Amperes>
motorCurrentA(Quantity<GramsForce> thrust, Quantity<Inches> d,
              Quantity<Volts> voltage)
{
    if (voltage.value() <= 0.0)
        fatal("motorCurrentA: voltage must be positive");
    return (electricalPowerW(thrust, d) / voltage).to<Amperes>();
}

double
requiredKv(Quantity<GramsForce> thrust, Quantity<Inches> d,
           Quantity<Volts> voltage)
{
    if (voltage.value() <= 0.0)
        fatal("requiredKv: voltage must be positive");
    return rpmForThrust(thrust, d).value() /
           (kLoadedRpmFraction * voltage.value());
}

} // namespace dronedse
