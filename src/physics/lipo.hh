/**
 * @file
 * LiPo battery electrical behaviour: usable energy, state of charge,
 * and voltage sag under load.  Used by the DSE flight-time equations
 * and the power-trace simulation.
 */

#ifndef DRONEDSE_PHYSICS_LIPO_HH
#define DRONEDSE_PHYSICS_LIPO_HH

#include "util/quantity.hh"

namespace dronedse {

/** Power-delivery efficiency (wiring, PDB, ESC switching losses). */
inline constexpr double kPowerDeliveryEfficiency = 0.95;

/**
 * Usable energy of a pack: nominal energy derated by the
 * LiPoDrainLimit (85 %, paper Section 2.1.2) and power-delivery
 * efficiency (%PowerEff in Equation 4).
 */
Quantity<WattHours> usableEnergyWh(Quantity<MilliampHours> capacity,
                                   Quantity<Volts> voltage);

/**
 * Stateful pack for time-domain simulation: integrates energy draw
 * and reports state of charge and sagged terminal voltage.
 */
class LipoPack
{
  public:
    /** Construct a pack of `cells` cells and the given capacity. */
    LipoPack(int cells, Quantity<MilliampHours> capacity);

    /** Nominal voltage (3.7 V/cell). */
    Quantity<Volts> nominalVoltage() const;

    /**
     * Terminal voltage under the present state of charge: full packs
     * sit ~14 % above nominal, empty packs ~11 % below.
     */
    Quantity<Volts> terminalVoltage() const;

    /** Remaining fraction of total capacity in [0, 1]. */
    double stateOfCharge() const { return soc_; }

    /** True once the pack has reached the safe drain limit. */
    bool depleted() const;

    /**
     * Draw `power` for `dt`; state of charge never goes below zero.
     */
    void discharge(Quantity<Watts> power, Quantity<Seconds> dt);

    /** Total nominal energy. */
    Quantity<WattHours> totalEnergyWh() const;

    /** Energy drawn so far. */
    Quantity<WattHours> drawnEnergyWh() const { return drawn_; }

  private:
    int cells_;
    Quantity<MilliampHours> capacity_;
    double soc_ = 1.0;
    Quantity<WattHours> drawn_;
};

} // namespace dronedse

#endif // DRONEDSE_PHYSICS_LIPO_HH
