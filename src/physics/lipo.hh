/**
 * @file
 * LiPo battery electrical behaviour: usable energy, state of charge,
 * and voltage sag under load.  Used by the DSE flight-time equations
 * and the power-trace simulation.
 */

#ifndef DRONEDSE_PHYSICS_LIPO_HH
#define DRONEDSE_PHYSICS_LIPO_HH

namespace dronedse {

/** Power-delivery efficiency (wiring, PDB, ESC switching losses). */
inline constexpr double kPowerDeliveryEfficiency = 0.95;

/**
 * Usable energy (Wh) of a pack: nominal energy derated by the
 * LiPoDrainLimit (85 %, paper Section 2.1.2) and power-delivery
 * efficiency (%PowerEff in Equation 4).
 */
double usableEnergyWh(double capacity_mah, double voltage);

/**
 * Stateful pack for time-domain simulation: integrates energy draw
 * and reports state of charge and sagged terminal voltage.
 */
class LipoPack
{
  public:
    /** Construct a pack of `cells` cells and `capacity_mah` mAh. */
    LipoPack(int cells, double capacity_mah);

    /** Nominal voltage (3.7 V/cell). */
    double nominalVoltage() const;

    /**
     * Terminal voltage under the present state of charge: full packs
     * sit ~14 % above nominal, empty packs ~11 % below.
     */
    double terminalVoltage() const;

    /** Remaining fraction of total capacity in [0, 1]. */
    double stateOfCharge() const { return soc_; }

    /** True once the pack has reached the safe drain limit. */
    bool depleted() const;

    /**
     * Draw `power_w` watts for `dt_s` seconds; state of charge never
     * goes below zero.
     */
    void discharge(double power_w, double dt_s);

    /** Total nominal energy (Wh). */
    double totalEnergyWh() const;

    /** Energy drawn so far (Wh). */
    double drawnEnergyWh() const { return drawn_wh_; }

  private:
    int cells_;
    double capacityMah_;
    double soc_ = 1.0;
    double drawn_wh_ = 0.0;
};

} // namespace dronedse

#endif // DRONEDSE_PHYSICS_LIPO_HH
