/**
 * @file
 * The Figure 12 quantification procedure as a fluent public API.
 *
 * DroneDesigner walks the paper's flow: pick a frame for the
 * application, add sensors/compute/payload, size the battery, close
 * the weight loop, and report flight time, the computation power
 * footprint, and the flight time gained by a compute optimization.
 */

#ifndef DRONEDSE_CORE_DESIGNER_HH
#define DRONEDSE_CORE_DESIGNER_HH

#include <optional>
#include <string>

#include "components/commercial.hh"
#include "components/sensor.hh"
#include "dse/design_point.hh"

namespace dronedse {

/** Rendered outcome of a design run. */
struct DesignReport
{
    DesignResult result;
    /** Compute power as % of total, hovering. */
    double computeFractionHover = 0.0;
    /** Compute power as % of total, maneuvering. */
    double computeFractionManeuver = 0.0;
    /** Flight time gained if compute power were fully eliminated. */
    Quantity<Minutes> maxComputeGainMin{};
    /** Closest commercial drone by weight, for validation. */
    std::string nearestCommercial;
    /** Weight distance to that drone. */
    Quantity<Grams> nearestCommercialDeltaG{};

    /** Multi-line human-readable summary. */
    std::string str() const;
};

/** Fluent builder over DesignInputs implementing Figure 12. */
class DroneDesigner
{
  public:
    DroneDesigner() = default;

    /** Start from an existing input set (e.g. a preset). */
    explicit DroneDesigner(DesignInputs inputs);

    DroneDesigner &wheelbase(Quantity<Millimeters> wheelbase_mm);
    DroneDesigner &battery(int cells,
                           Quantity<MilliampHours> capacity);
    DroneDesigner &twr(double ratio);
    DroneDesigner &escClass(EscClass esc_class);
    DroneDesigner &compute(const ComputeBoardRecord &board);
    /** Add an external sensor (Table 4 semantics: LiDARs self-power). */
    DroneDesigner &sensor(const SensorRecord &record);
    DroneDesigner &payload(Quantity<Grams> grams);
    DroneDesigner &activity(FlightActivity activity);
    /** Override the propeller instead of the wheelbase maximum. */
    DroneDesigner &propeller(Quantity<Inches> diameter);

    /** Current inputs (for inspection or sweeps). */
    const DesignInputs &inputs() const { return inputs_; }

    /** Solve the design point (Equations 1-6). */
    DesignResult design() const;

    /**
     * Solve and assemble the full report, including both activity
     * regimes and the commercial comparison (Figure 12's "compare
     * with commercial drones" step).
     */
    DesignReport report() const;

  private:
    DesignInputs inputs_;
};

} // namespace dronedse

#endif // DRONEDSE_CORE_DESIGNER_HH
