#include "core/designer.hh"

#include <cmath>
#include <limits>

#include "dse/footprint.hh"
#include "dse/weight_closure.hh"
#include "engine/engine.hh"
#include "util/table.hh"

namespace dronedse {

std::string
DesignReport::str() const
{
    std::string out;
    out += "Design: " + fmt(result.inputs.wheelbaseMm.value(), 0) +
           " mm wheelbase, " + std::to_string(result.inputs.cells) +
           "S " + fmt(result.inputs.capacityMah.value(), 0) + " mAh\n";
    if (!result.feasible) {
        out += "  INFEASIBLE: " + result.infeasibleReason + "\n";
        return out;
    }
    out += "  all-up weight:    " + fmt(result.totalWeightG.value(), 0) +
           " g\n";
    out += "  motor:            " + result.motor.name + " (" +
           fmt(result.motorMaxCurrentA.value(), 1) + " A max)\n";
    out += "  avg power:        " + fmt(result.avgPowerW.value(), 1) +
           " W\n";
    out += "  flight time:      " +
           fmt(result.flightTimeMin.value(), 1) + " min\n";
    out += "  compute share:    " + fmtPercent(computeFractionHover) +
           " hover / " + fmtPercent(computeFractionManeuver) +
           " maneuver\n";
    out += "  max compute gain: +" + fmt(maxComputeGainMin.value(), 1) +
           " min\n";
    out += "  nearest commercial: " + nearestCommercial + " (" +
           fmt(nearestCommercialDeltaG.value(), 0) + " g away)\n";
    return out;
}

DroneDesigner::DroneDesigner(DesignInputs inputs)
    : inputs_(std::move(inputs))
{
}

DroneDesigner &
DroneDesigner::wheelbase(Quantity<Millimeters> wheelbase_mm)
{
    inputs_.wheelbaseMm = wheelbase_mm;
    return *this;
}

DroneDesigner &
DroneDesigner::battery(int cells, Quantity<MilliampHours> capacity)
{
    inputs_.cells = cells;
    inputs_.capacityMah = capacity;
    return *this;
}

DroneDesigner &
DroneDesigner::twr(double ratio)
{
    inputs_.twr = ratio;
    return *this;
}

DroneDesigner &
DroneDesigner::escClass(EscClass esc_class)
{
    inputs_.escClass = esc_class;
    return *this;
}

DroneDesigner &
DroneDesigner::compute(const ComputeBoardRecord &board)
{
    inputs_.compute = board;
    return *this;
}

DroneDesigner &
DroneDesigner::sensor(const SensorRecord &record)
{
    inputs_.sensorWeightG += record.weight();
    inputs_.sensorPowerW += record.mainPackPowerW();
    return *this;
}

DroneDesigner &
DroneDesigner::payload(Quantity<Grams> grams)
{
    inputs_.payloadG += grams;
    return *this;
}

DroneDesigner &
DroneDesigner::activity(FlightActivity activity)
{
    inputs_.activity = activity;
    return *this;
}

DroneDesigner &
DroneDesigner::propeller(Quantity<Inches> diameter)
{
    inputs_.propDiameterIn = diameter;
    return *this;
}

DesignResult
DroneDesigner::design() const
{
    // The shared engine memoizes the closure, so sweep drivers that
    // revisit a design (hover + maneuver pairs, weight-bucket scans)
    // solve each distinct point once.
    return engine::sharedEngine().solve(inputs_);
}

DesignReport
DroneDesigner::report() const
{
    DesignReport rep;

    DesignInputs hover = inputs_;
    hover.activity = FlightActivity::Hovering;
    DesignInputs maneuver = inputs_;
    maneuver.activity = FlightActivity::Maneuvering;

    const DesignResult hover_res = engine::sharedEngine().solve(hover);
    const DesignResult man_res = engine::sharedEngine().solve(maneuver);
    rep.result = inputs_.activity == FlightActivity::Maneuvering
                     ? man_res
                     : hover_res;
    if (!rep.result.feasible)
        return rep;

    rep.computeFractionHover = hover_res.computePowerFraction;
    rep.computeFractionManeuver = man_res.computePowerFraction;
    rep.maxComputeGainMin =
        gainedFlightTimeMin(hover_res, hover_res.computePowerW);

    double best_delta = std::numeric_limits<double>::max();
    for (const auto &drone : commercialDroneTable()) {
        const double delta = std::fabs(
            (drone.weight() - rep.result.totalWeightG).value());
        if (delta < best_delta) {
            best_delta = delta;
            rep.nearestCommercial = drone.name;
        }
    }
    rep.nearestCommercialDeltaG = Quantity<Grams>(best_delta);
    return rep;
}

} // namespace dronedse
