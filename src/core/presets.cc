#include "core/presets.hh"

#include "components/compute_board.hh"
#include "components/sensor.hh"

namespace dronedse {

std::vector<WeightSlice>
ourDroneWeightBreakdown()
{
    // Figure 14 gram values.
    static const std::vector<std::pair<const char *, double>> parts = {
        {"Frame", 272.0},        {"Battery", 248.0},
        {"Motors", 220.0},       {"ESC", 112.0},
        {"Rpi", 50.0},           {"Propellers", 40.0},
        {"GPS", 30.0},           {"Navio2", 23.0},
        {"Misc", 20.0},          {"RC Receiver", 17.0},
        {"Telemetry", 15.0},     {"Power Module", 15.0},
        {"PPM Encoder", 9.0},
    };
    double total = 0.0;
    for (const auto &[name, w] : parts)
        total += w;

    std::vector<WeightSlice> out;
    out.reserve(parts.size());
    for (const auto &[name, w] : parts)
        out.push_back({name, w, w / total});
    return out;
}

Quantity<Grams>
ourDroneTotalWeightG()
{
    Quantity<Grams> total{};
    for (const auto &slice : ourDroneWeightBreakdown())
        total += slice.weight();
    return total;
}

DesignInputs
ourDroneInputs()
{
    using namespace unit_literals;

    DesignInputs in;
    in.wheelbaseMm = 450.0_mm;
    in.cells = 3;
    in.capacityMah = 3000.0_mah;
    in.twr = 2.0;
    in.escClass = EscClass::LongFlight;
    // Raspberry Pi (autopilot + SLAM host) plus the Navio2 HAT.
    const auto &rpi = findComputeBoard("Raspberry Pi 4");
    const auto &navio = findComputeBoard("Navio2");
    in.compute = {"RPi + Navio2", BoardClass::Improved,
                  rpi.weightG + navio.weightG, rpi.powerW + navio.powerW};
    // GPS, RC receiver, telemetry, power module, PPM encoder
    // (Figure 14 support electronics).
    in.sensorWeightG = Quantity<Grams>(30.0 + 17.0 + 15.0 + 15.0 + 9.0);
    in.sensorPowerW = 1.5_w;
    return in;
}

DesignInputs
racer220Inputs()
{
    using namespace unit_literals;

    DesignInputs in;
    in.wheelbaseMm = 220.0_mm;
    in.cells = 4;
    in.capacityMah = 1500.0_mah;
    in.twr = 4.0;
    in.escClass = EscClass::ShortFlight;
    in.compute = findComputeBoard("iFlight SucceX-E F4");
    return in;
}

DesignInputs
mapper800Inputs()
{
    using namespace unit_literals;

    DesignInputs in;
    in.wheelbaseMm = 800.0_mm;
    in.cells = 6;
    in.capacityMah = 8000.0_mah;
    in.twr = 2.0;
    in.compute = findComputeBoard("Nvidia Jetson TX2");
    const auto &lidar = findSensor("Ultra Puck");
    in.sensorWeightG = lidar.weight();
    in.sensorPowerW = lidar.mainPackPowerW();
    return in;
}

} // namespace dronedse
