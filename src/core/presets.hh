/**
 * @file
 * Preset designs, including the paper's open-source drone
 * (Section 4): a 450 mm frame with a Navio2 flight controller and
 * Raspberry Pi companion computer, whose weight breakdown is
 * Figure 14.
 */

#ifndef DRONEDSE_CORE_PRESETS_HH
#define DRONEDSE_CORE_PRESETS_HH

#include <string>
#include <vector>

#include "dse/design_point.hh"

namespace dronedse {

/** One slice of the Figure 14 weight-breakdown pie. */
struct WeightSlice
{
    std::string component;
    /** Published gram value (raw table data; see weight()). */
    double weightG = 0.0;
    /** Fraction of the total weight. */
    double fraction = 0.0;

    Quantity<Grams> weight() const { return Quantity<Grams>(weightG); }
};

/**
 * The Figure 14 weight breakdown of the paper's open-source drone
 * (fractions computed from the published gram values; total 1061 g).
 */
std::vector<WeightSlice> ourDroneWeightBreakdown();

/** Total weight of the open-source drone. */
Quantity<Grams> ourDroneTotalWeightG();

/**
 * Design inputs describing the open-source drone: Crazepony F450
 * frame, 3S 3000 mAh pack, Navio2 + Raspberry Pi compute stack, GPS
 * and telemetry carried as sensor weight.
 */
DesignInputs ourDroneInputs();

/** A minimal racing 220 mm preset (short-flight ESCs, basic FC). */
DesignInputs racer220Inputs();

/** A mapping 800 mm preset carrying a self-powered LiDAR. */
DesignInputs mapper800Inputs();

} // namespace dronedse

#endif // DRONEDSE_CORE_PRESETS_HH
