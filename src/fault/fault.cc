#include "fault/fault.hh"

#include <algorithm>
#include <array>
#include <cstdio>
#include <sstream>

#include "util/logging.hh"
#include "util/rng.hh"

namespace dronedse::fault {

namespace {

constexpr std::array<const char *,
                     static_cast<std::size_t>(FaultKind::NumKinds)>
    kKindNames{
        "gps_dropout",        "imu_noise_spike",
        "camera_frame_loss",  "motor_derate",
        "offload_link_down",  "offload_latency_spike",
        "compute_contention",
    };

/** Effectively-forever duration for permanent faults. */
constexpr double kForever = 1e9;

FaultEvent
event(FaultKind kind, double start, double duration,
      double magnitude = 1.0, int index = 0)
{
    FaultEvent e;
    e.kind = kind;
    e.startS = start;
    e.durationS = duration;
    e.magnitude = magnitude;
    e.index = index;
    return e;
}

std::vector<FaultScenario>
buildCatalog()
{
    using K = FaultKind;
    std::vector<FaultScenario> list;

    list.push_back(
        {"nominal", "no faults: the control run every study needs",
         {}});

    list.push_back({"gps_outage_midway",
                    "GPS denied for 18 s while between waypoints; "
                    "the EKF coasts on IMU + baro",
                    {event(K::GpsDropout, 18.0, 18.0)}});

    list.push_back({"gps_outage_imu_noise",
                    "GPS denied while vibration inflates IMU noise "
                    "12x: the estimate runs away without a policy",
                    {event(K::GpsDropout, 12.0, kForever),
                     event(K::ImuNoiseSpike, 12.0, kForever, 12.0)}});

    list.push_back({"link_flap",
                    "offload link drops three times (3 s, 6 s, 4 s): "
                    "backoff retries and SLAM fallback churn",
                    {event(K::OffloadLinkDown, 10.0, 3.0),
                     event(K::OffloadLinkDown, 20.0, 6.0),
                     event(K::OffloadLinkDown, 32.0, 4.0)}});

    list.push_back({"link_loss_permanent",
                    "offload link never comes back: onboard SLAM at "
                    "reduced keyframe rate for the rest of the flight",
                    {event(K::OffloadLinkDown, 15.0, kForever)}});

    list.push_back({"latency_spike",
                    "round-trip inflated +180 ms for 20 s: the link "
                    "is up but useless for deadline-bound offload",
                    {event(K::OffloadLatencySpike, 14.0, 20.0,
                           180.0)}});

    list.push_back({"motor_derate_mild",
                    "motor 0 at 70 % for the whole flight: the "
                    "inner-loop integrators trim it out",
                    {event(K::MotorDerate, 10.0, kForever, 0.7, 0)}});

    list.push_back({"motor_derate_deep",
                    "motor 2 collapses to 30 %: thrust and attitude "
                    "authority go together; land or crash",
                    {event(K::MotorDerate, 16.0, kForever, 0.3, 2)}});

    list.push_back({"contention_burst",
                    "co-runner inflates outer-loop task cost 8x for "
                    "12 s during the mission's loop-closure window",
                    {event(K::ComputeContention, 22.0, 12.0, 8.0)}});

    list.push_back({"camera_blackout",
                    "camera frames lost for 15 s: SLAM starves while "
                    "the state estimator keeps flying the drone",
                    {event(K::CameraFrameLoss, 20.0, 15.0)}});

    list.push_back({"kitchen_sink",
                    "link loss, then contention burst, then GPS "
                    "dropout with noisy IMU: compounding degradation",
                    {event(K::OffloadLinkDown, 10.0, kForever),
                     event(K::ComputeContention, 18.0, 14.0, 6.0),
                     event(K::GpsDropout, 30.0, 20.0),
                     event(K::ImuNoiseSpike, 30.0, 20.0, 6.0)}});

    return list;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    const auto i = static_cast<std::size_t>(kind);
    if (i >= kKindNames.size())
        panic("faultKindName: invalid kind");
    return kKindNames[i];
}

std::optional<FaultKind>
faultKindFromName(const std::string &name)
{
    for (std::size_t i = 0; i < kKindNames.size(); ++i) {
        if (name == kKindNames[i])
            return static_cast<FaultKind>(i);
    }
    return std::nullopt;
}

FaultScenario
parseScenario(const std::string &name, const std::string &text)
{
    FaultScenario scenario;
    scenario.name = name;

    std::istringstream lines(text);
    std::string line;
    int line_no = 0;
    while (std::getline(lines, line)) {
        ++line_no;
        // Strip comments and surrounding whitespace.
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        std::string kind_name;
        if (!(fields >> kind_name))
            continue; // blank line

        const auto kind = faultKindFromName(kind_name);
        if (!kind) {
            fatal("parseScenario: " + name + " line " +
                  std::to_string(line_no) + ": unknown fault kind '" +
                  kind_name + "'");
        }

        FaultEvent e;
        e.kind = *kind;
        bool have_start = false, have_dur = false;
        std::string field;
        while (fields >> field) {
            const auto eq = field.find('=');
            if (eq == std::string::npos) {
                fatal("parseScenario: " + name + " line " +
                      std::to_string(line_no) +
                      ": expected key=value, got '" + field + "'");
            }
            const std::string key = field.substr(0, eq);
            const std::string value = field.substr(eq + 1);
            char *end = nullptr;
            const double v = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0') {
                fatal("parseScenario: " + name + " line " +
                      std::to_string(line_no) + ": bad number '" +
                      value + "'");
            }
            if (key == "start") {
                e.startS = v;
                have_start = true;
            } else if (key == "dur") {
                e.durationS = v;
                have_dur = true;
            } else if (key == "mag") {
                e.magnitude = v;
            } else if (key == "index") {
                e.index = static_cast<int>(v);
            } else {
                fatal("parseScenario: " + name + " line " +
                      std::to_string(line_no) + ": unknown key '" +
                      key + "'");
            }
        }
        if (!have_start || !have_dur) {
            fatal("parseScenario: " + name + " line " +
                  std::to_string(line_no) +
                  ": start= and dur= are required");
        }
        scenario.events.push_back(e);
    }
    return scenario;
}

std::string
scenarioToText(const FaultScenario &scenario)
{
    std::string out;
    if (!scenario.description.empty())
        out += "# " + scenario.description + "\n";
    char buf[160];
    for (const auto &e : scenario.events) {
        std::snprintf(buf, sizeof buf,
                      "%s start=%.17g dur=%.17g mag=%.17g index=%d\n",
                      faultKindName(e.kind), e.startS, e.durationS,
                      e.magnitude, e.index);
        out += buf;
    }
    return out;
}

const std::vector<FaultScenario> &
scenarioCatalog()
{
    static const std::vector<FaultScenario> catalog = buildCatalog();
    return catalog;
}

const FaultScenario &
findScenario(const std::string &name)
{
    for (const auto &s : scenarioCatalog()) {
        if (s.name == name)
            return s;
    }
    fatal("findScenario: no scenario named '" + name + "'");
}

FaultSubsystem
faultSubsystem(const FaultEvent &event)
{
    switch (event.kind) {
    case FaultKind::GpsDropout:
        return FaultSubsystem::Gps;
    case FaultKind::ImuNoiseSpike:
        return FaultSubsystem::Imu;
    case FaultKind::CameraFrameLoss:
        return FaultSubsystem::Camera;
    case FaultKind::MotorDerate: {
        const int m = event.index;
        if (m < 0 || m > 3)
            fatal("faultSubsystem: motor index must be 0..3, got " +
                  std::to_string(m));
        return static_cast<FaultSubsystem>(
            static_cast<int>(FaultSubsystem::Motor0) + m);
    }
    case FaultKind::OffloadLinkDown:
    case FaultKind::OffloadLatencySpike:
        return FaultSubsystem::OffloadLink;
    case FaultKind::ComputeContention:
        return FaultSubsystem::Compute;
    case FaultKind::NumKinds:
        break;
    }
    panic("faultSubsystem: invalid kind");
}

const char *
faultSubsystemName(FaultSubsystem subsystem)
{
    switch (subsystem) {
    case FaultSubsystem::Gps:
        return "gps";
    case FaultSubsystem::Imu:
        return "imu";
    case FaultSubsystem::Camera:
        return "camera";
    case FaultSubsystem::Motor0:
        return "motor0";
    case FaultSubsystem::Motor1:
        return "motor1";
    case FaultSubsystem::Motor2:
        return "motor2";
    case FaultSubsystem::Motor3:
        return "motor3";
    case FaultSubsystem::OffloadLink:
        return "offload_link";
    case FaultSubsystem::Compute:
        return "compute";
    }
    panic("faultSubsystemName: invalid subsystem");
}

const char *
composeErrorReasonName(ComposeErrorReason reason)
{
    switch (reason) {
    case ComposeErrorReason::SameKindOverlap:
        return "same_kind_overlap";
    case ComposeErrorReason::MotorIndexOverlap:
        return "motor_index_overlap";
    case ComposeErrorReason::LinkSubsystemOverlap:
        return "link_subsystem_overlap";
    }
    panic("composeErrorReasonName: invalid reason");
}

std::string
ComposeError::message() const
{
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "%s on %s at t=%.17gs: %s start=%.17g dur=%.17g vs "
                  "%s start=%.17g dur=%.17g",
                  composeErrorReasonName(reason),
                  faultSubsystemName(subsystem), overlapStartS,
                  faultKindName(first.kind), first.startS,
                  first.durationS, faultKindName(second.kind),
                  second.startS, second.durationS);
    return buf;
}

ComposeResult
composeScenarios(const FaultScenario &a, const FaultScenario &b,
                 const std::string &name)
{
    FaultScenario merged;
    merged.name = name.empty() ? a.name + "+" + b.name : name;
    merged.description = a.description + " + " + b.description;
    merged.events = a.events;
    merged.events.insert(merged.events.end(), b.events.begin(),
                         b.events.end());

    for (std::size_t i = 0; i < merged.events.size(); ++i) {
        for (std::size_t j = i + 1; j < merged.events.size(); ++j) {
            const FaultEvent &e1 = merged.events[i];
            const FaultEvent &e2 = merged.events[j];
            if (faultSubsystem(e1) != faultSubsystem(e2))
                continue;
            const double overlap_start =
                std::max(e1.startS, e2.startS);
            const double overlap_end = std::min(
                e1.startS + e1.durationS, e2.startS + e2.durationS);
            if (overlap_start >= overlap_end)
                continue;

            ComposeError error;
            if (e1.kind == FaultKind::MotorDerate &&
                e2.kind == FaultKind::MotorDerate) {
                error.reason = ComposeErrorReason::MotorIndexOverlap;
            } else if (e1.kind == e2.kind) {
                error.reason = ComposeErrorReason::SameKindOverlap;
            } else {
                // Only the offload-link subsystem maps two distinct
                // kinds onto one physical resource.
                error.reason =
                    ComposeErrorReason::LinkSubsystemOverlap;
            }
            error.first = e1;
            error.second = e2;
            error.subsystem = faultSubsystem(e1);
            error.overlapStartS = overlap_start;
            return {std::nullopt, error};
        }
    }
    return {std::move(merged), std::nullopt};
}

FaultScenario
randomScenario(std::uint64_t seed, double duration, int max_events)
{
    if (duration <= 0.0 || max_events < 0)
        fatal("randomScenario: invalid duration or event count");

    Rng rng(seed);
    FaultScenario scenario;
    scenario.name = "random_" + std::to_string(seed);
    scenario.description = "seeded random trace (property tests)";

    const auto count =
        static_cast<int>(rng.uniformInt(0, max_events));
    for (int i = 0; i < count; ++i) {
        FaultEvent e;
        e.kind = static_cast<FaultKind>(rng.uniformInt(
            0,
            static_cast<std::int64_t>(FaultKind::NumKinds) - 1));
        e.startS = rng.uniform(0.0, duration);
        e.durationS = rng.uniform(1.0, duration / 2.0);
        switch (e.kind) {
        case FaultKind::ImuNoiseSpike:
            e.magnitude = rng.uniform(2.0, 16.0);
            break;
        case FaultKind::MotorDerate:
            e.magnitude = rng.uniform(0.4, 0.95);
            e.index = static_cast<int>(rng.uniformInt(0, 3));
            break;
        case FaultKind::OffloadLatencySpike:
            e.magnitude = rng.uniform(20.0, 250.0);
            break;
        case FaultKind::ComputeContention:
            e.magnitude = rng.uniform(1.5, 10.0);
            break;
        default:
            e.magnitude = 1.0;
            break;
        }
        scenario.events.push_back(e);
    }
    return scenario;
}

} // namespace dronedse::fault
