/**
 * @file
 * Deterministic fault injector: a pure, replayable view over a
 * scripted `FaultScenario`.
 *
 * The injector answers "what is failing at mission time t" — it owns
 * no randomness and mutates nothing, so the mission harness can
 * apply the same scenario to the sensor suite, plant, scheduler, and
 * offload link every tick and two runs of one scenario are
 * bit-identical regardless of host thread count.
 */

#ifndef DRONEDSE_FAULT_INJECTOR_HH
#define DRONEDSE_FAULT_INJECTOR_HH

#include "fault/fault.hh"

namespace dronedse::fault {

/** Replayable query interface over one scenario. */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultScenario scenario);

    const FaultScenario &scenario() const { return scenario_; }

    /** True while any event of `kind` is in effect at time `t`. */
    bool active(FaultKind kind, double t) const;

    /** Number of events (any kind) in effect at time `t`. */
    int activeCount(double t) const;

    /**
     * Strongest magnitude among active events of `kind` at `t`;
     * `neutral` when none are active.  "Strongest" is
     * kind-dependent: the minimum for MotorDerate (least remaining
     * effectiveness wins), the maximum for everything else.
     */
    double magnitude(FaultKind kind, double t, double neutral) const;

    /**
     * Effectiveness of motor `index` at time `t`: the lowest
     * active MotorDerate magnitude targeting that motor, 1.0 when
     * healthy.
     */
    double motorEffectiveness(int index, double t) const;

    /** Mission time of the last event's end (0 for no events). */
    double lastEventEnd() const;

  private:
    FaultScenario scenario_;
};

} // namespace dronedse::fault

#endif // DRONEDSE_FAULT_INJECTOR_HH
