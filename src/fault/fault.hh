/**
 * @file
 * Fault taxonomy and scripted fault timelines.
 *
 * The paper's reliability argument (Sections 4-5) is that autonomy
 * survives because the hard-real-time inner loop is isolated from
 * the deadline-bound outer loop; proving that requires injecting the
 * failures the isolation is supposed to contain.  A `FaultScenario`
 * scripts faults on the mission clock — sensor dropouts and noise
 * spikes, motor/ESC derating, offload-link loss and latency spikes,
 * and compute-contention bursts — so every resilience experiment is
 * a deterministic replay, not a flaky chaos test.
 *
 * Scenario text format (DESIGN.md section 11): one event per line,
 *
 *     <kind> start=<s> dur=<s> [mag=<x>] [index=<i>]
 *
 * with `#` comments and blank lines ignored.  `kind` is the
 * lower_snake name from `faultKindName`.
 */

#ifndef DRONEDSE_FAULT_FAULT_HH
#define DRONEDSE_FAULT_FAULT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dronedse::fault {

/** The injectable failure classes. */
enum class FaultKind
{
    /** GPS fixes stop (jamming, canyon, indoor). */
    GpsDropout = 0,
    /** IMU noise inflated by `magnitude` (vibration, EMI). */
    ImuNoiseSpike,
    /** Camera frames dropped; SLAM sees no input. */
    CameraFrameLoss,
    /** Motor `index` thrust scaled by `magnitude` (ESC derating). */
    MotorDerate,
    /** Offload link to the companion/edge compute is down. */
    OffloadLinkDown,
    /** Offload round-trip inflated by `magnitude` ms. */
    OffloadLatencySpike,
    /** Outer-loop task cost inflated by `magnitude` (co-runner). */
    ComputeContention,
    NumKinds,
};

/** lower_snake name of a fault kind (stable, used in scenarios). */
const char *faultKindName(FaultKind kind);

/** Inverse of `faultKindName`; nullopt for unknown names. */
std::optional<FaultKind> faultKindFromName(const std::string &name);

/** One scripted fault on the mission timeline. */
struct FaultEvent
{
    FaultKind kind = FaultKind::GpsDropout;
    /** Mission time the fault begins (s). */
    double startS = 0.0;
    /** Duration (s); use a large value for a permanent fault. */
    double durationS = 0.0;
    /**
     * Kind-specific intensity: noise multiplier (ImuNoiseSpike),
     * remaining effectiveness in [0,1] (MotorDerate), added latency
     * in ms (OffloadLatencySpike), cost multiplier
     * (ComputeContention).  Unused by the pure dropout kinds.
     */
    double magnitude = 1.0;
    /** Sub-target, e.g. the motor number for MotorDerate. */
    int index = 0;

    /** True while the event is in effect at mission time `t`. */
    bool activeAt(double t) const
    {
        return t >= startS && t < startS + durationS;
    }
};

/** A named, ordered fault timeline. */
struct FaultScenario
{
    std::string name;
    /** One-line description for reports. */
    std::string description;
    std::vector<FaultEvent> events;
};

/**
 * Parse the scenario text format described above; fatal() on a
 * malformed line (scenarios are configuration, not user data).
 */
FaultScenario parseScenario(const std::string &name,
                            const std::string &text);

/** Render a scenario back to the text format (round-trips). */
std::string scenarioToText(const FaultScenario &scenario);

/**
 * The built-in regression scenarios — the battery
 * `tests/fault/test_scenarios.cc` pins golden outcomes for.
 * At least eight, covering every `FaultKind` and combined faults.
 */
const std::vector<FaultScenario> &scenarioCatalog();

/** Look up a catalog scenario by name; fatal() when absent. */
const FaultScenario &findScenario(const std::string &name);

/**
 * Deterministic pseudo-random scenario for property tests: up to
 * `max_events` events drawn from all kinds, uniformly placed over
 * [0, duration) seconds.  Same seed, same scenario.
 */
FaultScenario randomScenario(std::uint64_t seed, double duration,
                             int max_events = 6);

} // namespace dronedse::fault

#endif // DRONEDSE_FAULT_FAULT_HH
