/**
 * @file
 * Fault taxonomy and scripted fault timelines.
 *
 * The paper's reliability argument (Sections 4-5) is that autonomy
 * survives because the hard-real-time inner loop is isolated from
 * the deadline-bound outer loop; proving that requires injecting the
 * failures the isolation is supposed to contain.  A `FaultScenario`
 * scripts faults on the mission clock — sensor dropouts and noise
 * spikes, motor/ESC derating, offload-link loss and latency spikes,
 * and compute-contention bursts — so every resilience experiment is
 * a deterministic replay, not a flaky chaos test.
 *
 * Scenario text format (DESIGN.md section 11): one event per line,
 *
 *     <kind> start=<s> dur=<s> [mag=<x>] [index=<i>]
 *
 * with `#` comments and blank lines ignored.  `kind` is the
 * lower_snake name from `faultKindName`.
 */

#ifndef DRONEDSE_FAULT_FAULT_HH
#define DRONEDSE_FAULT_FAULT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dronedse::fault {

/** The injectable failure classes. */
enum class FaultKind
{
    /** GPS fixes stop (jamming, canyon, indoor). */
    GpsDropout = 0,
    /** IMU noise inflated by `magnitude` (vibration, EMI). */
    ImuNoiseSpike,
    /** Camera frames dropped; SLAM sees no input. */
    CameraFrameLoss,
    /** Motor `index` thrust scaled by `magnitude` (ESC derating). */
    MotorDerate,
    /** Offload link to the companion/edge compute is down. */
    OffloadLinkDown,
    /** Offload round-trip inflated by `magnitude` ms. */
    OffloadLatencySpike,
    /** Outer-loop task cost inflated by `magnitude` (co-runner). */
    ComputeContention,
    NumKinds,
};

/** lower_snake name of a fault kind (stable, used in scenarios). */
const char *faultKindName(FaultKind kind);

/** Inverse of `faultKindName`; nullopt for unknown names. */
std::optional<FaultKind> faultKindFromName(const std::string &name);

/** One scripted fault on the mission timeline. */
struct FaultEvent
{
    FaultKind kind = FaultKind::GpsDropout;
    /** Mission time the fault begins (s). */
    double startS = 0.0;
    /** Duration (s); use a large value for a permanent fault. */
    double durationS = 0.0;
    /**
     * Kind-specific intensity: noise multiplier (ImuNoiseSpike),
     * remaining effectiveness in [0,1] (MotorDerate), added latency
     * in ms (OffloadLatencySpike), cost multiplier
     * (ComputeContention).  Unused by the pure dropout kinds.
     */
    double magnitude = 1.0;
    /** Sub-target, e.g. the motor number for MotorDerate. */
    int index = 0;

    /** True while the event is in effect at mission time `t`. */
    bool activeAt(double t) const
    {
        return t >= startS && t < startS + durationS;
    }
};

/** A named, ordered fault timeline. */
struct FaultScenario
{
    std::string name;
    /** One-line description for reports. */
    std::string description;
    std::vector<FaultEvent> events;
};

/**
 * Parse the scenario text format described above; fatal() on a
 * malformed line (scenarios are configuration, not user data).
 */
FaultScenario parseScenario(const std::string &name,
                            const std::string &text);

/** Render a scenario back to the text format (round-trips). */
std::string scenarioToText(const FaultScenario &scenario);

/**
 * The built-in regression scenarios — the battery
 * `tests/fault/test_scenarios.cc` pins golden outcomes for.
 * At least eight, covering every `FaultKind` and combined faults.
 */
const std::vector<FaultScenario> &scenarioCatalog();

/** Look up a catalog scenario by name; fatal() when absent. */
const FaultScenario &findScenario(const std::string &name);

/**
 * Deterministic pseudo-random scenario for property tests: up to
 * `max_events` events drawn from all kinds, uniformly placed over
 * [0, duration) seconds.  Same seed, same scenario.
 */
FaultScenario randomScenario(std::uint64_t seed, double duration,
                             int max_events = 6);

/**
 * The physical subsystem a fault event degrades.  Overlap checking
 * is per subsystem, not per kind: `OffloadLinkDown` and
 * `OffloadLatencySpike` both act on the one radio, so scripting both
 * at once has no well-defined semantics, while two `MotorDerate`
 * events on *different* motors are independent actuators and
 * compose fine.
 */
enum class FaultSubsystem
{
    Gps = 0,
    Imu,
    Camera,
    /** Motor0..Motor3: one subsystem per actuator. */
    Motor0,
    Motor1,
    Motor2,
    Motor3,
    OffloadLink,
    Compute,
};

/** Subsystem an event targets (MotorDerate reads `event.index`). */
FaultSubsystem faultSubsystem(const FaultEvent &event);

/** Human-readable subsystem name. */
const char *faultSubsystemName(FaultSubsystem subsystem);

/** Why `composeScenarios` rejected a composition. */
enum class ComposeErrorReason
{
    /** Two events of one kind overlap in time. */
    SameKindOverlap = 0,
    /** Two MotorDerate events on the same motor overlap in time. */
    MotorIndexOverlap,
    /**
     * Link-down and latency-spike events overlap in time: both act
     * on the one offload radio.
     */
    LinkSubsystemOverlap,
};

/** Human-readable reason name. */
const char *composeErrorReasonName(ComposeErrorReason reason);

/** Typed rejection: which events clashed, where, and why. */
struct ComposeError
{
    ComposeErrorReason reason = ComposeErrorReason::SameKindOverlap;
    /** The two clashing events (copied from the inputs). */
    FaultEvent first;
    FaultEvent second;
    /** Subsystem both events act on. */
    FaultSubsystem subsystem = FaultSubsystem::Gps;
    /** Mission time the overlap begins (s). */
    double overlapStartS = 0.0;

    /** One-line description for logs and test failure messages. */
    std::string message() const;
};

/**
 * Result of a scenario composition: exactly one of `scenario` /
 * `error` is set.  A rejected composition is an *expected* outcome
 * when cross-producting a catalog — callers filter, they don't
 * crash — which is why this is a typed value and not a fatal().
 */
struct ComposeResult
{
    std::optional<FaultScenario> scenario;
    std::optional<ComposeError> error;

    bool ok() const { return scenario.has_value(); }
};

/**
 * Merge two scenarios into one timeline (events of `a`, then events
 * of `b`; name "<a>+<b>" unless `name` is given).  Rejects — with a
 * typed `ComposeError`, never silently — any pair of events in the
 * merged timeline that overlap in time on the same subsystem, since
 * the injector's strongest-magnitude resolution would otherwise
 * pick a winner the scenario author never scripted.  The first
 * clash in (outer, inner) event order is reported.
 */
ComposeResult composeScenarios(const FaultScenario &a,
                               const FaultScenario &b,
                               const std::string &name = "");

} // namespace dronedse::fault

#endif // DRONEDSE_FAULT_FAULT_HH
