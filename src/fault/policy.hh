/**
 * @file
 * Graceful-degradation policy: the reactive half of the fault
 * subsystem.
 *
 * The injector breaks things; this layer decides how the autonomy
 * stack retreats — the paper's Section 4-5 argument that a drone
 * keeps flying because the outer loop can shed work while the inner
 * loop keeps its physics-bounded rate.  Severity is ordered:
 *
 *   Nominal < DegradedSlam < RateShed < LandSafe
 *
 * and the policy computes, every health sample, the *least severe*
 * mode whose triggers are all clear:
 *
 *  - offload link or GPS unavailable        -> DegradedSlam
 *    (fall back from offloaded SLAM to onboard SLAM at reduced
 *    keyframe rate; retry the link with exponential backoff)
 *  - deadline-miss rate or estimation error -> RateShed
 *    (shed outer-loop rates so the inner loop's misses stop)
 *  - battery, motor health, long GPS denial,
 *    or runaway estimation error            -> LandSafe (absorbing)
 *
 * Escalation is immediate; de-escalation waits for `recoveryHoldS`
 * of continuously clear triggers (hysteresis), and LandSafe is never
 * left.  Because escalation is immediate and each trigger is a
 * monotone function of the health inputs, the worst mode of a run
 * equals the worst instantaneous demand — a strictly worse fault
 * trace can never yield a strictly better outcome tier (property
 * tested in tests/fault/).
 */

#ifndef DRONEDSE_FAULT_POLICY_HH
#define DRONEDSE_FAULT_POLICY_HH

#include <string>
#include <vector>

namespace dronedse::fault {

/** Degradation modes, ordered by severity. */
enum class FlightMode
{
    /** Full mission: offloaded SLAM, full outer-loop rates. */
    Nominal = 0,
    /** Onboard SLAM at reduced keyframe rate; link in backoff. */
    DegradedSlam = 1,
    /** Outer-loop rates shed to protect the inner loop. */
    RateShed = 2,
    /** Terminal: descend at the current position and stay down. */
    LandSafe = 3,
};

/** Human-readable mode name. */
const char *flightModeName(FlightMode mode);

/** Mission outcome tiers, ordered worst to best. */
enum class OutcomeTier
{
    /** Impact above limit, inverted, or departed controlled flight. */
    Crashed = 0,
    /** Came down intact under LandSafe (or battery floor). */
    LandedSafe = 1,
    /** Still flying / finished, but degradation was needed. */
    SurvivedDegraded = 2,
    /** Full mission, never left Nominal. */
    Completed = 3,
};

/** Human-readable tier name. */
const char *outcomeTierName(OutcomeTier tier);

/** Thresholds and timing of the policy (all tunable per study). */
struct PolicyConfig
{
    /** Initial/minimum offload retry interval (s). */
    double backoffMinS = 0.5;
    /** Retry interval cap (s). */
    double backoffMaxS = 8.0;
    /** Multiplier applied after each failed retry. */
    double backoffFactor = 2.0;

    /**
     * Deadline-miss leaky accumulator: each new miss adds 1, the
     * level decays with this half-life (s).
     */
    double missHalfLifeS = 4.0;
    /** Accumulator level that triggers RateShed. */
    double missShedLevel = 20.0;

    /** Estimation error that triggers RateShed (m). */
    double estErrShedM = 2.5;
    /** Estimation error that triggers LandSafe (m). */
    double estErrLandM = 8.0;

    /** Continuous GPS denial that triggers LandSafe (s). */
    double gpsDenialLandS = 15.0;
    /** State of charge at or below which LandSafe triggers. */
    double socLandFraction = 0.12;
    /** Weakest motor effectiveness below which LandSafe triggers. */
    double motorEffLandFraction = 0.45;

    /** Clear-trigger time required before de-escalating (s). */
    double recoveryHoldS = 4.0;
};

/** One sample of system health, fed to `update` once per tick. */
struct HealthSnapshot
{
    /** Mission time (s); must be non-decreasing across updates. */
    double t = 0.0;
    /** Offload link currently usable. */
    bool linkUp = true;
    /** GPS fixes currently arriving. */
    bool gpsAvailable = true;
    /** Cumulative scheduler deadline misses. */
    long deadlineMisses = 0;
    /** Estimation error / innovation monitor (m). */
    double estErrM = 0.0;
    /** Battery state of charge in [0, 1]. */
    double stateOfCharge = 1.0;
    /** Weakest motor effectiveness in [0, 1]. */
    double minMotorEffectiveness = 1.0;
};

/** One recorded mode change. */
struct ModeTransition
{
    double t = 0.0;
    FlightMode from = FlightMode::Nominal;
    FlightMode to = FlightMode::Nominal;
    /** Trigger that forced the change (or "recovered"). */
    std::string reason;
};

/** The reactive policy state machine. */
class DegradationPolicy
{
  public:
    explicit DegradationPolicy(PolicyConfig config = {});

    /** Ingest one health sample; returns the mode now in force. */
    FlightMode update(const HealthSnapshot &health);

    /** Mode currently in force. */
    FlightMode mode() const { return mode_; }

    /** Most severe mode reached so far. */
    FlightMode worstMode() const { return worst_; }

    /** Every mode change, in order. */
    const std::vector<ModeTransition> &transitions() const
    {
        return transitions_;
    }

    /**
     * True when a link retry is due at time `t` (only while the
     * link is down).  The caller attempts the link and reports the
     * result through `onRetryResult`.
     */
    bool offloadRetryDue(double t) const;

    /**
     * Report a retry attempt: on failure the interval grows by
     * `backoffFactor` up to `backoffMaxS`; on success it resets to
     * `backoffMinS`.
     */
    void onRetryResult(double t, bool success);

    /** Current retry interval (s). */
    double currentBackoffS() const { return backoffS_; }

    /** Every retry interval scheduled so far (property tests). */
    const std::vector<double> &retryIntervals() const
    {
        return retryIntervals_;
    }

    /** Deadline-miss accumulator level (diagnostics). */
    double missLevel() const { return missLevel_; }

    /** Map a finished run to its outcome tier. */
    static OutcomeTier outcomeFor(bool crashed, bool mission_complete,
                                  FlightMode worst);

    const PolicyConfig &config() const { return config_; }

  private:
    /** Least severe mode whose triggers are all clear right now. */
    FlightMode demandedMode(const HealthSnapshot &health,
                            std::string &reason) const;
    void transitionTo(FlightMode to, double t,
                      const std::string &reason);

    PolicyConfig config_;
    FlightMode mode_ = FlightMode::Nominal;
    FlightMode worst_ = FlightMode::Nominal;
    std::vector<ModeTransition> transitions_;

    bool haveLast_ = false;
    double lastT_ = 0.0;
    long lastMisses_ = 0;
    double missLevel_ = 0.0;
    /** Start of the current continuous GPS denial (<0: none). */
    double gpsDownSince_ = -1.0;
    /** Last time the demanded mode was >= the current mode. */
    double lastElevatedT_ = 0.0;

    bool linkDown_ = false;
    double backoffS_ = 0.0;
    double nextRetryT_ = 0.0;
    std::vector<double> retryIntervals_;
};

} // namespace dronedse::fault

#endif // DRONEDSE_FAULT_POLICY_HH
