#include "fault/mission.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "control/autopilot.hh"
#include "control/scheduler.hh"
#include "engine/thread_pool.hh"
#include "fault/injector.hh"
#include "obs/metrics.hh"
#include "obs/tracer.hh"
#include "physics/lipo.hh"
#include "platform/offload.hh"
#include "power/board_power.hh"
#include "slam/pipeline.hh"
#include "slam/world.hh"
#include "util/logging.hh"

namespace dronedse::fault {

namespace {

/**
 * Companion-computer outer-loop task model (simulated costs, s).
 * The SLAM costs jump when the link drops and the pipeline falls
 * back onboard — the paper's Table 5 offload benefit, inverted.
 */
constexpr double kNavRateHz = 10.0;
constexpr double kNavShedRateHz = 5.0;
constexpr double kNavCostS = 0.005;
constexpr double kFrontendRateHz = 10.0;
constexpr double kFrontendShedRateHz = 4.0;
constexpr double kFrontendOffloadedCostS = 0.012;
constexpr double kFrontendOnboardCostS = 0.045;
constexpr double kBackendRateHz = 1.0;
constexpr double kBackendOffloadedCostS = 0.020;
constexpr double kBackendOnboardCostS = 0.250;

/** Keyframe gap: every 8 frames offloaded, every 16 onboard. */
constexpr int kKeyframeGapOffloaded = 8;
constexpr int kKeyframeGapOnboard = 16;

/** Radio/compression overhead added to the board power (W). */
constexpr double kOffloadRadioW = 1.5;
constexpr double kOnboardExtraW = 2.25;

/** Survey square: kWaypointGoal legs, then descend home and hold. */
std::vector<Waypoint>
surveyMission()
{
    return {
        {{0, 0, 3}, 0.0, 0.6, 1.0},  {{8, 0, 3}, 0.0, 0.8, 0.5},
        {{8, 8, 3}, 1.57, 0.8, 0.5}, {{0, 8, 3}, 3.14, 0.8, 0.5},
        {{0, 0, 3}, 0.0, 0.8, 0.5},  {{0, 0, 0.3}, 0.0, 0.3, 1e9},
    };
}

} // namespace

MissionReport
runResilienceMission(const FaultScenario &scenario,
                     const ResilienceConfig &config)
{
    if (config.durationS <= 0.0 || config.tickS <= 0.0)
        fatal("runResilienceMission: duration and tick must be > 0");

    obs::ScopedSpan mission_span("fault.mission", "fault");
    obs::metrics().counter("fault.mission.runs").add(1);

    MissionReport report;
    report.scenario = scenario.name;
    report.policyEnabled = config.policyEnabled;

    const FaultInjector injector(scenario);
    DegradationPolicy policy(config.policy);

    AutopilotConfig ap_config;
    ap_config.seed = config.seed;
    ap_config.wind.steady = {1.5, 0.5, 0.0};
    ap_config.wind.gustIntensity = 1.0;
    Autopilot autopilot(QuadrotorParams{}, surveyMission(), ap_config);

    // The companion computer's outer loop: navigation planning plus
    // the SLAM stages.  The fn bodies are empty — the scheduler is a
    // timing model here; the real work happens in the autopilot and
    // (optionally) the SLAM pipeline below.
    RateScheduler sched;
    sched.addTask("outer.nav", kNavRateHz, kNavCostS, [](double) {});
    sched.addTask("outer.slam_frontend", kFrontendRateHz,
                  kFrontendOffloadedCostS, [](double) {});
    sched.addTask("outer.slam_backend", kBackendRateHz,
                  kBackendOffloadedCostS, [](double) {});

    OffloadLink link;
    // What the software believes about the link.  Losing the link
    // is noticed immediately (an offload RPC fails); regaining it is
    // only noticed by a retry probe, which the policy rate-limits
    // with exponential backoff.  Without the policy the stack just
    // re-probes every tick.
    bool link_observed_up = true;

    LipoPack pack(3, Quantity<MilliampHours>(3000.0));

    // Optional: run the real SLAM pipeline on the camera stream.
    struct SlamRig
    {
        SyntheticWorld world;
        SlamPipeline slam;
        int nextFrame = 16;
        explicit SlamRig(const SequenceSpec &seq)
            : world(seq), slam(world.camera())
        {
            slam.bootstrap(world.renderFrame(0), world.renderFrame(15));
        }
    };
    std::unique_ptr<SlamRig> rig;
    if (config.withSlam)
        rig = std::make_unique<SlamRig>(findSequence("MH01"));

    double track_err_sum = 0.0;
    long track_err_n = 0;
    const long ticks = std::lround(config.durationS / config.tickS);
    double t = 0.0;

    for (long k = 0; k < ticks; ++k) {
        // --- Inject this tick's faults. ------------------------------
        autopilot.sensors().setGpsAvailable(
            !injector.active(FaultKind::GpsDropout, t));
        autopilot.sensors().setNoiseScale(
            injector.magnitude(FaultKind::ImuNoiseSpike, t, 1.0));
        for (int m = 0; m < 4; ++m)
            autopilot.quad().failMotor(m,
                                       injector.motorEffectiveness(m, t));
        link.setDown(injector.active(FaultKind::OffloadLinkDown, t));
        link.setLatencySpikeMs(
            injector.magnitude(FaultKind::OffloadLatencySpike, t, 0.0));
        sched.setCostScale(
            injector.magnitude(FaultKind::ComputeContention, t, 1.0));

        // --- Notice link loss; maybe probe for recovery. -------------
        if (link_observed_up && !link.usable()) {
            link_observed_up = false;
            obs::metrics().counter("fault.link.outages").add(1);
        }
        if (!link_observed_up) {
            if (config.policyEnabled) {
                if (policy.offloadRetryDue(t)) {
                    const bool ok = link.attempt();
                    policy.onRetryResult(t, ok);
                    if (ok)
                        link_observed_up = true;
                }
            } else if (link.attempt()) {
                link_observed_up = true;
            }
        }

        // --- Let the policy read health and pick a mode. -------------
        FlightMode mode = FlightMode::Nominal;
        if (config.policyEnabled) {
            HealthSnapshot health;
            health.t = t;
            health.linkUp = link_observed_up;
            health.gpsAvailable = autopilot.sensors().gpsAvailable();
            health.deadlineMisses = sched.totalDeadlineMisses();
            health.estErrM = autopilot.estimationErrorM();
            health.stateOfCharge = pack.stateOfCharge();
            double min_eff = 1.0;
            for (int m = 0; m < 4; ++m)
                min_eff = std::min(min_eff,
                                   autopilot.quad().motorEffectiveness(m));
            health.minMotorEffectiveness = min_eff;
            mode = policy.update(health);
        }

        // --- Apply the mode to the stack. ----------------------------
        const bool onboard_slam = !link_observed_up;
        sched.setTaskCost("outer.slam_frontend",
                          onboard_slam ? kFrontendOnboardCostS
                                       : kFrontendOffloadedCostS);
        sched.setTaskCost("outer.slam_backend",
                          onboard_slam ? kBackendOnboardCostS
                                       : kBackendOffloadedCostS);
        const bool shed = mode == FlightMode::RateShed ||
                          mode == FlightMode::LandSafe;
        sched.setTaskRate("outer.nav",
                          shed ? kNavShedRateHz : kNavRateHz);
        sched.setTaskRate("outer.slam_frontend",
                          shed ? kFrontendShedRateHz : kFrontendRateHz);
        if (rig) {
            rig->slam.setKeyframeMaxGap(
                onboard_slam || mode >= FlightMode::DegradedSlam
                    ? kKeyframeGapOnboard
                    : kKeyframeGapOffloaded);
        }
        if (mode == FlightMode::LandSafe)
            autopilot.commandLandSafe();

        // --- Fly one tick. -------------------------------------------
        autopilot.run(config.tickS);
        t = (k + 1) * config.tickS;
        sched.advanceTo(t);

        // --- SLAM frames (camera loss drops them on the floor). ------
        if (rig && !injector.active(FaultKind::CameraFrameLoss, t)) {
            // ~1 frame per 0.5 s of flight keeps the harness quick;
            // DegradedSlam halves the rate (reduced keyframe budget).
            const long divider =
                mode >= FlightMode::DegradedSlam ? 10 : 5;
            if (k % divider == divider - 1 &&
                rig->nextFrame < rig->world.spec().frames) {
                rig->slam.processFrame(
                    rig->world.renderFrame(rig->nextFrame++));
                ++report.slamFrames;
            }
        }

        // --- Drain the battery. --------------------------------------
        const Quantity<Watts> board_w =
            onboard_slam
                ? boardStateMeanW(BoardState::AutopilotSlamFlying) +
                      Quantity<Watts>(kOnboardExtraW)
                : boardStateMeanW(BoardState::Autopilot) +
                      Quantity<Watts>(kOffloadRadioW);
        pack.discharge(Quantity<Watts>(
                           autopilot.quad().electricalPowerW()) +
                           board_w,
                       Quantity<Seconds>(config.tickS));

        // --- Bookkeeping. --------------------------------------------
        report.maxEstErrM =
            std::max(report.maxEstErrM, autopilot.estimationErrorM());
        if (!autopilot.log().empty()) {
            const FlightSample &s = autopilot.log().back();
            const Vec3 err = {s.position.x - s.target.x,
                              s.position.y - s.target.y,
                              s.position.z - s.target.z};
            const double track_err = std::sqrt(
                err.x * err.x + err.y * err.y + err.z * err.z);
            track_err_sum += track_err;
            ++track_err_n;
            report.maxTrackErrM = std::max(report.maxTrackErrM,
                                           track_err);
        }

        // --- Termination. --------------------------------------------
        // Flyaway only counts while the mission target is still
        // being tracked: a land-safe descent under GPS denial
        // legitimately drifts from the (stale) waypoint, and is
        // judged by its touchdown instead.
        const bool flyaway = !autopilot.landSafeActive() &&
                             report.maxTrackErrM > config.flyawayErrM;
        if (autopilot.quad().upsideDown() ||
            autopilot.quad().maxImpactSpeed() >
                config.crashImpactSpeed ||
            flyaway) {
            report.crashed = true;
            break;
        }
        const Vec3 vel = autopilot.quad().state().velocity;
        const double speed = std::sqrt(vel.x * vel.x + vel.y * vel.y +
                                       vel.z * vel.z);
        if (t > 1.0 && autopilot.quad().onGround() && speed < 0.3 &&
            autopilot.landSafeActive()) {
            report.landed = true;
            break;
        }
        if (pack.depleted())
            break;
    }

    report.waypointsReached = autopilot.navigator().reachedCount();
    report.missionComplete = report.waypointsReached >= kWaypointGoal;
    report.flightTimeS = t;
    report.meanTrackErrM =
        track_err_n > 0 ? track_err_sum / track_err_n : 0.0;
    report.energyWh = pack.drawnEnergyWh().value();
    report.deadlineMisses = sched.totalDeadlineMisses();
    report.linkRetries = link.attempts();
    if (rig)
        report.slamKeyframes =
            static_cast<long>(rig->slam.map().keyframeCount());
    report.worstMode = policy.worstMode();
    report.transitions = policy.transitions();
    report.tier = DegradationPolicy::outcomeFor(
        report.crashed, report.missionComplete, report.worstMode);

    obs::metrics()
        .counter(report.crashed ? "fault.mission.crashed"
                                : "fault.mission.survived")
        .add(1);
    return report;
}

std::vector<MissionReport>
runScenarioBattery(const std::vector<FaultScenario> &scenarios,
                   const ResilienceConfig &config, int jobs)
{
    std::vector<MissionReport> reports(scenarios.size());
    if (scenarios.empty())
        return reports;

    // Results land in pre-allocated per-scenario slots: the battery
    // is bit-identical at any `jobs` (the engine determinism
    // contract) because no result depends on completion order.
    engine::ThreadPool pool(jobs);
    pool.parallelFor(scenarios.size(), 1,
                     [&](std::size_t i, int) {
                         reports[i] =
                             runResilienceMission(scenarios[i], config);
                     });
    return reports;
}

std::string
reportCsvHeader()
{
    return "scenario,policy,tier,crashed,landed,mission_complete,"
           "waypoints_reached,flight_time_s,max_est_err_m,"
           "mean_track_err_m,max_track_err_m,energy_wh,"
           "deadline_misses,link_retries,worst_mode,transitions";
}

std::string
reportCsvRow(const MissionReport &report)
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%s,%d,%s,%d,%d,%d,%zu,%.6g,%.6g,%.6g,%.6g,%.6g,%ld,%ld,%s,"
        "%zu",
        report.scenario.c_str(), report.policyEnabled ? 1 : 0,
        outcomeTierName(report.tier), report.crashed ? 1 : 0,
        report.landed ? 1 : 0, report.missionComplete ? 1 : 0,
        report.waypointsReached, report.flightTimeS, report.maxEstErrM,
        report.meanTrackErrM, report.maxTrackErrM, report.energyWh,
        report.deadlineMisses, report.linkRetries,
        flightModeName(report.worstMode), report.transitions.size());
    return buf;
}

std::string
batteryToCsv(const std::vector<MissionReport> &reports)
{
    std::string csv = reportCsvHeader() + "\n";
    for (const auto &report : reports) {
        csv += reportCsvRow(report);
        csv += '\n';
    }
    return csv;
}

} // namespace dronedse::fault
