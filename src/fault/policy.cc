#include "fault/policy.hh"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hh"
#include "obs/tracer.hh"
#include "util/logging.hh"

namespace dronedse::fault {

namespace {

/** Instant-marker name per mode (span names must be literals). */
const char *
modeSpanName(FlightMode mode)
{
    switch (mode) {
    case FlightMode::Nominal:
        return "fault.policy.nominal";
    case FlightMode::DegradedSlam:
        return "fault.policy.degraded_slam";
    case FlightMode::RateShed:
        return "fault.policy.rate_shed";
    case FlightMode::LandSafe:
        return "fault.policy.land_safe";
    }
    return "fault.policy.unknown";
}

} // namespace

const char *
flightModeName(FlightMode mode)
{
    switch (mode) {
    case FlightMode::Nominal:
        return "nominal";
    case FlightMode::DegradedSlam:
        return "degraded_slam";
    case FlightMode::RateShed:
        return "rate_shed";
    case FlightMode::LandSafe:
        return "land_safe";
    }
    return "unknown";
}

const char *
outcomeTierName(OutcomeTier tier)
{
    switch (tier) {
    case OutcomeTier::Crashed:
        return "crashed";
    case OutcomeTier::LandedSafe:
        return "landed_safe";
    case OutcomeTier::SurvivedDegraded:
        return "survived_degraded";
    case OutcomeTier::Completed:
        return "completed";
    }
    return "unknown";
}

DegradationPolicy::DegradationPolicy(PolicyConfig config)
    : config_(config), backoffS_(config.backoffMinS)
{
    if (config_.backoffMinS <= 0.0 ||
        config_.backoffMaxS < config_.backoffMinS ||
        config_.backoffFactor < 1.0)
        fatal("DegradationPolicy: invalid backoff configuration");
    if (config_.missHalfLifeS <= 0.0 || config_.recoveryHoldS < 0.0)
        fatal("DegradationPolicy: invalid timing configuration");
}

FlightMode
DegradationPolicy::demandedMode(const HealthSnapshot &health,
                                std::string &reason) const
{
    // LandSafe triggers: conditions the outer loop cannot out-fly.
    if (health.stateOfCharge <= config_.socLandFraction) {
        reason = "battery_floor";
        return FlightMode::LandSafe;
    }
    if (health.minMotorEffectiveness <
        config_.motorEffLandFraction) {
        reason = "motor_health";
        return FlightMode::LandSafe;
    }
    if (health.estErrM >= config_.estErrLandM) {
        reason = "estimation_runaway";
        return FlightMode::LandSafe;
    }
    if (gpsDownSince_ >= 0.0 &&
        health.t - gpsDownSince_ >= config_.gpsDenialLandS) {
        reason = "gps_denial_timeout";
        return FlightMode::LandSafe;
    }

    // RateShed triggers: the outer loop is starving the inner loop.
    if (missLevel_ >= config_.missShedLevel) {
        reason = "deadline_misses";
        return FlightMode::RateShed;
    }
    if (health.estErrM >= config_.estErrShedM) {
        reason = "estimation_error";
        return FlightMode::RateShed;
    }

    // DegradedSlam triggers: an input the mission planned on is gone.
    if (!health.linkUp) {
        reason = "offload_link_down";
        return FlightMode::DegradedSlam;
    }
    if (!health.gpsAvailable) {
        reason = "gps_denied";
        return FlightMode::DegradedSlam;
    }

    reason = "clear";
    return FlightMode::Nominal;
}

FlightMode
DegradationPolicy::update(const HealthSnapshot &health)
{
    if (haveLast_ && health.t < lastT_ - 1e-12)
        fatal("DegradationPolicy::update: time went backwards");

    const double dt = haveLast_ ? std::max(0.0, health.t - lastT_)
                                : 0.0;

    // Leaky deadline-miss accumulator: decay, then add new misses.
    const long new_misses =
        haveLast_ ? std::max(0L, health.deadlineMisses - lastMisses_)
                  : health.deadlineMisses;
    missLevel_ = missLevel_ *
                     std::exp2(-dt / config_.missHalfLifeS) +
                 static_cast<double>(new_misses);

    // Continuous GPS-denial clock.
    if (health.gpsAvailable) {
        gpsDownSince_ = -1.0;
    } else if (gpsDownSince_ < 0.0) {
        gpsDownSince_ = health.t;
    }

    // Offload retry bookkeeping: a fresh outage schedules the first
    // retry; a healthy link resets the backoff.
    if (!health.linkUp && !linkDown_) {
        linkDown_ = true;
        backoffS_ = config_.backoffMinS;
        nextRetryT_ = health.t + backoffS_;
        retryIntervals_.push_back(backoffS_);
    } else if (health.linkUp && linkDown_) {
        linkDown_ = false;
        backoffS_ = config_.backoffMinS;
    }

    haveLast_ = true;
    lastT_ = health.t;
    lastMisses_ = health.deadlineMisses;

    std::string reason;
    const FlightMode demanded = demandedMode(health, reason);

    if (mode_ == FlightMode::LandSafe) {
        // Terminal: once the policy decides to land, it lands.
        return mode_;
    }

    if (demanded > mode_) {
        // Escalation is immediate.
        transitionTo(demanded, health.t, reason);
        lastElevatedT_ = health.t;
    } else if (demanded == mode_) {
        lastElevatedT_ = health.t;
    } else if (health.t - lastElevatedT_ >= config_.recoveryHoldS) {
        // De-escalate only after the triggers have stayed clear.
        transitionTo(demanded, health.t, "recovered");
        lastElevatedT_ = health.t;
    }
    return mode_;
}

void
DegradationPolicy::transitionTo(FlightMode to, double t,
                                const std::string &reason)
{
    transitions_.push_back({t, mode_, to, reason});
    mode_ = to;
    worst_ = std::max(worst_, to);

    obs::metrics().counter("fault.policy.transitions").add(1);
    obs::metrics()
        .gauge("fault.policy.mode")
        .set(static_cast<double>(static_cast<int>(to)));
    obs::instant(modeSpanName(to), "fault");
}

bool
DegradationPolicy::offloadRetryDue(double t) const
{
    return linkDown_ && t + 1e-12 >= nextRetryT_;
}

void
DegradationPolicy::onRetryResult(double t, bool success)
{
    obs::metrics().counter("fault.policy.link_retries").add(1);
    if (success) {
        backoffS_ = config_.backoffMinS;
        linkDown_ = false;
        return;
    }
    backoffS_ = std::min(backoffS_ * config_.backoffFactor,
                         config_.backoffMaxS);
    nextRetryT_ = t + backoffS_;
    retryIntervals_.push_back(backoffS_);
}

OutcomeTier
DegradationPolicy::outcomeFor(bool crashed, bool mission_complete,
                              FlightMode worst)
{
    if (crashed)
        return OutcomeTier::Crashed;
    if (mission_complete) {
        return worst == FlightMode::Nominal
                   ? OutcomeTier::Completed
                   : OutcomeTier::SurvivedDegraded;
    }
    return worst == FlightMode::LandSafe
               ? OutcomeTier::LandedSafe
               : OutcomeTier::SurvivedDegraded;
}

} // namespace dronedse::fault
