/**
 * @file
 * Mission-resilience harness: closed-loop flights under scripted
 * faults, with and without the degradation policy.
 *
 * One `runResilienceMission` flies the full stack — EKF estimation,
 * the Table 2 cascaded inner loop, waypoint navigation, a scheduled
 * companion-computer outer loop, the offload link, and a draining
 * battery — through one `FaultScenario`, applying the
 * `FaultInjector` every tick and (optionally) letting the
 * `DegradationPolicy` react.  The run is fully deterministic: one
 * seed fixes wind, sensor noise, and every fault, so a scenario's
 * outcome is a regression artifact, not a statistic.
 *
 * `runScenarioBattery` fans a scenario list across the engine's
 * work-stealing pool; results are written to per-scenario slots, so
 * the battery is bit-identical at any thread count (the engine's
 * determinism contract, DESIGN.md section 9).
 */

#ifndef DRONEDSE_FAULT_MISSION_HH
#define DRONEDSE_FAULT_MISSION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "fault/policy.hh"

namespace dronedse::fault {

/** Harness configuration. */
struct ResilienceConfig
{
    /** Mission length (s). */
    double durationS = 60.0;
    /** Run the DegradationPolicy (false = injector only). */
    bool policyEnabled = true;
    /** Policy thresholds. */
    PolicyConfig policy{};
    /** Seed for wind and sensor noise. */
    std::uint64_t seed = 17;
    /** Outer-loop tick (s): injector/policy/scheduler cadence. */
    double tickS = 0.1;
    /** Touchdown above this speed is a crash, not a landing (m/s). */
    double crashImpactSpeed = 1.8;
    /** Tracking error past this is departed flight (m). */
    double flyawayErrM = 25.0;
    /**
     * Run the real SLAM pipeline on the camera stream (slower;
     * the scheduler's SLAM task cost model runs either way).
     */
    bool withSlam = false;
};

/** What one scenario flight produced. */
struct MissionReport
{
    std::string scenario;
    bool policyEnabled = true;
    OutcomeTier tier = OutcomeTier::Completed;

    bool crashed = false;
    bool landed = false;
    bool missionComplete = false;
    /** Survey waypoints reached (of kWaypointGoal). */
    std::size_t waypointsReached = 0;

    /** Mission time when the run ended (s). */
    double flightTimeS = 0.0;
    /** Peak estimator-vs-truth position error (m). */
    double maxEstErrM = 0.0;
    /** Mean truth-vs-target tracking error over the flight (m). */
    double meanTrackErrM = 0.0;
    /** Peak truth-vs-target tracking error (m). */
    double maxTrackErrM = 0.0;
    /** Energy drawn from the pack (Wh). */
    double energyWh = 0.0;

    long deadlineMisses = 0;
    long linkRetries = 0;
    /** SLAM frames processed (withSlam only). */
    long slamFrames = 0;
    /** SLAM keyframes created (withSlam only). */
    long slamKeyframes = 0;

    FlightMode worstMode = FlightMode::Nominal;
    std::vector<ModeTransition> transitions;
};

/** Survey waypoints that must be reached for mission completion. */
inline constexpr std::size_t kWaypointGoal = 5;

/** Fly one scenario. */
MissionReport runResilienceMission(const FaultScenario &scenario,
                                   const ResilienceConfig &config = {});

/**
 * Fly every scenario, `jobs` at a time (0 = hardware concurrency).
 * Output order matches input order regardless of `jobs`.
 */
std::vector<MissionReport>
runScenarioBattery(const std::vector<FaultScenario> &scenarios,
                   const ResilienceConfig &config = {}, int jobs = 1);

/** CSV header matching `reportCsvRow`. */
std::string reportCsvHeader();

/** One report as a CSV row (no trailing newline). */
std::string reportCsvRow(const MissionReport &report);

/** Whole battery as a CSV document. */
std::string batteryToCsv(const std::vector<MissionReport> &reports);

} // namespace dronedse::fault

#endif // DRONEDSE_FAULT_MISSION_HH
