#include "fault/injector.hh"

#include <algorithm>

namespace dronedse::fault {

FaultInjector::FaultInjector(FaultScenario scenario)
    : scenario_(std::move(scenario))
{
}

bool
FaultInjector::active(FaultKind kind, double t) const
{
    for (const auto &e : scenario_.events) {
        if (e.kind == kind && e.activeAt(t))
            return true;
    }
    return false;
}

int
FaultInjector::activeCount(double t) const
{
    int count = 0;
    for (const auto &e : scenario_.events)
        count += e.activeAt(t) ? 1 : 0;
    return count;
}

double
FaultInjector::magnitude(FaultKind kind, double t, double neutral) const
{
    const bool take_min = kind == FaultKind::MotorDerate;
    bool any = false;
    double strongest = neutral;
    for (const auto &e : scenario_.events) {
        if (e.kind != kind || !e.activeAt(t))
            continue;
        if (!any) {
            strongest = e.magnitude;
            any = true;
        } else {
            strongest = take_min ? std::min(strongest, e.magnitude)
                                 : std::max(strongest, e.magnitude);
        }
    }
    return strongest;
}

double
FaultInjector::motorEffectiveness(int index, double t) const
{
    double eff = 1.0;
    for (const auto &e : scenario_.events) {
        if (e.kind == FaultKind::MotorDerate && e.index == index &&
            e.activeAt(t)) {
            eff = std::min(eff, e.magnitude);
        }
    }
    return std::clamp(eff, 0.0, 1.0);
}

double
FaultInjector::lastEventEnd() const
{
    double end = 0.0;
    for (const auto &e : scenario_.events)
        end = std::max(end, e.startS + e.durationS);
    return end;
}

} // namespace dronedse::fault
