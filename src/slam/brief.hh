/**
 * @file
 * BRIEF-256 binary descriptor with Hamming distance — the descriptor
 * half of the ORB-style front end.
 */

#ifndef DRONEDSE_SLAM_BRIEF_HH
#define DRONEDSE_SLAM_BRIEF_HH

#include <array>
#include <cstdint>
#include <vector>

#include "slam/fast.hh"
#include "slam/image.hh"

namespace dronedse {

/** 256-bit binary descriptor. */
struct Descriptor
{
    std::array<std::uint64_t, 4> bits{};

    /** Hamming distance to another descriptor. */
    int distance(const Descriptor &other) const;
};

/** A described keypoint. */
struct Feature
{
    Corner corner;
    Descriptor descriptor;
};

/** Descriptor extractor with a fixed sampling pattern. */
class BriefExtractor
{
  public:
    /** The pattern is fixed per seed so descriptors are comparable. */
    explicit BriefExtractor(std::uint64_t pattern_seed = 42);

    /** Describe one corner (must be >= 12 px from the border). */
    Descriptor describe(const Image &image, const Corner &corner) const;

    /** Describe a full corner set. */
    std::vector<Feature> describeAll(const Image &image,
                                     const std::vector<Corner> &corners)
        const;

  private:
    /** 256 point pairs within the 15x15 patch. */
    std::array<std::array<std::int8_t, 4>, 256> pattern_;
};

} // namespace dronedse

#endif // DRONEDSE_SLAM_BRIEF_HH
