#include "slam/pnp.hh"

#include <cmath>

#include "util/matrix.hh"

namespace dronedse {

PnpResult
solvePnp(const PinholeCamera &camera,
         const std::vector<PnpPoint> &points, const Se3 &initial,
         const PnpConfig &config)
{
    PnpResult result;
    result.pose = initial;
    if (points.size() < 4)
        return result;

    for (int iter = 0; iter < config.maxIterations; ++iter) {
        Matrix h(6, 6);
        std::vector<double> b(6, 0.0);
        double chi2 = 0.0;
        int used = 0;

        for (const PnpPoint &pt : points) {
            const Vec3 p = result.pose.apply(pt.world);
            if (p.z <= 0.05)
                continue;
            ++result.jacobianEvals;

            const double iz = 1.0 / p.z;
            const double u = camera.fx * p.x * iz + camera.cx;
            const double v = camera.fy * p.y * iz + camera.cy;
            const double ru = u - pt.pixel.u;
            const double rv = v - pt.pixel.v;
            const double err = std::sqrt(ru * ru + rv * rv);

            // Huber weight.
            double w = 1.0;
            if (err > config.huberPx)
                w = config.huberPx / err;

            // d(proj)/dp.
            const double ju[3] = {camera.fx * iz, 0.0,
                                  -camera.fx * p.x * iz * iz};
            const double jv[3] = {0.0, camera.fy * iz,
                                  -camera.fy * p.y * iz * iz};
            // dp/d(omega) = -[p]x ; dp/d(upsilon) = I.
            // Columns: [omega(3), upsilon(3)].
            double row_u[6], row_v[6];
            // -[p]x columns: d p/d omega_k.
            const double skew[3][3] = {{0, p.z, -p.y},
                                       {-p.z, 0, p.x},
                                       {p.y, -p.x, 0}};
            for (int k = 0; k < 3; ++k) {
                row_u[k] = ju[0] * skew[0][k] + ju[1] * skew[1][k] +
                           ju[2] * skew[2][k];
                row_v[k] = jv[0] * skew[0][k] + jv[1] * skew[1][k] +
                           jv[2] * skew[2][k];
                row_u[k + 3] = ju[k];
                row_v[k + 3] = jv[k];
            }

            for (int r = 0; r < 6; ++r) {
                for (int c = 0; c < 6; ++c) {
                    h(static_cast<std::size_t>(r),
                      static_cast<std::size_t>(c)) +=
                        w * (row_u[r] * row_u[c] + row_v[r] * row_v[c]);
                }
                b[static_cast<std::size_t>(r)] -=
                    w * (row_u[r] * ru + row_v[r] * rv);
            }
            chi2 += w * (ru * ru + rv * rv);
            ++used;
        }

        if (used < 4)
            return result;

        h.addToDiagonal(1e-6);
        std::vector<double> dx;
        if (!h.solveCholesky(b, dx))
            return result;

        result.pose = se3BoxPlus(result.pose, {dx[0], dx[1], dx[2]},
                                 {dx[3], dx[4], dx[5]});
        result.iterations = iter + 1;

        double step = 0.0;
        for (double d : dx)
            step += d * d;
        if (std::sqrt(step) < config.epsilon)
            break;
        (void)chi2;
    }

    // Inlier count and RMS at the final pose.
    double ss = 0.0;
    int inliers = 0;
    for (const PnpPoint &pt : points) {
        const Vec3 p = result.pose.apply(pt.world);
        if (p.z <= 0.05)
            continue;
        const double u = camera.fx * p.x / p.z + camera.cx;
        const double v = camera.fy * p.y / p.z + camera.cy;
        const double du = u - pt.pixel.u, dv = v - pt.pixel.v;
        const double err2 = du * du + dv * dv;
        if (err2 <= config.outlierPx * config.outlierPx) {
            ss += err2;
            ++inliers;
        }
    }
    result.inliers = inliers;
    result.rmsReprojPx =
        inliers > 0 ? std::sqrt(ss / static_cast<double>(inliers)) : 0.0;
    result.converged = inliers >= 4;
    return result;
}

} // namespace dronedse
