#include "slam/fast.hh"

#include <algorithm>
#include <array>
#include <cstdlib>

namespace dronedse {

namespace {

/** Bresenham circle of radius 3: the 16 segment-test offsets. */
constexpr std::array<std::pair<int, int>, 16> kCircle = {{
    {0, -3}, {1, -3}, {2, -2}, {3, -1}, {3, 0}, {3, 1}, {2, 2},
    {1, 3}, {0, 3}, {-1, 3}, {-2, 2}, {-3, 1}, {-3, 0}, {-3, -1},
    {-2, -2}, {-1, -3},
}};

/**
 * Segment test: does a contiguous arc of `arc` pixels sit entirely
 * above center+t or below center-t?  Returns the contrast score
 * (sum of |diff|-t over the best arc) or 0.
 */
int
segmentTest(const Image &img, int x, int y, int threshold, int arc)
{
    const int center = img.at(x, y);
    std::array<int, 16> diff;
    for (int i = 0; i < 16; ++i) {
        diff[static_cast<std::size_t>(i)] =
            img.at(x + kCircle[static_cast<std::size_t>(i)].first,
                   y + kCircle[static_cast<std::size_t>(i)].second) -
            center;
    }

    auto arc_score = [&](bool bright) {
        int best = 0, run = 0, run_score = 0;
        // Walk the circle twice to handle wrap-around runs.
        for (int i = 0; i < 32; ++i) {
            const int d = diff[static_cast<std::size_t>(i % 16)];
            const bool pass = bright ? d > threshold : d < -threshold;
            if (pass) {
                ++run;
                run_score += std::abs(d) - threshold;
                if (run >= arc)
                    best = std::max(best, run_score);
                if (run >= 16)
                    break; // full circle
            } else {
                run = 0;
                run_score = 0;
            }
        }
        return best;
    };

    return std::max(arc_score(true), arc_score(false));
}

} // namespace

std::vector<Corner>
detectFast(const Image &image, const FastConfig &config, FastWork *work)
{
    std::vector<Corner> raw;
    const int m = std::max(config.margin, 3);

    for (int y = m; y < image.height() - m; ++y) {
        for (int x = m; x < image.width() - m; ++x) {
            if (work)
                ++work->pixelsTested;

            // Cheap pre-test on the 4 compass points: at least 3
            // must differ strongly for a 9-arc to exist.
            const int c = image.at(x, y);
            int extreme = 0;
            for (int i : {0, 4, 8, 12}) {
                const int d =
                    image.at(x + kCircle[static_cast<std::size_t>(i)]
                                     .first,
                             y + kCircle[static_cast<std::size_t>(i)]
                                     .second) -
                    c;
                if (d > config.threshold || d < -config.threshold)
                    ++extreme;
            }
            if (extreme < 3)
                continue;

            const int score = segmentTest(image, x, y,
                                          config.threshold,
                                          config.arcLength);
            if (score > 0)
                raw.push_back({x, y, score});
        }
    }
    if (work)
        work->rawCorners += raw.size();

    // Non-maximum suppression: strongest first, blank out a disc.
    std::sort(raw.begin(), raw.end(),
              [](const Corner &a, const Corner &b) {
                  return a.score > b.score;
              });
    std::vector<Corner> kept;
    const int r2 = config.nmsRadius * config.nmsRadius;
    for (const Corner &c : raw) {
        bool suppressed = false;
        for (const Corner &k : kept) {
            const int dx = c.x - k.x, dy = c.y - k.y;
            if (dx * dx + dy * dy <= r2) {
                suppressed = true;
                break;
            }
        }
        if (!suppressed) {
            kept.push_back(c);
            if (static_cast<int>(kept.size()) >= config.maxCorners)
                break;
        }
    }
    return kept;
}

} // namespace dronedse
