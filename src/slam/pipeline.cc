#include "slam/pipeline.hh"

#include <chrono>
#include <cmath>
#include <unordered_set>

#include "obs/tracer.hh"
#include "slam/triangulation.hh"
#include "util/logging.hh"

namespace dronedse {

namespace {

/** Trace-span name of each phase (string literals: spans keep the
 *  pointer until capture). */
const char *
slamPhaseSpanName(SlamPhase phase)
{
    switch (phase) {
      case SlamPhase::FeatureExtraction:
        return "slam.feature-extraction";
      case SlamPhase::Matching:
        return "slam.matching";
      case SlamPhase::Tracking:
        return "slam.tracking";
      case SlamPhase::LocalBa:
        return "slam.local-ba";
      case SlamPhase::GlobalBa:
        return "slam.global-ba";
      case SlamPhase::NumPhases:
        break;
    }
    panic("slamPhaseSpanName: invalid phase");
}

/**
 * Scoped wall-clock accumulator.  The same two clock readings feed
 * the bespoke per-phase totals and the obs span, so a trace's
 * per-phase span sums reproduce the Figure 17 work accounting
 * exactly (asserted in tests/obs/test_slam_trace.cc).
 */
class PhaseTimer
{
  public:
    PhaseTimer(PhaseWork &work, SlamPhase phase)
        : work_(work), phase_(phase),
          start_(std::chrono::steady_clock::now())
    {
    }

    ~PhaseTimer()
    {
        const auto end = std::chrono::steady_clock::now();
        work_.seconds +=
            std::chrono::duration<double>(end - start_).count();
        obs::tracer().recordSpan(slamPhaseSpanName(phase_), "slam",
                                 start_, end);
    }

  private:
    PhaseWork &work_;
    SlamPhase phase_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace

const char *
slamPhaseName(SlamPhase phase)
{
    switch (phase) {
      case SlamPhase::FeatureExtraction:
        return "feature-extraction";
      case SlamPhase::Matching:
        return "matching";
      case SlamPhase::Tracking:
        return "tracking";
      case SlamPhase::LocalBa:
        return "local-ba";
      case SlamPhase::GlobalBa:
        return "global-ba";
      case SlamPhase::NumPhases:
        break;
    }
    panic("slamPhaseName: invalid phase");
}

SlamPipeline::SlamPipeline(PinholeCamera camera, SlamConfig config)
    : camera_(camera), config_(config)
{
}

void
SlamPipeline::setKeyframeMaxGap(int frames)
{
    if (frames < 1)
        fatal("SlamPipeline::setKeyframeMaxGap: gap must be >= 1");
    config_.keyframeMaxGap = frames;
}

std::vector<Feature>
SlamPipeline::extractFeatures(const Image &image)
{
    PhaseTimer timer(phase(SlamPhase::FeatureExtraction), SlamPhase::FeatureExtraction);
    FastWork fast_work;
    const auto corners = detectFast(image, config_.fast, &fast_work);
    const auto features = brief_.describeAll(image, corners);
    // Ops: segment tests plus 256 smoothed sample pairs (3x3 box
    // means) per descriptor.
    phase(SlamPhase::FeatureExtraction).ops +=
        fast_work.pixelsTested + 4608 * features.size();
    return features;
}

void
SlamPipeline::bootstrap(const SyntheticFrame &f0,
                        const SyntheticFrame &f1)
{
    if (bootstrapped_)
        fatal("SlamPipeline::bootstrap: already bootstrapped");

    const auto feat0 = extractFeatures(f0.image);
    const auto feat1 = extractFeatures(f1.image);

    std::vector<Match> matches;
    {
        PhaseTimer timer(phase(SlamPhase::Matching), SlamPhase::Matching);
        MatchWork mw;
        matches = matchFeatures(feat0, feat1, config_.matcher, &mw);
        phase(SlamPhase::Matching).ops += mw.comparisons;
    }

    Keyframe kf0, kf1;
    kf0.frameIndex = f0.index;
    kf0.pose = f0.truePose;
    kf1.frameIndex = f1.index;
    kf1.pose = f1.truePose;

    std::unordered_set<int> used1;
    for (const Match &m : matches) {
        const Feature &a =
            feat0[static_cast<std::size_t>(m.queryIndex)];
        const Feature &b =
            feat1[static_cast<std::size_t>(m.trainIndex)];
        const Pixel pa{static_cast<double>(a.corner.x),
                       static_cast<double>(a.corner.y)};
        const Pixel pb{static_cast<double>(b.corner.x),
                       static_cast<double>(b.corner.y)};
        const auto world =
            triangulate(camera_, f0.truePose, pa, f1.truePose, pb);
        if (!world)
            continue;
        const int id = map_.addPoint(*world, a.descriptor);
        kf0.observations.push_back({id, pa});
        kf1.observations.push_back({id, pb});
        used1.insert(m.trainIndex);
    }

    lastKeyframeLoose_.clear();
    for (std::size_t i = 0; i < feat1.size(); ++i) {
        if (!used1.count(static_cast<int>(i)))
            lastKeyframeLoose_.push_back(feat1[i]);
    }

    map_.addKeyframe(std::move(kf0));
    lastKeyframeId_ = map_.addKeyframe(std::move(kf1));
    lastKeyframePose_ = f1.truePose;
    lastPose_ = f1.truePose;
    velocity_ = f0.truePose.inverse().compose(f1.truePose);
    trajectory_.push_back(f0.truePose);
    trajectory_.push_back(f1.truePose);
    bootstrapped_ = true;
}

FrameResult
SlamPipeline::processFrame(const SyntheticFrame &frame)
{
    if (!bootstrapped_)
        fatal("SlamPipeline::processFrame: bootstrap first");

    FrameResult out;
    out.index = frame.index;

    const auto features = extractFeatures(frame.image);
    out.featureCount = static_cast<int>(features.size());

    // Local map: points observed by the recent keyframes.
    std::vector<int> local_point_ids;
    std::vector<Descriptor> local_descriptors;
    {
        std::unordered_set<int> seen;
        const int kf_count = static_cast<int>(map_.keyframeCount());
        const int from =
            std::max(0, kf_count - config_.localWindow);
        for (int kf = from; kf < kf_count; ++kf) {
            for (const auto &obs : map_.keyframe(kf).observations) {
                if (obs.mapPointId >= 0 &&
                    seen.insert(obs.mapPointId).second) {
                    local_point_ids.push_back(obs.mapPointId);
                    local_descriptors.push_back(
                        map_.point(obs.mapPointId).descriptor);
                }
            }
        }
    }

    std::vector<Match> matches;
    {
        PhaseTimer timer(phase(SlamPhase::Matching), SlamPhase::Matching);
        MatchWork mw;
        matches = matchDescriptors(features, local_descriptors,
                                   config_.matcher, &mw);
        phase(SlamPhase::Matching).ops += mw.comparisons;
    }
    out.matchCount = static_cast<int>(matches.size());

    // PnP against the matched map points, seeded by the constant-
    // velocity motion model.
    std::vector<PnpPoint> pnp_points;
    std::vector<int> matched_point_ids;
    pnp_points.reserve(matches.size());
    for (const Match &m : matches) {
        const Feature &f =
            features[static_cast<std::size_t>(m.queryIndex)];
        PnpPoint p;
        p.world = map_
                      .point(local_point_ids[static_cast<std::size_t>(
                          m.trainIndex)])
                      .position;
        p.pixel = {static_cast<double>(f.corner.x),
                   static_cast<double>(f.corner.y)};
        pnp_points.push_back(p);
        matched_point_ids.push_back(
            local_point_ids[static_cast<std::size_t>(m.trainIndex)]);
    }

    PnpResult pnp;
    {
        PhaseTimer timer(phase(SlamPhase::Tracking), SlamPhase::Tracking);
        const Se3 predicted = lastPose_.compose(velocity_);
        pnp = solvePnp(camera_, pnp_points, predicted, config_.pnp);
        phase(SlamPhase::Tracking).ops +=
            pnp.jacobianEvals * 60; // ~flops per Jacobian row pair
    }

    if (pnp.converged && pnp.inliers >= 8) {
        out.tracked = true;
        velocity_ = lastPose_.inverse().compose(pnp.pose);
        lastPose_ = pnp.pose;
        out.estimatedPose = pnp.pose;
        out.inlierCount = pnp.inliers;
    } else if (config_.relocalize) {
        // Relocalization: match against the whole map and retry
        // with a wider solver budget.
        std::vector<Match> reloc_matches;
        {
            PhaseTimer timer(phase(SlamPhase::Matching), SlamPhase::Matching);
            MatchWork mw;
            std::vector<Descriptor> all;
            all.reserve(map_.pointCount());
            for (const auto &pt : map_.points())
                all.push_back(pt.descriptor);
            reloc_matches = matchDescriptors(features, all,
                                             config_.matcher, &mw);
            phase(SlamPhase::Matching).ops += mw.comparisons;
        }
        std::vector<PnpPoint> reloc_points;
        std::vector<int> reloc_ids;
        for (const Match &m : reloc_matches) {
            const Feature &f =
                features[static_cast<std::size_t>(m.queryIndex)];
            reloc_points.push_back(
                {map_.points()[static_cast<std::size_t>(m.trainIndex)]
                     .position,
                 {static_cast<double>(f.corner.x),
                  static_cast<double>(f.corner.y)}});
            reloc_ids.push_back(
                map_.points()[static_cast<std::size_t>(m.trainIndex)]
                    .id);
        }
        PnpConfig wide = config_.pnp;
        wide.maxIterations = 25;
        PnpResult reloc;
        {
            PhaseTimer timer(phase(SlamPhase::Tracking), SlamPhase::Tracking);
            reloc = solvePnp(camera_, reloc_points, lastPose_, wide);
            phase(SlamPhase::Tracking).ops +=
                reloc.jacobianEvals * 60;
        }
        if (reloc.converged && reloc.inliers >= 12) {
            out.tracked = true;
            out.inlierCount = reloc.inliers;
            lastPose_ = reloc.pose;
            out.estimatedPose = reloc.pose;
            velocity_ = Se3{}; // restart the motion model
            pnp = reloc;
            matches = std::move(reloc_matches);
            matched_point_ids = std::move(reloc_ids);
        } else {
            // Still lost: hold the last pose (no runaway coasting).
            out.estimatedPose = lastPose_;
            velocity_ = Se3{};
        }
    } else {
        out.estimatedPose = lastPose_;
        velocity_ = Se3{};
    }
    trajectory_.push_back(out.estimatedPose);

    ++framesSinceKeyframe_;
    maybeCreateKeyframe(frame, features, matches, matched_point_ids,
                        pnp, out);
    return out;
}

void
SlamPipeline::maybeCreateKeyframe(const SyntheticFrame &frame,
                                  const std::vector<Feature> &features,
                                  const std::vector<Match> &matches,
                                  const std::vector<int> &matched_points,
                                  const PnpResult &pnp, FrameResult &out)
{
    const bool starving =
        out.tracked && pnp.inliers < config_.keyframeMinInliers;
    const bool stale = framesSinceKeyframe_ >= config_.keyframeMaxGap;
    if (!out.tracked || (!starving && !stale))
        return;
    // Quality gate: a sloppy pose would triangulate garbage and
    // poison the map.
    if (pnp.rmsReprojPx > 2.5 || pnp.inliers < 25)
        return;

    Keyframe kf;
    kf.frameIndex = frame.index;
    kf.pose = out.estimatedPose;

    // Keep only matches consistent with the refined pose: feeding
    // PnP outliers into bundle adjustment corrupts the map.
    std::unordered_set<int> used;
    for (std::size_t i = 0; i < matches.size(); ++i) {
        const Feature &f = features[static_cast<std::size_t>(
            matches[i].queryIndex)];
        const Pixel px{static_cast<double>(f.corner.x),
                       static_cast<double>(f.corner.y)};
        const Vec3 p = kf.pose.apply(
            map_.point(matched_points[i]).position);
        used.insert(matches[i].queryIndex);
        if (p.z <= 0.05)
            continue;
        const double du =
            camera_.fx * p.x / p.z + camera_.cx - px.u;
        const double dv =
            camera_.fy * p.y / p.z + camera_.cy - px.v;
        if (du * du + dv * dv >
            config_.pnp.outlierPx * config_.pnp.outlierPx) {
            continue;
        }
        kf.observations.push_back({matched_points[i], px});
    }

    // Triangulate fresh landmarks from this keyframe's unmatched
    // features against the previous keyframe's loose features.
    std::vector<Feature> loose;
    for (std::size_t i = 0; i < features.size(); ++i) {
        if (!used.count(static_cast<int>(i)))
            loose.push_back(features[i]);
    }
    {
        PhaseTimer timer(phase(SlamPhase::Matching), SlamPhase::Matching);
        MatchWork mw;
        const auto new_matches = matchFeatures(
            loose, lastKeyframeLoose_, config_.matcher, &mw);
        phase(SlamPhase::Matching).ops += mw.comparisons;

        for (const Match &m : new_matches) {
            const Feature &a =
                loose[static_cast<std::size_t>(m.queryIndex)];
            const Feature &b = lastKeyframeLoose_[
                static_cast<std::size_t>(m.trainIndex)];
            const Pixel pa{static_cast<double>(a.corner.x),
                           static_cast<double>(a.corner.y)};
            const Pixel pb{static_cast<double>(b.corner.x),
                           static_cast<double>(b.corner.y)};
            const auto world = triangulate(camera_, kf.pose, pa,
                                           lastKeyframePose_, pb);
            if (!world)
                continue;
            // Depth gate: wild triangulations poison the map.
            if (kf.pose.apply(*world).z > config_.maxPointDepthM)
                continue;
            // Verify the point reprojects tightly in both views.
            const auto ra = camera_.projectWorld(kf.pose, *world);
            const auto rb =
                camera_.projectWorld(lastKeyframePose_, *world);
            if (!ra || !rb)
                continue;
            const double ea = std::hypot(ra->u - pa.u, ra->v - pa.v);
            const double eb = std::hypot(rb->u - pb.u, rb->v - pb.v);
            if (ea > 2.0 || eb > 2.0)
                continue;
            const int id = map_.addPoint(*world, a.descriptor);
            kf.observations.push_back({id, pa});
        }
    }

    lastKeyframeLoose_ = std::move(loose);
    lastKeyframePose_ = kf.pose;
    lastKeyframeId_ = map_.addKeyframe(std::move(kf));
    framesSinceKeyframe_ = 0;
    out.newKeyframe = true;

    // Drop stale single-observation points (failed triangulations).
    map_.cullPoints(2, std::max(0, lastKeyframeId_ -
                                       config_.localWindow));

    // Local bundle adjustment over the recent window.
    {
        PhaseTimer timer(phase(SlamPhase::LocalBa), SlamPhase::LocalBa);
        const int kf_count = static_cast<int>(map_.keyframeCount());
        const int from = std::max(0, kf_count - config_.localWindow);
        std::vector<Se3> before;
        for (int k = from; k < kf_count; ++k)
            before.push_back(map_.keyframe(k).pose);
        const BaResult ba = bundleAdjust(camera_, map_, from, kf_count,
                                         config_.localBa);
        // Ops: Jacobians dominate; each is ~200 flops, plus 3x3
        // block solves.
        phase(SlamPhase::LocalBa).ops +=
            ba.jacobianEvals * 200 + ba.pointBlockSolves * 50;
        // Divergence guard: reject steps that teleport a keyframe —
        // flat gauge directions can move the window without raising
        // the robust cost.
        for (int k = from; k < kf_count; ++k) {
            const double moved =
                (map_.keyframe(k).pose.center() -
                 before[static_cast<std::size_t>(k - from)].center())
                    .norm();
            if (moved > 1.0) {
                for (int r = from; r < kf_count; ++r)
                    map_.keyframe(r).pose = before[
                        static_cast<std::size_t>(r - from)];
                break;
            }
        }
    }

    // Periodic global refinement (the drift-arresting role loop
    // closure plays in the full system).
    if (config_.globalBaEveryKeyframes > 0 &&
        lastKeyframeId_ > 0 &&
        lastKeyframeId_ % config_.globalBaEveryKeyframes == 0) {
        PhaseTimer timer(phase(SlamPhase::GlobalBa), SlamPhase::GlobalBa);
        const BaResult ba = globalBundleAdjust(camera_, map_,
                                               config_.globalBa);
        phase(SlamPhase::GlobalBa).ops +=
            ba.jacobianEvals * 200 + ba.pointBlockSolves * 50 +
            static_cast<std::uint64_t>(ba.schurDimension) *
                ba.schurDimension * ba.schurDimension / 3;
    }

    // Track the refined keyframe pose.
    lastPose_ = map_.keyframe(lastKeyframeId_).pose;
    lastKeyframePose_ = lastPose_;
    if (!trajectory_.empty())
        trajectory_.back() = lastPose_;
}

void
SlamPipeline::finish()
{
    if (!config_.globalBaAtEnd || map_.keyframeCount() < 3)
        return;
    PhaseTimer timer(phase(SlamPhase::GlobalBa), SlamPhase::GlobalBa);
    const BaResult ba = globalBundleAdjust(camera_, map_,
                                           config_.globalBa);
    phase(SlamPhase::GlobalBa).ops +=
        ba.jacobianEvals * 200 + ba.pointBlockSolves * 50 +
        static_cast<std::uint64_t>(ba.schurDimension) *
            ba.schurDimension * ba.schurDimension / 3;
}

double
SlamPipeline::ateRmseM(const std::vector<Se3> &truth) const
{
    if (truth.size() != trajectory_.size())
        fatal("ateRmseM: trajectory length mismatch");
    if (trajectory_.empty())
        return 0.0;
    double ss = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        const Vec3 d =
            trajectory_[i].center() - truth[i].center();
        ss += d.squaredNorm();
    }
    return std::sqrt(ss / static_cast<double>(truth.size()));
}

std::string
SlamPipeline::trajectoryToTum(const std::vector<Se3> &poses,
                              double fps)
{
    if (fps <= 0.0)
        fatal("trajectoryToTum: fps must be positive");
    std::string out;
    char line[192];
    for (std::size_t i = 0; i < poses.size(); ++i) {
        // TUM stores camera-to-world: centre + inverse rotation.
        const Se3 inv = poses[i].inverse();
        const Vec3 c = inv.translation;
        const Quaternion &q = inv.rotation;
        std::snprintf(line, sizeof(line),
                      "%.6f %.6f %.6f %.6f %.6f %.6f %.6f %.6f\n",
                      static_cast<double>(i) / fps, c.x, c.y, c.z,
                      q.x, q.y, q.z, q.w);
        out += line;
    }
    return out;
}

SequenceStats
SlamPipeline::runSequence(const SequenceSpec &spec,
                          const SlamConfig &config)
{
    SyntheticWorld world(spec);
    SlamPipeline pipeline(world.camera(), config);

    std::vector<Se3> truth;
    truth.reserve(static_cast<std::size_t>(spec.frames));

    // Bootstrap across a gap wide enough for ~0.7 m of baseline so
    // the seed triangulations have usable parallax.
    const double frame_baseline = spec.speedMps / 20.0;
    const int gap = std::max(
        2, std::min(20, static_cast<int>(
                            std::lround(0.7 / frame_baseline))));

    SyntheticFrame f0 = world.renderFrame(0);
    SyntheticFrame f1 = world.renderFrame(gap);
    truth.push_back(f0.truePose);
    truth.push_back(f1.truePose);
    pipeline.bootstrap(f0, f1);

    SequenceStats stats;
    stats.sequence = spec.name;
    stats.frames = spec.frames;
    stats.trackedFrames = 2;

    for (int i = gap + 1; i < spec.frames; ++i) {
        const SyntheticFrame frame = world.renderFrame(i);
        truth.push_back(frame.truePose);
        const FrameResult res = pipeline.processFrame(frame);
        if (res.tracked)
            ++stats.trackedFrames;
    }
    pipeline.finish();

    stats.keyframes = static_cast<int>(pipeline.map().keyframeCount());
    stats.mapPoints = static_cast<int>(pipeline.map().pointCount());
    stats.ateRmseM = pipeline.ateRmseM(truth);
    stats.work = pipeline.work();
    return stats;
}

} // namespace dronedse
