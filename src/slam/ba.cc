#include "slam/ba.hh"

#include <cmath>
#include <unordered_map>
#include <vector>

#include "util/logging.hh"
#include "util/matrix.hh"

namespace dronedse {

namespace {

/** One linearized observation. */
struct ObsRef
{
    int kfId;      // keyframe (may be an anchor)
    int poseIdx;   // index into optimized poses, -1 when fixed
    int pointIdx;  // index into active points
    Pixel pixel;
};

/** 3x3 symmetric block with solve. */
struct Block3
{
    double m[3][3] = {};

    void
    add(int r, int c, double v)
    {
        m[r][c] += v;
    }

    /** Invert in place via adjugate; false when near-singular. */
    bool
    invert()
    {
        const double det =
            m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
            m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
            m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
        if (std::fabs(det) < 1e-12)
            return false;
        const double id = 1.0 / det;
        double inv[3][3];
        inv[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * id;
        inv[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * id;
        inv[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * id;
        inv[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * id;
        inv[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * id;
        inv[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * id;
        inv[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * id;
        inv[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * id;
        inv[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * id;
        for (int r = 0; r < 3; ++r)
            for (int c = 0; c < 3; ++c)
                m[r][c] = inv[r][c];
        return true;
    }
};

/** Evaluate residual and Jacobians of one observation. */
bool
linearize(const PinholeCamera &camera, const Se3 &pose,
          const Vec3 &point, const Pixel &pixel, double huber,
          double j_pose[2][6], double j_point[2][3], double res[2],
          double &weight)
{
    const Vec3 p = pose.apply(point);
    if (p.z <= 0.05)
        return false;

    const double iz = 1.0 / p.z;
    res[0] = camera.fx * p.x * iz + camera.cx - pixel.u;
    res[1] = camera.fy * p.y * iz + camera.cy - pixel.v;
    const double err = std::sqrt(res[0] * res[0] + res[1] * res[1]);
    weight = err > huber ? huber / err : 1.0;

    const double ju[3] = {camera.fx * iz, 0.0,
                          -camera.fx * p.x * iz * iz};
    const double jv[3] = {0.0, camera.fy * iz,
                          -camera.fy * p.y * iz * iz};

    // dp/d(omega) = -[p]x, dp/d(upsilon) = I.
    const double dpw[3][3] = {{0, p.z, -p.y},
                              {-p.z, 0, p.x},
                              {p.y, -p.x, 0}};
    for (int k = 0; k < 3; ++k) {
        j_pose[0][k] = ju[0] * dpw[0][k] + ju[1] * dpw[1][k] +
                       ju[2] * dpw[2][k];
        j_pose[1][k] = jv[0] * dpw[0][k] + jv[1] * dpw[1][k] +
                       jv[2] * dpw[2][k];
        j_pose[0][k + 3] = ju[k];
        j_pose[1][k + 3] = jv[k];
    }

    // dp/dX = R.
    const Mat3 r = pose.rotation.toRotationMatrix();
    for (int k = 0; k < 3; ++k) {
        j_point[0][k] = ju[0] * r(0, k) + ju[1] * r(1, k) +
                        ju[2] * r(2, k);
        j_point[1][k] = jv[0] * r(0, k) + jv[1] * r(1, k) +
                        jv[2] * r(2, k);
    }
    return true;
}

double
totalChi2(const PinholeCamera &camera, const SlamMap &map,
          const std::vector<ObsRef> &obs,
          const std::vector<int> &active_points, double huber)
{
    double chi2 = 0.0;
    for (const ObsRef &o : obs) {
        const Se3 &pose = map.keyframe(o.kfId).pose;
        const Vec3 &pt =
            map.point(active_points[static_cast<std::size_t>(
                          o.pointIdx)])
                .position;
        const Vec3 p = pose.apply(pt);
        if (p.z <= 0.05)
            continue;
        const double ru =
            camera.fx * p.x / p.z + camera.cx - o.pixel.u;
        const double rv =
            camera.fy * p.y / p.z + camera.cy - o.pixel.v;
        const double err = std::sqrt(ru * ru + rv * rv);
        // Huber cost.
        chi2 += err <= huber ? err * err
                             : huber * (2.0 * err - huber);
    }
    return chi2;
}

} // namespace

BaResult
bundleAdjust(const PinholeCamera &camera, SlamMap &map, int kf_begin,
             int kf_end, const BaConfig &config)
{
    BaResult result;
    const int total_kf = static_cast<int>(map.keyframeCount());
    if (kf_begin < 0 || kf_end > total_kf || kf_begin >= kf_end)
        fatal("bundleAdjust: invalid keyframe window");

    // Optimized poses: [kf_begin, kf_end), except that with no
    // anchors the first keyframe stays fixed (gauge).
    const bool has_anchor = kf_begin > 0;
    const int first_free = has_anchor ? kf_begin : kf_begin + 1;
    std::unordered_map<int, int> pose_index;
    for (int kf = first_free; kf < kf_end; ++kf)
        pose_index[kf] = static_cast<int>(pose_index.size());
    const int n_poses = static_cast<int>(pose_index.size());

    // Active points: observed by any keyframe in the window.
    std::unordered_map<int, int> point_index;
    std::vector<int> active_points;
    for (int kf = kf_begin; kf < kf_end; ++kf) {
        for (const auto &obs : map.keyframe(kf).observations) {
            if (obs.mapPointId < 0)
                continue;
            if (point_index.emplace(obs.mapPointId,
                                    static_cast<int>(
                                        active_points.size()))
                    .second) {
                active_points.push_back(obs.mapPointId);
            }
        }
    }
    const int n_points = static_cast<int>(active_points.size());
    if (n_points == 0)
        return result;

    // Observations: every keyframe observing an active point
    // contributes; keyframes outside the window act as anchors.
    std::vector<ObsRef> observations;
    for (int kf = 0; kf < total_kf; ++kf) {
        const bool in_window = kf >= kf_begin && kf < kf_end;
        for (const auto &obs : map.keyframe(kf).observations) {
            if (obs.mapPointId < 0)
                continue;
            const auto it = point_index.find(obs.mapPointId);
            if (it == point_index.end())
                continue;
            // Anchor keyframes constrain points; far-outside
            // keyframes only matter for global consistency, so
            // local BA uses the immediate predecessors only.
            if (!in_window && kf < kf_begin - 2)
                continue;
            ObsRef ref;
            ref.kfId = kf;
            const auto pit = pose_index.find(kf);
            ref.poseIdx =
                pit == pose_index.end() ? -1 : pit->second;
            ref.pointIdx = it->second;
            ref.pixel = obs.pixel;
            observations.push_back(ref);
        }
    }

    result.schurDimension = 6 * n_poses;
    result.initialChi2 = totalChi2(camera, map, observations,
                                   active_points, config.huberPx);

    double lambda = config.lambda;
    double chi2 = result.initialChi2;

    for (int iter = 0; iter < config.maxIterations; ++iter) {
        // Accumulators.
        Matrix hpp(static_cast<std::size_t>(6 * n_poses),
                   static_cast<std::size_t>(6 * n_poses));
        std::vector<double> bp(static_cast<std::size_t>(6 * n_poses),
                               0.0);
        std::vector<Block3> hll(static_cast<std::size_t>(n_points));
        std::vector<double> bl(static_cast<std::size_t>(3 * n_points),
                               0.0);
        // Hpl blocks keyed by (pose, point) pairs present.
        struct PlBlock { int pose; int point; double m[6][3]; };
        std::vector<PlBlock> hpl;
        std::unordered_map<std::int64_t, std::size_t> hpl_index;

        for (const ObsRef &o : observations) {
            const Se3 &pose = map.keyframe(o.kfId).pose;
            const Vec3 &pt =
                map.point(active_points[static_cast<std::size_t>(
                              o.pointIdx)])
                    .position;
            double jp[2][6], jl[2][3], r[2], w;
            if (!linearize(camera, pose, pt, o.pixel, config.huberPx,
                           jp, jl, r, w)) {
                continue;
            }
            ++result.jacobianEvals;

            // Point block and gradient.
            Block3 &ll = hll[static_cast<std::size_t>(o.pointIdx)];
            for (int a = 0; a < 3; ++a) {
                for (int b = 0; b < 3; ++b) {
                    ll.add(a, b,
                           w * (jl[0][a] * jl[0][b] +
                                jl[1][a] * jl[1][b]));
                }
                bl[static_cast<std::size_t>(3 * o.pointIdx + a)] -=
                    w * (jl[0][a] * r[0] + jl[1][a] * r[1]);
            }

            if (o.poseIdx < 0)
                continue; // anchor: pose fixed

            const int pb = 6 * o.poseIdx;
            for (int a = 0; a < 6; ++a) {
                for (int b = 0; b < 6; ++b) {
                    hpp(static_cast<std::size_t>(pb + a),
                        static_cast<std::size_t>(pb + b)) +=
                        w * (jp[0][a] * jp[0][b] +
                             jp[1][a] * jp[1][b]);
                }
                bp[static_cast<std::size_t>(pb + a)] -=
                    w * (jp[0][a] * r[0] + jp[1][a] * r[1]);
            }

            // Pose-point coupling.
            const std::int64_t key =
                static_cast<std::int64_t>(o.poseIdx) * n_points +
                o.pointIdx;
            auto it = hpl_index.find(key);
            if (it == hpl_index.end()) {
                hpl.push_back({o.poseIdx, o.pointIdx, {}});
                it = hpl_index.emplace(key, hpl.size() - 1).first;
            }
            PlBlock &pl = hpl[it->second];
            for (int a = 0; a < 6; ++a)
                for (int b = 0; b < 3; ++b)
                    pl.m[a][b] += w * (jp[0][a] * jl[0][b] +
                                       jp[1][a] * jl[1][b]);
        }

        // LM damping.
        for (auto &ll : hll)
            for (int a = 0; a < 3; ++a)
                ll.add(a, a, lambda);
        hpp.addToDiagonal(lambda);

        // Invert point blocks.
        std::vector<Block3> hll_inv = hll;
        bool ok = true;
        for (auto &ll : hll_inv) {
            ++result.pointBlockSolves;
            if (!ll.invert()) {
                ok = false;
                break;
            }
        }
        if (!ok) {
            lambda *= 10.0;
            continue;
        }

        // Schur complement: S = Hpp - sum Hpl Hll^-1 Hlp, and
        // reduced gradient g = bp - sum Hpl Hll^-1 bl.
        Matrix s = hpp;
        std::vector<double> g = bp;
        // Group Hpl blocks by point for the cross terms.
        std::vector<std::vector<std::size_t>> by_point(
            static_cast<std::size_t>(n_points));
        for (std::size_t i = 0; i < hpl.size(); ++i)
            by_point[static_cast<std::size_t>(hpl[i].point)]
                .push_back(i);

        for (int pt = 0; pt < n_points; ++pt) {
            const auto &blocks =
                by_point[static_cast<std::size_t>(pt)];
            if (blocks.empty())
                continue;
            const Block3 &inv =
                hll_inv[static_cast<std::size_t>(pt)];
            // W_i = Hpl_i * Hll^-1 for each pose block i.
            for (std::size_t bi : blocks) {
                const PlBlock &pli = hpl[bi];
                double w_i[6][3];
                for (int a = 0; a < 6; ++a) {
                    for (int b = 0; b < 3; ++b) {
                        w_i[a][b] = pli.m[a][0] * inv.m[0][b] +
                                    pli.m[a][1] * inv.m[1][b] +
                                    pli.m[a][2] * inv.m[2][b];
                    }
                }
                // g -= W_i * bl_pt.
                for (int a = 0; a < 6; ++a) {
                    g[static_cast<std::size_t>(6 * pli.pose + a)] -=
                        w_i[a][0] * bl[static_cast<std::size_t>(
                                        3 * pt)] +
                        w_i[a][1] * bl[static_cast<std::size_t>(
                                        3 * pt + 1)] +
                        w_i[a][2] * bl[static_cast<std::size_t>(
                                        3 * pt + 2)];
                }
                // S -= W_i * Hlp_j for every pose block j of pt.
                for (std::size_t bj : blocks) {
                    const PlBlock &plj = hpl[bj];
                    for (int a = 0; a < 6; ++a) {
                        for (int b = 0; b < 6; ++b) {
                            double v = 0.0;
                            for (int k = 0; k < 3; ++k)
                                v += w_i[a][k] * plj.m[b][k];
                            s(static_cast<std::size_t>(
                                  6 * pli.pose + a),
                              static_cast<std::size_t>(
                                  6 * plj.pose + b)) -= v;
                        }
                    }
                }
            }
        }

        // Solve the reduced pose system.
        std::vector<double> dx_pose;
        if (n_poses > 0) {
            if (!s.solveCholesky(g, dx_pose)) {
                lambda *= 10.0;
                continue;
            }
        }

        // Back-substitute points:
        // dx_pt = Hll^-1 (bl - Hlp dx_pose).
        std::vector<double> dx_point(
            static_cast<std::size_t>(3 * n_points), 0.0);
        std::vector<double> rhs(static_cast<std::size_t>(3 * n_points));
        for (int pt = 0; pt < n_points; ++pt)
            for (int a = 0; a < 3; ++a)
                rhs[static_cast<std::size_t>(3 * pt + a)] =
                    bl[static_cast<std::size_t>(3 * pt + a)];
        for (const PlBlock &pl : hpl) {
            for (int b = 0; b < 3; ++b) {
                double v = 0.0;
                for (int a = 0; a < 6; ++a)
                    v += pl.m[a][b] *
                         dx_pose[static_cast<std::size_t>(
                             6 * pl.pose + a)];
                rhs[static_cast<std::size_t>(3 * pl.point + b)] -= v;
            }
        }
        for (int pt = 0; pt < n_points; ++pt) {
            const Block3 &inv =
                hll_inv[static_cast<std::size_t>(pt)];
            for (int a = 0; a < 3; ++a) {
                dx_point[static_cast<std::size_t>(3 * pt + a)] =
                    inv.m[a][0] *
                        rhs[static_cast<std::size_t>(3 * pt)] +
                    inv.m[a][1] *
                        rhs[static_cast<std::size_t>(3 * pt + 1)] +
                    inv.m[a][2] *
                        rhs[static_cast<std::size_t>(3 * pt + 2)];
            }
        }

        // Tentatively apply the step.
        std::vector<Se3> saved_poses;
        for (int kf = first_free; kf < kf_end; ++kf)
            saved_poses.push_back(map.keyframe(kf).pose);
        std::vector<Vec3> saved_points;
        for (int pt : active_points)
            saved_points.push_back(map.point(pt).position);

        for (int kf = first_free; kf < kf_end; ++kf) {
            const int pi = pose_index[kf];
            const Vec3 omega{
                dx_pose[static_cast<std::size_t>(6 * pi)],
                dx_pose[static_cast<std::size_t>(6 * pi + 1)],
                dx_pose[static_cast<std::size_t>(6 * pi + 2)]};
            const Vec3 upsilon{
                dx_pose[static_cast<std::size_t>(6 * pi + 3)],
                dx_pose[static_cast<std::size_t>(6 * pi + 4)],
                dx_pose[static_cast<std::size_t>(6 * pi + 5)]};
            map.keyframe(kf).pose =
                se3BoxPlus(map.keyframe(kf).pose, omega, upsilon);
        }
        for (int pt = 0; pt < n_points; ++pt) {
            Vec3 &pos =
                map.point(active_points[static_cast<std::size_t>(pt)])
                    .position;
            pos.x += dx_point[static_cast<std::size_t>(3 * pt)];
            pos.y += dx_point[static_cast<std::size_t>(3 * pt + 1)];
            pos.z += dx_point[static_cast<std::size_t>(3 * pt + 2)];
        }

        const double new_chi2 = totalChi2(camera, map, observations,
                                          active_points,
                                          config.huberPx);
        ++result.iterations;

        if (new_chi2 <= chi2) {
            // Accept: decrease damping.
            const double rel = (chi2 - new_chi2) / (chi2 + 1e-12);
            chi2 = new_chi2;
            lambda = std::max(lambda * 0.3, 1e-9);
            if (rel < config.relTolerance) {
                result.converged = true;
                break;
            }
        } else {
            // Reject: restore and increase damping.
            std::size_t i = 0;
            for (int kf = first_free; kf < kf_end; ++kf)
                map.keyframe(kf).pose = saved_poses[i++];
            for (std::size_t p = 0; p < active_points.size(); ++p)
                map.point(active_points[p]).position =
                    saved_points[p];
            lambda *= 10.0;
        }
    }

    result.finalChi2 = chi2;
    if (!result.converged)
        result.converged = chi2 <= result.initialChi2;
    return result;
}

BaResult
globalBundleAdjust(const PinholeCamera &camera, SlamMap &map,
                   const BaConfig &config)
{
    if (map.keyframeCount() < 2) {
        BaResult r;
        r.converged = true;
        return r;
    }
    return bundleAdjust(camera, map, 0,
                        static_cast<int>(map.keyframeCount()), config);
}

} // namespace dronedse
