/**
 * @file
 * Brute-force Hamming matching with ratio test (the "Matching" part
 * of Figure 17's feature extraction/matching phase).
 */

#ifndef DRONEDSE_SLAM_MATCHER_HH
#define DRONEDSE_SLAM_MATCHER_HH

#include <cstdint>
#include <vector>

#include "slam/brief.hh"

namespace dronedse {

/** One correspondence between two feature sets. */
struct Match
{
    int queryIndex = 0;
    int trainIndex = 0;
    int distance = 0;
};

/** Matcher configuration. */
struct MatcherConfig
{
    /** Reject matches above this Hamming distance. */
    int maxDistance = 64;
    /** Lowe ratio: best must beat second-best by this factor. */
    double ratio = 0.8;
};

/** Work counters for the platform execution models. */
struct MatchWork
{
    /** Descriptor comparisons performed. */
    std::uint64_t comparisons = 0;
};

/**
 * Match query features against train features (best + ratio test,
 * mutual consistency not enforced).
 */
std::vector<Match> matchFeatures(const std::vector<Feature> &query,
                                 const std::vector<Feature> &train,
                                 const MatcherConfig &config = {},
                                 MatchWork *work = nullptr);

/**
 * Match query features against raw descriptors (used to associate
 * frame features with map points).
 */
std::vector<Match> matchDescriptors(
    const std::vector<Feature> &query,
    const std::vector<Descriptor> &train,
    const MatcherConfig &config = {}, MatchWork *work = nullptr);

} // namespace dronedse

#endif // DRONEDSE_SLAM_MATCHER_HH
