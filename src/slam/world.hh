/**
 * @file
 * Synthetic EuRoC-like world: a textured room populated with
 * patterned landmarks, a smooth camera trajectory, and a renderer
 * that produces the grayscale frames the feature pipeline consumes.
 *
 * This replaces the physical EuRoC micro-aerial-vehicle dataset
 * (paper Section 5): each synthetic sequence keeps the same role —
 * a camera sweep through a static scene at a named difficulty.
 */

#ifndef DRONEDSE_SLAM_WORLD_HH
#define DRONEDSE_SLAM_WORLD_HH

#include <string>
#include <vector>

#include "slam/camera.hh"
#include "slam/image.hh"
#include "slam/se3.hh"
#include "util/rng.hh"

namespace dronedse {

/** One 3D landmark with a deterministic visual pattern. */
struct WorldLandmark
{
    int id = 0;
    Vec3 position;
    /** Seed for the landmark's 7x7 intensity pattern. */
    std::uint64_t patternSeed = 0;
};

/** Parameters of one synthetic sequence (EuRoC naming). */
struct SequenceSpec
{
    std::string name;
    /** Number of frames. */
    int frames = 150;
    /** Room half-extent (m); Machine Hall rooms are larger. */
    double roomHalfM = 10.0;
    /** Camera path radius (m). */
    double pathRadiusM = 5.0;
    /** Linear speed along the path (m/s). */
    double speedMps = 1.0;
    /** Landmarks on the room surfaces. */
    int landmarkCount = 900;
    /** Image noise sigma (gray levels). */
    double imageNoise = 2.0;
    /** Attitude oscillation amplitude (rad) — higher = harder. */
    double wobbleRad = 0.05;
    /** Dataset difficulty tag ("easy"/"medium"/"difficult"). */
    std::string difficulty = "easy";
    /** World/render seed. */
    std::uint64_t seed = 1;
};

/** The eleven EuRoC-style sequences of Figure 17. */
const std::vector<SequenceSpec> &euRocSequences();

/** Find a sequence by name ("MH01".."V203"); fatal() if absent. */
const SequenceSpec &findSequence(const std::string &name);

/** One rendered frame with ground truth. */
struct SyntheticFrame
{
    int index = 0;
    double timestamp = 0.0;
    Image image;
    /** World-to-camera ground-truth pose. */
    Se3 truePose;
};

/** Camera pose looking from `center` toward `target`. */
Se3 lookAtPose(const Vec3 &center, const Vec3 &target,
               const Vec3 &up = {0, 0, 1});

/** The synthetic world and its renderer. */
class SyntheticWorld
{
  public:
    explicit SyntheticWorld(SequenceSpec spec);

    const SequenceSpec &spec() const { return spec_; }
    const std::vector<WorldLandmark> &landmarks() const
    { return landmarks_; }
    const PinholeCamera &camera() const { return camera_; }

    /** Ground-truth camera pose at frame `index` (20 fps). */
    Se3 truePose(int index) const;

    /** Render frame `index`. */
    SyntheticFrame renderFrame(int index);

    /**
     * Landmarks currently visible from a pose (id and projected
     * pixel) — ground truth for association tests.
     */
    std::vector<std::pair<int, Pixel>> visibleLandmarks(
        const Se3 &pose) const;

  private:
    SequenceSpec spec_;
    PinholeCamera camera_;
    std::vector<WorldLandmark> landmarks_;
    Rng renderRng_;
};

} // namespace dronedse

#endif // DRONEDSE_SLAM_WORLD_HH
