#include "slam/triangulation.hh"

#include <cmath>

namespace dronedse {

std::optional<Vec3>
triangulate(const PinholeCamera &camera, const Se3 &pose_a,
            const Pixel &px_a, const Se3 &pose_b, const Pixel &px_b,
            double min_parallax_rad)
{
    // Rays in world coordinates.
    const Vec3 ca = pose_a.center();
    const Vec3 cb = pose_b.center();
    const Vec3 da = (pose_a.applyInverse(camera.backProject(px_a, 1.0)) -
                     ca)
                        .normalized();
    const Vec3 db = (pose_b.applyInverse(camera.backProject(px_b, 1.0)) -
                     cb)
                        .normalized();

    // Closest points on the two rays: solve for s, t in
    //   ca + s*da  ~  cb + t*db.
    const double d = da.dot(db);
    const double denom = 1.0 - d * d;
    if (denom < 1e-8)
        return std::nullopt; // parallel rays (no baseline)

    // Parallax gate: depth is unobservable for near-parallel rays.
    if (std::acos(std::min(1.0, std::fabs(d))) < min_parallax_rad)
        return std::nullopt;

    const Vec3 w = ca - cb;
    const double s = (d * w.dot(db) - w.dot(da)) / denom;
    const double t = (w.dot(db) - d * w.dot(da)) / denom;
    if (s <= 0.0 || t <= 0.0)
        return std::nullopt; // behind a camera

    const Vec3 pa = ca + da * s;
    const Vec3 pb = cb + db * t;
    const Vec3 mid = (pa + pb) * 0.5;

    // The two closest points must agree reasonably.
    if ((pa - pb).norm() > 0.05 * (s + t))
        return std::nullopt;

    // Cheirality against both cameras.
    if (pose_a.apply(mid).z <= 0.05 || pose_b.apply(mid).z <= 0.05)
        return std::nullopt;
    return mid;
}

} // namespace dronedse
