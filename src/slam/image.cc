#include "slam/image.hh"

namespace dronedse {

Image::Image(int width, int height, std::uint8_t fill)
    : width_(width), height_(height),
      data_(static_cast<std::size_t>(width) * height, fill)
{
}

std::uint8_t
Image::atClamped(int x, int y, std::uint8_t fallback) const
{
    if (x < 0 || y < 0 || x >= width_ || y >= height_)
        return fallback;
    return at(x, y);
}

} // namespace dronedse
