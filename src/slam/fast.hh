/**
 * @file
 * FAST-9 corner detector with non-maximum suppression — the feature
 * extraction front end of the ORB-style pipeline (paper Figure 17's
 * "Feature Extraction" phase; the eSLAM FPGA design accelerates
 * exactly this stage).
 */

#ifndef DRONEDSE_SLAM_FAST_HH
#define DRONEDSE_SLAM_FAST_HH

#include <cstdint>
#include <vector>

#include "slam/image.hh"

namespace dronedse {

/** A detected corner. */
struct Corner
{
    int x = 0;
    int y = 0;
    /** Detector score (arc contrast sum). */
    int score = 0;
};

/** Detector configuration. */
struct FastConfig
{
    /** Intensity threshold for the segment test. */
    int threshold = 22;
    /** Contiguous arc length required (FAST-9). */
    int arcLength = 9;
    /** Border to skip (room for the descriptor patch). */
    int margin = 12;
    /** Keep at most this many corners, best score first. */
    int maxCorners = 500;
    /** Non-maximum suppression radius (pixels). */
    int nmsRadius = 3;
};

/** Work counters for the platform execution models. */
struct FastWork
{
    /** Pixels that entered the segment test. */
    std::uint64_t pixelsTested = 0;
    /** Corners before suppression. */
    std::uint64_t rawCorners = 0;
};

/**
 * Detect FAST corners.
 *
 * @param image  Input grayscale image.
 * @param config Detector parameters.
 * @param work   Optional work counters (accumulated).
 */
std::vector<Corner> detectFast(const Image &image,
                               const FastConfig &config = {},
                               FastWork *work = nullptr);

} // namespace dronedse

#endif // DRONEDSE_SLAM_FAST_HH
