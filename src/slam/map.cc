#include "slam/map.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dronedse {

int
SlamMap::addPoint(const Vec3 &position, const Descriptor &descriptor)
{
    MapPoint pt;
    pt.id = static_cast<int>(points_.size());
    pt.position = position;
    pt.descriptor = descriptor;
    pointIndex_[pt.id] = points_.size();
    points_.push_back(pt);
    return points_.back().id;
}

int
SlamMap::addKeyframe(Keyframe keyframe)
{
    keyframe.id = static_cast<int>(keyframes_.size());
    for (const auto &obs : keyframe.observations) {
        if (obs.mapPointId >= 0)
            ++point(obs.mapPointId).observations;
    }
    keyframes_.push_back(std::move(keyframe));
    return keyframes_.back().id;
}

void
SlamMap::addObservation(int kf_id, int pt_id, const Pixel &pixel)
{
    keyframe(kf_id).observations.push_back({pt_id, pixel});
    ++point(pt_id).observations;
}

MapPoint &
SlamMap::point(int id)
{
    const auto it = pointIndex_.find(id);
    if (it == pointIndex_.end())
        panic("SlamMap::point: unknown id " + std::to_string(id));
    return points_[it->second];
}

const MapPoint &
SlamMap::point(int id) const
{
    const auto it = pointIndex_.find(id);
    if (it == pointIndex_.end())
        panic("SlamMap::point: unknown id " + std::to_string(id));
    return points_[it->second];
}

Keyframe &
SlamMap::keyframe(int id)
{
    if (id < 0 || id >= static_cast<int>(keyframes_.size()))
        panic("SlamMap::keyframe: unknown id " + std::to_string(id));
    return keyframes_[static_cast<std::size_t>(id)];
}

const Keyframe &
SlamMap::keyframe(int id) const
{
    if (id < 0 || id >= static_cast<int>(keyframes_.size()))
        panic("SlamMap::keyframe: unknown id " + std::to_string(id));
    return keyframes_[static_cast<std::size_t>(id)];
}

std::size_t
SlamMap::cullPoints(int min_obs, int before_kf)
{
    // Collect weak points.
    std::vector<int> weak;
    for (const auto &pt : points_) {
        if (pt.observations < min_obs)
            weak.push_back(pt.id);
    }
    if (weak.empty())
        return 0;

    // Only cull points unseen by recent keyframes.
    std::vector<bool> recent(points_.size(), false);
    for (const auto &kf : keyframes_) {
        if (kf.id < before_kf)
            continue;
        for (const auto &obs : kf.observations) {
            if (obs.mapPointId >= 0)
                recent[pointIndex_[obs.mapPointId]] = true;
        }
    }

    std::size_t removed = 0;
    std::vector<bool> dead(points_.size(), false);
    for (int id : weak) {
        const std::size_t idx = pointIndex_[id];
        if (!recent[idx]) {
            dead[idx] = true;
            ++removed;
        }
    }
    if (removed == 0)
        return 0;

    // Drop observations of dead points.
    for (auto &kf : keyframes_) {
        kf.observations.erase(
            std::remove_if(kf.observations.begin(),
                           kf.observations.end(),
                           [&](const KeyframeObservation &o) {
                               return o.mapPointId >= 0 &&
                                      dead[pointIndex_[o.mapPointId]];
                           }),
            kf.observations.end());
    }

    // Compact the point array and rebuild the index.
    std::vector<MapPoint> alive;
    alive.reserve(points_.size() - removed);
    for (std::size_t i = 0; i < points_.size(); ++i) {
        if (!dead[i])
            alive.push_back(points_[i]);
    }
    points_ = std::move(alive);
    pointIndex_.clear();
    for (std::size_t i = 0; i < points_.size(); ++i)
        pointIndex_[points_[i].id] = i;
    return removed;
}

} // namespace dronedse
