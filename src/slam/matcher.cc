#include "slam/matcher.hh"

namespace dronedse {

namespace {

template <typename GetDescriptor>
std::vector<Match>
matchImpl(const std::vector<Feature> &query, std::size_t train_size,
          GetDescriptor get, const MatcherConfig &config,
          MatchWork *work)
{
    std::vector<Match> matches;
    for (std::size_t qi = 0; qi < query.size(); ++qi) {
        int best = 1 << 30, second = 1 << 30, best_ti = -1;
        for (std::size_t ti = 0; ti < train_size; ++ti) {
            if (work)
                ++work->comparisons;
            const int d = query[qi].descriptor.distance(get(ti));
            if (d < best) {
                second = best;
                best = d;
                best_ti = static_cast<int>(ti);
            } else if (d < second) {
                second = d;
            }
        }
        if (best_ti < 0 || best > config.maxDistance)
            continue;
        if (second < 1 << 30 &&
            best >= config.ratio * static_cast<double>(second)) {
            continue; // ambiguous
        }
        matches.push_back({static_cast<int>(qi), best_ti, best});
    }
    return matches;
}

} // namespace

std::vector<Match>
matchFeatures(const std::vector<Feature> &query,
              const std::vector<Feature> &train,
              const MatcherConfig &config, MatchWork *work)
{
    return matchImpl(
        query, train.size(),
        [&](std::size_t ti) -> const Descriptor & {
            return train[ti].descriptor;
        },
        config, work);
}

std::vector<Match>
matchDescriptors(const std::vector<Feature> &query,
                 const std::vector<Descriptor> &train,
                 const MatcherConfig &config, MatchWork *work)
{
    return matchImpl(
        query, train.size(),
        [&](std::size_t ti) -> const Descriptor & { return train[ti]; },
        config, work);
}

} // namespace dronedse
