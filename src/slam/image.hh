/**
 * @file
 * 8-bit grayscale image buffer used by the synthetic renderer and
 * the feature pipeline.
 */

#ifndef DRONEDSE_SLAM_IMAGE_HH
#define DRONEDSE_SLAM_IMAGE_HH

#include <cstdint>
#include <vector>

namespace dronedse {

/** Row-major 8-bit grayscale image. */
class Image
{
  public:
    Image() = default;

    /** width x height image filled with `fill`. */
    Image(int width, int height, std::uint8_t fill = 0);

    int width() const { return width_; }
    int height() const { return height_; }

    std::uint8_t at(int x, int y) const
    { return data_[static_cast<std::size_t>(y) * width_ + x]; }
    std::uint8_t &at(int x, int y)
    { return data_[static_cast<std::size_t>(y) * width_ + x]; }

    /** Bounds-checked read; returns `fallback` outside the image. */
    std::uint8_t atClamped(int x, int y,
                           std::uint8_t fallback = 0) const;

    /** Raw pixel buffer. */
    const std::vector<std::uint8_t> &data() const { return data_; }

  private:
    int width_ = 0;
    int height_ = 0;
    std::vector<std::uint8_t> data_;
};

} // namespace dronedse

#endif // DRONEDSE_SLAM_IMAGE_HH
