/**
 * @file
 * Pinhole camera model for the SLAM pipeline (EuRoC-like intrinsics
 * scaled to the synthetic image size).
 */

#ifndef DRONEDSE_SLAM_CAMERA_HH
#define DRONEDSE_SLAM_CAMERA_HH

#include <optional>

#include "slam/se3.hh"
#include "util/vec3.hh"

namespace dronedse {

/** Pixel coordinates. */
struct Pixel
{
    double u = 0.0;
    double v = 0.0;
};

/** Pinhole intrinsics. */
struct PinholeCamera
{
    double fx = 200.0;
    double fy = 200.0;
    double cx = 160.0;
    double cy = 120.0;
    int width = 320;
    int height = 240;

    /**
     * Project a camera-frame point; nullopt when behind the camera
     * or outside the image.
     */
    std::optional<Pixel> project(const Vec3 &cam) const;

    /** Project a world point through a pose. */
    std::optional<Pixel> projectWorld(const Se3 &pose,
                                      const Vec3 &world) const;

    /** Back-project a pixel at depth z into the camera frame. */
    Vec3 backProject(const Pixel &px, double depth) const;

    /** True when a pixel lies inside the image with a margin. */
    bool inImage(const Pixel &px, double margin = 0.0) const;
};

} // namespace dronedse

#endif // DRONEDSE_SLAM_CAMERA_HH
