#include "slam/brief.hh"

#include <bit>

#include "util/rng.hh"

namespace dronedse {

int
Descriptor::distance(const Descriptor &other) const
{
    int d = 0;
    for (std::size_t i = 0; i < bits.size(); ++i)
        d += std::popcount(bits[i] ^ other.bits[i]);
    return d;
}

BriefExtractor::BriefExtractor(std::uint64_t pattern_seed)
{
    Rng rng(pattern_seed);
    for (auto &pair : pattern_) {
        for (auto &coord : pair) {
            coord = static_cast<std::int8_t>(rng.uniformInt(-7, 7));
        }
    }
}

namespace {

/**
 * 3x3 box mean around a pixel: the classic BRIEF smoothing that
 * keeps descriptors stable under +-1 px keypoint jitter.
 */
int
boxMean(const Image &image, int x, int y)
{
    int sum = 0;
    for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx)
            sum += image.atClamped(x + dx, y + dy);
    return sum / 9;
}

} // namespace

Descriptor
BriefExtractor::describe(const Image &image, const Corner &corner) const
{
    Descriptor desc;
    for (std::size_t i = 0; i < pattern_.size(); ++i) {
        const auto &p = pattern_[i];
        const int a = boxMean(image, corner.x + p[0], corner.y + p[1]);
        const int b = boxMean(image, corner.x + p[2], corner.y + p[3]);
        if (a > b)
            desc.bits[i / 64] |= 1ULL << (i % 64);
    }
    return desc;
}

std::vector<Feature>
BriefExtractor::describeAll(const Image &image,
                            const std::vector<Corner> &corners) const
{
    std::vector<Feature> out;
    out.reserve(corners.size());
    for (const Corner &c : corners)
        out.push_back({c, describe(image, c)});
    return out;
}

} // namespace dronedse
