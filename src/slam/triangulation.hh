/**
 * @file
 * Two-view midpoint triangulation used to create new map points from
 * keyframe pairs.
 */

#ifndef DRONEDSE_SLAM_TRIANGULATION_HH
#define DRONEDSE_SLAM_TRIANGULATION_HH

#include <optional>

#include "slam/camera.hh"
#include "slam/se3.hh"

namespace dronedse {

/**
 * Triangulate a world point from two observations.
 *
 * @param camera Shared intrinsics.
 * @param pose_a World-to-camera pose of the first view.
 * @param px_a   Observation in the first view.
 * @param pose_b World-to-camera pose of the second view.
 * @param px_b   Observation in the second view.
 * @param min_parallax_rad Minimum ray angle: below this the depth is
 *        unobservable (baseline too short for the scene depth).
 * @return World point, or nullopt for degenerate geometry (parallel
 *         rays, insufficient parallax, point behind a camera,
 *         excessive midpoint gap).
 */
std::optional<Vec3> triangulate(const PinholeCamera &camera,
                                const Se3 &pose_a, const Pixel &px_a,
                                const Se3 &pose_b, const Pixel &px_b,
                                double min_parallax_rad = 0.012);

} // namespace dronedse

#endif // DRONEDSE_SLAM_TRIANGULATION_HH
