/**
 * @file
 * Perspective-n-point pose tracking: Gauss-Newton refinement of the
 * camera pose against 3D-2D correspondences with a Huber robust
 * kernel (the per-frame "Tracking" work of an ORB-style system).
 */

#ifndef DRONEDSE_SLAM_PNP_HH
#define DRONEDSE_SLAM_PNP_HH

#include <cstdint>
#include <vector>

#include "slam/camera.hh"
#include "slam/se3.hh"

namespace dronedse {

/** One 3D-2D correspondence. */
struct PnpPoint
{
    Vec3 world;
    Pixel pixel;
};

/** Solver configuration. */
struct PnpConfig
{
    int maxIterations = 10;
    /** Huber kernel width (pixels). */
    double huberPx = 3.0;
    /** Convergence threshold on the update norm. */
    double epsilon = 1e-6;
    /** Reprojection error above which a point is an outlier (px). */
    double outlierPx = 6.0;
};

/** Solver result. */
struct PnpResult
{
    Se3 pose;
    bool converged = false;
    int iterations = 0;
    int inliers = 0;
    /** RMS reprojection error over inliers (pixels). */
    double rmsReprojPx = 0.0;
    /** Jacobian evaluations (work accounting). */
    std::uint64_t jacobianEvals = 0;
};

/**
 * Refine `initial` against the correspondences.  Needs >= 4 points;
 * returns converged=false otherwise or when the normal equations
 * degenerate.
 */
PnpResult solvePnp(const PinholeCamera &camera,
                   const std::vector<PnpPoint> &points,
                   const Se3 &initial, const PnpConfig &config = {});

} // namespace dronedse

#endif // DRONEDSE_SLAM_PNP_HH
