/**
 * @file
 * The ORB-style SLAM pipeline: feature extraction -> matching ->
 * PnP tracking -> keyframing/triangulation -> local BA -> global BA,
 * with per-phase work accounting consumed by the platform execution
 * models (Figure 17, Table 5).
 *
 * Bootstrap note: a monocular system needs an external scale/pose
 * seed; the real system gets it from the drone's state estimation.
 * Here the first two frames' ground-truth poses seed the map, and
 * everything afterwards runs on estimated state only.
 */

#ifndef DRONEDSE_SLAM_PIPELINE_HH
#define DRONEDSE_SLAM_PIPELINE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "slam/ba.hh"
#include "slam/matcher.hh"
#include "slam/pnp.hh"
#include "slam/world.hh"

namespace dronedse {

/** Pipeline phases (Figure 17 categories plus tracking). */
enum class SlamPhase
{
    FeatureExtraction = 0,
    Matching,
    Tracking,
    LocalBa,
    GlobalBa,
    NumPhases,
};

/** Phase name for reports. */
const char *slamPhaseName(SlamPhase phase);

/** Accumulated work of one phase. */
struct PhaseWork
{
    /** Wall time on the host (s). */
    double seconds = 0.0;
    /** Abstract operation count (platform-model input). */
    std::uint64_t ops = 0;
};

/** Pipeline configuration. */
struct SlamConfig
{
    FastConfig fast{};
    MatcherConfig matcher{};
    PnpConfig pnp{};
    BaConfig localBa{};
    BaConfig globalBa{};
    /** Keyframes in the local-BA window. */
    int localWindow = 5;
    /** Force a keyframe at least every this many frames. */
    int keyframeMaxGap = 8;
    /** New keyframe when tracked inliers drop below this. */
    int keyframeMinInliers = 60;
    /** Run global BA once at the end of the sequence. */
    bool globalBaAtEnd = true;
    /**
     * Also run global BA every this many keyframes (0 = never).
     * Off by default: without loop-closure constraints the extra
     * gauge freedom lets LM wander at whole-map scale.
     */
    int globalBaEveryKeyframes = 0;
    /** Attempt full-map relocalization after losing tracking. */
    bool relocalize = true;
    /** Reject triangulations beyond this camera distance (m). */
    double maxPointDepthM = 50.0;
};

/** Result for one processed frame. */
struct FrameResult
{
    int index = 0;
    bool tracked = false;
    Se3 estimatedPose;
    int featureCount = 0;
    int matchCount = 0;
    int inlierCount = 0;
    bool newKeyframe = false;
};

/** Whole-sequence statistics. */
struct SequenceStats
{
    std::string sequence;
    int frames = 0;
    int trackedFrames = 0;
    int keyframes = 0;
    int mapPoints = 0;
    /** RMS absolute trajectory error (m). */
    double ateRmseM = 0.0;
    /** Per-phase work totals. */
    std::array<PhaseWork,
               static_cast<std::size_t>(SlamPhase::NumPhases)>
        work{};
};

/** The pipeline. */
class SlamPipeline
{
  public:
    SlamPipeline(PinholeCamera camera, SlamConfig config = {});

    /**
     * Seed the map from the first two frames (ground-truth poses,
     * see the bootstrap note above).
     */
    void bootstrap(const SyntheticFrame &f0, const SyntheticFrame &f1);

    /** Track one frame (after bootstrap). */
    FrameResult processFrame(const SyntheticFrame &frame);

    /** Finish the sequence (global BA if configured). */
    void finish();

    const SlamMap &map() const { return map_; }
    SlamMap &map() { return map_; }

    /**
     * Re-tune the keyframe cadence mid-sequence — the degradation
     * policy's "onboard SLAM at reduced keyframe rate" fallback:
     * a larger gap means fewer keyframes, less triangulation, and
     * less BA work on the constrained onboard compute.
     */
    void setKeyframeMaxGap(int frames);

    /** Current pipeline configuration. */
    const SlamConfig &config() const { return config_; }

    /** Per-phase accumulated work. */
    const std::array<PhaseWork,
                     static_cast<std::size_t>(SlamPhase::NumPhases)> &
    work() const
    {
        return work_;
    }

    /** Estimated world-to-camera pose per processed frame. */
    const std::vector<Se3> &trajectory() const { return trajectory_; }

    /** RMS camera-centre error against ground-truth poses. */
    double ateRmseM(const std::vector<Se3> &truth) const;

    /**
     * Convenience: run a full synthetic sequence through a fresh
     * pipeline and gather statistics.
     */
    static SequenceStats runSequence(const SequenceSpec &spec,
                                     const SlamConfig &config = {});

    /**
     * Render a trajectory in TUM format ("t x y z qx qy qz qw" per
     * line, camera-to-world), the interchange format EuRoC tooling
     * evaluates against.
     */
    static std::string trajectoryToTum(const std::vector<Se3> &poses,
                                       double fps = 20.0);

  private:
    std::vector<Feature> extractFeatures(const Image &image);
    void maybeCreateKeyframe(const SyntheticFrame &frame,
                             const std::vector<Feature> &features,
                             const std::vector<Match> &matches,
                             const std::vector<int> &matched_points,
                             const PnpResult &pnp, FrameResult &out);

    PinholeCamera camera_;
    SlamConfig config_;
    BriefExtractor brief_;
    SlamMap map_;

    Se3 lastPose_;
    Se3 velocity_; // frame-to-frame delta for the motion model
    int framesSinceKeyframe_ = 0;
    int lastKeyframeId_ = -1;
    /** Unmatched features of the last keyframe (for triangulation). */
    std::vector<Feature> lastKeyframeLoose_;
    Se3 lastKeyframePose_;

    std::vector<Se3> trajectory_;
    std::array<PhaseWork,
               static_cast<std::size_t>(SlamPhase::NumPhases)>
        work_{};
    bool bootstrapped_ = false;

    PhaseWork &phase(SlamPhase p)
    { return work_[static_cast<std::size_t>(p)]; }
};

} // namespace dronedse

#endif // DRONEDSE_SLAM_PIPELINE_HH
