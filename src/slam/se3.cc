#include "slam/se3.hh"

#include <cmath>

namespace dronedse {

Quaternion
so3Exp(const Vec3 &omega)
{
    const double theta = omega.norm();
    if (theta < 1e-12)
        return {1.0, 0.5 * omega.x, 0.5 * omega.y, 0.5 * omega.z};
    const Vec3 axis = omega / theta;
    return Quaternion::fromAxisAngle(axis, theta);
}

Se3
se3BoxPlus(const Se3 &pose, const Vec3 &omega, const Vec3 &upsilon)
{
    Se3 out;
    out.rotation = (so3Exp(omega) * pose.rotation).normalized();
    out.translation = so3Exp(omega).rotate(pose.translation) + upsilon;
    return out;
}

} // namespace dronedse
