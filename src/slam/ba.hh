/**
 * @file
 * Bundle adjustment: Levenberg-Marquardt over keyframe poses and map
 * points with Schur-complement elimination of the points.
 *
 * This is ~90 % of ORB-SLAM's execution time on the RPi baseline
 * (paper Section 5.2) and exactly the stage the paper's FPGA design
 * accelerates with "simple modules of dense fixed-size matrix
 * algebra in a pipeline".
 */

#ifndef DRONEDSE_SLAM_BA_HH
#define DRONEDSE_SLAM_BA_HH

#include <cstdint>

#include "slam/camera.hh"
#include "slam/map.hh"

namespace dronedse {

/** Bundle-adjustment configuration. */
struct BaConfig
{
    int maxIterations = 8;
    /** Huber kernel width (pixels). */
    double huberPx = 3.0;
    /** Initial LM damping. */
    double lambda = 1e-4;
    /** Relative chi2 improvement below which we stop. */
    double relTolerance = 1e-4;
};

/** Bundle-adjustment result and work accounting. */
struct BaResult
{
    bool converged = false;
    int iterations = 0;
    double initialChi2 = 0.0;
    double finalChi2 = 0.0;
    /** Residual/Jacobian evaluations. */
    std::uint64_t jacobianEvals = 0;
    /** 3x3 point-block inversions (the FPGA pipeline's unit). */
    std::uint64_t pointBlockSolves = 0;
    /** Dimension of the reduced (Schur) pose system. */
    int schurDimension = 0;
};

/**
 * Optimize keyframes [kf_begin, kf_end) of the map and every map
 * point they observe.  Keyframes below kf_begin are fixed anchors
 * whose observations still constrain the points (standard local-BA
 * semantics); the first optimized keyframe is held fixed when there
 * are no anchors (gauge freedom).
 *
 * @param camera   Shared intrinsics.
 * @param map      Map to optimize in place.
 * @param kf_begin First keyframe id to optimize.
 * @param kf_end   One past the last keyframe id to optimize.
 */
BaResult bundleAdjust(const PinholeCamera &camera, SlamMap &map,
                      int kf_begin, int kf_end,
                      const BaConfig &config = {});

/** Global BA: all keyframes, first held fixed. */
BaResult globalBundleAdjust(const PinholeCamera &camera, SlamMap &map,
                            const BaConfig &config = {});

} // namespace dronedse

#endif // DRONEDSE_SLAM_BA_HH
