#include "slam/world.hh"

#include <cmath>

#include "util/logging.hh"

namespace dronedse {

const std::vector<SequenceSpec> &
euRocSequences()
{
    // Frame counts, room sizes, speeds, and noise levels follow the
    // real dataset's structure: MH* are large machine-hall sweeps,
    // V* are small Vicon-room sequences; higher numbers are harder
    // (faster, shakier, noisier).
    static const std::vector<SequenceSpec> specs = {
        {"MH01", 180, 12.0, 6.0, 0.9, 1400, 1.5, 0.03, "easy", 101},
        {"MH02", 180, 12.0, 6.0, 1.0, 1400, 1.5, 0.03, "easy", 102},
        {"MH03", 200, 12.0, 6.0, 1.5, 1300, 2.0, 0.05, "medium", 103},
        {"MH04", 200, 12.0, 6.0, 1.9, 1200, 3.0, 0.07, "difficult",
         104},
        {"MH05", 200, 12.0, 6.0, 1.8, 1200, 3.0, 0.07, "difficult",
         105},
        {"V101", 150, 5.0, 2.2, 0.7, 900, 1.5, 0.03, "easy", 201},
        {"V102", 150, 5.0, 2.2, 1.1, 1100, 2.0, 0.05, "medium", 202},
        {"V103", 150, 5.0, 2.2, 1.3, 1300, 3.0, 0.06, "difficult", 203},
        {"V201", 150, 5.0, 2.2, 0.8, 900, 1.5, 0.03, "easy", 204},
        {"V202", 150, 5.0, 2.2, 1.1, 1100, 2.0, 0.05, "medium", 205},
        {"V203", 160, 5.0, 2.2, 1.3, 1300, 3.0, 0.06, "difficult", 206},
    };
    return specs;
}

const SequenceSpec &
findSequence(const std::string &name)
{
    for (const auto &spec : euRocSequences())
        if (spec.name == name)
            return spec;
    fatal("findSequence: unknown sequence '" + name + "'");
}

Se3
lookAtPose(const Vec3 &center, const Vec3 &target, const Vec3 &up)
{
    const Vec3 forward = (target - center).normalized();
    Vec3 right = forward.cross(up);
    if (right.norm() < 1e-9)
        right = {1, 0, 0};
    right = right.normalized();
    const Vec3 down = forward.cross(right).normalized();

    // Camera convention: x right, y down, z forward.  World-to-cam
    // rotation rows are the camera axes expressed in world frame.
    Mat3 r;
    r(0, 0) = right.x;   r(0, 1) = right.y;   r(0, 2) = right.z;
    r(1, 0) = down.x;    r(1, 1) = down.y;    r(1, 2) = down.z;
    r(2, 0) = forward.x; r(2, 1) = forward.y; r(2, 2) = forward.z;

    Se3 pose;
    pose.rotation = Quaternion::fromRotationMatrix(r);
    pose.translation = -(pose.rotation.rotate(center));
    return pose;
}

SyntheticWorld::SyntheticWorld(SequenceSpec spec)
    : spec_(std::move(spec)), renderRng_(spec_.seed * 7919 + 13)
{
    Rng rng(spec_.seed);
    landmarks_.reserve(static_cast<std::size_t>(spec_.landmarkCount));

    const double h = spec_.roomHalfM;
    for (int i = 0; i < spec_.landmarkCount; ++i) {
        WorldLandmark lm;
        lm.id = i;
        lm.patternSeed = spec_.seed * 1000003ULL +
                         static_cast<std::uint64_t>(i) * 2654435761ULL;
        // Place on one of the four walls or the ceiling, giving the
        // circling camera something to look at in every direction.
        const int face = static_cast<int>(rng.uniformInt(0, 4));
        const double a = rng.uniform(-h, h);
        const double b = rng.uniform(0.3, 0.9 * h);
        switch (face) {
          case 0: lm.position = {h, a, b}; break;
          case 1: lm.position = {-h, a, b}; break;
          case 2: lm.position = {a, h, b}; break;
          case 3: lm.position = {a, -h, b}; break;
          default: lm.position = {a, rng.uniform(-h, h), 0.95 * h};
        }
        landmarks_.push_back(lm);
    }
}

Se3
SyntheticWorld::truePose(int index) const
{
    const double fps = 20.0;
    const double t = index / fps;
    const double omega = spec_.speedMps / spec_.pathRadiusM;
    const double angle = omega * t;

    const double height = 0.45 * spec_.roomHalfM;
    const Vec3 center{spec_.pathRadiusM * std::cos(angle),
                      spec_.pathRadiusM * std::sin(angle),
                      height + 0.3 * std::sin(0.4 * angle)};
    // Look radially outward at the walls.
    const Vec3 target{2.0 * spec_.roomHalfM * std::cos(angle),
                      2.0 * spec_.roomHalfM * std::sin(angle),
                      height};

    // Difficulty-dependent attitude wobble.
    const Vec3 up{std::sin(spec_.wobbleRad * std::sin(7.0 * angle)),
                  std::sin(spec_.wobbleRad * std::cos(5.0 * angle)),
                  1.0};
    return lookAtPose(center, target, up.normalized());
}

SyntheticFrame
SyntheticWorld::renderFrame(int index)
{
    SyntheticFrame frame;
    frame.index = index;
    frame.timestamp = index / 20.0;
    frame.truePose = truePose(index);

    Image img(camera_.width, camera_.height, 0);
    // Mild background gradient so the detector sees realistic
    // low-frequency content.
    for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x) {
            img.at(x, y) = static_cast<std::uint8_t>(
                90 + (x / 16 + y / 16) % 12);
        }
    }

    // Stamp each visible landmark's 7x7 high-contrast pattern.
    for (const auto &lm : landmarks_) {
        const auto px = camera_.projectWorld(frame.truePose,
                                             lm.position);
        if (!px)
            continue;
        Rng pattern(lm.patternSeed);
        const int cx = static_cast<int>(std::lround(px->u));
        const int cy = static_cast<int>(std::lround(px->v));
        for (int dy = -3; dy <= 3; ++dy) {
            for (int dx = -3; dx <= 3; ++dx) {
                const int x = cx + dx, y = cy + dy;
                if (x < 0 || y < 0 || x >= img.width() ||
                    y >= img.height()) {
                    pattern.next(); // keep the pattern deterministic
                    continue;
                }
                const bool bright = pattern.bernoulli(0.5);
                img.at(x, y) =
                    static_cast<std::uint8_t>(bright ? 235 : 15);
            }
        }
    }

    // Sensor noise.
    if (spec_.imageNoise > 0.0) {
        for (int y = 0; y < img.height(); ++y) {
            for (int x = 0; x < img.width(); ++x) {
                const double v =
                    img.at(x, y) +
                    renderRng_.gaussian(0.0, spec_.imageNoise);
                img.at(x, y) = static_cast<std::uint8_t>(
                    std::min(255.0, std::max(0.0, v)));
            }
        }
    }

    frame.image = std::move(img);
    return frame;
}

std::vector<std::pair<int, Pixel>>
SyntheticWorld::visibleLandmarks(const Se3 &pose) const
{
    std::vector<std::pair<int, Pixel>> out;
    for (const auto &lm : landmarks_) {
        if (const auto px = camera_.projectWorld(pose, lm.position))
            out.emplace_back(lm.id, *px);
    }
    return out;
}

} // namespace dronedse
