#include "slam/camera.hh"

namespace dronedse {

std::optional<Pixel>
PinholeCamera::project(const Vec3 &cam) const
{
    if (cam.z <= 0.05)
        return std::nullopt;
    Pixel px;
    px.u = fx * cam.x / cam.z + cx;
    px.v = fy * cam.y / cam.z + cy;
    if (!inImage(px))
        return std::nullopt;
    return px;
}

std::optional<Pixel>
PinholeCamera::projectWorld(const Se3 &pose, const Vec3 &world) const
{
    return project(pose.apply(world));
}

Vec3
PinholeCamera::backProject(const Pixel &px, double depth) const
{
    return {(px.u - cx) / fx * depth, (px.v - cy) / fy * depth, depth};
}

bool
PinholeCamera::inImage(const Pixel &px, double margin) const
{
    return px.u >= margin && px.u < width - margin && px.v >= margin &&
           px.v < height - margin;
}

} // namespace dronedse
