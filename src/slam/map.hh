/**
 * @file
 * The SLAM map: keyframes, map points, and their observations.
 */

#ifndef DRONEDSE_SLAM_MAP_HH
#define DRONEDSE_SLAM_MAP_HH

#include <unordered_map>
#include <vector>

#include "slam/brief.hh"
#include "slam/camera.hh"
#include "slam/se3.hh"

namespace dronedse {

/** A landmark in the map. */
struct MapPoint
{
    int id = 0;
    Vec3 position;
    /** Representative descriptor (from the creating observation). */
    Descriptor descriptor;
    /** Number of keyframes observing this point. */
    int observations = 0;
};

/** One keyframe observation of a map point. */
struct KeyframeObservation
{
    int mapPointId = -1;
    Pixel pixel;
};

/** A keyframe: pose plus its map-point observations. */
struct Keyframe
{
    int id = 0;
    int frameIndex = 0;
    Se3 pose;
    std::vector<KeyframeObservation> observations;
};

/** The map container. */
class SlamMap
{
  public:
    /** Insert a new map point; returns its id. */
    int addPoint(const Vec3 &position, const Descriptor &descriptor);

    /** Insert a keyframe; returns its id. */
    int addKeyframe(Keyframe keyframe);

    /** Record that keyframe `kf_id` observes point `pt_id`. */
    void addObservation(int kf_id, int pt_id, const Pixel &pixel);

    MapPoint &point(int id);
    const MapPoint &point(int id) const;
    Keyframe &keyframe(int id);
    const Keyframe &keyframe(int id) const;

    std::size_t pointCount() const { return points_.size(); }
    std::size_t keyframeCount() const { return keyframes_.size(); }

    const std::vector<MapPoint> &points() const { return points_; }
    std::vector<MapPoint> &points() { return points_; }
    const std::vector<Keyframe> &keyframes() const { return keyframes_; }
    std::vector<Keyframe> &keyframes() { return keyframes_; }

    /**
     * Cull map points with fewer than `min_obs` observations that
     * are older than keyframe `before_kf`; returns the number
     * removed (observations in keyframes are dropped too).
     */
    std::size_t cullPoints(int min_obs, int before_kf);

  private:
    std::vector<MapPoint> points_;
    std::vector<Keyframe> keyframes_;
    std::unordered_map<int, std::size_t> pointIndex_;
};

} // namespace dronedse

#endif // DRONEDSE_SLAM_MAP_HH
