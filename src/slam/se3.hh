/**
 * @file
 * Minimal SE(3) pose type and the exponential-map update used by the
 * pose optimizers (PnP tracking and bundle adjustment).
 */

#ifndef DRONEDSE_SLAM_SE3_HH
#define DRONEDSE_SLAM_SE3_HH

#include "util/mat3.hh"
#include "util/quaternion.hh"
#include "util/vec3.hh"

namespace dronedse {

/**
 * Camera pose as a world-to-camera transform:
 * x_cam = R * x_world + t.
 */
struct Se3
{
    Quaternion rotation;
    Vec3 translation;

    /** Transform a world point into the camera frame. */
    Vec3
    apply(const Vec3 &world) const
    {
        return rotation.rotate(world) + translation;
    }

    /** Inverse transform (camera to world). */
    Vec3
    applyInverse(const Vec3 &cam) const
    {
        return rotation.conjugate().rotate(cam - translation);
    }

    /** Camera centre in world coordinates. */
    Vec3 center() const { return applyInverse({0, 0, 0}); }

    /** Composition: (this * other)(x) = this(other(x)). */
    Se3
    compose(const Se3 &other) const
    {
        Se3 out;
        out.rotation = (rotation * other.rotation).normalized();
        out.translation = rotation.rotate(other.translation) +
                          translation;
        return out;
    }

    /** Inverse pose. */
    Se3
    inverse() const
    {
        Se3 out;
        out.rotation = rotation.conjugate();
        out.translation = -(out.rotation.rotate(translation));
        return out;
    }
};

/** SO(3) exponential map: rotation vector to quaternion. */
Quaternion so3Exp(const Vec3 &omega);

/**
 * Left-multiplicative SE(3) update used by the optimizers:
 * pose' = exp([omega, upsilon]) * pose (rotation applied about the
 * current camera frame, translation added directly).
 */
Se3 se3BoxPlus(const Se3 &pose, const Vec3 &omega, const Vec3 &upsilon);

} // namespace dronedse

#endif // DRONEDSE_SLAM_SE3_HH
