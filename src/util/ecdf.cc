#include "util/ecdf.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace dronedse {

namespace {

void
requireFinite(double x)
{
    if (!std::isfinite(x))
        fatal("Ecdf: samples must be finite (got NaN or ±inf)");
}

} // namespace

Ecdf::Ecdf(std::vector<double> samples) : sorted_(std::move(samples))
{
    for (double x : sorted_)
        requireFinite(x);
    std::sort(sorted_.begin(), sorted_.end());
}

void
Ecdf::add(double x)
{
    requireFinite(x);
    sorted_.insert(
        std::lower_bound(sorted_.begin(), sorted_.end(), x), x);
}

void
Ecdf::requireNonEmpty(const char *what) const
{
    if (sorted_.empty())
        fatal(std::string("Ecdf: ") + what +
              " queried on an empty distribution");
}

double
Ecdf::min() const
{
    requireNonEmpty("min");
    return sorted_.front();
}

double
Ecdf::max() const
{
    requireNonEmpty("max");
    return sorted_.back();
}

double
Ecdf::mean() const
{
    requireNonEmpty("mean");
    double sum = 0.0;
    for (double x : sorted_)
        sum += x;
    return sum / static_cast<double>(sorted_.size());
}

double
Ecdf::cdf(double x) const
{
    requireNonEmpty("cdf");
    const auto at_most =
        std::upper_bound(sorted_.begin(), sorted_.end(), x) -
        sorted_.begin();
    return static_cast<double>(at_most) /
           static_cast<double>(sorted_.size());
}

double
Ecdf::probAtLeast(double t) const
{
    requireNonEmpty("probAtLeast");
    const auto below =
        std::lower_bound(sorted_.begin(), sorted_.end(), t) -
        sorted_.begin();
    return static_cast<double>(sorted_.size() - below) /
           static_cast<double>(sorted_.size());
}

double
Ecdf::quantile(double q) const
{
    requireNonEmpty("quantile");
    if (!(q >= 0.0 && q <= 1.0))
        fatal("Ecdf: quantile level must lie in [0, 1]");
    if (q == 0.0)
        return sorted_.front();
    // Smallest index i with (i + 1) / n >= q, i.e. i = ceil(q*n) - 1.
    const auto n = static_cast<double>(sorted_.size());
    auto index = static_cast<std::size_t>(std::ceil(q * n)) - 1;
    if (index >= sorted_.size())
        index = sorted_.size() - 1;
    return sorted_[index];
}

std::string
Ecdf::toCsvRows(const std::string &prefix) const
{
    std::string out;
    char buf[96];
    const auto n = static_cast<double>(sorted_.size());
    for (std::size_t i = 0; i < sorted_.size(); ++i) {
        std::snprintf(buf, sizeof buf, "%.17g,%.17g", sorted_[i],
                      static_cast<double>(i + 1) / n);
        out += prefix;
        out += ',';
        out += buf;
        out += '\n';
    }
    return out;
}

} // namespace dronedse
