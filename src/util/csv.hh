/**
 * @file
 * Minimal CSV writer and RFC-4180 parser.  The paper's artifact
 * ships the raw data behind each figure as CSV (/Drone-CSVs); the
 * benches export the reproduced series the same way, and the parser
 * closes the loop so exported tables can be read back (trace CSVs,
 * round-trip tests).
 */

#ifndef DRONEDSE_UTIL_CSV_HH
#define DRONEDSE_UTIL_CSV_HH

#include <string>
#include <vector>

namespace dronedse {

/** Accumulates rows and renders/writes RFC-4180-style CSV. */
class CsvWriter
{
  public:
    /** Construct with the header row. */
    explicit CsvWriter(std::vector<std::string> header);

    /** Append a row (must match the header width). */
    void addRow(const std::vector<std::string> &cells);

    /** Append a row of doubles (formatted with %g precision). */
    void addRow(const std::vector<double> &values);

    /** Render the CSV document. */
    std::string str() const;

    /** Write to a file; fatal() on I/O failure. */
    void write(const std::string &path) const;

    /** Number of data rows so far (excluding the header). */
    std::size_t rowCount() const { return rows_.size() - 1; }

    /**
     * Quote a cell per RFC 4180 when it contains commas, quotes,
     * newlines, or carriage returns (a bare CR would be ambiguous
     * with a CRLF row terminator on read-back).
     */
    static std::string escape(const std::string &cell);

  private:
    std::size_t width_;
    std::vector<std::string> rows_;
};

/**
 * Parse an RFC-4180-style CSV document (the format `CsvWriter`
 * emits: LF row terminators, double-quote escaping) into rows of
 * cells, header row included.  Quoted cells may contain commas,
 * quotes, CRs, and newlines.  fatal() on malformed input (unclosed
 * quote, garbage after a closing quote).
 */
std::vector<std::vector<std::string>>
parseCsv(const std::string &text);

} // namespace dronedse

#endif // DRONEDSE_UTIL_CSV_HH
