/**
 * @file
 * Minimal CSV writer.  The paper's artifact ships the raw data
 * behind each figure as CSV (/Drone-CSVs); the benches can export
 * the reproduced series the same way.
 */

#ifndef DRONEDSE_UTIL_CSV_HH
#define DRONEDSE_UTIL_CSV_HH

#include <string>
#include <vector>

namespace dronedse {

/** Accumulates rows and renders/writes RFC-4180-style CSV. */
class CsvWriter
{
  public:
    /** Construct with the header row. */
    explicit CsvWriter(std::vector<std::string> header);

    /** Append a row (must match the header width). */
    void addRow(const std::vector<std::string> &cells);

    /** Append a row of doubles (formatted with %g precision). */
    void addRow(const std::vector<double> &values);

    /** Render the CSV document. */
    std::string str() const;

    /** Write to a file; fatal() on I/O failure. */
    void write(const std::string &path) const;

    /** Number of data rows so far (excluding the header). */
    std::size_t rowCount() const { return rows_.size() - 1; }

    /**
     * Quote a cell per RFC 4180 when it contains commas, quotes, or
     * newlines.
     */
    static std::string escape(const std::string &cell);

  private:
    std::size_t width_;
    std::vector<std::string> rows_;
};

} // namespace dronedse

#endif // DRONEDSE_UTIL_CSV_HH
