#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/thread_annotations.hh"

namespace dronedse {

namespace {

/**
 * The filter floor is a lock-free atomic so the hot path (a debug()
 * call that is filtered out) costs one relaxed load.  The sink is
 * behind a mutex: swaps are rare, and emitting under the lock keeps
 * concurrent messages from interleaving mid-line.
 */
std::atomic<LogLevel> g_min_level{LogLevel::Info};
util::Mutex g_sink_mutex;
LogSink g_sink DDSE_GUARDED_BY(g_sink_mutex); // empty = stdio default

/** Prefixes keep the historical "info:"/"warn:" output stable. */
const char *
prefixFor(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Error:
        return "error";
    }
    return "log";
}

void
emit(LogLevel level, const std::string &msg)
{
    if (level < g_min_level.load(std::memory_order_relaxed))
        return;

    util::MutexLock lock(g_sink_mutex);
    if (g_sink) {
        g_sink(level, msg);
        return;
    }
    std::FILE *stream = level >= LogLevel::Warn ? stderr : stdout;
    std::fprintf(stream, "%s: %s\n", prefixFor(level), msg.c_str());
}

} // namespace

const char *
logLevelName(LogLevel level)
{
    return prefixFor(level);
}

void
setLogMinLevel(LogLevel level)
{
    g_min_level.store(level, std::memory_order_relaxed);
}

LogLevel
logMinLevel()
{
    return g_min_level.load(std::memory_order_relaxed);
}

LogSink
setLogSink(LogSink sink)
{
    util::MutexLock lock(g_sink_mutex);
    LogSink previous = std::move(g_sink);
    g_sink = std::move(sink);
    return previous;
}

void
debug(const std::string &msg)
{
    emit(LogLevel::Debug, msg);
}

void
inform(const std::string &msg)
{
    emit(LogLevel::Info, msg);
}

void
warn(const std::string &msg)
{
    emit(LogLevel::Warn, msg);
}

void
fatal(const std::string &msg)
{
    // Always hits stderr — death tests and crash triage must see the
    // message even when a sink has captured normal output.
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    {
        util::MutexLock lock(g_sink_mutex);
        if (g_sink)
            g_sink(LogLevel::Error, msg);
    }
    std::exit(1);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    {
        util::MutexLock lock(g_sink_mutex);
        if (g_sink)
            g_sink(LogLevel::Error, msg);
    }
    std::abort();
}

} // namespace dronedse
