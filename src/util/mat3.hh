/**
 * @file
 * 3x3 matrix for rigid-body dynamics and attitude representation.
 */

#ifndef DRONEDSE_UTIL_MAT3_HH
#define DRONEDSE_UTIL_MAT3_HH

#include <array>
#include <cmath>

#include "util/vec3.hh"

namespace dronedse {

/** Row-major 3x3 matrix of doubles. */
struct Mat3
{
    // m[row][col]
    std::array<std::array<double, 3>, 3> m{};

    /** Identity matrix. */
    static constexpr Mat3
    identity()
    {
        Mat3 r;
        r.m[0][0] = r.m[1][1] = r.m[2][2] = 1.0;
        return r;
    }

    /** Diagonal matrix from three values. */
    static constexpr Mat3
    diagonal(double a, double b, double c)
    {
        Mat3 r;
        r.m[0][0] = a;
        r.m[1][1] = b;
        r.m[2][2] = c;
        return r;
    }

    /** Skew-symmetric cross-product matrix of v: skew(v) * w = v x w. */
    static constexpr Mat3
    skew(const Vec3 &v)
    {
        Mat3 r;
        r.m[0][1] = -v.z; r.m[0][2] = v.y;
        r.m[1][0] = v.z;  r.m[1][2] = -v.x;
        r.m[2][0] = -v.y; r.m[2][1] = v.x;
        return r;
    }

    constexpr double operator()(int r, int c) const { return m[r][c]; }
    constexpr double &operator()(int r, int c) { return m[r][c]; }

    Mat3
    operator*(const Mat3 &o) const
    {
        Mat3 r;
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                for (int k = 0; k < 3; ++k)
                    r.m[i][j] += m[i][k] * o.m[k][j];
        return r;
    }

    Vec3
    operator*(const Vec3 &v) const
    {
        return {m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
                m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
                m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z};
    }

    Mat3
    operator+(const Mat3 &o) const
    {
        Mat3 r;
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                r.m[i][j] = m[i][j] + o.m[i][j];
        return r;
    }

    Mat3
    operator*(double s) const
    {
        Mat3 r;
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                r.m[i][j] = m[i][j] * s;
        return r;
    }

    /** Matrix transpose. */
    Mat3
    transpose() const
    {
        Mat3 r;
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                r.m[i][j] = m[j][i];
        return r;
    }

    /** Determinant. */
    double
    determinant() const
    {
        return m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
               m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
               m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
    }

    /** Matrix inverse via the adjugate (requires det != 0). */
    Mat3
    inverse() const
    {
        const double det = determinant();
        const double inv_det = 1.0 / det;
        Mat3 r;
        r.m[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_det;
        r.m[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_det;
        r.m[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_det;
        r.m[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_det;
        r.m[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_det;
        r.m[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_det;
        r.m[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_det;
        r.m[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_det;
        r.m[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_det;
        return r;
    }
};

} // namespace dronedse

#endif // DRONEDSE_UTIL_MAT3_HH
