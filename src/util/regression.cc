#include "util/regression.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace dronedse {

LinearFit
fitLinear(const std::vector<double> &xs, const std::vector<double> &ys)
{
    if (xs.size() != ys.size())
        panic("fitLinear: mismatched sample vectors");
    if (xs.size() < 2)
        fatal("fitLinear: need at least two samples");

    const double n = static_cast<double>(xs.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
    }
    const double denom = n * sxx - sx * sx;
    if (std::fabs(denom) < 1e-12)
        fatal("fitLinear: degenerate abscissae (all x equal)");

    LinearFit fit;
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
    fit.samples = xs.size();

    const double y_mean = sy / n;
    double ss_res = 0.0, ss_tot = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double pred = fit.at(xs[i]);
        ss_res += (ys[i] - pred) * (ys[i] - pred);
        ss_tot += (ys[i] - y_mean) * (ys[i] - y_mean);
    }
    fit.rSquared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
    return fit;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    const double m = mean(values);
    double ss = 0.0;
    for (double v : values)
        ss += (v - m) * (v - m);
    return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            fatal("geomean: all values must be positive");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
minValue(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return *std::min_element(values.begin(), values.end());
}

double
maxValue(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return *std::max_element(values.begin(), values.end());
}

} // namespace dronedse
