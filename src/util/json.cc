#include "util/json.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"

namespace dronedse {

namespace {

/** Hostile inputs must not recurse past this nesting depth. */
constexpr int kMaxDepth = 96;

void
appendUtf8(std::string &out, unsigned long code_point)
{
    if (code_point < 0x80) {
        out += static_cast<char>(code_point);
    } else if (code_point < 0x800) {
        out += static_cast<char>(0xC0 | (code_point >> 6));
        out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else if (code_point < 0x10000) {
        out += static_cast<char>(0xE0 | (code_point >> 12));
        out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else {
        out += static_cast<char>(0xF0 | (code_point >> 18));
        out += static_cast<char>(0x80 | ((code_point >> 12) & 0x3F));
        out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (code_point & 0x3F));
    }
}

/** Recursive-descent parser over one immutable text. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    std::optional<JsonValue> parse(std::string *error)
    {
        JsonValue value;
        if (!parseValue(value, 0) || !expectEnd()) {
            if (error)
                *error = error_;
            return std::nullopt;
        }
        return value;
    }

  private:
    bool fail(const std::string &reason)
    {
        if (error_.empty())
            error_ = "byte " + std::to_string(pos_) + ": " + reason;
        return false;
    }

    void skipWhitespace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool expectEnd()
    {
        skipWhitespace();
        if (pos_ != text_.size())
            return fail("trailing garbage after document");
        return true;
    }

    bool literal(const char *word)
    {
        const std::size_t len = std::char_traits<char>::length(word);
        if (text_.compare(pos_, len, word) != 0)
            return fail("unexpected token");
        pos_ += len;
        return true;
    }

    bool parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWhitespace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
        case 'n':
            if (!literal("null"))
                return false;
            out = JsonValue();
            return true;
        case 't':
            if (!literal("true"))
                return false;
            out = JsonValue::boolean(true);
            return true;
        case 'f':
            if (!literal("false"))
                return false;
            out = JsonValue::boolean(false);
            return true;
        case '"':
            return parseString(out);
        case '[':
            return parseArray(out, depth);
        case '{':
            return parseObject(out, depth);
        default:
            return parseNumber(out);
        }
    }

    bool parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        // Integer part: "0" or a nonzero digit run (no leading
        // zeros); this is also where NaN/Infinity tokens die.
        if (pos_ >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_])))
            return fail("malformed number");
        if (text_[pos_] == '0') {
            ++pos_;
        } else {
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                return fail("malformed number fraction");
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                return fail("malformed number exponent");
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        const std::string token = text_.substr(start, pos_ - start);
        errno = 0;
        char *parse_end = nullptr;
        const double value = std::strtod(token.c_str(), &parse_end);
        if (parse_end != token.c_str() + token.size())
            return fail("malformed number");
        if (errno == ERANGE && !std::isfinite(value))
            return fail("number out of range");
        if (!std::isfinite(value))
            return fail("non-finite number");
        out = JsonValue::number(value);
        return true;
    }

    bool parseHex4(unsigned long &out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        unsigned long value = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_ + i];
            value <<= 4;
            if (c >= '0' && c <= '9')
                value |= static_cast<unsigned long>(c - '0');
            else if (c >= 'a' && c <= 'f')
                value |= static_cast<unsigned long>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                value |= static_cast<unsigned long>(c - 'A' + 10);
            else
                return fail("bad \\u escape digit");
        }
        pos_ += 4;
        out = value;
        return true;
    }

    bool parseStringRaw(std::string &out)
    {
        // Caller guarantees text_[pos_] == '"'.
        ++pos_;
        out.clear();
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            const unsigned char c =
                static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += static_cast<char>(c);
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= text_.size())
                return fail("truncated escape");
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                unsigned long code = 0;
                if (!parseHex4(code))
                    return false;
                if (code >= 0xD800 && code <= 0xDBFF) {
                    // High surrogate: a \uDC00-\uDFFF must follow.
                    if (pos_ + 2 > text_.size() ||
                        text_[pos_] != '\\' || text_[pos_ + 1] != 'u')
                        return fail("lone high surrogate");
                    pos_ += 2;
                    unsigned long low = 0;
                    if (!parseHex4(low))
                        return false;
                    if (low < 0xDC00 || low > 0xDFFF)
                        return fail("bad low surrogate");
                    code = 0x10000 + ((code - 0xD800) << 10) +
                           (low - 0xDC00);
                } else if (code >= 0xDC00 && code <= 0xDFFF) {
                    return fail("lone low surrogate");
                }
                appendUtf8(out, code);
                break;
            }
            default:
                return fail("unknown escape");
            }
        }
    }

    bool parseString(JsonValue &out)
    {
        std::string value;
        if (!parseStringRaw(value))
            return false;
        out = JsonValue::string(std::move(value));
        return true;
    }

    bool parseArray(JsonValue &out, int depth)
    {
        ++pos_; // '['
        std::vector<JsonValue> items;
        skipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            out = JsonValue::array(std::move(items));
            return true;
        }
        while (true) {
            JsonValue item;
            if (!parseValue(item, depth + 1))
                return false;
            items.push_back(std::move(item));
            skipWhitespace();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            const char c = text_[pos_++];
            if (c == ']')
                break;
            if (c != ',') {
                --pos_;
                return fail("expected ',' or ']' in array");
            }
        }
        out = JsonValue::array(std::move(items));
        return true;
    }

    bool parseObject(JsonValue &out, int depth)
    {
        ++pos_; // '{'
        std::vector<JsonValue::Member> members;
        skipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            out = JsonValue::object(std::move(members));
            return true;
        }
        while (true) {
            skipWhitespace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseStringRaw(key))
                return false;
            skipWhitespace();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':' after object key");
            ++pos_;
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            members.emplace_back(std::move(key), std::move(value));
            skipWhitespace();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            const char c = text_[pos_++];
            if (c == '}')
                break;
            if (c != ',') {
                --pos_;
                return fail("expected ',' or '}' in object");
            }
        }
        out = JsonValue::object(std::move(members));
        return true;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string error_;
};

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        const unsigned char u = static_cast<unsigned char>(c);
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        default:
            if (u < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", u);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonQuote(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

std::string
jsonNumber(double value, int significant)
{
    if (!std::isfinite(value))
        return "null";
    if (significant < 1)
        significant = 1;
    if (significant > 17)
        significant = 17;
    char fmt[8];
    std::snprintf(fmt, sizeof fmt, "%%.%dg", significant);
    char buf[64];
    std::snprintf(buf, sizeof buf, fmt, value);
    return std::string(buf);
}

JsonValue
JsonValue::boolean(bool v)
{
    JsonValue out;
    out.kind_ = Kind::Bool;
    out.bool_ = v;
    return out;
}

JsonValue
JsonValue::number(double v)
{
    JsonValue out;
    out.kind_ = Kind::Number;
    out.number_ = v;
    return out;
}

JsonValue
JsonValue::string(std::string v)
{
    JsonValue out;
    out.kind_ = Kind::String;
    out.string_ = std::move(v);
    return out;
}

JsonValue
JsonValue::array(std::vector<JsonValue> items)
{
    JsonValue out;
    out.kind_ = Kind::Array;
    out.items_ = std::move(items);
    return out;
}

JsonValue
JsonValue::object(std::vector<Member> members)
{
    JsonValue out;
    out.kind_ = Kind::Object;
    out.members_ = std::move(members);
    return out;
}

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        panic("JsonValue::asBool: not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (kind_ != Kind::Number)
        panic("JsonValue::asNumber: not a number");
    return number_;
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        panic("JsonValue::asString: not a string");
    return string_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (kind_ != Kind::Array)
        panic("JsonValue::items: not an array");
    return items_;
}

const std::vector<JsonValue::Member> &
JsonValue::members() const
{
    if (kind_ != Kind::Object)
        panic("JsonValue::members: not an object");
    return members_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const Member &member : members_) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

std::string
JsonValue::dump(int significant) const
{
    switch (kind_) {
    case Kind::Null:
        return "null";
    case Kind::Bool:
        return bool_ ? "true" : "false";
    case Kind::Number:
        return jsonNumber(number_, significant);
    case Kind::String:
        return jsonQuote(string_);
    case Kind::Array: {
        std::string out = "[";
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i > 0)
                out += ", ";
            out += items_[i].dump(significant);
        }
        out += "]";
        return out;
    }
    case Kind::Object: {
        std::string out = "{";
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i > 0)
                out += ", ";
            out += jsonQuote(members_[i].first) + ": " +
                   members_[i].second.dump(significant);
        }
        out += "}";
        return out;
    }
    }
    panic("JsonValue::dump: corrupt kind");
    return "";
}

std::optional<JsonValue>
parseJson(const std::string &text, std::string *error)
{
    return Parser(text).parse(error);
}

} // namespace dronedse
