/**
 * @file
 * Unit quaternion attitude representation.
 *
 * Attitude R in SO(3) (paper Section 2.1.3D) is stored as a unit
 * quaternion and converted to a rotation matrix where the dynamics
 * need it.
 */

#ifndef DRONEDSE_UTIL_QUATERNION_HH
#define DRONEDSE_UTIL_QUATERNION_HH

#include <cmath>

#include "util/mat3.hh"
#include "util/vec3.hh"

namespace dronedse {

/** Unit quaternion (w, x, y, z) representing a rotation. */
struct Quaternion
{
    double w = 1.0;
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    constexpr Quaternion() = default;
    constexpr Quaternion(double w_, double x_, double y_, double z_)
        : w(w_), x(x_), y(y_), z(z_)
    {}

    /** Rotation of `angle` radians about a (unit) axis. */
    static Quaternion
    fromAxisAngle(const Vec3 &axis, double angle)
    {
        const Vec3 a = axis.normalized();
        const double h = angle * 0.5;
        const double s = std::sin(h);
        return {std::cos(h), a.x * s, a.y * s, a.z * s};
    }

    /** From intrinsic roll (x), pitch (y), yaw (z) Euler angles. */
    static Quaternion
    fromEuler(double roll, double pitch, double yaw)
    {
        const double cr = std::cos(roll * 0.5), sr = std::sin(roll * 0.5);
        const double cp = std::cos(pitch * 0.5), sp = std::sin(pitch * 0.5);
        const double cy = std::cos(yaw * 0.5), sy = std::sin(yaw * 0.5);
        return {cr * cp * cy + sr * sp * sy,
                sr * cp * cy - cr * sp * sy,
                cr * sp * cy + sr * cp * sy,
                cr * cp * sy - sr * sp * cy};
    }

    /**
     * From a rotation matrix (Shepperd's method, numerically safe
     * branch selection).
     */
    static Quaternion
    fromRotationMatrix(const Mat3 &m)
    {
        const double trace = m(0, 0) + m(1, 1) + m(2, 2);
        Quaternion q;
        if (trace > 0.0) {
            const double s = std::sqrt(trace + 1.0) * 2.0;
            q = {0.25 * s, (m(2, 1) - m(1, 2)) / s,
                 (m(0, 2) - m(2, 0)) / s, (m(1, 0) - m(0, 1)) / s};
        } else if (m(0, 0) > m(1, 1) && m(0, 0) > m(2, 2)) {
            const double s =
                std::sqrt(1.0 + m(0, 0) - m(1, 1) - m(2, 2)) * 2.0;
            q = {(m(2, 1) - m(1, 2)) / s, 0.25 * s,
                 (m(0, 1) + m(1, 0)) / s, (m(0, 2) + m(2, 0)) / s};
        } else if (m(1, 1) > m(2, 2)) {
            const double s =
                std::sqrt(1.0 + m(1, 1) - m(0, 0) - m(2, 2)) * 2.0;
            q = {(m(0, 2) - m(2, 0)) / s, (m(0, 1) + m(1, 0)) / s,
                 0.25 * s, (m(1, 2) + m(2, 1)) / s};
        } else {
            const double s =
                std::sqrt(1.0 + m(2, 2) - m(0, 0) - m(1, 1)) * 2.0;
            q = {(m(1, 0) - m(0, 1)) / s, (m(0, 2) + m(2, 0)) / s,
                 (m(1, 2) + m(2, 1)) / s, 0.25 * s};
        }
        return q.normalized();
    }

    /** Hamilton product. */
    constexpr Quaternion
    operator*(const Quaternion &o) const
    {
        return {w * o.w - x * o.x - y * o.y - z * o.z,
                w * o.x + x * o.w + y * o.z - z * o.y,
                w * o.y - x * o.z + y * o.w + z * o.x,
                w * o.z + x * o.y - y * o.x + z * o.w};
    }

    /** Conjugate (inverse for unit quaternions). */
    constexpr Quaternion conjugate() const { return {w, -x, -y, -z}; }

    /** Quaternion norm. */
    double norm() const { return std::sqrt(w * w + x * x + y * y + z * z); }

    /** Renormalize to unit length. */
    Quaternion
    normalized() const
    {
        const double n = norm();
        return {w / n, x / n, y / n, z / n};
    }

    /** Rotate a vector by this quaternion. */
    Vec3
    rotate(const Vec3 &v) const
    {
        const Quaternion p{0.0, v.x, v.y, v.z};
        const Quaternion r = *this * p * conjugate();
        return {r.x, r.y, r.z};
    }

    /** Equivalent rotation matrix (body -> world for attitude). */
    Mat3
    toRotationMatrix() const
    {
        Mat3 r;
        r(0, 0) = 1 - 2 * (y * y + z * z);
        r(0, 1) = 2 * (x * y - w * z);
        r(0, 2) = 2 * (x * z + w * y);
        r(1, 0) = 2 * (x * y + w * z);
        r(1, 1) = 1 - 2 * (x * x + z * z);
        r(1, 2) = 2 * (y * z - w * x);
        r(2, 0) = 2 * (x * z - w * y);
        r(2, 1) = 2 * (y * z + w * x);
        r(2, 2) = 1 - 2 * (x * x + y * y);
        return r;
    }

    /** Roll angle (rotation about body x). */
    double
    roll() const
    {
        return std::atan2(2 * (w * x + y * z), 1 - 2 * (x * x + y * y));
    }

    /** Pitch angle (rotation about body y). */
    double
    pitch() const
    {
        const double s = 2 * (w * y - z * x);
        if (s >= 1.0)
            return M_PI / 2;
        if (s <= -1.0)
            return -M_PI / 2;
        return std::asin(s);
    }

    /** Yaw angle (rotation about body z). */
    double
    yaw() const
    {
        return std::atan2(2 * (w * z + x * y), 1 - 2 * (y * y + z * z));
    }

    /**
     * Integrate body angular velocity omega over dt seconds
     * (first-order quaternion kinematics, renormalized).
     */
    Quaternion
    integrated(const Vec3 &omega, double dt) const
    {
        const Quaternion omega_q{0.0, omega.x, omega.y, omega.z};
        const Quaternion dq = *this * omega_q;
        const Quaternion out{w + 0.5 * dq.w * dt, x + 0.5 * dq.x * dt,
                             y + 0.5 * dq.y * dt, z + 0.5 * dq.z * dt};
        return out.normalized();
    }
};

} // namespace dronedse

#endif // DRONEDSE_UTIL_QUATERNION_HH
