/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic element of the library (synthetic component
 * catalogs, sensor noise, workload traces) draws from this generator
 * with an explicit seed so all experiments are reproducible.
 */

#ifndef DRONEDSE_UTIL_RNG_HH
#define DRONEDSE_UTIL_RNG_HH

#include <cstdint>

namespace dronedse {

/**
 * xoshiro256** pseudo-random generator with SplitMix64 seeding.
 *
 * Small, fast, and deterministic across platforms — unlike
 * std::mt19937 paired with standard distributions, whose output is
 * implementation-defined for normal variates.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal variate (Box-Muller). */
    double gaussian();

    /** Normal variate with given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

  private:
    std::uint64_t s_[4];
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

} // namespace dronedse

#endif // DRONEDSE_UTIL_RNG_HH
