/**
 * @file
 * 3-component vector used throughout the flight dynamics, control,
 * and SLAM code.
 */

#ifndef DRONEDSE_UTIL_VEC3_HH
#define DRONEDSE_UTIL_VEC3_HH

#include <cmath>

namespace dronedse {

/** A 3-vector of doubles with the usual arithmetic. */
struct Vec3
{
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    constexpr Vec3() = default;
    constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

    constexpr Vec3 operator+(const Vec3 &o) const
    { return {x + o.x, y + o.y, z + o.z}; }
    constexpr Vec3 operator-(const Vec3 &o) const
    { return {x - o.x, y - o.y, z - o.z}; }
    constexpr Vec3 operator-() const { return {-x, -y, -z}; }
    constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }

    Vec3 &operator+=(const Vec3 &o)
    { x += o.x; y += o.y; z += o.z; return *this; }
    Vec3 &operator-=(const Vec3 &o)
    { x -= o.x; y -= o.y; z -= o.z; return *this; }
    Vec3 &operator*=(double s) { x *= s; y *= s; z *= s; return *this; }

    /** Dot product. */
    constexpr double dot(const Vec3 &o) const
    { return x * o.x + y * o.y + z * o.z; }

    /** Cross product. */
    constexpr Vec3 cross(const Vec3 &o) const
    {
        return {y * o.z - z * o.y,
                z * o.x - x * o.z,
                x * o.y - y * o.x};
    }

    /** Euclidean norm. */
    double norm() const { return std::sqrt(dot(*this)); }

    /** Squared Euclidean norm. */
    constexpr double squaredNorm() const { return dot(*this); }

    /** Unit vector in the same direction (zero vector maps to zero). */
    Vec3
    normalized() const
    {
        const double n = norm();
        return n > 0.0 ? *this / n : Vec3{};
    }
};

/** Scalar-first multiplication. */
constexpr Vec3
operator*(double s, const Vec3 &v)
{
    return v * s;
}

} // namespace dronedse

#endif // DRONEDSE_UTIL_VEC3_HH
