/**
 * @file
 * Dynamically sized dense matrix with the linear solvers needed by
 * the EKF (small fixed systems) and bundle adjustment (normal
 * equations of a few hundred unknowns).
 */

#ifndef DRONEDSE_UTIL_MATRIX_HH
#define DRONEDSE_UTIL_MATRIX_HH

#include <cstddef>
#include <vector>

namespace dronedse {

/** Row-major dense matrix of doubles. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** rows x cols matrix, zero initialized. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Identity matrix of size n. */
    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double operator()(std::size_t r, std::size_t c) const
    { return data_[r * cols_ + c]; }
    double &operator()(std::size_t r, std::size_t c)
    { return data_[r * cols_ + c]; }

    Matrix operator+(const Matrix &o) const;
    Matrix operator-(const Matrix &o) const;
    Matrix operator*(const Matrix &o) const;
    Matrix operator*(double s) const;

    /** Matrix transpose. */
    Matrix transpose() const;

    /** Add `value` to every diagonal element (LM damping). */
    void addToDiagonal(double value);

    /**
     * Solve A x = b with partial-pivot Gaussian elimination.
     *
     * @param b Right-hand side of length rows().
     * @param x Receives the solution.
     * @retval false when the system is numerically singular.
     */
    bool solve(const std::vector<double> &b, std::vector<double> &x) const;

    /**
     * Cholesky solve for symmetric positive-definite A
     * (normal equations); falls back on failure indicator.
     *
     * @retval false when A is not positive definite.
     */
    bool
    solveCholesky(const std::vector<double> &b,
                  std::vector<double> &x) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

} // namespace dronedse

#endif // DRONEDSE_UTIL_MATRIX_HH
