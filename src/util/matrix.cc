#include "util/matrix.hh"

#include <cmath>

#include "util/logging.hh"

namespace dronedse {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Matrix
Matrix::operator+(const Matrix &o) const
{
    if (rows_ != o.rows_ || cols_ != o.cols_)
        panic("Matrix::operator+: dimension mismatch");
    Matrix r(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        r.data_[i] = data_[i] + o.data_[i];
    return r;
}

Matrix
Matrix::operator-(const Matrix &o) const
{
    if (rows_ != o.rows_ || cols_ != o.cols_)
        panic("Matrix::operator-: dimension mismatch");
    Matrix r(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        r.data_[i] = data_[i] - o.data_[i];
    return r;
}

Matrix
Matrix::operator*(const Matrix &o) const
{
    if (cols_ != o.rows_)
        panic("Matrix::operator*: dimension mismatch");
    Matrix r(rows_, o.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = (*this)(i, k);
            if (a == 0.0)
                continue;
            for (std::size_t j = 0; j < o.cols_; ++j)
                r(i, j) += a * o(k, j);
        }
    }
    return r;
}

Matrix
Matrix::operator*(double s) const
{
    Matrix r(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        r.data_[i] = data_[i] * s;
    return r;
}

Matrix
Matrix::transpose() const
{
    Matrix r(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j)
            r(j, i) = (*this)(i, j);
    return r;
}

void
Matrix::addToDiagonal(double value)
{
    const std::size_t n = rows_ < cols_ ? rows_ : cols_;
    for (std::size_t i = 0; i < n; ++i)
        (*this)(i, i) += value;
}

bool
Matrix::solve(const std::vector<double> &b, std::vector<double> &x) const
{
    if (rows_ != cols_ || b.size() != rows_)
        panic("Matrix::solve: dimension mismatch");

    const std::size_t n = rows_;
    // Augmented working copy.
    std::vector<double> a(data_);
    std::vector<double> rhs(b);

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivoting.
        std::size_t pivot = col;
        double best = std::fabs(a[col * n + col]);
        for (std::size_t r = col + 1; r < n; ++r) {
            const double v = std::fabs(a[r * n + col]);
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        if (best < 1e-12)
            return false;
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(a[col * n + c], a[pivot * n + c]);
            std::swap(rhs[col], rhs[pivot]);
        }
        const double inv = 1.0 / a[col * n + col];
        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = a[r * n + col] * inv;
            if (factor == 0.0)
                continue;
            for (std::size_t c = col; c < n; ++c)
                a[r * n + c] -= factor * a[col * n + c];
            rhs[r] -= factor * rhs[col];
        }
    }

    x.assign(n, 0.0);
    for (std::size_t ri = n; ri-- > 0;) {
        double sum = rhs[ri];
        for (std::size_t c = ri + 1; c < n; ++c)
            sum -= a[ri * n + c] * x[c];
        x[ri] = sum / a[ri * n + ri];
    }
    return true;
}

bool
Matrix::solveCholesky(const std::vector<double> &b,
                      std::vector<double> &x) const
{
    if (rows_ != cols_ || b.size() != rows_)
        panic("Matrix::solveCholesky: dimension mismatch");

    const std::size_t n = rows_;
    // Lower-triangular factor L with A = L L^T.
    std::vector<double> l(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double sum = (*this)(i, j);
            for (std::size_t k = 0; k < j; ++k)
                sum -= l[i * n + k] * l[j * n + k];
            if (i == j) {
                if (sum <= 0.0)
                    return false;
                l[i * n + j] = std::sqrt(sum);
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }

    // Forward substitution: L y = b.
    std::vector<double> y(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double sum = b[i];
        for (std::size_t k = 0; k < i; ++k)
            sum -= l[i * n + k] * y[k];
        y[i] = sum / l[i * n + i];
    }

    // Back substitution: L^T x = y.
    x.assign(n, 0.0);
    for (std::size_t ii = n; ii-- > 0;) {
        double sum = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            sum -= l[k * n + ii] * x[k];
        x[ii] = sum / l[ii * n + ii];
    }
    return true;
}

} // namespace dronedse
