#include "util/rng.hh"

#include <cmath>

namespace dronedse {

namespace {

/** SplitMix64 step used to expand the user seed into full state. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    hasSpare_ = true;
    return u * factor;
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

} // namespace dronedse
