/**
 * @file
 * Minimal JSON writer helpers and a strict reader.
 *
 * One serialization home (with util/csv's RFC-4180 pair) for every
 * boundary that speaks text: the serve wire protocol, obs metric
 * snapshots, engine sweep stats, and the bench JSON trajectories.
 * The writer helpers (`jsonQuote`, `jsonNumber`) are the former
 * private copies from obs/metrics.cc and engine/stats.hh, promoted
 * so the emitted spellings cannot drift apart; the reader is a
 * hand-rolled recursive-descent parser in the style of `parseCsv`,
 * except that it *returns* errors instead of fatal()ing — the serve
 * layer must answer malformed frames with typed error replies, not
 * die.
 *
 * Strictness (RFC 8259): no NaN/Infinity tokens, no leading zeros,
 * no trailing garbage, no raw control characters in strings, correct
 * surrogate-pair handling, bounded nesting depth.  `dump` emits a
 * canonical spelling, so dump -> parse -> dump is a byte-identical
 * fixed point (fuzz-tested in tests/util/test_json.cc).
 */

#ifndef DRONEDSE_UTIL_JSON_HH
#define DRONEDSE_UTIL_JSON_HH

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace dronedse {

/** Escape a string's content for a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

/** Quote + escape a string as a JSON string literal. */
std::string jsonQuote(const std::string &s);

/**
 * Format a double with `significant` digits of %g precision.
 * Non-finite values have no JSON spelling and render as "null".
 */
std::string jsonNumber(double value, int significant = 17);

/**
 * One parsed JSON value.  Objects preserve member order (the wire
 * protocol's canonical frames are order-sensitive for byte-identical
 * round trips); lookups scan linearly, which is fine at protocol
 * sizes.
 */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    using Member = std::pair<std::string, JsonValue>;

    /** Null by default. */
    JsonValue() = default;

    static JsonValue boolean(bool v);
    static JsonValue number(double v);
    static JsonValue string(std::string v);
    static JsonValue array(std::vector<JsonValue> items);
    static JsonValue object(std::vector<Member> members);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Accessors panic() on a kind mismatch (internal bug). */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &items() const;
    const std::vector<Member> &members() const;

    /** Object member by key; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Canonical serialization (see file comment). */
    std::string dump(int significant = 17) const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<Member> members_;
};

/**
 * Parse one JSON document.  Returns nullopt on malformed input and,
 * when `error` is non-null, stores a "byte N: reason" diagnostic.
 */
std::optional<JsonValue> parseJson(const std::string &text,
                                   std::string *error = nullptr);

} // namespace dronedse

#endif // DRONEDSE_UTIL_JSON_HH
