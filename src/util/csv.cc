#include "util/csv.hh"

#include <cstdio>

#include "util/logging.hh"

namespace dronedse {

namespace {

std::string
joinRow(const std::vector<std::string> &cells)
{
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        line += CsvWriter::escape(cells[i]);
        if (i + 1 < cells.size())
            line += ',';
    }
    return line;
}

} // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : width_(header.size())
{
    if (header.empty())
        fatal("CsvWriter: header must not be empty");
    rows_.push_back(joinRow(header));
}

void
CsvWriter::addRow(const std::vector<std::string> &cells)
{
    if (cells.size() != width_)
        panic("CsvWriter::addRow: cell count does not match header");
    rows_.push_back(joinRow(cells));
}

void
CsvWriter::addRow(const std::vector<double> &values)
{
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.10g", v);
        cells.emplace_back(buf);
    }
    addRow(cells);
}

std::string
CsvWriter::str() const
{
    std::string out;
    // rows_[0] is the header line.
    for (const auto &row : rows_) {
        out += row;
        out += '\n';
    }
    return out;
}

void
CsvWriter::write(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("CsvWriter::write: cannot open '" + path + "'");
    const std::string doc = str();
    const std::size_t written =
        std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    if (written != doc.size())
        fatal("CsvWriter::write: short write to '" + path + "'");
}

std::string
CsvWriter::escape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace dronedse
