#include "util/csv.hh"

#include <cstdio>

#include "util/logging.hh"

namespace dronedse {

namespace {

std::string
joinRow(const std::vector<std::string> &cells)
{
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        line += CsvWriter::escape(cells[i]);
        if (i + 1 < cells.size())
            line += ',';
    }
    return line;
}

} // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : width_(header.size())
{
    if (header.empty())
        fatal("CsvWriter: header must not be empty");
    rows_.push_back(joinRow(header));
}

void
CsvWriter::addRow(const std::vector<std::string> &cells)
{
    if (cells.size() != width_)
        panic("CsvWriter::addRow: cell count does not match header");
    rows_.push_back(joinRow(cells));
}

void
CsvWriter::addRow(const std::vector<double> &values)
{
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.10g", v);
        cells.emplace_back(buf);
    }
    addRow(cells);
}

std::string
CsvWriter::str() const
{
    std::string out;
    // rows_[0] is the header line.
    for (const auto &row : rows_) {
        out += row;
        out += '\n';
    }
    return out;
}

void
CsvWriter::write(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("CsvWriter::write: cannot open '" + path + "'");
    const std::string doc = str();
    const std::size_t written =
        std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    if (written != doc.size())
        fatal("CsvWriter::write: short write to '" + path + "'");
}

std::string
CsvWriter::escape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n\r") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::vector<std::vector<std::string>>
parseCsv(const std::string &text)
{
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> row;
    std::string cell;
    bool in_quotes = false;    // inside an open quoted cell
    bool cell_started = false; // current cell has consumed input
    bool was_quoted = false;   // current cell closed its quotes

    const auto end_cell = [&] {
        row.push_back(std::move(cell));
        cell.clear();
        cell_started = false;
        was_quoted = false;
    };
    const auto end_row = [&] {
        end_cell();
        rows.push_back(std::move(row));
        row.clear();
    };

    const std::size_t n = text.size();
    std::size_t i = 0;
    while (i < n) {
        const char c = text[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < n && text[i + 1] == '"') {
                    cell += '"'; // escaped quote
                    i += 2;
                    continue;
                }
                in_quotes = false;
                was_quoted = true;
                ++i;
                continue;
            }
            cell += c;
            ++i;
            continue;
        }
        if (c == ',') {
            end_cell();
            ++i;
            continue;
        }
        if (c == '\n' ||
            (c == '\r' && i + 1 < n && text[i + 1] == '\n')) {
            end_row();
            i += c == '\r' ? 2 : 1;
            continue;
        }
        if (was_quoted)
            fatal("parseCsv: garbage after a closing quote");
        if (c == '"') {
            if (cell_started)
                fatal("parseCsv: quote inside an unquoted cell");
            in_quotes = true;
            cell_started = true;
            ++i;
            continue;
        }
        cell += c;
        cell_started = true;
        ++i;
    }
    if (in_quotes)
        fatal("parseCsv: unclosed quote at end of input");
    // A document either ends with the row terminator (the writer's
    // format) or mid-row; only flush a final row that has content.
    if (cell_started || !cell.empty() || !row.empty())
        end_row();
    return rows;
}

} // namespace dronedse
