/**
 * @file
 * Physical constants and unit-conversion helpers.
 *
 * The design-space model follows the paper's unit conventions:
 * component weights in grams, battery capacity in mAh, power in
 * watts, currents in amperes, wheelbase and propeller sizes in
 * millimetres/inches, flight time in minutes.
 */

#ifndef DRONEDSE_UTIL_UNITS_HH
#define DRONEDSE_UTIL_UNITS_HH

namespace dronedse {

/** Standard gravitational acceleration (m/s^2). */
inline constexpr double kGravity = 9.80665;

/** Sea-level air density (kg/m^3). */
inline constexpr double kAirDensity = 1.225;

/** Nominal LiPo cell voltage (V/cell), per the paper Section 2.1.2. */
inline constexpr double kLipoCellVoltage = 3.7;

/**
 * Safe fraction of LiPo capacity usable in flight
 * (LiPoDrainLimit, paper Section 2.1.2).
 */
inline constexpr double kLipoDrainLimit = 0.85;

/** Metres per inch. */
inline constexpr double kMetersPerInch = 0.0254;

/** Grams-force per newton: thrust(g) = thrust(N) * kGramsPerNewton. */
inline constexpr double kGramsPerNewton = 1000.0 / kGravity;

/** Convert grams to kilograms. */
constexpr double
gramsToKg(double grams)
{
    return grams / 1000.0;
}

/** Convert kilograms to grams. */
constexpr double
kgToGrams(double kg)
{
    return kg * 1000.0;
}

/** Convert inches to metres. */
constexpr double
inchesToMeters(double inches)
{
    return inches * kMetersPerInch;
}

/** Convert RPM to revolutions per second. */
constexpr double
rpmToRevPerSec(double rpm)
{
    return rpm / 60.0;
}

/** Convert revolutions per second to RPM. */
constexpr double
revPerSecToRpm(double rev_per_sec)
{
    return rev_per_sec * 60.0;
}

/** Energy (Wh) stored in a battery of given capacity and voltage. */
constexpr double
capacityToWattHours(double capacity_mah, double voltage)
{
    return capacity_mah / 1000.0 * voltage;
}

/** Minutes of runtime for an energy store at constant power draw. */
constexpr double
wattHoursToMinutes(double watt_hours, double power_w)
{
    return watt_hours / power_w * 60.0;
}

} // namespace dronedse

#endif // DRONEDSE_UTIL_UNITS_HH
