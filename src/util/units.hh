/**
 * @file
 * Physical constants and unit-conversion helpers.
 *
 * The design-space model follows the paper's unit conventions:
 * component weights in grams, battery capacity in mAh, power in
 * watts, currents in amperes, wheelbase and propeller sizes in
 * millimetres/inches, flight time in minutes.  The conversion
 * helpers are typed (see util/quantity.hh), so a caller cannot feed
 * watts where mAh are expected: the mismatch is a compile error.
 */

#ifndef DRONEDSE_UTIL_UNITS_HH
#define DRONEDSE_UTIL_UNITS_HH

#include "util/quantity.hh"

namespace dronedse {

/** Standard gravitational acceleration (m/s^2). */
inline constexpr double kGravity = 9.80665;

/** Sea-level air density (kg/m^3). */
inline constexpr double kAirDensity = 1.225;

/** Nominal LiPo cell voltage (V/cell), per the paper Section 2.1.2. */
inline constexpr double kLipoCellVoltage = 3.7;

/**
 * Safe fraction of LiPo capacity usable in flight
 * (LiPoDrainLimit, paper Section 2.1.2).
 */
inline constexpr double kLipoDrainLimit = 0.85;

/** Metres per inch. */
inline constexpr double kMetersPerInch = 0.0254;

/** Grams-force per newton: thrust(g) = thrust(N) * kGramsPerNewton. */
inline constexpr double kGramsPerNewton = 1000.0 / kGravity;

/** Nominal pack voltage of a LiPo of `cells` series cells. */
constexpr Quantity<Volts>
lipoPackVoltage(int cells)
{
    return Quantity<Volts>(cells * kLipoCellVoltage);
}

/** Convert grams to kilograms. */
constexpr Quantity<Kilograms>
gramsToKg(Quantity<Grams> grams)
{
    return grams.to<Kilograms>();
}

/** Convert kilograms to grams. */
constexpr Quantity<Grams>
kgToGrams(Quantity<Kilograms> kg)
{
    return kg.to<Grams>();
}

/** Convert inches to metres. */
constexpr Quantity<Meters>
inchesToMeters(Quantity<Inches> inches)
{
    return inches.to<Meters>();
}

/** Convert RPM to revolutions per second. */
constexpr Quantity<RevPerSec>
rpmToRevPerSec(Quantity<Rpm> rpm)
{
    return rpm.to<RevPerSec>();
}

/** Convert revolutions per second to RPM. */
constexpr Quantity<Rpm>
revPerSecToRpm(Quantity<RevPerSec> rev_per_sec)
{
    return rev_per_sec.to<Rpm>();
}

/**
 * Energy stored in a battery of given capacity and voltage.  The
 * mAh * V product lands on milliwatt-hours; the conversion to Wh is
 * part of the checked unit algebra (the classic 1000x trap).
 */
constexpr Quantity<WattHours>
capacityToWattHours(Quantity<MilliampHours> capacity,
                    Quantity<Volts> voltage)
{
    return (capacity * voltage).to<WattHours>();
}

/** Minutes of runtime for an energy store at constant power draw. */
constexpr Quantity<Minutes>
wattHoursToMinutes(Quantity<WattHours> energy, Quantity<Watts> power)
{
    return (energy / power).to<Minutes>();
}

} // namespace dronedse

#endif // DRONEDSE_UTIL_UNITS_HH
