/**
 * @file
 * Status and error reporting helpers in the gem5 idiom.
 *
 * inform() prints normal operating messages; warn() flags suspicious
 * but survivable conditions; fatal() terminates on user error (bad
 * configuration or arguments); panic() terminates on internal bugs
 * (conditions that must never happen regardless of user input).
 */

#ifndef DRONEDSE_UTIL_LOGGING_HH
#define DRONEDSE_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace dronedse {

/** Print an informational message to stdout. */
void inform(const std::string &msg);

/** Print a warning message to stderr. */
void warn(const std::string &msg);

/**
 * Terminate with exit(1) for conditions that are the user's fault
 * (bad configuration, invalid arguments).
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Terminate with abort() for conditions that indicate an internal
 * bug, i.e. that should never happen regardless of user input.
 */
[[noreturn]] void panic(const std::string &msg);

} // namespace dronedse

#endif // DRONEDSE_UTIL_LOGGING_HH
