/**
 * @file
 * Status and error reporting helpers in the gem5 idiom.
 *
 * debug() traces detail that is normally filtered out; inform()
 * prints normal operating messages; warn() flags suspicious but
 * survivable conditions; fatal() terminates on user error (bad
 * configuration or arguments); panic() terminates on internal bugs
 * (conditions that must never happen regardless of user input).
 *
 * Messages below the minimum level (default Info) are dropped.
 * Non-terminating messages go to an optional redirectable sink;
 * fatal() and panic() always write stderr as well, so death-test
 * expectations and crash triage see them regardless of redirection.
 * Level filtering and sink redirection are thread-safe.
 */

#ifndef DRONEDSE_UTIL_LOGGING_HH
#define DRONEDSE_UTIL_LOGGING_HH

#include <functional>
#include <string>

namespace dronedse {

/** Message severities, least severe first. */
enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    /** fatal()/panic(); never filtered. */
    Error = 3,
};

/** The level's lowercase name ("debug", "info", ...). */
const char *logLevelName(LogLevel level);

/**
 * Drop messages below `level` from now on.  Applies to debug(),
 * inform(), and warn(); fatal() and panic() are never filtered.
 */
void setLogMinLevel(LogLevel level);

/** The current filter floor. */
LogLevel logMinLevel();

/**
 * Receives every formatted line that passes the filter (without a
 * trailing newline), tagged with its severity.
 */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/**
 * Redirect log output to `sink` and return the previous sink.  An
 * empty sink restores the default (stdout for Debug/Info, stderr
 * for Warn/Error).
 */
LogSink setLogSink(LogSink sink);

/** Print a trace message (filtered out at the default level). */
void debug(const std::string &msg);

/** Print an informational message to stdout. */
void inform(const std::string &msg);

/** Print a warning message to stderr. */
void warn(const std::string &msg);

/**
 * Terminate with exit(1) for conditions that are the user's fault
 * (bad configuration, invalid arguments).
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Terminate with abort() for conditions that indicate an internal
 * bug, i.e. that should never happen regardless of user input.
 */
[[noreturn]] void panic(const std::string &msg);

} // namespace dronedse

#endif // DRONEDSE_UTIL_LOGGING_HH
