/**
 * @file
 * Empirical cumulative distribution function over finite samples.
 *
 * The fleet engine's risk outputs (DESIGN.md §16) are statistical
 * claims over scenario distributions — P[flight time ≥ T], survival
 * quantiles — so the primitive is an exact ECDF, not a fitted
 * parametric model.  Samples are kept sorted; every query is a pure
 * binary search over that order, which makes the answers independent
 * of insertion order (permutation invariance, property-tested in
 * tests/util/test_ecdf.cc) and byte-stable across thread counts when
 * the sample set is.
 *
 * Conventions (pinned by the test battery):
 *  - `cdf(x)`          = P[X ≤ x] = #{samples ≤ x} / n
 *  - `probAtLeast(t)`  = P[X ≥ t] = #{samples ≥ t} / n
 *  - `quantile(q)`     = smallest sample x with cdf(x) ≥ q for
 *                        q ∈ (0, 1]; `quantile(0)` is the minimum
 *                        (the standard left-continuous empirical
 *                        quantile, exact on ties)
 *
 * Non-finite samples (NaN, ±inf) are configuration errors and
 * fatal(); queries on an empty ECDF fatal() as well — an empty risk
 * distribution answers nothing.
 */

#ifndef DRONEDSE_UTIL_ECDF_HH
#define DRONEDSE_UTIL_ECDF_HH

#include <cstddef>
#include <string>
#include <vector>

namespace dronedse {

/** Exact empirical CDF over a finite sample set. */
class Ecdf
{
  public:
    Ecdf() = default;

    /** Bulk construction; sorts once.  fatal() on non-finite input. */
    explicit Ecdf(std::vector<double> samples);

    /**
     * Insert one sample, keeping the internal order sorted.
     * fatal() on NaN or ±inf.
     */
    void add(double x);

    std::size_t size() const { return sorted_.size(); }
    bool empty() const { return sorted_.empty(); }

    /** Smallest sample; fatal() when empty. */
    double min() const;
    /** Largest sample; fatal() when empty. */
    double max() const;
    /** Arithmetic mean over the sorted order; fatal() when empty. */
    double mean() const;

    /** P[X ≤ x]; fatal() when empty. */
    double cdf(double x) const;

    /** P[X ≥ t]; fatal() when empty. */
    double probAtLeast(double t) const;

    /**
     * Smallest sample whose cdf reaches `q`; `q` must lie in
     * [0, 1].  fatal() when empty or `q` is outside [0, 1].
     */
    double quantile(double q) const;

    /** The samples in sorted order. */
    const std::vector<double> &samples() const { return sorted_; }

    /**
     * Render as CSV rows `<prefix>,<value>,<cum_prob>` (no header,
     * one row per sample, `%.17g` values so equal sample sets give
     * byte-equal text).
     */
    std::string toCsvRows(const std::string &prefix) const;

  private:
    void requireNonEmpty(const char *what) const;

    /** Always sorted ascending. */
    std::vector<double> sorted_;
};

} // namespace dronedse

#endif // DRONEDSE_UTIL_ECDF_HH
