#include "util/table.hh"

#include <cstdio>

#include "util/logging.hh"

namespace dronedse {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("Table::addRow: cell count does not match header");
    rows_.push_back(std::move(cells));
}

std::string
Table::str() const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            line.append(widths[c] - row[c].size(), ' ');
            if (c + 1 < row.size())
                line += "  ";
        }
        line += '\n';
        return line;
    };

    std::string out = emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out.append(total, '-');
    out += '\n';
    for (const auto &row : rows_)
        out += emit_row(row);
    return out;
}

void
Table::print() const
{
    std::fputs(str().c_str(), stdout);
}

std::string
fmt(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
fmtPercent(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

} // namespace dronedse
