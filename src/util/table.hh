/**
 * @file
 * Fixed-width console table printer used by the benchmark harnesses
 * to emit the rows/series of the paper's figures and tables.
 */

#ifndef DRONEDSE_UTIL_TABLE_HH
#define DRONEDSE_UTIL_TABLE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace dronedse {

/**
 * Accumulates rows of string cells and prints them with aligned
 * columns and a header rule.
 */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row (must match the header width). */
    void addRow(std::vector<std::string> cells);

    /** Render the table to a string. */
    std::string str() const;

    /** Print the table to stdout. */
    void print() const;

    /** Number of data rows so far. */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given number of decimals. */
std::string fmt(double value, int decimals = 2);

/** Format a value as a percentage string, e.g. "12.3%". */
std::string fmtPercent(double fraction, int decimals = 1);

} // namespace dronedse

#endif // DRONEDSE_UTIL_TABLE_HH
