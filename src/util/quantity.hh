/**
 * @file
 * Compile-time dimensional analysis for the design-space model.
 *
 * The paper's equations chain quantities in mixed units — component
 * weights in grams, thrust in grams-force, capacity in mAh, power in
 * watts, flight time in minutes — and a swapped argument between any
 * two of them compiles silently when everything is a raw `double`.
 * `Quantity<Unit>` makes the unit part of the type:
 *
 *   - `+`/`-` require the *same* unit (Grams + Kilograms is a
 *     compile error until one side is explicitly converted),
 *   - `*`/`/` between quantities combine dimensions and scales, so
 *     `Volts{11.1} * Amperes{20}` *is* a `Quantity<Watts>`, and
 *     `WattHours / Watts` is a `Quantity<Hours>`,
 *   - dividing or multiplying into a fully cancelled dimension
 *     collapses to a plain `double` (with the residual scale folded
 *     in, so `Quantity<Minutes>(1) / Quantity<Seconds>(60) == 1.0`),
 *   - cross-unit conversion is explicit via `.to<Other>()` and only
 *     compiles when the dimensions match.
 *
 * A unit is a dimension (exponents over mass, length, time, current)
 * plus a `std::ratio` scale to coherent SI, so unit identities such
 * as mAh * V = mWh and gf = g * g0 are checked by the compiler
 * rather than by convention.  The wrapper is a single `double` —
 * trivially copyable, fully `constexpr`, zero overhead.
 */

#ifndef DRONEDSE_UTIL_QUANTITY_HH
#define DRONEDSE_UTIL_QUANTITY_HH

#include <ratio>
#include <type_traits>

namespace dronedse {

/** Exponents of one derived dimension over the SI base set we use. */
template <int MassExp, int LengthExp, int TimeExp, int CurrentExp>
struct Dimension
{
    static constexpr int mass = MassExp;
    static constexpr int length = LengthExp;
    static constexpr int time = TimeExp;
    static constexpr int current = CurrentExp;
};

template <typename A, typename B>
using DimProduct = Dimension<A::mass + B::mass, A::length + B::length,
                             A::time + B::time, A::current + B::current>;

template <typename A, typename B>
using DimQuotient = Dimension<A::mass - B::mass, A::length - B::length,
                              A::time - B::time, A::current - B::current>;

using Dimensionless = Dimension<0, 0, 0, 0>;
using MassDim = Dimension<1, 0, 0, 0>;
using LengthDim = Dimension<0, 1, 0, 0>;
using TimeDim = Dimension<0, 0, 1, 0>;
using CurrentDim = Dimension<0, 0, 0, 1>;
using FrequencyDim = Dimension<0, 0, -1, 0>;
using ForceDim = Dimension<1, 1, -2, 0>;
using EnergyDim = Dimension<1, 2, -2, 0>;
using PowerDim = Dimension<1, 2, -3, 0>;
using VoltageDim = Dimension<1, 2, -3, -1>;
using ChargeDim = Dimension<0, 0, 1, 1>;

/**
 * A unit: a dimension plus the `std::ratio` scale that converts one
 * stored unit into coherent SI (value_SI = value * Scale).
 */
template <typename D, typename Scale = std::ratio<1>>
struct Unit
{
    using Dim = D;
    using ScaleToSi = Scale;
};

// -- The model's unit vocabulary -----------------------------------
using Scalar = Unit<Dimensionless>;
using Kilograms = Unit<MassDim>;
using Grams = Unit<MassDim, std::milli>;
using Meters = Unit<LengthDim>;
using Millimeters = Unit<LengthDim, std::milli>;
/**
 * 1 in = 0.0254 m exactly.  All scale ratios below are written in
 * lowest terms: `std::ratio<36, 10>` and `std::ratio<18, 5>` are
 * *different types* even though they compare equal, and unit-product
 * types (built from the always-reduced `std::ratio_multiply`) must
 * land exactly on these named units.
 */
using Inches = Unit<LengthDim, std::ratio<127, 5000>>;
using Seconds = Unit<TimeDim>;
using Minutes = Unit<TimeDim, std::ratio<60>>;
using Hours = Unit<TimeDim, std::ratio<3600>>;
using Hertz = Unit<FrequencyDim>;
/** Rotation rate in revolutions per second (same dimension as Hz). */
using RevPerSec = Hertz;
using Rpm = Unit<FrequencyDim, std::ratio<1, 60>>;
using Amperes = Unit<CurrentDim>;
using Newtons = Unit<ForceDim>;
/**
 * Grams-force, the paper's thrust unit: 1 gf = 1 g * g0 =
 * 0.00980665 N exactly (standard gravity).
 */
using GramsForce = Unit<ForceDim, std::ratio<196133, 20000000>>;
using Joules = Unit<EnergyDim>;
using WattHours = Unit<EnergyDim, std::ratio<3600>>;
using MilliwattHours = Unit<EnergyDim, std::ratio<18, 5>>;
using Watts = Unit<PowerDim>;
using Volts = Unit<VoltageDim>;
using Coulombs = Unit<ChargeDim>;
/** 1 mAh = 3.6 C, so mAh * V lands on mWh, not Wh. */
using MilliampHours = Unit<ChargeDim, std::ratio<18, 5>>;

namespace detail {

template <typename D>
inline constexpr bool is_dimensionless =
    std::is_same_v<D, Dimensionless>;

template <typename Ratio>
constexpr double
ratioAsDouble()
{
    return static_cast<double>(Ratio::num) /
           static_cast<double>(Ratio::den);
}

} // namespace detail

/** A `double` whose unit is part of the type. */
template <typename U>
class Quantity
{
  public:
    using UnitType = U;
    using Dim = typename U::Dim;

    constexpr Quantity() = default;
    constexpr explicit Quantity(double v) : v_(v) {}

    /** Raw magnitude in this quantity's own unit. */
    constexpr double value() const { return v_; }

    /** Convert to another unit of the same dimension (checked). */
    template <typename To>
    constexpr Quantity<To>
    to() const
    {
        static_assert(std::is_same_v<Dim, typename To::Dim>,
                      "Quantity::to<>: dimensions do not match");
        using Factor = std::ratio_divide<typename U::ScaleToSi,
                                         typename To::ScaleToSi>;
        return Quantity<To>(v_ * detail::ratioAsDouble<Factor>());
    }

    /** Magnitude expressed in another unit of the same dimension. */
    template <typename To>
    constexpr double
    in() const
    {
        return to<To>().value();
    }

    constexpr Quantity operator-() const { return Quantity(-v_); }

    constexpr Quantity &
    operator+=(Quantity other)
    {
        v_ += other.v_;
        return *this;
    }

    constexpr Quantity &
    operator-=(Quantity other)
    {
        v_ -= other.v_;
        return *this;
    }

    constexpr Quantity &
    operator*=(double s)
    {
        v_ *= s;
        return *this;
    }

    constexpr Quantity &
    operator/=(double s)
    {
        v_ /= s;
        return *this;
    }

    friend constexpr Quantity
    operator+(Quantity a, Quantity b)
    {
        return Quantity(a.v_ + b.v_);
    }

    friend constexpr Quantity
    operator-(Quantity a, Quantity b)
    {
        return Quantity(a.v_ - b.v_);
    }

    friend constexpr Quantity
    operator*(Quantity q, double s)
    {
        return Quantity(q.v_ * s);
    }

    friend constexpr Quantity
    operator*(double s, Quantity q)
    {
        return Quantity(s * q.v_);
    }

    friend constexpr Quantity
    operator/(Quantity q, double s)
    {
        return Quantity(q.v_ / s);
    }

    friend constexpr auto operator<=>(Quantity, Quantity) = default;

  private:
    double v_ = 0.0;
};

/**
 * Product of two quantities: dimensions add, scales multiply.  When
 * the dimensions fully cancel the result collapses to a plain
 * `double` with the residual scale folded in.
 */
template <typename U1, typename U2>
constexpr auto
operator*(Quantity<U1> a, Quantity<U2> b)
{
    using D = DimProduct<typename U1::Dim, typename U2::Dim>;
    using S = std::ratio_multiply<typename U1::ScaleToSi,
                                  typename U2::ScaleToSi>;
    if constexpr (detail::is_dimensionless<D>)
        return a.value() * b.value() * detail::ratioAsDouble<S>();
    else
        return Quantity<Unit<D, S>>(a.value() * b.value());
}

/**
 * Quotient of two quantities: dimensions subtract, scales divide.
 * Same-dimension division yields the plain `double` ratio (scale
 * difference folded in), so `Quantity<Minutes>(1) /
 * Quantity<Seconds>(60) == 1.0`.
 */
template <typename U1, typename U2>
constexpr auto
operator/(Quantity<U1> a, Quantity<U2> b)
{
    using D = DimQuotient<typename U1::Dim, typename U2::Dim>;
    using S = std::ratio_divide<typename U1::ScaleToSi,
                                typename U2::ScaleToSi>;
    if constexpr (detail::is_dimensionless<D>)
        return a.value() / b.value() * detail::ratioAsDouble<S>();
    else
        return Quantity<Unit<D, S>>(a.value() / b.value());
}

// -- The paper's mass <-> thrust identity --------------------------

/**
 * Weight force of a mass under standard gravity: X g of mass weighs
 * X gf.  This is the only sanctioned bridge between the mass and
 * force dimensions (Equation 2's `TWR * Weight`).
 */
constexpr Quantity<GramsForce>
weightForce(Quantity<Grams> mass)
{
    return Quantity<GramsForce>(mass.value());
}

/** Mass a thrust can hold against standard gravity (inverse). */
constexpr Quantity<Grams>
liftableMass(Quantity<GramsForce> thrust)
{
    return Quantity<Grams>(thrust.value());
}

// -- Literals ------------------------------------------------------

namespace unit_literals {

// clang-format off
constexpr Quantity<Grams>          operator""_g(long double v)   { return Quantity<Grams>(static_cast<double>(v)); }
constexpr Quantity<Grams>          operator""_g(unsigned long long v)   { return Quantity<Grams>(static_cast<double>(v)); }
constexpr Quantity<Kilograms>      operator""_kg(long double v)  { return Quantity<Kilograms>(static_cast<double>(v)); }
constexpr Quantity<Kilograms>      operator""_kg(unsigned long long v)  { return Quantity<Kilograms>(static_cast<double>(v)); }
constexpr Quantity<Newtons>        operator""_n(long double v)   { return Quantity<Newtons>(static_cast<double>(v)); }
constexpr Quantity<Newtons>        operator""_n(unsigned long long v)   { return Quantity<Newtons>(static_cast<double>(v)); }
constexpr Quantity<GramsForce>     operator""_gf(long double v)  { return Quantity<GramsForce>(static_cast<double>(v)); }
constexpr Quantity<GramsForce>     operator""_gf(unsigned long long v)  { return Quantity<GramsForce>(static_cast<double>(v)); }
constexpr Quantity<Watts>          operator""_w(long double v)   { return Quantity<Watts>(static_cast<double>(v)); }
constexpr Quantity<Watts>          operator""_w(unsigned long long v)   { return Quantity<Watts>(static_cast<double>(v)); }
constexpr Quantity<WattHours>      operator""_wh(long double v)  { return Quantity<WattHours>(static_cast<double>(v)); }
constexpr Quantity<WattHours>      operator""_wh(unsigned long long v)  { return Quantity<WattHours>(static_cast<double>(v)); }
constexpr Quantity<MilliampHours>  operator""_mah(long double v) { return Quantity<MilliampHours>(static_cast<double>(v)); }
constexpr Quantity<MilliampHours>  operator""_mah(unsigned long long v) { return Quantity<MilliampHours>(static_cast<double>(v)); }
constexpr Quantity<Volts>          operator""_v(long double v)   { return Quantity<Volts>(static_cast<double>(v)); }
constexpr Quantity<Volts>          operator""_v(unsigned long long v)   { return Quantity<Volts>(static_cast<double>(v)); }
constexpr Quantity<Amperes>        operator""_a(long double v)   { return Quantity<Amperes>(static_cast<double>(v)); }
constexpr Quantity<Amperes>        operator""_a(unsigned long long v)   { return Quantity<Amperes>(static_cast<double>(v)); }
constexpr Quantity<Minutes>        operator""_min(long double v) { return Quantity<Minutes>(static_cast<double>(v)); }
constexpr Quantity<Minutes>        operator""_min(unsigned long long v) { return Quantity<Minutes>(static_cast<double>(v)); }
constexpr Quantity<Seconds>        operator""_s(long double v)   { return Quantity<Seconds>(static_cast<double>(v)); }
constexpr Quantity<Seconds>        operator""_s(unsigned long long v)   { return Quantity<Seconds>(static_cast<double>(v)); }
constexpr Quantity<Meters>         operator""_m(long double v)   { return Quantity<Meters>(static_cast<double>(v)); }
constexpr Quantity<Meters>         operator""_m(unsigned long long v)   { return Quantity<Meters>(static_cast<double>(v)); }
constexpr Quantity<Millimeters>    operator""_mm(long double v)  { return Quantity<Millimeters>(static_cast<double>(v)); }
constexpr Quantity<Millimeters>    operator""_mm(unsigned long long v)  { return Quantity<Millimeters>(static_cast<double>(v)); }
constexpr Quantity<Inches>         operator""_in(long double v)  { return Quantity<Inches>(static_cast<double>(v)); }
constexpr Quantity<Inches>         operator""_in(unsigned long long v)  { return Quantity<Inches>(static_cast<double>(v)); }
constexpr Quantity<Rpm>            operator""_rpm(long double v) { return Quantity<Rpm>(static_cast<double>(v)); }
constexpr Quantity<Rpm>            operator""_rpm(unsigned long long v) { return Quantity<Rpm>(static_cast<double>(v)); }
constexpr Quantity<Hertz>          operator""_hz(long double v)  { return Quantity<Hertz>(static_cast<double>(v)); }
constexpr Quantity<Hertz>          operator""_hz(unsigned long long v)  { return Quantity<Hertz>(static_cast<double>(v)); }
// clang-format on

} // namespace unit_literals

// -- Compile-time unit-algebra self-checks -------------------------

static_assert(sizeof(Quantity<Watts>) == sizeof(double),
              "Quantity must stay a zero-overhead double wrapper");
static_assert(std::is_trivially_copyable_v<Quantity<Grams>>);
static_assert(
    std::is_same_v<decltype(Quantity<Volts>(1.0) * Quantity<Amperes>(1.0)),
                   Quantity<Watts>>,
    "V * A must be exactly W");
static_assert(
    std::is_same_v<decltype(Quantity<Watts>(1.0) * Quantity<Hours>(1.0)),
                   Quantity<WattHours>>,
    "W * h must be exactly Wh");
static_assert(
    std::is_same_v<decltype(Quantity<WattHours>(1.0) / Quantity<Watts>(1.0)),
                   Quantity<Hours>>,
    "Wh / W must be exactly h");
static_assert(
    std::is_same_v<decltype(Quantity<MilliampHours>(1.0) *
                            Quantity<Volts>(1.0)),
                   Quantity<MilliwattHours>>,
    "mAh * V must land on mWh (the classic 1000x trap)");
static_assert(Quantity<Minutes>(64.0) / Quantity<Seconds>(2.0) == 1920.0,
              "same-dimension division folds the scale in");
static_assert(Quantity<Grams>(1500.0).to<Kilograms>().value() == 1.5);
static_assert(weightForce(Quantity<Grams>(850.0)).value() == 850.0);

} // namespace dronedse

#endif // DRONEDSE_UTIL_QUANTITY_HH
