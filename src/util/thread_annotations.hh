/**
 * @file
 * Clang capability-analysis annotations and annotation-aware lock
 * types for every concurrent subsystem (DESIGN.md §13).
 *
 * Under clang the `DDSE_*` macros expand to the thread-safety
 * attributes that `-Wthread-safety -Wthread-safety-beta` checks at
 * compile time: a `DDSE_GUARDED_BY(mu)` member touched without `mu`
 * held, or a `DDSE_REQUIRES(mu)` function called unlocked, is a
 * build error under the clang presets (and the `analysis` CI job).
 * Under other compilers the macros expand to nothing and the wrapper
 * types below are plain `std::mutex` plumbing — zero overhead, no
 * behavior change.
 *
 * The wrappers exist because the analysis only understands lock
 * types that carry the capability attributes; `std::mutex` and
 * `std::lock_guard` are invisible to it.  Repo rule (enforced by the
 * `locks` pass of tools/analyze.py): the concurrent subsystems
 * (src/engine, src/serve, src/obs, util/logging.cc) use `Mutex`,
 * `MutexLock`, and `CondVar` — never raw `std::mutex` /
 * `std::lock_guard` / `std::condition_variable`.
 *
 * Condition waits: `CondVar` wraps `std::condition_variable_any` so
 * it can block on the annotated `Mutex` directly.  Predicates that
 * read guarded members belong in an explicit `while (!cond) wait()`
 * loop in the annotated function body (where the analysis can see
 * the capability is held), not in a lambda — lambdas are analyzed as
 * separate unannotated functions and would warn.
 */

#ifndef DRONEDSE_UTIL_THREAD_ANNOTATIONS_HH
#define DRONEDSE_UTIL_THREAD_ANNOTATIONS_HH

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define DDSE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DDSE_THREAD_ANNOTATION(x)
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define DDSE_CAPABILITY(x) DDSE_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in dtor. */
#define DDSE_SCOPED_CAPABILITY DDSE_THREAD_ANNOTATION(scoped_lockable)

/** Member data that may only be touched while `x` is held. */
#define DDSE_GUARDED_BY(x) DDSE_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose *pointee* is protected by `x`. */
#define DDSE_PT_GUARDED_BY(x) DDSE_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function that may only be called with the capabilities held. */
#define DDSE_REQUIRES(...) \
    DDSE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function that acquires the capabilities and holds them on exit. */
#define DDSE_ACQUIRE(...) \
    DDSE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that releases the capabilities. */
#define DDSE_RELEASE(...) \
    DDSE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function that acquires only when it returns `result`. */
#define DDSE_TRY_ACQUIRE(result, ...) \
    DDSE_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/** Function the caller must NOT hold the capabilities around. */
#define DDSE_EXCLUDES(...) \
    DDSE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returning a reference to the named capability. */
#define DDSE_RETURN_CAPABILITY(x) \
    DDSE_THREAD_ANNOTATION(lock_returned(x))

/**
 * Escape hatch for lock patterns the analysis cannot express (e.g.
 * locking a whole array of shard mutexes in a loop).  Every use
 * needs a comment justifying why the discipline holds anyway.
 */
#define DDSE_NO_THREAD_SAFETY_ANALYSIS \
    DDSE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dronedse::util {

/**
 * Annotation-aware mutex: `std::mutex` plus the capability
 * attribute.  Satisfies Lockable, so it also works with std
 * facilities that only need lock()/unlock().
 */
class DDSE_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() DDSE_ACQUIRE() { mutex_.lock(); }
    void unlock() DDSE_RELEASE() { mutex_.unlock(); }
    bool try_lock() DDSE_TRY_ACQUIRE(true) // NOLINT: Lockable name
    {
        return mutex_.try_lock();
    }

  private:
    std::mutex mutex_;
};

/**
 * Annotation-aware `lock_guard`: acquires `mu` for the enclosing
 * scope.  The analysis treats construction as acquire and
 * destruction as release.
 */
class DDSE_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) DDSE_ACQUIRE(mu) : mutex_(mu)
    {
        mutex_.lock();
    }
    ~MutexLock() DDSE_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

/**
 * Condition variable that waits on the annotated `Mutex`.  All wait
 * overloads require the mutex held on entry and return with it held
 * (`condition_variable_any` releases and reacquires internally; the
 * net capability state is unchanged, which is what `DDSE_REQUIRES`
 * expresses).
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

    /** One blocking wait; use inside a `while (!cond)` loop. */
    void wait(Mutex &mu) DDSE_REQUIRES(mu) { cv_.wait(mu); }

    /**
     * Timed wait with predicate; returns the predicate's value.
     * Only pass predicates over state NOT guarded by `mu` (atomics,
     * self-locking calls) — guarded reads belong in an explicit
     * wait loop in the annotated caller (see file comment).
     */
    template <class Rep, class Period, class Predicate>
    bool waitFor(Mutex &mu,
                 std::chrono::duration<Rep, Period> timeout,
                 Predicate pred) DDSE_REQUIRES(mu)
    {
        return cv_.wait_for(mu, timeout, std::move(pred));
    }

  private:
    std::condition_variable_any cv_;
};

} // namespace dronedse::util

#endif // DRONEDSE_UTIL_THREAD_ANNOTATIONS_HH
