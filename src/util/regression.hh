/**
 * @file
 * Least-squares line fitting and summary statistics.
 *
 * The paper derives its component weight models by fitting lines to
 * surveyed commercial parts (Figures 7 and 8); this module provides
 * the fitter plus the aggregate statistics (mean, geometric mean)
 * used across the evaluation.
 */

#ifndef DRONEDSE_UTIL_REGRESSION_HH
#define DRONEDSE_UTIL_REGRESSION_HH

#include <cstddef>
#include <vector>

namespace dronedse {

/** Result of a univariate least-squares line fit y = slope*x + intercept. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination of the fit. */
    double rSquared = 0.0;
    /** Number of samples the fit was computed from. */
    std::size_t samples = 0;

    /** Evaluate the fitted line at x. */
    double at(double x) const { return slope * x + intercept; }
};

/**
 * Ordinary least-squares fit of y = slope*x + intercept.
 *
 * @param xs Sample abscissae (size >= 2).
 * @param ys Sample ordinates (same size as xs).
 */
LinearFit fitLinear(const std::vector<double> &xs,
                    const std::vector<double> &ys);

/** Arithmetic mean (0 for empty input). */
double mean(const std::vector<double> &values);

/** Sample standard deviation (0 for fewer than two samples). */
double stddev(const std::vector<double> &values);

/** Geometric mean; all values must be positive. */
double geomean(const std::vector<double> &values);

/** Minimum element (0 for empty input). */
double minValue(const std::vector<double> &values);

/** Maximum element (0 for empty input). */
double maxValue(const std::vector<double> &values);

} // namespace dronedse

#endif // DRONEDSE_UTIL_REGRESSION_HH
