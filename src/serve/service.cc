#include "serve/service.hh"

#include "obs/metrics.hh"
#include "obs/tracer.hh"
#include "util/logging.hh"

namespace dronedse::serve {

Service::Service(ServiceOptions options)
    : options_(options), engine_(options.engine),
      planner_(engine_, options.limits), admission_(options.admission)
{
}

std::string
Service::handleFrame(const std::string &frame, double t)
{
    obs::ScopedSpan span("serve.handle", "serve");
    obs::MetricsRegistry &registry = obs::metrics();
    registry.counter("serve.frames").add(1);

    if (frame.size() > options_.maxFrameBytes) {
        registry.counter("serve.replies.error").add(1);
        return serializeErrorReply(
            0, ErrorReply{ErrorCode::TooLarge,
                          "frame exceeds " +
                              std::to_string(options_.maxFrameBytes) +
                              " bytes"});
    }

    Request request;
    ErrorReply err;
    if (!parseRequest(frame, request, err)) {
        registry.counter("serve.replies.error").add(1);
        return serializeErrorReply(request.id, err);
    }

    const AdmitDecision decision =
        admission_.submit(QueuedItem{0, request, t}, t);
    if (decision != AdmitDecision::Admit) {
        registry.counter("serve.replies.error").add(1);
        return serializeErrorReply(request.id, admitError(decision));
    }
    // Synchronous path: this caller is also the worker, so the
    // queue wait it reports is zero by construction.
    QueuedItem item;
    if (!admission_.pop(t, item))
        panic("Service::handleFrame: admitted item vanished");
    const std::string reply = planner_.execute(item.request);
    registry.counter("serve.replies.ok").add(1);
    return reply;
}

IngestOutcome
Service::ingest(const std::string &frame, std::uint64_t conn,
                double t)
{
    obs::MetricsRegistry &registry = obs::metrics();
    registry.counter("serve.frames").add(1);

    IngestOutcome outcome;
    if (frame.size() > options_.maxFrameBytes) {
        registry.counter("serve.replies.error").add(1);
        outcome.reply = serializeErrorReply(
            0, ErrorReply{ErrorCode::TooLarge,
                          "frame exceeds " +
                              std::to_string(options_.maxFrameBytes) +
                              " bytes"});
        return outcome;
    }

    Request request;
    ErrorReply err;
    if (!parseRequest(frame, request, err)) {
        registry.counter("serve.replies.error").add(1);
        outcome.reply = serializeErrorReply(request.id, err);
        return outcome;
    }

    const AdmitDecision decision =
        admission_.submit(QueuedItem{conn, request, t}, t);
    if (decision != AdmitDecision::Admit) {
        registry.counter("serve.replies.error").add(1);
        outcome.reply =
            serializeErrorReply(request.id, admitError(decision));
        return outcome;
    }
    outcome.queued = true;
    return outcome;
}

std::optional<std::pair<std::uint64_t, std::string>>
Service::processOne(double t)
{
    QueuedItem item;
    if (!admission_.pop(t, item))
        return std::nullopt;
    const std::string reply = planner_.execute(item.request);
    obs::metrics().counter("serve.replies.ok").add(1);
    return std::make_pair(item.conn, reply);
}

} // namespace dronedse::serve
