/**
 * @file
 * Admission control for the DSE query service: a bounded FIFO
 * request queue, per-class token-bucket rate limits, and an
 * overload load-shedding state machine.
 *
 * The shed states reuse the `fault::DegradationPolicy` shape — an
 * ordered severity ladder driven by a leaky accumulator, immediate
 * escalation, hysteresis de-escalation:
 *
 *   Nominal < ShedLowPriority < RejectAll
 *
 * The accumulator is fed by the queue-wait p95 read from an
 * `obs::Histogram` (the same fixed-bucket type the metrics registry
 * snapshots): every `kP95WindowSamples` dequeues, the controller
 * takes the histogram's count delta over the window, locates the
 * bucket edge where the cumulative delta crosses 95 %, and adds to
 * the accumulator when that edge exceeds the shed (or, harder, the
 * reject) threshold.  The level decays exponentially with
 * `overloadHalfLifeS`, so a burst that clears drains back to
 * Nominal after `recoveryHoldS` of clean windows.  Unlike LandSafe,
 * RejectAll is not absorbing — a server must come back.
 *
 * All methods take an explicit time `t` (seconds, any monotone
 * origin), so the whole machine runs deterministically under the
 * virtual clock of `LocalTransport` tests; the TCP server feeds it
 * a steady-clock reading.  Thread-safe: one internal mutex guards
 * queue + buckets + state (admission is not the hot path — a solve
 * costs orders of magnitude more than a queue push).
 */

#ifndef DRONEDSE_SERVE_ADMISSION_HH
#define DRONEDSE_SERVE_ADMISSION_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "serve/request.hh"
#include "util/thread_annotations.hh"

namespace dronedse::serve {

/** Overload states, ordered by severity. */
enum class ShedState
{
    /** Admit everything the buckets and queue allow. */
    Nominal = 0,
    /** Reject batch-class queries; interactive still admitted. */
    ShedLowPriority = 1,
    /** Reject every query until the overload drains. */
    RejectAll = 2,
};

/** Human-readable state name. */
const char *shedStateName(ShedState state);

/** One token bucket: sustained rate plus burst headroom. */
struct TokenBucketConfig
{
    /** Tokens replenished per second. */
    double ratePerSecond = 2000.0;
    /** Bucket capacity (burst size). */
    double burst = 400.0;
};

/** Tuning knobs of the controller (all per-instance). */
struct AdmissionConfig
{
    /** Bounded queue capacity; a full queue sheds. */
    std::size_t queueCapacity = 1024;

    TokenBucketConfig interactive{2000.0, 400.0};
    TokenBucketConfig batch{500.0, 100.0};

    /** Queue-wait histogram bucket edges (seconds). */
    std::vector<double> waitBounds{1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3,
                                   5e-3, 0.01,   0.025, 0.05, 0.1,
                                   0.25, 0.5,    1.0,   2.5,  5.0};

    /** p95 edge at/above this feeds the accumulator (s). */
    double waitP95ShedS = 0.05;
    /** p95 edge at/above this feeds it three times as hard (s). */
    double waitP95RejectS = 0.5;
    /** Accumulator exponential-decay half-life (s). */
    double overloadHalfLifeS = 2.0;
    /** Accumulator level that demands ShedLowPriority. */
    double shedLevel = 3.0;
    /** Accumulator level that demands RejectAll. */
    double rejectLevel = 9.0;
    /** Continuous low-demand time before de-escalating (s). */
    double recoveryHoldS = 1.0;
};

/** Outcome of one admission attempt. */
enum class AdmitDecision
{
    Admit,
    /** Class token bucket empty. */
    RateLimited,
    /** Bounded queue at capacity. */
    QueueFull,
    /** ShedLowPriority rejected a batch-class query. */
    ShedClass,
    /** RejectAll rejected the query. */
    ShedAll,
};

/** Map a rejection to its wire error; panics on Admit. */
ErrorReply admitError(AdmitDecision decision);

/** One queued, already-parsed request awaiting a worker. */
struct QueuedItem
{
    /** Transport correlation token (connection id). */
    std::uint64_t conn = 0;
    Request request;
    /** Admission time (the controller's clock). */
    double enqueueT = 0.0;
};

/** One recorded shed-state change. */
struct ShedTransition
{
    double t = 0.0;
    ShedState from = ShedState::Nominal;
    ShedState to = ShedState::Nominal;
    std::string reason;
};

/** Monotonic per-controller counters. */
struct AdmissionStats
{
    std::uint64_t admitted = 0;
    std::uint64_t rateLimited = 0;
    std::uint64_t queueFull = 0;
    std::uint64_t shedClass = 0;
    std::uint64_t shedAll = 0;

    std::uint64_t rejected() const
    {
        return rateLimited + queueFull + shedClass + shedAll;
    }
};

class AdmissionController
{
  public:
    /** Dequeues per p95 window (see file comment). */
    static constexpr std::uint64_t kP95WindowSamples = 32;

    explicit AdmissionController(AdmissionConfig config = {});

    /**
     * Attempt to admit `item` at time `t`.  On Admit the item is
     * queued; every other decision leaves all queue state untouched
     * and maps to a typed error via `admitError`.
     */
    AdmitDecision submit(QueuedItem item, double t)
        DDSE_EXCLUDES(mutex_);

    /**
     * Pop the oldest queued item at time `t`.  Records the item's
     * queue wait into the histogram (driving the shed machine) and
     * returns false when the queue is empty.
     */
    bool pop(double t, QueuedItem &out) DDSE_EXCLUDES(mutex_);

    std::size_t depth() const DDSE_EXCLUDES(mutex_);
    ShedState state() const DDSE_EXCLUDES(mutex_);
    AdmissionStats stats() const DDSE_EXCLUDES(mutex_);

    /** Overload accumulator level (diagnostics / tests). */
    double overloadLevel() const DDSE_EXCLUDES(mutex_);
    /** p95 bucket edge of the last completed window (s). */
    double lastWindowP95S() const DDSE_EXCLUDES(mutex_);
    /** Every shed-state change, in order. */
    std::vector<ShedTransition> transitions() const
        DDSE_EXCLUDES(mutex_);

    const AdmissionConfig &config() const { return config_; }

  private:
    struct Bucket
    {
        double tokens = 0.0;
        double lastT = 0.0;
        bool started = false;
    };

    /** Refill at time t, then try to take one token. */
    bool takeToken(Bucket &bucket, const TokenBucketConfig &config,
                   double t) DDSE_REQUIRES(mutex_);
    /** Decay the accumulator and resolve hysteresis at time t. */
    void advanceState(double t) DDSE_REQUIRES(mutex_);
    void transitionTo(ShedState to, double t,
                      const std::string &reason)
        DDSE_REQUIRES(mutex_);
    /** Fold one completed p95 window into the accumulator. */
    void closeWindow() DDSE_REQUIRES(mutex_);

    AdmissionConfig config_;

    mutable util::Mutex mutex_;
    std::deque<QueuedItem> queue_ DDSE_GUARDED_BY(mutex_);
    Bucket interactiveBucket_ DDSE_GUARDED_BY(mutex_);
    Bucket batchBucket_ DDSE_GUARDED_BY(mutex_);

    /** Recorded and window-scanned only under `mutex_` (its own
     *  atomics make `record` safe, but the p95 window arithmetic
     *  needs count deltas from one consistent cut). */
    obs::Histogram waitHist_ DDSE_GUARDED_BY(mutex_);
    /** Histogram bucket counts at the last window close. */
    std::vector<std::uint64_t> windowBaseCounts_
        DDSE_GUARDED_BY(mutex_);
    std::uint64_t samplesInWindow_ DDSE_GUARDED_BY(mutex_) = 0;
    double lastWindowP95S_ DDSE_GUARDED_BY(mutex_) = 0.0;

    ShedState state_ DDSE_GUARDED_BY(mutex_) = ShedState::Nominal;
    double overloadLevel_ DDSE_GUARDED_BY(mutex_) = 0.0;
    bool haveLevelT_ DDSE_GUARDED_BY(mutex_) = false;
    double levelT_ DDSE_GUARDED_BY(mutex_) = 0.0;
    /** Last time the demanded state was >= the current state. */
    double lastElevatedT_ DDSE_GUARDED_BY(mutex_) = 0.0;
    std::vector<ShedTransition> transitions_
        DDSE_GUARDED_BY(mutex_);

    AdmissionStats stats_ DDSE_GUARDED_BY(mutex_);
};

} // namespace dronedse::serve

#endif // DRONEDSE_SERVE_ADMISSION_HH
